file(REMOVE_RECURSE
  "CMakeFiles/simulate_traffic.dir/simulate_traffic.cpp.o"
  "CMakeFiles/simulate_traffic.dir/simulate_traffic.cpp.o.d"
  "simulate_traffic"
  "simulate_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulate_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
