# Empty dependencies file for simulate_traffic.
# This may be replaced when dependencies are built.
