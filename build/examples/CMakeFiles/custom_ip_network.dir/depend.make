# Empty dependencies file for custom_ip_network.
# This may be replaced when dependencies are built.
