file(REMOVE_RECURSE
  "CMakeFiles/custom_ip_network.dir/custom_ip_network.cpp.o"
  "CMakeFiles/custom_ip_network.dir/custom_ip_network.cpp.o.d"
  "custom_ip_network"
  "custom_ip_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_ip_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
