# Empty compiler generated dependencies file for ipg_cli.
# This may be replaced when dependencies are built.
