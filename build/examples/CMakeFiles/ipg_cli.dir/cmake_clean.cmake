file(REMOVE_RECURSE
  "CMakeFiles/ipg_cli.dir/ipg_cli.cpp.o"
  "CMakeFiles/ipg_cli.dir/ipg_cli.cpp.o.d"
  "ipg_cli"
  "ipg_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipg_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
