file(REMOVE_RECURSE
  "libipg.a"
)
