# Empty compiler generated dependencies file for ipg.
# This may be replaced when dependencies are built.
