
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/broadcast.cpp" "src/CMakeFiles/ipg.dir/algo/broadcast.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/algo/broadcast.cpp.o.d"
  "/root/repo/src/algo/emulation.cpp" "src/CMakeFiles/ipg.dir/algo/emulation.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/algo/emulation.cpp.o.d"
  "/root/repo/src/analysis/avg_distance.cpp" "src/CMakeFiles/ipg.dir/analysis/avg_distance.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/analysis/avg_distance.cpp.o.d"
  "/root/repo/src/analysis/bounds.cpp" "src/CMakeFiles/ipg.dir/analysis/bounds.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/analysis/bounds.cpp.o.d"
  "/root/repo/src/analysis/cost_model.cpp" "src/CMakeFiles/ipg.dir/analysis/cost_model.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/analysis/cost_model.cpp.o.d"
  "/root/repo/src/analysis/formulas.cpp" "src/CMakeFiles/ipg.dir/analysis/formulas.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/analysis/formulas.cpp.o.d"
  "/root/repo/src/cluster/clustering.cpp" "src/CMakeFiles/ipg.dir/cluster/clustering.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/cluster/clustering.cpp.o.d"
  "/root/repo/src/cluster/imetrics.cpp" "src/CMakeFiles/ipg.dir/cluster/imetrics.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/cluster/imetrics.cpp.o.d"
  "/root/repo/src/cluster/partitions.cpp" "src/CMakeFiles/ipg.dir/cluster/partitions.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/cluster/partitions.cpp.o.d"
  "/root/repo/src/graph/bfs.cpp" "src/CMakeFiles/ipg.dir/graph/bfs.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/graph/bfs.cpp.o.d"
  "/root/repo/src/graph/builder.cpp" "src/CMakeFiles/ipg.dir/graph/builder.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/graph/builder.cpp.o.d"
  "/root/repo/src/graph/connectivity.cpp" "src/CMakeFiles/ipg.dir/graph/connectivity.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/graph/connectivity.cpp.o.d"
  "/root/repo/src/graph/dot.cpp" "src/CMakeFiles/ipg.dir/graph/dot.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/graph/dot.cpp.o.d"
  "/root/repo/src/graph/flow.cpp" "src/CMakeFiles/ipg.dir/graph/flow.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/graph/flow.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/ipg.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/isomorphism.cpp" "src/CMakeFiles/ipg.dir/graph/isomorphism.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/graph/isomorphism.cpp.o.d"
  "/root/repo/src/graph/metrics.cpp" "src/CMakeFiles/ipg.dir/graph/metrics.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/graph/metrics.cpp.o.d"
  "/root/repo/src/graph/quotient.cpp" "src/CMakeFiles/ipg.dir/graph/quotient.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/graph/quotient.cpp.o.d"
  "/root/repo/src/graph/surgery.cpp" "src/CMakeFiles/ipg.dir/graph/surgery.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/graph/surgery.cpp.o.d"
  "/root/repo/src/graph/symmetry.cpp" "src/CMakeFiles/ipg.dir/graph/symmetry.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/graph/symmetry.cpp.o.d"
  "/root/repo/src/ipg/build.cpp" "src/CMakeFiles/ipg.dir/ipg/build.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/ipg/build.cpp.o.d"
  "/root/repo/src/ipg/families.cpp" "src/CMakeFiles/ipg.dir/ipg/families.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/ipg/families.cpp.o.d"
  "/root/repo/src/ipg/label.cpp" "src/CMakeFiles/ipg.dir/ipg/label.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/ipg/label.cpp.o.d"
  "/root/repo/src/ipg/permutation.cpp" "src/CMakeFiles/ipg.dir/ipg/permutation.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/ipg/permutation.cpp.o.d"
  "/root/repo/src/ipg/quotient_cn.cpp" "src/CMakeFiles/ipg.dir/ipg/quotient_cn.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/ipg/quotient_cn.cpp.o.d"
  "/root/repo/src/ipg/ranking.cpp" "src/CMakeFiles/ipg.dir/ipg/ranking.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/ipg/ranking.cpp.o.d"
  "/root/repo/src/ipg/schedule.cpp" "src/CMakeFiles/ipg.dir/ipg/schedule.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/ipg/schedule.cpp.o.d"
  "/root/repo/src/ipg/spec.cpp" "src/CMakeFiles/ipg.dir/ipg/spec.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/ipg/spec.cpp.o.d"
  "/root/repo/src/ipg/super.cpp" "src/CMakeFiles/ipg.dir/ipg/super.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/ipg/super.cpp.o.d"
  "/root/repo/src/ipg/symmetric.cpp" "src/CMakeFiles/ipg.dir/ipg/symmetric.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/ipg/symmetric.cpp.o.d"
  "/root/repo/src/route/embedding.cpp" "src/CMakeFiles/ipg.dir/route/embedding.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/route/embedding.cpp.o.d"
  "/root/repo/src/route/hypercube_routing.cpp" "src/CMakeFiles/ipg.dir/route/hypercube_routing.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/route/hypercube_routing.cpp.o.d"
  "/root/repo/src/route/path.cpp" "src/CMakeFiles/ipg.dir/route/path.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/route/path.cpp.o.d"
  "/root/repo/src/route/star_routing.cpp" "src/CMakeFiles/ipg.dir/route/star_routing.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/route/star_routing.cpp.o.d"
  "/root/repo/src/route/super_ip_routing.cpp" "src/CMakeFiles/ipg.dir/route/super_ip_routing.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/route/super_ip_routing.cpp.o.d"
  "/root/repo/src/route/tuple_routing.cpp" "src/CMakeFiles/ipg.dir/route/tuple_routing.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/route/tuple_routing.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/ipg.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/link_load.cpp" "src/CMakeFiles/ipg.dir/sim/link_load.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/sim/link_load.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/ipg.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/sim/network.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/ipg.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/ipg.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/sim/stats.cpp.o.d"
  "/root/repo/src/sim/traffic.cpp" "src/CMakeFiles/ipg.dir/sim/traffic.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/sim/traffic.cpp.o.d"
  "/root/repo/src/topo/ccc.cpp" "src/CMakeFiles/ipg.dir/topo/ccc.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/topo/ccc.cpp.o.d"
  "/root/repo/src/topo/de_bruijn.cpp" "src/CMakeFiles/ipg.dir/topo/de_bruijn.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/topo/de_bruijn.cpp.o.d"
  "/root/repo/src/topo/hypercube.cpp" "src/CMakeFiles/ipg.dir/topo/hypercube.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/topo/hypercube.cpp.o.d"
  "/root/repo/src/topo/ip_forms.cpp" "src/CMakeFiles/ipg.dir/topo/ip_forms.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/topo/ip_forms.cpp.o.d"
  "/root/repo/src/topo/misc.cpp" "src/CMakeFiles/ipg.dir/topo/misc.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/topo/misc.cpp.o.d"
  "/root/repo/src/topo/pancake.cpp" "src/CMakeFiles/ipg.dir/topo/pancake.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/topo/pancake.cpp.o.d"
  "/root/repo/src/topo/shuffle.cpp" "src/CMakeFiles/ipg.dir/topo/shuffle.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/topo/shuffle.cpp.o.d"
  "/root/repo/src/topo/star.cpp" "src/CMakeFiles/ipg.dir/topo/star.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/topo/star.cpp.o.d"
  "/root/repo/src/topo/torus.cpp" "src/CMakeFiles/ipg.dir/topo/torus.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/topo/torus.cpp.o.d"
  "/root/repo/src/util/prng.cpp" "src/CMakeFiles/ipg.dir/util/prng.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/util/prng.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/ipg.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/ipg.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
