# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/permutation_test[1]_include.cmake")
include("/root/repo/build/tests/ip_build_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_test[1]_include.cmake")
include("/root/repo/build/tests/families_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/algo_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/avg_distance_test[1]_include.cmake")
include("/root/repo/build/tests/surgery_test[1]_include.cmake")
include("/root/repo/build/tests/ip_equivalences_test[1]_include.cmake")
include("/root/repo/build/tests/topo_test[1]_include.cmake")
include("/root/repo/build/tests/routing_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/embedding_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
