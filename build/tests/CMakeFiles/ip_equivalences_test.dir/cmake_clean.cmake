file(REMOVE_RECURSE
  "CMakeFiles/ip_equivalences_test.dir/ip_equivalences_test.cpp.o"
  "CMakeFiles/ip_equivalences_test.dir/ip_equivalences_test.cpp.o.d"
  "CMakeFiles/ip_equivalences_test.dir/isomorphism_test.cpp.o"
  "CMakeFiles/ip_equivalences_test.dir/isomorphism_test.cpp.o.d"
  "ip_equivalences_test"
  "ip_equivalences_test.pdb"
  "ip_equivalences_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_equivalences_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
