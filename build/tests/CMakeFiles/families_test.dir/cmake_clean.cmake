file(REMOVE_RECURSE
  "CMakeFiles/families_test.dir/families_ext_test.cpp.o"
  "CMakeFiles/families_test.dir/families_ext_test.cpp.o.d"
  "CMakeFiles/families_test.dir/families_test.cpp.o"
  "CMakeFiles/families_test.dir/families_test.cpp.o.d"
  "CMakeFiles/families_test.dir/ranking_test.cpp.o"
  "CMakeFiles/families_test.dir/ranking_test.cpp.o.d"
  "CMakeFiles/families_test.dir/symmetric_test.cpp.o"
  "CMakeFiles/families_test.dir/symmetric_test.cpp.o.d"
  "families_test"
  "families_test.pdb"
  "families_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/families_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
