# Empty compiler generated dependencies file for ip_build_test.
# This may be replaced when dependencies are built.
