file(REMOVE_RECURSE
  "CMakeFiles/ip_build_test.dir/ip_build_test.cpp.o"
  "CMakeFiles/ip_build_test.dir/ip_build_test.cpp.o.d"
  "CMakeFiles/ip_build_test.dir/spec_super_test.cpp.o"
  "CMakeFiles/ip_build_test.dir/spec_super_test.cpp.o.d"
  "ip_build_test"
  "ip_build_test.pdb"
  "ip_build_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_build_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
