# Empty dependencies file for avg_distance_test.
# This may be replaced when dependencies are built.
