file(REMOVE_RECURSE
  "CMakeFiles/avg_distance_test.dir/avg_distance_test.cpp.o"
  "CMakeFiles/avg_distance_test.dir/avg_distance_test.cpp.o.d"
  "CMakeFiles/avg_distance_test.dir/dot_test.cpp.o"
  "CMakeFiles/avg_distance_test.dir/dot_test.cpp.o.d"
  "avg_distance_test"
  "avg_distance_test.pdb"
  "avg_distance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avg_distance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
