file(REMOVE_RECURSE
  "CMakeFiles/surgery_test.dir/surgery_test.cpp.o"
  "CMakeFiles/surgery_test.dir/surgery_test.cpp.o.d"
  "surgery_test"
  "surgery_test.pdb"
  "surgery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surgery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
