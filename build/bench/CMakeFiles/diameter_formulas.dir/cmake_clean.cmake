file(REMOVE_RECURSE
  "CMakeFiles/diameter_formulas.dir/diameter_formulas.cpp.o"
  "CMakeFiles/diameter_formulas.dir/diameter_formulas.cpp.o.d"
  "diameter_formulas"
  "diameter_formulas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diameter_formulas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
