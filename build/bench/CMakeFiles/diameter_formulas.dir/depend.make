# Empty dependencies file for diameter_formulas.
# This may be replaced when dependencies are built.
