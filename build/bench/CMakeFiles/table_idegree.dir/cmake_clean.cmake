file(REMOVE_RECURSE
  "CMakeFiles/table_idegree.dir/table_idegree.cpp.o"
  "CMakeFiles/table_idegree.dir/table_idegree.cpp.o.d"
  "table_idegree"
  "table_idegree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_idegree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
