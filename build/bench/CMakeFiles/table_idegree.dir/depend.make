# Empty dependencies file for table_idegree.
# This may be replaced when dependencies are built.
