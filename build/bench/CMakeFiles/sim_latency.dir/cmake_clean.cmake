file(REMOVE_RECURSE
  "CMakeFiles/sim_latency.dir/sim_latency.cpp.o"
  "CMakeFiles/sim_latency.dir/sim_latency.cpp.o.d"
  "sim_latency"
  "sim_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
