# Empty dependencies file for sim_latency.
# This may be replaced when dependencies are built.
