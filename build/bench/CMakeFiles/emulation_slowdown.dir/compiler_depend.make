# Empty compiler generated dependencies file for emulation_slowdown.
# This may be replaced when dependencies are built.
