file(REMOVE_RECURSE
  "CMakeFiles/emulation_slowdown.dir/emulation_slowdown.cpp.o"
  "CMakeFiles/emulation_slowdown.dir/emulation_slowdown.cpp.o.d"
  "emulation_slowdown"
  "emulation_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emulation_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
