file(REMOVE_RECURSE
  "CMakeFiles/optimality.dir/optimality.cpp.o"
  "CMakeFiles/optimality.dir/optimality.cpp.o.d"
  "optimality"
  "optimality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
