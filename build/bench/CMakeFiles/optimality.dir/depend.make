# Empty dependencies file for optimality.
# This may be replaced when dependencies are built.
