file(REMOVE_RECURSE
  "CMakeFiles/fig2_dd_cost.dir/fig2_dd_cost.cpp.o"
  "CMakeFiles/fig2_dd_cost.dir/fig2_dd_cost.cpp.o.d"
  "fig2_dd_cost"
  "fig2_dd_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_dd_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
