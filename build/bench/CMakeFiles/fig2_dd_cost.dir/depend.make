# Empty dependencies file for fig2_dd_cost.
# This may be replaced when dependencies are built.
