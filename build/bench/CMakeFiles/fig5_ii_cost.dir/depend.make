# Empty dependencies file for fig5_ii_cost.
# This may be replaced when dependencies are built.
