# Empty dependencies file for broadcast_cost.
# This may be replaced when dependencies are built.
