file(REMOVE_RECURSE
  "CMakeFiles/broadcast_cost.dir/broadcast_cost.cpp.o"
  "CMakeFiles/broadcast_cost.dir/broadcast_cost.cpp.o.d"
  "broadcast_cost"
  "broadcast_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broadcast_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
