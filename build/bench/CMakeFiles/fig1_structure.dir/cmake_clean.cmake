file(REMOVE_RECURSE
  "CMakeFiles/fig1_structure.dir/fig1_structure.cpp.o"
  "CMakeFiles/fig1_structure.dir/fig1_structure.cpp.o.d"
  "fig1_structure"
  "fig1_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
