# Empty dependencies file for fig1_structure.
# This may be replaced when dependencies are built.
