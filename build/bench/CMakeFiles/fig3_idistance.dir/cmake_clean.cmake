file(REMOVE_RECURSE
  "CMakeFiles/fig3_idistance.dir/fig3_idistance.cpp.o"
  "CMakeFiles/fig3_idistance.dir/fig3_idistance.cpp.o.d"
  "fig3_idistance"
  "fig3_idistance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_idistance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
