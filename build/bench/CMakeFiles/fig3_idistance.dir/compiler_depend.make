# Empty compiler generated dependencies file for fig3_idistance.
# This may be replaced when dependencies are built.
