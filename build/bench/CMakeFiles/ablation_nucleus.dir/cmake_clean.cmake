file(REMOVE_RECURSE
  "CMakeFiles/ablation_nucleus.dir/ablation_nucleus.cpp.o"
  "CMakeFiles/ablation_nucleus.dir/ablation_nucleus.cpp.o.d"
  "ablation_nucleus"
  "ablation_nucleus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nucleus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
