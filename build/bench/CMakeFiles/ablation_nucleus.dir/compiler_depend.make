# Empty compiler generated dependencies file for ablation_nucleus.
# This may be replaced when dependencies are built.
