#!/usr/bin/env python3
"""Project-specific determinism linter for the IPG tree.

Generic tools cannot know which constructs break this library's three
result-critical guarantees (bit-identical parallel results, the Theorem 3.2
rank<->label bijection, seed-driven fault determinism). This linter encodes
those rules directly:

  banned-random        std::rand / rand() / srand / std::random_device are
                       forbidden everywhere except src/util/prng.* — all
                       randomness must flow through the seeded PRNG.
  unordered-iteration  iterating a std::unordered_{map,set} is
                       order-nondeterministic; every iteration site must
                       either drain into a sorted container (a std::sort of
                       the drained values within the next few lines) or
                       carry an explicit allow annotation arguing
                       order-independence.
  wall-clock           system_clock / high_resolution_clock / gettimeofday /
                       std::time reads are forbidden outside bench/ and
                       src/util/ — simulated time and seeds, never wall time.
  naked-new            raw new / malloc / calloc / realloc / free are
                       forbidden outside arena/scratch allocators; everything
                       else uses containers or smart pointers.
  pragma-once          every header's first directive must be #pragma once.
  using-namespace      headers must not contain using-namespace directives
                       (namespace scope pollution leaks into every includer).

Lock-discipline rules (the concurrency capability layer, docs/MODEL.md §15):

  naked-sync           std::mutex / condition_variable / lock_guard /
                       unique_lock / scoped_lock etc. are forbidden outside
                       src/util/sync.hpp — all locking goes through the
                       capability-annotated ipg::Mutex wrappers so Clang's
                       -Wthread-safety analysis sees every site.
  manual-lock          explicit .lock()/.unlock() calls outside
                       src/util/sync.hpp — RAII guards only (ipg::LockGuard,
                       ipg::UniqueLock); a missed unlock on an early return
                       is exactly the bug the wrappers exist to prevent.
  detached-thread      .detach() on a thread is forbidden: a detached thread
                       outlives the state it touches and makes shutdown
                       nondeterministic. Every thread is joined.
  relaxed-order        memory_order_relaxed without an adjacent
                       `// ipg-lint: allow(relaxed-order)` justification
                       arguing that no inter-thread ordering rides on the
                       access.
  framing-symmetry     every write_<msg>(ByteWriter...) serializer must be
                       mirrored by a read_<msg>(ByteReader...) whose ordered
                       framing ops match field for field (write <-> read,
                       write_span <-> read_into); a skewed pair silently
                       corrupts every later field in the frame.

Suppressions: `// ipg-lint: allow(<rule>)` on the offending line or the line
directly above suppresses one site; `// ipg-lint: allow-file(<rule>)`
anywhere in a file suppresses the rule for that whole file.

Usage: python3 tools/ipg_lint.py [--root DIR] [paths...]
Scans src/ bench/ examples/ tests/ under the root when no paths are given.
Exits 1 when any diagnostic fires. Stdlib only.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SCAN_DIRS = ("src", "bench", "examples", "tests")
EXTENSIONS = {".hpp", ".cpp"}
# Intentionally-offending inputs for the fixture test; linted only when
# passed explicitly, never during a directory scan.
FIXTURE_DIR = "lint_fixtures"

ALLOW_RE = re.compile(r"ipg-lint:\s*allow\(([a-z-]+)\)")
ALLOW_FILE_RE = re.compile(r"ipg-lint:\s*allow-file\(([a-z-]+)\)")

RANDOM_RE = re.compile(
    r"\bstd::rand\b|\bstd::random_device\b|(?<!\w)(?<!_)rand\s*\(|\bsrand\s*\("
)
WALL_CLOCK_RE = re.compile(
    r"\bsystem_clock\b|\bhigh_resolution_clock\b|\bgettimeofday\b"
    r"|\bstd::time\s*\("
)
NAKED_NEW_RE = re.compile(
    r"(?<!\w)new\s+[A-Za-z_]|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\("
    r"|(?<!\w)(?<!_)free\s*\("
)
USING_NAMESPACE_RE = re.compile(r"\busing\s+namespace\b")
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*>\s*[&*]?\s*"
    r"(\w+)\s*[;,({=)]"
)
SORT_RE = re.compile(r"\bstd::(?:stable_)?sort\s*\(")
NAKED_SYNC_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|condition_variable(?:_any)?"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)
MANUAL_LOCK_RE = re.compile(r"\.\s*(?:lock|unlock)\s*\(\s*\)")
DETACH_RE = re.compile(r"\.\s*detach\s*\(\s*\)")
RELAXED_RE = re.compile(r"\bmemory_order_relaxed\b")
# The one file allowed to name std primitives / call .lock(): the wrappers.
SYNC_WRAPPER_FILE = "src/util/sync.hpp"

FRAME_DEF_RE = re.compile(r"\b(write|read)_(\w+)\s*\(")
FRAME_WRITE_OP_RE = re.compile(r"\.\s*(write_span|write)\s*(?:<[^<>]*>)?\s*\(")
FRAME_READ_OP_RE = re.compile(r"\.\s*(read_into|read)\s*(?:<[^<>]*>)?\s*\(")
# write op -> the read op that must mirror it.
FRAME_MIRROR = {"write": "read", "write_span": "read_into"}

# How many lines after an unordered-container loop a std::sort of the
# drained values still counts as a "sorted drain".
SORTED_DRAIN_WINDOW = 4


def strip_comments_and_strings(text: str) -> list[str]:
    """Returns the file's lines with comments and string/char literals
    blanked out (same line count, so diagnostics keep real line numbers)."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line-comment | block-comment | string | char
    line: list[str] = []
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            out.append("".join(line))
            line = []
            if state == "line-comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line-comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block-comment"
                i += 2
                continue
            if c == '"':
                state = "string"
                line.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                line.append(" ")
                i += 1
                continue
            line.append(c)
            i += 1
            continue
        if state in ("string", "char"):
            if c == "\\":
                i += 2
                continue
            if (state == "string" and c == '"') or (state == "char" and c == "'"):
                state = "code"
            i += 1
            continue
        if state == "block-comment" and c == "*" and nxt == "/":
            state = "code"
            i += 2
            continue
        i += 1
    if line:
        out.append("".join(line))
    return out


class Diagnostic:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class FileLint:
    def __init__(self, path: Path, rel: str, unordered_names: set[str]):
        self.path = path
        self.rel = rel
        self.raw = path.read_text(encoding="utf-8")
        self.raw_lines = self.raw.splitlines()
        self.code_lines = strip_comments_and_strings(self.raw)
        self.unordered_names = unordered_names
        self.file_allows = set(ALLOW_FILE_RE.findall(self.raw))
        self.diags: list[Diagnostic] = []

    def allowed(self, rule: str, lineno: int) -> bool:
        """True when the 1-based line (or the one above) carries an allow."""
        if rule in self.file_allows:
            return True
        for cand in (lineno, lineno - 1):
            if 1 <= cand <= len(self.raw_lines):
                for m in ALLOW_RE.finditer(self.raw_lines[cand - 1]):
                    if m.group(1) == rule:
                        return True
        return False

    def report(self, rule: str, lineno: int, message: str) -> None:
        if not self.allowed(rule, lineno):
            self.diags.append(Diagnostic(self.path, lineno, rule, message))

    def in_dirs(self, *prefixes: str) -> bool:
        return any(self.rel.startswith(p) for p in prefixes)

    def run(self) -> list[Diagnostic]:
        self.check_banned_random()
        self.check_wall_clock()
        self.check_naked_new()
        self.check_unordered_iteration()
        self.check_lock_discipline()
        self.check_framing_symmetry()
        if self.path.suffix == ".hpp":
            self.check_pragma_once()
            self.check_using_namespace()
        return self.diags

    def check_banned_random(self) -> None:
        if self.in_dirs("src/util/prng"):
            return
        for lineno, line in enumerate(self.code_lines, 1):
            if RANDOM_RE.search(line):
                self.report(
                    "banned-random", lineno,
                    "unseeded randomness; use util/prng (Xoshiro256) so "
                    "results are reproducible from an explicit seed")

    def check_wall_clock(self) -> None:
        if self.in_dirs("bench/", "src/util/"):
            return
        for lineno, line in enumerate(self.code_lines, 1):
            if WALL_CLOCK_RE.search(line):
                self.report(
                    "wall-clock", lineno,
                    "wall-clock read outside bench/ and src/util/; "
                    "simulation results must not depend on real time")

    def check_naked_new(self) -> None:
        for lineno, line in enumerate(self.code_lines, 1):
            if NAKED_NEW_RE.search(line):
                self.report(
                    "naked-new", lineno,
                    "raw allocation outside an arena/scratch type; use "
                    "containers or smart pointers")

    def check_unordered_iteration(self) -> None:
        if not self.unordered_names:
            return
        names = "|".join(re.escape(n) for n in sorted(self.unordered_names))
        loop_re = re.compile(
            r"\bfor\s*\([^;)]*:\s*\(?\s*(?:\w+[.->]+)*(" + names + r")\s*\)"
            r"|\b(" + names + r")\s*[.]\s*(?:begin|cbegin)\s*\(")
        for lineno, line in enumerate(self.code_lines, 1):
            m = loop_re.search(line)
            if not m:
                continue
            window = self.code_lines[lineno:lineno + SORTED_DRAIN_WINDOW]
            if any(SORT_RE.search(w) for w in window):
                continue  # sorted drain: order nondeterminism is repaired
            name = m.group(1) or m.group(2)
            self.report(
                "unordered-iteration", lineno,
                f"iteration over unordered container '{name}' is "
                "order-nondeterministic; drain into a sorted container or "
                "annotate why order cannot affect results")

    def check_lock_discipline(self) -> None:
        is_wrapper = self.rel == SYNC_WRAPPER_FILE
        for lineno, line in enumerate(self.code_lines, 1):
            if not is_wrapper and NAKED_SYNC_RE.search(line):
                self.report(
                    "naked-sync", lineno,
                    "std sync primitive outside util/sync.hpp; use the "
                    "capability-annotated ipg::Mutex / ipg::CondVar / "
                    "ipg::LockGuard / ipg::UniqueLock wrappers so Clang's "
                    "thread-safety analysis sees this site")
            if not is_wrapper and MANUAL_LOCK_RE.search(line):
                self.report(
                    "manual-lock", lineno,
                    "manual .lock()/.unlock() outside util/sync.hpp; hold "
                    "locks through RAII guards (LockGuard / UniqueLock) so "
                    "no path can leak or double-release the capability")
            if DETACH_RE.search(line):
                self.report(
                    "detached-thread", lineno,
                    "detached thread outlives the state it touches and "
                    "makes shutdown nondeterministic; join every thread")
            if RELAXED_RE.search(line):
                self.report(
                    "relaxed-order", lineno,
                    "memory_order_relaxed needs an adjacent "
                    "`ipg-lint: allow(relaxed-order)` comment arguing that "
                    "no inter-thread ordering rides on this access")

    def frame_defs(self) -> dict[str, dict[str, tuple[int, list[str]]]]:
        """Locates write_<name>/read_<name> *definitions* whose parameter
        list mentions ByteWriter/ByteReader and extracts each body's ordered
        framing-op sequence. Call sites (token after the balanced parameter
        list is not '{') are skipped."""
        text = "\n".join(self.code_lines)
        line_of = []  # char offset -> 1-based line
        lineno = 1
        for ch in text:
            line_of.append(lineno)
            if ch == "\n":
                lineno += 1
        pairs: dict[str, dict[str, tuple[int, list[str]]]] = {}
        for m in FRAME_DEF_RE.finditer(text):
            kind, name = m.group(1), m.group(2)
            # Balance the parameter list starting at its '('.
            i = m.end() - 1
            depth = 0
            while i < len(text):
                if text[i] == "(":
                    depth += 1
                elif text[i] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            if i >= len(text):
                continue
            params = text[m.end():i]
            if ("ByteWriter" if kind == "write" else "ByteReader") not in params:
                continue
            j = i + 1
            while j < len(text) and text[j] in " \t\n":
                j += 1
            if j >= len(text) or text[j] != "{":
                continue  # declaration or call site, not a definition
            # Balance the body braces to slice it out.
            depth = 0
            k = j
            while k < len(text):
                if text[k] == "{":
                    depth += 1
                elif text[k] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                k += 1
            body = text[j:k + 1]
            op_re = FRAME_WRITE_OP_RE if kind == "write" else FRAME_READ_OP_RE
            ops = [om.group(1) for om in op_re.finditer(body)]
            pairs.setdefault(name, {}).setdefault(
                kind, (line_of[m.start()], ops))
        return pairs

    def check_framing_symmetry(self) -> None:
        for name, defs in sorted(self.frame_defs().items()):
            if "write" not in defs or "read" not in defs:
                continue
            wline, wops = defs["write"]
            rline, rops = defs["read"]
            mirrored = [FRAME_MIRROR[op] for op in wops]
            if rops != mirrored:
                self.report(
                    "framing-symmetry", rline,
                    f"read_{name} drains [{', '.join(rops)}] but "
                    f"write_{name} (line {wline}) frames "
                    f"[{', '.join(wops)}]; the sequences must mirror "
                    "field for field (write<->read, write_span<->read_into)")

    def check_pragma_once(self) -> None:
        for lineno, line in enumerate(self.code_lines, 1):
            stripped = line.strip()
            if not stripped:
                continue
            if stripped != "#pragma once":
                self.report(
                    "pragma-once", lineno,
                    "header must open with #pragma once before any other "
                    "directive or declaration")
            return
        self.report("pragma-once", 1, "header is empty or lacks #pragma once")

    def check_using_namespace(self) -> None:
        for lineno, line in enumerate(self.code_lines, 1):
            if USING_NAMESPACE_RE.search(line):
                self.report(
                    "using-namespace", lineno,
                    "using-namespace in a header pollutes every includer")


def collect_files(root: Path, args_paths: list[str]) -> list[Path]:
    if args_paths:
        files = []
        for p in args_paths:
            path = Path(p)
            if path.is_dir():
                files.extend(sorted(
                    f for f in path.rglob("*")
                    if f.suffix in EXTENSIONS and FIXTURE_DIR not in f.parts))
            else:
                files.append(path)
        return files
    files = []
    for d in SCAN_DIRS:
        base = root / d
        if base.is_dir():
            files.extend(sorted(
                f for f in base.rglob("*")
                if f.suffix in EXTENSIONS and FIXTURE_DIR not in f.parts))
    return files


def collect_unordered_names(files: list[Path]) -> set[str]:
    """Pass 1: every identifier declared anywhere as an unordered container.
    Member declarations live in headers while the iterating loops live in
    .cpp files, so the name table is global to the scan."""
    names: set[str] = set()
    for f in files:
        text = " ".join(strip_comments_and_strings(f.read_text(encoding="utf-8")))
        for m in UNORDERED_DECL_RE.finditer(text):
            names.add(m.group(1))
    return names


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("paths", nargs="*", help="files or directories")
    args = parser.parse_args()

    root = Path(args.root)
    files = collect_files(root, args.paths)
    if not files:
        print("ipg_lint: no input files", file=sys.stderr)
        return 2

    unordered_names = collect_unordered_names(files)
    diags: list[Diagnostic] = []
    for f in files:
        try:
            rel = f.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = f.as_posix()
        diags.extend(FileLint(f, rel, unordered_names).run())

    for d in sorted(diags, key=lambda d: (str(d.path), d.line)):
        print(d)
    if diags:
        print(f"ipg_lint: {len(diags)} diagnostic(s)", file=sys.stderr)
        return 1
    print(f"ipg_lint: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
