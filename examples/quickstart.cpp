// Quickstart: build a hierarchical swap network, inspect its topology,
// route a message, and read the packaging metrics — the five-minute tour
// of the library.
//
//   $ ./quickstart
#include <iostream>

#include "cluster/imetrics.hpp"
#include "cluster/partitions.hpp"
#include "graph/metrics.hpp"
#include "ipg/families.hpp"
#include "ipg/schedule.hpp"
#include "route/super_ip_routing.hpp"
#include "topo/hypercube.hpp"

int main() {
  using namespace ipg;

  // 1. Describe the network declaratively: HSN(2, Q3) is the paper's
  //    HCN(3,3) without diameter links — two 3-cube "super-symbols" with a
  //    swap super-generator.
  const SuperIPSpec spec = make_hsn(2, hypercube_nucleus(3));
  std::cout << "network: " << spec.name << "  (l=" << spec.l
            << ", m=" << spec.m << ")\n";

  // 2. Materialize it and look at the topology.
  const IPGraph net = build_super_ip_graph(spec);
  const TopologyProfile p = profile(net.graph);
  std::cout << "nodes " << p.nodes << ", links " << p.links << ", degree "
            << p.degree << ", diameter " << p.diameter << "\n";
  std::cout << "Theorem 4.1 predicts diameter l*D_G + t = 2*3 + "
            << compute_t(spec) << " = " << 2 * 3 + compute_t(spec) << "\n";

  // 3. Route between two nodes with the paper's sorting algorithm. The
  //    router works on labels, so it would scale far past what we can
  //    enumerate.
  const Label src = net.labels()[3];
  const Label dst = net.labels()[200 % net.num_nodes()];
  const GenPath path = route_super_ip(spec, src, dst);
  std::cout << "route " << label_to_string_grouped(src, spec.m) << "  ->  "
            << label_to_string_grouped(dst, spec.m) << "  in "
            << path.length() << " hops:";
  const IPGraphSpec lifted = spec.to_ip_spec();
  for (const int g : path.gens) {
    std::cout << ' ' << lifted.generators[static_cast<std::size_t>(g)].name;
  }
  std::cout << "\n";

  // 4. Packaging view: one 8-node nucleus per module.
  const Clustering modules = cluster_by_nucleus(net, spec.m);
  const IMetrics im = i_metrics(net.graph, modules);
  std::cout << "modules: " << modules.num_modules << " x "
            << modules.max_module_size() << " nodes, I-degree " << im.i_degree
            << ", I-diameter " << im.i_diameter << ", avg I-distance "
            << im.avg_i_distance << "\n";
  std::cout << "=> a message leaves its module at most " << im.i_diameter
            << " time(s), vs " << p.diameter << " total hops.\n";
  return 0;
}
