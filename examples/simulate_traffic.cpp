// Traffic simulation: compare a hierarchical network against a hypercube
// of the same size under uniform random traffic when off-module links are
// the bottleneck — the Section 5 scenario, run end to end on the
// discrete-event simulator.
//
//   $ ./simulate_traffic
#include <iostream>

#include "cluster/imetrics.hpp"
#include "cluster/partitions.hpp"
#include "graph/metrics.hpp"
#include "ipg/families.hpp"
#include "net/topology.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "topo/hypercube.hpp"
#include "util/table.hpp"

int main() {
  using namespace ipg;

  // 256-node contenders, 16-node modules, off-module links 4x slower.
  const SuperIPSpec hsn_spec = make_hsn(2, hypercube_nucleus(4));
  const IPGraph hsn = build_super_ip_graph(hsn_spec);
  const Clustering hsn_modules = cluster_by_nucleus(hsn, hsn_spec.m);

  const Graph cube = topo::hypercube(8);
  const Clustering cube_modules = cluster_hypercube(8, 4);

  const sim::LinkTiming timing{1.0, 4.0};
  const sim::SimNetwork hsn_net(hsn.graph, timing, hsn_modules);
  const sim::SimNetwork cube_net(cube, timing, cube_modules);

  Table t({"offered load", "HSN(2,Q4) latency", "Q8 latency",
           "HSN off-hops", "Q8 off-hops"});
  for (const double load : {0.02, 0.05, 0.1, 0.2}) {
    const auto packets =
        sim::uniform_traffic(256, load * 256.0, 400.0, /*seed=*/21);
    const auto rh = simulate(hsn_net, packets);
    const auto rc = simulate(cube_net, packets);
    t.add_row({Table::fixed(load, 2), Table::fixed(rh.latency.mean(), 2),
               Table::fixed(rc.latency.mean(), 2),
               Table::fixed(rh.latency.mean_off_module_hops(), 2),
               Table::fixed(rc.latency.mean_off_module_hops(), 2)});
  }
  t.print(std::cout);

  const IMetrics ih = i_metrics(hsn.graph, hsn_modules);
  const IMetrics ic = i_metrics(cube, cube_modules);
  std::cout << "\nwhy: HSN(2,Q4) has I-degree " << ih.i_degree
            << " and I-diameter " << ih.i_diameter << "; Q8 has I-degree "
            << ic.i_degree << " and I-diameter " << ic.i_diameter
            << " — II-cost " << ih.i_degree * ih.i_diameter << " vs "
            << ic.i_degree * ic.i_diameter << " (Section 5.4).\n";

  // Beyond materialization: the same simulator runs on HSN(6, Q4) —
  // 16^6 = 16,777,216 nodes — through the implicit topology and the
  // label-routing policy. No IPGraph, no routing tables; each packet
  // carries a Theorem 4.1 source route computed from its labels.
  const SuperIPSpec big_spec = make_hsn(6, hypercube_nucleus(4));
  const net::ImplicitSuperIPTopology big(big_spec);
  const sim::SimNetwork big_net(big, timing);
  const auto packets = sim::uniform_traffic(
      static_cast<Node>(big.num_nodes()), 40.0, 25.0, /*seed=*/22);
  const auto rb = simulate(big_net, packets);
  std::cout << "\nimplicit HSN(6,Q4), " << big.num_nodes() << " nodes: "
            << rb.delivered << "/" << packets.size()
            << " sampled packets delivered, mean latency "
            << Table::fixed(rb.latency.mean(), 2) << ", mean hops "
            << Table::fixed(rb.latency.mean_hops(), 2)
            << " (no graph ever built)\n";
  return 0;
}
