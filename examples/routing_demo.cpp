// Routing demo: watches the Theorem 4.1 algorithm sort a label hop by hop
// through HSN(3, Q2), then contrasts it with optimal star-graph routing —
// the two "routing as sorting" algorithms of Section 4.
//
//   $ ./routing_demo
#include <iostream>

#include "ipg/families.hpp"
#include "ipg/ranking.hpp"
#include "route/path.hpp"
#include "route/star_routing.hpp"
#include "route/super_ip_routing.hpp"
#include "topo/hypercube.hpp"

int main() {
  using namespace ipg;

  std::cout << "== Theorem 4.1 routing on HSN(3, Q2) ==\n";
  const SuperIPSpec spec = make_hsn(3, hypercube_nucleus(2));
  const IPGraph net = build_super_ip_graph(spec);
  const SuperRanking ranking(spec);
  const IPGraphSpec lifted = spec.to_ip_spec();

  const Label src = net.labels()[5];
  const Label dst = net.labels()[47];
  const GenPath path = route_super_ip(spec, src, dst);
  std::cout << "from " << label_to_string_grouped(src, spec.m) << " (rank "
            << ranking.radix_string(src) << ") to "
            << label_to_string_grouped(dst, spec.m) << " (rank "
            << ranking.radix_string(dst) << ")\n";

  Label current = src;
  for (const int g : path.gens) {
    const auto& gen = lifted.generators[static_cast<std::size_t>(g)];
    current = gen.perm.apply(current);
    std::cout << "  --" << gen.name << (gen.is_super ? " (super)" : "  ")
              << "->  " << label_to_string_grouped(current, spec.m)
              << "   rank " << ranking.radix_string(current) << "\n";
  }
  std::cout << "arrived in " << path.length()
            << " hops (diameter is " << 3 * 2 + 2 << ")\n\n";

  std::cout << "== Optimal star-graph routing (cycle sort) ==\n";
  const Label s = make_label({4, 1, 5, 2, 3});
  const Label d = make_label({1, 2, 3, 4, 5});
  std::cout << "from " << label_to_string(s) << " to " << label_to_string(d)
            << "\n";
  const GenPath sp = route_star(s, d);
  const IPGraphSpec star = star_nucleus(5);
  Label walk = s;
  for (const int g : sp.gens) {
    const auto& sg = star.generators[static_cast<std::size_t>(g)];
    walk = sg.perm.apply(walk);
    std::cout << "  --" << sg.name << "->  "
              << label_to_string(walk) << "\n";
  }
  std::cout << "took " << sp.length() << " hops; the cycle formula predicts "
            << star_distance(s, d) << " (optimal)\n";
  return 0;
}
