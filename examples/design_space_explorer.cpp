// Design-space explorer: the engineering workflow the paper motivates in
// its conclusion — pick a nucleus, a super-generator set and a level count
// to balance DD-, ID- and II-cost under packaging constraints.
//
// Given a target machine size and a per-module node budget, sweeps the
// library's families and prints the frontier, ranked by II-cost (the
// figure of merit when off-module bandwidth dominates).
//
//   $ ./design_space_explorer
#include <algorithm>
#include <iostream>

#include "analysis/bounds.hpp"
#include "analysis/cost_model.hpp"
#include "util/table.hpp"

int main() {
  using namespace ipg;

  const double target_log2 = 20.0;  // ~1M processors
  const double tolerance = 3.0;     // accept 2^17 .. 2^23
  std::cout << "Design goal: ~2^" << target_log2
            << " processors, <= 16 nodes per module\n\n";

  std::vector<CostPoint> candidates;
  auto consider = [&](const std::vector<CostPoint>& sweep) {
    for (const auto& p : sweep) {
      if (std::abs(p.log2_nodes() - target_log2) <= tolerance) {
        candidates.push_back(p);
      }
    }
  };

  consider(sweep_hypercube(8, 24, 4));
  consider(sweep_torus2d({256, 512, 1024, 2048}, 4, 4));
  consider(sweep_hsn(2, 8, hypercube_nums(4)));
  consider(sweep_ring_cn(2, 8, hypercube_nums(4)));
  consider(sweep_ring_cn(2, 8, folded_hypercube_nums(4)));
  consider(sweep_complete_cn(2, 8, hypercube_nums(4)));
  consider(sweep_super_flip(2, 8, hypercube_nums(4)));
  consider(sweep_ring_cn(2, 8, generalized_hypercube_nums(
                                   std::vector<int>{4, 4})));

  std::sort(candidates.begin(), candidates.end(),
            [](const CostPoint& a, const CostPoint& b) {
              return a.ii_cost() < b.ii_cost();
            });

  Table t({"rank", "family", "log2(N)", "degree", "diameter", "DD", "ID",
           "II", "diam/LB"});
  int rank = 1;
  for (const auto& p : candidates) {
    t.add_row({Table::num(std::int64_t{rank++}), p.family,
               Table::fixed(p.log2_nodes(), 1), Table::fixed(p.degree, 0),
               Table::num(std::uint64_t{p.diameter}),
               Table::fixed(p.dd_cost(), 0), Table::fixed(p.id_cost(), 1),
               Table::fixed(p.ii_cost(), 1),
               Table::fixed(diameter_optimality_factor(
                                p.nodes, static_cast<std::uint32_t>(p.degree),
                                p.diameter),
                            2)});
  }
  t.print(std::cout);

  if (!candidates.empty()) {
    std::cout << "\nRecommendation: " << candidates.front().family
              << " — lowest II-cost at the target scale; every message "
                 "crosses modules at most "
              << candidates.front().i_diameter << " time(s).\n";
  }
  return 0;
}
