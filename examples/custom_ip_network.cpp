// Custom network: design your own interconnection topology with the IP
// model — pick a seed and a handful of index permutations, and the library
// does the rest (generation, metrics, symmetry analysis). Demonstrates the
// "flexibility" argument of the paper's conclusion.
//
// The example invents a "twisted ring of cubes": three Q2 super-symbols
// moved by a single cyclic shift plus one transposition — a hybrid of the
// CN and HSN generator sets.
//
//   $ ./custom_ip_network
#include <iostream>

#include "analysis/bounds.hpp"
#include "graph/connectivity.hpp"
#include "graph/metrics.hpp"
#include "graph/symmetry.hpp"
#include "ipg/build.hpp"
#include "ipg/families.hpp"
#include "ipg/schedule.hpp"
#include "ipg/super.hpp"
#include "ipg/symmetric.hpp"
#include "topo/hypercube.hpp"

int main() {
  using namespace ipg;

  // Assemble a custom super-IP spec by hand.
  SuperIPSpec spec;
  spec.name = "hybrid-CN/HSN(3,Q2)";
  spec.l = 3;
  spec.m = 4;  // Q2 pair encoding uses 4 symbols
  const IPGraphSpec q2 = hypercube_nucleus(2);
  spec.nucleus_gens = q2.generators;
  spec.super_gens = {
      {"L", Permutation::rotate_left(3, 1), true},
      {"T2", Permutation::transposition(3, 0, 1), true},
  };
  spec.seed = repeat_label(q2.seed, 3);

  std::cout << "custom spec valid: " << std::boolalpha << spec.valid() << "\n";
  std::cout << "inverse-closed: " << spec.to_ip_spec().inverse_closed()
            << "  (L's inverse = T2 o L o T2 exists in the closure,"
               " but as a *set* this one is directed)\n";

  const IPGraph net = build_super_ip_graph(spec);
  const TopologyProfile p = profile(net.graph);
  std::cout << "nodes " << p.nodes << ", degree " << p.degree << ", diameter "
            << p.diameter << ", strongly connected "
            << is_strongly_connected(net.graph) << "\n";

  // Theorem 4.1 still applies: t is computed, not assumed.
  const int t = compute_t(spec);
  std::cout << "t = " << t << "  =>  diameter bound l*D_G + t = "
            << 3 * 2 + t << " (measured " << p.diameter << ")\n";

  // How far from the universal degree/diameter bound did we land?
  std::cout << "Moore-bound optimality factor: "
            << diameter_optimality_factor(p.nodes, p.degree, p.diameter)
            << "\n";

  // And its regular, vertex-symmetric Cayley variant, one line away.
  const IPGraph sym = build_super_ip_graph(make_symmetric(spec));
  std::cout << "symmetric variant: " << sym.num_nodes() << " nodes, "
            << "vertex-transitive " << looks_vertex_transitive(sym.graph)
            << ", regular " << is_regular(sym.graph) << "\n";
  return 0;
}
