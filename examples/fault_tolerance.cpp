// Fault tolerance: measure vertex connectivity (how many simultaneous node
// failures a network provably survives) and vertex-disjoint path counts —
// the property the paper's introduction credits star graphs and their
// hierarchical relatives with. Then exercise the guarantee live: inject a
// seeded FaultPlan and watch the adaptive router deliver every surviving
// pair anyway.
//
//   $ ./fault_tolerance
#include <iostream>
#include <vector>

#include "graph/flow.hpp"
#include "graph/metrics.hpp"
#include "ipg/families.hpp"
#include "ipg/symmetric.hpp"
#include "net/topology.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"
#include "topo/hypercube.hpp"
#include "topo/misc.hpp"
#include "topo/star.hpp"
#include "util/table.hpp"

int main() {
  using namespace ipg;

  std::cout << "Vertex connectivity = node failures survivable + 1\n\n";
  Table t({"network", "N", "min degree", "connectivity", "survives"});

  auto row = [&](const std::string& name, const Graph& g) {
    const auto deg = degree_stats(g);
    const int kappa = vertex_connectivity(g);
    t.add_row({name, Table::num(std::uint64_t{g.num_nodes()}),
               Table::num(std::uint64_t{deg.min_degree}),
               Table::num(std::int64_t{kappa}),
               std::to_string(kappa - 1) + " faults"});
  };

  row("hypercube Q4", topo::hypercube(4));
  row("star S5", topo::star_graph(5));
  row("Petersen", topo::petersen());

  const IPGraph hcn = build_super_ip_graph(make_hcn(3));
  row("HCN(3,3) w/o diameter links", hcn.graph);
  row("HCN(3,3) with diameter links", add_hcn_diameter_links(hcn, 3));

  const IPGraph sym =
      build_super_ip_graph(make_symmetric(make_hsn(2, hypercube_nucleus(2))));
  row("sym-HSN(2,Q2)", sym.graph);

  t.print(std::cout);

  std::cout << "\nDisjoint-path detail for HCN(3,3): the (x,x) nodes have "
               "degree 3, capping connectivity;\nGhose-Desai diameter links "
               "attach exactly there and lift it:\n";
  const Graph full = add_hcn_diameter_links(hcn, 3);
  std::cout << "  disjoint paths node0 -> antipode: without links = "
            << max_vertex_disjoint_paths(hcn.graph, 0, hcn.num_nodes() - 1)
            << ", with links = "
            << max_vertex_disjoint_paths(full, 0, hcn.num_nodes() - 1) << "\n";

  // Now the guarantee in motion: HSN(2,Q3) is maximally connected (kappa
  // equals its minimum degree, 3 — diagonal nodes drop the self-loop super
  // generator), so any kappa - 1 node failures leave the survivors
  // connected — and the adaptive router (sim/faults.hpp) must deliver
  // all-pairs traffic between them.
  const SuperIPSpec spec = make_hsn(2, hypercube_nucleus(3));
  const net::ImplicitSuperIPTopology topo(spec);
  const sim::SimNetwork net(topo, sim::LinkTiming{1.0, 1.0});
  const int kappa =
      vertex_connectivity(build_super_ip_graph(spec).graph);
  const sim::FaultPlan plan =
      sim::FaultPlan::random_node_faults(topo.num_nodes(), kappa - 1, /*seed=*/1);
  const net::FaultSet at0 = plan.snapshot(0.0);

  std::vector<sim::Packet> packets;
  double when = 0.0;
  for (net::NodeId s = 0; s < topo.num_nodes(); ++s) {
    for (net::NodeId d = 0; d < topo.num_nodes(); ++d) {
      if (s == d || !at0.node_up(s) || !at0.node_up(d)) continue;
      packets.push_back({static_cast<Node>(s), static_cast<Node>(d), when});
      when += 100.0;  // idle network: isolate routing from queueing
    }
  }
  const sim::FaultSimResult r = simulate_with_faults(net, packets, plan);
  std::cout << "\nAdaptive routing on HSN(2,Q3) with " << kappa - 1
            << " random node faults (kappa = " << kappa << "):\n"
            << "  surviving pairs " << r.injected << ", delivered "
            << r.delivered << " (rate " << r.delivery_rate() << "), detours "
            << r.detours << ", hop inflation " << r.hop_inflation() << "\n";
  return 0;
}
