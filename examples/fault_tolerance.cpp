// Fault tolerance: measure vertex connectivity (how many simultaneous node
// failures a network provably survives) and vertex-disjoint path counts —
// the property the paper's introduction credits star graphs and their
// hierarchical relatives with.
//
//   $ ./fault_tolerance
#include <iostream>

#include "graph/flow.hpp"
#include "graph/metrics.hpp"
#include "ipg/families.hpp"
#include "ipg/symmetric.hpp"
#include "topo/hypercube.hpp"
#include "topo/misc.hpp"
#include "topo/star.hpp"
#include "util/table.hpp"

int main() {
  using namespace ipg;

  std::cout << "Vertex connectivity = node failures survivable + 1\n\n";
  Table t({"network", "N", "min degree", "connectivity", "survives"});

  auto row = [&](const std::string& name, const Graph& g) {
    const auto deg = degree_stats(g);
    const int kappa = vertex_connectivity(g);
    t.add_row({name, Table::num(std::uint64_t{g.num_nodes()}),
               Table::num(std::uint64_t{deg.min_degree}),
               Table::num(std::int64_t{kappa}),
               std::to_string(kappa - 1) + " faults"});
  };

  row("hypercube Q4", topo::hypercube(4));
  row("star S5", topo::star_graph(5));
  row("Petersen", topo::petersen());

  const IPGraph hcn = build_super_ip_graph(make_hcn(3));
  row("HCN(3,3) w/o diameter links", hcn.graph);
  row("HCN(3,3) with diameter links", add_hcn_diameter_links(hcn, 3));

  const IPGraph sym =
      build_super_ip_graph(make_symmetric(make_hsn(2, hypercube_nucleus(2))));
  row("sym-HSN(2,Q2)", sym.graph);

  t.print(std::cout);

  std::cout << "\nDisjoint-path detail for HCN(3,3): the (x,x) nodes have "
               "degree 3, capping connectivity;\nGhose-Desai diameter links "
               "attach exactly there and lift it:\n";
  const Graph full = add_hcn_diameter_links(hcn, 3);
  std::cout << "  disjoint paths node0 -> antipode: without links = "
            << max_vertex_disjoint_paths(hcn.graph, 0, hcn.num_nodes() - 1)
            << ", with links = "
            << max_vertex_disjoint_paths(full, 0, hcn.num_nodes() - 1) << "\n";
  return 0;
}
