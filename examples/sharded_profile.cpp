// Sharded execution: the same exact analysis and the same fault-aware
// simulation run over an explicit rank-range shard seam (docs/MODEL.md
// §12) — and produce bit-identical numbers whatever the decomposition.
// The point of the demo: sharding is an execution detail, never a result
// detail, so figures computed on a laptop at 1 shard match a future
// MPI run at 64 ranks digit for digit.
//
//   $ ./sharded_profile
#include <iostream>

#include "analysis/exact.hpp"
#include "ipg/families.hpp"
#include "net/topology.hpp"
#include "shard/fault_engine.hpp"
#include "shard/partition.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"
#include "sim/traffic.hpp"
#include "topo/hypercube.hpp"

int main() {
  using namespace ipg;

  // --- Exact analysis through the shard seam.
  const SuperIPSpec spec = make_hsn(2, hypercube_nucleus(3));
  const IPGraph g = build_super_ip_graph(spec);
  std::cout << spec.name << ": " << g.num_nodes() << " nodes\n\n";

  for (const int shards : {1, 4}) {
    ExactOptions opts;
    opts.num_shards = shards;
    const ExactAnalysis ea = exact_analysis(g.graph, ExecPolicy{4}, opts);
    std::cout << shards << " shard(s): diameter " << ea.distances.diameter
              << ", avg distance " << ea.distances.average_distance << "\n";
  }
  std::cout << "(identical by the shard determinism contract)\n\n";

  // --- Fault-aware simulation through the same seam: packets migrate
  // between shard-owned rank ranges as messages; the FaultSimResult is
  // bit-identical to the sequential simulator.
  const net::ImplicitSuperIPTopology topo(spec);
  const sim::SimNetwork net(topo, sim::LinkTiming{1.0, 2.0});
  const auto packets = sim::uniform_traffic(
      static_cast<Node>(topo.num_nodes()), 2.0, 60.0, 17);
  const sim::FaultPlan plan = sim::FaultPlan::random_transient_node_faults(
      topo.num_nodes(), 3, 40.0, 8.0, 5);

  const sim::FaultSimResult seq = simulate_with_faults(net, packets, plan);
  const shard::RankRangePartition part(topo.num_nodes(), 4);
  const sim::FaultSimResult shd = shard::sharded_simulate_with_faults(
      net, packets, plan, part, {}, {}, ExecPolicy{4});

  std::cout << "fault sim, sequential: delivered " << seq.delivered << "/"
            << seq.injected << ", mean latency " << seq.latency.mean()
            << ", detours " << seq.detours << "\n";
  std::cout << "fault sim, 4 shards:   delivered " << shd.delivered << "/"
            << shd.injected << ", mean latency " << shd.latency.mean()
            << ", detours " << shd.detours << "\n";
  const bool same = seq.delivered == shd.delivered &&
                    seq.latency.mean() == shd.latency.mean() &&
                    seq.makespan == shd.makespan;
  std::cout << (same ? "bit-identical across the seam\n"
                     : "DIVERGED (bug!)\n");
  return same ? 0 : 1;
}
