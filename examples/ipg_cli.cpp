// ipg_cli: command-line network explorer.
//
// Build any super-IP family over any library nucleus and print its
// topology, schedule and packaging metrics — or dump it as Graphviz DOT.
//
//   ipg_cli <family> <l> <nucleus> [--symmetric] [--dot] [--no-metrics]
//
//   family   hsn | ring | complete | directed | flip
//   nucleus  qN (hypercube) | fqN (folded) | sN (star) | pN (pancake)
//            | bN (bubble-sort) | kN (complete) | cN (cycle)
//            | ghR1xR2[x...] (generalized hypercube) | karyKxN (torus)
//
// Examples:
//   ipg_cli hsn 2 q3            # HCN(3,3) without diameter links
//   ipg_cli ring 3 gh4x4 --symmetric
//   ipg_cli flip 3 q2 --dot > sfn.dot
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "cluster/imetrics.hpp"
#include "cluster/partitions.hpp"
#include "graph/dot.hpp"
#include "graph/metrics.hpp"
#include "graph/symmetry.hpp"
#include "ipg/families.hpp"
#include "ipg/schedule.hpp"
#include "ipg/symmetric.hpp"
#include "util/table.hpp"

namespace {

using namespace ipg;

void usage() {
  std::cerr
      << "usage: ipg_cli <family> <l> <nucleus> [--symmetric] [--dot]\n"
         "  family:  hsn | ring | complete | directed | flip\n"
         "  nucleus: qN fqN sN pN bN kN cN ghR1xR2[x..] karyKxN\n"
         "example: ipg_cli hsn 2 q3\n";
}

/// Parses "3x4x5" style dimension lists.
std::vector<int> parse_dims(const std::string& s) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t next = s.find('x', pos);
    out.push_back(std::stoi(s.substr(pos, next - pos)));
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  return out;
}

IPGraphSpec parse_nucleus(const std::string& s) {
  if (s.rfind("rot", 0) == 0) return rotator_nucleus(std::stoi(s.substr(3)));
  if (s.rfind("fq", 0) == 0) return folded_hypercube_nucleus(std::stoi(s.substr(2)));
  if (s.rfind("gh", 0) == 0) {
    const auto dims = parse_dims(s.substr(2));
    return generalized_hypercube_nucleus(dims);
  }
  if (s.rfind("kary", 0) == 0) {
    const auto dims = parse_dims(s.substr(4));
    if (dims.size() != 2) throw std::invalid_argument("karyKxN expects two numbers");
    return kary_ncube_nucleus(dims[0], dims[1]);
  }
  const int value = std::stoi(s.substr(1));
  switch (s[0]) {
    case 'q': return hypercube_nucleus(value);
    case 's': return star_nucleus(value);
    case 'p': return pancake_nucleus(value);
    case 'b': return bubble_sort_nucleus(value);
    case 'k': return complete_nucleus(value);
    case 'c': return cycle_nucleus(value);
    default: throw std::invalid_argument("unknown nucleus: " + s);
  }
}

SuperIPSpec parse_family(const std::string& family, int l,
                         const IPGraphSpec& nucleus) {
  if (family == "hsn") return make_hsn(l, nucleus);
  if (family == "ring") return make_ring_cn(l, nucleus);
  if (family == "complete") return make_complete_cn(l, nucleus);
  if (family == "directed") return make_directed_cn(l, nucleus);
  if (family == "flip") return make_super_flip(l, nucleus);
  throw std::invalid_argument("unknown family: " + family);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    usage();
    return argc == 1 ? 0 : 2;
  }
  bool symmetric = false, dot = false;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--symmetric") == 0) {
      symmetric = true;
    } else if (std::strcmp(argv[i], "--dot") == 0) {
      dot = true;
    } else {
      usage();
      return 2;
    }
  }

  try {
    const int l = std::stoi(argv[2]);
    const IPGraphSpec nucleus = parse_nucleus(argv[3]);
    SuperIPSpec spec = parse_family(argv[1], l, nucleus);
    const SuperIPSpec base = spec;
    if (symmetric) spec = make_symmetric(spec);

    // Auto policy: IPG_THREADS env override, hardware_concurrency default;
    // results are identical to serial at any thread count.
    const ExecPolicy exec{};
    const IPGraph net =
        build_super_ip_graph(spec, /*max_nodes=*/1u << 22, exec);

    if (dot) {
      DotOptions options;
      options.graph_name = "net";
      options.label = [&](Node u) {
        return label_to_string_grouped(net.labels()[u], spec.m);
      };
      const Clustering modules = cluster_by_nucleus(net, spec.m);
      options.modules = &modules;
      write_dot(std::cout, net.graph, options);
      return 0;
    }

    const TopologyProfile p = profile(net.graph, exec);
    const IPGraph nucleus_graph = build_ip_graph(spec.nucleus_spec());
    const Dist nucleus_diam = profile(nucleus_graph.graph).diameter;
    const int t = compute_t(base);
    const int t_s = compute_t_symmetric(base);

    std::cout << "network        " << spec.name << "\n"
              << "nodes          " << p.nodes << "\n"
              << "links          " << p.links
              << (p.symmetric_digraph ? "" : " (directed arcs)") << "\n"
              << "degree         " << p.degree << "\n"
              << "diameter       " << p.diameter << "  (theorem: l*D_G + "
              << (symmetric ? "t_S" : "t") << " = " << l << "*" << nucleus_diam
              << " + " << (symmetric ? t_s : t) << ")\n"
              << "avg distance   " << Table::fixed(p.average_distance) << "\n"
              << "t / t_S        " << t << " / " << t_s << "\n"
              << "moore factor   "
              << Table::fixed(diameter_optimality_factor(p.nodes, p.degree,
                                                        p.diameter))
              << "\n"
              << "vertex-trans.  "
              << (looks_vertex_transitive(net.graph) ? "yes" : "no") << "\n";

    const Clustering modules = cluster_by_nucleus(net, spec.m);
    const IMetrics im = i_metrics(net.graph, modules, exec);
    std::cout << "modules        " << modules.num_modules << " x "
              << modules.max_module_size() << " nodes\n"
              << "I-degree       " << Table::fixed(im.i_degree) << "\n"
              << "I-diameter     " << im.i_diameter << "\n"
              << "avg I-dist     " << Table::fixed(im.avg_i_distance) << "\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
