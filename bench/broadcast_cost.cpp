// BCAST — Executable check of the paper's algorithmic locality claim
// (Section 1): "the required data movements when performing many important
// algorithms on (symmetric) super-IP graphs are largely confined within
// basic modules". Broadcast is the canonical collective: the module-staged
// algorithm needs exactly (#modules - 1) off-module messages, while the
// flat BFS-tree broadcast pays off-module for most of its tree edges —
// and hierarchical networks also keep the flat broadcast's off-module
// count low because their links are mostly intra-module.
#include <iostream>

#include "algo/broadcast.hpp"
#include "cluster/partitions.hpp"
#include "ipg/families.hpp"
#include "topo/hypercube.hpp"
#include "topo/torus.hpp"
#include "util/table.hpp"

using namespace ipg;

int main() {
  std::cout << "BCAST: broadcast cost, flat BFS tree vs module-staged "
               "(messages crossing modules / rounds)\n\n";

  struct Case {
    std::string name;
    Graph g;
    Clustering c;
  };
  std::vector<Case> cases;
  {
    const SuperIPSpec s = make_hsn(3, hypercube_nucleus(4));
    const IPGraph g = build_super_ip_graph(s);
    cases.push_back({s.name, g.graph, cluster_by_nucleus(g, s.m)});
  }
  {
    const SuperIPSpec s = make_ring_cn(3, hypercube_nucleus(4));
    const IPGraph g = build_super_ip_graph(s);
    cases.push_back({s.name, g.graph, cluster_by_nucleus(g, s.m)});
  }
  cases.push_back({"hypercube Q12", topo::hypercube(12),
                   cluster_hypercube(12, 4)});
  cases.push_back({"2-D torus 64x64", topo::torus2d(64, 64),
                   cluster_torus2d(64, 64, 4, 4)});

  Table t({"network", "N", "modules", "flat off-msgs", "staged off-msgs",
           "flat rounds", "staged rounds"});
  for (const auto& c : cases) {
    const auto flat = algo::flat_broadcast(c.g, 0, &c.c);
    const auto staged = algo::staged_broadcast(c.g, c.c, 0);
    t.add_row({c.name, Table::num(std::uint64_t{c.g.num_nodes()}),
               Table::num(std::uint64_t{c.c.num_modules}),
               Table::num(flat.off_module_messages),
               Table::num(staged.off_module_messages),
               Table::num(std::int64_t{flat.rounds}),
               Table::num(std::int64_t{staged.rounds})});
  }
  t.print(std::cout);
  std::cout << "\nReading: staged broadcast always hits the floor of "
               "modules-1 off-module messages; on super-IP graphs even the "
               "flat tree stays near that floor (their off-module links "
               "are scarce by design), while the hypercube's flat tree "
               "crosses modules for most sends.\n";
  return 0;
}
