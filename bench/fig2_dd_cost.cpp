// FIG2 — Reproduces Fig. 2: DD-cost (node degree x network diameter) vs
// network size for the paper's comparison set. All points come from the
// closed forms in src/analysis (validated against BFS in the test suite);
// the paper's qualitative claims to check are:
//   * cyclic-shift networks have DD-cost comparable to the star graph;
//   * both beat hypercubes, folded hypercubes, tori and CCC, increasingly
//     so at large sizes.
#include <iostream>

#include "analysis/avg_distance.hpp"
#include "analysis/cost_model.hpp"
#include "analysis/exact.hpp"
#include "graph/metrics.hpp"
#include "ipg/families.hpp"
#include "topo/hypercube.hpp"
#include "util/table.hpp"

using namespace ipg;

namespace {

void emit(Table& t, const std::vector<CostPoint>& series) {
  for (const auto& p : series) {
    t.add_row({p.family, Table::num(p.nodes), Table::fixed(p.log2_nodes(), 1),
               Table::fixed(p.degree, 0), Table::num(std::uint64_t{p.diameter}),
               Table::fixed(p.dd_cost(), 0)});
  }
}

}  // namespace

int main() {
  std::cout << "FIG2: DD-cost = degree * diameter vs network size "
               "(paper Fig. 2)\n\n";
  Table t({"family", "N", "log2(N)", "degree", "diameter", "DD-cost"});

  emit(t, sweep_hypercube(4, 24, 4));
  // Folded hypercubes: degree n+1, diameter ceil(n/2).
  {
    std::vector<CostPoint> fq;
    for (int n = 4; n <= 24; n += 2) {
      fq.push_back(cost_point(folded_hypercube_nums(n), 0, 0));
    }
    emit(t, fq);
  }
  emit(t, sweep_star(4, 12, 3));
  emit(t, sweep_torus2d({4, 8, 16, 32, 64, 128, 256, 512, 1024}, 4, 4));
  emit(t, sweep_ccc(3, 18));
  emit(t, sweep_de_bruijn(6, 24, 4));
  emit(t, sweep_hsn(2, 7, hypercube_nums(4)));
  emit(t, sweep_complete_cn(2, 7, hypercube_nums(4)));
  emit(t, sweep_ring_cn(2, 7, hypercube_nums(4)));
  emit(t, sweep_ring_cn(2, 7, folded_hypercube_nums(4)));
  emit(t, sweep_ring_cn(2, 8, petersen_nums()));

  t.print(std::cout);

  // Companion table: degree x average distance, the second figure of
  // merit Section 5.1 names ("diameter and average distance ... crucial
  // for network performance under heavy load"). Closed forms where exact,
  // all-pairs BFS for the hierarchical families (marked 'measured').
  std::cout << "\nDA-cost = degree * average distance (Section 5.1 "
               "companion):\n\n";
  Table da({"family", "N", "degree", "avg distance", "DA-cost", "source"});
  auto da_row = [&](const std::string& name, std::uint64_t nodes, double degree,
                    double avg, const char* source) {
    da.add_row({name, Table::num(nodes), Table::fixed(degree, 0),
                Table::fixed(avg, 3), Table::fixed(degree * avg, 1), source});
  };
  for (int n = 8; n <= 20; n += 4) {
    da_row("Q" + std::to_string(n), std::uint64_t{1} << n, n,
           hypercube_avg_distance(n), "closed form");
  }
  for (int n = 7; n <= 11; n += 2) {
    da_row(star_nums(n).name, star_nums(n).nodes, n - 1.0,
           star_avg_distance(n), "closed form");
  }
  for (int s = 32; s <= 512; s *= 4) {
    da_row("torus " + std::to_string(s) + "x" + std::to_string(s),
           static_cast<std::uint64_t>(s) * static_cast<std::uint64_t>(s), 4.0,
           torus2d_avg_distance(s, s),
           "closed form");
  }
  for (int l = 2; l <= 3; ++l) {
    for (const auto& spec : {make_hsn(l, hypercube_nucleus(4)),
                             make_ring_cn(l, hypercube_nucleus(4))}) {
      // Auto ExecPolicy: the measured rows are the expensive part of this
      // figure, and the parallel engine is bit-identical to serial.
      const ExecPolicy exec{};
      const IPGraph g = build_super_ip_graph(spec, 1u << 24, exec);
      const auto p = exact_analysis(g.graph, exec).profile;
      da_row(spec.name, p.nodes, p.degree, p.average_distance, "measured");
    }
  }
  da.print(std::cout);

  // Headline checks at ~2^20 nodes.
  const auto cn20 = sweep_ring_cn(5, 5, hypercube_nums(4)).front();
  const auto q20 = sweep_hypercube(20, 20, 4).front();
  const auto star9 = sweep_star(9, 9, 3).front();  // 362880 ~ 2^18.5
  std::cout << "\ncheck @ ~1M nodes: ring-CN(5,Q4) DD = " << cn20.dd_cost()
            << "  vs hypercube Q20 DD = " << q20.dd_cost()
            << "  (star S9 DD = " << star9.dd_cost() << " at 2^18.5)\n";
  std::cout << (cn20.dd_cost() < q20.dd_cost() ? "PASS" : "FAIL")
            << ": cyclic-shift networks beat the hypercube on DD-cost\n";
  return 0;
}
