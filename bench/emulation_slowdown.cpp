// EMU — Measures the *actual* slowdown of running a normal hypercube
// algorithm on an HSN, end to end on the discrete-event simulator
// (Section 1: emulation "with asymptotically optimal slowdown").
//
// A normal algorithm is a sequence of dimension rounds: in round j every
// node exchanges a message with its dimension-j neighbor. We synthesize
// each round as a packet batch, run it on (a) the native hypercube
// Q_{l*n} and (b) HSN(l, Q_n) under the bit-block embedding, and compare
// total makespans. The static analysis (algo/emulation.hpp) bounds the
// ratio by dilation x congestion; the measured ratio lands well under it.
#include <iostream>

#include "algo/emulation.hpp"
#include "ipg/families.hpp"
#include "route/embedding.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "topo/hypercube.hpp"
#include "util/table.hpp"

using namespace ipg;

namespace {

/// Total makespan of running all l*n dimension rounds, one batch per
/// round, on `net` with node map `phi` (identity for the native run).
double run_rounds(const sim::SimNetwork& net, int dims,
                  const std::vector<Node>& phi) {
  double total = 0.0;
  const std::uint64_t guests = std::uint64_t{1} << dims;
  for (int j = 0; j < dims; ++j) {
    std::vector<sim::Packet> round;
    round.reserve(guests);
    for (std::uint64_t g = 0; g < guests; ++g) {
      const std::uint64_t partner = g ^ (std::uint64_t{1} << j);
      round.push_back(sim::Packet{phi[g], phi[partner], 0.0});
    }
    total += simulate(net, round).makespan;
  }
  return total;
}

}  // namespace

int main() {
  std::cout << "EMU: measured slowdown of normal hypercube algorithms on "
               "HSN(l, Q_n) (Section 1's emulation claim)\n\n";
  Table t({"host", "guest", "native makespan", "HSN makespan", "slowdown",
           "static bound"});

  for (const auto& [l, n] : {std::pair{2, 3}, {2, 4}, {3, 2}, {3, 3}}) {
    const int dims = l * n;
    const Graph guest = topo::hypercube(dims);
    const IPGraph hsn = build_super_ip_graph(make_hsn(l, hypercube_nucleus(n)));
    const auto phi = hsn_hypercube_embedding(hsn, l, n);
    std::vector<Node> identity(guest.num_nodes());
    for (Node u = 0; u < guest.num_nodes(); ++u) identity[u] = u;

    const sim::SimNetwork native(guest, sim::LinkTiming{1.0, 1.0});
    const sim::SimNetwork host(hsn.graph, sim::LinkTiming{1.0, 1.0});
    const double base = run_rounds(native, dims, identity);
    const double emu = run_rounds(host, dims, phi);
    const auto stats = algo::emulate_hypercube_rounds(hsn, l, n);

    t.add_row({"HSN(" + std::to_string(l) + ",Q" + std::to_string(n) + ")",
               "Q" + std::to_string(dims), Table::fixed(base, 1),
               Table::fixed(emu, 1), Table::fixed(emu / base, 2),
               Table::num(std::uint64_t{stats.slowdown_bound()})});
  }
  t.print(std::cout);
  std::cout << "\nReading: a degree-(n + l - 1) HSN runs any normal "
               "algorithm of the degree-(l*n) hypercube within a small "
               "constant factor — the measured ratio sits well below the "
               "dilation x congestion bound.\n";
  return 0;
}
