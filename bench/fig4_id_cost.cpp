// FIG4 — Reproduces Fig. 4: ID-cost (inter-cluster degree x diameter) vs
// network size, with at most 16 nodes per cluster. Under the paper's
// packet-switched model with fixed per-module off-chip capacity, light-load
// latency is proportional to ID-cost. Claim to check: cyclic-shift
// networks have considerably smaller ID-cost than hypercubes, star graphs
// and tori at every scale.
#include <iostream>

#include "analysis/cost_model.hpp"
#include "util/table.hpp"

using namespace ipg;

namespace {

void emit(Table& t, const std::vector<CostPoint>& series) {
  for (const auto& p : series) {
    t.add_row({p.family, Table::num(p.nodes), Table::fixed(p.log2_nodes(), 1),
               Table::fixed(p.i_degree, 2), Table::num(std::uint64_t{p.diameter}),
               Table::fixed(p.id_cost(), 1)});
  }
}

}  // namespace

int main() {
  std::cout << "FIG4: ID-cost = I-degree * diameter vs network size, "
               "<= 16 nodes per module (paper Fig. 4)\n\n";
  Table t({"family", "N", "log2(N)", "I-degree", "diameter", "ID-cost"});

  emit(t, sweep_hypercube(8, 24, 4));  // 4-cube modules
  // Star graph with 3-star (6-node) modules; I-degree = n - 3 measured
  // (see table_idegree). Diameter from the closed form.
  {
    std::vector<CostPoint> star;
    for (int n = 5; n <= 12; ++n) {
      star.push_back(cost_point(star_nums(n), n - 3.0, 0));
    }
    emit(t, star);
  }
  emit(t, sweep_torus2d({8, 16, 32, 64, 128, 256, 512, 1024}, 4, 4));
  emit(t, sweep_complete_cn(2, 7, hypercube_nums(4)));
  emit(t, sweep_complete_cn(2, 7, folded_hypercube_nums(4)));
  emit(t, sweep_ring_cn(2, 7, hypercube_nums(4)));
  emit(t, sweep_ring_cn(2, 7, folded_hypercube_nums(4)));
  emit(t, sweep_hsn(2, 7, hypercube_nums(4)));

  t.print(std::cout);

  const auto cn = sweep_ring_cn(5, 5, hypercube_nums(4)).front();   // 2^20
  const auto hc = sweep_hypercube(20, 20, 4).front();               // 2^20
  const auto torus = sweep_torus2d({1024}, 4, 4).front();           // 2^20
  std::cout << "\ncheck @ 2^20 nodes: ring-CN(5,Q4) ID = " << cn.id_cost()
            << "  hypercube ID = " << hc.id_cost() << "  2-D torus ID = "
            << torus.id_cost() << '\n'
            << (cn.id_cost() < hc.id_cost() && cn.id_cost() < torus.id_cost()
                    ? "PASS"
                    : "FAIL")
            << ": cyclic-shift networks minimize ID-cost\n";
  return 0;
}
