// FIG5 — Reproduces Fig. 5: II-cost (inter-cluster degree x inter-cluster
// diameter) vs network size, modules of at most 16 nodes. When off-module
// links are slower than on-module links — the realistic packaging regime of
// Section 5.4 — light-load latency tracks II-cost. Claim to check:
// cyclic-shift networks and HSNs dominate every classical topology, and
// the gap widens with module size.
#include <iostream>

#include "analysis/cost_model.hpp"
#include "cluster/imetrics.hpp"
#include "cluster/partitions.hpp"
#include "util/table.hpp"

using namespace ipg;

namespace {

void emit(Table& t, const std::vector<CostPoint>& series) {
  for (const auto& p : series) {
    t.add_row({p.family, Table::num(p.nodes), Table::fixed(p.log2_nodes(), 1),
               Table::fixed(p.i_degree, 2),
               Table::num(std::uint64_t{p.i_diameter}),
               Table::fixed(p.ii_cost(), 1)});
  }
}

}  // namespace

int main() {
  std::cout << "FIG5: II-cost = I-degree * I-diameter vs network size, "
               "<= 16 nodes per module (paper Fig. 5)\n\n";
  Table t({"family", "N", "log2(N)", "I-degree", "I-diameter", "II-cost"});

  emit(t, sweep_hypercube(8, 24, 4));
  emit(t, sweep_torus2d({8, 16, 32, 64, 128, 256, 512, 1024}, 4, 4));
  emit(t, sweep_ring_cn(2, 7, hypercube_nums(4)));
  emit(t, sweep_ring_cn(2, 7, folded_hypercube_nums(4)));
  emit(t, sweep_hsn(2, 7, hypercube_nums(4)));
  emit(t, sweep_complete_cn(2, 7, hypercube_nums(4)));

  // Star graph with 3-star (6-node <= 16) modules, I-diameter measured on
  // the direct sub-star module graph (exact up to 8192 modules, sampled
  // beyond — the module graph scales past full enumeration).
  {
    std::vector<CostPoint> star;
    for (int n = 6; n <= 9; ++n) {
      const Graph mg = star_module_graph(n, 3);
      const std::vector<std::uint32_t> sizes(mg.num_nodes(), 6);
      const auto s = mg.num_nodes() <= 8192
                         ? i_distance_stats(mg, sizes)
                         : i_distance_stats_sampled(mg, sizes, 128, 11);
      star.push_back(cost_point(star_nums(n), n - 3.0, s.i_diameter));
    }
    emit(t, star);
  }

  t.print(std::cout);

  const auto ring = sweep_ring_cn(5, 5, hypercube_nums(4)).front();  // 2^20
  const auto hsn = sweep_hsn(5, 5, hypercube_nums(4)).front();
  const auto hc = sweep_hypercube(20, 20, 4).front();
  const auto torus = sweep_torus2d({1024}, 4, 4).front();
  std::cout << "\ncheck @ 2^20 nodes: ring-CN II = " << ring.ii_cost()
            << "  HSN II = " << hsn.ii_cost() << "  hypercube II = "
            << hc.ii_cost() << "  torus II = " << torus.ii_cost() << '\n'
            << (ring.ii_cost() < hc.ii_cost() && ring.ii_cost() < torus.ii_cost()
                    ? "PASS"
                    : "FAIL")
            << ": super-IP graphs dominate on II-cost\n";
  return 0;
}
