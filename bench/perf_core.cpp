// PERF — Engineering throughput of the core primitives (google-benchmark):
// IP-graph closure, BFS, label routing, module-graph construction, and the
// discrete-event simulator.
#include <benchmark/benchmark.h>

#include "cluster/imetrics.hpp"
#include "cluster/partitions.hpp"
#include "graph/bfs.hpp"
#include "ipg/families.hpp"
#include "route/super_ip_routing.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "topo/hypercube.hpp"
#include "util/prng.hpp"

namespace {

using namespace ipg;

void BM_BuildIpGraphHsn(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  const SuperIPSpec spec = make_hsn(l, hypercube_nucleus(3));
  std::uint64_t nodes = 0, label_b = 0, index_b = 0;
  for (auto _ : state) {
    const IPGraph g = build_super_ip_graph(spec);
    nodes = g.num_nodes();
    label_b = g.label_bytes();
    index_b = g.index_bytes();
    benchmark::DoNotOptimize(g.graph.num_arcs());
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["label_B/node"] =
      nodes ? static_cast<double>(label_b) / static_cast<double>(nodes) : 0.0;
  state.counters["index_B/node"] =
      nodes ? static_cast<double>(index_b) / static_cast<double>(nodes) : 0.0;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_BuildIpGraphHsn)->Arg(2)->Arg(3)->Arg(4);

void BM_BuildIpGraphHsnUnpacked(benchmark::State& state) {
  // Same closure through the legacy vector-of-vectors + unordered_map
  // storage: compare label_B/node and index_B/node against the packed rows
  // above (the packed codec's headline is a >= 2x label-table reduction).
  const int l = static_cast<int>(state.range(0));
  const IPGraphSpec spec = make_hsn(l, hypercube_nucleus(3)).to_ip_spec();
  std::uint64_t nodes = 0, label_b = 0, index_b = 0;
  for (auto _ : state) {
    const IPGraph g = build_ip_graph_unpacked(spec);
    nodes = g.num_nodes();
    label_b = g.label_bytes();
    index_b = g.index_bytes();
    benchmark::DoNotOptimize(g.graph.num_arcs());
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["label_B/node"] =
      nodes ? static_cast<double>(label_b) / static_cast<double>(nodes) : 0.0;
  state.counters["index_B/node"] =
      nodes ? static_cast<double>(index_b) / static_cast<double>(nodes) : 0.0;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_BuildIpGraphHsnUnpacked)->Arg(2)->Arg(3)->Arg(4);

void BM_BuildHypercubeExplicit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const Graph g = topo::hypercube(n);
    benchmark::DoNotOptimize(g.num_arcs());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations())
                          << n);
}
BENCHMARK(BM_BuildHypercubeExplicit)->Arg(10)->Arg(14)->Arg(18);

void BM_BfsSweep(benchmark::State& state) {
  const Graph g = topo::hypercube(static_cast<int>(state.range(0)));
  BfsScratch scratch(g.num_nodes());
  Xoshiro256 rng(1);
  for (auto _ : state) {
    const Node src = static_cast<Node>(rng.below(g.num_nodes()));
    benchmark::DoNotOptimize(scratch.run(g, src).data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_arcs()));
}
BENCHMARK(BM_BfsSweep)->Arg(12)->Arg(16)->Arg(20);

// Threaded variants: state.range(0) is the ExecPolicy thread count, with 0
// meaning the serial legacy path (not auto!) so the speedup baseline and
// the determinism claim are both measured, not asserted. The diameter and
// average-distance counters must be identical across every row.

void BM_AllPairsSummaryThreads(benchmark::State& state) {
  const Graph g = topo::hypercube(13);
  const int threads = static_cast<int>(state.range(0));
  Dist diameter = 0;
  double avg = 0.0;
  for (auto _ : state) {
    const DistanceSummary d =
        threads == 0 ? all_pairs_distance_summary(g)
                     : all_pairs_distance_summary(g, ExecPolicy{threads});
    diameter = d.diameter;
    avg = d.average_distance;
    benchmark::DoNotOptimize(d.histogram.data());
  }
  state.counters["diameter"] = static_cast<double>(diameter);
  state.counters["avg_dist"] = avg;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_nodes()));
}
BENCHMARK(BM_AllPairsSummaryThreads)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_BuildIpGraphHsnThreads(benchmark::State& state) {
  const SuperIPSpec spec = make_hsn(4, hypercube_nucleus(3));
  const int threads = static_cast<int>(state.range(0));
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    const IPGraph g =
        threads == 0
            ? build_super_ip_graph(spec)
            : build_super_ip_graph(spec, 1u << 24, ExecPolicy{threads});
    nodes = g.num_nodes();
    benchmark::DoNotOptimize(g.graph.num_arcs());
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_BuildIpGraphHsnThreads)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_IDistanceSweepThreads(benchmark::State& state) {
  // All-pairs weighted sweep on a mid-size module graph.
  const Graph mg = topo::hypercube(12);
  const std::vector<std::uint32_t> sizes(mg.num_nodes(), 8);
  const int threads = static_cast<int>(state.range(0));
  double avg = 0.0;
  for (auto _ : state) {
    const IDistanceStats s =
        threads == 0
            ? i_distance_stats(mg, sizes)
            : i_distance_stats(mg, sizes, ExecPolicy{threads});
    avg = s.avg_i_distance;
    // Not DoNotOptimize(avg): GCC miscompiles its "+m,r" constraint for
    // doubles (google/benchmark#1340), clobbering the value itself.
    benchmark::ClobberMemory();
  }
  state.counters["avg_i_dist"] = avg;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(mg.num_nodes()));
}
BENCHMARK(BM_IDistanceSweepThreads)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_RouteSuperIp(benchmark::State& state) {
  // Label-level routing never touches the explicit graph: route in a
  // million-node HSN(5, Q4) directly.
  const SuperIPSpec spec = make_hsn(static_cast<int>(state.range(0)),
                                    hypercube_nucleus(4));
  const IPGraphSpec lifted = spec.to_ip_spec();
  Xoshiro256 rng(7);
  // Random destination labels: scramble the seed by random generator walks.
  Label dst = spec.seed;
  std::uint64_t hops = 0;
  for (auto _ : state) {
    for (int k = 0; k < 24; ++k) {
      const auto& gen = lifted.generators[rng.below(lifted.generators.size())];
      dst = gen.perm.apply(dst);
    }
    const GenPath p = route_super_ip(spec, spec.seed, dst);
    hops += static_cast<std::uint64_t>(p.length());
    benchmark::DoNotOptimize(p.gens.data());
  }
  state.counters["avg_hops"] =
      state.iterations() ? static_cast<double>(hops) /
                               static_cast<double>(state.iterations())
                         : 0.0;
}
BENCHMARK(BM_RouteSuperIp)->Arg(3)->Arg(5);

void BM_ModuleGraph(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  const auto gens = ring_shift_super_gens(l);
  for (auto _ : state) {
    const Graph mg = super_module_graph(16, l, gens);
    benchmark::DoNotOptimize(mg.num_arcs());
  }
}
BENCHMARK(BM_ModuleGraph)->Arg(3)->Arg(4)->Arg(5);

void BM_SimulateUniformTraffic(benchmark::State& state) {
  const Graph g = topo::hypercube(static_cast<int>(state.range(0)));
  const sim::SimNetwork net(g, sim::LinkTiming{1.0, 2.0},
                            cluster_hypercube(static_cast<int>(state.range(0)), 3));
  const auto packets =
      sim::uniform_traffic(g.num_nodes(), 0.2 * g.num_nodes(), 100.0, 5);
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    const auto r = simulate(net, packets);
    delivered = r.delivered;
    benchmark::DoNotOptimize(r.latency.count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(delivered));
}
BENCHMARK(BM_SimulateUniformTraffic)->Arg(6)->Arg(8)->Arg(10);

}  // namespace
