// FAULT-SWEEP — Delivery rate and latency inflation of the adaptive
// fault-tolerant router as node-failure probability grows, on the three
// headline super-IP families (HSN, ring-CN, SFN) under the label-routing
// policy (the routes are Theorem 4.1 sorting routes; the detours are the
// adaptive policy of sim/faults.hpp).
//
// For each failure probability p, nodes fail independently (Bernoulli,
// seeded) before traffic starts; the reported delivery rate is over
// packets whose source AND destination survive, so it isolates routing
// fault tolerance from the trivial loss of dead endpoints. Hop inflation
// compares hops walked against the fault-free route lengths of the same
// delivered packets.
//
//   $ ./fault_sweep [seed]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "ipg/families.hpp"
#include "net/topology.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"
#include "sim/traffic.hpp"
#include "util/table.hpp"

using namespace ipg;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  struct Family {
    std::string name;
    SuperIPSpec spec;
  };
  const std::vector<Family> families = {
      {"HSN(2,S4)", make_hsn(2, star_nucleus(4))},          // 576 nodes, deg 4
      {"ring-CN(3,S3)", make_ring_cn(3, star_nucleus(3))},  // 216 nodes, deg 4
      {"SFN(3,Q2)", make_super_flip(3, hypercube_nucleus(2))},  // 64, deg 4
  };
  const std::vector<double> probs = {0.0, 0.01, 0.02, 0.05, 0.10, 0.20};

  std::cout << "Adaptive fault-tolerant routing under Bernoulli node "
               "failures (seed "
            << seed << ")\n\n";
  Table t({"network", "p(fail)", "down", "injected", "delivered", "rate",
           "detours", "bfs", "hop infl", "lat infl"});

  for (const Family& fam : families) {
    const net::ImplicitSuperIPTopology topo(fam.spec);
    const sim::SimNetwork net(topo, sim::LinkTiming{1.0, 1.0});
    const auto traffic = sim::uniform_traffic(
        static_cast<Node>(topo.num_nodes()), 4.0, 200.0, seed);

    double fault_free_latency = 0.0;
    for (const double p : probs) {
      const sim::FaultPlan plan =
          sim::FaultPlan::bernoulli_node_faults(topo.num_nodes(), p, seed);
      // Keep only packets between surviving endpoints.
      const net::FaultSet at0 = plan.snapshot(0.0);
      std::vector<sim::Packet> packets;
      for (const sim::Packet& pk : traffic) {
        if (at0.node_up(pk.src) && at0.node_up(pk.dst)) packets.push_back(pk);
      }
      const sim::FaultSimResult r = simulate_with_faults(net, packets, plan);
      if (p == 0.0) fault_free_latency = r.latency.mean();
      const double lat_infl = fault_free_latency > 0.0 && r.delivered > 0
                                  ? r.latency.mean() / fault_free_latency
                                  : 1.0;
      t.add_row({fam.name, Table::fixed(p, 2),
                 Table::num(std::uint64_t{at0.failed_node_count()}),
                 Table::num(r.injected), Table::num(r.delivered),
                 Table::fixed(r.delivery_rate(), 3), Table::num(r.detours),
                 Table::num(r.bfs_fallbacks),
                 Table::fixed(r.hop_inflation(), 3),
                 Table::fixed(lat_infl, 3)});
    }
  }
  t.print(std::cout);
  std::cout << "\nrate = delivered / injected among surviving pairs; "
               "hop infl = hops walked / fault-free hops (delivered "
               "packets); lat infl = mean latency vs p=0.\n";
  return 0;
}
