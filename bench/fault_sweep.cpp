// FAULT-SWEEP — Races the IST k-disjoint multipath router
// (RoutingPolicy::kDisjoint, route/disjoint.hpp) against the greedy
// detour-then-BFS heuristic (kLabelRoute) as node-failure probability
// grows, on the three headline super-IP families (HSN, ring-CN, SFN).
//
// For each failure probability p, nodes fail independently (Bernoulli,
// seeded) before traffic starts; the reported delivery rate is over
// packets whose source AND destination survive, so it isolates routing
// fault tolerance from the trivial loss of dead endpoints. Hop inflation
// compares hops walked against the fault-free route lengths of the same
// delivered packets. The run fails (exit 1) if the disjoint policy ever
// delivers less than greedy — the ISSUE's acceptance inequality.
//
//   $ ./fault_sweep [--quick] [--seed=N] [--json=PATH]
//
// Writes BENCH_fault_sweep.json (delivery rate, detours, BFS fallbacks
// and hop inflation per (family, p, policy)) for the CI artifact.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "ipg/families.hpp"
#include "net/topology.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"
#include "sim/traffic.hpp"
#include "util/table.hpp"

using namespace ipg;

namespace {

struct Record {
  std::string family;
  std::string policy;
  double p = 0.0;
  std::uint64_t down = 0;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t detours = 0;
  std::uint64_t bfs_fallbacks = 0;
  double delivery_rate = 1.0;
  double hop_inflation = 1.0;
};

void write_json(const std::string& path, const std::vector<Record>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(
        f,
        "  {\"family\": \"%s\", \"policy\": \"%s\", \"p\": %.2f, "
        "\"down\": %llu, \"injected\": %llu, \"delivered\": %llu, "
        "\"delivery_rate\": %.6f, \"detours\": %llu, "
        "\"bfs_fallbacks\": %llu, \"hop_inflation\": %.4f}%s\n",
        r.family.c_str(), r.policy.c_str(), r.p,
        static_cast<unsigned long long>(r.down),
        static_cast<unsigned long long>(r.injected),
        static_cast<unsigned long long>(r.delivered), r.delivery_rate,
        static_cast<unsigned long long>(r.detours),
        static_cast<unsigned long long>(r.bfs_fallbacks), r.hop_inflation,
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %zu records to %s\n", records.size(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::uint64_t seed = 7;
  std::string json_path = "BENCH_fault_sweep.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--seed=N] [--json=PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  struct Family {
    std::string name;
    SuperIPSpec spec;
  };
  const std::vector<Family> families = {
      {"HSN(2,S4)", make_hsn(2, star_nucleus(4))},          // 576 nodes, deg 4
      {"ring-CN(3,S3)", make_ring_cn(3, star_nucleus(3))},  // 216 nodes, deg 4
      {"SFN(3,Q2)", make_super_flip(3, hypercube_nucleus(2))},  // 64, deg 4
  };
  const std::vector<double> probs =
      quick ? std::vector<double>{0.0, 0.02, 0.10}
            : std::vector<double>{0.0, 0.01, 0.02, 0.05, 0.10, 0.20};

  std::cout << "IST k-disjoint multipath vs greedy detour under Bernoulli "
               "node failures (seed "
            << seed << ")\n\n";
  Table t({"network", "policy", "p(fail)", "down", "injected", "delivered",
           "rate", "detours", "bfs", "hop infl"});

  std::vector<Record> records;
  bool dominated = true;
  for (const Family& fam : families) {
    const net::ImplicitSuperIPTopology topo(fam.spec);
    const sim::SimNetwork greedy(topo, sim::LinkTiming{1.0, 1.0});
    const sim::SimNetwork multipath(topo, sim::LinkTiming{1.0, 1.0},
                                    sim::RoutingPolicy::kDisjoint);
    const auto traffic = sim::uniform_traffic(
        static_cast<Node>(topo.num_nodes()), 4.0, 200.0, seed);

    for (const double p : probs) {
      const sim::FaultPlan plan =
          sim::FaultPlan::bernoulli_node_faults(topo.num_nodes(), p, seed);
      // Keep only packets between surviving endpoints.
      const net::FaultSet at0 = plan.snapshot(0.0);
      std::vector<sim::Packet> packets;
      for (const sim::Packet& pk : traffic) {
        if (at0.node_up(pk.src) && at0.node_up(pk.dst)) packets.push_back(pk);
      }

      std::uint64_t greedy_delivered = 0;
      for (const char* policy : {"greedy", "disjoint"}) {
        const bool is_disjoint = std::strcmp(policy, "disjoint") == 0;
        const sim::SimNetwork& net = is_disjoint ? multipath : greedy;
        const sim::FaultSimResult r = simulate_with_faults(net, packets, plan);
        if (!is_disjoint) {
          greedy_delivered = r.delivered;
        } else if (r.delivered < greedy_delivered) {
          dominated = false;
        }
        records.push_back({fam.name, policy, p, at0.failed_node_count(),
                           r.injected, r.delivered, r.detours, r.bfs_fallbacks,
                           r.delivery_rate(), r.hop_inflation()});
        t.add_row({fam.name, policy, Table::fixed(p, 2),
                   Table::num(std::uint64_t{at0.failed_node_count()}),
                   Table::num(r.injected), Table::num(r.delivered),
                   Table::fixed(r.delivery_rate(), 3), Table::num(r.detours),
                   Table::num(r.bfs_fallbacks),
                   Table::fixed(r.hop_inflation(), 3)});
      }
    }
  }
  t.print(std::cout);
  std::cout << "\nrate = delivered / injected among surviving pairs; "
               "hop infl = hops walked / fault-free hops (delivered "
               "packets). disjoint = IST k-disjoint multipath failover; "
               "greedy = detour-then-BFS.\n";
  write_json(json_path, records);
  if (!dominated) {
    std::cout << "FAIL: disjoint policy delivered less than greedy at some "
                 "fault level\n";
    return 1;
  }
  std::cout << "OK: delivery(disjoint) >= delivery(greedy) at every swept "
               "fault level\n";
  return 0;
}
