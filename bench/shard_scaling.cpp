// PERF — shard-seam scaling: the sharded BFS driver and the sharded
// fault-aware simulator at 1 / 2 / 8 shards, against the unsharded
// engines, on a materialized HSN(2, Q8) and the implicit 16.7M-node
// HSN(6, Q4). Every row re-checks the shard determinism contract — the
// summary / FaultSimResult must be bit-identical to the 1-shard serial
// baseline — and the binary exits nonzero on any divergence, so the CI
// bench job doubles as a cross-shard consistency gate.
//
// Machine-readable output: --json=PATH (default BENCH_shard.json) writes
// one record per (instance, mode, shards, threads) with the stable schema
//   {family, mode, nodes, shards, threads, wall_ms, work_items, identical}
// where mode is "bfs" (work_items = sources) or "faults" (work_items =
// packets).
//
// Usage: shard_scaling [--quick] [--threads=1,8] [--json=PATH]
//   --quick    small instances (HSN(2,Q4) materialized, HSN(3,Q4)
//              implicit) so sanitizer/CI lanes finish in seconds.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "graph/bfs_batch.hpp"
#include "ipg/families.hpp"
#include "ipg/super.hpp"
#include "net/topology.hpp"
#include "shard/bfs_engine.hpp"
#include "shard/fault_engine.hpp"
#include "shard/partition.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"
#include "sim/traffic.hpp"
#include "topo/hypercube.hpp"

namespace {

using namespace ipg;
using shard::RankRangePartition;

double elapsed_ms(const std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct Record {
  std::string family;
  std::string mode;  // "bfs" | "faults"
  std::uint64_t nodes = 0;
  int shards = 1;
  int threads = 1;
  double wall_ms = 0.0;
  std::uint64_t work_items = 0;  // sources (bfs) or packets (faults)
  bool identical = true;
};

bool summaries_identical(const DistanceSummary& a, const DistanceSummary& b) {
  return a.diameter == b.diameter &&
         a.strongly_connected == b.strongly_connected &&
         a.histogram == b.histogram &&
         a.average_distance == b.average_distance;
}

bool fault_results_identical(const sim::FaultSimResult& a,
                             const sim::FaultSimResult& b) {
  return a.injected == b.injected && a.delivered == b.delivered &&
         a.dropped == b.dropped && a.detours == b.detours &&
         a.bfs_fallbacks == b.bfs_fallbacks &&
         a.planned_hop_sum == b.planned_hop_sum &&
         a.actual_hop_sum == b.actual_hop_sum && a.makespan == b.makespan &&
         a.latency.count() == b.latency.count() &&
         a.latency.mean() == b.latency.mean() &&
         a.latency.max() == b.latency.max() &&
         a.latency.mean_hops() == b.latency.mean_hops();
}

void print_row(const Record& r) {
  std::printf("%-18s %-6s n=%-9llu %d shards %dt  %9.1f ms  %s\n",
              r.family.c_str(), r.mode.c_str(),
              static_cast<unsigned long long>(r.nodes), r.shards, r.threads,
              r.wall_ms, r.identical ? "identical" : "DIVERGED");
}

/// Sharded BFS sweep rows for one materialized graph: the 1-shard serial
/// run IS the unsharded engine (delegation), so it is the baseline.
bool bench_bfs_graph(const std::string& family, const Graph& g,
                     const std::vector<Node>& sources,
                     const std::vector<int>& shard_counts,
                     const std::vector<int>& thread_counts,
                     std::vector<Record>& records) {
  const DistanceSummary baseline =
      batched_distance_summary(g, sources, ExecPolicy::serial_policy());
  bool ok = true;
  for (const int s : shard_counts) {
    const RankRangePartition part(g.num_nodes(), s);
    for (const int t : thread_counts) {
      const auto t0 = std::chrono::steady_clock::now();
      const DistanceSummary got =
          shard::sharded_distance_summary(g, sources, part, ExecPolicy{t});
      const double ms = elapsed_ms(t0);
      const bool same = summaries_identical(baseline, got);
      ok &= same;
      records.push_back(
          {family, "bfs", g.num_nodes(), s, t, ms, sources.size(), same});
      print_row(records.back());
    }
  }
  return ok;
}

/// Same over an implicit topology (ranks as node ids); baseline is the
/// 1-shard serial sharded run, cross-checked at every other configuration.
bool bench_bfs_implicit(const std::string& family,
                        const net::ImplicitSuperIPTopology& topo,
                        const std::vector<net::NodeId>& sources,
                        const std::vector<int>& shard_counts,
                        const std::vector<int>& thread_counts,
                        std::vector<Record>& records) {
  const RankRangePartition whole(topo.num_nodes(), 1);
  const auto b0 = std::chrono::steady_clock::now();
  const DistanceSummary baseline = shard::sharded_distance_summary(
      topo, sources, whole, ExecPolicy::serial_policy());
  records.push_back({family, "bfs", topo.num_nodes(), 1, 1, elapsed_ms(b0),
                     sources.size(), true});
  print_row(records.back());
  bool ok = true;
  for (const int s : shard_counts) {
    const RankRangePartition part(topo.num_nodes(), s);
    for (const int t : thread_counts) {
      if (s == 1 && t == 1) continue;  // the baseline row above
      const auto t0 = std::chrono::steady_clock::now();
      const DistanceSummary got =
          shard::sharded_distance_summary(topo, sources, part, ExecPolicy{t});
      const double ms = elapsed_ms(t0);
      const bool same = summaries_identical(baseline, got);
      ok &= same;
      records.push_back(
          {family, "bfs", topo.num_nodes(), s, t, ms, sources.size(), same});
      print_row(records.back());
    }
  }
  return ok;
}

/// Sharded fault-simulation rows; baseline is the sequential
/// simulate_with_faults (which the 1-shard partition delegates to).
bool bench_faults(const std::string& family, const sim::SimNetwork& net,
                  const std::vector<sim::Packet>& packets,
                  const sim::FaultPlan& plan,
                  const std::vector<int>& shard_counts,
                  const std::vector<int>& thread_counts,
                  std::vector<Record>& records) {
  const sim::FaultSimResult baseline =
      simulate_with_faults(net, packets, plan);
  bool ok = true;
  for (const int s : shard_counts) {
    const RankRangePartition part(net.num_nodes(), s);
    for (const int t : thread_counts) {
      const auto t0 = std::chrono::steady_clock::now();
      const sim::FaultSimResult got = shard::sharded_simulate_with_faults(
          net, packets, plan, part, {}, {}, ExecPolicy{t});
      const double ms = elapsed_ms(t0);
      const bool same = fault_results_identical(baseline, got);
      ok &= same;
      records.push_back(
          {family, "faults", net.num_nodes(), s, t, ms, packets.size(), same});
      print_row(records.back());
    }
  }
  return ok;
}

void write_json(const char* path, const std::vector<Record>& records) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(f,
                 "  {\"family\": \"%s\", \"mode\": \"%s\", \"nodes\": %llu, "
                 "\"shards\": %d, \"threads\": %d, \"wall_ms\": %.2f, "
                 "\"work_items\": %llu, \"identical\": %s}%s\n",
                 r.family.c_str(), r.mode.c_str(),
                 static_cast<unsigned long long>(r.nodes), r.shards, r.threads,
                 r.wall_ms, static_cast<unsigned long long>(r.work_items),
                 r.identical ? "true" : "false",
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %zu records to %s\n", records.size(), path);
}

/// Evenly spaced rank sample (the bench's fixed source set).
template <typename Id>
std::vector<Id> spaced_sources(std::uint64_t n, std::uint64_t k) {
  if (k > n) k = n;
  std::vector<Id> out(k);
  for (std::uint64_t i = 0; i < k; ++i) {
    out[i] = static_cast<Id>(i * n / k);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_shard.json";
  std::vector<int> thread_counts = {1, ExecPolicy{}.resolved_threads()};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--threads=", 0) == 0) {
      thread_counts.clear();
      const char* p = arg.c_str() + 10;
      while (*p) {
        thread_counts.push_back(static_cast<int>(std::strtol(p, nullptr, 10)));
        while (*p && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--threads=1,8] [--json=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  std::vector<int> threads_unique;
  for (const int t : thread_counts) {
    bool seen = false;
    for (const int u : threads_unique) seen = seen || u == t;
    if (!seen && t >= 1) threads_unique.push_back(t);
  }
  const std::vector<int> shard_counts = {1, 2, 8};

  std::vector<Record> records;
  bool all_ok = true;

  // --- Sharded BFS, materialized graph.
  {
    const SuperIPSpec spec =
        quick ? make_hsn(2, hypercube_nucleus(4)) : make_hsn(2, hypercube_nucleus(8));
    std::printf("building %s ...\n", spec.name.c_str());
    const IPGraph g = build_super_ip_graph(spec, 1u << 24, ExecPolicy{});
    const auto sources = spaced_sources<Node>(g.num_nodes(), 64);
    all_ok &= bench_bfs_graph(spec.name, g.graph, sources, shard_counts,
                              threads_unique, records);
  }

  // --- Sharded BFS, implicit topology (never materialized).
  {
    const SuperIPSpec spec =
        quick ? make_hsn(3, hypercube_nucleus(4)) : make_hsn(6, hypercube_nucleus(4));
    const net::ImplicitSuperIPTopology topo(spec);
    const auto sources = spaced_sources<net::NodeId>(topo.num_nodes(), 64);
    all_ok &= bench_bfs_implicit(spec.name, topo, sources, shard_counts,
                                 threads_unique, records);
  }

  // --- Sharded fault simulation, table policy (materialized).
  {
    const Graph g = topo::hypercube(quick ? 6 : 8);
    const sim::SimNetwork net(g, sim::LinkTiming{1.0, 1.0});
    const auto packets =
        sim::uniform_traffic(g.num_nodes(), quick ? 3.0 : 8.0, 120.0, 11);
    sim::FaultPlan plan = sim::FaultPlan::random_node_faults(g.num_nodes(), 3, 42);
    plan.fail_node(1, 10.0, 60.0);  // one transient window in the mix
    all_ok &= bench_faults(quick ? "Q6-table" : "Q8-table", net, packets, plan,
                           shard_counts, threads_unique, records);
  }

  // --- Sharded fault simulation, label policy (implicit).
  {
    const SuperIPSpec spec =
        quick ? make_hsn(2, hypercube_nucleus(4)) : make_hsn(2, hypercube_nucleus(8));
    const net::ImplicitSuperIPTopology topo(spec);
    const sim::SimNetwork net(topo, sim::LinkTiming{1.0, 2.0});
    const auto packets = sim::uniform_traffic(
        static_cast<Node>(topo.num_nodes()), quick ? 2.0 : 4.0, 100.0, 13);
    const sim::FaultPlan plan = sim::FaultPlan::random_transient_node_faults(
        topo.num_nodes(), 4, 80.0, 10.0, 7);
    all_ok &= bench_faults(spec.name + "-label", net, packets, plan,
                           shard_counts, threads_unique, records);
  }

  write_json(json_path.c_str(), records);
  std::printf("%s\n", all_ok
                          ? "PASS: sharded engines bit-identical on every row"
                          : "FAIL: cross-shard divergence");
  return all_ok ? 0 : 1;
}
