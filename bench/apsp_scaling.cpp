// PERF — APSP engine scaling: scalar one-BFS-per-source vs the
// bit-parallel batched engine (64 sources per pass), serial and threaded,
// across the 12 family variants of the golden table plus (with --large) a
// >= 64k-node instance, HSN(2, Q8). Every comparison runs both engines on
// the *same* source set at the same thread count, checks the summaries are
// bit-identical, and reports wall-clock ns per source.
//
// With --orbit the orbit-compressed engine (analysis/orbit.hpp) joins the
// comparison: the automorphism-orbit quotient is built (timed separately
// as quotient_build_ns), the folded sweep runs from orbit representatives
// only, and the result is checked bit-identical against the batched full
// sweep — any divergence fails the run.
//
// Machine-readable output: --json=PATH (default BENCH_apsp.json) writes
// one record per (instance, threads, engine) with the stable schema
//   {family, nodes, arcs, threads, engine, ns_per_source, bytes_per_node,
//    sources, speedup_vs_scalar?, orbits?, compression?, speedup_vs_batch?,
//    quotient_build_ns?}
// where bytes_per_node counts the CSR + transpose + per-thread scratch
// footprint. speedup_vs_scalar appears only on batched rows whose scalar
// baseline actually ran (never on the --large full-sweep rows, which have
// no scalar counterpart). Orbit rows carry the orbit count, compression
// (= nodes / orbits), speedup_vs_batch (batched full-sweep ns / orbit
// sweep ns at the same thread count) and the one-off quotient build cost;
// their ns_per_source divides the sweep wall-clock by *nodes*, not by
// representative count, so it is directly comparable with batch rows.
//
// Usage: apsp_scaling [--large] [--orbit] [--threads=1,2,8] [--sample=N]
//                     [--json=PATH]
//   --large     add HSN(2, Q8) (65,536 nodes); its engine comparison runs
//               over --sample sources (default 4096) so the scalar
//               baseline stays tractable, and the batched engine
//               additionally runs the full all-pairs sweep.
//   --orbit     add the orbit-compressed engine rows (and divergence gate).
//   --threads   comma list of thread counts (default "1,auto").

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/exact.hpp"
#include "analysis/orbit.hpp"
#include "graph/bfs.hpp"
#include "graph/bfs_batch.hpp"
#include "ipg/families.hpp"
#include "ipg/super.hpp"
#include "ipg/symmetric.hpp"

namespace {

using namespace ipg;

double elapsed_ns(const std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct Record {
  std::string family;
  std::uint64_t nodes = 0;
  std::uint64_t arcs = 0;
  int threads = 1;
  std::string engine;  // "scalar" | "batch" | "orbit"
  double ns_per_source = 0.0;
  double bytes_per_node = 0.0;
  std::uint64_t sources = 0;
  double speedup_vs_scalar = 0.0;   // batched rows with a scalar baseline
  std::uint64_t orbits = 0;         // orbit rows only
  double compression = 0.0;         // orbit rows only: nodes / orbits
  double speedup_vs_batch = 0.0;    // orbit rows only
  double quotient_build_ns = 0.0;   // orbit rows only: one-off build cost
};

bool summaries_identical(const DistanceSummary& a, const DistanceSummary& b) {
  return a.diameter == b.diameter &&
         a.strongly_connected == b.strongly_connected &&
         a.histogram == b.histogram &&
         a.average_distance == b.average_distance;
}

std::vector<SuperIPSpec> golden_specs() {
  std::vector<SuperIPSpec> specs = {
      make_hcn(2),
      make_hsn(3, hypercube_nucleus(2)),
      make_ring_cn(3, star_nucleus(3)),
      make_complete_cn(3, hypercube_nucleus(2)),
      make_directed_cn(3, star_nucleus(3)),
      make_super_flip(3, hypercube_nucleus(2)),
  };
  const std::size_t plain = specs.size();
  for (std::size_t i = 0; i < plain; ++i) {
    specs.push_back(make_symmetric(specs[i]));
  }
  return specs;
}

/// Engine footprint per node: CSR + transpose + the batch scratch one
/// worker thread holds (the scalar engine's dist/queue arrays are smaller,
/// so this is the honest upper bound either way).
double bytes_per_node(const Graph& g) {
  if (g.num_nodes() == 0) return 0.0;
  const std::uint64_t scratch = 3ull * sizeof(std::uint64_t) * g.num_nodes();
  return static_cast<double>(g.memory_bytes() + g.transpose().memory_bytes() +
                             scratch) /
         static_cast<double>(g.num_nodes());
}

/// Runs both engines on `sources` at `threads`, verifies bit-identity, and
/// appends one scalar + one batched record. Returns false on mismatch.
bool compare_engines(const std::string& family, const Graph& g,
                     const std::vector<Node>& sources, int threads,
                     std::vector<Record>& records) {
  const ExecPolicy exec{threads};
  const double node_bytes = bytes_per_node(g);

  auto t0 = std::chrono::steady_clock::now();
  const DistanceSummary scalar =
      multi_source_distance_summary_scalar(g, sources, exec);
  const double scalar_ns = elapsed_ns(t0) / static_cast<double>(sources.size());

  t0 = std::chrono::steady_clock::now();
  const DistanceSummary batched =
      multi_source_distance_summary(g, sources, exec);
  const double batch_ns = elapsed_ns(t0) / static_cast<double>(sources.size());

  const bool ok = summaries_identical(scalar, batched);
  Record sr;
  sr.family = family;
  sr.nodes = g.num_nodes();
  sr.arcs = g.num_arcs();
  sr.threads = threads;
  sr.engine = "scalar";
  sr.ns_per_source = scalar_ns;
  sr.bytes_per_node = node_bytes;
  sr.sources = sources.size();
  records.push_back(sr);
  Record br = sr;
  br.engine = "batch";
  br.ns_per_source = batch_ns;
  br.speedup_vs_scalar = batch_ns > 0.0 ? scalar_ns / batch_ns : 0.0;
  records.push_back(br);
  std::printf("%-24s n=%-7llu %dt  scalar %10.0f ns/src  batch %9.0f ns/src"
              "  speedup %5.1fx  %s\n",
              family.c_str(),
              static_cast<unsigned long long>(g.num_nodes()), threads,
              scalar_ns, batch_ns, batch_ns > 0.0 ? scalar_ns / batch_ns : 0.0,
              ok ? "identical" : "MISMATCH");
  return ok;
}

/// Orbit-engine row: folds the all-pairs summary from orbit representatives
/// and checks it bit-identical against the batched full sweep (whose timing
/// provides speedup_vs_batch). `reference` != nullptr reuses the caller's
/// already-timed sweep (at `batch_sweep_ns` per source) so the --large path
/// never runs the expensive baseline twice; otherwise it is measured here.
bool compare_orbit(const std::string& family, const Graph& g,
                   const OrbitQuotient& q, double quotient_build_ns,
                   int threads, const DistanceSummary* reference,
                   double batch_sweep_ns, std::vector<Record>& records) {
  const ExecPolicy exec{threads};
  const double n = static_cast<double>(g.num_nodes());
  (void)g.transpose();  // warm the cache outside the timed regions

  DistanceSummary batched;
  if (reference == nullptr) {
    const auto t0 = std::chrono::steady_clock::now();
    batched = all_pairs_distance_summary(g, exec);
    batch_sweep_ns = elapsed_ns(t0) / n;
  } else {
    batched = *reference;
  }

  const auto t0 = std::chrono::steady_clock::now();
  const DistanceSummary folded = orbit_folded_distance_summary(g, q, exec);
  const double orbit_ns = elapsed_ns(t0) / n;

  const bool ok = summaries_identical(batched, folded);
  Record r;
  r.family = family;
  r.nodes = g.num_nodes();
  r.arcs = g.num_arcs();
  r.threads = threads;
  r.engine = "orbit";
  r.ns_per_source = orbit_ns;
  r.bytes_per_node = bytes_per_node(g);
  r.sources = q.num_orbits();
  r.orbits = q.num_orbits();
  r.compression = q.compression();
  r.speedup_vs_batch = orbit_ns > 0.0 ? batch_sweep_ns / orbit_ns : 0.0;
  r.quotient_build_ns = quotient_build_ns;
  records.push_back(r);
  std::printf("%-24s n=%-7llu %dt  orbit  %10.0f ns/src  %5llu orbits "
              "(%6.1fx)  vs batch %5.1fx  %s\n",
              family.c_str(),
              static_cast<unsigned long long>(g.num_nodes()), threads,
              orbit_ns, static_cast<unsigned long long>(q.num_orbits()),
              q.compression(), r.speedup_vs_batch,
              ok ? "identical" : "MISMATCH");
  return ok;
}

void write_json(const char* path, const std::vector<Record>& records) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(
        f,
        "  {\"family\": \"%s\", \"nodes\": %llu, \"arcs\": %llu, "
        "\"threads\": %d, \"engine\": \"%s\", \"ns_per_source\": %.1f, "
        "\"bytes_per_node\": %.1f, \"sources\": %llu",
        r.family.c_str(), static_cast<unsigned long long>(r.nodes),
        static_cast<unsigned long long>(r.arcs), r.threads, r.engine.c_str(),
        r.ns_per_source, r.bytes_per_node,
        static_cast<unsigned long long>(r.sources));
    // Only rows whose scalar baseline actually ran carry the speedup; the
    // --large full-sweep rows have none and must not claim 0.00x.
    if (r.engine == "batch" && r.speedup_vs_scalar > 0.0) {
      std::fprintf(f, ", \"speedup_vs_scalar\": %.2f", r.speedup_vs_scalar);
    }
    if (r.engine == "orbit") {
      std::fprintf(f,
                   ", \"orbits\": %llu, \"compression\": %.2f, "
                   "\"speedup_vs_batch\": %.2f, \"quotient_build_ns\": %.0f",
                   static_cast<unsigned long long>(r.orbits), r.compression,
                   r.speedup_vs_batch, r.quotient_build_ns);
    }
    std::fprintf(f, "}%s\n", i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %zu records to %s\n", records.size(), path);
}

}  // namespace

int main(int argc, char** argv) {
  bool large = false;
  bool orbit = false;
  std::string json_path = "BENCH_apsp.json";
  std::vector<int> thread_counts = {1, ExecPolicy{}.resolved_threads()};
  std::uint64_t sample = 4096;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--large") {
      large = true;
    } else if (arg == "--orbit") {
      orbit = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--sample=", 0) == 0) {
      sample = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      thread_counts.clear();
      const char* p = arg.c_str() + 10;
      while (*p) {
        thread_counts.push_back(static_cast<int>(std::strtol(p, nullptr, 10)));
        while (*p && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--large] [--orbit] [--threads=1,2,8] "
                   "[--sample=N] [--json=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  // Dedup adjacent equal counts (1,auto collapses on a 1-core box).
  std::vector<int> threads_unique;
  for (const int t : thread_counts) {
    bool seen = false;
    for (const int u : threads_unique) seen = seen || u == t;
    if (!seen && t >= 1) threads_unique.push_back(t);
  }

  std::vector<Record> records;
  bool all_ok = true;

  for (const SuperIPSpec& spec : golden_specs()) {
    const IPGraph g = build_super_ip_graph(spec);
    std::vector<Node> all(g.num_nodes());
    for (Node u = 0; u < g.num_nodes(); ++u) all[u] = u;
    for (const int t : threads_unique) {
      all_ok &= compare_engines(spec.name, g.graph, all, t, records);
    }
    if (orbit) {
      const auto t0 = std::chrono::steady_clock::now();
      const OrbitQuotient q = compute_orbit_quotient(g, spec);
      const double build_ns = elapsed_ns(t0);
      for (const int t : threads_unique) {
        all_ok &= compare_orbit(spec.name, g.graph, q, build_ns, t, nullptr,
                                0.0, records);
      }
    }
  }

  if (large) {
    const SuperIPSpec spec = make_hsn(2, hypercube_nucleus(8));
    std::printf("building %s ...\n", spec.name.c_str());
    const IPGraph g = build_super_ip_graph(spec, 1u << 24, ExecPolicy{});
    // Equal-work engine comparison over an evenly spaced source sample.
    const std::uint64_t n = g.num_nodes();
    const std::uint64_t k = sample == 0 || sample > n ? n : sample;
    std::vector<Node> sources(k);
    for (std::uint64_t i = 0; i < k; ++i) {
      sources[i] = static_cast<Node>(i * n / k);
    }
    for (const int t : threads_unique) {
      all_ok &= compare_engines(spec.name, g.graph, sources, t, records);
    }
    // Headline: the full all-pairs sweep, batched only (the scalar sweep
    // is what the sampled rows extrapolate). No scalar baseline ran here,
    // so these rows carry no speedup_vs_scalar field.
    OrbitQuotient q;
    double build_ns = 0.0;
    if (orbit) {
      const auto t0 = std::chrono::steady_clock::now();
      q = compute_orbit_quotient(g, spec);
      build_ns = elapsed_ns(t0);
    }
    for (const int t : threads_unique) {
      const auto t0 = std::chrono::steady_clock::now();
      const DistanceSummary full =
          all_pairs_distance_summary(g.graph, ExecPolicy{t});
      const double ns =
          elapsed_ns(t0) / static_cast<double>(g.num_nodes());
      Record fr;
      fr.family = spec.name + "-full";
      fr.nodes = g.num_nodes();
      fr.arcs = g.graph.num_arcs();
      fr.threads = t;
      fr.engine = "batch";
      fr.ns_per_source = ns;
      fr.bytes_per_node = bytes_per_node(g.graph);
      fr.sources = g.num_nodes();
      records.push_back(fr);
      std::printf("%-24s n=%-7llu %dt  full batched sweep %8.0f ns/src  "
                  "diameter %u\n",
                  (spec.name + "-full").c_str(),
                  static_cast<unsigned long long>(g.num_nodes()), t, ns,
                  full.diameter);
      if (orbit) {
        all_ok &= compare_orbit(spec.name + "-full", g.graph, q, build_ns, t,
                                &full, ns, records);
      }
    }
  }

  write_json(json_path.c_str(), records);
  std::printf("%s\n", all_ok ? "PASS: engines bit-identical on every row"
                             : "FAIL: engine mismatch");
  return all_ok ? 0 : 1;
}
