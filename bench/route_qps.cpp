// PERF — routing-as-a-service throughput: sustained query answering on
// giant super-IP instances that are never materialized. Three engines
// answer the same query streams through the same
// QueryEngine::answer_batch fast path:
//   scalar  — per-query byte-vector SuperIPRouter routing (packed kernels
//             and route cache off): the pre-engine baseline;
//   batched — packed-domain kernels (PackedSuperCodec rank/unrank, packed
//             schedule walk) where the label fits a PackedLabel, cache off;
//   cached  — the batched path plus the bounded sharded route cache.
// Instances:
//   HSN(6,Q4) — 16,777,216 implicit nodes. Its 48-symbol labels exceed
//     the 128-bit PackedLabel, so the batched engine degrades to the
//     scalar label path and the cache carries the win on hot traffic.
//   HSN(6,S4) — 191,102,976 implicit nodes, 96-bit labels: the packed
//     batch kernels are active and the batched row shows their effect.
// Workloads: "uniform" (independent random pairs — cache-hostile) and
// "hotset" (pairs drawn from a small working set — the serving-tier
// pattern the cache exists for). Each (instance, threads, workload,
// engine) row reports sustained QPS; a RouteService pass over the same
// batches reports p50/p99 per-batch latency. A sampled differential
// check pins every engine to the scalar baseline and exits nonzero on
// divergence.
//
// Machine-readable output: --json=PATH (default BENCH_route_qps.json),
// one record per row with the stable schema
//   {family, nodes, threads, engine, workload, batch, queries, qps,
//    p50_us, p99_us, speedup_vs_scalar}
// (speedup_vs_scalar on non-scalar rows: same instance + threads +
// workload).
//
// Usage: route_qps [--quick] [--threads=1,8] [--queries=N] [--batch=N]
//                  [--json=PATH]
//   --quick  CI-sized run (10k queries per row instead of 100k).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "ipg/families.hpp"
#include "ipg/super.hpp"
#include "net/topology.hpp"
#include "route/query_engine.hpp"
#include "route/service.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace ipg;
using route::QueryEngine;
using route::QueryEngineOptions;
using route::QueryKind;
using route::RouteAnswer;
using route::RouteQuery;

double elapsed_s(const std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Record {
  std::string family;
  std::uint64_t nodes = 0;
  int threads = 1;
  std::string engine;    // "scalar" | "batched" | "cached"
  std::string workload;  // "uniform" | "hotset"
  std::uint64_t batch = 0;
  std::uint64_t queries = 0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double speedup_vs_scalar = 0.0;  // non-scalar rows only
};

struct Params {
  std::uint64_t queries = 100'000;
  std::uint64_t batch = 1024;
  std::vector<int> thread_counts = {1, 8};
};

std::vector<RouteQuery> make_workload(const std::string& kind, std::uint64_t n,
                                      std::uint64_t count, Xoshiro256& rng) {
  std::vector<RouteQuery> qs(count);
  if (kind == "uniform") {
    for (RouteQuery& q : qs) {
      q.src = rng.below(n);
      q.dst = rng.below(n);
      q.kind = QueryKind::kFullRoute;
    }
    return qs;
  }
  // hotset: draw from a small fixed working set of pairs (fits the route
  // cache with room to spare, so the cached engine converges to hits).
  constexpr std::uint64_t kHotPairs = 1024;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> hot(kHotPairs);
  for (auto& p : hot) p = {rng.below(n), rng.below(n)};
  for (RouteQuery& q : qs) {
    const auto& p = hot[rng.below(kHotPairs)];
    q.src = p.first;
    q.dst = p.second;
    q.kind = QueryKind::kFullRoute;
  }
  return qs;
}

/// Percentile of a sorted sample, in microseconds.
double percentile_us(const std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const std::size_t idx = std::min(
      sorted_us.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted_us.size())));
  return sorted_us[idx];
}

/// One row: sustained QPS over the whole stream via answer_batch, then a
/// RouteService pass over the same batches for per-batch p50/p99 latency.
Record run_row(const QueryEngine& engine, const std::string& engine_name,
               const std::string& workload,
               const std::vector<RouteQuery>& stream, std::uint64_t batch,
               int threads, ThreadPool& pool, std::uint64_t nodes,
               const std::string& family) {
  std::vector<RouteAnswer> answers(batch);

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t off = 0; off < stream.size(); off += batch) {
    const std::size_t len = std::min<std::size_t>(batch, stream.size() - off);
    const std::span<const RouteQuery> queries(stream.data() + off, len);
    const std::span<RouteAnswer> out(answers.data(), len);
    if (engine_name == "scalar" && threads <= 1) {
      // The pre-engine baseline: per-query byte-vector routing. Threaded
      // scalar rows still chunk across the pool so the comparison at
      // t > 1 is parallelism-for-parallelism fair.
      engine.answer_batch_scalar(queries, out);
    } else if (threads <= 1) {
      engine.answer_batch(queries, out);
    } else {
      engine.answer_batch(queries, out, pool);
    }
  }
  const double secs = elapsed_s(t0);

  // Latency pass: the service loop overlaps batches across its workers;
  // per-batch latency is submit -> future-ready, queueing included.
  constexpr std::size_t service_ring_capacity = 16;
  route::RouteService service(
      engine, {.workers = threads, .ring_capacity = service_ring_capacity});
  std::vector<double> latencies_us;
  std::vector<std::future<std::vector<RouteAnswer>>> futures;
  std::vector<std::chrono::steady_clock::time_point> submitted;
  const std::size_t latency_batches =
      std::min<std::size_t>(64, stream.size() / batch);
  for (std::size_t b = 0; b < latency_batches; ++b) {
    std::vector<RouteQuery> one(
        stream.begin() + static_cast<std::ptrdiff_t>(b * batch),
        stream.begin() + static_cast<std::ptrdiff_t>((b + 1) * batch));
    submitted.push_back(std::chrono::steady_clock::now());
    futures.push_back(service.submit(std::move(one)));
  }
  for (std::size_t b = 0; b < futures.size(); ++b) {
    futures[b].get();
    latencies_us.push_back(elapsed_s(submitted[b]) * 1e6);
  }
  const route::RingStats ring = service.ring_stats();
  service.shutdown();
  std::sort(latencies_us.begin(), latencies_us.end());
  std::printf(
      "    ring[%s/%s %dt]: %llu pushes, %llu pops, %llu enqueue waits, "
      "depth max %zu/%zu\n",
      engine_name.c_str(), workload.c_str(), threads,
      static_cast<unsigned long long>(ring.pushes),
      static_cast<unsigned long long>(ring.pops),
      static_cast<unsigned long long>(ring.enqueue_waits), ring.max_depth,
      service_ring_capacity);

  Record r;
  r.family = family;
  r.nodes = nodes;
  r.threads = threads;
  r.engine = engine_name;
  r.workload = workload;
  r.batch = batch;
  r.queries = stream.size();
  r.qps = secs > 0.0 ? static_cast<double>(stream.size()) / secs : 0.0;
  r.p50_us = percentile_us(latencies_us, 0.50);
  r.p99_us = percentile_us(latencies_us, 0.99);
  return r;
}

/// All engine x workload x threads rows for one instance. Returns false
/// if the differential gate fails or the packed-kernel expectation is
/// violated.
bool bench_instance(const SuperIPSpec& spec, bool expect_packed,
                    const Params& params, std::vector<Record>& records) {
  const net::ImplicitSuperIPTopology topo(spec);
  const std::uint64_t n = topo.num_nodes();

  const QueryEngine scalar_engine(
      topo,
      QueryEngineOptions{.cache_capacity = 0, .use_packed_kernels = false});
  const QueryEngine batched_engine(
      topo,
      QueryEngineOptions{.cache_capacity = 0, .use_packed_kernels = true});
  const QueryEngine cached_engine(
      topo, QueryEngineOptions{.cache_capacity = 1u << 16,
                               .cache_admission = true,
                               .use_packed_kernels = true});
  std::printf("%s: %llu implicit nodes, packed kernel %s\n", spec.name.c_str(),
              static_cast<unsigned long long>(n),
              batched_engine.packed_kernel_active() ? "active" : "inactive");
  if (batched_engine.packed_kernel_active() != expect_packed) {
    std::fprintf(stderr, "FAIL: packed kernel expectation violated on %s\n",
                 spec.name.c_str());
    return false;
  }

  // Differential gate: every engine must answer a sampled stream exactly
  // like the scalar baseline before any throughput number is reported.
  {
    Xoshiro256 rng(0xd1ff);
    const std::vector<RouteQuery> sample =
        make_workload("uniform", n, 512, rng);
    std::vector<RouteAnswer> want(sample.size());
    std::vector<RouteAnswer> got(sample.size());
    scalar_engine.answer_batch_scalar(sample, want);
    for (const QueryEngine* e : {&batched_engine, &cached_engine}) {
      e->answer_batch(sample, got);
      if (got != want) {
        std::fprintf(stderr, "FAIL: engine diverges from scalar on %s\n",
                     spec.name.c_str());
        return false;
      }
    }
    std::printf("differential gate: %zu sampled queries bit-identical\n",
                sample.size());
  }

  for (const int threads : params.thread_counts) {
    ThreadPool pool(threads);
    for (const std::string workload : {"uniform", "hotset"}) {
      Xoshiro256 rng(0xbe7c + static_cast<std::uint64_t>(threads));
      const std::vector<RouteQuery> stream =
          make_workload(workload, n, params.queries, rng);
      double scalar_qps = 0.0;
      for (const auto& [engine, name] :
           {std::pair<const QueryEngine*, const char*>{&scalar_engine,
                                                       "scalar"},
            {&batched_engine, "batched"},
            {&cached_engine, "cached"}}) {
        Record r = run_row(*engine, name, workload, stream, params.batch,
                           threads, pool, n, spec.name);
        if (r.engine == "scalar") {
          scalar_qps = r.qps;
        } else if (scalar_qps > 0.0) {
          r.speedup_vs_scalar = r.qps / scalar_qps;
        }
        std::printf("%-10s %dt %-7s %-7s  %9.0f qps  p50 %8.1f us  "
                    "p99 %8.1f us",
                    spec.name.c_str(), threads, workload.c_str(),
                    r.engine.c_str(), r.qps, r.p50_us, r.p99_us);
        if (r.engine != "scalar") {
          std::printf("  %.2fx", r.speedup_vs_scalar);
        }
        std::printf("\n");
        records.push_back(std::move(r));
      }
    }
  }
  return true;
}

void write_json(const char* path, const std::vector<Record>& records) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(
        f,
        "  {\"family\": \"%s\", \"nodes\": %llu, \"threads\": %d, "
        "\"engine\": \"%s\", \"workload\": \"%s\", \"batch\": %llu, "
        "\"queries\": %llu, \"qps\": %.0f, \"p50_us\": %.1f, "
        "\"p99_us\": %.1f",
        r.family.c_str(), static_cast<unsigned long long>(r.nodes), r.threads,
        r.engine.c_str(), r.workload.c_str(),
        static_cast<unsigned long long>(r.batch),
        static_cast<unsigned long long>(r.queries), r.qps, r.p50_us, r.p99_us);
    if (r.engine != "scalar") {
      std::fprintf(f, ", \"speedup_vs_scalar\": %.2f", r.speedup_vs_scalar);
    }
    std::fprintf(f, "}%s\n", i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %zu records to %s\n", records.size(), path);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_route_qps.json";
  Params params;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      params.queries = 10'000;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--queries=", 0) == 0) {
      params.queries = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--batch=", 0) == 0) {
      params.batch = std::strtoull(arg.c_str() + 8, nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      params.thread_counts.clear();
      const char* p = arg.c_str() + 10;
      while (*p) {
        params.thread_counts.push_back(
            static_cast<int>(std::strtol(p, nullptr, 10)));
        while (*p && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--threads=1,8] [--queries=N] "
                   "[--batch=N] [--json=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (params.batch == 0 || params.queries < params.batch) {
    params.batch = params.queries;
  }

  std::vector<Record> records;
  bool all_ok = true;
  // HSN(6,Q4): 16.7M nodes, label too wide to pack — cache-carried rows.
  all_ok &= bench_instance(make_hsn(6, hypercube_nucleus(4)),
                           /*expect_packed=*/false, params, records);
  // HSN(6,S4): 191M nodes, 96-bit labels — packed batch kernels active.
  all_ok &= bench_instance(make_hsn(6, star_nucleus(4)),
                           /*expect_packed=*/true, params, records);

  write_json(json_path.c_str(), records);

  // The serving-tier goal (ISSUE 6 acceptance): batched+cached >= 3x the
  // scalar per-query path on HSN(6,Q4) at the highest thread count.
  // Reported, not a hard exit — CI boxes are noisy; the differential
  // gate above is the correctness contract.
  double best_speedup = 0.0;
  for (const Record& r : records) {
    if (r.family == "HSN(6,Q4)" && r.engine == "cached" &&
        r.threads == params.thread_counts.back()) {
      best_speedup = std::max(best_speedup, r.speedup_vs_scalar);
    }
  }
  std::printf(
      "goal: cached >= 3x scalar on HSN(6,Q4) at %dt: %s (best %.1fx)\n",
      params.thread_counts.back(), best_speedup >= 3.0 ? "MET" : "NOT MET",
      best_speedup);
  return all_ok ? 0 : 1;
}
