// THM-OPT — Theorem 4.4: with a diameter-optimal nucleus (generalized
// hypercube) and d_S = d_N^(1+o(1)), super-IP graph diameters sit within a
// small constant of the universal degree/diameter (Moore) lower bound, and
// the factor shrinks as the networks grow. Prints the optimality factor
// (diameter / Moore bound) across families and scales; classical networks
// are shown for contrast.
#include <iostream>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/cost_model.hpp"
#include "util/table.hpp"

using namespace ipg;

namespace {

Table table({"network", "N", "degree", "diameter", "Moore LB", "factor"});

void row(const std::string& name, std::uint64_t nodes, std::uint32_t degree,
         std::uint32_t diameter) {
  const std::uint32_t lb = moore_diameter_lower_bound(nodes, degree);
  table.add_row({name, Table::num(nodes), Table::num(std::uint64_t{degree}),
                 Table::num(std::uint64_t{diameter}),
                 Table::num(std::uint64_t{lb}),
                 Table::fixed(diameter_optimality_factor(nodes, degree, diameter), 2)});
}

}  // namespace

int main() {
  std::cout << "THM-OPT: diameter optimality factor vs the degree/diameter "
               "lower bound (Theorem 4.4)\n\n";

  // Super-IP graphs over a dense generalized-hypercube nucleus.
  const std::vector<int> radices{8, 8};
  const TopoNums gh = generalized_hypercube_nums(radices);  // 64 nodes, deg 14, D 2
  for (const int l : {2, 3, 4, 6, 8}) {
    const SuperNums s = complete_cn_nums(l, gh);
    row(s.name, s.nodes, s.degree, s.diameter);
  }
  // Same nucleus, HSN generators.
  for (const int l : {2, 4, 8}) {
    const SuperNums s = hsn_nums(l, gh);
    row(s.name, s.nodes, s.degree, s.diameter);
  }
  // Cheap-nucleus variant (Q4) for contrast: sparser nucleus, looser factor.
  for (const int l : {3, 5, 7}) {
    const SuperNums s = ring_cn_nums(l, hypercube_nums(4));
    row(s.name, s.nodes, s.degree, s.diameter);
  }
  // Classical comparators.
  for (const int n : {10, 16, 20}) {
    const TopoNums q = hypercube_nums(n);
    row(q.name, q.nodes, q.degree, q.diameter);
  }
  for (const int n : {7, 9, 11}) {
    const TopoNums s = star_nums(n);
    row(s.name, s.nodes, s.degree, s.diameter);
  }
  {
    const TopoNums p = petersen_nums();  // the Moore graph itself
    row(p.name, p.nodes, p.degree, p.diameter);
  }

  table.print(std::cout);
  std::cout << "\nReading: GH-nucleus super-IP graphs hold a factor ~2-3 at "
               "every scale, hypercubes drift beyond 4x; Petersen sits at "
               "exactly 1.0.\n";
  return 0;
}
