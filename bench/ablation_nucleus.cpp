// ABLATION — The design-knob study the paper's conclusion sketches: "a
// dense nucleus graph reduces the diameter and average distance, a strong
// set of super-generators enhances the embedding capability, ... and their
// combined effect determines the algorithmic properties."
//
// Holds the architecture fixed (l = 3 cyclic-shift network, one nucleus
// per 16-node-or-less module) and swaps the nucleus / super-generator set,
// measuring everything exactly on the explicit networks.
#include <iostream>

#include "analysis/bounds.hpp"
#include "cluster/imetrics.hpp"
#include "cluster/partitions.hpp"
#include "graph/metrics.hpp"
#include "ipg/families.hpp"
#include "ipg/schedule.hpp"
#include "topo/hypercube.hpp"
#include "util/table.hpp"

using namespace ipg;

namespace {

Table table({"variant", "N", "deg", "diam", "avg dist", "I-deg", "I-diam",
             "DD", "II", "diam/LB"});

void measure(const SuperIPSpec& spec) {
  const IPGraph g = build_super_ip_graph(spec);
  const TopologyProfile p = profile(g.graph);
  const Clustering c = cluster_by_nucleus(g, spec.m);
  const IMetrics im = i_metrics(g.graph, c);
  table.add_row(
      {spec.name, Table::num(p.nodes), Table::num(std::uint64_t{p.degree}),
       Table::num(std::uint64_t{p.diameter}), Table::fixed(p.average_distance, 2),
       Table::fixed(im.i_degree, 2), Table::num(std::uint64_t{im.i_diameter}),
       Table::fixed(static_cast<double>(p.degree) * p.diameter, 0),
       Table::fixed(im.i_degree * im.i_diameter, 1),
       Table::fixed(diameter_optimality_factor(p.nodes, p.degree, p.diameter), 2)});
}

}  // namespace

int main() {
  std::cout << "ABLATION: nucleus and super-generator choice at fixed "
               "l = 3, modules <= 16 nodes\n\n";

  std::cout << "-- nucleus sweep (ring-CN generators) --\n";
  measure(make_ring_cn(3, hypercube_nucleus(4)));           // sparse: Q4
  measure(make_ring_cn(3, folded_hypercube_nucleus(4)));    // denser: FQ4
  measure(make_ring_cn(3, generalized_hypercube_nucleus(
                              std::vector<int>{4, 4})));    // dense: GH(4,4)
  measure(make_ring_cn(3, complete_nucleus(16)));           // densest: K16
  measure(make_ring_cn(3, kary_ncube_nucleus(4, 2)));       // torus 4x4
  measure(make_ring_cn(3, star_nucleus(3)));                // tiny star

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nReading (paper, Conclusion): a denser nucleus cuts "
               "diameter and average distance at the price of node degree; "
               "I-degree and I-diameter depend only on the "
               "super-generators, so the II-cost column is flat across "
               "the nucleus sweep.\n\n";

  Table t2({"variant", "N", "deg", "diam", "t", "I-deg", "I-diam", "II"});
  // l = 5 over a small nucleus: here the generator sets separate — ring
  // shifts keep I-degree 2 while transpositions/flips/all-shifts pay l-1.
  const IPGraphSpec q2 = hypercube_nucleus(2);
  for (const auto& [label, spec] :
       {std::pair<const char*, SuperIPSpec>{"transpositions (HSN)",
                                            make_hsn(5, q2)},
        {"ring shifts", make_ring_cn(5, q2)},
        {"all shifts (complete-CN)", make_complete_cn(5, q2)},
        {"flips (SFN)", make_super_flip(5, q2)},
        {"single shift (directed)", make_directed_cn(5, q2)}}) {
    const IPGraph g = build_super_ip_graph(spec);
    const TopologyProfile p = profile(g.graph);
    const Clustering c = cluster_by_nucleus(g, spec.m);
    const IMetrics im = i_metrics(g.graph, c);
    t2.add_row({label, Table::num(p.nodes), Table::num(std::uint64_t{p.degree}),
                Table::num(std::uint64_t{p.diameter}),
                Table::num(std::int64_t{compute_t(spec)}),
                Table::fixed(im.i_degree, 2),
                Table::num(std::uint64_t{im.i_diameter}),
                Table::fixed(im.i_degree * im.i_diameter, 1)});
  }
  std::cout << "-- super-generator sweep (l = 5, Q2 nucleus) --\n\n";
  t2.print(std::cout);
  std::cout << "\nReading: every Section 3 generator set realizes t = l-1, "
               "so diameters tie at l*D_G + (l-1); they differ in "
               "off-module wiring — ring shifts hold I-degree at 2 (1 for "
               "the directed variant) while transpositions, flips and "
               "all-shifts pay ~l-1 = 4 — the paper's rationale for "
               "fixed-degree cyclic networks (Section 5.3).\n";
  return 0;
}
