// TAB-IDEG — Reproduces the in-text comparison of Section 5.3: off-module
// links per node under the paper's module assignments, *measured* on
// explicit networks (not formulas). Paper claims:
//   ring-CN: 1 (l = 2), 2 (l >= 3)
//   HSN / complete-CN / super-flip: 1, 2, 3, 4 for l = 2, 3, 4, 5
//   hypercube: n-3 (3-cube modules) or n-4 (4-cube modules);
//              "a node in a 17-cube has 14 (or 13) off-module links"
//   star graph: in-text "n-2 (or n-3)"; measured is n-3 (or n-4) — the
//              paper's figure appears shifted by one (see EXPERIMENTS.md)
//   de Bruijn: 4 (MSB-block modules)
#include <iostream>

#include "cluster/imetrics.hpp"
#include "cluster/partitions.hpp"
#include "ipg/families.hpp"
#include "topo/de_bruijn.hpp"
#include "topo/hypercube.hpp"
#include "topo/star.hpp"
#include "util/table.hpp"

using namespace ipg;

namespace {

Table table({"network", "modules", "nodes/module", "I-degree (measured)",
             "paper"});

void super_family(const std::string& kind, int l, int nucleus_n,
                  const std::string& paper_value) {
  const IPGraphSpec nucleus = hypercube_nucleus(nucleus_n);
  const SuperIPSpec spec = kind == "HSN"       ? make_hsn(l, nucleus)
                           : kind == "ring-CN" ? make_ring_cn(l, nucleus)
                           : kind == "SFN"     ? make_super_flip(l, nucleus)
                                               : make_complete_cn(l, nucleus);
  const IPGraph g = build_super_ip_graph(spec);
  const Clustering c = cluster_by_nucleus(g, spec.m);
  table.add_row({spec.name, Table::num(std::uint64_t{c.num_modules}),
                 Table::num(std::uint64_t{c.max_module_size()}),
                 Table::fixed(i_degree(g.graph, c), 3), paper_value});
}

}  // namespace

int main() {
  std::cout << "TAB-IDEG: off-module links per node (Section 5.3), "
               "measured with one nucleus (or sub-cube/sub-star) per "
               "module\n\n";

  for (int l = 2; l <= 4; ++l) {
    super_family("ring-CN", l, 4, l == 2 ? "1" : "2");
  }
  for (int l = 2; l <= 4; ++l) {
    super_family("HSN", l, 4, std::to_string(l - 1));
  }
  for (int l = 2; l <= 4; ++l) {
    super_family("complete-CN", l, 4, std::to_string(l - 1));
  }
  for (int l = 2; l <= 4; ++l) {
    super_family("SFN", l, 4, std::to_string(l - 1));
  }

  for (const int n : {8, 12, 17}) {
    const Graph q = topo::hypercube(n);
    for (const int b : {3, 4}) {
      const Clustering c = cluster_hypercube(n, b);
      table.add_row({"Q" + std::to_string(n),
                     Table::num(std::uint64_t{c.num_modules}),
                     Table::num(std::uint64_t{c.max_module_size()}),
                     Table::fixed(i_degree(q, c), 3),
                     std::to_string(n - b)});
    }
  }

  for (const int n : {6, 8}) {
    const Graph s = topo::star_graph(n);
    for (const int sub : {3, 4}) {
      const Clustering c = cluster_star(n, sub);
      table.add_row({"S" + std::to_string(n),
                     Table::num(std::uint64_t{c.num_modules}),
                     Table::num(std::uint64_t{c.max_module_size()}),
                     Table::fixed(i_degree(s, c), 3),
                     std::to_string(n - sub + 1) + " (text)"});
    }
  }

  {
    const Graph db = topo::de_bruijn_undirected(2, 10);
    const Clustering c = cluster_de_bruijn(2, 10, 4);
    table.add_row({"DB(2,10)", Table::num(std::uint64_t{c.num_modules}),
                   Table::num(std::uint64_t{c.max_module_size()}),
                   Table::fixed(i_degree(db, c), 3), "4"});
  }

  table.print(std::cout);
  std::cout << "\nNote: measured star-graph values are n-3 / n-4 for 3-/4-"
               "star modules;\nthe paper's in-text n-2 / n-3 appears to be "
               "off by one (its hypercube\nvalues n-3 / n-4 match "
               "measurement exactly).\n";
  return 0;
}
