// FIG3 — Reproduces Fig. 3: (a) average inter-cluster distance and
// (b) inter-cluster diameter vs log2(network size), with at most 24
// processors per module. Module assignments follow the paper: one nucleus
// per module where the nucleus fits (HSN/CN over Q4), 4-cube sub-modules
// where it does not (hypercube, HCN(n,n)), and Q3-merged nuclei for the
// quotient network QCN(l; Q7/Q3).
//
// I-distances are computed on contracted module graphs: exactly (all-pairs
// BFS) up to 8192 modules, by 128-source sampling beyond (marked '~').
// Qualitative claims to check: hierarchical networks need far fewer
// off-module hops than hypercubes of equal size, with HSN/CN flattest.
#include <cmath>
#include <iostream>

#include "cluster/imetrics.hpp"
#include "cluster/partitions.hpp"
#include "ipg/families.hpp"
#include "util/table.hpp"

using namespace ipg;

namespace {

struct Row {
  std::string family;
  double log2_nodes;
  double avg_i;
  Dist i_diam;
  bool exact;
};

std::vector<Row> rows;

void add_row(std::string family, double log2_nodes, const IDistanceStats& s,
             bool exact) {
  rows.push_back(Row{std::move(family), log2_nodes, s.avg_i_distance,
                     s.i_diameter, exact});
}

IDistanceStats stats_for(const Graph& module_graph, std::uint32_t module_size,
                         bool* exact) {
  const std::vector<std::uint32_t> sizes(module_graph.num_nodes(), module_size);
  *exact = module_graph.num_nodes() <= 8192;
  if (*exact) return i_distance_stats(module_graph, sizes);
  return i_distance_stats_sampled(module_graph, sizes, 128, /*seed=*/2024);
}

}  // namespace

int main() {
  std::cout << "FIG3: average I-distance (a) and I-diameter (b) vs log2(N), "
               "<= 24 nodes per module (paper Fig. 3)\n\n";

  // Hypercube with 4-cube modules: module graph is Q_(n-4) (closed form,
  // validated in tests): avg = (n-4)/2 * N/(N-1), I-diameter = n-4.
  for (int n = 8; n <= 24; n += 2) {
    const double nodes = std::pow(2.0, n);
    IDistanceStats s;
    s.avg_i_distance = (n - 4) / 2.0 * nodes / (nodes - 1.0);
    s.i_diameter = static_cast<Dist>(n - 4);
    add_row("hypercube", n, s, true);
  }

  // HCN(n,n) = HSN(2, Q_n) with 4-cube sub-modules.
  for (int n = 4; n <= 12; ++n) {
    const Graph mg = hcn_subcube_module_graph(n, std::min(n, 4));
    bool exact = false;
    const IDistanceStats s = stats_for(mg, 16, &exact);
    add_row("HCN(n,n)", 2.0 * n, s, exact);
  }

  // HSN(l, Q4), one nucleus per module: Hamming module graph H(l-1, 16)
  // (closed form, validated in tests).
  for (int l = 2; l <= 6; ++l) {
    const double nodes = std::pow(16.0, l);
    IDistanceStats s;
    s.avg_i_distance = (l - 1) * (1.0 - 1.0 / 16.0) * nodes / (nodes - 1.0);
    s.i_diameter = static_cast<Dist>(l - 1);
    add_row("HSN(l,Q4)", 4.0 * l, s, true);
  }

  // ring-CN(l, Q4), one nucleus per module.
  for (int l = 2; l <= 5; ++l) {
    const auto gens = ring_shift_super_gens(l);
    const Graph mg = super_module_graph(16, l, gens);
    bool exact = false;
    const IDistanceStats s = stats_for(mg, 16, &exact);
    add_row("ring-CN(l,Q4)", 4.0 * l, s, exact);
  }

  // QCN(l; Q7/Q3): physically 16 * 128^(l-1) nodes; I-metrics equal the
  // unmerged CN(l, Q7)'s (merging acts inside modules; tested).
  for (int l = 2; l <= 3; ++l) {
    const auto gens = ring_shift_super_gens(l);
    const Graph mg = super_module_graph(128, l, gens);
    bool exact = false;
    const IDistanceStats s = stats_for(mg, 16, &exact);
    add_row("QCN(l,Q7/Q3)", 4.0 + 7.0 * (l - 1), s, exact);
  }

  Table a({"family", "log2(N)", "avg I-distance", "I-diameter", "mode"});
  for (const auto& r : rows) {
    a.add_row({r.family, Table::fixed(r.log2_nodes, 1), Table::fixed(r.avg_i, 3),
               Table::num(std::uint64_t{r.i_diam}), r.exact ? "exact" : "~sampled"});
  }
  a.print(std::cout);

  // Headline check at ~2^20: hypercube needs ~8 off-module hops on
  // average, HSN(5,Q4)/ring-CN(5,Q4) need ~4 or fewer.
  double cube20 = 0, hsn20 = 0;
  for (const auto& r : rows) {
    if (r.family == "hypercube" && r.log2_nodes == 20) cube20 = r.avg_i;
    if (r.family == "HSN(l,Q4)" && r.log2_nodes == 20) hsn20 = r.avg_i;
  }
  std::cout << "\ncheck @ 2^20 nodes: hypercube avg I-distance = "
            << Table::fixed(cube20, 2) << ", HSN(5,Q4) = "
            << Table::fixed(hsn20, 2) << '\n'
            << (hsn20 < cube20 ? "PASS" : "FAIL")
            << ": hierarchical networks cut off-module traffic\n";
  return 0;
}
