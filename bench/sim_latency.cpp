// SIM-LAT — Executable check of Section 5's analytical latency claims via
// the discrete-event simulator, on equal-size (1024-node) networks under
// uniform random traffic:
//   (1) with uniform link speeds at light load, average latency ranks the
//       networks like average distance (and hence like DD-cost trends);
//   (2) with off-module links 4x slower (<= 16 nodes per module), average
//       latency ranks the networks like average I-distance (II-cost trend);
//   (3) throughput is inversely related to average (I-)distance.
#include <iostream>
#include <optional>

#include "cluster/imetrics.hpp"
#include "cluster/partitions.hpp"
#include "graph/metrics.hpp"
#include "ipg/families.hpp"
#include "sim/link_load.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "topo/hypercube.hpp"
#include "topo/torus.hpp"
#include "util/table.hpp"

using namespace ipg;

namespace {

struct Config {
  std::string name;
  Graph graph;
  Clustering clustering;
};

std::vector<Config> configs_1024() {
  std::vector<Config> out;
  {
    Config c;
    c.name = "hypercube Q10";
    c.graph = topo::hypercube(10);
    c.clustering = cluster_hypercube(10, 4);
    out.push_back(std::move(c));
  }
  {
    Config c;
    c.name = "2-D torus 32x32";
    c.graph = topo::torus2d(32, 32);
    c.clustering = cluster_torus2d(32, 32, 4, 4);
    out.push_back(std::move(c));
  }
  {
    const SuperIPSpec spec = make_ring_cn(2, hypercube_nucleus(5));
    const IPGraph g = build_super_ip_graph(spec);
    Config c;
    c.name = "HCN(5,5)/ring-CN(2,Q5)";
    c.graph = g.graph;
    // Q5 nucleus exceeds the 16-node budget: split into 4-cube sub-modules
    // of the leading block (label positions m..end fix the module, plus
    // one bit of the lead block).
    Clustering base = cluster_by_nucleus(g, spec.m);
    c.clustering.num_modules = base.num_modules * 2;
    c.clustering.module_of.resize(g.num_nodes());
    for (Node u = 0; u < g.num_nodes(); ++u) {
      // Use the orientation of the lead block's last pair as the extra bit.
      const Label& x = g.labels()[u];
      const std::uint32_t bit =
          x[static_cast<std::size_t>(spec.m - 2)] > x[static_cast<std::size_t>(spec.m - 1)]
              ? 1u
              : 0u;
      c.clustering.module_of[u] = base.module_of[u] * 2 + bit;
    }
    out.push_back(std::move(c));
  }
  {
    const SuperIPSpec spec = make_ring_cn(3, generalized_hypercube_nucleus(
                                                  std::vector<int>{5, 2}));
    const IPGraph g = build_super_ip_graph(spec);  // 10^3 = 1000 ~ 1024
    Config c;
    c.name = "ring-CN(3,GH(5,2))";
    c.graph = g.graph;
    c.clustering = cluster_by_nucleus(g, spec.m);
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "SIM-LAT: packet-switched latency vs the Section 5 cost "
               "metrics (1024-node networks, uniform traffic)\n\n";

  const auto configs = configs_1024();
  Table t({"network", "avg dist", "avg I-dist", "latency (uniform links)",
           "latency (off-module x4)", "throughput", "all-to-all makespan"});

  struct Summary {
    double avg_dist, avg_idist, lat_uniform, lat_skewed, a2a_makespan;
  };
  std::vector<Summary> summaries;

  for (const auto& cfg : configs) {
    const auto prof = profile(cfg.graph);
    const IMetrics im = i_metrics(cfg.graph, cfg.clustering);

    const sim::SimNetwork uniform(cfg.graph, sim::LinkTiming{1.0, 1.0},
                                  cfg.clustering);
    const sim::SimNetwork skewed(cfg.graph, sim::LinkTiming{1.0, 4.0},
                                 cfg.clustering);
    // Light load: ~0.05 packets per node per unit time.
    const auto light = sim::uniform_traffic(cfg.graph.num_nodes(),
                                            0.05 * cfg.graph.num_nodes(),
                                            200.0, /*seed=*/77);
    const auto ru = simulate(uniform, light);
    const auto rs = simulate(skewed, light);
    // Heavier load for a throughput estimate.
    const auto heavy = sim::uniform_traffic(cfg.graph.num_nodes(),
                                            0.5 * cfg.graph.num_nodes(),
                                            50.0, /*seed=*/78);
    const auto rh = simulate(uniform, heavy);

    // Total exchange: one packet per ordered pair, slow off-module links;
    // makespan measures sustained bandwidth (Section 5.2's throughput
    // argument).
    const auto a2a = simulate(skewed, sim::all_to_all_traffic(cfg.graph.num_nodes()));

    t.add_row({cfg.name, Table::fixed(prof.average_distance, 2),
               Table::fixed(im.avg_i_distance, 2),
               Table::fixed(ru.latency.mean(), 2),
               Table::fixed(rs.latency.mean(), 2),
               Table::fixed(rh.throughput(), 1),
               Table::fixed(a2a.makespan, 0)});
    summaries.push_back(Summary{prof.average_distance, im.avg_i_distance,
                                ru.latency.mean(), rs.latency.mean(),
                                a2a.makespan});
  }
  t.print(std::cout);

  // Rank-agreement checks: pairwise order of latency should follow the
  // corresponding distance metric.
  auto rank_agreement = [&](auto metric, auto latency) {
    int agree = 0, total = 0;
    for (std::size_t i = 0; i < summaries.size(); ++i) {
      for (std::size_t j = i + 1; j < summaries.size(); ++j) {
        const double dm = metric(summaries[i]) - metric(summaries[j]);
        const double dl = latency(summaries[i]) - latency(summaries[j]);
        if (std::abs(dm) < 0.05) continue;  // ties carry no signal
        ++total;
        if ((dm > 0) == (dl > 0)) ++agree;
      }
    }
    return std::pair<int, int>{agree, total};
  };

  // Section 5.2's premise check: are off-module links "uniformly
  // utilized" under uniform traffic? Deterministic all-pairs link loads.
  std::cout << "\noff-module link utilization (all-pairs shortest-path "
               "loads):\n";
  Table t3({"network", "avg off-load", "max off-load", "imbalance",
            "avg on-load"});
  for (const auto& cfg : configs) {
    const sim::SimNetwork net(cfg.graph, sim::LinkTiming{1.0, 1.0},
                              cfg.clustering);
    const auto loads = sim::all_pairs_link_loads(net);
    t3.add_row({cfg.name, Table::fixed(loads.avg_off_module, 0),
                Table::num(std::uint64_t{loads.max_off_module}),
                Table::fixed(loads.off_module_imbalance(), 2),
                Table::fixed(loads.avg_on_module, 0)});
  }
  t3.print(std::cout);

  // Scenario 4 (Section 5.3's unit off-module capacity + wormhole):
  // every node gets the same total off-module bandwidth, so a network with
  // fewer off-module links per node gets proportionally *wider* links
  // (off-module service time scaled by its I-degree), and long messages
  // ride cut-through switching. The paper predicts the super-IP designs
  // widen their lead in this regime.
  std::cout << "\nunit off-module capacity, 16-flit messages, cut-through "
               "(Section 5.3/5.4):\n";
  Table t4({"network", "I-degree", "off-link width", "latency"});
  for (const auto& cfg : configs) {
    const double ideg = std::max(0.5, i_degree(cfg.graph, cfg.clustering));
    const sim::SimNetwork capped(cfg.graph, sim::LinkTiming{1.0, ideg},
                                 cfg.clustering);
    const auto light = sim::uniform_traffic(cfg.graph.num_nodes(),
                                            0.02 * cfg.graph.num_nodes(),
                                            200.0, /*seed=*/91);
    const auto r = simulate(capped, light,
                            {16, sim::SwitchingMode::kCutThrough});
    t4.add_row({cfg.name, Table::fixed(ideg, 2),
                Table::fixed(1.0 / ideg, 2),
                Table::fixed(r.latency.mean(), 2)});
  }
  t4.print(std::cout);

  const auto [a1, t1] = rank_agreement(
      [](const Summary& s) { return s.avg_dist; },
      [](const Summary& s) { return s.lat_uniform; });
  const auto [a2, t2] = rank_agreement(
      [](const Summary& s) { return s.avg_idist; },
      [](const Summary& s) { return s.lat_skewed; });

  std::cout << "\nuniform-link latency follows avg distance:   " << a1 << "/"
            << t1 << " pairs\n";
  std::cout << "slow-off-module latency follows avg I-dist:  " << a2 << "/"
            << t2 << " pairs\n";
  std::cout << ((a1 == t1 && a2 == t2) ? "PASS" : "PARTIAL")
            << ": simulator reproduces the Section 5 latency model\n";
  return 0;
}
