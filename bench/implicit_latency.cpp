// IMPLICIT-LAT — Packet-latency estimation on a super-IP instance that is
// never materialized: HSN(6, Q4) has 16^6 = 16,777,216 nodes, far beyond
// the simulator's precomputed-table cap (and any reasonable closure), yet
// the label-routing policy needs only O(nucleus) state — the implicit
// topology answers adjacency by unrank -> apply generator -> rank, and
// SuperIPRouter derives a Theorem 4.1 source route per packet.
//
// A small-instance cross-check first: on HSN(3, Q3) (512 nodes) the same
// label policy is run against the exact table policy to show delivery
// parity and the expected sorting-route vs BFS-shortest hop gap.
#include <algorithm>
#include <iostream>

#include "cluster/partitions.hpp"
#include "graph/metrics.hpp"
#include "ipg/build.hpp"
#include "ipg/families.hpp"
#include "net/topology.hpp"
#include "route/super_ip_routing.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "topo/hypercube.hpp"
#include "util/table.hpp"

using namespace ipg;

int main() {
  std::cout << "IMPLICIT-LAT: simulation without materialization "
               "(label-routing policy)\n\n";

  // --- Cross-check on a materializable instance -------------------------
  {
    const SuperIPSpec spec = make_hsn(3, hypercube_nucleus(3));
    const IPGraph g = build_super_ip_graph(spec);
    const net::ImplicitSuperIPTopology topo(spec);
    const auto packets =
        sim::uniform_traffic(g.num_nodes(), 2.0, 100.0, /*seed=*/31);
    const auto table =
        simulate(sim::SimNetwork(g.graph, sim::LinkTiming{1.0, 4.0},
                                 cluster_by_nucleus(g, spec.m)),
                 packets);
    const auto label =
        simulate(sim::SimNetwork(topo, sim::LinkTiming{1.0, 4.0}), packets);

    Table t({"policy", "delivered", "mean hops", "mean latency",
             "off-module hops"});
    t.add_row({"precomputed table (BFS-shortest)",
               Table::num(table.delivered),
               Table::fixed(table.latency.mean_hops(), 2),
               Table::fixed(table.latency.mean(), 2),
               Table::fixed(table.latency.mean_off_module_hops(), 2)});
    t.add_row({"label route (Theorem 4.1)", Table::num(label.delivered),
               Table::fixed(label.latency.mean_hops(), 2),
               Table::fixed(label.latency.mean(), 2),
               Table::fixed(label.latency.mean_off_module_hops(), 2)});
    std::cout << "HSN(3, Q3), " << g.num_nodes()
              << " nodes, both policies, identical traffic:\n";
    t.print(std::cout);
    std::cout << (table.delivered == label.delivered ? "PASS" : "FAIL")
              << ": label policy delivers the same traffic (sorting routes "
                 "may take extra hops by design)\n\n";
  }

  // --- The instance that cannot be materialized here --------------------
  const SuperIPSpec spec = make_hsn(6, hypercube_nucleus(4));
  const net::ImplicitSuperIPTopology topo(spec);
  const std::uint64_t n = topo.num_nodes();
  std::cout << "HSN(6, Q4): " << n << " nodes ("
            << "16^6; a materialized graph would need >1 GiB, the "
               "precomputed-table policy ~10^15 B of tables)\n";

  const sim::SimNetwork net(topo, sim::LinkTiming{1.0, 4.0});
  // ~6000 sampled packets across the full 16.7M-node id space.
  const auto packets =
      sim::uniform_traffic(static_cast<Node>(n), 120.0, 50.0, /*seed=*/32);
  const auto r = simulate(net, packets);

  const IPGraph nucleus = build_ip_graph(spec.nucleus_spec());
  const int bound =
      route_length_bound(spec, static_cast<int>(profile(nucleus.graph).diameter),
                         false);
  std::uint64_t max_route = 0;
  for (const auto& p : packets) {
    max_route = std::max<std::uint64_t>(max_route,
                                        net.route_gens(p.src, p.dst).size());
  }

  Table t({"metric", "value"});
  t.add_row({"packets injected", Table::num(r.injected)});
  t.add_row({"packets delivered", Table::num(r.delivered)});
  t.add_row({"mean hops", Table::fixed(r.latency.mean_hops(), 2)});
  t.add_row({"max route length", Table::num(max_route)});
  t.add_row({"Theorem 4.1 bound (= diameter)", Table::num(std::uint64_t(bound))});
  t.add_row({"mean off-module hops",
             Table::fixed(r.latency.mean_off_module_hops(), 2)});
  t.add_row({"mean latency (off-module x4)", Table::fixed(r.latency.mean(), 2)});
  t.add_row({"p99 latency", Table::fixed(r.latency.percentile(0.99), 2)});
  t.print(std::cout);

  const bool ok = r.delivered == r.injected && max_route <= std::uint64_t(bound);
  std::cout << (ok ? "PASS" : "FAIL")
            << ": all packets delivered within the Theorem 4.1 route-length "
               "bound, no IPGraph ever built\n";
  return ok ? 0 : 1;
}
