// FIG1 — Reproduces Fig. 1 of the paper: the structure and radix-4 node
// ranking of HSN(2, Q2) = HCN(2,2) without diameter links (16 nodes) and
// HSN(3, Q2) (64 nodes). Prints node/edge inventories, the per-cluster
// layout, and the adjacency of every node by rank.
#include <iostream>

#include "cluster/imetrics.hpp"
#include "cluster/partitions.hpp"
#include "graph/metrics.hpp"
#include "ipg/families.hpp"
#include "ipg/ranking.hpp"
#include "topo/hypercube.hpp"
#include "util/table.hpp"

using namespace ipg;

namespace {

void describe(const SuperIPSpec& spec) {
  const IPGraph g = build_super_ip_graph(spec);
  const SuperRanking ranking(spec);
  const TopologyProfile p = profile(g.graph);
  const Clustering c = cluster_by_nucleus(g, spec.m);

  std::cout << "== " << spec.name << " ==\n";
  std::cout << "nodes " << p.nodes << "  links " << p.links << "  degree "
            << p.degree << "  diameter " << p.diameter << "  avg-distance "
            << Table::fixed(p.average_distance, 3) << "\n";
  std::cout << "clusters " << c.num_modules << " x " << c.max_module_size()
            << " nodes (one nucleus per cluster)\n";
  std::cout << "generators:";
  for (const auto& gen : spec.to_ip_spec().generators) {
    std::cout << ' ' << gen.name;
  }
  std::cout << "\nseed " << label_to_string_grouped(spec.seed, spec.m)
            << "  (rank " << ranking.radix_string(spec.seed) << ")\n";

  // Adjacency by radix-M rank, sorted by rank as in the figure.
  std::vector<Node> by_rank(g.num_nodes());
  for (Node u = 0; u < g.num_nodes(); ++u) {
    by_rank[ranking.rank(g.labels()[u])] = u;
  }
  Table t({"rank", "label", "neighbors (by rank)"});
  for (std::uint64_t r = 0; r < g.num_nodes(); ++r) {
    const Node u = by_rank[r];
    std::string nbs;
    for (const Node v : g.graph.neighbors(u)) {
      if (!nbs.empty()) nbs += ' ';
      nbs += ranking.radix_string(g.labels()[v]);
    }
    t.add_row({ranking.radix_string(g.labels()[u]),
               label_to_string_grouped(g.labels()[u], spec.m), nbs});
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  std::cout << "FIG1: structures of HSN(l, Q2), l = 2, 3 (paper Fig. 1)\n\n";
  describe(make_hcn(2));
  describe(make_hsn(3, hypercube_nucleus(2)));
  return 0;
}
