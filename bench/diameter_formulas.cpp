// THM-DIAM — Validates Theorem 4.1 (diameter = l*D_G + t), Theorem 4.3
// (symmetric variants: l*D_G + t_S) and Corollary 4.2
// (diameter = (D_G + 1) * log_M(N) - 1) by measuring exact diameters with
// all-pairs BFS on every enumerable configuration and printing
// measured-vs-formula side by side.
#include <iostream>

#include "graph/metrics.hpp"
#include "ipg/families.hpp"
#include "ipg/schedule.hpp"
#include "ipg/symmetric.hpp"
#include "topo/hypercube.hpp"
#include "topo/misc.hpp"
#include "util/table.hpp"

using namespace ipg;

namespace {

Table table({"network", "N", "D_G", "t / t_S", "formula", "measured", "ok"});
int failures = 0;

void row(const std::string& name, std::uint64_t nodes, int dg, int t,
         Dist formula, Dist measured) {
  const bool ok = formula == measured;
  if (!ok) ++failures;
  table.add_row({name, Table::num(nodes), Table::num(std::int64_t{dg}),
                 Table::num(std::int64_t{t}), Table::num(std::uint64_t{formula}),
                 Table::num(std::uint64_t{measured}), ok ? "yes" : "NO"});
}

void super_case(const SuperIPSpec& spec, int dg, bool symmetric) {
  const SuperIPSpec built_spec = symmetric ? make_symmetric(spec) : spec;
  const IPGraph g = build_super_ip_graph(built_spec);
  const int t = symmetric ? compute_t_symmetric(spec) : compute_t(spec);
  row((symmetric ? "sym-" : "") + spec.name, g.num_nodes(), dg, t,
      static_cast<Dist>(spec.l * dg + t), profile(g.graph).diameter);
}

}  // namespace

int main() {
  std::cout << "THM-DIAM: measured diameters vs Theorem 4.1/4.3 and "
               "Corollary 4.2\n\n";

  for (const int n : {2, 3}) {
    const IPGraphSpec q = hypercube_nucleus(n);
    for (const int l : {2, 3}) {
      super_case(make_hsn(l, q), n, false);
      super_case(make_ring_cn(l, q), n, false);
      super_case(make_complete_cn(l, q), n, false);
      super_case(make_super_flip(l, q), n, false);
      super_case(make_directed_cn(l, q), n, false);
    }
  }
  super_case(make_hsn(4, hypercube_nucleus(2)), 2, false);
  super_case(make_ring_cn(4, hypercube_nucleus(2)), 2, false);
  super_case(make_hsn(2, star_nucleus(4)), 4, false);   // D(S4) = 4
  super_case(make_ring_cn(3, complete_nucleus(5)), 1, false);
  super_case(make_ring_cn(2, generalized_hypercube_nucleus(
                                std::vector<int>{3, 3})), 2, false);

  // Symmetric variants (Theorem 4.3).
  super_case(make_hsn(2, hypercube_nucleus(2)), 2, true);
  super_case(make_hsn(3, hypercube_nucleus(2)), 2, true);
  super_case(make_ring_cn(3, hypercube_nucleus(2)), 2, true);
  super_case(make_ring_cn(4, hypercube_nucleus(2)), 2, true);
  super_case(make_super_flip(3, hypercube_nucleus(2)), 2, true);

  table.print(std::cout);

  // Corollary 4.2 restated: with t = l-1 the diameter is
  // (D_G + 1) * log_M N - 1 — spot-check the arithmetic identity.
  std::cout << "\nCorollary 4.2: diameter = (D_G+1) * log_M(N) - 1 "
               "(equivalent to l*D_G + (l-1) since log_M(N) = l)\n";
  std::cout << (failures == 0 ? "PASS" : "FAIL")
            << ": measured diameters match the theorems (" << failures
            << " mismatches)\n";
  return failures == 0 ? 0 : 1;
}
