// Golden-file regression for the distance structure of every family
// variant the net layer enumerates (the 12 specs of
// tests/net_topology_test.cpp): nodes, max degree, BFS diameter and the
// integral all-pairs distance sum are pinned to values measured from the
// seed implementation. Any routing/construction change that silently
// perturbs the topology trips these before it can skew the paper figures.
// Where Theorem 4.1 / Corollary 4.2 give closed forms, the pinned values
// are cross-checked against the formula layer too, so the constants can't
// drift away from the theory they reproduce.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/exact.hpp"
#include "analysis/formulas.hpp"
#include "ipg/families.hpp"
#include "ipg/super.hpp"
#include "ipg/symmetric.hpp"

namespace ipg {
namespace {

struct Golden {
  std::string name;
  std::uint64_t nodes;
  Node degree;
  Dist diameter;
  std::uint64_t distance_sum;  ///< sum of d(u,v) over ordered pairs
};

/// Measured once from the seed implementation (all-pairs BFS); integral so
/// the comparison is exact on every platform.
const std::vector<Golden>& golden_table() {
  static const std::vector<Golden> table = {
      {"HCN(2,2)", 16u, 3u, 5u, 616ull},
      {"HSN(3,Q2)", 64u, 4u, 8u, 14640ull},
      {"ring-CN(3,S3)", 216u, 4u, 11u, 230736ull},
      {"complete-CN(3,Q2)", 64u, 4u, 8u, 14744ull},
      {"directed-CN(3,S3)", 216u, 3u, 11u, 255198ull},
      {"SFN(3,Q2)", 64u, 4u, 8u, 14640ull},
      {"sym-HCN(2,2)", 32u, 3u, 6u, 3328ull},
      {"sym-HSN(3,Q2)", 384u, 4u, 10u, 811008ull},
      {"sym-ring-CN(3,S3)", 648u, 4u, 12u, 2772144ull},
      {"sym-complete-CN(3,Q2)", 192u, 4u, 9u, 183552ull},
      {"sym-directed-CN(3,S3)", 648u, 3u, 13u, 3067632ull},
      {"sym-SFN(3,Q2)", 384u, 4u, 10u, 811008ull},
  };
  return table;
}

std::vector<SuperIPSpec> all_family_specs() {
  std::vector<SuperIPSpec> specs = {
      make_hcn(2),
      make_hsn(3, hypercube_nucleus(2)),
      make_ring_cn(3, star_nucleus(3)),
      make_complete_cn(3, hypercube_nucleus(2)),
      make_directed_cn(3, star_nucleus(3)),
      make_super_flip(3, hypercube_nucleus(2)),
  };
  const std::size_t plain_count = specs.size();
  for (std::size_t i = 0; i < plain_count; ++i) {
    specs.push_back(make_symmetric(specs[i]));
  }
  return specs;
}

std::uint64_t distance_sum(const DistanceSummary& d) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < d.histogram.size(); ++i) {
    sum += i * d.histogram[i];
  }
  return sum;
}

TEST(GoldenDiameters, AllFamilyVariantsMatchPinnedValues) {
  const std::vector<SuperIPSpec> specs = all_family_specs();
  const std::vector<Golden>& golds = golden_table();
  ASSERT_EQ(specs.size(), golds.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(specs[i].name);
    ASSERT_EQ(specs[i].name, golds[i].name)
        << "spec list drifted from the golden table";
    const IPGraph g = build_super_ip_graph(specs[i]);
    const ExactAnalysis a = exact_analysis(g.graph);
    EXPECT_TRUE(a.distances.strongly_connected);
    EXPECT_EQ(a.profile.nodes, golds[i].nodes);
    EXPECT_EQ(a.profile.degree, golds[i].degree);
    EXPECT_EQ(a.profile.diameter, golds[i].diameter);
    EXPECT_EQ(distance_sum(a.distances), golds[i].distance_sum);
    // The average distance the figure harnesses report is exactly
    // distance_sum / ordered pairs; pin that identity too.
    std::uint64_t pairs = 0;
    for (std::size_t d = 1; d < a.distances.histogram.size(); ++d) {
      pairs += a.distances.histogram[d];
    }
    ASSERT_GT(pairs, 0u);
    EXPECT_DOUBLE_EQ(a.profile.average_distance,
                     static_cast<double>(golds[i].distance_sum) /
                         static_cast<double>(pairs));
  }
}

TEST(GoldenDiameters, PinnedValuesAgreeWithTheorem41Formulas) {
  // The four plain families with closed forms in analysis/formulas.hpp:
  // diameter = l * D_nucleus + (l - 1) (Theorem 4.1 sorting routes are
  // tight on these instances).
  const TopoNums q2 = hypercube_nums(2);
  const TopoNums s3 = star_nums(3);
  const struct {
    SuperNums predicted;
    const char* golden_name;
  } cases[] = {
      {hsn_nums(3, q2), "HSN(3,Q2)"},
      {ring_cn_nums(3, s3), "ring-CN(3,S3)"},
      {complete_cn_nums(3, q2), "complete-CN(3,Q2)"},
      {super_flip_nums(3, q2), "SFN(3,Q2)"},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.golden_name);
    bool found = false;
    for (const Golden& gold : golden_table()) {
      if (gold.name != c.golden_name) continue;
      found = true;
      EXPECT_EQ(gold.nodes, c.predicted.nodes);
      EXPECT_EQ(static_cast<std::uint32_t>(gold.degree), c.predicted.degree);
      EXPECT_EQ(static_cast<std::uint32_t>(gold.diameter),
                c.predicted.diameter);
    }
    EXPECT_TRUE(found);
  }
}

}  // namespace
}  // namespace ipg
