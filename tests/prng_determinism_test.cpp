// Cross-platform determinism for util/prng: every stochastic experiment in
// the repo (traffic, fault plans, property tests) keys off these streams,
// so their values are pinned as integer known-answer vectors. All the
// arithmetic is unsigned 64-bit (and double division by a power of two for
// uniform()), so the same seed must produce bit-identical streams on every
// compiler, platform and optimization level — which also keeps golden
// simulator outputs and seeded fault plans comparable across CI jobs.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "util/prng.hpp"

namespace ipg {
namespace {

TEST(PrngDeterminism, SplitMix64KnownAnswers) {
  // First outputs from state 0 are the published SplitMix64 reference
  // vector (Steele-Lea-Flood; same sequence as the Vigna seeding code).
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafull);
  EXPECT_EQ(splitmix64(state), 0x6e789e6aa1b965f4ull);
  EXPECT_EQ(splitmix64(state), 0x06c45d188009454full);
  EXPECT_EQ(splitmix64(state), 0xf88bb8a8724c81ecull);

  state = 42;
  EXPECT_EQ(splitmix64(state), 0xbdd732262feb6e95ull);
  EXPECT_EQ(splitmix64(state), 0x28efe333b266f103ull);
  EXPECT_EQ(splitmix64(state), 0x47526757130f9f52ull);
  EXPECT_EQ(splitmix64(state), 0x581ce1ff0e4ae394ull);
}

TEST(PrngDeterminism, Xoshiro256StarStarKnownAnswers) {
  Xoshiro256 zero(0);
  const std::uint64_t expect_zero[6] = {
      0x99ec5f36cb75f2b4ull, 0xbf6e1f784956452aull, 0x1a5f849d4933e6e0ull,
      0x6aa594f1262d2d2cull, 0xbba5ad4a1f842e59ull, 0xffef8375d9ebcacaull,
  };
  for (const std::uint64_t want : expect_zero) EXPECT_EQ(zero(), want);

  Xoshiro256 other(12345);
  const std::uint64_t expect_other[6] = {
      0xbe6a36374160d49bull, 0x214aaa0637a688c6ull, 0xf69d16de9954d388ull,
      0x0c60048c4e96e033ull, 0x8e2076aeed51c648ull, 0x02bbcc1c1fc50f84ull,
  };
  for (const std::uint64_t want : expect_other) EXPECT_EQ(other(), want);
}

TEST(PrngDeterminism, LemireBelowKnownAnswers) {
  // below() consumes a data-dependent number of raw draws (rejection on
  // the Lemire low word), so pinning the stream pins that control flow too.
  Xoshiro256 rng(7);
  const std::uint64_t small[8] = {7, 2, 8, 9, 9, 8, 0, 1};
  for (const std::uint64_t want : small) EXPECT_EQ(rng.below(10), want);
  const std::uint64_t large[4] = {403706528ull, 151816108ull, 541367602ull,
                                  731858212ull};
  for (const std::uint64_t want : large) {
    EXPECT_EQ(rng.below(1000000007ull), want);
  }
}

TEST(PrngDeterminism, UniformDoublesAreBitExact) {
  // uniform() is (x >> 11) * 2^-53: exactly representable, so comparing
  // the bit patterns (not just values within epsilon) is legitimate.
  Xoshiro256 rng(99);
  const double expect[4] = {0.34870385642514956, 0.56400002473842115,
                            0.37821456048755686, 0.8556280223341497};
  for (const double want : expect) {
    const double got = rng.uniform();
    std::uint64_t got_bits = 0, want_bits = 0;
    std::memcpy(&got_bits, &got, sizeof(got));
    std::memcpy(&want_bits, &want, sizeof(want));
    EXPECT_EQ(got_bits, want_bits);
    EXPECT_GE(got, 0.0);
    EXPECT_LT(got, 1.0);
  }
}

TEST(PrngDeterminism, ExponentialIsReproduciblePerSeed) {
  // exponential() goes through std::log, which libm guarantees only to
  // ~1ulp — so pin reproducibility per process (same seed, same stream)
  // and value agreement to a tight tolerance against the recorded run.
  Xoshiro256 a(5), b(5);
  const double expect[3] = {0.62168397085004345, 0.25368053851245753,
                            0.21574024847961648};
  for (const double want : expect) {
    const double ga = a.exponential(2.0);
    const double gb = b.exponential(2.0);
    EXPECT_EQ(ga, gb);  // identical seeds, identical stream
    EXPECT_NEAR(ga, want, 1e-15);
    EXPECT_GT(ga, 0.0);
  }
}

TEST(PrngDeterminism, IndependentCopiesDoNotShareState) {
  Xoshiro256 a(1);
  Xoshiro256 b = a;  // value semantics: copying must fork the stream
  (void)b();
  (void)b();
  Xoshiro256 fresh(1);
  EXPECT_EQ(a(), fresh());  // b's draws did not advance a
}

}  // namespace
}  // namespace ipg
