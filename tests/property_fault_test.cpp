// Property-based tests of the fault subsystem over random SuperIPSpec
// draws (tests/random_spec.hpp): fault masking must never disturb the
// Theorem 3.2 label<->id bijection, the adaptive router must degenerate to
// the paper's router when nothing is broken, and packets between surviving
// mutually-reachable nodes must keep being delivered under faults.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "net/faulty_topology.hpp"
#include "net/topology.hpp"
#include "random_spec.hpp"
#include "route/super_ip_routing.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "util/prng.hpp"

namespace ipg {
namespace {

using sim::FaultPlan;
using sim::Packet;
using sim::SimNetwork;

/// Reachability over the fault-masked view (BFS with a hash visited set,
/// independent of the simulator's fallback implementation).
bool reachable(const net::Topology& topo, net::NodeId src, net::NodeId dst) {
  if (src == dst) return true;
  std::unordered_set<net::NodeId> seen{src};
  std::vector<net::NodeId> queue{src};
  std::vector<net::TopoArc> arcs;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    topo.neighbors(queue[head], arcs);
    for (const net::TopoArc& a : arcs) {
      if (!seen.insert(a.to).second) continue;
      if (a.to == dst) return true;
      queue.push_back(a.to);
    }
  }
  return false;
}

TEST(PropertyFault, RankUnrankStaysBijectiveUnderFaultyTopology) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Xoshiro256 rng(seed);
    const SuperIPSpec spec = testing::random_super_ip_spec(rng);
    SCOPED_TRACE(spec.name + " seed=" + std::to_string(seed));
    const net::ImplicitSuperIPTopology topo(spec);
    const net::NodeId n = topo.num_nodes();

    FaultPlan plan = FaultPlan::random_node_faults(
        n, static_cast<int>(std::min<net::NodeId>(5, n / 4)), seed);
    const FaultPlan link_plan =
        FaultPlan::random_link_faults(topo, 3, seed ^ 0xabcd);
    for (const sim::FaultWindow& w : link_plan.windows()) {
      plan.fail_link(w.a, w.b);
    }
    const net::FaultSet faults = plan.snapshot(0.0);
    const net::FaultyTopology faulty(topo, faults);
    ASSERT_EQ(faulty.num_nodes(), n);

    std::vector<net::TopoArc> base_arcs, masked_arcs;
    const net::NodeId stride = std::max<net::NodeId>(1, n / 256);
    for (net::NodeId u = 0; u < n; u += stride) {
      // Labels and ids are fault-oblivious: the bijection survives intact.
      const Label x = faulty.label_of(u);
      EXPECT_EQ(faulty.node_of(x), u);
      EXPECT_EQ(topo.node_of(x), u);

      faulty.neighbors(u, masked_arcs);
      if (!faults.node_up(u)) {
        EXPECT_TRUE(masked_arcs.empty()) << "down node " << u << " kept arcs";
        continue;
      }
      topo.neighbors(u, base_arcs);
      // Masked arcs are exactly the base arcs whose target and channel
      // survive — same order, nothing invented.
      std::erase_if(base_arcs, [&](const net::TopoArc& a) {
        return !faults.node_up(a.to) || !faults.link_up(u, a.to);
      });
      EXPECT_EQ(masked_arcs, base_arcs) << "node " << u;
    }
  }
}

TEST(PropertyFault, ZeroFaultAdaptiveRoutingMatchesRouteSuperIP) {
  for (std::uint64_t seed = 20; seed < 26; ++seed) {
    Xoshiro256 rng(seed);
    const SuperIPSpec spec = testing::random_super_ip_spec(rng);
    SCOPED_TRACE(spec.name + " seed=" + std::to_string(seed));
    const net::ImplicitSuperIPTopology topo(spec);
    const SimNetwork net(topo, sim::LinkTiming{1.0, 1.0});
    const FaultPlan empty_plan;

    for (int pair = 0; pair < 25; ++pair) {
      const Node src = static_cast<Node>(rng.below(topo.num_nodes()));
      const Node dst = static_cast<Node>(rng.below(topo.num_nodes()));
      if (src == dst) continue;
      const std::vector<Packet> one{{src, dst, 0.0}};
      const auto r = simulate_with_faults(net, one, empty_plan);
      ASSERT_EQ(r.delivered, 1u);
      EXPECT_EQ(r.dropped, 0u);
      EXPECT_EQ(r.detours, 0u);
      EXPECT_EQ(r.bfs_fallbacks, 0u);
      // The simulator delivers on first arrival at dst, so the hops walked
      // are the paper route truncated at its first pass through dst —
      // never more than the full Theorem 4.1 route, and exactly what the
      // fault-oblivious simulator walks for the same pair.
      const GenPath paper_route =
          route_super_ip(spec, topo.label_of(src), topo.label_of(dst));
      EXPECT_LE(r.actual_hop_sum,
                static_cast<std::uint64_t>(paper_route.length()))
          << src << "->" << dst;
      const auto plain = simulate(net, one);
      EXPECT_EQ(static_cast<double>(r.actual_hop_sum),
                plain.latency.mean_hops())
          << src << "->" << dst;
      EXPECT_EQ(r.planned_hop_sum, r.actual_hop_sum);
    }
  }
}

TEST(PropertyFault, SurvivingReachablePairsAreDelivered) {
  for (std::uint64_t seed = 40; seed < 46; ++seed) {
    Xoshiro256 rng(seed);
    const SuperIPSpec spec = testing::random_super_ip_spec(rng);
    SCOPED_TRACE(spec.name + " seed=" + std::to_string(seed));
    const net::ImplicitSuperIPTopology topo(spec);
    const net::NodeId n = topo.num_nodes();

    // Fewer faults than the minimum degree (the Menger budget).
    std::vector<net::TopoArc> arcs;
    std::size_t min_degree = ~0ull;
    const net::NodeId deg_stride = std::max<net::NodeId>(1, n / 128);
    for (net::NodeId u = 0; u < n; u += deg_stride) {
      topo.neighbors(u, arcs);
      min_degree = std::min(min_degree, arcs.size());
    }
    ASSERT_GE(min_degree, 1u);
    const int f = static_cast<int>(
        std::min<std::size_t>(min_degree - 1, n > 8 ? n / 8 : 1));
    const FaultPlan plan = FaultPlan::random_node_faults(n, f, seed ^ 0x77);
    const net::FaultSet faults = plan.snapshot(0.0);
    const net::FaultyTopology faulty(topo, faults);
    const SimNetwork net(topo, sim::LinkTiming{1.0, 1.0});

    int checked = 0;
    std::uint64_t delivered = 0, expected_deliveries = 0;
    while (checked < 20) {
      const Node src = static_cast<Node>(rng.below(n));
      const Node dst = static_cast<Node>(rng.below(n));
      if (src == dst || !faults.node_up(src) || !faults.node_up(dst)) continue;
      ++checked;
      const bool connected = reachable(faulty, src, dst);
      if (connected) ++expected_deliveries;
      const std::vector<Packet> one{{src, dst, 0.0}};
      const auto r = simulate_with_faults(net, one, plan);
      EXPECT_EQ(r.delivered + r.dropped, 1u);
      EXPECT_EQ(r.delivered, connected ? 1u : 0u)
          << src << "->" << dst << " with " << f << " faults";
      delivered += r.delivered;
    }
    // The experiment must actually exercise deliveries, not just drops.
    EXPECT_GT(expected_deliveries, 0u);
    EXPECT_EQ(delivered, expected_deliveries);
  }
}

TEST(PropertyFault, EmptyPlanIsBitIdenticalToPlainSimulator) {
  for (std::uint64_t seed = 60; seed < 64; ++seed) {
    Xoshiro256 rng(seed);
    const SuperIPSpec spec = testing::random_super_ip_spec(rng);
    SCOPED_TRACE(spec.name + " seed=" + std::to_string(seed));
    const net::ImplicitSuperIPTopology topo(spec);
    const SimNetwork net(topo, sim::LinkTiming{1.0, 3.0});
    const auto packets = sim::uniform_traffic(
        static_cast<Node>(topo.num_nodes()), 3.0, 40.0, seed);
    const auto plain = simulate(net, packets);
    const auto faulty = simulate_with_faults(net, packets, FaultPlan{});
    ASSERT_EQ(faulty.delivered, plain.delivered);
    EXPECT_EQ(faulty.dropped, 0u);
    EXPECT_EQ(faulty.detours, 0u);
    EXPECT_EQ(faulty.bfs_fallbacks, 0u);
    EXPECT_EQ(faulty.latency.mean(), plain.latency.mean());
    EXPECT_EQ(faulty.latency.max(), plain.latency.max());
    EXPECT_EQ(faulty.latency.mean_hops(), plain.latency.mean_hops());
    EXPECT_EQ(faulty.makespan, plain.makespan);
  }
}

}  // namespace
}  // namespace ipg
