// Tests for the broadcast algorithms: coverage, the tree invariant
// (N - 1 messages), the off-module reduction the paper's algorithm story
// relies on, and round lower bounds.
#include <gtest/gtest.h>

#include "algo/broadcast.hpp"
#include "cluster/partitions.hpp"
#include "graph/bfs.hpp"
#include "ipg/families.hpp"
#include "topo/hypercube.hpp"
#include "topo/star.hpp"
#include "topo/torus.hpp"

namespace ipg {
namespace {

using algo::flat_broadcast;
using algo::staged_broadcast;

TEST(Broadcast, FlatCoversAndUsesTreeEdges) {
  const Graph g = topo::hypercube(6);
  const auto r = flat_broadcast(g, 0);
  EXPECT_TRUE(r.covered);
  EXPECT_EQ(r.messages, g.num_nodes() - 1);
  EXPECT_EQ(r.rounds, 6);  // eccentricity of any hypercube node
}

TEST(Broadcast, FlatCountsOffModuleEdges) {
  const Graph g = topo::hypercube(6);
  const Clustering c = cluster_hypercube(6, 3);
  const auto r = flat_broadcast(g, 0, &c);
  EXPECT_TRUE(r.covered);
  // The BFS tree fixes low dimensions first (sorted neighbors), but a
  // majority of tree edges still cross 8-node modules.
  EXPECT_GT(r.off_module_messages, c.num_modules - 1);
}

TEST(Broadcast, StagedCoversWithMinimalOffModuleTraffic) {
  struct Case {
    Graph g;
    Clustering c;
  };
  std::vector<Case> cases;
  {
    const SuperIPSpec s = make_hsn(3, hypercube_nucleus(2));
    const IPGraph g = build_super_ip_graph(s);
    cases.push_back({g.graph, cluster_by_nucleus(g, s.m)});
  }
  {
    const SuperIPSpec s = make_ring_cn(3, hypercube_nucleus(3));
    const IPGraph g = build_super_ip_graph(s);
    cases.push_back({g.graph, cluster_by_nucleus(g, s.m)});
  }
  cases.push_back({topo::hypercube(8), cluster_hypercube(8, 4)});
  cases.push_back({topo::torus2d(8, 8), cluster_torus2d(8, 8, 4, 4)});

  for (const auto& [g, c] : cases) {
    const auto r = staged_broadcast(g, c, 0);
    EXPECT_TRUE(r.covered);
    EXPECT_EQ(r.messages, g.num_nodes() - 1);  // still a spanning tree
    EXPECT_EQ(r.off_module_messages, c.num_modules - 1);  // the minimum
    const auto flat = flat_broadcast(g, 0, &c);
    EXPECT_LE(r.off_module_messages, flat.off_module_messages);
    EXPECT_GE(r.rounds, flat.rounds);  // rounds trade against locality
  }
}

TEST(Broadcast, StagedRoundsBoundedByStructure) {
  // Rounds <= (module-tree depth + 1) * (max intra-module ecc + 1); for
  // HSN(2, Q3) with nucleus modules: I-diameter 1, nucleus diameter 3.
  const SuperIPSpec s = make_hsn(2, hypercube_nucleus(3));
  const IPGraph g = build_super_ip_graph(s);
  const Clustering c = cluster_by_nucleus(g, s.m);
  const auto r = staged_broadcast(g.graph, c, 0);
  EXPECT_TRUE(r.covered);
  EXPECT_LE(r.rounds, 2 * 3 + 1);
  // Lower bound: cannot beat the graph eccentricity of the root.
  const auto sstats = source_stats(bfs_distances(g.graph, 0));
  EXPECT_GE(r.rounds, static_cast<int>(sstats.eccentricity));
}

TEST(Broadcast, SingleModuleDegeneratesToFlatten) {
  const Graph g = topo::star_graph(4);
  Clustering whole;
  whole.num_modules = 1;
  whole.module_of.assign(g.num_nodes(), 0);
  const auto r = staged_broadcast(g, whole, 0);
  EXPECT_TRUE(r.covered);
  EXPECT_EQ(r.off_module_messages, 0u);
  const auto flat = flat_broadcast(g, 0, &whole);
  EXPECT_EQ(r.rounds, flat.rounds);
}

TEST(Reduce, MirrorsStagedBroadcastAccounting) {
  const SuperIPSpec s = make_hsn(3, hypercube_nucleus(2));
  const IPGraph g = build_super_ip_graph(s);
  const Clustering c = cluster_by_nucleus(g, s.m);
  const auto bcast = staged_broadcast(g.graph, c, 5);
  const auto reduce = algo::staged_reduce(g.graph, c, 5);
  EXPECT_TRUE(reduce.covered);
  EXPECT_EQ(reduce.messages, bcast.messages);
  EXPECT_EQ(reduce.off_module_messages, bcast.off_module_messages);
  EXPECT_EQ(reduce.rounds, bcast.rounds);
}

TEST(Broadcast, RootChoiceDoesNotBreakCoverage) {
  const SuperIPSpec s = make_super_flip(3, hypercube_nucleus(2));
  const IPGraph g = build_super_ip_graph(s);
  const Clustering c = cluster_by_nucleus(g, s.m);
  for (Node root = 0; root < g.num_nodes(); root += 7) {
    const auto r = staged_broadcast(g.graph, c, root);
    EXPECT_TRUE(r.covered) << "root " << root;
    EXPECT_EQ(r.off_module_messages, c.num_modules - 1);
  }
}

}  // namespace
}  // namespace ipg
