// Tests for the discrete-event packet simulator: event ordering, queueing
// semantics, latency lower bounds, traffic generation, and determinism.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "cluster/partitions.hpp"
#include "graph/bfs.hpp"
#include "ipg/families.hpp"
#include "net/topology.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "topo/hypercube.hpp"
#include "topo/misc.hpp"

namespace ipg {
namespace {

using sim::Event;
using sim::EventQueue;
using sim::LinkTiming;
using sim::Packet;
using sim::SimNetwork;

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push({3.0, 1, 0});
  q.push({1.0, 2, 0});
  q.push({2.0, 3, 0});
  EXPECT_DOUBLE_EQ(q.pop().time, 1.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 2.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 3.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBrokenByPacketId) {
  EventQueue q;
  q.push({1.0, 7, 0});
  q.push({1.0, 3, 0});
  EXPECT_EQ(q.pop().packet, 3u);
  EXPECT_EQ(q.pop().packet, 7u);
}

TEST(SimNetwork, NextHopsFollowShortestPaths) {
  const Graph g = topo::hypercube(4);
  const SimNetwork net(g, LinkTiming{});
  for (Node dst = 0; dst < g.num_nodes(); ++dst) {
    const auto dist = bfs_distances(g, dst);  // symmetric: d(x, dst)
    for (Node u = 0; u < g.num_nodes(); ++u) {
      if (u == dst) continue;
      const Node hop = net.next_hop(u, dst);
      ASSERT_NE(hop, kUnreachable);
      EXPECT_EQ(dist[u], dist[hop] + 1) << u << "->" << dst;
    }
  }
}

TEST(Simulator, SinglePacketLatencyEqualsDistance) {
  const Graph g = topo::hypercube(5);
  const SimNetwork net(g, LinkTiming{1.0, 1.0});
  const std::vector<Packet> packets{{0, 31, 0.0}};
  const auto r = simulate(net, packets);
  EXPECT_EQ(r.delivered, 1u);
  EXPECT_DOUBLE_EQ(r.latency.mean(), 5.0);  // Hamming distance * unit time
  EXPECT_DOUBLE_EQ(r.latency.mean_hops(), 5.0);
}

TEST(Simulator, SharedLinkSerializes) {
  // Two packets over the single link of a 2-node path: the second waits.
  const Graph g = topo::path(2);
  const SimNetwork net(g, LinkTiming{1.0, 1.0});
  const std::vector<Packet> packets{{0, 1, 0.0}, {0, 1, 0.0}};
  const auto r = simulate(net, packets);
  EXPECT_EQ(r.delivered, 2u);
  EXPECT_DOUBLE_EQ(r.latency.max(), 2.0);
  EXPECT_DOUBLE_EQ(r.latency.mean(), 1.5);
}

TEST(Simulator, LatencyNeverBelowDistanceTimesService) {
  const Graph g = topo::hypercube(6);
  const SimNetwork net(g, LinkTiming{1.0, 1.0});
  const auto packets = sim::uniform_traffic(g.num_nodes(), 3.0, 50.0, 99);
  const auto r = simulate(net, packets);
  EXPECT_EQ(r.delivered, packets.size());
  EXPECT_GE(r.latency.mean(), r.latency.mean_hops());  // waiting only adds
  EXPECT_GT(r.throughput(), 0.0);
}

TEST(Simulator, SlowOffModuleLinksRaiseLatency) {
  const Graph g = topo::hypercube(6);
  const Clustering c = cluster_hypercube(6, 3);
  const SimNetwork uniform(g, LinkTiming{1.0, 1.0}, c);
  const SimNetwork skewed(g, LinkTiming{1.0, 4.0}, c);
  const auto packets = sim::uniform_traffic(g.num_nodes(), 1.0, 100.0, 7);
  const auto ru = simulate(uniform, packets);
  const auto rs = simulate(skewed, packets);
  EXPECT_GT(rs.latency.mean(), ru.latency.mean());
  // Off-module hop counts are a routing property, identical in both runs.
  EXPECT_DOUBLE_EQ(rs.latency.mean_off_module_hops(),
                   ru.latency.mean_off_module_hops());
}

TEST(Simulator, DeterministicForFixedSeed) {
  const Graph g = topo::hypercube(5);
  const SimNetwork net(g, LinkTiming{});
  const auto a = sim::uniform_traffic(g.num_nodes(), 2.0, 30.0, 42);
  const auto b = sim::uniform_traffic(g.num_nodes(), 2.0, 30.0, 42);
  ASSERT_EQ(a.size(), b.size());
  const auto ra = simulate(net, a);
  const auto rb = simulate(net, b);
  EXPECT_DOUBLE_EQ(ra.latency.mean(), rb.latency.mean());
  EXPECT_DOUBLE_EQ(ra.makespan, rb.makespan);
}

TEST(Traffic, UniformAvoidsSelfTraffic) {
  const auto packets = sim::uniform_traffic(16, 5.0, 100.0, 3);
  EXPECT_GT(packets.size(), 300u);  // ~500 expected
  for (const auto& p : packets) {
    EXPECT_NE(p.src, p.dst);
    EXPECT_LT(p.src, 16u);
    EXPECT_LT(p.dst, 16u);
    EXPECT_GE(p.inject_time, 0.0);
    EXPECT_LT(p.inject_time, 100.0);
  }
}

TEST(Traffic, InjectTimesAreSorted) {
  const auto packets = sim::uniform_traffic(8, 2.0, 50.0, 5);
  for (std::size_t i = 1; i < packets.size(); ++i) {
    EXPECT_LE(packets[i - 1].inject_time, packets[i].inject_time);
  }
}

TEST(Traffic, AllToAllCoversEveryOrderedPair) {
  const auto packets = sim::all_to_all_traffic(12);
  EXPECT_EQ(packets.size(), 12u * 11u);
  std::set<std::pair<Node, Node>> pairs;
  for (const auto& p : packets) {
    EXPECT_NE(p.src, p.dst);
    EXPECT_DOUBLE_EQ(p.inject_time, 0.0);
    pairs.emplace(p.src, p.dst);
  }
  EXPECT_EQ(pairs.size(), packets.size());
}

TEST(Simulator, AllToAllMakespanBoundedBelowByLoad) {
  // Total exchange through one bisection-ish link: the path graph funnels
  // everything over its middle link, so makespan >= crossing traffic.
  const Graph g = topo::path(4);
  const SimNetwork net(g, LinkTiming{1.0, 1.0});
  const auto r = simulate(net, sim::all_to_all_traffic(4));
  EXPECT_EQ(r.delivered, 12u);
  EXPECT_GE(r.makespan, 4.0);  // 4 packets cross the middle link each way
}

TEST(Traffic, BurstTargetsOthers) {
  const auto packets = sim::burst_traffic(10, 4, 50, 9);
  ASSERT_EQ(packets.size(), 50u);
  for (const auto& p : packets) {
    EXPECT_EQ(p.src, 4u);
    EXPECT_NE(p.dst, 4u);
    EXPECT_DOUBLE_EQ(p.inject_time, 0.0);
  }
}

TEST(Stats, PercentilesAndMeans) {
  sim::LatencyStats s;
  for (int i = 1; i <= 100; ++i) s.record(i, 1, 0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.99), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 51.0);
  EXPECT_EQ(s.count(), 100u);
}

TEST(Simulator, StoreAndForwardScalesWithMessageLength) {
  // A 5-hop path with L-flit messages: latency = hops * L.
  const Graph g = topo::path(6);
  const SimNetwork net(g, LinkTiming{1.0, 1.0});
  const std::vector<Packet> one{{0, 5, 0.0}};
  for (const int flits : {1, 4, 16}) {
    const auto r = simulate(net, one, {flits, sim::SwitchingMode::kStoreAndForward});
    EXPECT_DOUBLE_EQ(r.latency.mean(), 5.0 * flits);
  }
}

TEST(Simulator, CutThroughPipelinesTheMessage) {
  // Classic cut-through latency: (hops - 1) header times + L flit times.
  const Graph g = topo::path(6);
  const SimNetwork net(g, LinkTiming{1.0, 1.0});
  const std::vector<Packet> one{{0, 5, 0.0}};
  for (const int flits : {1, 4, 16}) {
    const auto r = simulate(net, one, {flits, sim::SwitchingMode::kCutThrough});
    EXPECT_DOUBLE_EQ(r.latency.mean(), 4.0 + flits);
  }
}

TEST(Simulator, CutThroughNeverSlowerThanStoreAndForward) {
  const Graph g = topo::hypercube(6);
  const SimNetwork net(g, LinkTiming{1.0, 2.0}, cluster_hypercube(6, 3));
  const auto packets = sim::uniform_traffic(g.num_nodes(), 5.0, 40.0, 13);
  const auto sf = simulate(net, packets, {8, sim::SwitchingMode::kStoreAndForward});
  const auto ct = simulate(net, packets, {8, sim::SwitchingMode::kCutThrough});
  EXPECT_EQ(sf.delivered, ct.delivered);
  EXPECT_LE(ct.latency.mean(), sf.latency.mean());
}

TEST(Simulator, LongMessagesKeepLinksBusyUnderCutThrough) {
  // Two packets share a link: the second header waits for the first tail.
  const Graph g = topo::path(2);
  const SimNetwork net(g, LinkTiming{1.0, 1.0});
  const std::vector<Packet> packets{{0, 1, 0.0}, {0, 1, 0.0}};
  const auto r = simulate(net, packets, {10, sim::SwitchingMode::kCutThrough});
  EXPECT_DOUBLE_EQ(r.latency.max(), 20.0);
}

TEST(SimNetwork, RejectsOversizedInstances) {
  // 2^13 nodes -> 2^26 table entries: right at the guard.
  EXPECT_THROW(SimNetwork(topo::hypercube(14), LinkTiming{}), std::length_error);
}

TEST(SimNetwork, OversizedErrorPointsToLabelRouting) {
  try {
    const SimNetwork net(topo::hypercube(14), LinkTiming{});
    FAIL() << "expected std::length_error";
  } catch (const std::length_error& e) {
    EXPECT_NE(std::string(e.what()).find("label-routing"), std::string::npos)
        << e.what();
  }
}

TEST(SimNetwork, LabelSourceRoutesReachDestinationWithinBound) {
  // route_gens + hop_via is the label policy's contract: the source route
  // walks generator arcs of the implicit topology, carries the right
  // off-module flag / service time per hop, and ends at dst within the
  // Theorem 4.1 route-length bound.
  const SuperIPSpec spec = make_hsn(2, hypercube_nucleus(2));
  const net::ImplicitSuperIPTopology topo(spec);
  const SimNetwork net(topo, LinkTiming{1.0, 4.0});
  EXPECT_EQ(net.policy(), sim::RoutingPolicy::kLabelRoute);
  ASSERT_EQ(net.num_nodes(), topo.num_nodes());
  EXPECT_EQ(net.num_links(),
            topo.num_nodes() * static_cast<std::uint64_t>(topo.num_generators()));
  const int bound = route_length_bound(spec, /*nucleus_diameter=*/2, false);
  for (Node u = 0; u < net.num_nodes(); ++u) {
    for (Node dst = 0; dst < net.num_nodes(); ++dst) {
      const std::vector<int> gens = net.route_gens(u, dst);
      if (u == dst) {
        EXPECT_TRUE(gens.empty());
      }
      ASSERT_LE(static_cast<int>(gens.size()), bound) << u << "->" << dst;
      Node cur = u;
      for (const int gen : gens) {
        const SimNetwork::Hop h = net.hop_via(cur, gen);
        ASSERT_LT(h.to, net.num_nodes());
        ASSERT_NE(h.to, cur);
        EXPECT_EQ(h.to, topo.neighbor_via(cur, gen));
        EXPECT_EQ(h.off_module, topo.gen_is_super(gen));
        EXPECT_DOUBLE_EQ(h.service_time, h.off_module ? 4.0 : 1.0);
        cur = h.to;
      }
      ASSERT_EQ(cur, dst) << u << "->" << dst;
    }
  }
}

TEST(Simulator, LabelPolicyDeliversSameTrafficAsTables) {
  // Same instance, both policies: everything is delivered under both, and
  // label routes (Theorem 4.1 sorting routes) are never shorter than the
  // table policy's BFS-shortest paths.
  const SuperIPSpec spec = make_hsn(2, hypercube_nucleus(2));
  const IPGraph g = build_super_ip_graph(spec);
  const net::ImplicitSuperIPTopology topo(spec);
  // Remap table-policy traffic through the label bijection so both runs
  // move the same logical packets.
  const auto packets = sim::uniform_traffic(g.num_nodes(), 2.0, 60.0, 21);
  std::vector<Packet> ranked = packets;
  for (auto& p : ranked) {
    p.src = static_cast<Node>(topo.node_of(g.labels()[p.src]));
    p.dst = static_cast<Node>(topo.node_of(g.labels()[p.dst]));
  }
  const auto rt = simulate(SimNetwork(g.graph, LinkTiming{}), packets);
  const auto rl = simulate(SimNetwork(topo, LinkTiming{}), ranked);
  EXPECT_EQ(rt.delivered, packets.size());
  EXPECT_EQ(rl.delivered, packets.size());
  EXPECT_GE(rl.latency.mean_hops(), rt.latency.mean_hops());
}

TEST(SimNetwork, LabelPolicyRejectsInstancesBeyondNodeIdSpace) {
  // HSN(8, Q4) has 16^8 = 2^32 nodes — one past the 32-bit packet space.
  const net::ImplicitSuperIPTopology topo(make_hsn(8, hypercube_nucleus(4)));
  EXPECT_THROW(SimNetwork(topo, LinkTiming{}), std::length_error);
}

}  // namespace
}  // namespace ipg
