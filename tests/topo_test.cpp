// Tests for the explicit comparator topologies: sizes, degrees, diameters
// against the closed forms, plus structural spot checks.
#include <gtest/gtest.h>

#include "analysis/formulas.hpp"
#include "ipg/families.hpp"
#include "graph/connectivity.hpp"
#include "graph/metrics.hpp"
#include "graph/symmetry.hpp"
#include "topo/ccc.hpp"
#include "topo/de_bruijn.hpp"
#include "topo/hypercube.hpp"
#include "topo/misc.hpp"
#include "topo/pancake.hpp"
#include "topo/perm_rank.hpp"
#include "topo/shuffle.hpp"
#include "topo/star.hpp"
#include "topo/torus.hpp"

namespace ipg {
namespace {

TEST(Topo, HypercubeProfiles) {
  for (int n = 1; n <= 8; ++n) {
    const auto p = profile(topo::hypercube(n));
    const auto f = hypercube_nums(n);
    EXPECT_EQ(p.nodes, f.nodes);
    EXPECT_EQ(p.degree, f.degree);
    EXPECT_EQ(p.diameter, f.diameter);
    EXPECT_TRUE(p.connected);
  }
}

TEST(Topo, HypercubeAverageDistanceIsHalfDimensionScaled) {
  // E[Hamming distance] over ordered pairs = n/2 * N/(N-1).
  const int n = 6;
  const auto p = profile(topo::hypercube(n));
  EXPECT_NEAR(p.average_distance, (n / 2.0) * 64.0 / 63.0, 1e-9);
}

TEST(Topo, FoldedHypercubeProfiles) {
  for (int n = 2; n <= 8; ++n) {
    const auto p = profile(topo::folded_hypercube(n));
    const auto f = folded_hypercube_nums(n);
    EXPECT_EQ(p.nodes, f.nodes);
    EXPECT_EQ(p.degree, f.degree) << n;
    EXPECT_EQ(p.diameter, f.diameter) << n;
  }
}

TEST(Topo, GeneralizedHypercubeProfile) {
  const std::vector<int> radices{4, 3, 2};
  const auto p = profile(topo::generalized_hypercube(radices));
  const auto f = generalized_hypercube_nums(radices);
  EXPECT_EQ(p.nodes, f.nodes);       // 24
  EXPECT_EQ(p.degree, f.degree);     // 3+2+1 = 6
  EXPECT_EQ(p.diameter, f.diameter); // 3
  EXPECT_TRUE(looks_vertex_transitive(topo::generalized_hypercube(radices)));
}

TEST(Topo, KaryNcubeProfiles) {
  const auto p = profile(topo::kary_ncube(4, 3));
  const auto f = kary_ncube_nums(4, 3);
  EXPECT_EQ(p.nodes, f.nodes);
  EXPECT_EQ(p.degree, f.degree);
  EXPECT_EQ(p.diameter, f.diameter);
  // k = 2 degenerates to the hypercube.
  const auto q = profile(topo::kary_ncube(2, 5));
  EXPECT_EQ(q.degree, 5u);
  EXPECT_EQ(q.diameter, 5u);
}

TEST(Topo, Torus2dProfile) {
  const auto p = profile(topo::torus2d(6, 8));
  const auto f = torus2d_nums(6, 8);
  EXPECT_EQ(p.nodes, f.nodes);
  EXPECT_EQ(p.degree, f.degree);
  EXPECT_EQ(p.diameter, f.diameter);  // 3 + 4
}

TEST(Topo, Mesh2dIsNotRegularButConnected) {
  const auto g = topo::mesh2d(3, 5);
  EXPECT_TRUE(is_connected_from(g));
  const auto s = degree_stats(g);
  EXPECT_EQ(s.min_degree, 2u);
  EXPECT_EQ(s.max_degree, 4u);
}

TEST(Topo, StarGraphProfiles) {
  for (int n = 3; n <= 7; ++n) {
    const auto p = profile(topo::star_graph(n));
    const auto f = star_nums(n);
    EXPECT_EQ(p.nodes, f.nodes);
    EXPECT_EQ(p.degree, f.degree);
    EXPECT_EQ(p.diameter, f.diameter) << "n=" << n;
  }
  EXPECT_TRUE(looks_vertex_transitive(topo::star_graph(5)));
}

TEST(Topo, PancakeGraphKnownDiameters) {
  // Pancake diameters: 1, 3, 4, 5, 7 for n = 2..6 (known values).
  const int expected[] = {1, 3, 4, 5, 7};
  for (int n = 2; n <= 6; ++n) {
    const auto p = profile(topo::pancake_graph(n));
    EXPECT_EQ(p.nodes, topo::kFactorials[n]);
    EXPECT_EQ(p.degree, static_cast<Node>(n - 1));
    EXPECT_EQ(p.diameter, static_cast<Dist>(expected[n - 2])) << "n=" << n;
  }
}

TEST(Topo, BubbleSortGraphProfile) {
  // Bubble-sort (adjacent transposition) Cayley graph: n! nodes, degree
  // n-1, diameter = max inversions = n(n-1)/2, vertex-transitive.
  for (int n = 3; n <= 6; ++n) {
    const IPGraph g = build_ip_graph(bubble_sort_nucleus(n));
    const auto p = profile(g.graph);
    EXPECT_EQ(p.nodes, topo::kFactorials[n]) << n;
    EXPECT_EQ(p.degree, static_cast<Node>(n - 1)) << n;
    EXPECT_EQ(p.diameter, static_cast<Dist>(n * (n - 1) / 2)) << n;
  }
  EXPECT_TRUE(looks_vertex_transitive(
      build_ip_graph(bubble_sort_nucleus(4)).graph));
}

TEST(Topo, CccProfiles) {
  for (int n = 3; n <= 6; ++n) {
    const auto p = profile(topo::cube_connected_cycles(n));
    const auto f = ccc_nums(n);
    EXPECT_EQ(p.nodes, f.nodes);
    EXPECT_EQ(p.degree, f.degree);
    EXPECT_EQ(p.diameter, f.diameter) << "n=" << n;
  }
}

TEST(Topo, ShuffleExchangeConnectedDegreeAtMost3) {
  for (int n = 2; n <= 8; ++n) {
    const auto g = topo::shuffle_exchange(n);
    EXPECT_TRUE(is_connected_from(g));
    EXPECT_LE(degree_stats(g).max_degree, 3u);
  }
}

TEST(Topo, DeBruijnDirectedProfile) {
  for (int n = 2; n <= 8; ++n) {
    const auto g = topo::de_bruijn_directed(2, n);
    EXPECT_EQ(g.num_nodes(), Node{1} << n);
    EXPECT_TRUE(is_strongly_connected(g));
    // Every node has 2 successors except the two with self-loops removed.
    EXPECT_EQ(g.num_arcs(), (std::uint64_t{2} << n) - 2);
    const auto p = profile(g);
    EXPECT_EQ(p.diameter, static_cast<Dist>(n));
  }
}

TEST(Topo, DeBruijnUndirectedMatchesFormula) {
  const auto p = profile(topo::de_bruijn_undirected(2, 6));
  const auto f = de_bruijn_nums(6);
  EXPECT_EQ(p.nodes, f.nodes);
  EXPECT_EQ(p.degree, f.degree);
  EXPECT_EQ(p.diameter, f.diameter);
}

TEST(Topo, PetersenIsTheMooreGraph) {
  const auto g = topo::petersen();
  const auto p = profile(g);
  EXPECT_EQ(p.nodes, 10u);
  EXPECT_EQ(p.links, 15u);
  EXPECT_EQ(p.degree, 3u);
  EXPECT_EQ(p.diameter, 2u);
  EXPECT_TRUE(looks_vertex_transitive(g));
  // Girth 5: no node pair shares two common neighbors.
  for (Node u = 0; u < 10; ++u) {
    for (Node v = u + 1; v < 10; ++v) {
      int common = 0;
      for (const Node w : g.neighbors(u)) common += g.has_arc(v, w);
      EXPECT_LE(common, 1) << u << "," << v;
    }
  }
}

TEST(Topo, CompleteCyclePathBasics) {
  EXPECT_EQ(profile(topo::complete(6)).diameter, 1u);
  EXPECT_EQ(profile(topo::cycle(9)).diameter, 4u);
  EXPECT_EQ(profile(topo::path(9)).diameter, 8u);
}

TEST(Topo, PermRankRoundTrip) {
  for (int n = 1; n <= 7; ++n) {
    for (std::uint64_t r = 0; r < topo::kFactorials[n];
         r += std::max<std::uint64_t>(1, topo::kFactorials[n] / 97)) {
      EXPECT_EQ(topo::perm_rank(topo::perm_unrank(r, n)), r);
    }
  }
}

}  // namespace
}  // namespace ipg
