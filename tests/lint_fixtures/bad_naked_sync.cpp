// Fixture: std sync primitives outside util/sync.hpp must fire naked-sync
// once per offending line (6, 7, and 11).
#include <condition_variable>
#include <mutex>

std::mutex fixture_mu;
std::condition_variable fixture_cv;

int locked_read(int value) {
  // Two offending tokens on one line still produce a single diagnostic.
  std::lock_guard<std::mutex> lock(fixture_mu);
  return value;
}
