// Fixture: iterating an unordered container with no sorted drain and no
// allow annotation must fire unordered-iteration.
#include <unordered_map>

int sum_values(const std::unordered_map<int, int>& counts_) {
  int total = 0;
  for (const auto& [key, value] : counts_) {  // line 8: unordered-iteration
    total += value;
  }
  return total;
}
