// Fixture: raw allocation outside an arena/scratch type must fire
// naked-new (three times).
#include <cstdlib>

int* allocate() {
  int* a = new int[8];       // line 6: naked-new
  void* b = malloc(64);      // line 7: naked-new
  free(b);                   // line 8: naked-new
  return a;
}
