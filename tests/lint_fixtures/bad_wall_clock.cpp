// Fixture: a wall-clock read outside bench/ and src/util/ must fire
// wall-clock.
#include <chrono>

double now_seconds() {
  const auto t = std::chrono::system_clock::now();  // line 6: wall-clock
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
