// Fixture: read_sample drops the writer's last field, so framing-symmetry
// fires at the reader's definition (line 17).
#include "shard/channel.hpp"

struct Sample {
  int a = 0;
  int b = 0;
  int c = 0;
};

void write_sample(ipg::shard::ByteWriter w, const Sample& s) {
  w.write(s.a);
  w.write(s.b);
  w.write(s.c);
}

void read_sample(ipg::shard::ByteReader& r, Sample& s) {
  s.a = r.read<int>();
  s.b = r.read<int>();
}
