// Fixture: unseeded randomness must fire banned-random (twice).
#include <cstdlib>
#include <random>

int unseeded() {
  std::random_device rd;  // line 6: banned-random
  return static_cast<int>(rd()) + std::rand();  // line 7: banned-random
}
