// Fixture: memory_order_relaxed without an adjacent justification fires
// relaxed-order (line 8); the annotated load below is suppressed.
#include <atomic>

std::atomic<int> fixture_counter{0};

int unjustified_bump() {
  return fixture_counter.fetch_add(1, std::memory_order_relaxed);
}

int justified_read() {
  // Monotonic stat, no ordering rides on it. ipg-lint: allow(relaxed-order)
  return fixture_counter.load(std::memory_order_relaxed);
}
