#pragma once
// Fixture: a using-namespace directive in a header must fire
// using-namespace.
#include <vector>

using namespace std;  // line 6: using-namespace

inline vector<int> fixture_vector() { return {1, 2, 3}; }
