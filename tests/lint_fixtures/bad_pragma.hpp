// Fixture: an include-guard header (no #pragma once) must fire pragma-once.
#ifndef IPG_TESTS_LINT_FIXTURES_BAD_PRAGMA_HPP_
#define IPG_TESTS_LINT_FIXTURES_BAD_PRAGMA_HPP_

inline int fixture_value() { return 42; }

#endif  // IPG_TESTS_LINT_FIXTURES_BAD_PRAGMA_HPP_
