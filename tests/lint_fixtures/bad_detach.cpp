// Fixture: a detached thread must fire detached-thread (line 6).
#include <thread>

void fire_and_forget(int* counter) {
  std::thread worker([counter] { ++*counter; });
  worker.detach();
}
