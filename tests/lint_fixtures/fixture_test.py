#!/usr/bin/env python3
"""Self-test for tools/ipg_lint.py: runs the linter on each fixture and
asserts that every rule fires exactly at the expected (file, line) sites —
and nowhere else. Registered as the `ipg_lint_fixtures` ctest.

Usage: python3 fixture_test.py [--lint PATH] [--root DIR]
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent

# fixture file -> list of (line, rule) expected diagnostics.
EXPECTED = {
    "bad_random.cpp": [(6, "banned-random"), (7, "banned-random")],
    "bad_unordered.cpp": [(7, "unordered-iteration")],
    "bad_wall_clock.cpp": [(6, "wall-clock")],
    "bad_naked_new.cpp": [(6, "naked-new"), (7, "naked-new"),
                          (8, "naked-new")],
    "bad_pragma.hpp": [(2, "pragma-once")],
    "bad_using_namespace.hpp": [(6, "using-namespace")],
    "bad_naked_sync.cpp": [(6, "naked-sync"), (7, "naked-sync"),
                           (11, "naked-sync")],
    "bad_manual_lock.cpp": [(7, "manual-lock"), (9, "manual-lock")],
    "bad_detach.cpp": [(6, "detached-thread")],
    "bad_relaxed.cpp": [(8, "relaxed-order")],
    "bad_framing.cpp": [(17, "framing-symmetry")],
    "framing_ok.cpp": [],
    "sorted_drain.cpp": [],
    "allowed.cpp": [],
}

DIAG_RE = re.compile(r"^(.*):(\d+): \[([a-z-]+)\]")


def run_lint(lint: Path, root: Path, fixture: Path) -> list[tuple[int, str]]:
    proc = subprocess.run(
        [sys.executable, str(lint), "--root", str(root), str(fixture)],
        capture_output=True, text=True, check=False)
    diags = []
    for line in proc.stdout.splitlines():
        m = DIAG_RE.match(line)
        if m:
            diags.append((int(m.group(2)), m.group(3)))
    expected_exit = 1 if diags else 0
    if proc.returncode != expected_exit:
        raise SystemExit(
            f"{fixture.name}: exit code {proc.returncode}, expected "
            f"{expected_exit}\nstdout:\n{proc.stdout}\nstderr:\n{proc.stderr}")
    return sorted(diags)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--lint", default=str(HERE.parent.parent / "tools" /
                                              "ipg_lint.py"))
    parser.add_argument("--root", default=str(HERE.parent.parent))
    args = parser.parse_args()

    lint = Path(args.lint)
    root = Path(args.root)
    failures = 0
    for name, expected in sorted(EXPECTED.items()):
        fixture = HERE / name
        if not fixture.is_file():
            print(f"FAIL {name}: fixture missing")
            failures += 1
            continue
        got = run_lint(lint, root, fixture)
        if got != sorted(expected):
            print(f"FAIL {name}: expected {sorted(expected)}, got {got}")
            failures += 1
        else:
            print(f"ok   {name}: {len(got)} diagnostic(s) as expected")

    # The fixtures must stay invisible to a directory scan, or the CI
    # full-tree lint would trip over its own test inputs.
    proc = subprocess.run(
        [sys.executable, str(lint), "--root", str(root), str(HERE.parent)],
        capture_output=True, text=True, check=False)
    if "lint_fixtures" in proc.stdout:
        print("FAIL directory scan descends into lint_fixtures/")
        failures += 1
    else:
        print("ok   directory scan skips lint_fixtures/")

    if failures:
        print(f"{failures} fixture check(s) failed", file=sys.stderr)
        return 1
    print("all fixture checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
