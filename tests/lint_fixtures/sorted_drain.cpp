// Fixture: draining an unordered container into a vector that is sorted
// immediately afterwards is the approved idiom — no diagnostic.
#include <algorithm>
#include <unordered_set>
#include <vector>

std::vector<int> sorted_members(const std::unordered_set<int>& members_) {
  std::vector<int> out;
  for (const int m : members_) {  // sorted drain: std::sort follows
    out.push_back(m);
  }
  std::sort(out.begin(), out.end());
  return out;
}
