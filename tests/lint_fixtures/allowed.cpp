// Fixture: every offending construct below carries an allow annotation, so
// the file must produce zero diagnostics.
#include <chrono>
#include <cstdlib>
#include <unordered_map>

// ipg-lint: allow-file(naked-new)

int annotated_sum(const std::unordered_map<int, int>& weights_) {
  int total = 0;
  // Order-independent reduction. ipg-lint: allow(unordered-iteration)
  for (const auto& [key, value] : weights_) {
    total += value;
  }
  return total;
}

double annotated_clock() {
  // Diagnostic-only timestamp. ipg-lint: allow(wall-clock)
  const auto t = std::chrono::system_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

int annotated_random() {
  return std::rand();  // ipg-lint: allow(banned-random)
}

int* annotated_new() {
  return new int[4];  // covered by the allow-file above
}
