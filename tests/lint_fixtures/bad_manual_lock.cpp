// Fixture: manual .lock()/.unlock() outside util/sync.hpp must fire
// manual-lock (lines 7 and 9); RAII guards are the only sanctioned form.
#include "util/sync.hpp"

int manual_critical_section(ipg::Mutex& mu, int value) {
  // A throw between these two calls would leak the capability.
  mu.lock();
  const int copy = value;
  mu.unlock();
  return copy;
}
