// Fixture: a mirrored write/read pair (including the span ops) must stay
// silent under framing-symmetry.
#include <span>

#include "shard/channel.hpp"

struct Block {
  unsigned len = 0;
  int vals[4] = {0, 0, 0, 0};
};

void write_block(ipg::shard::ByteWriter w, const Block& b) {
  w.write(b.len);
  w.write_span(std::span<const int>(b.vals, b.len));
}

void read_block(ipg::shard::ByteReader& r, Block& b) {
  b.len = r.read<unsigned>();
  r.read_into(b.vals, b.len);
}
