// The paper's unification claim (Sections 1-2): classical networks
// "belong to the class of super-IP graphs or symmetric super-IP graphs".
// These tests realize the strongest instances:
//   * shuffle-exchange SE(n)  ==  ring-CN(n, Q1)        (plain super-IP)
//   * cube-connected cycles CCC(n) == symmetric ring-CN(n, Q1)
// The first is checked by exact arc-set comparison through the pair-bit
// decoder; the second by the full battery of isomorphism invariants the
// library computes (order, degree sequence, diameter, distance histogram,
// vertex-transitivity).
#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "graph/metrics.hpp"
#include "graph/symmetry.hpp"
#include "ipg/families.hpp"
#include "ipg/schedule.hpp"
#include "ipg/symmetric.hpp"
#include "topo/ccc.hpp"
#include "topo/hypercube.hpp"
#include "topo/ip_forms.hpp"
#include "topo/shuffle.hpp"

namespace ipg {
namespace {

TEST(IpEquivalence, ShuffleExchangeIsRingCnOverQ1) {
  // ring-CN(l, Q1): l one-bit super-symbols, nucleus generator flips the
  // front bit (exchange), L/R rotate the bit string (shuffle/unshuffle).
  for (int l = 3; l <= 9; ++l) {
    const SuperIPSpec spec = make_ring_cn(l, hypercube_nucleus(1));
    const IPGraph cn = build_super_ip_graph(spec);
    const Graph se = topo::shuffle_exchange(l);
    ASSERT_EQ(cn.num_nodes(), se.num_nodes()) << "l=" << l;

    // Pair-decode: bit i of the address is super-symbol i's orientation.
    // SE's exchange flips the LAST bit while the CN nucleus flips the
    // FRONT one; reading the label msb-first aligns the two conventions
    // up to string reversal, which the shuffle generators absorb.
    std::uint64_t arcs = 0;
    for (Node u = 0; u < cn.num_nodes(); ++u) {
      const Node bu = topo::decode_pair_bits(cn.labels()[u], /*msb_first=*/false);
      for (const Node v : cn.graph.neighbors(u)) {
        const Node bv = topo::decode_pair_bits(cn.labels()[v], false);
        EXPECT_TRUE(se.has_arc(bu, bv)) << "l=" << l << " " << bu << "->" << bv;
        ++arcs;
      }
    }
    EXPECT_EQ(arcs, se.num_arcs()) << "l=" << l;
  }
}

TEST(IpEquivalence, CccIsSymmetricRingCnOverQ1) {
  // CCC(n) = Cayley graph of Z_2^n x| Z_n: exactly the symmetric variant
  // of ring-CN(n, Q1) (l = n one-bit blocks with distinct symbols, so the
  // cyclic block arrangement becomes the cycle position).
  for (int n = 3; n <= 6; ++n) {
    const SuperIPSpec base = make_ring_cn(n, hypercube_nucleus(1));
    const IPGraph sym = build_super_ip_graph(make_symmetric(base));
    const Graph ccc = topo::cube_connected_cycles(n);

    ASSERT_EQ(sym.num_nodes(), ccc.num_nodes()) << "n=" << n;
    const auto ps = profile(sym.graph);
    const auto pc = profile(ccc);
    EXPECT_EQ(ps.links, pc.links) << "n=" << n;
    EXPECT_EQ(ps.degree, pc.degree) << "n=" << n;
    EXPECT_EQ(ps.diameter, pc.diameter) << "n=" << n;
    EXPECT_NEAR(ps.average_distance, pc.average_distance, 1e-9) << "n=" << n;
    // Full distance histograms coincide (a strong isomorphism invariant
    // for vertex-transitive graphs).
    EXPECT_EQ(all_pairs_distance_summary(sym.graph).histogram,
              all_pairs_distance_summary(ccc).histogram)
        << "n=" << n;
    EXPECT_TRUE(looks_vertex_transitive(sym.graph));
    EXPECT_TRUE(looks_vertex_transitive(ccc));
  }
}

TEST(IpEquivalence, CccDiameterMatchesTheorem43) {
  // Theorem 4.3 applied to CCC: diameter = l * D_G + t_S with D_G = 1.
  for (int n = 3; n <= 6; ++n) {
    const SuperIPSpec base = make_ring_cn(n, hypercube_nucleus(1));
    const int t_s = compute_t_symmetric(base);
    ASSERT_GT(t_s, 0);
    EXPECT_EQ(profile(topo::cube_connected_cycles(n)).diameter,
              static_cast<Dist>(n + t_s))
        << "n=" << n;
  }
}

TEST(IpEquivalence, DirectedDeBruijnGeneratorsAreShiftLike) {
  // Section 2 builds the de Bruijn graph from two pair-shift generators —
  // structurally the directed cyclic-shift idea with an orientation twist.
  const IPGraphSpec db = topo::de_bruijn_ip_spec(5);
  ASSERT_EQ(db.generators.size(), 2u);
  // Both generators move whole 2-symbol blocks one position left.
  const Permutation pure_shift = Permutation::rotate_left(10, 2);
  EXPECT_EQ(db.generators[0].perm, pure_shift);
  EXPECT_EQ(db.generators[1].perm,
            pure_shift.then(Permutation::transposition(10, 8, 9)));
}

}  // namespace
}  // namespace ipg
