// Tests for symmetric super-IP graphs (Section 3.5): node counts,
// vertex-symmetry, regularity, and the Theorem 4.3 diameter.
#include <gtest/gtest.h>

#include "graph/metrics.hpp"
#include "graph/symmetry.hpp"
#include "ipg/families.hpp"
#include "ipg/schedule.hpp"
#include "ipg/symmetric.hpp"
#include "topo/hypercube.hpp"

namespace ipg {
namespace {

std::uint64_t ipow(std::uint64_t b, int e) {
  std::uint64_t v = 1;
  for (int i = 0; i < e; ++i) v *= b;
  return v;
}

struct SymCase {
  std::string kind;
  int l;
  int nucleus_n;
};

SuperIPSpec base_spec(const SymCase& c) {
  const IPGraphSpec nucleus = hypercube_nucleus(c.nucleus_n);
  if (c.kind == "hsn") return make_hsn(c.l, nucleus);
  if (c.kind == "ring") return make_ring_cn(c.l, nucleus);
  if (c.kind == "flip") return make_super_flip(c.l, nucleus);
  return make_complete_cn(c.l, nucleus);
}

class SymmetricVariants : public ::testing::TestWithParam<SymCase> {};

TEST_P(SymmetricVariants, SizeIsArrangementsTimesMToTheL) {
  // Section 3.5: symmetric HSN has l! * M^l nodes, symmetric CN l * M^l.
  const SuperIPSpec base = base_spec(GetParam());
  const std::uint64_t m_nodes = ipow(2, GetParam().nucleus_n);
  const IPGraph sym = build_super_ip_graph(make_symmetric(base));
  EXPECT_EQ(sym.num_nodes(), symmetric_size(base, m_nodes));
  EXPECT_EQ(sym.num_nodes(),
            num_reachable_arrangements(base) * ipow(m_nodes, base.l));
}

TEST_P(SymmetricVariants, VertexSymmetricAndRegular) {
  // Symmetric super-IP graphs are Cayley graphs: vertex-symmetric, regular.
  const IPGraph sym = build_super_ip_graph(make_symmetric(base_spec(GetParam())));
  EXPECT_TRUE(is_regular(sym.graph));
  EXPECT_TRUE(looks_vertex_transitive(sym.graph));
}

TEST_P(SymmetricVariants, DiameterMatchesTheorem43) {
  // diameter = l * D_G + t_S.
  const auto& p = GetParam();
  const SuperIPSpec base = base_spec(p);
  const IPGraph sym = build_super_ip_graph(make_symmetric(base));
  EXPECT_EQ(profile(sym.graph).diameter,
            static_cast<Dist>(p.l * p.nucleus_n + compute_t_symmetric(base)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SymmetricVariants,
    ::testing::Values(SymCase{"hsn", 2, 2}, SymCase{"hsn", 3, 2},
                      SymCase{"hsn", 2, 3}, SymCase{"ring", 3, 2},
                      SymCase{"ring", 4, 2}, SymCase{"flip", 3, 2},
                      SymCase{"complete", 3, 2}),
    [](const auto& tpi) {
      return tpi.param.kind + "_l" + std::to_string(tpi.param.l) + "_Q" +
             std::to_string(tpi.param.nucleus_n);
    });

TEST(Symmetric, PlainVariantsAreNotVertexTransitive) {
  // The contrast motivating Section 3.5: plain HSN/CN fail the distance-
  // profile test that their symmetric variants pass.
  const IPGraph hsn = build_super_ip_graph(make_hsn(3, hypercube_nucleus(2)));
  EXPECT_FALSE(looks_vertex_transitive(hsn.graph));
  const IPGraph cn = build_super_ip_graph(make_ring_cn(3, hypercube_nucleus(2)));
  EXPECT_FALSE(looks_vertex_transitive(cn.graph));
}

TEST(Symmetric, SeedBlocksGetDisjointSymbolRanges) {
  const SuperIPSpec sym = make_symmetric(make_hsn(3, hypercube_nucleus(2)));
  // Block i holds symbols (i*m, (i+1)*m].
  for (int i = 0; i < 3; ++i) {
    const Label block = sym.seed_block(i);
    for (const auto s : block) {
      EXPECT_GT(s, i * sym.m);
      EXPECT_LE(s, (i + 1) * sym.m);
    }
  }
}

TEST(Symmetric, RejectsNonIdenticalBlocks) {
  SuperIPSpec s = make_hsn(2, hypercube_nucleus(2));
  s.seed[0] = 4;
  s.seed[1] = 3;
  s.seed[2] = 2;
  s.seed[3] = 1;
  EXPECT_THROW(make_symmetric(s), std::invalid_argument);
}

TEST(Symmetric, RejectsSymbolOverflow) {
  // l * m > 255 would overflow byte symbols.
  SuperIPSpec s = make_hsn(8, hypercube_nucleus(8));  // m = 16, l = 8: ok
  EXPECT_NO_THROW(make_symmetric(s));
  // Manufacture an overflow: l = 8, m = 32 -> 256 > 255.
  SuperIPSpec big = make_hsn(8, hypercube_nucleus(16));
  EXPECT_THROW(make_symmetric(big), std::invalid_argument);
}

TEST(Symmetric, SharesGeneratorSetWithBase) {
  const SuperIPSpec base = make_hsn(3, hypercube_nucleus(2));
  const SuperIPSpec sym = make_symmetric(base);
  ASSERT_EQ(sym.nucleus_gens.size(), base.nucleus_gens.size());
  ASSERT_EQ(sym.super_gens.size(), base.super_gens.size());
  for (std::size_t i = 0; i < base.super_gens.size(); ++i) {
    EXPECT_EQ(sym.super_gens[i].perm, base.super_gens[i].perm);
  }
}

}  // namespace
}  // namespace ipg
