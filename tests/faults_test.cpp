// Unit tests for the fault-injection subsystem: FaultSet/FaultyTopology
// masking, FaultPlan determinism and timeline replay, the adaptive
// fault-tolerant simulator under both routing policies (including the
// degree-1 survival guarantee and transient fail/repair windows), and the
// empirical-vs-theoretical connectivity experiment.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/fault_tolerance.hpp"
#include "connectivity_helpers.hpp"
#include "ipg/families.hpp"
#include "net/faulty_topology.hpp"
#include "net/topology.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "topo/hypercube.hpp"
#include "topo/misc.hpp"

namespace ipg {
namespace {

using sim::AdaptiveOptions;
using sim::FaultPlan;
using sim::FaultState;
using sim::LinkTiming;
using sim::Packet;
using sim::SimNetwork;

TEST(FaultSet, NodeAndLinkMaskingWithCounts) {
  net::FaultSet s;
  EXPECT_TRUE(s.empty());
  s.fail_node(3);
  s.fail_node(3);  // overlapping windows: both must end before repair
  EXPECT_FALSE(s.node_up(3));
  s.repair_node(3);
  EXPECT_FALSE(s.node_up(3));
  s.repair_node(3);
  EXPECT_TRUE(s.node_up(3));

  s.fail_link(1, 2);
  EXPECT_FALSE(s.link_up(1, 2));
  EXPECT_FALSE(s.link_up(2, 1));  // undirected channel
  EXPECT_TRUE(s.link_up(1, 3));
  EXPECT_FALSE(s.arc_up(1, 2));
  EXPECT_TRUE(s.arc_up(1, 3));
  s.repair_link(2, 1);
  EXPECT_TRUE(s.link_up(1, 2));
  EXPECT_TRUE(s.empty());
}

TEST(FaultyTopology, MasksFailedNodesAndLinks) {
  const SuperIPSpec spec = make_hsn(2, hypercube_nucleus(2));
  const net::ImplicitSuperIPTopology topo(spec);
  net::FaultSet faults;
  faults.fail_node(5);
  const net::FaultyTopology faulty(topo, faults);

  std::vector<net::TopoArc> arcs;
  faulty.neighbors(5, arcs);
  EXPECT_TRUE(arcs.empty());
  for (net::NodeId u = 0; u < faulty.num_nodes(); ++u) {
    faulty.neighbors(u, arcs);
    for (const net::TopoArc& a : arcs) EXPECT_NE(a.to, 5u);
    // Ids and labels are untouched by the mask.
    EXPECT_EQ(faulty.node_of(faulty.label_of(u)), u);
  }

  topo.neighbors(0, arcs);
  ASSERT_FALSE(arcs.empty());
  const net::NodeId v = arcs[0].to;
  faults.fail_link(0, v);
  faulty.neighbors(0, arcs);  // the FaultSet reference sees the update
  for (const net::TopoArc& a : arcs) EXPECT_NE(a.to, v);
}

TEST(FaultPlan, SeededConstructorsAreDeterministic) {
  const auto a = FaultPlan::random_node_faults(1000, 17, 42);
  const auto b = FaultPlan::random_node_faults(1000, 17, 42);
  ASSERT_EQ(a.size(), 17u);
  ASSERT_EQ(b.size(), 17u);
  const auto na = a.snapshot(0.0).failed_nodes();
  EXPECT_EQ(na, b.snapshot(0.0).failed_nodes());
  const auto c = FaultPlan::random_node_faults(1000, 17, 43);
  EXPECT_NE(na, c.snapshot(0.0).failed_nodes());

  const auto d = FaultPlan::bernoulli_node_faults(5000, 0.1, 7);
  EXPECT_EQ(d.size(), FaultPlan::bernoulli_node_faults(5000, 0.1, 7).size());
  EXPECT_GT(d.size(), 300u);  // ~500 expected
  EXPECT_LT(d.size(), 800u);
}

TEST(FaultPlan, SnapshotAndFaultStateAgreeOverTheTimeline) {
  FaultPlan plan;
  plan.fail_node(1, 2.0, 5.0);   // transient
  plan.fail_node(2, 4.0);        // permanent from t=4
  plan.fail_link(0, 3, 1.0, 3.0);
  FaultState state(plan);
  for (const double t : {0.0, 1.0, 2.0, 2.5, 3.0, 4.0, 5.0, 9.0}) {
    state.advance_to(t);
    const net::FaultSet snap = plan.snapshot(t);
    EXPECT_EQ(state.faults().node_up(1), snap.node_up(1)) << "t=" << t;
    EXPECT_EQ(state.faults().node_up(2), snap.node_up(2)) << "t=" << t;
    EXPECT_EQ(state.faults().link_up(0, 3), snap.link_up(0, 3)) << "t=" << t;
  }
  // Window semantics: active on [fail, repair).
  EXPECT_TRUE(plan.snapshot(1.9).node_up(1));
  EXPECT_FALSE(plan.snapshot(2.0).node_up(1));
  EXPECT_FALSE(plan.snapshot(4.9).node_up(1));
  EXPECT_TRUE(plan.snapshot(5.0).node_up(1));
  EXPECT_FALSE(plan.snapshot(100.0).node_up(2));
}

TEST(Faults, EmptyPlanBitIdenticalUnderTablePolicy) {
  const Graph g = topo::hypercube(6);
  const SimNetwork net(g, LinkTiming{1.0, 1.0});
  const auto packets = sim::uniform_traffic(g.num_nodes(), 3.0, 60.0, 11);
  const auto plain = simulate(net, packets);
  const auto faulty = simulate_with_faults(net, packets, FaultPlan{});
  ASSERT_EQ(faulty.delivered, plain.delivered);
  EXPECT_EQ(faulty.dropped, 0u);
  EXPECT_EQ(faulty.detours, 0u);
  EXPECT_EQ(faulty.bfs_fallbacks, 0u);
  EXPECT_EQ(faulty.latency.mean(), plain.latency.mean());
  EXPECT_EQ(faulty.latency.max(), plain.latency.max());
  EXPECT_EQ(faulty.latency.percentile(0.99), plain.latency.percentile(0.99));
  EXPECT_EQ(faulty.latency.mean_hops(), plain.latency.mean_hops());
  EXPECT_EQ(faulty.makespan, plain.makespan);
}

TEST(Faults, EmptyPlanBitIdenticalUnderLabelPolicy) {
  const SuperIPSpec spec = make_hsn(2, hypercube_nucleus(2));
  const net::ImplicitSuperIPTopology topo(spec);
  const SimNetwork net(topo, LinkTiming{1.0, 4.0});
  const auto packets = sim::uniform_traffic(
      static_cast<Node>(topo.num_nodes()), 2.0, 80.0, 13);
  const auto plain = simulate(net, packets, {4, sim::SwitchingMode::kCutThrough});
  const auto faulty = simulate_with_faults(net, packets, FaultPlan{},
                                           {4, sim::SwitchingMode::kCutThrough});
  ASSERT_EQ(faulty.delivered, plain.delivered);
  EXPECT_EQ(faulty.dropped, 0u);
  EXPECT_EQ(faulty.detours, 0u);
  EXPECT_EQ(faulty.latency.mean(), plain.latency.mean());
  EXPECT_EQ(faulty.latency.max(), plain.latency.max());
  EXPECT_EQ(faulty.latency.mean_off_module_hops(),
            plain.latency.mean_off_module_hops());
  EXPECT_EQ(faulty.makespan, plain.makespan);
}

/// All-pairs traffic between surviving nodes, injected far apart so every
/// packet sees an idle network.
std::vector<Packet> surviving_all_pairs(net::NodeId n,
                                        const net::FaultSet& faults) {
  std::vector<Packet> out;
  double t = 0.0;
  for (net::NodeId s = 0; s < n; ++s) {
    for (net::NodeId d = 0; d < n; ++d) {
      if (s == d || !faults.node_up(s) || !faults.node_up(d)) continue;
      out.push_back({static_cast<Node>(s), static_cast<Node>(d), t});
      t += 1000.0;
    }
  }
  return out;
}

TEST(Faults, DegreeMinusOneNodeFaultsNeverStopSurvivingPairs) {
  // The acceptance guarantee: with f <= kappa - 1 = degree - 1 node faults
  // the network stays connected (Menger), and the adaptive policy delivers
  // every surviving pair. Families chosen so that kappa == min degree,
  // which the test verifies rather than assumes.
  struct Case {
    const char* name;
    SuperIPSpec spec;
  };
  const std::vector<Case> cases = {
      {"HSN(2,Q3)", make_hsn(2, hypercube_nucleus(3))},
      {"ring-CN(3,S3)", make_ring_cn(3, star_nucleus(3))},
      {"SFN(3,Q2)", make_super_flip(3, hypercube_nucleus(2))},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    const IPGraph g = build_super_ip_graph(c.spec);
    const int kappa = testing::expect_maximally_connected(g.graph);
    ASSERT_GT(kappa, 0);

    const net::ImplicitSuperIPTopology topo(c.spec);
    const SimNetwork net(topo, LinkTiming{1.0, 1.0});
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
      const FaultPlan plan =
          FaultPlan::random_node_faults(topo.num_nodes(), kappa - 1, seed);
      const net::FaultSet faults = plan.snapshot(0.0);
      const auto packets = surviving_all_pairs(topo.num_nodes(), faults);
      const auto r = simulate_with_faults(net, packets, plan);
      EXPECT_EQ(r.delivered, packets.size()) << "seed " << seed;
      EXPECT_EQ(r.dropped, 0u);
      EXPECT_GE(r.hop_inflation(), 1.0);
    }
  }
}

TEST(Faults, TablePolicyDetoursAroundPermanentNodeFault) {
  const Graph g = topo::hypercube(4);
  const SimNetwork net(g, LinkTiming{1.0, 1.0});
  // Node 1 sits on the fault-free route 0 -> 3 (0 -> 1 -> 3, ties toward
  // the smallest id); kill it and the packet must route around.
  ASSERT_EQ(net.next_hop(0, 3), 1u);
  FaultPlan plan;
  plan.fail_node(1);
  const std::vector<Packet> one{{0, 3, 0.0}};
  const auto r = simulate_with_faults(net, one, plan);
  EXPECT_EQ(r.delivered, 1u);
  EXPECT_EQ(r.bfs_fallbacks, 1u);
  EXPECT_EQ(r.actual_hop_sum, 2u);  // 0 -> 2 -> 3: same length, kappa = 4
  EXPECT_EQ(r.planned_hop_sum, 2u);
}

TEST(Faults, LabelPolicyDetourUsesAlternativeGenerator) {
  const SuperIPSpec spec = make_hsn(2, hypercube_nucleus(3));
  const net::ImplicitSuperIPTopology topo(spec);
  const SimNetwork net(topo, LinkTiming{1.0, 1.0});
  // Find a pair whose fault-free first hop we can kill.
  const Node src = 0;
  Node dst = 0;
  std::vector<int> gens;
  for (Node d = 1; d < static_cast<Node>(topo.num_nodes()); ++d) {
    gens = net.route_gens(src, d);
    if (gens.size() >= 2) {
      dst = d;
      break;
    }
  }
  ASSERT_NE(dst, 0u);
  const net::NodeId first_hop = topo.neighbor_via(src, gens[0]);
  FaultPlan plan;
  plan.fail_node(first_hop);
  ASSERT_NE(first_hop, static_cast<net::NodeId>(dst));
  const std::vector<Packet> one{{src, dst, 0.0}};
  const auto r = simulate_with_faults(net, one, plan);
  EXPECT_EQ(r.delivered, 1u);
  EXPECT_GE(r.detours, 1u);
  EXPECT_GE(r.actual_hop_sum, r.planned_hop_sum);
}

TEST(Faults, TransientFaultRepairsAndTrafficResumes) {
  const Graph g = topo::path(3);  // 0 - 1 - 2: node 1 is a cut vertex
  const SimNetwork net(g, LinkTiming{1.0, 1.0});
  FaultPlan plan;
  plan.fail_node(1, 0.0, 10.0);
  // While 1 is down there is no detour: the packet at t=0 is dropped.
  const std::vector<Packet> during{{0, 2, 0.0}};
  const auto r1 = simulate_with_faults(net, during, plan);
  EXPECT_EQ(r1.delivered, 0u);
  EXPECT_EQ(r1.dropped, 1u);
  // After the repair the same route works again.
  const std::vector<Packet> after{{0, 2, 10.0}};
  const auto r2 = simulate_with_faults(net, after, plan);
  EXPECT_EQ(r2.delivered, 1u);
  EXPECT_EQ(r2.dropped, 0u);
  EXPECT_DOUBLE_EQ(r2.latency.mean(), 2.0);
}

TEST(Faults, PacketArrivingAtNodeThatJustDiedIsDropped) {
  const Graph g = topo::path(3);
  const SimNetwork net(g, LinkTiming{1.0, 1.0});
  FaultPlan plan;
  plan.fail_node(1, 0.5, 2.0);  // dies while the packet is in flight to it
  const std::vector<Packet> one{{0, 2, 0.0}};
  const auto r = simulate_with_faults(net, one, plan);
  EXPECT_EQ(r.delivered, 0u);
  EXPECT_EQ(r.dropped, 1u);
}

TEST(Faults, DeadSourceDropsAtInjection) {
  const Graph g = topo::hypercube(3);
  const SimNetwork net(g, LinkTiming{1.0, 1.0});
  FaultPlan plan;
  plan.fail_node(0);
  const std::vector<Packet> pkts{{0, 5, 0.0}, {2, 5, 0.0}};
  const auto r = simulate_with_faults(net, pkts, plan);
  EXPECT_EQ(r.delivered, 1u);
  EXPECT_EQ(r.dropped, 1u);
}

TEST(Faults, LinkFaultForcesLongerRoute) {
  const Graph g = topo::cycle(6);
  const SimNetwork net(g, LinkTiming{1.0, 1.0});
  FaultPlan plan;
  plan.fail_link(0, 1);
  const std::vector<Packet> one{{0, 1, 0.0}};
  const auto r = simulate_with_faults(net, one, plan);
  EXPECT_EQ(r.delivered, 1u);
  EXPECT_EQ(r.planned_hop_sum, 1u);
  EXPECT_EQ(r.actual_hop_sum, 5u);  // all the way around
  EXPECT_DOUBLE_EQ(r.hop_inflation(), 5.0);
}

TEST(Faults, BoundedBfsBudgetDropsInsteadOfExploding) {
  const Graph g = topo::cycle(64);
  const SimNetwork net(g, LinkTiming{1.0, 1.0});
  FaultPlan plan;
  plan.fail_link(0, 63);
  const std::vector<Packet> one{{0, 63, 0.0}};
  AdaptiveOptions opts;
  opts.bfs_node_budget = 8;  // the only detour is 63 hops the other way
  const auto tight = simulate_with_faults(net, one, plan, {}, opts);
  EXPECT_EQ(tight.delivered, 0u);
  EXPECT_EQ(tight.dropped, 1u);
  const auto roomy = simulate_with_faults(net, one, plan);
  EXPECT_EQ(roomy.delivered, 1u);
  EXPECT_EQ(roomy.actual_hop_sum, 63u);
}

TEST(FaultAnalysis, SurvivorsConnectedMatchesStructure) {
  const Graph g = topo::path(4);  // 0-1-2-3
  EXPECT_TRUE(survivors_connected(g, {}));
  const std::vector<Node> cut{1};
  EXPECT_FALSE(survivors_connected(g, cut));
  const std::vector<Node> endpoint{0};
  EXPECT_TRUE(survivors_connected(g, endpoint));
  const std::vector<Node> almost_all{0, 1, 2};
  EXPECT_TRUE(survivors_connected(g, almost_all));  // single survivor
}

TEST(FaultAnalysis, MeasuredThresholdRespectsTheDegreeBound) {
  const IPGraph g = build_super_ip_graph(make_hsn(2, hypercube_nucleus(2)));
  const auto report = fault_tolerance_report(g.graph, 6, 40, 123);
  // Theory: kappa-connected graphs survive any kappa-1 failures, and for
  // this family kappa meets the min-degree bound.
  EXPECT_EQ(report.connectivity, static_cast<int>(report.min_degree));
  if (report.measured_disconnect_threshold != 0) {
    EXPECT_GE(report.measured_disconnect_threshold, report.connectivity);
  }
  // Random faults are much weaker than adversarial ones: 40 trials per
  // level almost never find the exact minimum cut, but the invariant
  // above must hold regardless of what they find.
}

}  // namespace
}  // namespace ipg
