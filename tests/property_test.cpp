// Property-based tests: randomized super-IP specifications (random
// nucleus generators over random multiset seeds, random super-generator
// sets) must satisfy the paper's structural theorems — size (Thm 3.2),
// degree bound (Thm 3.1), routing validity and the diameter bound
// (Thm 4.1) — for every spec the model admits.
#include <gtest/gtest.h>

#include <optional>

#include "graph/bfs.hpp"
#include "graph/metrics.hpp"
#include "ipg/build.hpp"
#include "graph/symmetry.hpp"
#include "ipg/schedule.hpp"
#include "ipg/symmetric.hpp"
#include "ipg/super.hpp"
#include "route/path.hpp"
#include "route/super_ip_routing.hpp"
#include "util/prng.hpp"
#include "util/narrow.hpp"

namespace ipg {
namespace {

/// Draws a random non-identity permutation over k positions.
Permutation random_perm(Xoshiro256& rng, int k) {
  std::vector<std::uint8_t> p(as_size(k));
  for (int i = 0; i < k; ++i) p[as_size(i)] = static_cast<std::uint8_t>(i);
  do {
    for (int i = k - 1; i > 0; --i) {
      const int j = static_cast<int>(rng.below(as_size(i + 1)));
      std::swap(p[as_size(i)], p[as_size(j)]);
    }
  } while (std::is_sorted(p.begin(), p.end()));
  return Permutation(p);
}

/// Random super-IP spec: l in [2,4], m in [2,4], 1-3 nucleus generators
/// (closed under inverses so the nucleus is undirected), 1-2 super
/// generators plus their inverses, seed symbols drawn from [1, m] with
/// repetition allowed — or a random permutation of 1..m when
/// `distinct_block` (the Cayley regime of Section 3.5).
std::optional<SuperIPSpec> random_spec(std::uint64_t seed,
                                       bool distinct_block = false) {
  Xoshiro256 rng(seed);
  SuperIPSpec s;
  s.l = 2 + static_cast<int>(rng.below(3));
  s.m = 2 + static_cast<int>(rng.below(3));
  s.name = "random-" + std::to_string(seed);

  const int nucleus_count = 1 + static_cast<int>(rng.below(3));
  for (int i = 0; i < nucleus_count; ++i) {
    const Permutation p = random_perm(rng, s.m);
    s.nucleus_gens.push_back({"n" + std::to_string(2 * i), p, false});
    const Permutation inv = p.inverse();
    if (!(inv == p)) {
      s.nucleus_gens.push_back({"n" + std::to_string(2 * i + 1), inv, false});
    }
  }
  const int super_count = 1 + static_cast<int>(rng.below(2));
  for (int i = 0; i < super_count; ++i) {
    const Permutation p = random_perm(rng, s.l);
    s.super_gens.push_back({"s" + std::to_string(2 * i), p, true});
    const Permutation inv = p.inverse();
    if (!(inv == p)) {
      s.super_gens.push_back({"s" + std::to_string(2 * i + 1), inv, true});
    }
  }

  Label block(as_size(s.m));
  for (int i = 0; i < s.m; ++i) {
    block[as_size(i)] = static_cast<std::uint8_t>(
        distinct_block ? static_cast<std::uint64_t>(i) + 1
                       : 1 + rng.below(as_size(s.m)));
  }
  if (distinct_block) {
    for (int i = s.m - 1; i > 0; --i) {
      std::swap(block[as_size(i)], block[rng.below(as_size(i + 1))]);
    }
  }
  s.seed = repeat_label(block, s.l);
  if (!s.valid()) return std::nullopt;
  // The super-IP definition requires every block to be able to reach the
  // front (Section 3.1); skip generator sets that cannot.
  if (compute_t(s) < 0) return std::nullopt;
  return s;
}

class RandomSuperIp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSuperIp, StructuralTheoremsHold) {
  const auto maybe = random_spec(GetParam());
  if (!maybe) GTEST_SKIP() << "spec rejected by the super-IP definition";
  const SuperIPSpec& spec = *maybe;

  const IPGraph nucleus = build_ip_graph(spec.nucleus_spec());
  const IPGraph g = build_super_ip_graph(spec);

  // Theorem 3.2: N = M^l.
  std::uint64_t expected = 1;
  for (int i = 0; i < spec.l; ++i) expected *= nucleus.num_nodes();
  EXPECT_EQ(g.num_nodes(), expected) << spec.name;

  // Theorem 3.1: degree bounded by the generator count; inter-cluster
  // degree by the super-generator count.
  const auto deg = degree_stats(g.graph);
  EXPECT_LE(deg.max_degree, spec.nucleus_gens.size() + spec.super_gens.size());

  // Undirected by construction (inverse-closed generator sets).
  EXPECT_TRUE(g.graph.is_symmetric()) << spec.name;

  // Theorem 4.1 upper bound, via the router, on sampled pairs.
  const IPGraphSpec lifted = spec.to_ip_spec();
  const Dist nucleus_diam = profile(nucleus.graph).diameter;
  const int bound = route_length_bound(spec, static_cast<int>(nucleus_diam),
                                       /*symmetric_seed=*/false);
  ASSERT_GT(bound, 0);
  Xoshiro256 rng(GetParam() ^ 0xabcdef);
  for (int trial = 0; trial < 32; ++trial) {
    const Node u = static_cast<Node>(rng.below(g.num_nodes()));
    const Node v = static_cast<Node>(rng.below(g.num_nodes()));
    const GenPath path = route_super_ip(spec, g.labels()[u], g.labels()[v]);
    EXPECT_TRUE(verify_path(lifted, g.labels()[u], g.labels()[v], path.gens))
        << spec.name;
    EXPECT_LE(path.length(), bound) << spec.name;
  }

  // The exact diameter never exceeds the Theorem 4.1 bound either
  // (all-pairs BFS only where enumeration stays cheap).
  if (g.num_nodes() <= 5000) {
    EXPECT_LE(profile(g.graph).diameter, static_cast<Dist>(bound)) << spec.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, RandomSuperIp,
                         ::testing::Range<std::uint64_t>(1, 41));

class RandomSymmetricVariant : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSymmetricVariant, CayleyPropertiesHold) {
  // Section 3.5 on arbitrary specs: the symmetric variant of a plain
  // super-IP graph with distinct-symbol blocks is a Cayley graph —
  // regular, vertex-symmetric — with (#reachable arrangements) * M^l
  // nodes.
  const auto maybe = random_spec(GetParam(), /*distinct_block=*/true);
  if (!maybe) GTEST_SKIP() << "spec rejected by the super-IP definition";
  const SuperIPSpec& spec = *maybe;
  if (spec.l * spec.m > 255) GTEST_SKIP() << "symbol range too small";

  const IPGraph nucleus = build_ip_graph(spec.nucleus_spec());
  std::uint64_t m_to_l = 1;
  for (int i = 0; i < spec.l; ++i) m_to_l *= nucleus.num_nodes();
  const std::uint64_t predicted = num_reachable_arrangements(spec) * m_to_l;
  if (predicted > 40000) GTEST_SKIP() << "instance too large for exact checks";

  const IPGraph sym = build_super_ip_graph(make_symmetric(spec));
  EXPECT_EQ(sym.num_nodes(), predicted) << spec.name;
  EXPECT_TRUE(degree_stats(sym.graph).regular) << spec.name;
  if (sym.num_nodes() <= 4000) {
    EXPECT_TRUE(looks_vertex_transitive(sym.graph)) << spec.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, RandomSymmetricVariant,
                         ::testing::Range<std::uint64_t>(100, 125));

class RandomDirectedSuperIp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDirectedSuperIp, DirectedSpecsStayRoutable) {
  // Drop the inverse generators: the digraph is no longer symmetric, but
  // as long as the nucleus orbit stays strongly connected and every block
  // can reach the front, Theorem 4.1 routing still succeeds and N = M^l.
  Xoshiro256 rng(GetParam());
  SuperIPSpec s;
  s.l = 2 + static_cast<int>(rng.below(3));
  s.m = 3 + static_cast<int>(rng.below(2));
  s.name = "directed-random-" + std::to_string(GetParam());
  // A single full-cycle nucleus generator: the orbit is a directed cycle,
  // strongly connected by construction.
  std::vector<std::uint8_t> cycle_perm(as_size(s.m));
  for (int i = 0; i < s.m; ++i) {
    cycle_perm[as_size(i)] = static_cast<std::uint8_t>((i + 1) % s.m);
  }
  s.nucleus_gens.push_back({"rot", Permutation(cycle_perm), false});
  // A single directed shift super-generator.
  s.super_gens.push_back({"L", Permutation::rotate_left(s.l, 1), true});
  Label block(as_size(s.m));
  for (int i = 0; i < s.m; ++i) {
    block[as_size(i)] = static_cast<std::uint8_t>(1 + rng.below(as_size(s.m)));
  }
  s.seed = repeat_label(block, s.l);
  ASSERT_TRUE(s.valid());
  ASSERT_GE(compute_t(s), 0);

  const IPGraph nucleus = build_ip_graph(s.nucleus_spec());
  const IPGraph g = build_super_ip_graph(s);
  std::uint64_t expected = 1;
  for (int i = 0; i < s.l; ++i) expected *= nucleus.num_nodes();
  EXPECT_EQ(g.num_nodes(), expected) << s.name;

  const IPGraphSpec lifted = s.to_ip_spec();
  for (int trial = 0; trial < 16; ++trial) {
    const Node u = static_cast<Node>(rng.below(g.num_nodes()));
    const Node v = static_cast<Node>(rng.below(g.num_nodes()));
    const GenPath path = route_super_ip(s, g.labels()[u], g.labels()[v]);
    EXPECT_TRUE(verify_path(lifted, g.labels()[u], g.labels()[v], path.gens))
        << s.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, RandomDirectedSuperIp,
                         ::testing::Range<std::uint64_t>(200, 215));

TEST(RandomSuperIp, GeneratorProducesBothAcceptedAndRejectedSpecs) {
  int accepted = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    accepted += random_spec(seed).has_value();
  }
  EXPECT_GT(accepted, 20);  // the sweep above mostly exercises real specs
}

}  // namespace
}  // namespace ipg
