// Tests for quotient super networks (QCN, Fig. 3): physical sizes, module
// budgets, and the invariance of I-distances under nucleus merging.
#include <gtest/gtest.h>

#include "cluster/imetrics.hpp"
#include "cluster/partitions.hpp"
#include "graph/connectivity.hpp"
#include "graph/metrics.hpp"
#include "ipg/families.hpp"
#include "ipg/quotient_cn.hpp"
#include "topo/hypercube.hpp"

namespace ipg {
namespace {

TupleNetwork cn_over_cube(int l, int n) {
  return build_super_network_direct(topo::hypercube(n), l,
                                    ring_shift_super_gens(l));
}

TEST(QuotientCn, PhysicalSizeAndModuleBudget) {
  // QCN(2; Q5/Q2): CN(2, Q5) has 1024 nodes; merging Q2 subcubes leaves
  // 8 * 32 = 256 physical nodes, 8 per module.
  const TupleNetwork cn = cn_over_cube(2, 5);
  const QuotientNetwork q = make_quotient_cn(cn, 5, 2);
  EXPECT_EQ(q.graph.num_nodes(), 256u);
  EXPECT_EQ(q.num_modules, 32u);
  EXPECT_EQ(q.nodes_per_module, 8u);
  EXPECT_TRUE(is_connected_from(q.graph));
  EXPECT_TRUE(q.graph.is_symmetric());
}

TEST(QuotientCn, ModulesInternallyConnected) {
  const TupleNetwork cn = cn_over_cube(2, 5);
  const QuotientNetwork q = make_quotient_cn(cn, 5, 2);
  const Clustering c{q.module_of, q.num_modules};
  ASSERT_TRUE(c.valid(q.graph.num_nodes()));
  EXPECT_TRUE(modules_internally_connected(q.graph, c));
  for (const auto s : c.module_sizes()) EXPECT_EQ(s, q.nodes_per_module);
}

TEST(QuotientCn, IDistancesMatchTheUnmergedNetwork) {
  // Merging subcubes of the leading coordinate leaves the module graph —
  // and hence I-diameter and average I-distance — unchanged. This is why
  // the paper can plot QCN(l; Q7/Q3) as a module-size-respecting stand-in
  // for CN(l, Q7).
  const int l = 2, n = 5, b = 2;
  const TupleNetwork cn = cn_over_cube(l, n);
  const Clustering full_c = cluster_tuple(cn);
  const QuotientNetwork q = make_quotient_cn(cn, n, b);
  const Clustering q_c{q.module_of, q.num_modules};

  const Graph full_mg = module_graph(cn.graph, full_c);
  const Graph q_mg = module_graph(q.graph, q_c);
  // The module graphs themselves are identical (merging only acts inside
  // modules)...
  const auto full_p = profile(full_mg);
  const auto q_p = profile(q_mg);
  EXPECT_EQ(full_p.nodes, q_p.nodes);
  EXPECT_EQ(full_p.links, q_p.links);
  EXPECT_EQ(full_p.diameter, q_p.diameter);
  EXPECT_NEAR(full_p.average_distance, q_p.average_distance, 1e-9);
  // ...so I-diameters agree exactly; average I-distance differs only in
  // the weight of the (distance-0) within-module pairs.
  const auto full_stats = i_distance_stats(full_mg, full_c.module_sizes());
  const auto q_stats = i_distance_stats(q_mg, q_c.module_sizes());
  EXPECT_EQ(full_stats.i_diameter, q_stats.i_diameter);
  EXPECT_NEAR(full_stats.avg_i_distance, q_stats.avg_i_distance, 0.05);
}

TEST(QuotientCn, MergingRaisesPerNodeOffModuleLinks) {
  // Each physical node bundles the off-module links of its merged
  // constituents, so I-degree grows by about the merge factor.
  const TupleNetwork cn = cn_over_cube(2, 5);
  const Clustering full_c = cluster_tuple(cn);
  const QuotientNetwork q = make_quotient_cn(cn, 5, 2);
  const Clustering q_c{q.module_of, q.num_modules};
  EXPECT_GT(i_degree(q.graph, q_c), i_degree(cn.graph, full_c));
}

TEST(QuotientCn, AlsoWorksOverHsnTupleNetworks) {
  // The merge is generic over hypercube-nucleus tuple networks: quotient
  // an HSN(2, Q4) into Q2-merged physical nodes.
  const TupleNetwork hsn = build_super_network_direct(
      topo::hypercube(4), 2, transposition_super_gens(2));
  const QuotientNetwork q = make_quotient_cn(hsn, 4, 2);
  EXPECT_EQ(q.graph.num_nodes(), 64u);  // 4 * 16
  EXPECT_EQ(q.nodes_per_module, 4u);
  EXPECT_TRUE(is_connected_from(q.graph));
  const Clustering c{q.module_of, q.num_modules};
  EXPECT_TRUE(modules_internally_connected(q.graph, c));
}

TEST(QuotientCn, DegenerateMergeRejected) {
  const TupleNetwork cn = cn_over_cube(2, 4);
#ifndef NDEBUG
  EXPECT_DEATH(make_quotient_cn(cn, 4, 0), "");
  EXPECT_DEATH(make_quotient_cn(cn, 4, 4), "");
#else
  GTEST_SKIP() << "assertions disabled in release";
#endif
}

}  // namespace
}  // namespace ipg
