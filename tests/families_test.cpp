// Tests for the network families of Section 3: sizes (Theorem 3.2),
// degrees (Theorem 3.1), diameters (Theorem 4.1 / Corollary 4.2),
// HCN equivalence, diameter links, and the tuple-space construction.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/connectivity.hpp"
#include "graph/metrics.hpp"
#include "graph/symmetry.hpp"
#include "ipg/families.hpp"
#include "ipg/ranking.hpp"
#include "ipg/schedule.hpp"
#include "topo/hypercube.hpp"
#include "topo/misc.hpp"

namespace ipg {
namespace {

std::uint64_t ipow(std::uint64_t b, int e) {
  std::uint64_t v = 1;
  for (int i = 0; i < e; ++i) v *= b;
  return v;
}

struct FamilyCase {
  std::string kind;
  int l;
  int nucleus_n;  // Q_n nucleus
};

class SuperFamilies : public ::testing::TestWithParam<FamilyCase> {
 protected:
  SuperIPSpec spec() const {
    const auto& p = GetParam();
    const IPGraphSpec nucleus = hypercube_nucleus(p.nucleus_n);
    if (p.kind == "hsn") return make_hsn(p.l, nucleus);
    if (p.kind == "ring") return make_ring_cn(p.l, nucleus);
    if (p.kind == "complete") return make_complete_cn(p.l, nucleus);
    if (p.kind == "flip") return make_super_flip(p.l, nucleus);
    return make_directed_cn(p.l, nucleus);
  }
};

TEST_P(SuperFamilies, SizeIsNucleusToThePowerL) {
  // Theorem 3.2: N = M^l.
  const SuperIPSpec s = spec();
  const IPGraph g = build_super_ip_graph(s);
  EXPECT_EQ(g.num_nodes(), ipow(ipow(2, GetParam().nucleus_n), s.l));
}

TEST_P(SuperFamilies, DegreeBoundedByGeneratorCount) {
  // Theorem 3.1 for node degree.
  const SuperIPSpec s = spec();
  const IPGraph g = build_super_ip_graph(s);
  EXPECT_LE(degree_stats(g.graph).max_degree,
            s.nucleus_gens.size() + s.super_gens.size());
}

TEST_P(SuperFamilies, DiameterMatchesTheorem41) {
  // diameter = l * D_G + t, with D_G = n for the Q_n nucleus.
  const auto& p = GetParam();
  const SuperIPSpec s = spec();
  const IPGraph g = build_super_ip_graph(s);
  const auto prof = profile(g.graph);
  EXPECT_TRUE(prof.connected);
  EXPECT_EQ(prof.diameter, p.l * p.nucleus_n + compute_t(s));
}

TEST_P(SuperFamilies, Corollary42DiameterFormula) {
  // diameter = (D_G + 1) * log_M(N) - 1 with log_M(N) = l.
  const auto& p = GetParam();
  const IPGraph g = build_super_ip_graph(spec());
  const double log_m_n = std::log2(static_cast<double>(g.num_nodes())) /
                         static_cast<double>(p.nucleus_n);
  EXPECT_NEAR(log_m_n, p.l, 1e-9);
  EXPECT_EQ(profile(g.graph).diameter,
            static_cast<Dist>((p.nucleus_n + 1) * p.l - 1));
}

TEST_P(SuperFamilies, StronglyConnected) {
  const IPGraph g = build_super_ip_graph(spec());
  EXPECT_TRUE(is_strongly_connected(g.graph));
}

TEST_P(SuperFamilies, UndirectedFamiliesAreInverseClosed) {
  const SuperIPSpec s = spec();
  const IPGraphSpec lifted = s.to_ip_spec();
  if (GetParam().kind != "directed") {
    EXPECT_TRUE(lifted.inverse_closed());
    EXPECT_TRUE(build_super_ip_graph(s).graph.is_symmetric());
  } else if (s.l > 2) {
    EXPECT_FALSE(build_super_ip_graph(s).graph.is_symmetric());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SuperFamilies,
    ::testing::Values(FamilyCase{"hsn", 2, 2}, FamilyCase{"hsn", 3, 2},
                      FamilyCase{"hsn", 4, 2}, FamilyCase{"hsn", 2, 3},
                      FamilyCase{"hsn", 3, 3}, FamilyCase{"ring", 2, 2},
                      FamilyCase{"ring", 3, 2}, FamilyCase{"ring", 4, 2},
                      FamilyCase{"ring", 3, 3}, FamilyCase{"complete", 3, 2},
                      FamilyCase{"complete", 4, 2}, FamilyCase{"flip", 3, 2},
                      FamilyCase{"flip", 4, 2}, FamilyCase{"directed", 3, 2},
                      FamilyCase{"directed", 4, 2}),
    [](const auto& tpi) {
      return tpi.param.kind + "_l" + std::to_string(tpi.param.l) + "_Q" +
             std::to_string(tpi.param.nucleus_n);
    });

TEST(Families, HcnIsHsn2OverQn) {
  // "HCN(n,n) without diameter links is equivalent to HSN(2, Q_n)".
  for (int n = 2; n <= 4; ++n) {
    const IPGraph hcn = build_super_ip_graph(make_hcn(n));
    EXPECT_EQ(hcn.num_nodes(), ipow(4, n));
    const auto p = profile(hcn.graph);
    EXPECT_EQ(p.degree, static_cast<Node>(n + 1));
    EXPECT_EQ(p.diameter, static_cast<Dist>(2 * n + 1));
  }
}

TEST(Families, HcnFig1aStructure) {
  // Fig. 1a: HCN(2,2) has 16 nodes; swap links pair clusters; each node
  // has the two cube links plus at most one swap link.
  const IPGraph hcn = build_super_ip_graph(make_hcn(2));
  ASSERT_EQ(hcn.num_nodes(), 16u);
  const auto stats = degree_stats(hcn.graph);
  EXPECT_EQ(stats.max_degree, 3u);
  EXPECT_EQ(stats.min_degree, 2u);  // the four (x,x) nodes lose their swap
  EXPECT_FALSE(looks_vertex_transitive(hcn.graph));
}

TEST(Families, DiameterLinksRestoreRegularity) {
  // Ghose-Desai diameter links attach exactly to the (x,x) nodes, making
  // HCN(n,n) regular of degree n + 1.
  for (int n = 2; n <= 3; ++n) {
    const IPGraph hcn = build_super_ip_graph(make_hcn(n));
    const Graph full = add_hcn_diameter_links(hcn, n);
    EXPECT_TRUE(full.is_symmetric());
    const auto stats = degree_stats(full);
    EXPECT_TRUE(stats.regular) << "n=" << n;
    EXPECT_EQ(stats.max_degree, static_cast<Node>(n + 1));
    // Diameter cannot grow by adding links.
    EXPECT_LE(profile(full).diameter, profile(hcn.graph).diameter);
  }
}

TEST(Families, TupleConstructionIsomorphicToIpConstruction) {
  // Building HSN(l, Q_n) in tuple space and via the IP engine must give
  // the same graph; the SuperRanking digits are the explicit isomorphism.
  for (const int l : {2, 3}) {
    const SuperIPSpec s = make_hsn(l, hypercube_nucleus(2));
    const IPGraph ip = build_super_ip_graph(s);
    const IPGraph nucleus = build_ip_graph(s.nucleus_spec());
    const TupleNetwork tuple = build_super_network_direct(
        nucleus.graph, l, transposition_super_gens(l));
    ASSERT_EQ(tuple.graph.num_nodes(), ip.num_nodes());

    const SuperRanking ranking(s);
    std::uint64_t arcs = 0;
    for (Node u = 0; u < ip.num_nodes(); ++u) {
      const Node tu = static_cast<Node>(ranking.rank(ip.labels()[u]));
      for (const Node v : ip.graph.neighbors(u)) {
        const Node tv = static_cast<Node>(ranking.rank(ip.labels()[v]));
        EXPECT_TRUE(tuple.graph.has_arc(tu, tv));
        ++arcs;
      }
    }
    EXPECT_EQ(arcs, tuple.graph.num_arcs());
  }
}

TEST(Families, PetersenNucleusSatisfiesTheorem41) {
  // Theorem 4.1 applies to any nucleus: ring-CN(3, Petersen) has diameter
  // l * D_G + t = 3 * 2 + 2 = 8 with 10^3 nodes.
  const TupleNetwork net = build_super_network_direct(
      topo::petersen(), 3, ring_shift_super_gens(3));
  EXPECT_EQ(net.graph.num_nodes(), 1000u);
  const auto p = profile(net.graph);
  EXPECT_EQ(p.degree, 5u);  // 3 (Petersen) + 2 shifts
  EXPECT_EQ(p.diameter, 8u);
}

TEST(Families, TupleEncodeDecodeRoundTrip) {
  const TupleNetwork net = build_super_network_direct(
      topo::petersen(), 3, ring_shift_super_gens(3));
  for (const Node id : {0u, 1u, 999u, 123u, 470u}) {
    EXPECT_EQ(net.encode(net.decode(id)), id);
  }
  EXPECT_EQ(net.num_modules(), 100u);
  EXPECT_EQ(net.module_of(999), 99u);
}

TEST(Families, GeneralizedHypercubeNucleusProfile) {
  // GH(3,3): 9 nodes, degree 4, diameter 2 — the diameter-optimal nucleus
  // recommendation at the end of Section 4.
  const std::vector<int> radices{3, 3};
  const IPGraph g = build_ip_graph(generalized_hypercube_nucleus(radices));
  const auto p = profile(g.graph);
  EXPECT_EQ(p.nodes, 9u);
  EXPECT_EQ(p.degree, 4u);
  EXPECT_EQ(p.diameter, 2u);
  EXPECT_TRUE(looks_vertex_transitive(g.graph));
}

TEST(Families, CompleteNucleusIsCompleteGraph) {
  for (int r = 3; r <= 6; ++r) {
    const IPGraph g = build_ip_graph(complete_nucleus(r));
    const auto p = profile(g.graph);
    EXPECT_EQ(p.nodes, static_cast<std::uint64_t>(r));
    EXPECT_EQ(p.degree, static_cast<Node>(r - 1));
    EXPECT_EQ(p.diameter, 1u);
  }
}

TEST(Families, CycleNucleusIsCycle) {
  const IPGraph g = build_ip_graph(cycle_nucleus(7));
  const auto p = profile(g.graph);
  EXPECT_EQ(p.nodes, 7u);
  EXPECT_EQ(p.degree, 2u);
  EXPECT_EQ(p.diameter, 3u);
}

TEST(Families, RecursiveHsnComposes) {
  // RHSN: an HSN whose nucleus is itself an HSN — nesting works because a
  // super-IP spec lifts to a plain IP spec.
  const SuperIPSpec inner = make_hsn(2, hypercube_nucleus(1));  // 4 nodes
  const SuperIPSpec outer = make_hsn(2, inner.to_ip_spec());
  const IPGraph g = build_super_ip_graph(outer);
  EXPECT_EQ(g.num_nodes(), 16u);  // (2^1)^2 squared
  const auto inner_g = build_super_ip_graph(inner);
  const auto inner_p = profile(inner_g.graph);
  // Theorem 4.1 with the inner HSN as nucleus: 2 * D_inner + 1.
  EXPECT_EQ(profile(g.graph).diameter, 2 * inner_p.diameter + 1);
}

TEST(Families, StarNucleusHsnMatchesPaperExample) {
  const IPGraph g = build_super_ip_graph(make_hsn(2, star_nucleus(3)));
  EXPECT_EQ(g.num_nodes(), 36u);
  EXPECT_EQ(profile(g.graph).diameter, 7u);  // 2 * D(S3) + 1 = 2*3+1
}

}  // namespace
}  // namespace ipg
