// Property/fuzz pass over the IST multipath layer: random super-IP specs
// (tests/random_spec.hpp), random kappa-1 node FaultSets, and the two
// quantified guarantees of docs/MODEL.md section 13 —
//   1. kDisjoint delivery is 100% on surviving connected pairs while
//      faults stay below kappa, with zero BFS fallbacks (the window of
//      provable delivery);
//   2. zero-fault kDisjoint routes are never longer than diameter + c for
//      a small family-independent constant (the primary path is a
//      shortest path whenever the tree realization is accepted, and is
//      bounded by the flow decomposition otherwise) — the observed c is
//      recorded per run.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "connectivity_helpers.hpp"
#include "graph/builder.hpp"
#include "graph/flow.hpp"
#include "graph/metrics.hpp"
#include "ipg/families.hpp"
#include "net/topology.hpp"
#include "random_spec.hpp"
#include "route/disjoint.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"
#include "sim/traffic.hpp"
#include "util/prng.hpp"

namespace ipg {
namespace {

using sim::FaultPlan;
using sim::LinkTiming;
using sim::Packet;
using sim::SimNetwork;

Graph rank_id_graph(const net::ImplicitSuperIPTopology& topo) {
  const auto n = static_cast<Node>(topo.num_nodes());
  GraphBuilder b(n);
  std::vector<net::TopoArc> arcs;
  for (Node u = 0; u < n; ++u) {
    topo.neighbors(u, arcs);
    net::NodeId prev = net::kInvalidNodeId;
    for (const net::TopoArc& a : arcs) {
      if (a.to == prev) continue;
      prev = a.to;
      b.add_arc(u, static_cast<Node>(a.to));
    }
  }
  return std::move(b).build();
}

/// All-pairs traffic between surviving nodes, spaced far apart so every
/// packet sees an idle network; capped to keep the sweep fast.
std::vector<Packet> surviving_pairs_sample(net::NodeId n,
                                           const net::FaultSet& faults,
                                           Xoshiro256& rng,
                                           std::size_t max_packets) {
  std::vector<Packet> out;
  double t = 0.0;
  while (out.size() < max_packets) {
    const auto s = static_cast<Node>(rng.below(n));
    const auto d = static_cast<Node>(rng.below(n));
    if (s == d || !faults.node_up(s) || !faults.node_up(d)) continue;
    out.push_back({s, d, t});
    t += 1000.0;
  }
  return out;
}

TEST(IstProperty, KappaMinusOneFaultsNeverDropSurvivingTraffic) {
  Xoshiro256 rng(20260809);
  int instances = 0;
  while (instances < 6) {
    const SuperIPSpec spec = ipg::testing::random_super_ip_spec(rng);
    const net::ImplicitSuperIPTopology topo(spec);
    // vertex_connectivity is the budget-setter here; keep it tractable.
    if (topo.num_nodes() > 400) continue;
    instances++;
    SCOPED_TRACE(spec.name);

    const Graph g = rank_id_graph(topo);
    const int kappa = vertex_connectivity(g);
    ASSERT_GT(kappa, 0);
    const SimNetwork net(topo, LinkTiming{1.0, 1.0},
                         sim::RoutingPolicy::kDisjoint);

    for (int trial = 0; trial < 2; ++trial) {
      if (kappa == 1) break;  // no fault budget below kappa
      const FaultPlan plan = FaultPlan::random_node_faults(
          topo.num_nodes(), kappa - 1, rng());
      const net::FaultSet faults = plan.snapshot(0.0);
      const auto packets =
          surviving_pairs_sample(topo.num_nodes(), faults, rng, 200);
      const auto r = simulate_with_faults(net, packets, plan);
      EXPECT_EQ(r.delivered, packets.size());
      EXPECT_EQ(r.dropped, 0u);
      // The headline claim: below kappa the disjoint set always holds a
      // fully live path, so the BFS escape hatch never fires.
      EXPECT_EQ(r.bfs_fallbacks, 0u);
    }
  }
}

TEST(IstProperty, ZeroFaultRoutesStayWithinDiameterPlusConstant) {
  Xoshiro256 rng(4242);
  int instances = 0;
  std::int64_t max_slack = 0;  // observed c over every sampled route
  while (instances < 6) {
    const SuperIPSpec spec = ipg::testing::random_super_ip_spec(rng);
    const net::ImplicitSuperIPTopology topo(spec);
    if (topo.num_nodes() > 400) continue;
    instances++;
    SCOPED_TRACE(spec.name);

    const Graph g = rank_id_graph(topo);
    const TopologyProfile prof = profile(g);
    const route::KDisjointRouter router(topo);
    for (int trial = 0; trial < 32; ++trial) {
      const auto src = static_cast<Node>(rng.below(topo.num_nodes()));
      const auto dst = static_cast<Node>(rng.below(topo.num_nodes()));
      if (src == dst) continue;
      const route::DisjointRouteSet set = router.routes(src, dst);
      ASSERT_FALSE(set.paths.empty());
      const auto len = static_cast<std::int64_t>(set.paths.front().length());
      const auto diam = static_cast<std::int64_t>(prof.diameter);
      max_slack = std::max(max_slack, len - diam);
      if (set.from_trees) {
        // Accepted tree realizations are shortest paths: within diameter.
        EXPECT_LE(len, diam);
      } else {
        // Flow decompositions trade length for disjointness, but the
        // primary stays within the node-disjoint detour bound.
        EXPECT_LE(len, 2 * diam + 2);
      }
    }
  }
  RecordProperty("max_additive_slack_over_diameter",
                 static_cast<int>(max_slack));
}

}  // namespace
}  // namespace ipg
