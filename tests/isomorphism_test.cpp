// Tests for the exact isomorphism checker, capped by upgrading the
// CCC = symmetric ring-CN(n, Q1) equivalence from invariants to a proof.
#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/isomorphism.hpp"
#include "ipg/families.hpp"
#include "ipg/symmetric.hpp"
#include "topo/ccc.hpp"
#include "topo/hypercube.hpp"
#include "topo/ip_forms.hpp"
#include "topo/misc.hpp"

namespace ipg {
namespace {

TEST(Isomorphism, IdenticalGraphsMatch) {
  const Graph g = topo::petersen();
  const auto phi = find_isomorphism(g, g);
  ASSERT_TRUE(phi.has_value());
  // The mapping is a bijection preserving all arcs.
  std::vector<bool> seen(10, false);
  for (const Node v : *phi) {
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
  for (Node u = 0; u < 10; ++u) {
    for (const Node v : g.neighbors(u)) {
      EXPECT_TRUE(g.has_arc((*phi)[u], (*phi)[v]));
    }
  }
}

TEST(Isomorphism, RelabeledCycleMatches) {
  const Graph a = topo::cycle(7);
  GraphBuilder b(7);
  for (Node u = 0; u < 7; ++u) b.add_edge((u * 3) % 7, ((u + 1) * 3) % 7);
  EXPECT_TRUE(are_isomorphic(a, std::move(b).build()));
}

TEST(Isomorphism, DifferentGraphsRejected) {
  // Same order/size/degree sequence: C6 vs two triangles.
  const Graph c6 = topo::cycle(6);
  GraphBuilder b(6);
  for (Node u = 0; u < 3; ++u) b.add_edge(u, (u + 1) % 3);
  for (Node u = 0; u < 3; ++u) b.add_edge(3 + u, 3 + (u + 1) % 3);
  EXPECT_FALSE(are_isomorphic(c6, std::move(b).build()));
  // Different sizes rejected immediately.
  EXPECT_FALSE(are_isomorphic(topo::cycle(5), c6));
}

TEST(Isomorphism, DirectedOrientationMatters) {
  GraphBuilder a(3), b(3);
  a.add_arc(0, 1);
  a.add_arc(1, 2);
  a.add_arc(2, 0);
  b.add_arc(1, 0);
  b.add_arc(2, 1);
  b.add_arc(0, 2);
  // Directed 3-cycles of opposite orientation are still isomorphic (swap
  // two nodes), but a 3-cycle and a 3-path are not.
  EXPECT_TRUE(are_isomorphic(std::move(a).build(), std::move(b).build()));
  GraphBuilder c(3), d(3);
  c.add_arc(0, 1);
  c.add_arc(1, 2);
  c.add_arc(2, 0);
  d.add_arc(0, 1);
  d.add_arc(1, 2);
  d.add_arc(0, 2);
  EXPECT_FALSE(are_isomorphic(std::move(c).build(), std::move(d).build()));
}

TEST(Isomorphism, IpHypercubeIsTheHypercube) {
  for (int n = 2; n <= 4; ++n) {
    const IPGraph ip = build_ip_graph(hypercube_nucleus(n));
    EXPECT_TRUE(are_isomorphic(ip.graph, topo::hypercube(n))) << n;
  }
}

TEST(Isomorphism, CccIsExactlySymmetricRingCn) {
  // The full proof of the Section 1 unification claim for CCC.
  for (int n = 3; n <= 4; ++n) {
    const IPGraph sym = build_super_ip_graph(
        make_symmetric(make_ring_cn(n, hypercube_nucleus(1))));
    EXPECT_TRUE(are_isomorphic(sym.graph, topo::cube_connected_cycles(n)))
        << "n=" << n;
  }
}

TEST(Isomorphism, PetersenIsKneserK52) {
  // Construct K(5,2) directly: 2-subsets of {0..4}, adjacent iff disjoint.
  std::vector<std::pair<int, int>> subsets;
  for (int a = 0; a < 5; ++a) {
    for (int b = a + 1; b < 5; ++b) subsets.push_back({a, b});
  }
  GraphBuilder b(10);
  for (std::size_t i = 0; i < subsets.size(); ++i) {
    for (std::size_t j = i + 1; j < subsets.size(); ++j) {
      const auto [a1, b1] = subsets[i];
      const auto [a2, b2] = subsets[j];
      if (a1 != a2 && a1 != b2 && b1 != a2 && b1 != b2) {
        b.add_edge(static_cast<Node>(i), static_cast<Node>(j));
      }
    }
  }
  EXPECT_TRUE(are_isomorphic(topo::petersen(), std::move(b).build()));
}

TEST(Isomorphism, RotatorGraphBasics) {
  const IPGraph r4 = build_ip_graph(rotator_nucleus(4));
  EXPECT_EQ(r4.num_nodes(), 24u);
  EXPECT_FALSE(r4.graph.is_symmetric());  // rotators are directed
  // Rotator graphs of different n are never isomorphic to their star
  // cousins (different arc counts already).
  const IPGraph s4 = build_ip_graph(star_nucleus(4));
  EXPECT_FALSE(are_isomorphic(r4.graph, s4.graph));
}

}  // namespace
}  // namespace ipg
