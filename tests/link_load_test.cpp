// Tests for the deterministic link-load profile.
#include <gtest/gtest.h>

#include "cluster/partitions.hpp"
#include "graph/bfs.hpp"
#include "ipg/families.hpp"
#include "sim/link_load.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "topo/hypercube.hpp"
#include "topo/misc.hpp"

namespace ipg {
namespace {

using sim::all_pairs_link_loads;
using sim::LinkTiming;
using sim::SimNetwork;

TEST(LinkLoad, TotalHopsEqualsSumOfDistances) {
  const Graph g = topo::hypercube(5);
  const SimNetwork net(g, LinkTiming{});
  const auto loads = all_pairs_link_loads(net);
  const auto d = all_pairs_distance_summary(g);
  std::uint64_t expected = 0;
  for (std::size_t dist = 0; dist < d.histogram.size(); ++dist) {
    expected += dist * d.histogram[dist];
  }
  EXPECT_EQ(loads.total_hops, expected);
}

TEST(LinkLoad, CycleLoadsAreUniform) {
  // Every arc of an odd cycle carries the same traffic by symmetry (odd
  // length avoids the tie-breaking asymmetry of antipodal pairs).
  const Graph g = topo::cycle(7);
  const SimNetwork net(g, LinkTiming{});
  const auto loads = all_pairs_link_loads(net);
  const std::uint32_t first = loads.load[0];
  for (const std::uint32_t l : loads.load) EXPECT_EQ(l, first);
}

TEST(LinkLoad, SplitsOnAndOffModuleTraffic) {
  const Graph g = topo::hypercube(6);
  const Clustering c = cluster_hypercube(6, 3);
  const SimNetwork net(g, LinkTiming{1.0, 1.0}, c);
  const auto loads = all_pairs_link_loads(net);
  EXPECT_GT(loads.max_off_module, 0u);
  EXPECT_GT(loads.max_on_module, 0u);
  EXPECT_GE(loads.off_module_imbalance(), 1.0);
  // Dimension-ordered-ish shortest paths on a hypercube keep loads close
  // to uniform within each class.
  EXPECT_LT(loads.off_module_imbalance(), 2.5);
}

TEST(LinkLoad, SuperIpOffModuleLinksCarryConcentratedTraffic) {
  // HSN(2, Q4): one swap link per node pair of modules, so off-module
  // arcs each carry far more pairs than on-module ones — the premise for
  // making off-chip links wider (Section 5.3).
  const SuperIPSpec spec = make_hsn(2, hypercube_nucleus(4));
  const IPGraph g = build_super_ip_graph(spec);
  const Clustering c = cluster_by_nucleus(g, spec.m);
  const SimNetwork net(g.graph, LinkTiming{1.0, 1.0}, c);
  const auto loads = all_pairs_link_loads(net);
  EXPECT_GT(loads.avg_off_module, loads.avg_on_module);
}

TEST(LinkLoad, SaturationBoundSeparatesStableFromUnstable) {
  // Below the bound, latency stays near the unloaded value; above it, the
  // queues blow up within the horizon.
  const Graph g = topo::hypercube(6);
  const SimNetwork net(g, LinkTiming{1.0, 1.0});
  const auto loads = all_pairs_link_loads(net);
  const double bound =
      sim::saturation_injection_bound(loads, g.num_nodes(), 1.0);
  ASSERT_GT(bound, 0.0);

  const double horizon = 400.0;
  const auto low = sim::uniform_traffic(
      g.num_nodes(), 0.5 * bound * g.num_nodes(), horizon, 17);
  const auto high = sim::uniform_traffic(
      g.num_nodes(), 2.0 * bound * g.num_nodes(), horizon, 18);
  const auto r_low = simulate(net, low);
  const auto r_high = simulate(net, high);
  // Stable regime: mean latency within a small multiple of mean distance.
  EXPECT_LT(r_low.latency.mean(), 3.5 * r_low.latency.mean_hops());
  // Overloaded regime: queueing delay dominates.
  EXPECT_GT(r_high.latency.mean(), 3.0 * r_low.latency.mean());
}

TEST(LinkLoad, SaturationBoundEdgeCases) {
  sim::LinkLoadStats empty;
  EXPECT_DOUBLE_EQ(sim::saturation_injection_bound(empty, 8, 1.0), 0.0);
  sim::LinkLoadStats loads;
  loads.max_on_module = 10;
  EXPECT_DOUBLE_EQ(sim::saturation_injection_bound(loads, 11, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(sim::saturation_injection_bound(loads, 11, 0.0), 0.0);
}

TEST(LinkLoad, PathGraphMiddleLinkDominates) {
  const Graph g = topo::path(5);
  const SimNetwork net(g, LinkTiming{});
  const auto loads = all_pairs_link_loads(net);
  // The middle link (2-3 or 1-2) carries 6 pairs each direction.
  EXPECT_EQ(loads.max_on_module, 6u);
}

}  // namespace
}  // namespace ipg
