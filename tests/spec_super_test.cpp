// Unit coverage for IPGraphSpec and SuperIPSpec plumbing: inverse
// closure, generator classification, block accessors, spec lifting and
// validation.
#include <gtest/gtest.h>

#include "ipg/families.hpp"
#include "ipg/spec.hpp"
#include "ipg/super.hpp"
#include "topo/hypercube.hpp"

namespace ipg {
namespace {

TEST(Spec, InverseClosureDetected) {
  IPGraphSpec closed;
  closed.name = "closed";
  closed.seed = make_label({1, 2, 3});
  closed.generators = {
      {"t", Permutation::transposition(3, 0, 1), false},
      {"r", Permutation::rotate_left(3, 1), false},
      {"r'", Permutation::rotate_right(3, 1), false},
  };
  EXPECT_TRUE(closed.inverse_closed());

  IPGraphSpec open = closed;
  open.generators.pop_back();  // drop r'
  EXPECT_FALSE(open.inverse_closed());
}

TEST(Spec, GeneratorClassification) {
  const SuperIPSpec hsn = make_hsn(3, hypercube_nucleus(2));
  const IPGraphSpec lifted = hsn.to_ip_spec();
  EXPECT_EQ(lifted.nucleus_generator_indices().size(), 2u);
  EXPECT_EQ(lifted.super_generator_indices().size(), 2u);
  // Nucleus generators come first in the lifted ordering.
  EXPECT_EQ(lifted.nucleus_generator_indices().front(), 0);
  EXPECT_EQ(lifted.super_generator_indices().front(), 2);
}

TEST(Spec, ValidationCatchesDefects) {
  IPGraphSpec s;
  s.name = "s";
  s.seed = make_label({1, 2});
  s.generators = {{"a", Permutation::transposition(2, 0, 1), false}};
  EXPECT_TRUE(s.valid());

  IPGraphSpec empty_seed = s;
  empty_seed.seed.clear();
  EXPECT_FALSE(empty_seed.valid());

  IPGraphSpec wrong_size = s;
  wrong_size.generators[0].perm = Permutation::transposition(3, 0, 1);
  EXPECT_FALSE(wrong_size.valid());

  IPGraphSpec duplicate_names = s;
  duplicate_names.generators.push_back(
      {"a", Permutation::rotate_left(2, 1), false});
  EXPECT_FALSE(duplicate_names.valid());

  IPGraphSpec identity_gen = s;
  identity_gen.generators[0].perm = Permutation::identity(2);
  EXPECT_FALSE(identity_gen.valid());
}

TEST(Super, BlockAccessors) {
  Label x = make_label({1, 2, 3, 4, 5, 6});
  EXPECT_EQ(block_of(x, 0, 2), make_label({1, 2}));
  EXPECT_EQ(block_of(x, 2, 2), make_label({5, 6}));
  set_block(x, 1, 2, make_label({9, 8}));
  EXPECT_EQ(x, make_label({1, 2, 9, 8, 5, 6}));
}

TEST(Super, SeedBlocksAndNucleusSpec) {
  const SuperIPSpec hsn = make_hsn(2, hypercube_nucleus(2));
  EXPECT_EQ(hsn.seed_block(0), make_label({1, 2, 3, 4}));
  EXPECT_EQ(hsn.seed_block(1), hsn.seed_block(0));
  const IPGraphSpec nucleus = hsn.nucleus_spec();
  EXPECT_EQ(nucleus.seed, hsn.seed_block(0));
  EXPECT_EQ(nucleus.generators.size(), hsn.nucleus_gens.size());
  // Custom block seed is honored.
  const IPGraphSpec alt = hsn.nucleus_spec(make_label({2, 1, 3, 4}));
  EXPECT_EQ(alt.seed, make_label({2, 1, 3, 4}));
}

TEST(Super, ValidityRules) {
  SuperIPSpec s = make_hsn(2, hypercube_nucleus(2));
  EXPECT_TRUE(s.valid());
  SuperIPSpec no_super = s;
  no_super.super_gens.clear();
  EXPECT_FALSE(no_super.valid());
  SuperIPSpec bad_l = s;
  bad_l.l = 1;
  EXPECT_FALSE(bad_l.valid());
  SuperIPSpec short_seed = s;
  short_seed.seed.pop_back();
  EXPECT_FALSE(short_seed.valid());
}

TEST(Super, NucleusModulesGroupBySuffix) {
  const SuperIPSpec s = make_hsn(2, hypercube_nucleus(2));
  const IPGraph g = build_super_ip_graph(s);
  const ModuleAssignment a = nucleus_modules(g, s.m);
  EXPECT_EQ(a.num_modules, 4u);
  for (Node u = 0; u < g.num_nodes(); ++u) {
    for (Node v = 0; v < g.num_nodes(); ++v) {
      const bool same_suffix =
          std::equal(g.labels()[u].begin() + s.m, g.labels()[u].end(),
                     g.labels()[v].begin() + s.m);
      EXPECT_EQ(a.module_of[u] == a.module_of[v], same_suffix);
    }
  }
}

}  // namespace
}  // namespace ipg
