// Tests for the packed-label codec: pack/unpack round trips, compiled
// permutation application, and the flat open-addressing label map.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <unordered_map>
#include <vector>

#include "ipg/families.hpp"
#include "ipg/packed_label.hpp"
#include "ipg/permutation.hpp"
#include "ipg/symmetric.hpp"
#include "topo/hypercube.hpp"
#include "util/narrow.hpp"

namespace ipg {
namespace {

TEST(LabelCodec, ShapeSelection) {
  EXPECT_EQ(LabelCodec::for_shape(8, 15).bits(), 4);
  EXPECT_EQ(LabelCodec::for_shape(8, 16).bits(), 8);
  EXPECT_EQ(LabelCodec::for_shape(32, 15).words(), 2);
  EXPECT_EQ(LabelCodec::for_shape(16, 15).words(), 1);
  EXPECT_FALSE(LabelCodec::for_shape(33, 15).valid());  // > 128 bits
  EXPECT_FALSE(LabelCodec::for_shape(17, 200).valid());
  EXPECT_FALSE(LabelCodec().valid());
}

TEST(LabelCodec, RoundTripBothWidths) {
  for (const Label& seed :
       {Label{0, 1, 2, 3, 14, 15}, Label{0, 100, 200, 255}}) {
    const LabelCodec codec = LabelCodec::for_label(seed);
    ASSERT_TRUE(codec.valid());
    const PackedLabel p = codec.pack(seed);
    EXPECT_EQ(codec.unpack(p), seed);
    for (int i = 0; i < static_cast<int>(seed.size()); ++i) {
      EXPECT_EQ(codec.symbol(p, i), seed[as_size(i)]);
    }
  }
}

TEST(LabelCodec, TwoWordRoundTrip) {
  Label seed(31);
  for (int i = 0; i < 31; ++i) seed[as_size(i)] = static_cast<std::uint8_t>(i % 16);
  const LabelCodec codec = LabelCodec::for_label(seed);
  ASSERT_EQ(codec.words(), 2);
  EXPECT_EQ(codec.unpack(codec.pack(seed)), seed);
}

TEST(LabelCodec, TryPackRejectsBadShapes) {
  const LabelCodec codec = LabelCodec::for_shape(4, 15);
  PackedLabel out;
  EXPECT_FALSE(codec.try_pack(Label{1, 2, 3}, out));       // wrong length
  EXPECT_FALSE(codec.try_pack(Label{1, 2, 3, 16}, out));   // symbol overflow
  EXPECT_TRUE(codec.try_pack(Label{1, 2, 3, 15}, out));
}

TEST(PackedPerm, MatchesVectorApplication) {
  std::mt19937 rng(7);
  for (int len : {4, 8, 16, 24, 31}) {
    Label x(as_size(len));
    std::vector<std::uint8_t> one_line(as_size(len));
    for (int i = 0; i < len; ++i) {
      x[as_size(i)] = static_cast<std::uint8_t>(rng() % 16);
      one_line[as_size(i)] = static_cast<std::uint8_t>(i);
    }
    const LabelCodec codec = LabelCodec::for_label(x);
    ASSERT_TRUE(codec.valid());
    for (int trial = 0; trial < 20; ++trial) {
      std::shuffle(one_line.begin(), one_line.end(), rng);
      const Permutation perm{one_line};
      const PackedPerm packed(codec, perm);
      EXPECT_EQ(codec.unpack(packed.apply(codec.pack(x))), perm.apply(x));
    }
  }
}

TEST(PackedLabelStore, StoresAndReports) {
  const LabelCodec codec = LabelCodec::for_shape(20, 9);  // 2 words
  PackedLabelStore store(codec.words());
  Label x(20);
  for (int n = 0; n < 100; ++n) {
    for (int i = 0; i < 20; ++i) x[as_size(i)] = static_cast<std::uint8_t>((n + i) % 10);
    store.push_back(codec.pack(x));
  }
  EXPECT_EQ(store.size(), 100u);
  for (int i = 0; i < 20; ++i) x[as_size(i)] = static_cast<std::uint8_t>((42 + i) % 10);
  EXPECT_EQ(codec.unpack(store[42]), x);
  EXPECT_GE(store.memory_bytes(), 100u * 16u);
}

TEST(PackedLabelMap, MatchesUnorderedMap) {
  const LabelCodec codec = LabelCodec::for_shape(8, 15);
  std::mt19937_64 rng(11);
  PackedLabelMap map;
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  Label x(8);
  for (int n = 0; n < 5000; ++n) {
    std::uint64_t key_bits = 0;
    for (int i = 0; i < 8; ++i) {
      x[as_size(i)] = static_cast<std::uint8_t>(rng() % 16);
      key_bits = key_bits << 4 | x[as_size(i)];
    }
    const auto [slot, inserted] =
        map.try_emplace(codec.pack(x), static_cast<std::uint64_t>(n));
    const auto [it, ref_inserted] = reference.try_emplace(key_bits, n);
    ASSERT_EQ(inserted, ref_inserted);
    ASSERT_EQ(*slot, it->second);
  }
  EXPECT_EQ(map.size(), reference.size());
  std::uint64_t visited = 0;
  map.for_each([&](const PackedLabel&, std::uint64_t) { ++visited; });
  EXPECT_EQ(visited, map.size());
  PackedLabelMap empty;
  EXPECT_EQ(empty.find(codec.pack(x)), nullptr);
}

TEST(PackedLabelMap, FindAfterGrowth) {
  const LabelCodec codec = LabelCodec::for_shape(6, 9);
  PackedLabelMap map;
  Label x(6);
  for (int n = 0; n < 1000; ++n) {
    for (int i = 0; i < 6; ++i) x[as_size(i)] = static_cast<std::uint8_t>((n >> i) % 10);
    map.try_emplace(codec.pack(x), static_cast<std::uint64_t>(n));
  }
  for (int n = 0; n < 1000; ++n) {
    for (int i = 0; i < 6; ++i) x[as_size(i)] = static_cast<std::uint8_t>((n >> i) % 10);
    const std::uint64_t* v = map.find(codec.pack(x));
    ASSERT_NE(v, nullptr);
    // Duplicate (n >> i) % 10 patterns keep the first inserted value.
    ASSERT_LE(*v, static_cast<std::uint64_t>(n));
  }
}

TEST(PackedStorage, EveryPaperSeedPacks) {
  // The families the paper enumerates explicitly all fit the codec — this
  // is what makes packed storage the common case in build_ip_graph.
  const std::vector<SuperIPSpec> specs = {
      make_hcn(3),
      make_hsn(3, hypercube_nucleus(4)),
      make_ring_cn(4, star_nucleus(3)),
      make_complete_cn(3, pancake_nucleus(3)),
      make_directed_cn(3, hypercube_nucleus(2)),
      make_super_flip(3, star_nucleus(3)),
      make_symmetric(make_hcn(2)),
  };
  for (const SuperIPSpec& spec : specs) {
    SCOPED_TRACE(spec.name);
    EXPECT_TRUE(LabelCodec::for_label(spec.seed).valid());
  }
}

}  // namespace
}  // namespace ipg
