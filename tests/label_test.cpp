// Unit tests for labels: hashing, rendering, construction helpers.
#include <gtest/gtest.h>

#include "ipg/label.hpp"

namespace ipg {
namespace {

TEST(Label, HashEqualForEqualLabels) {
  const Label a = make_label({1, 2, 2, 3});
  const Label b = make_label({1, 2, 2, 3});
  EXPECT_EQ(LabelHash{}(a), LabelHash{}(b));
}

TEST(Label, HashSensitiveToOrderAndContent) {
  const LabelHash h;
  EXPECT_NE(h(make_label({1, 2})), h(make_label({2, 1})));
  EXPECT_NE(h(make_label({1, 2})), h(make_label({1, 3})));
  EXPECT_NE(h(make_label({1})), h(make_label({1, 1})));
}

TEST(Label, ToStringSpacesSymbols) {
  EXPECT_EQ(label_to_string(make_label({1, 12, 3})), "1 12 3");
  EXPECT_EQ(label_to_string(Label{}), "");
}

TEST(Label, GroupedRenderingMatchesPaperStyle) {
  // "12 34 12 34" — the paper's super-symbol visualization.
  const Label x = make_label({1, 2, 3, 4, 1, 2, 3, 4});
  EXPECT_EQ(label_to_string_grouped(x, 4), "1234 1234");
  EXPECT_EQ(label_to_string_grouped(x, 2), "12 34 12 34");
}

TEST(Label, RepeatConcatenatesCopies) {
  const Label block = make_label({1, 2});
  EXPECT_EQ(repeat_label(block, 3), make_label({1, 2, 1, 2, 1, 2}));
  EXPECT_EQ(repeat_label(block, 1), block);
}

}  // namespace
}  // namespace ipg
