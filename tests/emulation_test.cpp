// Tests for hypercube emulation on HSNs: constant dilation and congestion
// per dimension round, hence constant slowdown (the Section 1 claim).
#include <gtest/gtest.h>

#include "algo/emulation.hpp"
#include "ipg/families.hpp"
#include "topo/hypercube.hpp"
#include "util/narrow.hpp"

namespace ipg {
namespace {

struct EmuCase {
  int l, n;
};

class HsnEmulation : public ::testing::TestWithParam<EmuCase> {};

TEST_P(HsnEmulation, DimensionRoundsHaveConstantCost) {
  const auto [l, n] = GetParam();
  const IPGraph hsn = build_super_ip_graph(make_hsn(l, hypercube_nucleus(n)));
  const auto stats = algo::emulate_hypercube_rounds(hsn, l, n);
  ASSERT_EQ(stats.per_dimension.size(), static_cast<std::size_t>(l * n));

  // Block-0 dimensions are native HSN links: dilation 1.
  for (int j = 0; j < n; ++j) {
    EXPECT_EQ(stats.per_dimension[as_size(j)].dilation, 1u) << "dim " << j;
  }
  // Every other dimension routes via swap-flip-swap: dilation <= 3.
  EXPECT_LE(stats.max_dilation, 3u);
  // Congestion stays constant (independent of l and n).
  EXPECT_LE(stats.max_congestion, 4u);
  EXPECT_LE(stats.slowdown_bound(), 12u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HsnEmulation,
                         ::testing::Values(EmuCase{2, 2}, EmuCase{2, 3},
                                           EmuCase{3, 2}),
                         [](const auto& tpi) {
                           return "l" + std::to_string(tpi.param.l) + "_n" +
                                  std::to_string(tpi.param.n);
                         });

TEST(HsnEmulation, CongestionCountsSharedArcs) {
  // Sanity on the smallest case: every dimension reports at least one use
  // per arc it touches, and native dimensions congest at most 2 (the two
  // directions of an exchange on one link).
  const IPGraph hsn = build_super_ip_graph(make_hsn(2, hypercube_nucleus(2)));
  const auto stats = algo::emulate_hypercube_rounds(hsn, 2, 2);
  for (int j = 0; j < 2; ++j) {
    EXPECT_LE(stats.per_dimension[as_size(j)].congestion, 2u);
    EXPECT_GE(stats.per_dimension[as_size(j)].congestion, 1u);
  }
}

}  // namespace
}  // namespace ipg
