// Property and concurrency tests for the serving tier's caching substrate:
//   - ShardedCache: the capacity bound survives adversarial all-distinct
//     streams (the 10^6-key memory regression), hits are byte-identical to
//     recomputation, admission stores only on the second distinct touch,
//     and the final counters are deterministic under randomized
//     multi-threaded hammering (run under TSan in CI);
//   - the QueryEngine route cache and SuperIPRouter schedule cache (the
//     previously unbounded map) inherit those bounds end to end;
//   - RequestRing: FIFO transfer, close-then-drain semantics, and exactly-
//     once delivery across concurrent producers and consumers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <future>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "ipg/families.hpp"
#include "ipg/symmetric.hpp"
#include "net/topology.hpp"
#include "route/query_engine.hpp"
#include "route/request_ring.hpp"
#include "route/path.hpp"
#include "route/service.hpp"
#include "route/super_ip_routing.hpp"
#include "util/narrow.hpp"
#include "util/prng.hpp"
#include "util/sharded_cache.hpp"

namespace ipg {
namespace {

using net::NodeId;
using route::QueryEngine;
using route::QueryEngineOptions;
using route::QueryKind;
using route::RequestRing;
using route::RouteAnswer;
using route::RouteQuery;

/// Deterministic value function the cache tests recompute against.
std::vector<int> value_of(std::uint64_t key) {
  std::vector<int> v(as_size(1 + key % 5));
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<int>((key * 31 + i) % 1000);
  }
  return v;
}

TEST(ShardedCache, CapacityNeverExceededUnderAdversarialDistinctStream) {
  // The memory regression the unbounded SuperIPRouter schedule map failed:
  // 10^6 never-repeating keys must churn, not grow.
  ShardedCache<std::uint64_t, std::uint64_t> cache(
      {.capacity = 1024, .shards = 16, .admission = false});
  const std::uint64_t bound = cache.capacity();
  const std::uint64_t memory_bound = cache.memory_bound_bytes();
  for (std::uint64_t key = 0; key < 1'000'000; ++key) {
    std::uint64_t out = 0;
    cache.get_or_compute(key, [&](std::uint64_t& v) { v = key * 3; }, out);
    ASSERT_EQ(out, key * 3);
    if ((key & 0xffff) == 0) {
      ASSERT_LE(cache.stats().entries, bound);
    }
  }
  const ShardedCacheStats s = cache.stats();
  EXPECT_LE(s.entries, bound);
  EXPECT_EQ(s.misses, 1'000'000u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_GT(s.evictions, 0u);
  // The configuration-implied bound is a constant of the instance.
  EXPECT_EQ(cache.memory_bound_bytes(), memory_bound);
}

TEST(ShardedCache, HitIsByteIdenticalToRecompute) {
  ShardedCache<std::uint64_t, std::vector<int>> cache(
      {.capacity = 256, .shards = 4, .admission = false});
  Xoshiro256 rng(0x11dead);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t key = rng.below(128);
    std::vector<int> out;
    cache.get_or_compute(key, [&](std::vector<int>& v) { v = value_of(key); },
                         out);
    ASSERT_EQ(out, value_of(key)) << "key " << key;
  }
  const ShardedCacheStats s = cache.stats();
  EXPECT_EQ(s.lookups(), 2000u);
  EXPECT_GT(s.hits, 0u);
  EXPECT_LE(s.misses, 128u);  // one miss per distinct key, no eviction
}

TEST(ShardedCache, AdmissionStoresOnlyOnSecondDistinctTouch) {
  ShardedCache<std::uint64_t, std::uint64_t> cache(
      {.capacity = 64, .shards = 1, .admission = true});
  std::uint64_t out = 0;
  const auto compute = [](std::uint64_t& v) { v = 7; };

  cache.get_or_compute(1, compute, out);  // first touch: computed, rejected
  ShardedCacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.entries, 0u);

  cache.get_or_compute(1, compute, out);  // second touch: admitted
  s = cache.stats();
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.admitted, 1u);
  EXPECT_EQ(s.entries, 1u);

  EXPECT_TRUE(cache.get_or_compute(1, compute, out));  // now a hit
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ShardedCache, ZeroCapacityComputesEveryTimeAndStoresNothing) {
  ShardedCache<std::uint64_t, std::uint64_t> cache(
      {.capacity = 0, .shards = 4, .admission = true});
  std::uint64_t out = 0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(
        cache.get_or_compute(42, [](std::uint64_t& v) { v = 9; }, out));
  }
  const ShardedCacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 10u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(cache.capacity(), 0u);
}

TEST(ShardedCache, DeterministicCountersUnderConcurrentHammering) {
  // Keyspace fits the cache (no eviction), admission off: per key the
  // first access is a miss and the rest are hits *whatever the thread
  // interleaving*, because get_or_compute is atomic per shard. The final
  // counters are then a pure function of the query multiset.
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 5000;
  constexpr std::uint64_t kKeyspace = 128;
  ShardedCache<std::uint64_t, std::vector<int>> cache(
      {.capacity = 512, .shards = 8, .admission = false});

  std::vector<std::vector<std::uint64_t>> streams(kThreads);
  std::set<std::uint64_t> distinct;
  for (int t = 0; t < kThreads; ++t) {
    Xoshiro256 rng(0xbeef + static_cast<std::uint64_t>(t));
    for (int i = 0; i < kOpsPerThread; ++i) {
      streams[as_size(t)].push_back(rng.below(kKeyspace));
      distinct.insert(streams[as_size(t)].back());
    }
  }

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, &streams, t] {
      std::vector<int> out;
      for (const std::uint64_t key : streams[as_size(t)]) {
        cache.get_or_compute(
            key, [&](std::vector<int>& v) { v = value_of(key); }, out);
        ASSERT_EQ(out, value_of(key));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const ShardedCacheStats s = cache.stats();
  EXPECT_EQ(s.lookups(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(s.misses, distinct.size());
  EXPECT_EQ(s.hits, s.lookups() - distinct.size());
  EXPECT_EQ(s.entries, distinct.size());
  EXPECT_EQ(s.evictions, 0u);
}

TEST(ShardedCache, TinyLfuKeepsHotSetResidentUnderZipfPressure) {
  // The admission filter's reason to exist: a zipf-like stream (a 32-key
  // hot set inside a long cold tail) against a 64-entry cache. Without
  // admission the cold tail churns the FIFO and keeps evicting the hot
  // set; with TinyLFU a cold key must out-score the eviction victim's
  // sketch estimate to displace it, so the hot set stays resident. The
  // stream is deterministic (fixed seed, single thread), so the counters
  // are exact and the comparison is stable.
  constexpr std::uint64_t kHotKeys = 32;
  constexpr int kOps = 20000;
  const ShardedCache<std::uint64_t, std::uint64_t>::Options lfu_opts{
      .capacity = 64, .shards = 1, .admission = true};
  const ShardedCache<std::uint64_t, std::uint64_t>::Options fifo_opts{
      .capacity = 64, .shards = 1, .admission = false};
  ShardedCache<std::uint64_t, std::uint64_t> lfu(lfu_opts);
  ShardedCache<std::uint64_t, std::uint64_t> fifo(fifo_opts);

  Xoshiro256 rng(0x21bf);
  std::uint64_t out = 0;
  const auto compute = [](std::uint64_t& v) { v = 1; };
  for (int i = 0; i < kOps; ++i) {
    // 70% of probability mass on the hot head, the rest spread over a
    // 2000-key tail whose members repeat only occasionally.
    const std::uint64_t key = rng.below(10) < 7
                                  ? rng.below(kHotKeys)
                                  : 1000 + rng.below(2000);
    lfu.get_or_compute(key, compute, out);
    fifo.get_or_compute(key, compute, out);
  }

  const ShardedCacheStats with = lfu.stats();
  const ShardedCacheStats without = fifo.stats();
  EXPECT_GT(with.hits, without.hits);
  // The hot head alone is ~0.7 * kOps touches; TinyLFU must convert most
  // of them into hits (the floor is far below the deterministic value, so
  // sketch-constant tweaks won't flake it).
  EXPECT_GT(with.hits, static_cast<std::uint64_t>(kOps) / 2);
  EXPECT_GT(with.rejected, 0u);  // the filter actually turned keys away
  EXPECT_LE(with.entries, lfu.capacity());
}

TEST(RouteCache, EngineCacheHitsServeByteIdenticalAnswers) {
  const SuperIPSpec spec = make_hsn(3, hypercube_nucleus(2));
  const net::ImplicitSuperIPTopology topo(spec);
  const QueryEngine engine(
      topo, QueryEngineOptions{.cache_capacity = 4096,
                               .cache_admission = false});
  Xoshiro256 rng(0x777);
  std::vector<RouteQuery> queries(300);
  for (RouteQuery& q : queries) {
    q.src = rng.below(topo.num_nodes());
    q.dst = rng.below(topo.num_nodes());
    q.kind = QueryKind::kFullRoute;
  }
  std::vector<RouteAnswer> cold(queries.size()), warm(queries.size());
  engine.answer_batch(queries, cold);
  const std::uint64_t misses_after_cold = engine.cache_stats().misses;
  engine.answer_batch(queries, warm);
  EXPECT_EQ(warm, cold);
  const ShardedCacheStats s = engine.cache_stats();
  EXPECT_EQ(s.misses, misses_after_cold);  // warm pass: all hits
  EXPECT_GT(s.hits, 0u);
}

TEST(RouteCache, EngineCacheEntriesStayWithinCapacity) {
  const SuperIPSpec spec = make_hsn(3, hypercube_nucleus(2));
  const net::ImplicitSuperIPTopology topo(spec);
  const QueryEngine engine(
      topo, QueryEngineOptions{.cache_capacity = 64,
                               .cache_shards = 4,
                               .cache_admission = true});
  const NodeId n = topo.num_nodes();
  // All-distinct-pairs adversarial stream through the *engine*.
  for (NodeId src = 0; src < n; ++src) {
    for (NodeId dst = 0; dst < n; ++dst) {
      (void)engine.answer({src, dst, QueryKind::kDistance});
    }
    ASSERT_LE(engine.cache_stats().entries, engine.cache_capacity());
  }
  EXPECT_LE(engine.cache_stats().entries, engine.cache_capacity());
}

TEST(RouteCache, EngineCountersDeterministicAcrossThreadCounts) {
  const SuperIPSpec spec = make_hsn(3, hypercube_nucleus(2));
  Xoshiro256 rng(0x8a8a);
  std::vector<RouteQuery> queries(2000);
  std::set<std::pair<NodeId, NodeId>> distinct;
  for (RouteQuery& q : queries) {
    q.src = rng.below(64);
    q.dst = rng.below(64);
    q.kind = QueryKind::kDistance;
    if (q.src != q.dst) distinct.insert({q.src, q.dst});
  }
  const std::uint64_t eligible = static_cast<std::uint64_t>(
      std::count_if(queries.begin(), queries.end(),
                    [](const RouteQuery& q) { return q.src != q.dst; }));

  for (const int threads : {1, 2, 8}) {
    const net::ImplicitSuperIPTopology topo(spec);
    const QueryEngine engine(
        topo, QueryEngineOptions{.cache_capacity = 8192,
                                 .cache_admission = false});
    std::vector<RouteAnswer> answers(queries.size());
    engine.answer_batch(queries, answers, ExecPolicy{threads});
    const ShardedCacheStats s = engine.cache_stats();
    EXPECT_EQ(s.lookups(), eligible) << "threads=" << threads;
    EXPECT_EQ(s.misses, distinct.size()) << "threads=" << threads;
    EXPECT_EQ(s.hits, eligible - distinct.size()) << "threads=" << threads;
    EXPECT_EQ(s.evictions, 0u) << "threads=" << threads;
  }
}

TEST(RouteCache, RouterScheduleCacheStaysBoundedAndCorrect) {
  // Regression for the formerly unbounded symmetric-schedule map: a
  // 4-block symmetric seed reaches up to 4! destination arrangements; a
  // capacity-4 cache must churn through them without growing and without
  // perturbing a single route.
  const SuperIPSpec spec =
      make_symmetric(make_complete_cn(4, hypercube_nucleus(2)));
  const net::ImplicitSuperIPTopology topo(spec);
  const SuperIPRouter router(spec, /*schedule_cache_capacity=*/4);
  ASSERT_FALSE(router.plain_seed());

  Xoshiro256 rng(0x5ca1e);
  Label src, dst;
  for (int trial = 0; trial < 400; ++trial) {
    topo.label_into(rng.below(topo.num_nodes()), src);
    topo.label_into(rng.below(topo.num_nodes()), dst);
    const GenPath got = router.route(src, dst);
    // Same length as the paper's reference and a valid path: eviction and
    // recomputation must never perturb a route.
    ASSERT_EQ(got.length(), route_super_ip(spec, src, dst).length());
    ASSERT_TRUE(verify_path(spec.to_ip_spec(), src, dst, got.gens));
    ASSERT_LE(router.schedule_cache_stats().entries,
              router.schedule_cache_capacity());
  }
  const ShardedCacheStats s = router.schedule_cache_stats();
  EXPECT_GT(s.lookups(), 0u);
  EXPECT_LE(s.entries, router.schedule_cache_capacity());
}

TEST(RequestRing, FifoOrderSingleThread) {
  RequestRing<int> ring(4);
  EXPECT_TRUE(ring.push(1));
  EXPECT_TRUE(ring.push(2));
  EXPECT_TRUE(ring.try_push(3));
  int v = 0;
  EXPECT_TRUE(ring.pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(ring.pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(ring.pop(v));
  EXPECT_EQ(v, 3);
}

TEST(RequestRing, TryPushRespectsCapacityAndCloseDrains) {
  RequestRing<int> ring(2);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_FALSE(ring.try_push(3));  // full
  ring.close();
  EXPECT_FALSE(ring.push(4));  // closed
  int v = 0;
  EXPECT_TRUE(ring.pop(v));  // close() drains before failing
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(ring.pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(ring.pop(v));  // drained + closed
}

TEST(RequestRing, MpmcDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 2;
  constexpr int kPerProducer = 2000;
  RequestRing<std::uint64_t> ring(8);  // small: forces blocking both ways

  std::vector<std::vector<std::uint64_t>> received(kConsumers);
  std::vector<std::thread> threads;
  threads.reserve(kProducers + kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&ring, &received, c] {
      std::uint64_t v = 0;
      while (ring.pop(v)) received[as_size(c)].push_back(v);
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&ring, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(ring.push(static_cast<std::uint64_t>(p) * kPerProducer +
                              static_cast<std::uint64_t>(i)));
      }
    });
  }
  for (int t = kConsumers; t < kProducers + kConsumers; ++t) {
    threads[as_size(t)].join();  // producers first
  }
  ring.close();
  for (int t = 0; t < kConsumers; ++t) threads[as_size(t)].join();

  std::vector<std::uint64_t> all;
  for (const auto& r : received) all.insert(all.end(), r.begin(), r.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), as_size(kProducers * kPerProducer));
  for (std::size_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i], i);  // exactly once, nothing lost or duplicated
  }
}

TEST(RequestRing, StatsCountPushesPopsDepthAndTryPushFailures) {
  RequestRing<int> ring(3);
  EXPECT_TRUE(ring.push(1));
  EXPECT_TRUE(ring.push(2));
  EXPECT_TRUE(ring.try_push(3));
  EXPECT_FALSE(ring.try_push(4));  // full
  int v = 0;
  EXPECT_TRUE(ring.pop(v));
  EXPECT_TRUE(ring.pop(v));
  route::RingStats s = ring.stats();
  EXPECT_EQ(s.pushes, 3u);
  EXPECT_EQ(s.pops, 2u);
  EXPECT_EQ(s.try_push_failures, 1u);
  EXPECT_EQ(s.enqueue_waits, 0u);  // nothing ever blocked
  EXPECT_EQ(s.max_depth, 3u);
  EXPECT_EQ(s.depth, 1u);
  EXPECT_TRUE(ring.pop(v));
  EXPECT_EQ(ring.stats().depth, 0u);
  EXPECT_EQ(ring.stats().max_depth, 3u);  // high-water mark sticks
}

TEST(RequestRing, StatsCountEnqueueWaitsWhenProducersBlock) {
  RequestRing<int> ring(1);
  ASSERT_TRUE(ring.push(1));  // ring now full
  std::thread producer([&ring] { ASSERT_TRUE(ring.push(2)); });
  // The producer increments enqueue_waits *before* blocking on the full
  // ring, so spinning on the counter is race-free: once it reads 1 the
  // producer is committed to the wait path and a pop releases it.
  while (ring.stats().enqueue_waits < 1) std::this_thread::yield();
  int v = 0;
  ASSERT_TRUE(ring.pop(v));
  EXPECT_EQ(v, 1);
  producer.join();
  ASSERT_TRUE(ring.pop(v));
  EXPECT_EQ(v, 2);
  const route::RingStats s = ring.stats();
  EXPECT_EQ(s.pushes, 2u);
  EXPECT_EQ(s.pops, 2u);
  EXPECT_GE(s.enqueue_waits, 1u);
  EXPECT_EQ(s.max_depth, 1u);
}

TEST(RequestRing, ServiceExposesRingStatsAfterDraining) {
  const SuperIPSpec spec = make_hsn(2, hypercube_nucleus(2));
  const net::ImplicitSuperIPTopology topo(spec);
  const QueryEngine engine(topo, QueryEngineOptions{});
  route::RouteService service(engine, {.workers = 2, .ring_capacity = 4});
  constexpr int kBatches = 16;
  std::vector<std::future<std::vector<RouteAnswer>>> futures;
  futures.reserve(kBatches);
  for (int b = 0; b < kBatches; ++b) {
    std::vector<RouteQuery> batch(8);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i] = {static_cast<NodeId>(b % 16),
                  static_cast<NodeId>((b + static_cast<int>(i) + 1) % 16),
                  QueryKind::kDistance};
    }
    futures.push_back(service.submit(std::move(batch)));
  }
  for (auto& f : futures) (void)f.get();
  const route::RingStats s = service.ring_stats();
  EXPECT_EQ(s.pushes, static_cast<std::uint64_t>(kBatches));
  EXPECT_EQ(s.pops, static_cast<std::uint64_t>(kBatches));
  EXPECT_EQ(s.depth, 0u);
  EXPECT_GE(s.max_depth, 1u);
  EXPECT_LE(s.max_depth, 4u);  // never beyond capacity
}

}  // namespace
}  // namespace ipg
