// Tests for the contract layer (static_check.hpp): the constexpr kernels
// agree with the runtime Permutation implementation they mirror, the
// constexpr Theorem 4.1 BFS agrees with ipg::compute_t, and the runtime
// audits (Graph::validate_csr, FaultSet::consistent) accept every valid
// structure the library produces. Including the header also compiles the
// static_assert suite into this test binary.
#include "ipg/static_check.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <vector>

#include "graph/builder.hpp"
#include "ipg/build.hpp"
#include "ipg/families.hpp"
#include "ipg/permutation.hpp"
#include "ipg/schedule.hpp"
#include "net/faulty_topology.hpp"
#include "topo/hypercube.hpp"
#include "topo/torus.hpp"
#include "util/narrow.hpp"

namespace ipg {
namespace {

template <int K>
Permutation to_runtime(const static_check::CPerm<K>& a) {
  return Permutation(std::vector<std::uint8_t>(a.begin(), a.end()));
}

TEST(StaticCheckKernels, MatchRuntimePermutation) {
  constexpr int k = 6;
  EXPECT_EQ(to_runtime<k>(static_check::identity<k>()),
            Permutation::identity(k));
  for (int i = 1; i < k; ++i) {
    EXPECT_EQ(to_runtime<k>(static_check::transposition<k>(0, i)),
              Permutation::transposition(k, 0, i));
    EXPECT_EQ(to_runtime<k>(static_check::flip_prefix<k>(i + 1)),
              Permutation::flip_prefix(k, i + 1));
  }
  for (int s = 0; s < k; ++s) {
    EXPECT_EQ(to_runtime<k>(static_check::rotate_left<k>(s)),
              Permutation::rotate_left(k, s));
    EXPECT_EQ(to_runtime<k>(static_check::rotate_right<k>(s)),
              Permutation::rotate_right(k, s));
  }
}

TEST(StaticCheckKernels, CompositionAndLiftsMatchRuntime) {
  constexpr int l = 4;
  constexpr int m = 3;
  const auto a = static_check::transposition<l>(1, 2);
  const auto b = static_check::rotate_left<l>(1);
  EXPECT_EQ(to_runtime<l>(static_check::then<l>(a, b)),
            to_runtime<l>(a).then(to_runtime<l>(b)));
  EXPECT_EQ(to_runtime<l * m>(static_check::expand_blocks<l, m>(a)),
            to_runtime<l>(a).expand_blocks(m));
  const auto nuc = static_check::transposition<m>(0, 2);
  EXPECT_EQ(to_runtime<l * m>(static_check::embed<l * m, m>(nuc, m)),
            to_runtime<m>(nuc).embed(l * m, m));
}

TEST(StaticCheckKernels, RankIsBijectiveOverS4) {
  std::array<bool, 24> hit{};
  Permutation p = Permutation::identity(4);
  std::vector<std::uint8_t> line(4);
  std::iota(line.begin(), line.end(), std::uint8_t{0});
  do {
    static_check::CPerm<4> a{};
    for (int i = 0; i < 4; ++i) a[as_size(i)] = line[as_size(i)];
    const int r = static_check::rank_of<4>(a);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, 24);
    EXPECT_FALSE(hit[as_size(r)]);
    hit[as_size(r)] = true;
  } while (std::next_permutation(line.begin(), line.end()));
}

TEST(StaticCheckTheorem41, ConstexprTMatchesScheduleEngine) {
  const IPGraphSpec nucleus = hypercube_nucleus(2);
  EXPECT_EQ(static_check::t_transpositions<3>(),
            compute_t(make_hsn(3, nucleus)));
  EXPECT_EQ(static_check::t_ring_shifts<4>(),
            compute_t(make_ring_cn(4, nucleus)));
  EXPECT_EQ(static_check::t_flips<4>(), compute_t(make_super_flip(4, nucleus)));
}

TEST(ValidateCsr, AcceptsBuiltGraphs) {
  EXPECT_TRUE(topo::hypercube(4).validate_csr());
  EXPECT_TRUE(topo::torus2d(3, 5).validate_csr());
  const IPGraph hcn = build_super_ip_graph(make_hcn(2));
  EXPECT_TRUE(hcn.graph.validate_csr());
  EXPECT_TRUE(Graph{}.validate_csr());
}

TEST(ValidateCsr, TransposeOfDirectedGraphIsCoherent) {
  // Directed rotator: transpose() runs its own coherence audit under
  // IPG_AUDIT; validate_csr covers the forward CSR here.
  const IPGraph rot = build_ip_graph(rotator_nucleus(4));
  EXPECT_TRUE(rot.graph.validate_csr());
  const TransposeCsr& t = rot.graph.transpose();
  EXPECT_EQ(t.targets.size(), rot.graph.num_arcs());
}

TEST(FaultSetAudit, ConsistentThroughFailRepairCycles) {
  net::FaultSet fs;
  EXPECT_TRUE(fs.consistent());
  fs.fail_node(3);
  fs.fail_node(3);  // overlapping windows count twice
  fs.fail_link(1, 2);
  fs.fail_link(2, 1);  // same channel, normalized key
  EXPECT_TRUE(fs.consistent());
  EXPECT_EQ(fs.failed_node_count(), 1u);
  EXPECT_EQ(fs.failed_link_count(), 1u);
  fs.repair_node(3);
  EXPECT_FALSE(fs.node_up(3));  // one window still open
  fs.repair_node(3);
  fs.repair_link(1, 2);
  fs.repair_link(2, 1);
  EXPECT_TRUE(fs.consistent());
  EXPECT_TRUE(fs.empty());
}

TEST(ContractMacros, CompileInEveryConfiguration) {
  // IPG_CONTRACT must be an expression usable in statement position whether
  // or not contracts are active; a true condition is always a no-op.
  IPG_CONTRACT(1 + 1 == 2);
  IPG_AUDIT(true);
  SUCCEED();
}

}  // namespace
}  // namespace ipg
