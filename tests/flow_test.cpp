// Tests for vertex-disjoint paths and vertex connectivity — the paper's
// fault-tolerance angle. Known connectivities: kappa(Q_n) = n,
// kappa(S_n) = n-1, kappa(Petersen) = 3, kappa(K_n) = n-1, kappa(C_n) = 2.
#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/flow.hpp"
#include "graph/metrics.hpp"
#include "ipg/families.hpp"
#include "ipg/symmetric.hpp"
#include "topo/hypercube.hpp"
#include "topo/misc.hpp"
#include "topo/star.hpp"

namespace ipg {
namespace {

TEST(Flow, DisjointPathsOnSmallGraphs) {
  // Path graph: exactly one path end to end.
  EXPECT_EQ(max_vertex_disjoint_paths(topo::path(5), 0, 4), 1);
  // Cycle: two ways around.
  EXPECT_EQ(max_vertex_disjoint_paths(topo::cycle(6), 0, 3), 2);
  // Complete graph: the direct edge plus one through each other node.
  EXPECT_EQ(max_vertex_disjoint_paths(topo::complete(5), 0, 1), 4);
}

TEST(Flow, DisjointPathsMatchDegreeInHypercube) {
  const Graph q = topo::hypercube(4);
  // Antipodal pair: n disjoint paths (Saad-Schultz).
  EXPECT_EQ(max_vertex_disjoint_paths(q, 0, 15), 4);
  EXPECT_EQ(max_vertex_disjoint_paths(q, 0, 1), 4);
}

TEST(Flow, VertexConnectivityKnownValues) {
  EXPECT_EQ(vertex_connectivity(topo::path(4)), 1);
  EXPECT_EQ(vertex_connectivity(topo::cycle(7)), 2);
  EXPECT_EQ(vertex_connectivity(topo::complete(6)), 5);
  EXPECT_EQ(vertex_connectivity(topo::petersen()), 3);
  for (int n = 2; n <= 6; ++n) {
    EXPECT_EQ(vertex_connectivity(topo::hypercube(n)), n) << "Q" << n;
  }
  for (int n = 3; n <= 5; ++n) {
    EXPECT_EQ(vertex_connectivity(topo::star_graph(n)), n - 1) << "S" << n;
  }
}

TEST(Flow, DisconnectedGraphHasZeroConnectivity) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  EXPECT_EQ(vertex_connectivity(std::move(b).build()), 0);
}

TEST(Flow, CutVertexDetected) {
  // Two triangles sharing one vertex: connectivity 1.
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 2);
  EXPECT_EQ(vertex_connectivity(std::move(b).build()), 1);
}

TEST(Flow, HcnConnectivityLimitedByXXNodes) {
  // HCN(n,n) without diameter links: the (x,x) nodes have degree n, so
  // kappa <= n; it is exactly n (fault tolerance motivates the original
  // HCN's diameter links, which restore degree n+1).
  for (int n = 2; n <= 3; ++n) {
    const IPGraph hcn = build_super_ip_graph(make_hcn(n));
    EXPECT_EQ(vertex_connectivity(hcn.graph), n) << "HCN(" << n << ")";
    const Graph full = add_hcn_diameter_links(hcn, n);
    EXPECT_GE(vertex_connectivity(full), n);
  }
}

TEST(Flow, SymmetricVariantsAreMaximallyConnected) {
  // Cayley graphs from connected generator sets achieve connectivity equal
  // to their degree here (checked, not assumed).
  const IPGraph sym = build_super_ip_graph(
      make_symmetric(make_hsn(2, hypercube_nucleus(2))));
  const auto deg = degree_stats(sym.graph);
  ASSERT_TRUE(deg.regular);
  EXPECT_EQ(vertex_connectivity(sym.graph), static_cast<int>(deg.max_degree));
}

class ConnectivityBound : public ::testing::TestWithParam<int> {};

TEST_P(ConnectivityBound, AtMostMinDegreeOnSuperIpGraphs) {
  const int l = GetParam();
  const IPGraph g = build_super_ip_graph(make_ring_cn(l, hypercube_nucleus(2)));
  const auto deg = degree_stats(g.graph);
  const int kappa = vertex_connectivity(g.graph);
  EXPECT_LE(kappa, static_cast<int>(deg.min_degree));
  EXPECT_GE(kappa, 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConnectivityBound, ::testing::Values(2, 3));

}  // namespace
}  // namespace ipg
