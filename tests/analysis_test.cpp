// Tests for the analysis layer: every closed form is checked against BFS
// measurement on enumerable instances, the Moore bound behaves, and cost
// points assemble correctly.
#include <gtest/gtest.h>

#include "analysis/bounds.hpp"
#include "analysis/cost_model.hpp"
#include "analysis/formulas.hpp"
#include "graph/metrics.hpp"
#include "ipg/families.hpp"
#include "topo/hypercube.hpp"
#include "topo/misc.hpp"

namespace ipg {
namespace {

TEST(Formulas, SuperFamilyFormulasMatchMeasurement) {
  // The Fig. 2/4 curves rest on these: validate degree/diameter/N for all
  // four families over Q_2 and Q_3 nuclei.
  for (const int n : {2, 3}) {
    const IPGraphSpec nucleus = hypercube_nucleus(n);
    const TopoNums nums = hypercube_nums(n);
    for (const int l : {2, 3}) {
      const struct {
        SuperNums predicted;
        SuperIPSpec spec;
      } cases[] = {
          {hsn_nums(l, nums), make_hsn(l, nucleus)},
          {ring_cn_nums(l, nums), make_ring_cn(l, nucleus)},
          {complete_cn_nums(l, nums), make_complete_cn(l, nucleus)},
          {super_flip_nums(l, nums), make_super_flip(l, nucleus)},
      };
      for (const auto& c : cases) {
        const IPGraph g = build_super_ip_graph(c.spec);
        const auto p = profile(g.graph);
        EXPECT_EQ(p.nodes, c.predicted.nodes) << c.predicted.name;
        EXPECT_EQ(p.degree, c.predicted.degree) << c.predicted.name;
        EXPECT_EQ(p.diameter, c.predicted.diameter) << c.predicted.name;
      }
    }
  }
}

TEST(Formulas, PetersenNucleusCnFormula) {
  const SuperNums predicted = ring_cn_nums(3, petersen_nums());
  const TupleNetwork net = build_super_network_direct(
      topo::petersen(), 3, ring_shift_super_gens(3));
  const auto p = profile(net.graph);
  EXPECT_EQ(p.nodes, predicted.nodes);
  EXPECT_EQ(p.degree, predicted.degree);
  EXPECT_EQ(p.diameter, predicted.diameter);
}

TEST(Formulas, CompleteNucleusCnFormula) {
  const SuperNums predicted = ring_cn_nums(3, complete_nums(4));
  const IPGraph g = build_super_ip_graph(make_ring_cn(3, complete_nucleus(4)));
  const auto p = profile(g.graph);
  EXPECT_EQ(p.nodes, predicted.nodes);
  EXPECT_EQ(p.degree, predicted.degree);
  EXPECT_EQ(p.diameter, predicted.diameter);
}

TEST(Bounds, MooreBoundSmallCases) {
  // K_{d+1} meets the bound with diameter 1.
  EXPECT_EQ(moore_diameter_lower_bound(4, 3), 1u);
  // Petersen is a Moore graph: 10 nodes, degree 3, diameter exactly 2.
  EXPECT_EQ(moore_diameter_lower_bound(10, 3), 2u);
  // One more node forces diameter 3 at degree 3... 1+3+6 = 10 < 11.
  EXPECT_EQ(moore_diameter_lower_bound(11, 3), 3u);
  EXPECT_EQ(moore_diameter_lower_bound(1, 5), 0u);
  // Degree 2: a cycle; diameter >= ceil((N-1)/2).
  EXPECT_EQ(moore_diameter_lower_bound(9, 2), 4u);
}

TEST(Bounds, OptimalityFactorOrdersFamiliesSensibly) {
  // Hypercubes are far from degree/diameter optimal; Petersen is optimal.
  EXPECT_DOUBLE_EQ(
      diameter_optimality_factor(10, 3, 2), 1.0);
  const auto q10 = hypercube_nums(10);
  EXPECT_GT(diameter_optimality_factor(q10.nodes, q10.degree, q10.diameter),
            2.0);
}

TEST(Bounds, Theorem44SuperIpGraphsApproachTheBound) {
  // GH-nucleus cyclic networks should sit within a small constant of the
  // Moore bound, and the factor should not blow up with scale.
  const std::vector<int> radices{4, 4, 4};
  const TopoNums gh = generalized_hypercube_nums(radices);  // 64 nodes, deg 9, D 3
  for (const int l : {2, 4, 6, 8}) {
    const SuperNums s = complete_cn_nums(l, gh);
    const double factor =
        diameter_optimality_factor(s.nodes, s.degree, s.diameter);
    EXPECT_LT(factor, 4.0) << "l=" << l;
  }
}

TEST(CostModel, CostPointArithmetic) {
  CostPoint p;
  p.nodes = 1024;
  p.degree = 5;
  p.diameter = 9;
  p.i_degree = 2;
  p.i_diameter = 3;
  EXPECT_DOUBLE_EQ(p.log2_nodes(), 10.0);
  EXPECT_DOUBLE_EQ(p.dd_cost(), 45.0);
  EXPECT_DOUBLE_EQ(p.id_cost(), 18.0);
  EXPECT_DOUBLE_EQ(p.ii_cost(), 6.0);
}

TEST(CostModel, SweepsCoverRequestedRange) {
  const auto hc = sweep_hypercube(4, 10, 4);
  ASSERT_EQ(hc.size(), 7u);
  EXPECT_EQ(hc.front().nodes, 16u);
  EXPECT_EQ(hc.back().nodes, 1024u);
  EXPECT_DOUBLE_EQ(hc.back().i_degree, 6.0);

  const auto hsn = sweep_hsn(2, 5, hypercube_nums(4));
  ASSERT_EQ(hsn.size(), 4u);
  for (std::size_t i = 0; i < hsn.size(); ++i) {
    const int l = 2 + static_cast<int>(i);
    EXPECT_DOUBLE_EQ(hsn[i].i_degree, l - 1.0);
    EXPECT_EQ(hsn[i].diameter, static_cast<Dist>(4 * l + l - 1));
  }

  const auto ring = sweep_ring_cn(3, 6, hypercube_nums(4));
  for (const auto& p : ring) EXPECT_DOUBLE_EQ(p.i_degree, 2.0);
}

TEST(CostModel, TorusSweepUsesTileGeometry) {
  const auto pts = sweep_torus2d({8, 16}, 4, 4);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0].i_degree, 1.0);
  EXPECT_EQ(pts[0].i_diameter, 2u);  // 2x2 tile torus
  EXPECT_EQ(pts[1].i_diameter, 4u);  // 4x4 tile torus
}

TEST(CostModel, DeBruijnAndCccSweeps) {
  const auto db = sweep_de_bruijn(6, 8, 4);
  EXPECT_EQ(db.size(), 3u);
  EXPECT_DOUBLE_EQ(db[0].i_degree, 4.0);
  const auto ccc = sweep_ccc(3, 5);
  EXPECT_EQ(ccc.size(), 3u);
  EXPECT_DOUBLE_EQ(ccc[0].i_degree, 1.0);
}

}  // namespace
}  // namespace ipg
