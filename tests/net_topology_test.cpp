// Differential tests for the topology abstraction: the implicit super-IP
// topology must agree with the materialized graph arc-for-arc (targets AND
// generator tags) on every family, plain and symmetric — the guarantee
// that lets routing/simulation/analysis swap representations freely.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/graph.hpp"
#include "ipg/families.hpp"
#include "ipg/symmetric.hpp"
#include "net/topology.hpp"
#include "topo/hypercube.hpp"

namespace ipg::net {
namespace {

std::vector<SuperIPSpec> all_family_specs() {
  std::vector<SuperIPSpec> specs = {
      make_hcn(2),
      make_hsn(3, hypercube_nucleus(2)),
      make_ring_cn(3, star_nucleus(3)),
      make_complete_cn(3, hypercube_nucleus(2)),
      make_directed_cn(3, star_nucleus(3)),
      make_super_flip(3, hypercube_nucleus(2)),
  };
  // Symmetric variants of every family shape (Section 3.5).
  const std::size_t plain_count = specs.size();
  for (std::size_t i = 0; i < plain_count; ++i) {
    specs.push_back(make_symmetric(specs[i]));
  }
  return specs;
}

TEST(ImplicitTopology, NeighborsMatchMaterializedArcForArc) {
  for (const SuperIPSpec& spec : all_family_specs()) {
    SCOPED_TRACE(spec.name);
    const IPGraph g = build_super_ip_graph(spec);
    const MaterializedTopology mat(g);
    const ImplicitSuperIPTopology imp(spec);
    ASSERT_EQ(imp.num_nodes(), g.num_nodes());

    // Materialized ids are BFS discovery order, implicit ids are ranks;
    // translate through the labels (a bijection by Theorem 3.2 / §3.5).
    std::vector<NodeId> rank_of(g.num_nodes());
    for (Node u = 0; u < g.num_nodes(); ++u) {
      const NodeId r = imp.node_of(g.labels()[u]);
      ASSERT_NE(r, kInvalidNodeId);
      rank_of[u] = r;
    }

    std::vector<TopoArc> expected, actual;
    for (Node u = 0; u < g.num_nodes(); ++u) {
      mat.neighbors(u, expected);
      for (TopoArc& a : expected) a.to = rank_of[a.to];
      std::sort(expected.begin(), expected.end());
      imp.neighbors(rank_of[u], actual);
      ASSERT_EQ(actual, expected) << "node " << u;
    }
  }
}

TEST(ImplicitTopology, LabelNodeRoundTrip) {
  const SuperIPSpec spec = make_hsn(2, hypercube_nucleus(3));
  const ImplicitSuperIPTopology topo(spec);
  for (NodeId u = 0; u < topo.num_nodes(); ++u) {
    EXPECT_EQ(topo.node_of(topo.label_of(u)), u);
  }
  EXPECT_EQ(topo.node_of(Label{1, 2, 3}), kInvalidNodeId);
}

TEST(ImplicitTopology, NeighborViaAgreesWithNeighborList) {
  const SuperIPSpec spec = make_ring_cn(3, hypercube_nucleus(2));
  const ImplicitSuperIPTopology topo(spec);
  std::vector<TopoArc> arcs;
  for (NodeId u = 0; u < topo.num_nodes(); ++u) {
    topo.neighbors(u, arcs);
    for (const TopoArc& a : arcs) {
      EXPECT_EQ(topo.neighbor_via(u, a.tag), a.to);
    }
  }
}

TEST(ImplicitTopology, GenIsSuperSplitsGeneratorList) {
  const SuperIPSpec spec = make_hcn(2);
  const ImplicitSuperIPTopology topo(spec);
  const int nucleus = topo.nucleus_generator_count();
  ASSERT_EQ(nucleus, static_cast<int>(spec.nucleus_gens.size()));
  for (int gen = 0; gen < topo.num_generators(); ++gen) {
    EXPECT_EQ(topo.gen_is_super(gen), gen >= nucleus);
  }
}

TEST(ImplicitTopology, RankRangeCursorMatchesNeighborsOnEveryFamily) {
  // The cursor is the sharded engine's slice walk: for every family shape
  // (plain and symmetric) it must visit exactly [first, last) in rank
  // order and report arcs byte-identical to neighbors().
  for (const SuperIPSpec& spec : all_family_specs()) {
    SCOPED_TRACE(spec.name);
    const ImplicitSuperIPTopology topo(spec);
    const NodeId n = topo.num_nodes();

    std::vector<TopoArc> expected;
    RankRangeCursor whole = topo.rank_range(0, n);
    NodeId u = kInvalidNodeId;
    NodeId visited = 0;
    while (whole.next(u)) {
      ASSERT_EQ(u, visited);
      topo.neighbors(u, expected);
      EXPECT_EQ(whole.arcs(), expected) << "rank " << u;
      // arcs() is idempotent until the next advance.
      EXPECT_EQ(whole.arcs(), expected);
      ++visited;
    }
    EXPECT_EQ(visited, n);
    EXPECT_FALSE(whole.next(u));  // exhausted cursors stay exhausted
  }
}

TEST(ImplicitTopology, RankRangeCursorPartialAndEmptyRanges) {
  const SuperIPSpec spec = make_hsn(2, hypercube_nucleus(3));
  const ImplicitSuperIPTopology topo(spec);
  const NodeId n = topo.num_nodes();
  ASSERT_GE(n, 16u);

  // A range straddling super-symbol digit spans (Q3 nucleus: spans of 8).
  RankRangeCursor mid = topo.rank_range(5, 19);
  std::vector<TopoArc> expected;
  NodeId u = kInvalidNodeId;
  for (NodeId want = 5; want < 19; ++want) {
    ASSERT_TRUE(mid.next(u));
    EXPECT_EQ(u, want);
    topo.neighbors(u, expected);
    EXPECT_EQ(mid.arcs(), expected);
  }
  EXPECT_FALSE(mid.next(u));

  RankRangeCursor empty = topo.rank_range(7, 7);
  EXPECT_FALSE(empty.next(u));
}

TEST(ImplicitTopology, TenMillionNodeInstanceNeverMaterialized) {
  // HSN(6, Q4): 16^6 = 16,777,216 nodes. Construction plus adjacency
  // queries touch O(nucleus) memory only.
  const SuperIPSpec spec = make_hsn(6, hypercube_nucleus(4));
  const ImplicitSuperIPTopology topo(spec);
  ASSERT_EQ(topo.num_nodes(), 16'777'216u);

  std::vector<TopoArc> arcs;
  Label x;
  for (const NodeId u : {NodeId{0}, NodeId{1'234'567}, topo.num_nodes() - 1}) {
    topo.label_into(u, x);
    EXPECT_EQ(topo.node_of(x), u);
    topo.neighbors(u, arcs);
    // Theorem 3.1: degree bounded by the generator count; HSN degree is
    // exactly nucleus degree + 2 super links when all generators move.
    EXPECT_GT(arcs.size(), 0u);
    EXPECT_LE(static_cast<int>(arcs.size()), topo.num_generators());
    for (const TopoArc& a : arcs) {
      EXPECT_LT(a.to, topo.num_nodes());
      EXPECT_NE(a.to, u);
    }
  }
}

}  // namespace
}  // namespace ipg::net
