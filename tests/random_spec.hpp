#pragma once
// Reusable random SuperIPSpec generator for property-based tests: draws a
// nucleus, a level count, a family shape and (when the label fits) the
// symmetric variant from a caller-owned PRNG, keeping instance sizes small
// enough to materialize and sweep (a few thousand nodes at most). Every
// draw is a valid super-IP seed, so properties quantify over the whole
// family x nucleus design space rather than a hand-picked list.

#include <cstdint>

#include "ipg/families.hpp"
#include "ipg/spec.hpp"
#include "ipg/super.hpp"
#include "ipg/symmetric.hpp"
#include "util/prng.hpp"

namespace ipg::testing {

inline SuperIPSpec random_super_ip_spec(Xoshiro256& rng) {
  IPGraphSpec nucleus;
  switch (rng.below(5)) {
    case 0:
      nucleus = hypercube_nucleus(2 + static_cast<int>(rng.below(2)));
      break;
    case 1:
      nucleus = star_nucleus(3);
      break;
    case 2:
      nucleus = cycle_nucleus(3 + static_cast<int>(rng.below(3)));
      break;
    case 3:
      nucleus = complete_nucleus(3);
      break;
    default:
      nucleus = bubble_sort_nucleus(3);
      break;
  }
  const int l = 2 + static_cast<int>(rng.below(2));
  SuperIPSpec spec;
  switch (rng.below(5)) {
    case 0:
      spec = make_hsn(l, nucleus);
      break;
    case 1:
      spec = make_ring_cn(l, nucleus);
      break;
    case 2:
      spec = make_complete_cn(l, nucleus);
      break;
    case 3:
      spec = make_directed_cn(l, nucleus);
      break;
    default:
      spec = make_super_flip(l, nucleus);
      break;
  }
  // Half the draws exercise the Cayley (symmetric, Section 3.5) variant.
  if (rng.below(2) == 0 && spec.label_length() <= 255) {
    spec = make_symmetric(spec);
  }
  return spec;
}

}  // namespace ipg::testing
