// Section 3.4: "super-flip networks can emulate cyclic-shift networks
// efficiently since flip super-generators can emulate transposition and
// cyclic-shift super-generators efficiently, while the latter cannot
// emulate the former as efficiently." Verified at the permutation level:
// every shift is a composition of <= 3 flips and every transposition of
// <= 4 (constants independent of l),
// while expressing a flip with shifts needs Omega(l) of them.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "ipg/families.hpp"

namespace ipg {
namespace {

/// BFS over compositions: fewest generators from `gens` whose left-to-
/// right composition equals `target` (-1 if not within `max_depth`).
int composition_distance(const std::vector<Permutation>& gens,
                         const Permutation& target, int max_depth) {
  const Permutation id = Permutation::identity(target.size());
  if (target == id) return 0;
  // Key permutations by their one-line form.
  const auto key = [](const Permutation& p) {
    std::string k;
    for (int i = 0; i < p.size(); ++i) k += static_cast<char>('a' + p[i]);
    return k;
  };
  std::map<std::string, int> seen;
  std::vector<Permutation> frontier{id};
  seen[key(id)] = 0;
  for (int depth = 1; depth <= max_depth; ++depth) {
    std::vector<Permutation> next;
    for (const auto& p : frontier) {
      for (const auto& g : gens) {
        const Permutation q = p.then(g);
        if (seen.emplace(key(q), depth).second) {
          if (q == target) return depth;
          next.push_back(q);
        }
      }
    }
    frontier = std::move(next);
  }
  return -1;
}

std::vector<Permutation> perms_of(const std::vector<Generator>& gens) {
  std::vector<Permutation> out;
  for (const auto& g : gens) out.push_back(g.perm);
  return out;
}

TEST(FlipEmulation, ShiftIsTwoFlips) {
  // L = F_l o F_(l-1): one cyclic shift costs exactly two flips.
  for (int l = 3; l <= 7; ++l) {
    const Permutation composed =
        Permutation::flip_prefix(l, l).then(Permutation::flip_prefix(l, l - 1));
    EXPECT_EQ(composed, Permutation::rotate_left(l, 1)) << "l=" << l;
  }
}

TEST(FlipEmulation, EveryShiftWithinThreeFlips) {
  for (int l = 3; l <= 6; ++l) {
    const auto flips = perms_of(flip_super_gens(l));
    for (int s = 1; s < l; ++s) {
      const int d = composition_distance(flips, Permutation::rotate_left(l, s), 4);
      ASSERT_GE(d, 1) << "l=" << l << " s=" << s;
      EXPECT_LE(d, 3) << "l=" << l << " s=" << s;
    }
  }
}

TEST(FlipEmulation, EveryTranspositionWithinFourFlips) {
  for (int l = 3; l <= 6; ++l) {
    const auto flips = perms_of(flip_super_gens(l));
    for (int i = 1; i < l; ++i) {
      const int d = composition_distance(
          flips, Permutation::transposition(l, 0, i), 5);
      ASSERT_GE(d, 1) << "l=" << l << " i=" << i;
      EXPECT_LE(d, 4) << "l=" << l << " i=" << i;
    }
  }
}

TEST(FlipEmulation, ShiftsCannotEmulateFlipsCheaply) {
  // The reverse direction degrades with l: expressing F_l with ring
  // shifts takes at least l-1 moves (it is not a power of the rotation
  // for l >= 3, and the rotation subgroup has only l elements).
  for (int l = 4; l <= 6; ++l) {
    const auto shifts = perms_of(ring_shift_super_gens(l));
    const int d = composition_distance(shifts, Permutation::flip_prefix(l, l),
                                       /*max_depth=*/l);
    EXPECT_EQ(d, -1) << "l=" << l;  // flips aren't rotations at all
  }
}

}  // namespace
}  // namespace ipg
