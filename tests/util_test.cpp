// Unit tests for util/: PRNG determinism and distribution sanity, table
// rendering.
#include <gtest/gtest.h>

#include <sstream>

#include "util/prng.hpp"
#include "util/table.hpp"

namespace ipg {
namespace {

TEST(Prng, DeterministicForEqualSeeds) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a() == b();
  EXPECT_LT(equal, 4);
}

TEST(Prng, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Prng, BelowIsRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) counts[rng.below(kBuckets)]++;
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Prng, UniformInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Prng, ExponentialHasRequestedMean) {
  Xoshiro256 rng(5);
  const double rate = 4.0;
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / 20000.0, 1.0 / rate, 0.02);
}

TEST(Prng, SplitmixAdvancesState) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "N"});
  t.add_row({"Q4", "16"});
  t.add_row({"star", "120"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("120"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, FormatsNumbers) {
  EXPECT_EQ(Table::num(std::int64_t{-5}), "-5");
  EXPECT_EQ(Table::num(std::uint64_t{7}), "7");
  EXPECT_EQ(Table::fixed(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace ipg
