// Differential harness for the batched routing query engine: every fast
// path (packed kernels, route cache, thread-parallel batches, the service
// loop) is pinned to a scalar reference —
//   - label backend vs route_super_ip (the paper's Theorem 4.1/4.3
//     reference implementation), bit-identical gens/distances/next-hops;
//   - BFS backend vs BfsScratch distances on the materialized graph, plus
//     hop-by-hop route validity (every step an arc of the topology),
//     faulty topologies included;
//   - answer_batch at 1/2/8 threads vs the serial path, bit-identical.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graph/bfs.hpp"
#include "ipg/build.hpp"
#include "ipg/families.hpp"
#include "ipg/super.hpp"
#include "ipg/symmetric.hpp"
#include "net/faulty_topology.hpp"
#include "net/topology.hpp"
#include "route/query_engine.hpp"
#include "route/service.hpp"
#include "route/super_ip_routing.hpp"
#include "random_spec.hpp"
#include "util/narrow.hpp"
#include "util/prng.hpp"

namespace ipg {
namespace {

using net::NodeId;
using route::AnswerStatus;
using route::QueryEngine;
using route::QueryEngineOptions;
using route::QueryKind;
using route::RouteAnswer;
using route::RouteQuery;

std::vector<SuperIPSpec> all_family_specs() {
  std::vector<SuperIPSpec> specs = {
      make_hcn(2),
      make_hsn(3, hypercube_nucleus(2)),
      make_ring_cn(3, star_nucleus(3)),
      make_complete_cn(3, hypercube_nucleus(2)),
      make_directed_cn(3, star_nucleus(3)),
      make_super_flip(3, hypercube_nucleus(2)),
  };
  const std::size_t plain_count = specs.size();
  for (std::size_t i = 0; i < plain_count; ++i) {
    specs.push_back(make_symmetric(specs[i]));
  }
  return specs;
}

/// Random (src, dst) query batch over [0, n), all three kinds.
std::vector<RouteQuery> random_queries(Xoshiro256& rng, NodeId n,
                                       std::size_t count) {
  std::vector<RouteQuery> qs(count);
  for (std::size_t i = 0; i < count; ++i) {
    qs[i].src = rng.below(n);
    qs[i].dst = rng.below(n);
    qs[i].kind = static_cast<QueryKind>(rng.below(3));
  }
  return qs;
}

/// Walks `gens` from `src` through the topology, asserting every step is a
/// real arc (matching tag, target != current) and returning the endpoint.
NodeId walk_route(const net::Topology& topo, NodeId src,
                  const std::vector<int>& gens) {
  std::vector<net::TopoArc> arcs;
  NodeId u = src;
  for (const int g : gens) {
    topo.neighbors(u, arcs);
    NodeId next = net::kInvalidNodeId;
    for (const net::TopoArc& a : arcs) {
      if (a.tag == g) {
        next = a.to;
        break;
      }
    }
    EXPECT_NE(next, net::kInvalidNodeId)
        << "route step " << g << " is not an arc at node " << u;
    if (next == net::kInvalidNodeId) return net::kInvalidNodeId;
    u = next;
  }
  return u;
}

/// Pins the label backend's fast path to its scalar references on sampled
/// pairs: gens bit-identical to SuperIPRouter::route (the byte-vector
/// reference the packed kernel reimplements), lengths identical to
/// route_super_ip (the paper's standalone Theorem 4.1/4.3 implementation —
/// its nucleus-sort tie-breaks differ, its lengths may not), every hop a
/// real arc, and next-hop consistent with the first generator.
void check_label_backend_differential(const SuperIPSpec& spec,
                                      std::uint64_t seed) {
  const net::ImplicitSuperIPTopology topo(spec);
  const QueryEngine engine(topo);
  const SuperIPRouter reference(spec);
  Xoshiro256 rng(seed);
  const NodeId n = topo.num_nodes();

  std::vector<RouteQuery> queries(120);
  for (RouteQuery& q : queries) {
    q.src = rng.below(n);
    q.dst = rng.below(n);
    q.kind = QueryKind::kFullRoute;
  }
  std::vector<RouteAnswer> fast(queries.size()), scalar(queries.size());
  engine.answer_batch(queries, fast);
  engine.answer_batch_scalar(queries, scalar);

  Label src_label, dst_label;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(fast[i], scalar[i]) << spec.name << " query " << i;
    ASSERT_EQ(fast[i].status, AnswerStatus::kOk);

    topo.label_into(queries[i].src, src_label);
    topo.label_into(queries[i].dst, dst_label);
    const GenPath ref = reference.route(src_label, dst_label);
    ASSERT_EQ(fast[i].gens, ref.gens) << spec.name << " query " << i;
    ASSERT_EQ(fast[i].distance, static_cast<std::int32_t>(ref.gens.size()));

    const GenPath paper = route_super_ip(spec, src_label, dst_label);
    ASSERT_EQ(fast[i].distance, static_cast<std::int32_t>(paper.gens.size()))
        << spec.name << " query " << i;

    if (!ref.gens.empty()) {
      ASSERT_EQ(fast[i].first_gen, ref.gens.front());
      ASSERT_EQ(fast[i].next_hop,
                topo.neighbor_via(queries[i].src, ref.gens.front()));
      ASSERT_EQ(walk_route(topo, queries[i].src, fast[i].gens),
                queries[i].dst);
    }
  }
}

TEST(QueryEngine, LabelBackendMatchesReferenceRouterOnAllFamilyVariants) {
  std::uint64_t seed = 0x51ee7;
  for (const SuperIPSpec& spec : all_family_specs()) {
    SCOPED_TRACE(spec.name);
    check_label_backend_differential(spec, seed++);
  }
}

TEST(QueryEngine, LabelBackendMatchesReferenceRouterOnRandomSpecs) {
  Xoshiro256 rng(0xabcdef12);
  for (int round = 0; round < 6; ++round) {
    const SuperIPSpec spec = testing::random_super_ip_spec(rng);
    SCOPED_TRACE(spec.name);
    check_label_backend_differential(
        spec, 0x900d + static_cast<std::uint64_t>(round));
  }
}

TEST(QueryEngine, PackedKernelActiveExactlyForPlainPackableSeeds) {
  int packed = 0, scalar = 0;
  for (const SuperIPSpec& spec : all_family_specs()) {
    const net::ImplicitSuperIPTopology topo(spec);
    const QueryEngine engine(topo);
    ASSERT_TRUE(engine.label_backend());
    (engine.packed_kernel_active() ? packed : scalar) += 1;
  }
  // The 6 plain variants pack; the 6 symmetric ones fall back to scalar.
  EXPECT_EQ(packed, 6);
  EXPECT_EQ(scalar, 6);
}

TEST(QueryEngine, AnswersBitIdenticalAtEveryThreadCount) {
  const std::vector<SuperIPSpec> specs = {
      make_hsn(3, hypercube_nucleus(2)),                  // packed kernel
      make_symmetric(make_complete_cn(3, hypercube_nucleus(2))),  // scalar
  };
  for (const SuperIPSpec& spec : specs) {
    SCOPED_TRACE(spec.name);
    const net::ImplicitSuperIPTopology topo(spec);
    const QueryEngine engine(topo);
    Xoshiro256 rng(0x7123 + topo.num_nodes());
    const std::vector<RouteQuery> queries =
        random_queries(rng, topo.num_nodes(), 400);

    std::vector<RouteAnswer> serial(queries.size());
    engine.answer_batch(queries, serial);
    for (const int threads : {2, 8}) {
      std::vector<RouteAnswer> parallel(queries.size());
      engine.answer_batch(queries, parallel, ExecPolicy{threads});
      ASSERT_EQ(parallel, serial) << "threads=" << threads;
    }
  }
}

TEST(QueryEngine, BfsBackendMatchesGraphBfsDistances) {
  for (const SuperIPSpec& spec : all_family_specs()) {
    SCOPED_TRACE(spec.name);
    const IPGraph g = build_ip_graph(spec.to_ip_spec());
    const net::MaterializedTopology topo(g);
    const QueryEngine engine(topo);
    ASSERT_FALSE(engine.label_backend());

    Xoshiro256 rng(g.num_nodes());
    BfsScratch scratch(g.num_nodes());
    for (int trial = 0; trial < 40; ++trial) {
      const NodeId src = rng.below(topo.num_nodes());
      const NodeId dst = rng.below(topo.num_nodes());
      const RouteAnswer a =
          engine.answer({src, dst, QueryKind::kFullRoute});
      const auto dist = scratch.run(g.graph, static_cast<Node>(src));
      ASSERT_EQ(a.status, AnswerStatus::kOk);
      ASSERT_EQ(static_cast<Dist>(a.distance), dist[static_cast<Node>(dst)]);
      ASSERT_EQ(walk_route(topo, src, a.gens), dst);
    }
  }
}

TEST(QueryEngine, FaultyTopologyRoutesAvoidFaultsOrReportUnreachable) {
  const SuperIPSpec spec = make_hsn(3, hypercube_nucleus(2));
  const IPGraph g = build_ip_graph(spec.to_ip_spec());
  const net::MaterializedTopology base(g);

  net::FaultSet faults;
  Xoshiro256 rng(0xfa17);
  for (int i = 0; i < 6; ++i) faults.fail_node(rng.below(base.num_nodes()));
  for (int i = 0; i < 6; ++i) {
    faults.fail_link(rng.below(base.num_nodes()), rng.below(base.num_nodes()));
  }
  const net::FaultyTopology topo(base, faults);
  // Mutable fault sets mean no caching: stale routes must never be served.
  const QueryEngine engine(topo, QueryEngineOptions{.cache_capacity = 0});

  std::vector<net::TopoArc> arcs;
  for (int trial = 0; trial < 60; ++trial) {
    const NodeId src = rng.below(topo.num_nodes());
    const NodeId dst = rng.below(topo.num_nodes());
    const RouteAnswer a = engine.answer({src, dst, QueryKind::kFullRoute});
    if (src == dst) {
      ASSERT_EQ(a.status, AnswerStatus::kOk);
      ASSERT_EQ(a.distance, 0);
      continue;
    }
    if (!faults.node_up(src) || !faults.node_up(dst)) {
      // A down endpoint has no arcs, so no route can exist.
      ASSERT_EQ(a.status, AnswerStatus::kUnreachable);
      continue;
    }
    if (a.status == AnswerStatus::kOk) {
      // Every hop must be an arc of the *faulty* view.
      ASSERT_EQ(walk_route(topo, src, a.gens), dst);
      ASSERT_EQ(a.distance, static_cast<std::int32_t>(a.gens.size()));
    }
  }
}

TEST(QueryEngine, InvalidAndDegenerateQueries) {
  const SuperIPSpec spec = make_hsn(3, hypercube_nucleus(2));
  const net::ImplicitSuperIPTopology topo(spec);
  const QueryEngine engine(topo);
  const NodeId n = topo.num_nodes();

  const RouteAnswer bad = engine.answer({n, 0, QueryKind::kDistance});
  EXPECT_EQ(bad.status, AnswerStatus::kInvalid);
  EXPECT_EQ(bad.distance, -1);

  const RouteAnswer self = engine.answer({5, 5, QueryKind::kFullRoute});
  EXPECT_EQ(self.status, AnswerStatus::kOk);
  EXPECT_EQ(self.distance, 0);
  EXPECT_TRUE(self.gens.empty());
  EXPECT_EQ(self.next_hop, net::kInvalidNodeId);
}

TEST(QueryEngine, KindsAreConsistentViewsOfOneRoute) {
  const SuperIPSpec spec = make_hsn(3, hypercube_nucleus(2));
  const net::ImplicitSuperIPTopology topo(spec);
  const QueryEngine engine(topo);
  Xoshiro256 rng(0xc0de);
  for (int trial = 0; trial < 50; ++trial) {
    const NodeId src = rng.below(topo.num_nodes());
    const NodeId dst = rng.below(topo.num_nodes());
    const RouteAnswer full = engine.answer({src, dst, QueryKind::kFullRoute});
    const RouteAnswer hop = engine.answer({src, dst, QueryKind::kNextHop});
    const RouteAnswer d = engine.answer({src, dst, QueryKind::kDistance});
    EXPECT_EQ(hop.next_hop, full.next_hop);
    EXPECT_EQ(hop.distance, full.distance);
    EXPECT_EQ(d.distance, full.distance);
    EXPECT_EQ(d.first_gen, full.first_gen);
    EXPECT_TRUE(d.gens.empty());  // kDistance carries no route body
  }
}

TEST(QueryEngine, ServiceLoopMatchesDirectBatchCalls) {
  const SuperIPSpec spec = make_hsn(3, hypercube_nucleus(2));
  const net::ImplicitSuperIPTopology topo(spec);
  const QueryEngine engine(topo);
  Xoshiro256 rng(0x5e11);

  route::RouteService service(engine, {.workers = 2, .ring_capacity = 4});
  std::vector<std::vector<RouteQuery>> batches;
  std::vector<std::future<std::vector<RouteAnswer>>> futures;
  for (int b = 0; b < 8; ++b) {
    batches.push_back(random_queries(rng, topo.num_nodes(), 64));
    futures.push_back(service.submit(batches.back()));
  }
  for (int b = 0; b < 8; ++b) {
    const std::vector<RouteAnswer> got = futures[as_size(b)].get();
    std::vector<RouteAnswer> want(batches[as_size(b)].size());
    engine.answer_batch(batches[as_size(b)], want);
    ASSERT_EQ(got, want) << "batch " << b;
  }
  service.shutdown();
}

}  // namespace
}  // namespace ipg
