// Tests for embeddings: the dilation-3 hypercube-into-HSN embedding the
// paper cites, and the generic evaluator.
#include <gtest/gtest.h>

#include <numeric>

#include "ipg/families.hpp"
#include "route/embedding.hpp"
#include "topo/hypercube.hpp"

namespace ipg {
namespace {

TEST(Embedding, IdentityEmbeddingHasDilationOne) {
  const Graph g = topo::hypercube(4);
  std::vector<Node> phi(g.num_nodes());
  std::iota(phi.begin(), phi.end(), Node{0});
  const auto s = evaluate_embedding(g, g, phi);
  EXPECT_EQ(s.dilation, 1u);
  EXPECT_DOUBLE_EQ(s.avg_dilation, 1.0);
  EXPECT_DOUBLE_EQ(s.expansion, 1.0);
  EXPECT_TRUE(s.injective);
}

TEST(Embedding, NonInjectiveMapDetected) {
  const Graph g = topo::hypercube(3);
  std::vector<Node> phi(g.num_nodes(), 0);
  phi[1] = 1;
  const auto s = evaluate_embedding(g, g, phi);
  EXPECT_FALSE(s.injective);
}

struct HsnEmbedCase {
  int l, n;
};

class HsnEmbedding : public ::testing::TestWithParam<HsnEmbedCase> {};

TEST_P(HsnEmbedding, HypercubeEmbedsWithDilationAtMost3) {
  // Sections 1/3.2: "an HSN can embed corresponding homogeneous product
  // networks such as hypercubes ... with dilation 3."
  const auto [l, n] = GetParam();
  const IPGraph hsn = build_super_ip_graph(make_hsn(l, hypercube_nucleus(n)));
  const Graph guest = topo::hypercube(l * n);
  const auto phi = hsn_hypercube_embedding(hsn, l, n);
  const auto s = evaluate_embedding(guest, hsn.graph, phi);
  EXPECT_TRUE(s.injective);
  EXPECT_DOUBLE_EQ(s.expansion, 1.0);
  EXPECT_LE(s.dilation, 3u);
  // Block-0 dimensions embed with dilation 1, so the average is strictly
  // below the worst case.
  EXPECT_LT(s.avg_dilation, 3.0);
  EXPECT_GE(s.dilation, l > 1 ? 3u : 1u);  // swap-flip-swap is really needed
}

INSTANTIATE_TEST_SUITE_P(Sweep, HsnEmbedding,
                         ::testing::Values(HsnEmbedCase{2, 2}, HsnEmbedCase{2, 3},
                                           HsnEmbedCase{3, 2}, HsnEmbedCase{2, 4},
                                           HsnEmbedCase{3, 3}),
                         [](const auto& tpi) {
                           return "l" + std::to_string(tpi.param.l) + "_n" +
                                  std::to_string(tpi.param.n);
                         });

}  // namespace
}  // namespace ipg
