// Differential tests for the bit-parallel batched BFS engine: on every
// golden family variant, random super-IP spec and random digraph, the
// batched summaries must be bit-identical to the scalar one-BFS-per-source
// reference at 1, 2 and 8 threads — including directed-CN instances, whose
// asymmetric arcs exercise the transpose CSR and the bottom-up pull path.
// Also covers the transpose cache itself, the batch-width boundaries, the
// vertex-transitive fast path of exact_analysis, and the ring-buffer
// 0/1-BFS scratch.
#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <vector>

#include "analysis/exact.hpp"
#include "graph/bfs.hpp"
#include "graph/bfs_batch.hpp"
#include "graph/builder.hpp"
#include "ipg/families.hpp"
#include "ipg/super.hpp"
#include "ipg/symmetric.hpp"
#include "random_spec.hpp"
#include "topo/misc.hpp"
#include "util/prng.hpp"

namespace ipg {
namespace {

const int kThreadCounts[] = {1, 2, 8};

void expect_summaries_identical(const DistanceSummary& a,
                                const DistanceSummary& b,
                                const std::string& what) {
  EXPECT_EQ(a.diameter, b.diameter) << what;
  EXPECT_EQ(a.strongly_connected, b.strongly_connected) << what;
  EXPECT_EQ(a.histogram, b.histogram) << what;
  // Integral accumulators end in the same division, so even the floating
  // average must match bit for bit.
  EXPECT_EQ(a.average_distance, b.average_distance) << what;
}

/// Batched vs scalar over all nodes and over a strided multi-source
/// subset (with a duplicate source thrown in), at every thread count.
void check_batch_vs_scalar(const Graph& g, const std::string& what) {
  const DistanceSummary scalar = all_pairs_distance_summary_scalar(g);
  std::vector<Node> subset;
  for (Node u = 0; u < g.num_nodes(); u += 3) subset.push_back(u);
  if (!subset.empty()) subset.push_back(subset.front());  // duplicate lane
  const DistanceSummary scalar_subset =
      multi_source_distance_summary_scalar(g, subset);
  for (const int threads : kThreadCounts) {
    const ExecPolicy exec{threads};
    const std::string tag = what + " @" + std::to_string(threads) + "t";
    expect_summaries_identical(scalar, all_pairs_distance_summary(g, exec),
                               tag);
    expect_summaries_identical(
        scalar_subset, multi_source_distance_summary(g, subset, exec),
        tag + " subset");
  }
}

std::vector<SuperIPSpec> golden_family_specs() {
  std::vector<SuperIPSpec> specs = {
      make_hcn(2),
      make_hsn(3, hypercube_nucleus(2)),
      make_ring_cn(3, star_nucleus(3)),
      make_complete_cn(3, hypercube_nucleus(2)),
      make_directed_cn(3, star_nucleus(3)),
      make_super_flip(3, hypercube_nucleus(2)),
  };
  const std::size_t plain = specs.size();
  for (std::size_t i = 0; i < plain; ++i) {
    specs.push_back(make_symmetric(specs[i]));
  }
  return specs;
}

TEST(BfsBatch, GoldenFamilyVariantsMatchScalar) {
  for (const SuperIPSpec& spec : golden_family_specs()) {
    SCOPED_TRACE(spec.name);
    const IPGraph g = build_super_ip_graph(spec);
    check_batch_vs_scalar(g.graph, spec.name);
  }
}

TEST(BfsBatch, RandomSpecsMatchScalar) {
  Xoshiro256 rng(20260805);
  for (int draw = 0; draw < 8; ++draw) {
    const SuperIPSpec spec = testing::random_super_ip_spec(rng);
    SCOPED_TRACE(spec.name + " draw " + std::to_string(draw));
    const IPGraph g = build_super_ip_graph(spec);
    check_batch_vs_scalar(g.graph, spec.name);
  }
}

TEST(BfsBatch, DirectedCnExercisesBottomUpOnAsymmetricArcs) {
  // Genuinely directed instances: the transpose differs from the forward
  // CSR, so bottom-up pulls go through in-neighbor lists that no
  // symmetric-graph test would catch.
  for (const SuperIPSpec& spec :
       {make_directed_cn(3, complete_nucleus(4)),
        make_directed_cn(3, star_nucleus(3)),
        make_symmetric(make_directed_cn(3, star_nucleus(3)))}) {
    SCOPED_TRACE(spec.name);
    const IPGraph g = build_super_ip_graph(spec);
    EXPECT_FALSE(g.graph.is_symmetric()) << spec.name;
    check_batch_vs_scalar(g.graph, spec.name);
  }
}

Graph random_graph(Node n, std::uint64_t arcs, std::uint64_t seed,
                   bool undirected) {
  Xoshiro256 rng(seed);
  GraphBuilder b(n);
  for (std::uint64_t i = 0; i < arcs; ++i) {
    const Node u = static_cast<Node>(rng.below(n));
    const Node v = static_cast<Node>(rng.below(n));
    if (undirected) {
      b.add_edge(u, v);
    } else {
      b.add_arc(u, v);
    }
  }
  return std::move(b).build();
}

TEST(BfsBatch, RandomDigraphsIncludingDisconnectedMatchScalar) {
  for (const std::uint64_t seed : {3ull, 11ull, 77ull}) {
    check_batch_vs_scalar(random_graph(130, 200, seed, /*undirected=*/true),
                          "rand-undirected-" + std::to_string(seed));
    check_batch_vs_scalar(random_graph(130, 400, seed, /*undirected=*/false),
                          "rand-directed-" + std::to_string(seed));
    // Sparse instances are usually disconnected: the kUnreachable /
    // strongly_connected flags must survive the mask bookkeeping.
    check_batch_vs_scalar(random_graph(96, 70, seed, /*undirected=*/false),
                          "rand-sparse-" + std::to_string(seed));
  }
}

TEST(BfsBatch, BatchWidthBoundaries) {
  // Source counts straddling the 64-lane batch width, on a path so
  // distance histograms differ per source.
  const Graph g = topo::path(150);
  for (const std::size_t k : {std::size_t{1}, std::size_t{63},
                              std::size_t{64}, std::size_t{65},
                              std::size_t{129}}) {
    std::vector<Node> sources(k);
    for (std::size_t i = 0; i < k; ++i) {
      sources[i] = static_cast<Node>(i % g.num_nodes());
    }
    expect_summaries_identical(
        multi_source_distance_summary_scalar(g, sources),
        multi_source_distance_summary(g, sources),
        "path-150 k=" + std::to_string(k));
  }
}

TEST(BfsBatch, TinyAndDegenerateGraphs) {
  check_batch_vs_scalar(std::move(GraphBuilder(1)).build(), "single-node");
  check_batch_vs_scalar(topo::cycle(3), "C3");
  const Graph g = topo::cycle(5);
  expect_summaries_identical(
      multi_source_distance_summary_scalar(g, {}),
      multi_source_distance_summary(g, {}), "empty-sources");
}

TEST(BfsBatch, TransposeMatchesForwardArcs) {
  const Graph g = random_graph(64, 256, 5, /*undirected=*/false);
  const TransposeCsr& t = g.transpose();
  EXPECT_EQ(t.targets.size(), g.num_arcs());
  std::uint64_t checked = 0;
  for (Node u = 0; u < g.num_nodes(); ++u) {
    for (const Node v : g.neighbors(u)) {
      const auto in = t.in_neighbors(v);
      EXPECT_TRUE(std::find(in.begin(), in.end(), u) != in.end())
          << u << "->" << v;
      ++checked;
    }
    // In-neighbor lists are sorted ascending like the forward adjacency.
    const auto in = t.in_neighbors(u);
    EXPECT_TRUE(std::is_sorted(in.begin(), in.end())) << u;
  }
  EXPECT_EQ(checked, g.num_arcs());
  // The cache hands back the same object on every call.
  EXPECT_EQ(&t, &g.transpose());
}

TEST(BfsBatch, TransposeOfSymmetricGraphEqualsForward) {
  const Graph g = topo::petersen();
  ASSERT_TRUE(g.is_symmetric());
  const TransposeCsr& t = g.transpose();
  for (Node u = 0; u < g.num_nodes(); ++u) {
    const auto fwd = g.neighbors(u);
    const auto in = t.in_neighbors(u);
    EXPECT_EQ(std::vector<Node>(fwd.begin(), fwd.end()),
              std::vector<Node>(in.begin(), in.end()))
        << u;
  }
}

TEST(BfsBatch, CopyingAGraphDoesNotShareOrStaleTheCache) {
  const Graph g = topo::cycle(6);
  (void)g.transpose();
  Graph copy = g;  // starts with an empty cache
  const TransposeCsr& tc = copy.transpose();
  EXPECT_NE(&tc, &g.transpose());
  EXPECT_EQ(tc.targets.size(), copy.num_arcs());
  copy = topo::path(4);  // assignment must drop the stale cache
  EXPECT_EQ(copy.transpose().targets.size(), copy.num_arcs());
}

// ---------------------------------------------------------------------------
// Vertex-transitive fast path of exact_analysis.

TEST(BfsBatchFastPath, SymmetricFamiliesMatchFullSweep) {
  for (const SuperIPSpec& spec :
       {make_symmetric(make_hsn(3, hypercube_nucleus(2))),
        make_symmetric(make_ring_cn(3, star_nucleus(3))),
        make_symmetric(make_super_flip(3, hypercube_nucleus(2)))}) {
    SCOPED_TRACE(spec.name);
    ASSERT_TRUE(is_cayley(spec));
    const IPGraph g = build_super_ip_graph(spec);
    const ExactAnalysis full = exact_analysis(g.graph);
    for (const int threads : kThreadCounts) {
      ExactOptions opts;
      opts.assume_vertex_transitive = true;
      const ExactAnalysis fast =
          exact_analysis(g.graph, ExecPolicy{threads}, opts);
      const std::string tag = spec.name + " @" + std::to_string(threads) + "t";
      expect_summaries_identical(full.distances, fast.distances, tag);
      EXPECT_EQ(full.profile.diameter, fast.profile.diameter) << tag;
      EXPECT_EQ(full.profile.average_distance, fast.profile.average_distance)
          << tag;
      EXPECT_EQ(full.profile.links, fast.profile.links) << tag;
    }
  }
}

TEST(BfsBatchFastPath, OptOutForcesFullSweep) {
  const SuperIPSpec spec = make_symmetric(make_hsn(2, hypercube_nucleus(3)));
  const IPGraph g = build_super_ip_graph(spec);
  ExactOptions opts;
  opts.assume_vertex_transitive = true;
  opts.use_orbit_quotient = false;  // opt-out: identical by construction
  expect_summaries_identical(exact_analysis(g.graph).distances,
                             exact_analysis(g.graph, ExecPolicy{2}, opts)
                                 .distances,
                             spec.name + " opt-out");
}

TEST(BfsBatchFastPath, IsCayleySeparatesSymmetricFromPlainSpecs) {
  const SuperIPSpec plain = make_hsn(3, hypercube_nucleus(2));
  EXPECT_FALSE(is_cayley(plain));  // repeated blocks repeat symbols
  EXPECT_TRUE(is_cayley(make_symmetric(plain)));
  // The Cayley property is about distinct seed symbols, not the family:
  // the directed variant qualifies too once symmetrized.
  EXPECT_FALSE(is_cayley(make_directed_cn(3, star_nucleus(3))));
  EXPECT_TRUE(is_cayley(make_symmetric(make_directed_cn(3, star_nucleus(3)))));
}

// ---------------------------------------------------------------------------
// Ring-buffer 0/1-BFS scratch.

/// Reference implementation: the former std::deque-based 0/1 BFS.
std::vector<Dist> deque_bfs_01(const Graph& g, Node src,
                               std::span<const std::uint32_t> module_of) {
  std::vector<Dist> dist(g.num_nodes(), kUnreachable);
  std::deque<Node> dq;
  dist[src] = 0;
  dq.push_back(src);
  while (!dq.empty()) {
    const Node u = dq.front();
    dq.pop_front();
    const Dist du = dist[u];
    for (const Node v : g.neighbors(u)) {
      const Dist w = module_of[u] == module_of[v] ? 0 : 1;
      if (du + w < dist[v]) {
        dist[v] = du + w;
        if (w == 0) {
          dq.push_front(v);
        } else {
          dq.push_back(v);
        }
      }
    }
  }
  return dist;
}

TEST(Bfs01Ring, MatchesDequeReferenceAcrossReusedRuns) {
  const SuperIPSpec spec = make_hsn(3, hypercube_nucleus(2));
  const IPGraph g = build_super_ip_graph(spec);
  const ModuleAssignment ma = nucleus_modules(g, spec.m);
  Bfs01Scratch scratch(g.num_nodes());
  // Reuse the same scratch across every source — exactly the I-metrics
  // sweep pattern the ring buffer is built for.
  for (Node src = 0; src < g.num_nodes(); ++src) {
    const auto got = scratch.run(g.graph, src, ma.module_of);
    const auto want = deque_bfs_01(g.graph, src, ma.module_of);
    ASSERT_EQ(std::vector<Dist>(got.begin(), got.end()), want) << src;
  }
}

TEST(Bfs01Ring, WrapsAroundOnReentrantRelaxations) {
  // Random modules on a dense-ish random graph force many re-push paths
  // (both front and back), wrapping the ring repeatedly.
  const Graph g = random_graph(97, 1100, 13, /*undirected=*/true);
  Xoshiro256 rng(17);
  std::vector<std::uint32_t> modules(g.num_nodes());
  for (auto& m : modules) m = static_cast<std::uint32_t>(rng.below(5));
  Bfs01Scratch scratch(g.num_nodes());
  for (const Node src : {Node{0}, Node{42}, Node{96}}) {
    const auto got = scratch.run(g, src, modules);
    const auto want = deque_bfs_01(g, src, modules);
    ASSERT_EQ(std::vector<Dist>(got.begin(), got.end()), want) << src;
  }
}

TEST(Bfs01Ring, FreeFunctionKeepsItsContract) {
  // bfs_distances_01 now routes through the scratch; the historical edge
  // cases must still hold.
  const Graph g = topo::cycle(8);
  const std::vector<std::uint32_t> one_module(8, 0);
  for (const Dist d : bfs_distances_01(g, 3, one_module)) EXPECT_EQ(d, 0u);
  std::vector<std::uint32_t> distinct(8);
  for (Node u = 0; u < 8; ++u) distinct[u] = u;
  const auto d01 = bfs_distances_01(g, 3, distinct);
  const auto d = bfs_distances(g, 3);
  EXPECT_EQ(d01, d);
}

}  // namespace
}  // namespace ipg
