// Tests for the packaging layer (Section 5): module assignments, I-degree,
// module graphs, and cross-validation of the contracted-module-graph
// I-distances against direct 0/1-weighted BFS on the full network.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/imetrics.hpp"
#include "cluster/partitions.hpp"
#include "graph/bfs.hpp"
#include "graph/metrics.hpp"
#include "ipg/families.hpp"
#include "topo/ccc.hpp"
#include "topo/de_bruijn.hpp"
#include "topo/hypercube.hpp"
#include "topo/star.hpp"
#include "topo/torus.hpp"
#include "util/narrow.hpp"

namespace ipg {
namespace {

/// Exhaustive 0/1-BFS I-distance statistics — the slow ground truth.
IDistanceStats brute_force_i_stats(const Graph& g, const Clustering& c) {
  IDistanceStats out;
  long double sum = 0.0L;
  for (Node u = 0; u < g.num_nodes(); ++u) {
    const auto dist = bfs_distances_01(g, u, c.module_of);
    for (Node v = 0; v < g.num_nodes(); ++v) {
      if (dist[v] == kUnreachable) {
        out.connected = false;
        continue;
      }
      out.i_diameter = std::max(out.i_diameter, dist[v]);
      sum += dist[v];
    }
  }
  const long double pairs = static_cast<long double>(g.num_nodes()) *
                            (g.num_nodes() - 1);
  out.avg_i_distance = static_cast<double>(sum / pairs);
  return out;
}

TEST(Cluster, NucleusModulesPartitionSuperIpGraphs) {
  const SuperIPSpec spec = make_hsn(3, hypercube_nucleus(2));
  const IPGraph g = build_super_ip_graph(spec);
  const Clustering c = cluster_by_nucleus(g, spec.m);
  EXPECT_TRUE(c.valid(g.num_nodes()));
  EXPECT_EQ(c.num_modules, 16u);  // M^(l-1)
  for (const auto s : c.module_sizes()) EXPECT_EQ(s, 4u);  // M per module
  EXPECT_TRUE(modules_internally_connected(g.graph, c));
}

TEST(Cluster, ModuleGraphIStatsMatchBruteForce01Bfs) {
  // The contraction identity behind all Fig. 3 numbers.
  struct Case {
    Graph g;
    Clustering c;
  };
  std::vector<Case> cases;
  {
    const SuperIPSpec s = make_hsn(3, hypercube_nucleus(2));
    const IPGraph g = build_super_ip_graph(s);
    cases.push_back({g.graph, cluster_by_nucleus(g, s.m)});
  }
  {
    const SuperIPSpec s = make_ring_cn(4, hypercube_nucleus(2));
    const IPGraph g = build_super_ip_graph(s);
    cases.push_back({g.graph, cluster_by_nucleus(g, s.m)});
  }
  cases.push_back({topo::hypercube(6), cluster_hypercube(6, 2)});
  cases.push_back({topo::torus2d(8, 8), cluster_torus2d(8, 8, 4, 4)});
  cases.push_back({topo::star_graph(5), cluster_star(5, 3)});

  for (const auto& [g, c] : cases) {
    ASSERT_TRUE(modules_internally_connected(g, c));
    const Graph mg = module_graph(g, c);
    const auto sizes = c.module_sizes();
    const IDistanceStats fast = i_distance_stats(mg, sizes);
    const IDistanceStats slow = brute_force_i_stats(g, c);
    EXPECT_EQ(fast.i_diameter, slow.i_diameter);
    EXPECT_NEAR(fast.avg_i_distance, slow.avg_i_distance, 1e-9);
  }
}

TEST(Cluster, HypercubeModuleGraphIsSmallerCube) {
  // Q_n with 2^b-subcube modules contracts to Q_(n-b).
  const Graph g = topo::hypercube(7);
  const Clustering c = cluster_hypercube(7, 3);
  const Graph mg = module_graph(g, c);
  const auto p = profile(mg);
  EXPECT_EQ(p.nodes, 16u);
  EXPECT_EQ(p.degree, 4u);
  EXPECT_EQ(p.diameter, 4u);
  EXPECT_NEAR(i_degree(g, c), 4.0, 1e-12);  // n - b off-module links/node
}

TEST(Cluster, HsnModuleGraphIsHammingGraph) {
  // HSN(l, G) module graph = H(l-1, M): complete in each coordinate.
  const Node M = 4;
  for (const int l : {2, 3, 4}) {
    const auto gens = transposition_super_gens(l);
    const Graph mg = super_module_graph(M, l, gens);
    const auto p = profile(mg);
    EXPECT_EQ(p.nodes, static_cast<std::uint64_t>(std::pow(M, l - 1)));
    EXPECT_EQ(p.degree, (M - 1) * static_cast<Node>(l - 1));
    EXPECT_EQ(p.diameter, static_cast<Dist>(l - 1));
    // Average Hamming distance = (l-1)(1 - 1/M) * N/(N-1) over ordered
    // pairs of distinct modules... computed through i_distance_stats with
    // unit module sizes below.
    std::vector<std::uint32_t> unit(mg.num_nodes(), 1);
    const auto s = i_distance_stats(mg, unit);
    const double nodes = static_cast<double>(mg.num_nodes());
    EXPECT_NEAR(s.avg_i_distance,
                (l - 1) * (1.0 - 1.0 / M) * nodes / (nodes - 1.0), 1e-9);
  }
}

TEST(Cluster, SuperModuleGraphMatchesExplicitContraction) {
  // Direct suffix-tuple construction == contracting the explicit network.
  struct Case {
    SuperIPSpec spec;
    std::vector<Generator> gens;
  };
  const IPGraphSpec q2 = hypercube_nucleus(2);
  std::vector<Case> cases;
  cases.push_back({make_hsn(3, q2), transposition_super_gens(3)});
  cases.push_back({make_ring_cn(4, q2), ring_shift_super_gens(4)});
  cases.push_back({make_complete_cn(3, q2), complete_shift_super_gens(3)});
  cases.push_back({make_super_flip(3, q2), flip_super_gens(3)});

  for (const auto& [spec, gens] : cases) {
    const IPGraph g = build_super_ip_graph(spec);
    const Clustering c = cluster_by_nucleus(g, spec.m);
    const Graph contracted = module_graph(g.graph, c);
    const Graph direct = super_module_graph(4, spec.l, gens);
    ASSERT_EQ(contracted.num_nodes(), direct.num_nodes()) << spec.name;
    // Same degree sequence and distance summary => same metrics; the node
    // numbering differs (dense ids vs suffix ranks), so compare invariants.
    const auto pc = profile(contracted);
    const auto pd = profile(direct);
    EXPECT_EQ(pc.links, pd.links) << spec.name;
    EXPECT_EQ(pc.diameter, pd.diameter) << spec.name;
    EXPECT_NEAR(pc.average_distance, pd.average_distance, 1e-9) << spec.name;
  }
}

TEST(Cluster, HcnSubcubeModuleGraphMatchesExplicit) {
  // hcn_subcube_module_graph(n, b) == contracting HSN(2, Q_n) by
  // (v1 >> b, v2) modules. Validate on n = 4, b = 2 via labels.
  const int n = 4, b = 2;
  const SuperIPSpec spec = make_hcn(n);
  const IPGraph g = build_super_ip_graph(spec);
  // Module of a node = (bits(v1) >> b, v2) where block contents decode as
  // pair-encoded integers.
  auto decode_block = [&](const Label& x, int block) {
    Node v = 0;
    for (int j = 0; j < n; ++j) {
      const int at = block * 2 * n + 2 * j;
      v |= static_cast<Node>(x[as_size(at)] > x[as_size(at + 1)]) << j;
    }
    return v;
  };
  Clustering c;
  c.num_modules = (Node{1} << (n - b)) * (Node{1} << n);
  c.module_of.resize(g.num_nodes());
  for (Node u = 0; u < g.num_nodes(); ++u) {
    const Node v1 = decode_block(g.labels()[u], 0);
    const Node v2 = decode_block(g.labels()[u], 1);
    c.module_of[u] = (v1 >> b) * (Node{1} << n) + v2;
  }
  ASSERT_TRUE(modules_internally_connected(g.graph, c));
  const Graph contracted = module_graph(g.graph, c);
  const Graph direct = hcn_subcube_module_graph(n, b);
  ASSERT_EQ(contracted.num_nodes(), direct.num_nodes());
  std::uint64_t arcs = 0;
  for (Node u = 0; u < contracted.num_nodes(); ++u) {
    for (const Node v : contracted.neighbors(u)) {
      EXPECT_TRUE(direct.has_arc(u, v));
      ++arcs;
    }
  }
  EXPECT_EQ(arcs, direct.num_arcs());
}

TEST(Cluster, StarModuleGraphMatchesExplicitContraction) {
  // Direct suffix-arrangement construction == contracting the explicit
  // star graph by sub-star modules; the ids differ, so compare the full
  // metric set.
  for (const auto& [n, substar] : {std::pair{5, 3}, {6, 3}, {6, 4}}) {
    const Graph direct = star_module_graph(n, substar);
    const Clustering c = cluster_star(n, substar);
    const Graph contracted = module_graph(topo::star_graph(n), c);
    ASSERT_EQ(direct.num_nodes(), contracted.num_nodes()) << n << "," << substar;
    const auto pd = profile(direct);
    const auto pc = profile(contracted);
    EXPECT_EQ(pd.links, pc.links);
    EXPECT_EQ(pd.diameter, pc.diameter);
    EXPECT_NEAR(pd.average_distance, pc.average_distance, 1e-9);
  }
}

TEST(Cluster, StarModuleGraphScalesBeyondEnumeration) {
  // n = 9 with 4-star modules: 15120 modules, exact I-metrics in
  // milliseconds while the full graph has 362880 nodes.
  const Graph mg = star_module_graph(9, 4);
  EXPECT_EQ(mg.num_nodes(), 15120u);
  const std::vector<std::uint32_t> sizes(mg.num_nodes(), 24);
  const auto s = i_distance_stats_sampled(mg, sizes, 64, 7);
  EXPECT_GE(s.i_diameter, 5u);
  EXPECT_GT(s.avg_i_distance, 2.0);
}

TEST(Cluster, IDegreeKnownValues) {
  // Section 5.3's table, measured: ring-CN 1 (l=2) / 2 (l>=3); HSN and
  // complete-CN approach l-1; hypercube n-b; de Bruijn 4.
  const IPGraphSpec q4 = hypercube_nucleus(4);  // M = 16 keeps coincidences rare
  {
    const IPGraph g = build_super_ip_graph(make_ring_cn(2, q4));
    EXPECT_NEAR(i_degree(g.graph, cluster_by_nucleus(g, 8)), 1.0, 0.1);
  }
  {
    const IPGraph g = build_super_ip_graph(make_ring_cn(3, q4));
    EXPECT_NEAR(i_degree(g.graph, cluster_by_nucleus(g, 8)), 2.0, 0.01);
  }
  {
    const IPGraph g = build_super_ip_graph(make_hsn(3, q4));
    const double d = i_degree(g.graph, cluster_by_nucleus(g, 8));
    EXPECT_LE(d, 2.0);
    EXPECT_GT(d, 1.8);  // l-1 minus the rare identical-block coincidences
  }
  {
    const Graph q = topo::hypercube(8);
    EXPECT_NEAR(i_degree(q, cluster_hypercube(8, 4)), 4.0, 1e-12);
  }
  {
    const Graph db = topo::de_bruijn_undirected(2, 8);
    const double d = i_degree(db, cluster_de_bruijn(2, 8, 4));
    EXPECT_GE(d, 2.5);  // per-node max is 4 (Section 5.3); module averages
    EXPECT_LE(d, 4.0);  // dip where shifts stay inside an MSB block
  }
  {
    // Star graph with 4-star modules: n - substar off-module links/node.
    const Graph s = topo::star_graph(6);
    EXPECT_NEAR(i_degree(s, cluster_star(6, 4)), 2.0, 1e-12);
  }
  {
    // 4x4 torus tiles: 2(w+h)/(wh) = 1 off-module link per node on average.
    const Graph t = topo::torus2d(8, 8);
    EXPECT_NEAR(i_degree(t, cluster_torus2d(8, 8, 4, 4)), 1.0, 1e-12);
  }
}

TEST(Cluster, CccCyclesAreModules) {
  const Graph g = topo::cube_connected_cycles(4);
  const Clustering c = cluster_ccc(4);
  EXPECT_TRUE(c.valid(g.num_nodes()));
  EXPECT_TRUE(modules_internally_connected(g, c));
  EXPECT_EQ(c.max_module_size(), 4u);
  EXPECT_NEAR(i_degree(g, c), 1.0, 1e-12);  // the cube link of every node
  const Graph mg = module_graph(g, c);
  EXPECT_EQ(profile(mg).degree, 4u);  // contracts to Q_4
  EXPECT_EQ(profile(mg).diameter, 4u);
}

TEST(Cluster, SampledStatsAgreeOnSymmetricGraphs) {
  const Graph mg = super_module_graph(8, 4, transposition_super_gens(4));
  std::vector<std::uint32_t> sizes(mg.num_nodes(), 8);
  const auto exact = i_distance_stats(mg, sizes);
  const auto sampled = i_distance_stats_sampled(mg, sizes, 64, 1234);
  EXPECT_EQ(sampled.i_diameter, exact.i_diameter);
  EXPECT_NEAR(sampled.avg_i_distance, exact.avg_i_distance, 0.05);
}

}  // namespace
}  // namespace ipg
