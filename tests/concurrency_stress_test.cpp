// Stress tests for the concurrency capability layer (docs/MODEL.md §15).
// The sanitizer CI lanes run these under TSan and ASan: the annotations in
// util/sync.hpp prove the lock discipline at compile time (clang
// -Wthread-safety), and these tests drive the same paths hard enough at
// runtime that a protocol-level mistake (not expressible as an annotation)
// still surfaces as a TSan report or a broken invariant.
//
//   TransposeStress    8 threads race Graph::transpose()'s lazy first
//                      build while others run BFS over the same graph;
//                      copies snapshot mid-race; moves adopt the built
//                      cache instead of discarding it (the latent issue
//                      the annotation pass surfaced: the old move ctor
//                      left the *source* holding a cache for adjacency
//                      that had just moved away).
//   RequestRingStress  4x4 MPMC over a tiny ring with push and try_push
//                      mixed, asserting exactly-once delivery and the
//                      RingStats teardown invariants (pushes == pops,
//                      depth == 0, max_depth <= capacity).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/graph.hpp"
#include "route/request_ring.hpp"
#include "util/narrow.hpp"
#include "util/prng.hpp"

namespace ipg {
namespace {

Graph random_digraph(Node n, std::uint64_t arcs, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  GraphBuilder b(n);
  for (std::uint64_t i = 0; i < arcs; ++i) {
    b.add_arc(static_cast<Node>(rng.below(n)),
              static_cast<Node>(rng.below(n)));
  }
  return std::move(b).build();
}

TEST(TransposeStress, EightThreadsRaceTheFirstBuildDuringBfs) {
  const Graph g = random_digraph(256, 1024, 99);
  const Graph ref = random_digraph(256, 1024, 99);  // identical, serial
  const TransposeCsr& want = ref.transpose();

  constexpr int kThreads = 8;
  std::vector<const TransposeCsr*> seen(kThreads, nullptr);
  std::vector<std::vector<Dist>> dist(kThreads);
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Rendezvous so all eight threads hit the cold cache together.
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      // Half BFS first (concurrent readers of the forward CSR), half race
      // the lazy transpose build first.
      if (t % 2 == 0) dist[as_size(t)] = bfs_distances(g, static_cast<Node>(t));
      seen[as_size(t)] = &g.transpose();
      if (t % 2 == 1) dist[as_size(t)] = bfs_distances(g, static_cast<Node>(t));
    });
  }
  for (std::thread& th : threads) th.join();

  // One thread built, everyone shares the same immutable CSR.
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(seen[as_size(t)], &g.transpose()) << t;
  }
  EXPECT_EQ(g.transpose().offsets, want.offsets);
  EXPECT_EQ(g.transpose().targets, want.targets);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(dist[as_size(t)], bfs_distances(ref, static_cast<Node>(t))) << t;
  }
}

TEST(TransposeStress, CopiesSnapshotWhileOtherThreadsTransposed) {
  const Graph g = random_digraph(128, 512, 7);
  constexpr int kThreads = 8;
  constexpr int kRounds = 8;
  std::atomic<std::uint64_t> arcs_seen{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        if (t % 2 == 0) {
          Graph copy = g;  // copies start cold and build their own cache
          arcs_seen.fetch_add(copy.transpose().targets.size());
        } else {
          arcs_seen.fetch_add(
              g.transpose().in_degree(static_cast<Node>(t)));
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  const std::uint64_t copier_arcs =
      (kThreads / 2) * static_cast<std::uint64_t>(kRounds) * g.num_arcs();
  EXPECT_GE(arcs_seen.load(), copier_arcs);
}

TEST(TransposeStress, MoveAdoptsTheBuiltCacheInsteadOfDiscardingIt) {
  Graph g = random_digraph(64, 256, 5);
  const std::uint64_t arcs = g.num_arcs();
  const TransposeCsr* built = &g.transpose();

  Graph moved = std::move(g);
  EXPECT_EQ(&moved.transpose(), built);  // same O(n+m) build, carried over
  EXPECT_EQ(moved.transpose().targets.size(), arcs);

  Graph target = random_digraph(32, 64, 6);
  (void)target.transpose();  // stale-to-be cache must be dropped
  target = std::move(moved);
  EXPECT_EQ(&target.transpose(), built);  // adopted through assignment too
  EXPECT_EQ(target.transpose().targets.size(), arcs);
}

TEST(RequestRingStress, MixedPushTryPushMpmcKeepsTheLedgerExact) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 2000;
  constexpr std::uint64_t kTotal = kProducers * kPerProducer;
  constexpr std::size_t kCapacity = 4;  // tiny: backpressure on every side
  route::RequestRing<std::uint64_t> ring(kCapacity);

  // One slot per item: exactly-once delivery means every slot ends at 1.
  std::vector<std::atomic<std::uint32_t>> delivered(kTotal);
  std::atomic<std::uint64_t> rejected_retries{0};
  std::vector<std::thread> threads;
  threads.reserve(kProducers + kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&ring, &delivered] {
      std::uint64_t v = 0;
      while (ring.pop(v)) delivered[as_size(v)].fetch_add(1);
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&ring, &rejected_retries, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t item =
            static_cast<std::uint64_t>(p) * kPerProducer + i;
        if (i % 2 == 0) {
          ASSERT_TRUE(ring.push(item));
        } else {
          // try_push spins: every rejection is counted by the ring, so the
          // ledger below still balances.
          while (!ring.try_push(item)) {
            rejected_retries.fetch_add(1);
            std::this_thread::yield();
          }
        }
      }
    });
  }
  for (int t = kConsumers; t < kProducers + kConsumers; ++t) {
    threads[as_size(t)].join();  // producers first
  }
  ring.close();  // consumers drain the tail, then pop() returns false
  for (int t = 0; t < kConsumers; ++t) threads[as_size(t)].join();

  for (std::uint64_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(delivered[as_size(i)].load(), 1u) << "item " << i;
  }
  const route::RingStats s = ring.stats();
  EXPECT_EQ(s.pushes, kTotal);
  EXPECT_EQ(s.pops, kTotal);
  EXPECT_EQ(s.depth, 0u);  // drained at teardown
  EXPECT_LE(s.max_depth, kCapacity);
  EXPECT_GE(s.max_depth, 1u);
  EXPECT_EQ(s.try_push_failures, rejected_retries.load());
}

TEST(RequestRingStress, StatsSnapshotsAreConsistentMidFlight) {
  constexpr std::uint64_t kItems = 4000;
  route::RequestRing<std::uint64_t> ring(8);
  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kItems; ++i) ASSERT_TRUE(ring.push(i));
    ring.close();
  });
  std::thread consumer([&ring] {
    std::uint64_t v = 0;
    while (ring.pop(v)) {
    }
  });
  // Snapshot under fire: every snapshot must satisfy the ring invariants
  // even while both sides are mid-operation.
  for (int probe = 0; probe < 1000; ++probe) {
    const route::RingStats s = ring.stats();
    EXPECT_GE(s.pushes, s.pops);
    EXPECT_EQ(s.depth, s.pushes - s.pops);
    EXPECT_LE(s.depth, ring.capacity());
    EXPECT_LE(s.max_depth, ring.capacity());
    EXPECT_GE(s.max_depth, s.depth);
  }
  producer.join();
  consumer.join();
  const route::RingStats s = ring.stats();
  EXPECT_EQ(s.pushes, kItems);
  EXPECT_EQ(s.pops, kItems);
  EXPECT_EQ(s.depth, 0u);
}

}  // namespace
}  // namespace ipg
