// Disjointness oracle harness for the IST / k-disjoint-path layer
// (route/ist.hpp, route/disjoint.hpp): on every golden family variant the
// rotated forest spans per tree, the disjoint router returns exactly
// max_vertex_disjoint_paths(src, dst) pairwise internally node-disjoint
// paths (the existing max-flow module is the independent oracle), and the
// full-set cardinality at the connectivity kappa realizes Menger. The
// QueryEngine policy wiring and the structural (beyond-snapshot) mode are
// covered at the end.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "connectivity_helpers.hpp"
#include "graph/builder.hpp"
#include "graph/flow.hpp"
#include "ipg/families.hpp"
#include "ipg/symmetric.hpp"
#include "net/topology.hpp"
#include "route/disjoint.hpp"
#include "route/ist.hpp"
#include "route/query_engine.hpp"
#include "util/prng.hpp"

namespace ipg {
namespace {

using route::DisjointPath;
using route::DisjointRouteSet;
using route::ISTForest;
using route::KDisjointOptions;
using route::KDisjointRouter;

/// The 12 golden variants of golden_diameters_test.cpp (6 plain families +
/// their symmetric Cayley forms).
std::vector<SuperIPSpec> all_family_specs() {
  std::vector<SuperIPSpec> specs = {
      make_hcn(2),
      make_hsn(3, hypercube_nucleus(2)),
      make_ring_cn(3, star_nucleus(3)),
      make_complete_cn(3, hypercube_nucleus(2)),
      make_directed_cn(3, star_nucleus(3)),
      make_super_flip(3, hypercube_nucleus(2)),
  };
  const std::size_t plain_count = specs.size();
  for (std::size_t i = 0; i < plain_count; ++i) {
    specs.push_back(make_symmetric(specs[i]));
  }
  return specs;
}

/// Materializes the implicit topology under ITS OWN node ids (Theorem 3.2
/// ranks), so the flow oracle and the disjoint router talk about the same
/// vertices. Parallel arcs (same target, different generator) collapse to
/// one, matching the router's flow network.
Graph rank_id_graph(const net::ImplicitSuperIPTopology& topo) {
  const auto n = static_cast<Node>(topo.num_nodes());
  GraphBuilder b(n);
  std::vector<net::TopoArc> arcs;
  for (Node u = 0; u < n; ++u) {
    topo.neighbors(u, arcs);  // sorted by (to, tag): repeats are adjacent
    net::NodeId prev = net::kInvalidNodeId;
    for (const net::TopoArc& a : arcs) {
      if (a.to == prev) continue;
      prev = a.to;
      b.add_arc(u, static_cast<Node>(a.to));
    }
  }
  return std::move(b).build();
}

/// Structural validity of a disjoint route set: every path is a simple
/// src -> dst walk over real arcs, paths are pairwise internally
/// node-disjoint, lengths are nondecreasing, and at most one path is the
/// direct arc.
void expect_valid_disjoint(const net::Topology& topo, net::NodeId src,
                           net::NodeId dst, const DisjointRouteSet& set) {
  std::set<net::NodeId> used_interior;
  int direct = 0;
  std::size_t prev_len = 0;
  std::vector<net::TopoArc> arcs;
  for (const DisjointPath& p : set.paths) {
    ASSERT_GE(p.nodes.size(), 2u);
    ASSERT_EQ(p.gens.size(), p.nodes.size() - 1);
    EXPECT_EQ(p.nodes.front(), src);
    EXPECT_EQ(p.nodes.back(), dst);
    EXPECT_GE(p.gens.size(), prev_len) << "lengths must be nondecreasing";
    prev_len = p.gens.size();
    if (p.nodes.size() == 2) direct++;

    std::set<net::NodeId> on_path;
    for (std::size_t i = 0; i < p.nodes.size(); ++i) {
      EXPECT_TRUE(on_path.insert(p.nodes[i]).second)
          << "path revisits node " << p.nodes[i];
      if (i + 1 == p.nodes.size()) continue;
      topo.neighbors(p.nodes[i], arcs);
      bool found = false;
      for (const net::TopoArc& a : arcs) {
        found = found || (a.to == p.nodes[i + 1] &&
                          a.tag == static_cast<EdgeTag>(p.gens[i]));
      }
      EXPECT_TRUE(found) << "hop " << p.nodes[i] << " -> " << p.nodes[i + 1]
                         << " via gen " << p.gens[i] << " is not an arc";
    }
    for (std::size_t i = 1; i + 1 < p.nodes.size(); ++i) {
      EXPECT_TRUE(used_interior.insert(p.nodes[i]).second)
          << "interior node " << p.nodes[i] << " is shared between paths";
    }
  }
  EXPECT_LE(direct, 1);
}

TEST(IstForest, EveryGoldenVariantGrowsKappaSpanningTrees) {
  for (const SuperIPSpec& spec : all_family_specs()) {
    SCOPED_TRACE(spec.name);
    const net::ImplicitSuperIPTopology topo(spec);
    const Graph g = rank_id_graph(topo);
    // Plain vertex_connectivity, not the maximal-connectivity helper:
    // HCN's kappa sits below its min degree, and that is fine here — the
    // claim under test is "kappa spanning trees exist", not maximality.
    const int kappa = vertex_connectivity(g);
    ASSERT_GT(kappa, 0);

    Xoshiro256 rng(0x15757ull ^ topo.num_nodes());
    for (int trial = 0; trial < 3; ++trial) {
      const auto root = static_cast<net::NodeId>(rng.below(topo.num_nodes()));
      const ISTForest forest = route::build_ist_forest(topo, root, kappa);
      ASSERT_EQ(forest.num_trees(), kappa);
      EXPECT_EQ(forest.root(), root);
      for (int t = 0; t < kappa; ++t) {
        EXPECT_TRUE(forest.spans(t)) << "tree " << t << " root " << root;
      }
      // Tree paths are shortest: length equals the BFS distance field.
      const auto v = static_cast<net::NodeId>(rng.below(topo.num_nodes()));
      for (int t = 0; t < kappa; ++t) {
        EXPECT_EQ(forest.path_to_root(t, v).size(), forest.dist_to_root(v));
      }
    }
  }
}

TEST(IstDisjoint, SampledPairsMatchTheMaxFlowOracleOnEveryGoldenVariant) {
  for (const SuperIPSpec& spec : all_family_specs()) {
    SCOPED_TRACE(spec.name);
    const net::ImplicitSuperIPTopology topo(spec);
    const Graph g = rank_id_graph(topo);
    const KDisjointRouter router(topo);
    ASSERT_TRUE(router.snapshot_mode());

    Xoshiro256 rng(0xd15701ull ^ topo.num_nodes());
    for (int trial = 0; trial < 8; ++trial) {
      const auto src = static_cast<Node>(rng.below(topo.num_nodes()));
      const auto dst = static_cast<Node>(rng.below(topo.num_nodes()));
      if (src == dst) continue;
      SCOPED_TRACE(std::string("pair ") + std::to_string(src) + " -> " +
                   std::to_string(dst));
      const DisjointRouteSet set = router.routes(src, dst);
      EXPECT_TRUE(set.certified);
      // The independent oracle: the unrelated flow module of graph/flow.hpp
      // computes the Menger maximum over the same rank-id graph.
      const int pi = max_vertex_disjoint_paths(g, src, dst);
      EXPECT_EQ(static_cast<int>(set.paths.size()), pi);
      expect_valid_disjoint(topo, src, dst, set);
    }
  }
}

TEST(IstDisjoint, FullSetRealizesConnectivityManyPathsOnHeadlineFamilies) {
  // On the maximally connected headline families every pair admits at
  // least kappa = min-degree disjoint paths (Menger); the router must
  // find them all, and a k-capped query must return exactly k.
  const std::vector<SuperIPSpec> specs = {
      make_hsn(2, hypercube_nucleus(3)),
      make_ring_cn(3, star_nucleus(3)),
      make_super_flip(3, hypercube_nucleus(2)),
  };
  for (const SuperIPSpec& spec : specs) {
    SCOPED_TRACE(spec.name);
    const net::ImplicitSuperIPTopology topo(spec);
    const Graph g = rank_id_graph(topo);
    const int kappa = ipg::testing::expect_maximally_connected(g);
    const KDisjointRouter router(topo);

    Xoshiro256 rng(0xf111ull ^ topo.num_nodes());
    for (int trial = 0; trial < 6; ++trial) {
      const auto src = static_cast<Node>(rng.below(topo.num_nodes()));
      const auto dst = static_cast<Node>(rng.below(topo.num_nodes()));
      if (src == dst) continue;
      const DisjointRouteSet set = router.routes(src, dst);
      EXPECT_GE(static_cast<int>(set.paths.size()), kappa);
      expect_valid_disjoint(topo, src, dst, set);

      const DisjointRouteSet capped = router.routes(src, dst, kappa);
      EXPECT_EQ(static_cast<int>(capped.paths.size()), kappa);
      expect_valid_disjoint(topo, src, dst, capped);
    }
  }
}

TEST(IstDisjoint, QueryEnginePolicyAnswersWithTheShortestDisjointPath) {
  const SuperIPSpec spec = make_hsn(2, hypercube_nucleus(3));
  const net::ImplicitSuperIPTopology topo(spec);
  route::QueryEngineOptions opts;
  opts.enable_disjoint = true;
  const route::QueryEngine engine(topo, opts);
  ASSERT_NE(engine.disjoint_router(), nullptr);

  Xoshiro256 rng(77);
  for (int trial = 0; trial < 16; ++trial) {
    const auto src = static_cast<Node>(rng.below(topo.num_nodes()));
    const auto dst = static_cast<Node>(rng.below(topo.num_nodes()));
    const route::RouteAnswer sched =
        engine.answer({src, dst, route::QueryKind::kFullRoute});
    const route::RouteAnswer multi =
        engine.answer({src, dst, route::QueryKind::kFullRoute,
                       route::RoutePolicy::kDisjoint});
    ASSERT_EQ(multi.status, route::AnswerStatus::kOk);
    if (src == dst) {
      EXPECT_EQ(multi.distance, 0);
      continue;
    }
    // The disjoint primary is a shortest path; the schedule route need
    // not be, so the policy can only improve the distance.
    EXPECT_LE(multi.distance, sched.distance);
    EXPECT_EQ(multi.distance, static_cast<std::int32_t>(multi.gens.size()));
    // The answer's route must be walkable to dst.
    net::NodeId cur = src;
    for (const int gen : multi.gens) cur = topo.neighbor_via(cur, gen);
    EXPECT_EQ(cur, static_cast<net::NodeId>(dst));
    EXPECT_EQ(multi.first_gen, multi.gens.front());
    EXPECT_EQ(multi.next_hop, topo.neighbor_via(src, multi.gens.front()));
  }

  // Without enable_disjoint the policy is rejected, not silently ignored.
  const route::QueryEngine plain(topo);
  EXPECT_EQ(plain
                .answer({0, 1, route::QueryKind::kDistance,
                         route::RoutePolicy::kDisjoint})
                .status,
            route::AnswerStatus::kInvalid);
}

TEST(IstDisjoint, StructuralModeStaysDisjointBeyondTheSnapshotCaps) {
  const SuperIPSpec spec = make_hsn(3, hypercube_nucleus(2));
  const net::ImplicitSuperIPTopology topo(spec);
  KDisjointOptions opts;
  opts.max_snapshot_nodes = 0;  // force the beyond-snapshot code path
  const KDisjointRouter router(topo, opts);
  ASSERT_FALSE(router.snapshot_mode());

  Xoshiro256 rng(1234);
  int nonempty = 0;
  for (int trial = 0; trial < 24; ++trial) {
    const auto src = static_cast<net::NodeId>(rng.below(topo.num_nodes()));
    const auto dst = static_cast<net::NodeId>(rng.below(topo.num_nodes()));
    if (src == dst) continue;
    const DisjointRouteSet set = router.routes(src, dst);
    EXPECT_FALSE(set.certified);  // no oracle at structural scale
    EXPECT_FALSE(set.paths.empty());
    nonempty += !set.paths.empty();
    expect_valid_disjoint(topo, src, dst, set);
  }
  EXPECT_GT(nonempty, 0);
}

TEST(IstDisjoint, UnreachableAndDegeneratePairsComeBackEmpty) {
  const SuperIPSpec spec = make_hsn(2, hypercube_nucleus(2));
  const net::ImplicitSuperIPTopology topo(spec);
  const KDisjointRouter router(topo);
  EXPECT_TRUE(router.routes(0, 0).paths.empty());
  EXPECT_TRUE(router.routes(0, topo.num_nodes()).paths.empty());
  EXPECT_TRUE(router.routes(topo.num_nodes(), 0).paths.empty());
}

}  // namespace
}  // namespace ipg
