// Unit tests for the permutation algebra, including the paper's worked
// generator examples from Section 2.
#include <gtest/gtest.h>

#include "ipg/label.hpp"
#include "ipg/permutation.hpp"

namespace ipg {
namespace {

TEST(Permutation, IdentityFixesLabels) {
  const auto id = Permutation::identity(5);
  EXPECT_TRUE(id.is_identity());
  const Label x = make_label({3, 1, 4, 1, 5});
  EXPECT_EQ(id.apply(x), x);
}

TEST(Permutation, TranspositionMatchesPaperStarExample) {
  // Section 2: pi_1 = (1,2) maps x1 x2 x3 x4 x5 x6 to x2 x1 x3 x4 x5 x6.
  const auto pi1 = Permutation::transposition(6, 0, 1);
  const Label x = make_label({1, 2, 3, 4, 5, 6});
  EXPECT_EQ(pi1.apply(x), make_label({2, 1, 3, 4, 5, 6}));
  // pi_2 = (1,3): x3 x2 x1 x4 x5 x6.
  const auto pi2 = Permutation::transposition(6, 0, 2);
  EXPECT_EQ(pi2.apply(x), make_label({3, 2, 1, 4, 5, 6}));
}

TEST(Permutation, RotationMatchesPaperPi6Example) {
  // Section 2: pi_6 = 456123 maps y1..y6 to y4 y5 y6 y1 y2 y3.
  const auto pi6 = Permutation::rotate_left(6, 3);
  const Label y = make_label({11, 12, 13, 14, 15, 16});
  EXPECT_EQ(pi6.apply(y), make_label({14, 15, 16, 11, 12, 13}));
}

TEST(Permutation, RotateRightInvertsRotateLeft) {
  const auto l = Permutation::rotate_left(7, 2);
  const auto r = Permutation::rotate_right(7, 2);
  EXPECT_TRUE(l.then(r).is_identity());
  EXPECT_EQ(l.inverse(), r);
}

TEST(Permutation, RotationByFullLengthIsIdentity) {
  EXPECT_TRUE(Permutation::rotate_left(5, 5).is_identity());
  EXPECT_TRUE(Permutation::rotate_left(5, 0).is_identity());
}

TEST(Permutation, FlipPrefixReversesFront) {
  const auto f3 = Permutation::flip_prefix(5, 3);
  const Label x = make_label({1, 2, 3, 4, 5});
  EXPECT_EQ(f3.apply(x), make_label({3, 2, 1, 4, 5}));
  EXPECT_TRUE(f3.then(f3).is_identity());  // flips are involutions
}

TEST(Permutation, FromCyclesMovesAlongTheCycle) {
  // (0 1 2): symbol at 0 moves to 1, 1 to 2, 2 to 0.
  const auto c = Permutation::from_cycles(4, {{0, 1, 2}});
  const Label x = make_label({7, 8, 9, 5});
  EXPECT_EQ(c.apply(x), make_label({9, 7, 8, 5}));
}

TEST(Permutation, ThenComposesLeftToRight) {
  const auto a = Permutation::transposition(3, 0, 1);
  const auto b = Permutation::transposition(3, 1, 2);
  const Label x = make_label({1, 2, 3});
  EXPECT_EQ(a.then(b).apply(x), b.apply(a.apply(x)));
}

TEST(Permutation, InverseRoundTrips) {
  const auto p = Permutation::from_cycles(6, {{0, 3, 1}, {2, 5}});
  EXPECT_TRUE(p.then(p.inverse()).is_identity());
  EXPECT_TRUE(p.inverse().then(p).is_identity());
}

TEST(Permutation, ExpandBlocksMovesWholeBlocks) {
  // Block transposition (0,1) over 2 blocks of 3 symbols.
  const auto beta = Permutation::transposition(2, 0, 1).expand_blocks(3);
  const Label x = make_label({1, 2, 3, 4, 5, 6});
  EXPECT_EQ(beta.apply(x), make_label({4, 5, 6, 1, 2, 3}));
}

TEST(Permutation, ExpandBlocksPreservesIntraBlockOrder) {
  const auto beta = Permutation::rotate_left(3, 1).expand_blocks(2);
  const Label x = make_label({1, 2, 3, 4, 5, 6});
  EXPECT_EQ(beta.apply(x), make_label({3, 4, 5, 6, 1, 2}));
}

TEST(Permutation, EmbedActsLocally) {
  const auto p = Permutation::transposition(2, 0, 1).embed(5, 2);
  const Label x = make_label({1, 2, 3, 4, 5});
  EXPECT_EQ(p.apply(x), make_label({1, 2, 4, 3, 5}));
}

TEST(Permutation, CycleStringShowsSupportOnly) {
  EXPECT_EQ(Permutation::identity(4).to_cycle_string(), "()");
  const auto t = Permutation::transposition(4, 1, 3);
  EXPECT_EQ(t.to_cycle_string(), "(1 3)");
}

TEST(Permutation, ApplyIntoMatchesApply) {
  const auto p = Permutation::rotate_left(6, 2);
  const Label x = make_label({9, 8, 7, 6, 5, 4});
  Label out;
  p.apply_into(x, out);
  EXPECT_EQ(out, p.apply(x));
}

}  // namespace
}  // namespace ipg
