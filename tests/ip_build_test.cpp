// Tests for the IP-graph generation engine (Section 2): closure sizes,
// exact cross-validation of IP encodings against explicit constructions,
// and the paper's worked examples.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "graph/metrics.hpp"
#include "ipg/build.hpp"
#include "ipg/families.hpp"
#include "topo/de_bruijn.hpp"
#include "topo/hypercube.hpp"
#include "topo/ip_forms.hpp"
#include "topo/perm_rank.hpp"
#include "topo/shuffle.hpp"
#include "topo/star.hpp"

namespace ipg {
namespace {

using topo::decode_pair_bits;

TEST(IpBuild, StarGraphClosureHasFactorialSize) {
  for (int n = 3; n <= 6; ++n) {
    const IPGraph g = build_ip_graph(star_nucleus(n));
    EXPECT_EQ(g.num_nodes(), topo::kFactorials[n]) << "n=" << n;
  }
}

TEST(IpBuild, StarGraphMatchesExplicitConstruction) {
  // The IP labels are permutations (symbols 1..n); mapping each to its
  // Lehmer rank must carry the IP arc set exactly onto topo::star_graph.
  for (int n = 3; n <= 5; ++n) {
    const IPGraph ip = build_ip_graph(star_nucleus(n));
    const Graph explicit_star = topo::star_graph(n);
    ASSERT_EQ(ip.num_nodes(), explicit_star.num_nodes());
    std::vector<Node> to_rank(ip.num_nodes());
    for (Node u = 0; u < ip.num_nodes(); ++u) {
      std::vector<std::uint8_t> p(ip.labels()[u].begin(), ip.labels()[u].end());
      for (auto& s : p) s -= 1;  // symbols 1..n -> 0..n-1
      to_rank[u] = static_cast<Node>(topo::perm_rank(p));
    }
    std::uint64_t arcs = 0;
    for (Node u = 0; u < ip.num_nodes(); ++u) {
      for (const Node v : ip.graph.neighbors(u)) {
        EXPECT_TRUE(explicit_star.has_arc(to_rank[u], to_rank[v]));
        ++arcs;
      }
    }
    EXPECT_EQ(arcs, explicit_star.num_arcs());
  }
}

TEST(IpBuild, HypercubePairEncodingMatchesExplicitCube) {
  for (int n = 1; n <= 6; ++n) {
    const IPGraph ip = build_ip_graph(hypercube_nucleus(n));
    const Graph q = topo::hypercube(n);
    ASSERT_EQ(ip.num_nodes(), q.num_nodes()) << "n=" << n;
    std::uint64_t arcs = 0;
    for (Node u = 0; u < ip.num_nodes(); ++u) {
      const Node bu = decode_pair_bits(ip.labels()[u], /*msb_first=*/false);
      for (const Node v : ip.graph.neighbors(u)) {
        const Node bv = decode_pair_bits(ip.labels()[v], false);
        EXPECT_TRUE(q.has_arc(bu, bv));
        ++arcs;
      }
    }
    EXPECT_EQ(arcs, q.num_arcs());
  }
}

TEST(IpBuild, FoldedHypercubeEncodingMatchesExplicit) {
  for (int n = 2; n <= 6; ++n) {
    const IPGraph ip = build_ip_graph(folded_hypercube_nucleus(n));
    const Graph fq = topo::folded_hypercube(n);
    ASSERT_EQ(ip.num_nodes(), fq.num_nodes());
    std::uint64_t arcs = 0;
    for (Node u = 0; u < ip.num_nodes(); ++u) {
      const Node bu = decode_pair_bits(ip.labels()[u], false);
      for (const Node v : ip.graph.neighbors(u)) {
        EXPECT_TRUE(fq.has_arc(bu, decode_pair_bits(ip.labels()[v], false)));
        ++arcs;
      }
    }
    EXPECT_EQ(arcs, fq.num_arcs());
  }
}

TEST(IpBuild, DeBruijnIpFormMatchesExplicitDirected) {
  // Section 2's repeated-symbol showcase: the 2-generator IP graph is the
  // directed binary de Bruijn graph (self-loops at 00..0 / 11..1 drop out).
  for (int n = 2; n <= 8; ++n) {
    const IPGraph ip = build_ip_graph(topo::de_bruijn_ip_spec(n));
    const Graph db = topo::de_bruijn_directed(2, n);
    ASSERT_EQ(ip.num_nodes(), db.num_nodes()) << "n=" << n;
    std::uint64_t arcs = 0;
    for (Node u = 0; u < ip.num_nodes(); ++u) {
      const Node bu = decode_pair_bits(ip.labels()[u], /*msb_first=*/true);
      for (const Node v : ip.graph.neighbors(u)) {
        EXPECT_TRUE(db.has_arc(bu, decode_pair_bits(ip.labels()[v], true)));
        ++arcs;
      }
    }
    EXPECT_EQ(arcs, db.num_arcs());
  }
}

TEST(IpBuild, ShuffleExchangeIpFormMatchesExplicit) {
  for (int n = 2; n <= 8; ++n) {
    const IPGraph ip = build_ip_graph(topo::shuffle_exchange_ip_spec(n));
    const Graph se = topo::shuffle_exchange(n);
    ASSERT_EQ(ip.num_nodes(), se.num_nodes()) << "n=" << n;
    std::uint64_t arcs = 0;
    for (Node u = 0; u < ip.num_nodes(); ++u) {
      const Node bu = decode_pair_bits(ip.labels()[u], /*msb_first=*/true);
      for (const Node v : ip.graph.neighbors(u)) {
        EXPECT_TRUE(se.has_arc(bu, decode_pair_bits(ip.labels()[v], true)));
        ++arcs;
      }
    }
    EXPECT_EQ(arcs, se.num_arcs());
  }
}

TEST(IpBuild, PaperSection2IpExampleHas36Nodes) {
  // "Repeatedly applying the 3 generators ... will result in 36 distinct
  // nodes": generators pi1 = (1,2), pi2 = (1,3), pi6 = 456123 on a
  // 6-symbol seed with two identical halves — i.e. HSN(2, S3).
  IPGraphSpec spec;
  spec.name = "paper-example";
  spec.seed = make_label({1, 2, 3, 1, 2, 3});
  spec.generators = {
      {"pi1", Permutation::transposition(6, 0, 1), false},
      {"pi2", Permutation::transposition(6, 0, 2), false},
      {"pi6", Permutation::rotate_left(6, 3), true},
  };
  const IPGraph g = build_ip_graph(spec);
  EXPECT_EQ(g.num_nodes(), 36u);
  // Same closure as the library's HSN(2, S3).
  const IPGraph hsn = build_super_ip_graph(make_hsn(2, star_nucleus(3)));
  EXPECT_EQ(hsn.num_nodes(), 36u);
  EXPECT_EQ(profile(g.graph).diameter, profile(hsn.graph).diameter);
}

TEST(IpBuild, SeedChoiceInsideOrbitDoesNotChangeTheGraph) {
  // "using the label of any of the 16 nodes as the initial seed will
  // eventually generate exactly the same graph" (Section 2).
  const SuperIPSpec hcn = make_hcn(2);
  const IPGraph g = build_super_ip_graph(hcn);
  IPGraphSpec alt = hcn.to_ip_spec();
  alt.seed = g.labels()[g.num_nodes() - 1];
  const IPGraph g2 = build_ip_graph(alt);
  ASSERT_EQ(g2.num_nodes(), g.num_nodes());
  // Same node set (labels) and same arcs under the label identification.
  for (Node u = 0; u < g2.num_nodes(); ++u) {
    const Node original = g.node_of(g2.labels()[u]);
    ASSERT_NE(original, kInvalidIPNode);
    for (const Node v : g2.graph.neighbors(u)) {
      EXPECT_TRUE(g.graph.has_arc(original, g.node_of(g2.labels()[v])));
    }
  }
}

TEST(IpBuild, NodeOfAndApplyGeneratorAgreeWithArcs) {
  const IPGraph g = build_ip_graph(star_nucleus(4));
  for (Node u = 0; u < g.num_nodes(); ++u) {
    for (int gen = 0; gen < static_cast<int>(g.spec.generators.size()); ++gen) {
      const Node v = g.apply_generator(u, gen);
      EXPECT_TRUE(v == u || g.graph.has_arc(u, v));
    }
  }
  EXPECT_EQ(g.node_of(make_label({9, 9, 9, 9})), kInvalidIPNode);
}

TEST(IpBuild, ArcTagsRecordGenerators) {
  const IPGraph g = build_ip_graph(star_nucleus(4));
  ASSERT_TRUE(g.graph.has_tags());
  for (Node u = 0; u < g.num_nodes(); ++u) {
    const auto nb = g.graph.neighbors(u);
    const auto tags = g.graph.tags(u);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      EXPECT_EQ(g.apply_generator(u, tags[i]), nb[i]);
    }
  }
}

TEST(IpBuild, MaxNodesGuardThrows) {
  EXPECT_THROW(build_ip_graph(star_nucleus(7), /*max_nodes=*/100),
               std::length_error);
}

TEST(IpBuild, InvalidSpecRejected) {
  IPGraphSpec bad;
  bad.name = "bad";
  bad.seed = make_label({1, 2});
  bad.generators = {{"id", Permutation::identity(2), false}};
  EXPECT_THROW(build_ip_graph(bad), std::invalid_argument);
}

TEST(IpBuild, GeneratorCountBoundsDegree) {
  // Theorem 3.1: degree <= number of generators.
  const IPGraph g = build_super_ip_graph(make_hsn(3, hypercube_nucleus(2)));
  const auto stats = degree_stats(g.graph);
  EXPECT_LE(stats.max_degree, g.spec.generators.size());
}

TEST(IpBuild, BfsOrderSeedIsNodeZero) {
  const IPGraph g = build_ip_graph(star_nucleus(4));
  EXPECT_EQ(g.labels()[0], g.spec.seed);
  EXPECT_EQ(g.node_of(g.spec.seed), 0u);
}

TEST(IpBuild, PackedAndUnpackedBuildersAgreeExactly) {
  // The packed-label builder must be a pure storage change: same node
  // numbering, same label table, same arcs and tags as the legacy
  // vector-of-vectors reference builder.
  const std::vector<IPGraphSpec> specs = {
      star_nucleus(5), hypercube_nucleus(4), pancake_nucleus(4),
      make_hsn(3, hypercube_nucleus(2)).to_ip_spec()};
  for (const IPGraphSpec& spec : specs) {
    SCOPED_TRACE(spec.name);
    const IPGraph packed = build_ip_graph(spec);
    const IPGraph legacy = build_ip_graph_unpacked(spec);
    EXPECT_TRUE(packed.packed());
    EXPECT_FALSE(legacy.packed());
    ASSERT_EQ(packed.num_nodes(), legacy.num_nodes());
    ASSERT_EQ(packed.labels(), legacy.labels());
    for (Node u = 0; u < packed.num_nodes(); ++u) {
      ASSERT_EQ(packed.node_of(legacy.labels()[u]), u);
      ASSERT_TRUE(std::ranges::equal(packed.graph.neighbors(u),
                                     legacy.graph.neighbors(u)));
      ASSERT_TRUE(std::ranges::equal(packed.graph.tags(u),
                                     legacy.graph.tags(u)));
    }
  }
}

TEST(IpBuild, ApplyGeneratorScratchOverloadMatches) {
  // Both storage modes; the scratch overload must agree with the plain one.
  for (const bool force_legacy : {false, true}) {
    const IPGraphSpec spec = star_nucleus(4);
    const IPGraph g =
        force_legacy ? build_ip_graph_unpacked(spec) : build_ip_graph(spec);
    Label scratch;
    for (Node u = 0; u < g.num_nodes(); ++u) {
      for (int gen = 0; gen < static_cast<int>(g.spec.generators.size());
           ++gen) {
        EXPECT_EQ(g.apply_generator(u, gen, scratch),
                  g.apply_generator(u, gen));
      }
    }
  }
}

TEST(IpBuild, MemoryAccountingIsPopulated) {
  const IPGraph packed = build_ip_graph(star_nucleus(5));
  ASSERT_TRUE(packed.packed());
  EXPECT_EQ(packed.index_size(), packed.num_nodes());
  // Packed storage: at most 16 label bytes per node plus the flat index.
  EXPECT_GE(packed.label_bytes(), 8u * packed.num_nodes());
  EXPECT_LE(packed.label_bytes(), 16u * packed.num_nodes());
  EXPECT_GT(packed.index_bytes(), 0u);

  const IPGraph legacy = build_ip_graph_unpacked(star_nucleus(5));
  EXPECT_GT(legacy.label_bytes(), 0u);
  EXPECT_GT(legacy.index_bytes(), 0u);
  // The headline claim: packed labels cut label-table bytes by >= 2x.
  EXPECT_GE(legacy.label_bytes(), 2u * packed.label_bytes());
}

}  // namespace
}  // namespace ipg
