// Property tests pinning the word-parallel packed-label batch kernels to
// their scalar references: extract/deposit round-trips across the word
// boundary, pack/unpack/apply batches element-wise equal to LabelCodec and
// Permutation::apply, and PackedSuperCodec's Theorem 3.2 rank <-> label
// conversion bit-identical to SuperRanking on every plain family variant
// (rank -> unrank -> rank closes; symmetric seeds are rejected).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ipg/families.hpp"
#include "ipg/packed_batch.hpp"
#include "ipg/packed_label.hpp"
#include "ipg/permutation.hpp"
#include "ipg/ranking.hpp"
#include "ipg/super.hpp"
#include "ipg/symmetric.hpp"
#include "random_spec.hpp"
#include "util/narrow.hpp"
#include "util/prng.hpp"

namespace ipg {
namespace {

std::vector<SuperIPSpec> plain_family_specs() {
  return {
      make_hcn(2),
      make_hsn(3, hypercube_nucleus(2)),
      make_ring_cn(3, star_nucleus(3)),
      make_complete_cn(3, hypercube_nucleus(2)),
      make_directed_cn(3, star_nucleus(3)),
      make_super_flip(3, hypercube_nucleus(2)),
  };
}

TEST(PackedBatch, ExtractDepositRoundTripAcrossWordBoundary) {
  Xoshiro256 rng(0xb17);
  for (int trial = 0; trial < 2000; ++trial) {
    PackedLabel x{{rng(), rng()}};
    const int width = 1 + static_cast<int>(rng.below(64));
    const int start =
        static_cast<int>(rng.below(static_cast<std::uint64_t>(128 - width + 1)));
    const std::uint64_t mask =
        width >= 64 ? ~0ull : (1ull << width) - 1;
    const std::uint64_t value = rng() & mask;

    const PackedLabel before = x;
    deposit_bits(x, start, width, value);
    ASSERT_EQ(extract_bits(x, start, width), value)
        << "start=" << start << " width=" << width;

    // Bits outside [start, start+width) are untouched: deposit the old
    // window back and the whole 128-bit value must round-trip.
    deposit_bits(x, start, width, extract_bits(before, start, width));
    ASSERT_EQ(x, before) << "start=" << start << " width=" << width;
  }
}

TEST(PackedBatch, PackUnpackBatchesMatchScalarCodec) {
  Xoshiro256 rng(0x9a6);
  const LabelCodec codec = LabelCodec::for_shape(12, 14);
  ASSERT_TRUE(codec.valid());

  std::vector<Label> labels(64, Label(12));
  for (Label& x : labels) {
    for (std::uint8_t& s : x) s = static_cast<std::uint8_t>(rng.below(15));
  }
  std::vector<PackedLabel> packed(labels.size());
  pack_batch(codec, labels, packed);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    ASSERT_EQ(packed[i], codec.pack(labels[i])) << i;
  }
  std::vector<Label> back(labels.size());
  unpack_batch(codec, packed, back);
  ASSERT_EQ(back, labels);
}

TEST(PackedBatch, ApplyPermBatchMatchesScalarPermutation) {
  Xoshiro256 rng(0xfeed);
  const int k = 20;  // two-word shape at 4 bits
  const LabelCodec codec = LabelCodec::for_shape(k, 9);
  ASSERT_TRUE(codec.valid());

  for (int round = 0; round < 20; ++round) {
    // Random permutation via seeded Fisher-Yates.
    std::vector<std::uint8_t> perm(as_size(k));
    for (int i = 0; i < k; ++i) {
      perm[as_size(i)] = static_cast<std::uint8_t>(i);
    }
    for (int i = k - 1; i > 0; --i) {
      const auto j = as_size(rng.below(static_cast<std::uint64_t>(i + 1)));
      std::swap(perm[as_size(i)], perm[j]);
    }
    const Permutation p(perm);
    const PackedPerm pp(codec, p);

    std::vector<Label> labels(32, Label(as_size(k)));
    for (Label& x : labels) {
      for (std::uint8_t& s : x) s = static_cast<std::uint8_t>(rng.below(10));
    }
    std::vector<PackedLabel> in(labels.size()), out(labels.size());
    pack_batch(codec, labels, in);
    apply_perm_batch(pp, in, out);
    Label expect;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      p.apply_into(labels[i], expect);
      ASSERT_EQ(codec.unpack(out[i]), expect) << "round " << round;
    }
    // Aliasing contract: in == out spans.
    apply_perm_batch(pp, in, in);
    ASSERT_EQ(in, out);
  }
}

TEST(PackedBatch, SuperCodecMatchesSuperRankingOnPlainVariants) {
  for (const SuperIPSpec& spec : plain_family_specs()) {
    SCOPED_TRACE(spec.name);
    const SuperRanking ranking(spec);
    const PackedSuperCodec codec(spec, ranking);
    ASSERT_TRUE(codec.valid());
    ASSERT_EQ(codec.size(), ranking.size());

    Xoshiro256 rng(0x400 + ranking.size());
    std::vector<std::uint64_t> ranks(128);
    for (std::uint64_t& r : ranks) r = rng.below(ranking.size());

    std::vector<PackedLabel> packed(ranks.size());
    codec.unrank_batch(ranks, packed);
    std::vector<std::uint64_t> back(ranks.size());
    codec.rank_batch(packed, back);
    ASSERT_EQ(back, ranks);  // rank -> unrank -> rank closes

    Label scalar_label;
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      // Element-wise agreement with the scalar Theorem 3.2 codec.
      ranking.unrank_into(ranks[i], scalar_label);
      ASSERT_EQ(codec.codec().unpack(packed[i]), scalar_label) << i;
      ASSERT_EQ(codec.rank(codec.codec().pack(scalar_label)), ranks[i]) << i;
      ASSERT_EQ(codec.try_rank(packed[i]), ranks[i]) << i;
    }
  }
}

TEST(PackedBatch, SuperCodecMatchesSuperRankingOnRandomPlainSpecs) {
  Xoshiro256 rng(0x123877);
  int checked = 0;
  while (checked < 5) {
    const SuperIPSpec spec = testing::random_super_ip_spec(rng);
    const SuperRanking ranking(spec);
    if (ranking.symmetric_seed()) continue;
    const PackedSuperCodec codec(spec, ranking);
    if (!codec.valid()) continue;  // label too wide to pack
    SCOPED_TRACE(spec.name);
    ++checked;

    Label scalar_label;
    for (int trial = 0; trial < 100; ++trial) {
      const std::uint64_t r = rng.below(ranking.size());
      const PackedLabel x = codec.unrank(r);
      ranking.unrank_into(r, scalar_label);
      ASSERT_EQ(codec.codec().unpack(x), scalar_label);
      ASSERT_EQ(codec.rank(x), ranking.rank(scalar_label));
    }
  }
}

TEST(PackedBatch, SuperCodecRejectsSymmetricSeeds) {
  const SuperIPSpec spec = make_symmetric(make_hsn(3, hypercube_nucleus(2)));
  const SuperRanking ranking(spec);
  ASSERT_TRUE(ranking.symmetric_seed());
  const PackedSuperCodec codec(spec, ranking);
  EXPECT_FALSE(codec.valid());
  EXPECT_FALSE(PackedSuperCodec().valid());  // default-constructed
}

TEST(PackedBatch, SuperCodecTryRankRejectsNonOrbitBlocks) {
  const SuperIPSpec spec = make_hsn(3, hypercube_nucleus(2));
  const SuperRanking ranking(spec);
  const PackedSuperCodec codec(spec, ranking);
  ASSERT_TRUE(codec.valid());

  PackedLabel x = codec.unrank(7);
  // Corrupt block 0 to a content outside the nucleus orbit (duplicate
  // symbol): Q2's blocks are permutations of {0, 1}.
  deposit_bits(x, 0, codec.block_bits(), 0);
  EXPECT_EQ(codec.try_rank(x), SuperRanking::kInvalidRank);
}

}  // namespace
}  // namespace ipg
