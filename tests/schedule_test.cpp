// Tests for super-generator schedules: the exact t of Theorem 4.1, t_S of
// Theorem 4.3, witness validity, and arrangement-group sizes (Section 3.5).
#include <gtest/gtest.h>

#include "ipg/families.hpp"
#include "ipg/schedule.hpp"
#include "topo/hypercube.hpp"
#include "util/narrow.hpp"

namespace ipg {
namespace {

SuperIPSpec family(const std::string& kind, int l) {
  const IPGraphSpec nucleus = hypercube_nucleus(2);
  if (kind == "hsn") return make_hsn(l, nucleus);
  if (kind == "ring") return make_ring_cn(l, nucleus);
  if (kind == "complete") return make_complete_cn(l, nucleus);
  if (kind == "directed") return make_directed_cn(l, nucleus);
  if (kind == "flip") return make_super_flip(l, nucleus);
  ADD_FAILURE() << "unknown kind " << kind;
  return make_hsn(l, nucleus);
}

class ScheduleAllFamilies
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(ScheduleAllFamilies, TEqualsLMinusOne) {
  // Section 4: "t ... is at least l-1 for any super-IP graph and is equal
  // to l-1 for all the super-IP graphs introduced in Section 3".
  const auto [kind, l] = GetParam();
  EXPECT_EQ(compute_t(family(kind, l)), l - 1);
}

TEST_P(ScheduleAllFamilies, WitnessScheduleVisitsEveryBlock) {
  const auto [kind, l] = GetParam();
  const SuperIPSpec spec = family(kind, l);
  const auto sched = min_visit_all_schedule(spec);
  ASSERT_TRUE(sched.has_value());
  EXPECT_EQ(sched->length(), l - 1);

  // Replay the schedule and verify every block reaches position 0.
  Arrangement arr(as_size(l));
  for (int i = 0; i < l; ++i) arr[as_size(i)] = static_cast<std::uint8_t>(i);
  std::vector<bool> visited(as_size(l), false);
  visited[arr[0]] = true;
  Arrangement next(as_size(l));
  for (const int g : sched->gens) {
    const Permutation& beta = spec.super_gens[as_size(g)].perm;
    for (int p = 0; p < l; ++p) next[as_size(p)] = arr[beta[p]];
    arr = next;
    visited[arr[0]] = true;
  }
  for (int i = 0; i < l; ++i) EXPECT_TRUE(visited[as_size(i)]) << "block " << i;
  EXPECT_EQ(arr, sched->final_arrangement);
}

TEST_P(ScheduleAllFamilies, TSymmetricAtLeastT) {
  const auto [kind, l] = GetParam();
  const SuperIPSpec spec = family(kind, l);
  EXPECT_GE(compute_t_symmetric(spec), compute_t(spec));
}

INSTANTIATE_TEST_SUITE_P(
    Families, ScheduleAllFamilies,
    ::testing::Combine(::testing::Values("hsn", "ring", "complete", "directed",
                                         "flip"),
                       ::testing::Values(2, 3, 4, 5, 6)),
    [](const auto& tpi) {
      return std::get<0>(tpi.param) + "_l" + std::to_string(std::get<1>(tpi.param));
    });

TEST(Schedule, ReachableArrangementsMatchGroupOrders) {
  // Transpositions and flips generate the full symmetric group (l!);
  // cyclic shifts generate the cyclic group (l) — this is exactly why
  // symmetric HSNs have l! * M^l nodes and symmetric CNs l * M^l
  // (Section 3.5).
  const std::uint64_t factorial[] = {1, 1, 2, 6, 24, 120, 720};
  for (int l = 2; l <= 6; ++l) {
    EXPECT_EQ(num_reachable_arrangements(family("hsn", l)), factorial[l]);
    EXPECT_EQ(num_reachable_arrangements(family("flip", l)), factorial[l]);
    EXPECT_EQ(num_reachable_arrangements(family("ring", l)),
              static_cast<std::uint64_t>(l));
    EXPECT_EQ(num_reachable_arrangements(family("complete", l)),
              static_cast<std::uint64_t>(l));
    EXPECT_EQ(num_reachable_arrangements(family("directed", l)),
              static_cast<std::uint64_t>(l));
  }
}

TEST(Schedule, KnownTSymmetricValues) {
  // Verified against explicit diameters in families_test: the measured
  // diameter of each symmetric variant equals l * D_G + t_S (Theorem 4.3).
  EXPECT_EQ(compute_t_symmetric(family("hsn", 2)), 2);
  EXPECT_EQ(compute_t_symmetric(family("hsn", 3)), 4);
  EXPECT_EQ(compute_t_symmetric(family("ring", 3)), 3);
  EXPECT_EQ(compute_t_symmetric(family("ring", 4)), 4);
}

TEST(Schedule, ScheduleToArrangementReachesExactTarget) {
  const SuperIPSpec spec = family("hsn", 4);
  const Arrangement target{2, 0, 3, 1};
  const auto sched = schedule_to_arrangement(spec, target);
  ASSERT_TRUE(sched.has_value());
  EXPECT_EQ(sched->final_arrangement, target);
  EXPECT_LE(sched->length(), compute_t_symmetric(spec));

  Arrangement arr{0, 1, 2, 3};
  Arrangement next(4);
  std::vector<bool> visited(4, false);
  visited[0] = true;
  for (const int g : sched->gens) {
    const Permutation& beta = spec.super_gens[as_size(g)].perm;
    for (int p = 0; p < 4; ++p) next[as_size(p)] = arr[beta[p]];
    arr = next;
    visited[arr[0]] = true;
  }
  EXPECT_EQ(arr, target);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(visited[as_size(i)]);
}

TEST(Schedule, UnreachableArrangementReported) {
  // Cyclic shifts cannot produce a transposition of two blocks.
  const SuperIPSpec spec = family("ring", 4);
  const Arrangement swapped{1, 0, 2, 3};
  EXPECT_FALSE(schedule_to_arrangement(spec, swapped).has_value());
}

TEST(Schedule, IdentityTargetStillRequiresVisits) {
  // Ending where we started while visiting all blocks costs extra steps.
  const SuperIPSpec spec = family("ring", 3);
  const Arrangement identity{0, 1, 2};
  const auto sched = schedule_to_arrangement(spec, identity);
  ASSERT_TRUE(sched.has_value());
  EXPECT_EQ(sched->length(), 3);  // L,L,L (or R,R,R): a full rotation
}

}  // namespace
}  // namespace ipg
