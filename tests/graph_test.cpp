// Unit tests for the graph substrate: builder semantics, BFS, 0/1 BFS,
// distance summaries, quotients, connectivity and symmetry checks.
#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/connectivity.hpp"
#include "graph/graph.hpp"
#include "graph/metrics.hpp"
#include "graph/quotient.hpp"
#include "graph/symmetry.hpp"
#include "topo/misc.hpp"
#include "topo/torus.hpp"

namespace ipg {
namespace {

TEST(GraphBuilder, DropsSelfLoopsByDefault) {
  GraphBuilder b(3);
  b.add_arc(0, 0);
  b.add_arc(0, 1);
  const Graph g = std::move(b).build();
  EXPECT_EQ(g.num_arcs(), 1u);
  EXPECT_FALSE(g.has_arc(0, 0));
}

TEST(GraphBuilder, KeepsSelfLoopsOnRequest) {
  GraphBuilder b(2);
  b.add_arc(0, 0);
  const Graph g = std::move(b).build(/*keep_self_loops=*/true);
  EXPECT_EQ(g.num_arcs(), 1u);
  EXPECT_TRUE(g.has_arc(0, 0));
}

TEST(GraphBuilder, MergesParallelArcs) {
  GraphBuilder b(2, /*tagged=*/true);
  b.add_arc(0, 1, 3);
  b.add_arc(0, 1, 1);
  b.add_arc(0, 1, 2);
  const Graph g = std::move(b).build();
  EXPECT_EQ(g.num_arcs(), 1u);
  ASSERT_TRUE(g.has_tags());
  EXPECT_EQ(g.tags(0)[0], 1);  // merged arc keeps the smallest tag
}

TEST(GraphBuilder, AddEdgeCreatesBothArcs) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const Graph g = std::move(b).build();
  EXPECT_TRUE(g.has_arc(0, 1));
  EXPECT_TRUE(g.has_arc(1, 0));
  EXPECT_TRUE(g.is_symmetric());
}

TEST(Graph, NeighborsSortedAndDegreesMatch) {
  GraphBuilder b(4);
  b.add_arc(0, 3);
  b.add_arc(0, 1);
  b.add_arc(0, 2);
  const Graph g = std::move(b).build();
  const auto nb = g.neighbors(0);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  EXPECT_EQ(g.out_degree(0), 3u);
  EXPECT_EQ(g.out_degree(1), 0u);
}

TEST(Graph, AsymmetricDigraphDetected) {
  GraphBuilder b(2);
  b.add_arc(0, 1);
  const Graph g = std::move(b).build();
  EXPECT_FALSE(g.is_symmetric());
}

TEST(Bfs, DistancesOnPath) {
  const Graph g = topo::path(5);
  const auto dist = bfs_distances(g, 0);
  for (Node u = 0; u < 5; ++u) EXPECT_EQ(dist[u], u);
}

TEST(Bfs, UnreachableMarked) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const Graph g = std::move(b).build();
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[2], kUnreachable);
}

TEST(Bfs, ScratchReusableAcrossSources) {
  const Graph g = topo::cycle(6);
  BfsScratch scratch(6);
  EXPECT_EQ(scratch.run(g, 0)[3], 3u);
  EXPECT_EQ(scratch.run(g, 2)[5], 3u);
  EXPECT_EQ(scratch.run(g, 2)[2], 0u);
}

TEST(Bfs, ZeroOneWeightsCountOnlyCrossModuleHops) {
  // Path 0-1-2-3 with modules {0,1} and {2,3}: crossing once costs 1.
  const Graph g = topo::path(4);
  const std::vector<std::uint32_t> module_of{0, 0, 1, 1};
  const auto dist = bfs_distances_01(g, 0, module_of);
  EXPECT_EQ(dist[1], 0u);
  EXPECT_EQ(dist[2], 1u);
  EXPECT_EQ(dist[3], 1u);
}

TEST(Bfs, SourceStatsSummarize) {
  const Graph g = topo::path(4);
  const auto s = source_stats(bfs_distances(g, 0));
  EXPECT_EQ(s.eccentricity, 3u);
  EXPECT_EQ(s.reachable, 4u);
  EXPECT_EQ(s.distance_sum, 0u + 1 + 2 + 3);
}

TEST(Bfs, AllPairsSummaryOnCycle) {
  const Graph g = topo::cycle(6);
  const auto d = all_pairs_distance_summary(g);
  EXPECT_EQ(d.diameter, 3u);
  EXPECT_TRUE(d.strongly_connected);
  // Each node sees distances {0,1,1,2,2,3}: average over ordered pairs 9/5.
  EXPECT_DOUBLE_EQ(d.average_distance, 9.0 / 5.0);
  ASSERT_EQ(d.histogram.size(), 4u);
  EXPECT_EQ(d.histogram[0], 6u);
  EXPECT_EQ(d.histogram[3], 6u);
}

TEST(Bfs, MultiSourceSummaryMatchesSubset) {
  const Graph g = topo::cycle(8);
  const std::vector<Node> sources{0, 4};
  const auto d = multi_source_distance_summary(g, sources);
  EXPECT_EQ(d.diameter, 4u);
}

TEST(Metrics, DegreeStatsOnIrregularGraph) {
  const Graph g = topo::path(3);
  const auto s = degree_stats(g);
  EXPECT_EQ(s.min_degree, 1u);
  EXPECT_EQ(s.max_degree, 2u);
  EXPECT_FALSE(s.regular);
  EXPECT_NEAR(s.avg_degree, 4.0 / 3.0, 1e-12);
}

TEST(Metrics, ProfileOfTorus) {
  const Graph g = topo::torus2d(4, 4);
  const auto p = profile(g);
  EXPECT_EQ(p.nodes, 16u);
  EXPECT_EQ(p.links, 32u);
  EXPECT_EQ(p.degree, 4u);
  EXPECT_EQ(p.diameter, 4u);
  EXPECT_TRUE(p.connected);
  EXPECT_TRUE(p.symmetric_digraph);
  EXPECT_EQ(dd_cost(p), 16u);
}

TEST(Quotient, ContractsColorsAndDropsInternalEdges) {
  // 4-cycle with opposite pairs colored together -> 2 colors, 1 link.
  const Graph g = topo::cycle(4);
  const std::vector<std::uint32_t> color{0, 1, 0, 1};
  const Graph q = quotient_graph(g, color, 2);
  EXPECT_EQ(q.num_nodes(), 2u);
  EXPECT_TRUE(q.has_arc(0, 1));
  EXPECT_TRUE(q.has_arc(1, 0));
  EXPECT_EQ(q.num_arcs(), 2u);  // parallel arcs merged
}

TEST(Quotient, CountsCrossColorArcs) {
  const Graph g = topo::cycle(4);
  const std::vector<std::uint32_t> color{0, 1, 0, 1};
  EXPECT_EQ(count_cross_color_arcs(g, color), 8u);  // every arc crosses
}

TEST(Connectivity, DirectedCycleIsStronglyConnected) {
  GraphBuilder b(4);
  for (Node u = 0; u < 4; ++u) b.add_arc(u, (u + 1) % 4);
  const Graph g = std::move(b).build();
  EXPECT_TRUE(is_connected_from(g));
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(Connectivity, OneWayChainIsNotStronglyConnected) {
  GraphBuilder b(3);
  b.add_arc(0, 1);
  b.add_arc(1, 2);
  const Graph g = std::move(b).build();
  EXPECT_TRUE(is_connected_from(g, 0));
  EXPECT_FALSE(is_strongly_connected(g));
}

TEST(Symmetry, CycleLooksVertexTransitive) {
  EXPECT_TRUE(looks_vertex_transitive(topo::cycle(7)));
}

TEST(Symmetry, PathDoesNot) {
  EXPECT_FALSE(looks_vertex_transitive(topo::path(4)));
}

TEST(Symmetry, RegularButNotTransitiveCaught) {
  // Two disjoint triangles joined by... simpler: K4 minus a perfect
  // matching is a 4-cycle (transitive); instead use the 3-regular prism vs
  // K_3,3: both regular. Use a graph regular but with differing distance
  // profiles: the "bull" won't work (not regular). Take two components of
  // different sizes, both cycles: regular degree 2, but profiles differ.
  GraphBuilder b(7);
  for (Node u = 0; u < 3; ++u) b.add_edge(u, (u + 1) % 3);
  for (Node u = 0; u < 4; ++u) b.add_edge(3 + u, 3 + (u + 1) % 4);
  const Graph g = std::move(b).build();
  EXPECT_TRUE(is_regular(g));
  EXPECT_FALSE(looks_vertex_transitive(g));
}

}  // namespace
}  // namespace ipg
