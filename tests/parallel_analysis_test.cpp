// Differential tests for the parallel exact-analysis engine: the
// thread-pooled all-pairs BFS summaries, the frontier-parallel IP-graph
// closure and the parallel I-metrics sweep must produce results identical
// to the serial legacy path at every thread count (the library's
// determinism guarantee — see docs/MODEL.md). Also pins down the BFS edge
// cases the parallel merge has to preserve: disconnected graphs,
// single-node graphs and degenerate module assignments.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/exact.hpp"
#include "cluster/clustering.hpp"
#include "cluster/imetrics.hpp"
#include "graph/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/metrics.hpp"
#include "ipg/families.hpp"
#include "ipg/super.hpp"
#include "ipg/symmetric.hpp"
#include "topo/misc.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"

namespace ipg {
namespace {

const int kThreadCounts[] = {1, 2, 8};

void expect_graphs_identical(const Graph& a, const Graph& b,
                             const std::string& what) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes()) << what;
  ASSERT_EQ(a.num_arcs(), b.num_arcs()) << what;
  ASSERT_EQ(a.has_tags(), b.has_tags()) << what;
  for (Node u = 0; u < a.num_nodes(); ++u) {
    const auto na = a.neighbors(u);
    const auto nb = b.neighbors(u);
    ASSERT_EQ(std::vector<Node>(na.begin(), na.end()),
              std::vector<Node>(nb.begin(), nb.end()))
        << what << " at node " << u;
    const auto ta = a.tags(u);
    const auto tb = b.tags(u);
    ASSERT_EQ(std::vector<EdgeTag>(ta.begin(), ta.end()),
              std::vector<EdgeTag>(tb.begin(), tb.end()))
        << what << " tags at node " << u;
  }
}

void expect_summaries_identical(const DistanceSummary& serial,
                                const DistanceSummary& parallel,
                                const std::string& what) {
  EXPECT_EQ(serial.diameter, parallel.diameter) << what;
  EXPECT_EQ(serial.strongly_connected, parallel.strongly_connected) << what;
  EXPECT_EQ(serial.histogram, parallel.histogram) << what;
  // The parallel merge is over integral partials, so even the floating
  // average must match bit for bit.
  EXPECT_EQ(serial.average_distance, parallel.average_distance) << what;
}

void check_graph_analysis(const Graph& g, const std::string& what) {
  const DistanceSummary serial = all_pairs_distance_summary(g);
  const TopologyProfile serial_profile = profile(g);
  std::vector<Node> some_sources;
  for (Node u = 0; u < g.num_nodes(); u += 3) some_sources.push_back(u);
  const DistanceSummary serial_multi =
      multi_source_distance_summary(g, some_sources);
  for (const int threads : kThreadCounts) {
    const ExecPolicy exec{threads};
    const std::string tag = what + " @" + std::to_string(threads) + "t";
    expect_summaries_identical(serial, all_pairs_distance_summary(g, exec),
                               tag);
    expect_summaries_identical(
        serial_multi, multi_source_distance_summary(g, some_sources, exec),
        tag + " multi-source");
    const TopologyProfile p = profile(g, exec);
    EXPECT_EQ(serial_profile.diameter, p.diameter) << tag;
    EXPECT_EQ(serial_profile.average_distance, p.average_distance) << tag;
    EXPECT_EQ(serial_profile.connected, p.connected) << tag;
    EXPECT_EQ(serial_profile.degree, p.degree) << tag;
    // The single-sweep combined entry point must agree with both views.
    const ExactAnalysis ea = exact_analysis(g, exec);
    expect_summaries_identical(serial, ea.distances, tag + " exact_analysis");
    EXPECT_EQ(serial_profile.diameter, ea.profile.diameter) << tag;
    EXPECT_EQ(serial_profile.nodes, ea.profile.nodes) << tag;
    EXPECT_EQ(serial_profile.links, ea.profile.links) << tag;
  }
}

void check_super_ip_family(const SuperIPSpec& spec) {
  const IPGraph serial = build_super_ip_graph(spec);
  for (const int threads : kThreadCounts) {
    const ExecPolicy exec{threads};
    const IPGraph parallel = build_super_ip_graph(spec, 1u << 24, exec);
    const std::string tag = spec.name + " @" + std::to_string(threads) + "t";
    ASSERT_EQ(serial.labels(), parallel.labels()) << tag;  // ids AND order
    ASSERT_EQ(serial.index_size(), parallel.index_size()) << tag;
    expect_graphs_identical(serial.graph, parallel.graph, tag);
  }
  check_graph_analysis(serial.graph, spec.name);

  // I-metrics over the one-nucleus-per-module packaging.
  const ModuleAssignment ma = nucleus_modules(serial, spec.m);
  const Clustering c{ma.module_of, ma.num_modules};
  const IMetrics serial_metrics = i_metrics(serial.graph, c);
  for (const int threads : kThreadCounts) {
    const IMetrics m = i_metrics(serial.graph, c, ExecPolicy{threads});
    const std::string tag = spec.name + " i-metrics @" +
                            std::to_string(threads) + "t";
    EXPECT_EQ(serial_metrics.i_degree, m.i_degree) << tag;
    EXPECT_EQ(serial_metrics.i_diameter, m.i_diameter) << tag;
    EXPECT_EQ(serial_metrics.avg_i_distance, m.avg_i_distance) << tag;
  }
}

TEST(ParallelClosure, HsnMatchesSerial) {
  check_super_ip_family(make_hsn(2, hypercube_nucleus(3)));
  check_super_ip_family(make_hsn(3, hypercube_nucleus(2)));
  check_super_ip_family(make_hsn(3, star_nucleus(3)));
}

TEST(ParallelClosure, RingCnMatchesSerial) {
  check_super_ip_family(make_ring_cn(3, complete_nucleus(4)));
  check_super_ip_family(make_ring_cn(4, cycle_nucleus(4)));
}

TEST(ParallelClosure, CompleteCnMatchesSerial) {
  check_super_ip_family(make_complete_cn(3, cycle_nucleus(5)));
  check_super_ip_family(make_complete_cn(4, complete_nucleus(3)));
}

TEST(ParallelClosure, DirectedCnMatchesSerial) {
  // Genuinely directed network: exercises the asymmetric-digraph paths.
  check_super_ip_family(make_directed_cn(3, complete_nucleus(4)));
}

TEST(ParallelClosure, SuperFlipMatchesSerial) {
  check_super_ip_family(make_super_flip(3, hypercube_nucleus(2)));
  check_super_ip_family(make_super_flip(3, pancake_nucleus(3)));
}

TEST(ParallelClosure, SymmetricVariantsMatchSerial) {
  check_super_ip_family(make_symmetric(make_hsn(2, hypercube_nucleus(3))));
  check_super_ip_family(make_symmetric(make_ring_cn(3, complete_nucleus(3))));
  check_super_ip_family(make_symmetric(make_super_flip(3, cycle_nucleus(3))));
}

TEST(ParallelClosure, PlainIpSpecMatchesSerial) {
  const IPGraphSpec nucleus = star_nucleus(4);
  const IPGraph serial = build_ip_graph(nucleus);
  for (const int threads : kThreadCounts) {
    const IPGraph parallel = build_ip_graph(nucleus, 1u << 24,
                                            ExecPolicy{threads});
    ASSERT_EQ(serial.labels(), parallel.labels());
    expect_graphs_identical(serial.graph, parallel.graph,
                            "S4 @" + std::to_string(threads) + "t");
  }
}

TEST(ParallelClosure, MaxNodesOverflowThrowsLikeSerial) {
  const SuperIPSpec spec = make_hsn(2, hypercube_nucleus(3));
  EXPECT_THROW(build_super_ip_graph(spec, 10), std::length_error);
  for (const int threads : kThreadCounts) {
    EXPECT_THROW(build_super_ip_graph(spec, 10, ExecPolicy{threads}),
                 std::length_error)
        << threads;
  }
}

Graph random_graph(Node n, std::uint64_t arcs, std::uint64_t seed,
                   bool undirected) {
  Xoshiro256 rng(seed);
  GraphBuilder b(n);
  for (std::uint64_t i = 0; i < arcs; ++i) {
    const Node u = static_cast<Node>(rng.below(n));
    const Node v = static_cast<Node>(rng.below(n));
    if (undirected) {
      b.add_edge(u, v);
    } else {
      b.add_arc(u, v);
    }
  }
  return std::move(b).build();
}

TEST(ParallelSummary, RandomTopologiesMatchSerial) {
  // Sparse instances are usually disconnected — exactly the merge paths
  // (kUnreachable, strongly_connected) that must survive parallelization.
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    check_graph_analysis(random_graph(97, 150, seed, /*undirected=*/true),
                         "rand-undirected-" + std::to_string(seed));
    check_graph_analysis(random_graph(97, 300, seed, /*undirected=*/false),
                         "rand-directed-" + std::to_string(seed));
    check_graph_analysis(random_graph(64, 64, seed, /*undirected=*/true),
                         "rand-sparse-" + std::to_string(seed));
  }
}

TEST(ParallelSummary, ClassicTopologiesMatchSerial) {
  check_graph_analysis(topo::petersen(), "petersen");
  check_graph_analysis(topo::complete(9), "K9");
  check_graph_analysis(topo::cycle(17), "C17");
  check_graph_analysis(topo::path(23), "P23");
}

TEST(ParallelSummary, ThreadCountBeyondSourcesIsSafe) {
  const Graph g = topo::cycle(3);
  const DistanceSummary serial = all_pairs_distance_summary(g);
  expect_summaries_identical(serial,
                             all_pairs_distance_summary(g, ExecPolicy{16}),
                             "C3 @16t");
}

TEST(ParallelSummary, AutoPolicyMatchesSerial) {
  const Graph g = topo::petersen();
  // ExecPolicy{} resolves IPG_THREADS / hardware_concurrency; whatever it
  // picks, the result must be the serial one.
  expect_summaries_identical(all_pairs_distance_summary(g),
                             all_pairs_distance_summary(g, ExecPolicy{}),
                             "petersen @auto");
}

// ---------------------------------------------------------------------------
// BFS edge cases the parallel merge must preserve.

TEST(BfsEdgeCases, DisconnectedGraphStats) {
  // Two components: a triangle and an isolated edge plus a lone node.
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(3, 4);
  const Graph g = std::move(b).build();

  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[3], kUnreachable);
  EXPECT_EQ(dist[5], kUnreachable);
  const SourceStats s = source_stats(dist);
  EXPECT_EQ(s.reachable, 3u);  // unreachable nodes excluded
  EXPECT_EQ(s.eccentricity, 1u);
  EXPECT_EQ(s.distance_sum, 2u);

  const DistanceSummary serial = all_pairs_distance_summary(g);
  EXPECT_FALSE(serial.strongly_connected);
  // Finite pairs only: 6 within the triangle, 2 within the edge.
  EXPECT_EQ(serial.histogram[1], 8u);
  check_graph_analysis(g, "disconnected");
}

TEST(BfsEdgeCases, SingleNodeGraph) {
  GraphBuilder b(1);
  const Graph g = std::move(b).build();
  const SourceStats s = source_stats(bfs_distances(g, 0));
  EXPECT_EQ(s.reachable, 1u);
  EXPECT_EQ(s.eccentricity, 0u);
  EXPECT_EQ(s.distance_sum, 0u);

  const DistanceSummary serial = all_pairs_distance_summary(g);
  EXPECT_EQ(serial.diameter, 0u);
  EXPECT_TRUE(serial.strongly_connected);
  EXPECT_EQ(serial.average_distance, 0.0);  // zero ordered pairs
  check_graph_analysis(g, "single-node");
}

TEST(BfsEdgeCases, ZeroOneBfsAllNodesOneModule) {
  // Every hop is intra-module: all distances collapse to 0.
  const Graph g = topo::cycle(8);
  const std::vector<std::uint32_t> one_module(8, 0);
  const auto dist = bfs_distances_01(g, 3, one_module);
  for (Node u = 0; u < 8; ++u) EXPECT_EQ(dist[u], 0u) << u;
}

TEST(BfsEdgeCases, ZeroOneBfsAllDistinctModules) {
  // Every hop crosses modules: 0/1 BFS degenerates to plain BFS.
  const Graph g = topo::cycle(8);
  std::vector<std::uint32_t> distinct(8);
  for (Node u = 0; u < 8; ++u) distinct[u] = u;
  const auto dist01 = bfs_distances_01(g, 3, distinct);
  const auto dist = bfs_distances(g, 3);
  for (Node u = 0; u < 8; ++u) EXPECT_EQ(dist01[u], dist[u]) << u;
}

// ---------------------------------------------------------------------------
// Pool-level behavior.

TEST(ThreadPool, ReusableAcrossCallsAndExceptionSafe) {
  ThreadPool pool(4);
  std::vector<int> hits(100, 0);
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(hits.size(), 16,
                      [&](int, std::uint64_t, std::uint64_t begin,
                          std::uint64_t end) {
                        for (std::uint64_t i = begin; i < end; ++i) hits[i]++;
                      });
  }
  for (const int h : hits) EXPECT_EQ(h, 50);

  EXPECT_THROW(
      pool.parallel_for(8, 8,
                        [&](int, std::uint64_t chunk, std::uint64_t,
                            std::uint64_t) {
                          if (chunk == 3) throw std::runtime_error("boom");
                        }),
      std::runtime_error);

  // The pool must stay usable after a throwing job.
  std::atomic<int> count{0};
  pool.parallel_for(32, 8,
                    [&](int, std::uint64_t, std::uint64_t begin,
                        std::uint64_t end) {
                      count += static_cast<int>(end - begin);
                    });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, ExecPolicyResolution) {
  EXPECT_EQ(ExecPolicy{1}.resolved_threads(), 1);
  EXPECT_EQ(ExecPolicy{7}.resolved_threads(), 7);
  EXPECT_TRUE(ExecPolicy::serial_policy().serial());
  EXPECT_GE(ExecPolicy{}.resolved_threads(), 1);  // auto resolves to >= 1
}

}  // namespace
}  // namespace ipg
