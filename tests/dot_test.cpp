// Tests for DOT export.
#include <gtest/gtest.h>

#include <sstream>

#include "cluster/partitions.hpp"
#include "graph/builder.hpp"
#include "graph/dot.hpp"
#include "topo/hypercube.hpp"
#include "topo/misc.hpp"

namespace ipg {
namespace {

TEST(Dot, UndirectedGraphUsesEdgeSyntaxOnce) {
  std::ostringstream os;
  write_dot(os, topo::cycle(3));
  const std::string out = os.str();
  EXPECT_NE(out.find("graph ipg {"), std::string::npos);
  EXPECT_EQ(out.find("->"), std::string::npos);
  // 3 links, each written once.
  std::size_t count = 0;
  for (std::size_t p = out.find(" -- "); p != std::string::npos;
       p = out.find(" -- ", p + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 3u);
}

TEST(Dot, DirectedGraphUsesArrows) {
  GraphBuilder b(2);
  b.add_arc(0, 1);
  std::ostringstream os;
  write_dot(os, std::move(b).build());
  const std::string out = os.str();
  EXPECT_NE(out.find("digraph"), std::string::npos);
  EXPECT_NE(out.find("n0 -> n1"), std::string::npos);
}

TEST(Dot, CustomLabelsAndClusters) {
  const Graph g = topo::hypercube(3);
  const Clustering c = cluster_hypercube(3, 1);
  DotOptions options;
  options.label = [](Node u) { return "node-" + std::to_string(u); };
  options.modules = &c;
  options.graph_name = "q3";
  std::ostringstream os;
  write_dot(os, g, options);
  const std::string out = os.str();
  EXPECT_NE(out.find("graph q3 {"), std::string::npos);
  EXPECT_NE(out.find("subgraph cluster_0"), std::string::npos);
  EXPECT_NE(out.find("subgraph cluster_3"), std::string::npos);
  EXPECT_NE(out.find("node-7"), std::string::npos);
}

}  // namespace
}  // namespace ipg
