// Tests for the routing library: the Theorem 4.1/4.3 super-IP router
// (validity, length bound, worst-case tightness), optimal star routing,
// and hypercube e-cube routing.
#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "graph/metrics.hpp"
#include "ipg/families.hpp"
#include "ipg/schedule.hpp"
#include "ipg/symmetric.hpp"
#include "route/hypercube_routing.hpp"
#include "route/path.hpp"
#include "route/star_routing.hpp"
#include "route/super_ip_routing.hpp"
#include "topo/hypercube.hpp"

namespace ipg {
namespace {

struct RouteCase {
  std::string kind;
  int l;
  int nucleus_n;
  bool symmetric;
};

SuperIPSpec route_spec(const RouteCase& c) {
  const IPGraphSpec nucleus = hypercube_nucleus(c.nucleus_n);
  SuperIPSpec s = c.kind == "hsn"    ? make_hsn(c.l, nucleus)
                  : c.kind == "ring" ? make_ring_cn(c.l, nucleus)
                  : c.kind == "flip" ? make_super_flip(c.l, nucleus)
                  : c.kind == "directed"
                      ? make_directed_cn(c.l, nucleus)
                      : make_complete_cn(c.l, nucleus);
  return c.symmetric ? make_symmetric(s) : s;
}

class SuperRouting : public ::testing::TestWithParam<RouteCase> {};

TEST_P(SuperRouting, AllPairsValidWithinBoundAndTight) {
  const RouteCase& c = GetParam();
  const SuperIPSpec spec = route_spec(c);
  const IPGraph g = build_super_ip_graph(spec);
  const IPGraphSpec lifted = spec.to_ip_spec();
  const int bound = route_length_bound(spec, c.nucleus_n, c.symmetric);
  ASSERT_GT(bound, 0);

  // BFS distances for optimality comparison.
  BfsScratch scratch(g.num_nodes());
  int max_len = 0;
  for (Node u = 0; u < g.num_nodes(); ++u) {
    const auto dist = scratch.run(g.graph, u);
    for (Node v = 0; v < g.num_nodes(); ++v) {
      const GenPath path = route_super_ip(spec, g.labels()[u], g.labels()[v]);
      ASSERT_TRUE(verify_path(lifted, g.labels()[u], g.labels()[v], path.gens))
          << spec.name << " " << u << "->" << v;
      EXPECT_LE(path.length(), bound);
      EXPECT_GE(path.length(), static_cast<int>(dist[v]));
      max_len = std::max(max_len, path.length());
    }
  }
  // Theorems 4.1/4.3: the bound equals the diameter, and the router
  // realizes it in the worst case, so max route length == diameter == bound.
  EXPECT_EQ(profile(g.graph).diameter, static_cast<Dist>(bound));
  EXPECT_EQ(max_len, bound);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SuperRouting,
    ::testing::Values(RouteCase{"hsn", 2, 2, false}, RouteCase{"hsn", 3, 2, false},
                      RouteCase{"hsn", 2, 3, false}, RouteCase{"ring", 3, 2, false},
                      RouteCase{"ring", 4, 2, false}, RouteCase{"flip", 3, 2, false},
                      RouteCase{"complete", 3, 2, false},
                      RouteCase{"directed", 3, 2, false},
                      RouteCase{"hsn", 2, 2, true}, RouteCase{"ring", 3, 2, true},
                      RouteCase{"flip", 3, 2, true}),
    [](const auto& tpi) {
      return tpi.param.kind + "_l" + std::to_string(tpi.param.l) + "_Q" +
             std::to_string(tpi.param.nucleus_n) +
             (tpi.param.symmetric ? "_sym" : "");
    });

TEST_P(SuperRouting, CachedRouterMatchesPerCallRouter) {
  // SuperIPRouter precomputes schedules and nucleus first-generator
  // tables; its routes must be valid and exactly as long as
  // route_super_ip's, and first_gen() must name the first hop.
  const RouteCase& c = GetParam();
  const SuperIPSpec spec = route_spec(c);
  const IPGraph g = build_super_ip_graph(spec);
  const IPGraphSpec lifted = spec.to_ip_spec();
  const SuperIPRouter router(spec);
  EXPECT_EQ(router.plain_seed(), !c.symmetric);
  for (Node u = 0; u < g.num_nodes(); u += 3) {
    for (Node v = 0; v < g.num_nodes(); ++v) {
      const Label& src = g.labels()[u];
      const Label& dst = g.labels()[v];
      const GenPath path = router.route(src, dst);
      ASSERT_TRUE(verify_path(lifted, src, dst, path.gens))
          << spec.name << " " << u << "->" << v;
      ASSERT_EQ(path.length(), route_super_ip(spec, src, dst).length())
          << spec.name << " " << u << "->" << v;
      if (u == v) {
        EXPECT_EQ(router.first_gen(src, dst), -1);
      } else {
        ASSERT_FALSE(path.gens.empty());
        EXPECT_EQ(router.first_gen(src, dst), path.gens.front());
      }
    }
  }
}

TEST(SuperRouting, CachedRouterRejectsForeignDestinations) {
  const SuperIPRouter router(make_hsn(2, hypercube_nucleus(2)));
  EXPECT_THROW(router.route(router.spec().seed,
                            make_label({9, 9, 9, 9, 9, 9, 9, 9})),
               std::invalid_argument);
  EXPECT_THROW(router.route(router.spec().seed, make_label({1, 2})),
               std::invalid_argument);
}

TEST(SuperRouting, RejectsForeignDestinations) {
  const SuperIPSpec spec = make_hsn(2, hypercube_nucleus(2));
  const Label bogus = make_label({9, 9, 9, 9, 9, 9, 9, 9});
  EXPECT_THROW(route_super_ip(spec, spec.seed, bogus), std::invalid_argument);
  EXPECT_THROW(route_super_ip(spec, spec.seed, make_label({1, 2})),
               std::invalid_argument);
}

TEST(SuperRouting, TrivialRouteIsEmpty) {
  const SuperIPSpec spec = make_hsn(3, hypercube_nucleus(2));
  EXPECT_EQ(route_super_ip(spec, spec.seed, spec.seed).length(), 0);
}

TEST(StarRouting, AllPairsOptimal) {
  // route_star length must equal both the cycle-structure formula and the
  // true BFS distance in the explicit star graph.
  const int n = 5;
  const IPGraph g = build_ip_graph(star_nucleus(n));
  BfsScratch scratch(g.num_nodes());
  for (Node u = 0; u < g.num_nodes(); u += 7) {
    const auto dist = scratch.run(g.graph, u);
    for (Node v = 0; v < g.num_nodes(); ++v) {
      const GenPath path = route_star(g.labels()[u], g.labels()[v]);
      ASSERT_TRUE(verify_path(g.spec, g.labels()[u], g.labels()[v], path.gens));
      EXPECT_EQ(path.length(), static_cast<int>(dist[v]));
      EXPECT_EQ(star_distance(g.labels()[u], g.labels()[v]),
                static_cast<int>(dist[v]));
    }
  }
}

TEST(StarRouting, RejectsMismatchedLabels) {
  EXPECT_THROW(route_star(make_label({1, 2, 3}), make_label({1, 2})),
               std::invalid_argument);
  EXPECT_THROW(route_star(make_label({1, 2, 3}), make_label({1, 2, 4})),
               std::invalid_argument);
  EXPECT_THROW(route_star(make_label({1, 2, 3}), make_label({1, 2, 2})),
               std::invalid_argument);
}

TEST(HypercubeRouting, PathsAreShortestAndValid) {
  const int n = 6;
  const Graph q = topo::hypercube(n);
  for (Node src = 0; src < q.num_nodes(); src += 5) {
    for (Node dst = 0; dst < q.num_nodes(); dst += 3) {
      const auto path = route_hypercube(n, src, dst);
      ASSERT_EQ(path.front(), src);
      ASSERT_EQ(path.back(), dst);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_TRUE(q.has_arc(path[i], path[i + 1]));
      }
      EXPECT_EQ(static_cast<int>(path.size()) - 1, hypercube_distance(src, dst));
    }
  }
}

TEST(HypercubeRouting, DistanceIsHammingWeight) {
  EXPECT_EQ(hypercube_distance(0b1010, 0b0110), 2);
  EXPECT_EQ(hypercube_distance(7, 7), 0);
}

TEST(BfsRoute, FindsShortestGeneratorPaths) {
  const IPGraphSpec spec = star_nucleus(4);
  const IPGraph g = build_ip_graph(spec);
  const auto dist = bfs_distances(g.graph, 0);
  for (Node v = 0; v < g.num_nodes(); ++v) {
    const GenPath p = bfs_route(spec, g.labels()[0], g.labels()[v]);
    EXPECT_EQ(p.length(), static_cast<int>(dist[v]));
    EXPECT_TRUE(verify_path(spec, g.labels()[0], g.labels()[v], p.gens));
  }
}

TEST(BfsRoute, ThrowsOnUnreachable) {
  const IPGraphSpec spec = star_nucleus(3);
  EXPECT_THROW(bfs_route(spec, make_label({1, 2, 3}), make_label({1, 1, 1})),
               std::invalid_argument);
}

TEST(VerifyPath, RejectsFixedLabelSteps) {
  // A generator that fixes the label is not an edge: verify_path must
  // reject it. T2 on identical blocks is such a step.
  const SuperIPSpec spec = make_hcn(2);
  const IPGraphSpec lifted = spec.to_ip_spec();
  const int t2 = static_cast<int>(spec.nucleus_gens.size());
  const std::vector<int> gens{t2};
  EXPECT_FALSE(verify_path(lifted, spec.seed, spec.seed, gens));
}

}  // namespace
}  // namespace ipg
