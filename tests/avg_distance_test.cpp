// Validates every closed-form average distance against all-pairs BFS.
#include <gtest/gtest.h>

#include "analysis/avg_distance.hpp"
#include "graph/metrics.hpp"
#include "topo/hypercube.hpp"
#include "topo/misc.hpp"
#include "topo/star.hpp"
#include "topo/torus.hpp"
#include "util/narrow.hpp"

namespace ipg {
namespace {

TEST(AvgDistance, Hypercube) {
  for (int n = 2; n <= 8; ++n) {
    EXPECT_NEAR(profile(topo::hypercube(n)).average_distance,
                hypercube_avg_distance(n), 1e-9)
        << "n=" << n;
  }
}

TEST(AvgDistance, Cycle) {
  for (int k = 3; k <= 12; ++k) {
    EXPECT_NEAR(profile(topo::cycle(k)).average_distance,
                cycle_avg_distance(k), 1e-9)
        << "k=" << k;
  }
}

TEST(AvgDistance, KaryNcube) {
  for (const auto& [k, n] : {std::pair{3, 2}, {4, 3}, {5, 2}, {8, 2}}) {
    EXPECT_NEAR(profile(topo::kary_ncube(k, n)).average_distance,
                kary_ncube_avg_distance(k, n), 1e-9)
        << k << "," << n;
  }
}

TEST(AvgDistance, Torus2d) {
  for (const auto& [r, c] : {std::pair{4, 4}, {6, 8}, {5, 7}, {16, 16}}) {
    EXPECT_NEAR(profile(topo::torus2d(r, c)).average_distance,
                torus2d_avg_distance(r, c), 1e-9)
        << r << "x" << c;
  }
}

TEST(AvgDistance, HammingViaGeneralizedHypercube) {
  // GH with equal radices is the Hamming graph H(d, q).
  for (const auto& [d, q] : {std::pair{2, 3}, {3, 3}, {2, 5}, {4, 2}}) {
    std::vector<int> radices(as_size(d), q);
    EXPECT_NEAR(profile(topo::generalized_hypercube(radices)).average_distance,
                hamming_avg_distance(d, q), 1e-9)
        << "H(" << d << "," << q << ")";
  }
}

TEST(AvgDistance, Complete) {
  EXPECT_NEAR(profile(topo::complete(9)).average_distance,
              complete_avg_distance(9), 1e-12);
}

TEST(AvgDistance, StarGraphCycleFormula) {
  for (int n = 3; n <= 7; ++n) {
    EXPECT_NEAR(profile(topo::star_graph(n)).average_distance,
                star_avg_distance(n), 1e-9)
        << "S" << n;
  }
}

}  // namespace
}  // namespace ipg
