// Tests for tuple-space Theorem 4.1 routing over nuclei with no IP form
// (Petersen) and over explicit hypercubes.
#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "graph/metrics.hpp"
#include "ipg/families.hpp"
#include "ipg/schedule.hpp"
#include "route/tuple_routing.hpp"
#include "topo/hypercube.hpp"
#include "topo/misc.hpp"

namespace ipg {
namespace {

void check_all_pairs(const Graph& nucleus, int l,
                     const std::vector<Generator>& gens, int nucleus_diam,
                     int t) {
  const TupleNetwork net = build_super_network_direct(nucleus, l, gens);
  const int bound = l * nucleus_diam + t;
  BfsScratch scratch(net.graph.num_nodes());
  int max_len = 0;
  for (Node u = 0; u < net.graph.num_nodes(); u += 3) {
    const auto dist = scratch.run(net.graph, u);
    for (Node v = 0; v < net.graph.num_nodes(); v += 5) {
      const auto hops = route_tuple_network(net, nucleus, gens, u, v);
      // Walk validity: consecutive hops are arcs of the network.
      Node at = u;
      for (const auto& h : hops) {
        ASSERT_TRUE(net.graph.has_arc(at, h.node)) << u << "->" << v;
        at = h.node;
      }
      EXPECT_EQ(at, v);
      EXPECT_LE(static_cast<int>(hops.size()), bound);
      EXPECT_GE(static_cast<int>(hops.size()), static_cast<int>(dist[v]));
      max_len = std::max(max_len, static_cast<int>(hops.size()));
    }
  }
  EXPECT_LE(max_len, bound);
}

TEST(TupleRouting, PetersenNucleusRingCn) {
  check_all_pairs(topo::petersen(), 3, ring_shift_super_gens(3),
                  /*nucleus_diam=*/2, /*t=*/2);
}

TEST(TupleRouting, PetersenNucleusHsn) {
  check_all_pairs(topo::petersen(), 2, transposition_super_gens(2), 2, 1);
}

TEST(TupleRouting, HypercubeNucleusMatchesIpRouterBound) {
  check_all_pairs(topo::hypercube(3), 2, transposition_super_gens(2), 3, 1);
}

TEST(TupleRouting, CompleteNucleusFlip) {
  check_all_pairs(topo::complete(5), 3, flip_super_gens(3), 1, 2);
}

TEST(TupleRouting, WorstCaseRealizesTheDiameter) {
  // Theorem 4.1 is tight: some pair needs the full bound.
  const Graph nucleus = topo::petersen();
  const auto gens = ring_shift_super_gens(3);
  const TupleNetwork net = build_super_network_direct(nucleus, 3, gens);
  EXPECT_EQ(profile(net.graph).diameter, 3u * 2u + 2u);
}

TEST(TupleRouting, TrivialAndErrorCases) {
  const Graph nucleus = topo::petersen();
  const auto gens = ring_shift_super_gens(2);
  const TupleNetwork net = build_super_network_direct(nucleus, 2, gens);
  EXPECT_TRUE(route_tuple_network(net, nucleus, gens, 7, 7).empty());
}

}  // namespace
}  // namespace ipg
