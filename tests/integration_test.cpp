// End-to-end integration tests tying the layers together around the
// paper's own artifacts: Fig. 1's structures, the Section 5 cost ordering,
// and a routed-simulation consistency check.
#include <gtest/gtest.h>

#include "analysis/cost_model.hpp"
#include "cluster/imetrics.hpp"
#include "cluster/partitions.hpp"
#include "graph/metrics.hpp"
#include "ipg/families.hpp"
#include "ipg/ranking.hpp"
#include "ipg/schedule.hpp"
#include "ipg/symmetric.hpp"
#include "route/super_ip_routing.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "topo/hypercube.hpp"
#include "topo/torus.hpp"

namespace ipg {
namespace {

TEST(Integration, Fig1aHcn22Structure) {
  // Fig. 1a: HSN(2, Q2) = HCN(2,2) without diameter links, 16 nodes in 4
  // clusters of 4; each cluster is a Q2; swap links join clusters i and j
  // at the nodes ranked (i,j) and (j,i).
  const SuperIPSpec spec = make_hcn(2);
  const IPGraph g = build_super_ip_graph(spec);
  const SuperRanking ranking(spec);
  ASSERT_EQ(g.num_nodes(), 16u);

  const Clustering c = cluster_by_nucleus(g, spec.m);
  EXPECT_EQ(c.num_modules, 4u);
  EXPECT_EQ(c.max_module_size(), 4u);

  for (Node u = 0; u < g.num_nodes(); ++u) {
    const std::uint64_t ru = ranking.rank(g.labels()[u]);
    const std::uint64_t hi = ru / 4, lo = ru % 4;
    for (const Node v : g.graph.neighbors(u)) {
      const std::uint64_t rv = ranking.rank(g.labels()[v]);
      const std::uint64_t vhi = rv / 4, vlo = rv % 4;
      if (vlo == lo && vhi == hi) FAIL() << "self loop survived";
      if (vlo == hi && vhi == lo && hi != lo) continue;          // swap link
      EXPECT_EQ(vlo, lo);                                        // cube link
      // Q2 digits differ in exactly one encoded bit; both digits in the
      // same cluster.
      EXPECT_NE(vhi, hi);
    }
  }
}

TEST(Integration, Fig1bHsn3Q2Structure) {
  // Fig. 1b: HSN(3, Q2) with 64 radix-4 ranked nodes; generators T2/T3
  // permute the digits, the nucleus flips the leading digit's bits.
  const SuperIPSpec spec = make_hsn(3, hypercube_nucleus(2));
  const IPGraph g = build_super_ip_graph(spec);
  const SuperRanking ranking(spec);
  ASSERT_EQ(g.num_nodes(), 64u);
  for (Node u = 0; u < g.num_nodes(); ++u) {
    const auto& label = g.labels()[u];
    const std::uint64_t d0 = ranking.digit(label, 0);
    const std::uint64_t d1 = ranking.digit(label, 1);
    const std::uint64_t d2 = ranking.digit(label, 2);
    const auto tags = g.graph.tags(u);
    const auto nb = g.graph.neighbors(u);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const auto& nl = g.labels()[nb[i]];
      const std::string gen = spec.to_ip_spec().generators[tags[i]].name;
      if (gen == "T2") {
        EXPECT_EQ(ranking.digit(nl, 0), d1);
        EXPECT_EQ(ranking.digit(nl, 1), d0);
        EXPECT_EQ(ranking.digit(nl, 2), d2);
      } else if (gen == "T3") {
        EXPECT_EQ(ranking.digit(nl, 0), d2);
        EXPECT_EQ(ranking.digit(nl, 2), d0);
        EXPECT_EQ(ranking.digit(nl, 1), d1);
      } else {
        EXPECT_EQ(ranking.digit(nl, 1), d1);
        EXPECT_EQ(ranking.digit(nl, 2), d2);
      }
    }
  }
}

TEST(Integration, Section5CostOrderingHoldsAtScale) {
  // The headline comparison: at comparable sizes, cyclic-shift networks
  // beat hypercubes on ID- and II-cost, and DD-cost stays comparable to
  // the star graph's.
  const TopoNums q4 = hypercube_nums(4);
  const auto cn = sweep_ring_cn(5, 5, q4).front();     // 16^5 = 2^20 nodes
  const auto hc = sweep_hypercube(20, 20, 4).front();  // 2^20 nodes
  ASSERT_EQ(cn.nodes, hc.nodes);
  EXPECT_LT(cn.id_cost(), hc.id_cost());
  EXPECT_LT(cn.ii_cost(), hc.ii_cost());
  EXPECT_LT(cn.dd_cost(), hc.dd_cost());
}

TEST(Integration, RoutedPathsDriveTheSimulatorConsistently) {
  // Route with the Theorem 4.1 router, then check the simulator's
  // latency of an unloaded network along the same pair is bounded by the
  // route length (the simulator uses true shortest paths).
  const SuperIPSpec spec = make_hsn(2, hypercube_nucleus(2));
  const IPGraph g = build_super_ip_graph(spec);
  const sim::SimNetwork net(g.graph, sim::LinkTiming{1.0, 1.0});
  for (Node u = 0; u < g.num_nodes(); ++u) {
    for (Node v = 0; v < g.num_nodes(); ++v) {
      if (u == v) continue;
      const GenPath route = route_super_ip(spec, g.labels()[u], g.labels()[v]);
      const std::vector<sim::Packet> one{{u, v, 0.0}};
      const auto r = simulate(net, one);
      EXPECT_LE(r.latency.mean(), route.length());
    }
  }
}

TEST(Integration, ModuleBudgetRespectedAcrossFig3Configs) {
  // Every Fig. 3 configuration must fit <= 24 nodes per module.
  {
    const IPGraph g = build_super_ip_graph(make_hsn(2, hypercube_nucleus(4)));
    EXPECT_LE(cluster_by_nucleus(g, 8).max_module_size(), 24u);
  }
  {
    const Clustering c = cluster_hypercube(10, 4);
    EXPECT_LE(c.max_module_size(), 24u);
  }
  {
    const TupleNetwork cn = build_super_network_direct(
        topo::hypercube(4), 3, ring_shift_super_gens(3));
    EXPECT_LE(cluster_tuple(cn).max_module_size(), 24u);
  }
}

TEST(Integration, SymmetricVariantKeepsAlgorithms) {
  // Section 3.5's selling point: the symmetric variant shares the
  // generator set, so the same router runs on both.
  const SuperIPSpec base = make_ring_cn(3, hypercube_nucleus(2));
  const SuperIPSpec sym = make_symmetric(base);
  const IPGraph g = build_super_ip_graph(sym);
  const IPGraphSpec lifted = sym.to_ip_spec();
  int checked = 0;
  for (Node v = 0; v < g.num_nodes(); v += 11) {
    const GenPath p = route_super_ip(sym, g.labels()[0], g.labels()[v]);
    EXPECT_TRUE(verify_path(lifted, g.labels()[0], g.labels()[v], p.gens));
    ++checked;
  }
  EXPECT_GT(checked, 10);
}

}  // namespace
}  // namespace ipg
