// Tests for the extended family constructors: the k-ary n-cube IP
// encoding (cross-validated against the explicit torus) and recursive
// hierarchical swapped networks (RHSN).
#include <gtest/gtest.h>

#include "graph/metrics.hpp"
#include "graph/symmetry.hpp"
#include "ipg/build.hpp"
#include "ipg/families.hpp"
#include "ipg/schedule.hpp"
#include "topo/hypercube.hpp"
#include "topo/perm_rank.hpp"
#include "topo/torus.hpp"
#include "util/narrow.hpp"

namespace ipg {
namespace {

/// Decodes coordinate d of a k-ary IP label: the block holding symbols
/// dk+1..(d+1)k is some rotation s of its seed; s is the coordinate.
Node decode_kary(const Label& x, int k, int d) {
  return static_cast<Node>(x[as_size(d * k)] - (d * k + 1));
}

TEST(KaryNucleus, MatchesExplicitTorusExactly) {
  for (const auto& [k, n] : {std::pair{3, 2}, {4, 2}, {5, 2}, {3, 3}, {4, 3}}) {
    const IPGraph ip = build_ip_graph(kary_ncube_nucleus(k, n));
    const Graph torus = topo::kary_ncube(k, n);
    ASSERT_EQ(ip.num_nodes(), torus.num_nodes()) << k << "," << n;
    std::uint64_t arcs = 0;
    for (Node u = 0; u < ip.num_nodes(); ++u) {
      Node iu = 0;
      for (int d = n - 1; d >= 0; --d) {
        iu = iu * static_cast<Node>(k) + decode_kary(ip.labels()[u], k, d);
      }
      for (const Node v : ip.graph.neighbors(u)) {
        Node iv = 0;
        for (int d = n - 1; d >= 0; --d) {
          iv = iv * static_cast<Node>(k) + decode_kary(ip.labels()[v], k, d);
        }
        EXPECT_TRUE(torus.has_arc(iu, iv)) << k << "," << n;
        ++arcs;
      }
    }
    EXPECT_EQ(arcs, torus.num_arcs());
  }
}

TEST(KaryNucleus, BinaryCaseDegeneratesToHypercube) {
  const IPGraph ip = build_ip_graph(kary_ncube_nucleus(2, 4));
  const auto p = profile(ip.graph);
  EXPECT_EQ(p.nodes, 16u);
  EXPECT_EQ(p.degree, 4u);
  EXPECT_EQ(p.diameter, 4u);
}

TEST(KaryNucleus, WorksAsSuperIpNucleus) {
  // HSN over a 3-ary 2-cube nucleus: N = 9^l, diameter l*2 + (l-1).
  const SuperIPSpec s = make_hsn(2, kary_ncube_nucleus(3, 2));
  const IPGraph g = build_super_ip_graph(s);
  EXPECT_EQ(g.num_nodes(), 81u);
  EXPECT_EQ(profile(g.graph).diameter, 5u);
}

TEST(Hfn, TwoLevelFoldedHypercubeProfile) {
  // HFN(n,n) in its super-IP form: N = 4^n, degree n + 2 (n + 1 folded
  // cube links + swap), diameter 2 * ceil(n/2) + 1 via Theorem 4.1.
  for (int n = 2; n <= 4; ++n) {
    const SuperIPSpec spec = make_hfn(n);
    const IPGraph g = build_super_ip_graph(spec);
    EXPECT_EQ(g.num_nodes(), std::uint64_t{1} << (2 * n)) << n;
    const auto p = profile(g.graph);
    EXPECT_EQ(p.degree, static_cast<Node>(n + 2)) << n;
    EXPECT_EQ(p.diameter, static_cast<Dist>(2 * ((n + 1) / 2) + 1)) << n;
  }
}

TEST(Rotator, KnownProfile) {
  // Corbett: n! nodes, out-degree n-1, diameter n-1, strongly connected.
  for (int n = 3; n <= 5; ++n) {
    const IPGraph r = build_ip_graph(rotator_nucleus(n));
    const auto p = profile(r.graph);
    EXPECT_EQ(p.nodes, topo::kFactorials[n]) << n;
    EXPECT_EQ(p.degree, static_cast<Node>(n - 1)) << n;
    EXPECT_EQ(p.diameter, static_cast<Dist>(n - 1)) << n;
    EXPECT_TRUE(p.connected) << n;
  }
}

TEST(Rotator, WorksAsDirectedNucleus) {
  // A directed nucleus inside a directed-CN: everything stays routable.
  const SuperIPSpec spec = make_directed_cn(2, rotator_nucleus(3));
  const IPGraph g = build_super_ip_graph(spec);
  EXPECT_EQ(g.num_nodes(), 36u);
  EXPECT_TRUE(profile(g.graph).connected);
}

TEST(Rhsn, DepthZeroIsTheNucleus) {
  const IPGraphSpec g = make_rhsn(0, hypercube_nucleus(2));
  EXPECT_EQ(g.name, "Q2");
  EXPECT_EQ(build_ip_graph(g).num_nodes(), 4u);
}

TEST(Rhsn, SizesSquarePerLevel) {
  // RHSN(d, G) has |G|^(2^d) nodes.
  const IPGraphSpec base = hypercube_nucleus(1);  // 2 nodes
  EXPECT_EQ(build_ip_graph(make_rhsn(1, base)).num_nodes(), 4u);
  EXPECT_EQ(build_ip_graph(make_rhsn(2, base)).num_nodes(), 16u);
  EXPECT_EQ(build_ip_graph(make_rhsn(3, base)).num_nodes(), 256u);
}

TEST(Rhsn, DiameterFollowsNestedTheorem41) {
  // Each level doubles D and adds 1: D(d) = 2*D(d-1) + 1.
  const IPGraphSpec base = hypercube_nucleus(1);
  Dist expected = 1;  // D(Q1)
  for (int depth = 1; depth <= 3; ++depth) {
    expected = 2 * expected + 1;
    const IPGraph g = build_ip_graph(make_rhsn(depth, base));
    EXPECT_EQ(profile(g.graph).diameter, expected) << "depth " << depth;
  }
}

TEST(Rhsn, DegreeGrowsByOnePerLevel) {
  // Theorem 3.1: each level adds one swap generator.
  const IPGraphSpec base = hypercube_nucleus(2);
  for (int depth = 0; depth <= 2; ++depth) {
    const IPGraph g = build_ip_graph(make_rhsn(depth, base));
    EXPECT_EQ(degree_stats(g.graph).max_degree,
              static_cast<Node>(2 + depth));
  }
}

TEST(Rhsn, CorollaryFourTwoStillApplies) {
  // RHSN is among the Corollary 4.2 families: an l=2 super-IP at every
  // level, so diameter = prod over levels of the nested formula — checked
  // against the outermost level's l * D_G + t with t = 1.
  const IPGraphSpec inner = make_rhsn(1, hypercube_nucleus(2));  // 16 nodes
  const Dist inner_diam = profile(build_ip_graph(inner).graph).diameter;
  const IPGraph outer = build_ip_graph(make_rhsn(2, hypercube_nucleus(2)));
  EXPECT_EQ(profile(outer.graph).diameter, 2 * inner_diam + 1);
}

}  // namespace
}  // namespace ipg
