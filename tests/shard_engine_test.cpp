// The shard determinism contract (docs/MODEL.md §12): every result a
// sharded engine produces — distance summaries, exact analysis,
// FaultSimResult down to each LatencyStats sample — is bit-identical
// across shard counts {1, 2, 8}, thread counts {1, 8}, and against the
// unsharded reference engines, including partitions whose cuts straddle
// super-symbol digit boundaries (from_boundaries with arbitrary cuts).
// Plus unit coverage of the partition algebra and the message seam.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "analysis/exact.hpp"
#include "cluster/imetrics.hpp"
#include "graph/bfs.hpp"
#include "graph/bfs_batch.hpp"
#include "graph/graph.hpp"
#include "ipg/families.hpp"
#include "ipg/super.hpp"
#include "ipg/symmetric.hpp"
#include "net/topology.hpp"
#include "shard/bfs_engine.hpp"
#include "shard/channel.hpp"
#include "shard/fault_engine.hpp"
#include "shard/partition.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "topo/hypercube.hpp"
#include "util/thread_pool.hpp"

namespace ipg {
namespace {

using shard::ByteReader;
using shard::ByteWriter;
using shard::RankRangePartition;
using shard::ShardChannel;
using sim::FaultPlan;
using sim::FaultSimResult;
using sim::LinkTiming;
using sim::Packet;
using sim::SimNetwork;

constexpr int kShardCounts[] = {1, 2, 8};
constexpr int kThreadCounts[] = {1, 8};

// ---------------------------------------------------------------------------
// Partition algebra.

TEST(RankRangePartition, UniformSplitCoversWithNearEqualSlices) {
  for (const std::uint64_t n : {0ull, 1ull, 7ull, 64ull, 1000ull}) {
    for (const int s : {1, 2, 3, 8, 13}) {
      const RankRangePartition part(n, s);
      ASSERT_EQ(part.num_shards(), s);
      ASSERT_EQ(part.num_ranks(), n);
      std::uint64_t covered = 0;
      std::uint64_t lo = n, hi = 0;
      for (int i = 0; i < s; ++i) {
        EXPECT_EQ(part.begin(i), covered) << "shard " << i;
        covered += part.size(i);
        EXPECT_EQ(part.end(i), covered);
        lo = std::min(lo, part.size(i));
        hi = std::max(hi, part.size(i));
      }
      EXPECT_EQ(covered, n);
      if (n > 0) {
        EXPECT_LE(hi - lo, 1u) << "n=" << n << " s=" << s;
      }
    }
  }
}

TEST(RankRangePartition, OwnerInvertsTheSliceMap) {
  for (const int s : {1, 2, 5, 8}) {
    const RankRangePartition part(100, s);
    for (std::uint64_t r = 0; r < 100; ++r) {
      const int o = part.owner(r);
      EXPECT_GE(r, part.begin(o));
      EXPECT_LT(r, part.end(o));
    }
  }
}

TEST(RankRangePartition, FromBoundariesAllowsEmptyAndSkewedSlices) {
  const auto part =
      RankRangePartition::from_boundaries({0, 0, 7, 7, 10, 64});
  ASSERT_EQ(part.num_shards(), 5);
  ASSERT_EQ(part.num_ranks(), 64u);
  EXPECT_EQ(part.size(0), 0u);
  EXPECT_EQ(part.size(2), 0u);
  EXPECT_EQ(part.size(4), 54u);
  for (std::uint64_t r = 0; r < 64; ++r) {
    const int o = part.owner(r);
    EXPECT_GE(r, part.begin(o)) << "rank " << r;
    EXPECT_LT(r, part.end(o)) << "rank " << r;
    EXPECT_GT(part.size(o), 0u);  // owner is never an empty slice
  }
}

// ---------------------------------------------------------------------------
// Message seam.

TEST(ShardChannel, ExchangeConcatenatesInboxInSenderOrder) {
  ShardChannel ch(3);
  // Senders write to shard 2 out of order; the inbox must still read
  // s=0's bytes, then s=1's, then s=2's.
  ByteWriter(ch.outbox(1, 2)).write(std::uint32_t{111});
  ByteWriter(ch.outbox(0, 2)).write(std::uint32_t{100});
  ByteWriter(ch.outbox(2, 2)).write(std::uint32_t{122});
  ByteWriter(ch.outbox(2, 0)).write(std::uint64_t{7});
  ch.exchange();

  ByteReader r2(ch.inbox(2));
  EXPECT_EQ(r2.read<std::uint32_t>(), 100u);
  EXPECT_EQ(r2.read<std::uint32_t>(), 111u);
  EXPECT_EQ(r2.read<std::uint32_t>(), 122u);
  EXPECT_TRUE(r2.empty());

  ByteReader r0(ch.inbox(0));
  EXPECT_EQ(r0.read<std::uint64_t>(), 7u);
  EXPECT_TRUE(r0.empty());
  EXPECT_TRUE(ByteReader(ch.inbox(1)).empty());
  EXPECT_EQ(ch.bytes_exchanged(), 3 * sizeof(std::uint32_t) + sizeof(std::uint64_t));

  // Outboxes come back empty; the next round starts clean.
  EXPECT_TRUE(ch.outbox(0, 2).empty());
  ch.exchange();
  EXPECT_TRUE(ByteReader(ch.inbox(2)).empty());
}

TEST(ShardChannel, ByteFramingRoundTripsSpansAndScalars) {
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  w.write(3.25);
  const std::vector<Node> path = {5, 9, 2};
  w.write(std::uint64_t{path.size()});
  w.write_span(std::span<const Node>(path));
  ByteReader r(buf);
  EXPECT_EQ(r.read<double>(), 3.25);
  std::vector<Node> got(r.read<std::uint64_t>());
  r.read_into(got.data(), got.size());
  EXPECT_EQ(got, path);
  EXPECT_TRUE(r.empty());
}

// ---------------------------------------------------------------------------
// Sharded distance summaries.

void expect_summary_identical(const DistanceSummary& a,
                              const DistanceSummary& b,
                              const std::string& tag) {
  EXPECT_EQ(a.diameter, b.diameter) << tag;
  EXPECT_EQ(a.average_distance, b.average_distance) << tag;  // bitwise
  EXPECT_EQ(a.strongly_connected, b.strongly_connected) << tag;
  EXPECT_EQ(a.histogram, b.histogram) << tag;
}

TEST(ShardedBfs, GraphSummaryBitIdenticalAcrossShardsAndThreads) {
  const std::vector<std::pair<const char*, Graph>> cases = [] {
    std::vector<std::pair<const char*, Graph>> v;
    v.emplace_back("Q6", topo::hypercube(6));
    v.emplace_back("HSN(2,Q3)",
                   build_super_ip_graph(make_hsn(2, hypercube_nucleus(3))).graph);
    v.emplace_back("ringCN(3,S3)",
                   build_super_ip_graph(make_ring_cn(3, star_nucleus(3))).graph);
    return v;
  }();
  for (const auto& [name, g] : cases) {
    SCOPED_TRACE(name);
    // More sources than one 64-lane batch, so the batch loop is exercised.
    std::vector<Node> sources(std::min<Node>(g.num_nodes(), 80));
    std::iota(sources.begin(), sources.end(), Node{0});
    const DistanceSummary oracle =
        batched_distance_summary(g, sources, ExecPolicy::serial_policy());
    for (const int s : kShardCounts) {
      const RankRangePartition part(g.num_nodes(), s);
      for (const int t : kThreadCounts) {
        const DistanceSummary got =
            shard::sharded_distance_summary(g, sources, part, ExecPolicy{t});
        expect_summary_identical(oracle, got,
                                 std::string(name) + " shards=" +
                                     std::to_string(s) + " threads=" +
                                     std::to_string(t));
      }
    }
  }
}

TEST(ShardedBfs, BoundaryStraddlingCutsChangeNothing) {
  // HSN(2,Q3): 64 ranks in 8 super-symbol spans of 8. Cuts at 3/13/37
  // land strictly inside digit spans — the engine must not care.
  const Graph g =
      build_super_ip_graph(make_hsn(2, hypercube_nucleus(3))).graph;
  ASSERT_EQ(g.num_nodes(), 64u);
  std::vector<Node> sources(g.num_nodes());
  std::iota(sources.begin(), sources.end(), Node{0});
  const DistanceSummary oracle =
      batched_distance_summary(g, sources, ExecPolicy::serial_policy());
  const auto part = RankRangePartition::from_boundaries({0, 3, 13, 37, 64});
  for (const int t : kThreadCounts) {
    const DistanceSummary got =
        shard::sharded_distance_summary(g, sources, part, ExecPolicy{t});
    expect_summary_identical(oracle, got, "straddling @" + std::to_string(t));
  }
}

TEST(ShardedBfs, ImplicitTopologyMatchesMaterializedSweep) {
  const SuperIPSpec spec = make_hsn(3, hypercube_nucleus(2));
  const net::ImplicitSuperIPTopology topo(spec);
  const IPGraph g = build_super_ip_graph(spec);
  ASSERT_EQ(topo.num_nodes(), g.graph.num_nodes());

  // Sources by rank on the implicit side; the same nodes translated
  // through the label bijection on the materialized side. The summary is
  // an isomorphism invariant of the (graph, source multiset) pair.
  std::vector<net::NodeId> rank_sources;
  for (net::NodeId r = 0; r < topo.num_nodes(); r += 3) rank_sources.push_back(r);
  std::vector<Node> mat_of_rank(g.graph.num_nodes());
  for (Node u = 0; u < g.graph.num_nodes(); ++u) {
    const net::NodeId r = topo.node_of(g.labels()[u]);
    ASSERT_NE(r, net::kInvalidNodeId);
    mat_of_rank[r] = u;
  }
  std::vector<Node> mat_sources;
  for (const net::NodeId r : rank_sources) {
    mat_sources.push_back(mat_of_rank[r]);
  }
  const DistanceSummary oracle = multi_source_distance_summary(
      g.graph, mat_sources, ExecPolicy::serial_policy());

  for (const int s : kShardCounts) {
    const RankRangePartition part(topo.num_nodes(), s);
    for (const int t : kThreadCounts) {
      const DistanceSummary got = shard::sharded_distance_summary(
          topo, rank_sources, part, ExecPolicy{t});
      expect_summary_identical(oracle, got,
                               "implicit shards=" + std::to_string(s) +
                                   " threads=" + std::to_string(t));
    }
  }
  // And with cuts inside super-symbol digit spans.
  const auto straddle =
      RankRangePartition::from_boundaries({0, 5, 21, 22, topo.num_nodes()});
  const DistanceSummary got = shard::sharded_distance_summary(
      topo, rank_sources, straddle, ExecPolicy{8});
  expect_summary_identical(oracle, got, "implicit straddling");
}

// ---------------------------------------------------------------------------
// Analysis routed through the seam.

TEST(ShardedAnalysis, ExactAnalysisBitIdenticalAcrossShardCounts) {
  const Graph g =
      build_super_ip_graph(make_complete_cn(3, hypercube_nucleus(2))).graph;
  ExactOptions base;
  const ExactAnalysis oracle = exact_analysis(g, ExecPolicy::serial_policy(), base);
  for (const int s : kShardCounts) {
    for (const int t : kThreadCounts) {
      ExactOptions opts;
      opts.num_shards = s;
      const ExactAnalysis got = exact_analysis(g, ExecPolicy{t}, opts);
      const std::string tag =
          "shards=" + std::to_string(s) + " threads=" + std::to_string(t);
      expect_summary_identical(oracle.distances, got.distances, tag);
      EXPECT_EQ(oracle.profile.diameter, got.profile.diameter) << tag;
      EXPECT_EQ(oracle.profile.average_distance, got.profile.average_distance)
          << tag;
      EXPECT_EQ(oracle.profile.nodes, got.profile.nodes) << tag;
      EXPECT_EQ(oracle.profile.links, got.profile.links) << tag;
    }
  }
}

TEST(ShardedAnalysis, SymmetryFastPathShardsTheSingleSourceSweep) {
  const SuperIPSpec spec = make_symmetric(make_hsn(2, hypercube_nucleus(2)));
  const Graph g = build_super_ip_graph(spec).graph;
  ExactOptions base;
  base.assume_vertex_transitive = true;
  const ExactAnalysis oracle = exact_analysis(g, ExecPolicy::serial_policy(), base);
  for (const int s : kShardCounts) {
    ExactOptions opts = base;
    opts.num_shards = s;
    const ExactAnalysis got = exact_analysis(g, ExecPolicy{8}, opts);
    expect_summary_identical(oracle.distances, got.distances,
                             "fast path shards=" + std::to_string(s));
  }
}

TEST(ShardedAnalysis, IMetricsStableAcrossThreadCounts) {
  // The I-metrics sweep sits beside the sharded sweep in the figure
  // pipeline; pin that its numbers are exec-invariant on the same
  // instances the shard tests use.
  const IPGraph g = build_super_ip_graph(make_hsn(2, hypercube_nucleus(3)));
  const ModuleAssignment ma = nucleus_modules(g, 2);
  const Clustering c{ma.module_of, ma.num_modules};
  const IMetrics oracle = i_metrics(g.graph, c);
  for (const int t : kThreadCounts) {
    const IMetrics got = i_metrics(g.graph, c, ExecPolicy{t});
    EXPECT_EQ(oracle.i_degree, got.i_degree) << t;
    EXPECT_EQ(oracle.i_diameter, got.i_diameter) << t;
    EXPECT_EQ(oracle.avg_i_distance, got.avg_i_distance) << t;
  }
}

// ---------------------------------------------------------------------------
// Sharded fault simulation.

void expect_fault_result_identical(const FaultSimResult& a,
                                   const FaultSimResult& b,
                                   const std::string& tag) {
  EXPECT_EQ(a.injected, b.injected) << tag;
  EXPECT_EQ(a.delivered, b.delivered) << tag;
  EXPECT_EQ(a.dropped, b.dropped) << tag;
  EXPECT_EQ(a.detours, b.detours) << tag;
  EXPECT_EQ(a.bfs_fallbacks, b.bfs_fallbacks) << tag;
  EXPECT_EQ(a.planned_hop_sum, b.planned_hop_sum) << tag;
  EXPECT_EQ(a.actual_hop_sum, b.actual_hop_sum) << tag;
  EXPECT_EQ(a.makespan, b.makespan) << tag;  // bitwise: same fl order
  EXPECT_EQ(a.latency.count(), b.latency.count()) << tag;
  EXPECT_EQ(a.latency.mean(), b.latency.mean()) << tag;
  EXPECT_EQ(a.latency.max(), b.latency.max()) << tag;
  EXPECT_EQ(a.latency.percentile(0.99), b.latency.percentile(0.99)) << tag;
  EXPECT_EQ(a.latency.mean_hops(), b.latency.mean_hops()) << tag;
  EXPECT_EQ(a.latency.mean_off_module_hops(), b.latency.mean_off_module_hops())
      << tag;
}

TEST(ShardedFaults, TablePolicyBitIdenticalAcrossShardsAndThreads) {
  const Graph g =
      build_super_ip_graph(make_hsn(2, hypercube_nucleus(3))).graph;
  const SimNetwork net(g, LinkTiming{1.0, 1.0});
  const auto packets = sim::uniform_traffic(g.num_nodes(), 3.0, 60.0, 11);
  // Permanent faults plus transient windows: the fault timeline interacts
  // with the event calendar, and both engines must agree anyway.
  FaultPlan plan = FaultPlan::random_node_faults(g.num_nodes(), 3, 42);
  plan.fail_node(1, 5.0, 20.0);
  plan.fail_link(0, net.next_hop(0, g.num_nodes() - 1), 10.0, 30.0);

  const FaultSimResult oracle = simulate_with_faults(net, packets, plan);
  for (const int s : kShardCounts) {
    const RankRangePartition part(g.num_nodes(), s);
    for (const int t : kThreadCounts) {
      const FaultSimResult got = shard::sharded_simulate_with_faults(
          net, packets, plan, part, {}, {}, ExecPolicy{t});
      expect_fault_result_identical(oracle, got,
                                    "table shards=" + std::to_string(s) +
                                        " threads=" + std::to_string(t));
    }
  }
}

TEST(ShardedFaults, LabelPolicyMultiFlitCutThroughBitIdentical) {
  const SuperIPSpec spec = make_hsn(2, hypercube_nucleus(2));
  const net::ImplicitSuperIPTopology topo(spec);
  const SimNetwork net(topo, LinkTiming{1.0, 4.0});
  const auto packets = sim::uniform_traffic(
      static_cast<Node>(topo.num_nodes()), 2.0, 80.0, 13);
  FaultPlan plan = FaultPlan::random_transient_node_faults(
      topo.num_nodes(), 4, 60.0, 8.0, 7);
  const sim::MessageModel model{4, sim::SwitchingMode::kCutThrough};

  const FaultSimResult oracle = simulate_with_faults(net, packets, plan, model);
  for (const int s : kShardCounts) {
    const RankRangePartition part(topo.num_nodes(), s);
    for (const int t : kThreadCounts) {
      const FaultSimResult got = shard::sharded_simulate_with_faults(
          net, packets, plan, part, model, {}, ExecPolicy{t});
      expect_fault_result_identical(oracle, got,
                                    "label shards=" + std::to_string(s) +
                                        " threads=" + std::to_string(t));
    }
  }
}

TEST(ShardedFaults, BoundaryStraddlingPartitionBitIdentical) {
  const SuperIPSpec spec = make_hsn(2, hypercube_nucleus(2));
  const net::ImplicitSuperIPTopology topo(spec);
  const SimNetwork net(topo, LinkTiming{1.0, 1.0});
  const auto packets = sim::uniform_traffic(
      static_cast<Node>(topo.num_nodes()), 2.0, 40.0, 5);
  FaultPlan plan;
  plan.fail_node(3, 0.0, 15.0);

  const FaultSimResult oracle = simulate_with_faults(net, packets, plan);
  // HSN(2,Q2): 16 ranks in 4 super-symbol spans of 4; cuts at 1/6/7 sit
  // inside digit spans and leave one slice empty.
  const auto part =
      RankRangePartition::from_boundaries({0, 1, 6, 6, 7, topo.num_nodes()});
  for (const int t : kThreadCounts) {
    const FaultSimResult got = shard::sharded_simulate_with_faults(
        net, packets, plan, part, {}, {}, ExecPolicy{t});
    expect_fault_result_identical(oracle, got,
                                  "straddling @" + std::to_string(t));
  }
}

TEST(ShardedFaults, EmptyPlanStillMatchesPlainSimulate) {
  // Transitively pins the sharded engine to simulate(): sharded == faulty
  // == plain when no fault ever fires.
  const Graph g = topo::hypercube(5);
  const SimNetwork net(g, LinkTiming{1.0, 1.0});
  const auto packets = sim::uniform_traffic(g.num_nodes(), 3.0, 40.0, 3);
  const auto plain = simulate(net, packets);
  const RankRangePartition part(g.num_nodes(), 8);
  const FaultSimResult got = shard::sharded_simulate_with_faults(
      net, packets, FaultPlan{}, part, {}, {}, ExecPolicy{8});
  EXPECT_EQ(got.delivered, plain.delivered);
  EXPECT_EQ(got.dropped, 0u);
  EXPECT_EQ(got.latency.mean(), plain.latency.mean());
  EXPECT_EQ(got.latency.max(), plain.latency.max());
  EXPECT_EQ(got.makespan, plain.makespan);
}

}  // namespace
}  // namespace ipg
