#pragma once
// Shared connectivity assertions for the fault-tolerance suites: the
// paper's headline families are maximally connected (kappa equals the
// minimum degree), which is the hypothesis behind every "survives kappa-1
// faults" guarantee — so the suites verify it with the flow oracle rather
// than assume it.

#include <gtest/gtest.h>

#include "graph/flow.hpp"
#include "graph/graph.hpp"
#include "graph/metrics.hpp"

namespace ipg::testing {

/// Computes kappa with the max-flow oracle and asserts it meets the
/// min-degree upper bound (maximal connectivity). Returns kappa so callers
/// can size fault plans and disjoint-path expectations from it.
inline int expect_maximally_connected(const Graph& g) {
  const int kappa = vertex_connectivity(g);
  EXPECT_EQ(kappa, static_cast<int>(degree_stats(g).min_degree))
      << "family is not maximally connected";
  return kappa;
}

}  // namespace ipg::testing
