// Differential fault simulation: RoutingPolicy::kDisjoint (IST multipath
// failover) vs the greedy detour-then-BFS heuristic (kLabelRoute) on the
// headline families at fault counts kappa-1 (inside the provable window —
// both must deliver everything, but only the multipath policy does so
// without BFS fallbacks) and 2*kappa (beyond it — the disjoint policy must
// never deliver less). Delivered/dropped counts are pinned in a golden
// table so a silent behavior change in either policy trips the diff.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "connectivity_helpers.hpp"
#include "graph/builder.hpp"
#include "ipg/families.hpp"
#include "net/topology.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"
#include "sim/traffic.hpp"

namespace ipg {
namespace {

using sim::FaultPlan;
using sim::FaultSimResult;
using sim::LinkTiming;
using sim::Packet;
using sim::SimNetwork;

Graph rank_id_graph(const net::ImplicitSuperIPTopology& topo) {
  const auto n = static_cast<Node>(topo.num_nodes());
  GraphBuilder b(n);
  std::vector<net::TopoArc> arcs;
  for (Node u = 0; u < n; ++u) {
    topo.neighbors(u, arcs);
    net::NodeId prev = net::kInvalidNodeId;
    for (const net::TopoArc& a : arcs) {
      if (a.to == prev) continue;
      prev = a.to;
      b.add_arc(u, static_cast<Node>(a.to));
    }
  }
  return std::move(b).build();
}

std::vector<Packet> surviving_all_pairs(net::NodeId n,
                                        const net::FaultSet& faults) {
  std::vector<Packet> out;
  double t = 0.0;
  for (net::NodeId s = 0; s < n; ++s) {
    for (net::NodeId d = 0; d < n; ++d) {
      if (s == d || !faults.node_up(s) || !faults.node_up(d)) continue;
      out.push_back({static_cast<Node>(s), static_cast<Node>(d), t});
      t += 1000.0;
    }
  }
  return out;
}

struct GoldenRow {
  const char* name;
  int fault_multiple;  ///< faults = kappa - 1 (0) or 2 * kappa (1)
  std::uint64_t packets;
  std::uint64_t greedy_delivered;
  std::uint64_t disjoint_delivered;
};

TEST(IstSim, DisjointPolicyDominatesGreedyDetourUnderFaults) {
  struct Case {
    const char* name;
    SuperIPSpec spec;
  };
  const std::vector<Case> cases = {
      {"HSN(2,Q3)", make_hsn(2, hypercube_nucleus(3))},
      {"ring-CN(3,S3)", make_ring_cn(3, star_nucleus(3))},
      {"SFN(3,Q2)", make_super_flip(3, hypercube_nucleus(2))},
  };
  // Measured once (seed 7 fault plans); delivery_rate(IST) >=
  // delivery_rate(greedy) is the invariant, the integers are the pin.
  const std::vector<GoldenRow> golden = {
      {"HSN(2,Q3)", 0, 3782u, 3782u, 3782u},
      {"HSN(2,Q3)", 1, 3306u, 3306u, 3306u},
      {"ring-CN(3,S3)", 0, 46010u, 46010u, 46010u},
      {"ring-CN(3,S3)", 1, 44732u, 44732u, 44732u},
      {"SFN(3,Q2)", 0, 3906u, 3906u, 3906u},
      {"SFN(3,Q2)", 1, 3540u, 3540u, 3540u},
  };

  std::size_t row = 0;
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    const net::ImplicitSuperIPTopology topo(c.spec);
    const Graph g = rank_id_graph(topo);
    const int kappa = testing::expect_maximally_connected(g);
    ASSERT_GE(kappa, 2);

    const SimNetwork greedy(topo, LinkTiming{1.0, 1.0});
    const SimNetwork multipath(topo, LinkTiming{1.0, 1.0},
                               sim::RoutingPolicy::kDisjoint);

    for (const int faults : {kappa - 1, 2 * kappa}) {
      SCOPED_TRACE(std::string("faults=") + std::to_string(faults));
      const FaultPlan plan =
          FaultPlan::random_node_faults(topo.num_nodes(), faults, 7);
      const net::FaultSet fs = plan.snapshot(0.0);
      const auto packets = surviving_all_pairs(topo.num_nodes(), fs);

      const FaultSimResult rg = simulate_with_faults(greedy, packets, plan);
      const FaultSimResult rd = simulate_with_faults(multipath, packets, plan);

      // The ISSUE's acceptance inequality, at every swept fault count.
      EXPECT_GE(rd.delivered, rg.delivered);

      if (faults < kappa) {
        // Inside the provable window both policies deliver everything,
        // but only the multipath policy needs no BFS escape hatch.
        EXPECT_EQ(rd.delivered, packets.size());
        EXPECT_EQ(rd.dropped, 0u);
        EXPECT_EQ(rd.bfs_fallbacks, 0u);
        EXPECT_EQ(rg.delivered, packets.size());
      }

      ASSERT_LT(row, golden.size());
      const GoldenRow& gold = golden[row++];
      ASSERT_STREQ(gold.name, c.name);
      EXPECT_EQ(packets.size(), gold.packets) << "traffic drifted";
      EXPECT_EQ(rg.delivered, gold.greedy_delivered) << "greedy drifted";
      EXPECT_EQ(rd.delivered, gold.disjoint_delivered) << "disjoint drifted";
    }
  }
}

TEST(IstSim, EmptyPlanDisjointPolicyDeliversEverythingWithoutDetours) {
  const SuperIPSpec spec = make_hsn(2, hypercube_nucleus(2));
  const net::ImplicitSuperIPTopology topo(spec);
  const SimNetwork net(topo, LinkTiming{1.0, 1.0},
                       sim::RoutingPolicy::kDisjoint);
  const auto packets = sim::uniform_traffic(
      static_cast<Node>(topo.num_nodes()), 2.0, 60.0, 5);
  const auto r = simulate_with_faults(net, packets, FaultPlan{});
  EXPECT_EQ(r.delivered, packets.size());
  EXPECT_EQ(r.dropped, 0u);
  EXPECT_EQ(r.detours, 0u);
  EXPECT_EQ(r.bfs_fallbacks, 0u);
}

}  // namespace
}  // namespace ipg
