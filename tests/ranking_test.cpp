// Tests for radix-M node ranking (Fig. 1's node labels).
#include <gtest/gtest.h>

#include <set>

#include "ipg/families.hpp"
#include "ipg/ranking.hpp"
#include "ipg/symmetric.hpp"
#include "topo/hypercube.hpp"

namespace ipg {
namespace {

TEST(Ranking, BijectionOnHcn22) {
  // Fig. 1a ranks the 16 nodes of HSN(2, Q2) with 2-digit radix-4 labels.
  const SuperIPSpec spec = make_hcn(2);
  const IPGraph g = build_super_ip_graph(spec);
  const SuperRanking ranking(spec);
  EXPECT_EQ(ranking.nucleus_size(), 4u);
  std::set<std::uint64_t> ranks;
  for (Node u = 0; u < g.num_nodes(); ++u) {
    const std::uint64_t r = ranking.rank(g.labels()[u]);
    EXPECT_LT(r, 16u);
    ranks.insert(r);
  }
  EXPECT_EQ(ranks.size(), 16u);
}

TEST(Ranking, SeedRanksToZero) {
  const SuperIPSpec spec = make_hsn(3, hypercube_nucleus(2));
  const SuperRanking ranking(spec);
  EXPECT_EQ(ranking.rank(spec.seed), 0u);
  EXPECT_EQ(ranking.radix_string(spec.seed), "000");
}

TEST(Ranking, DigitsIdentifyBlockContents) {
  const SuperIPSpec spec = make_hsn(2, hypercube_nucleus(2));
  const IPGraph g = build_super_ip_graph(spec);
  const SuperRanking ranking(spec);
  for (Node u = 0; u < g.num_nodes(); ++u) {
    // Swapping the two blocks swaps the two digits.
    Label swapped = g.labels()[u];
    const Label b0 = block_of(swapped, 0, spec.m);
    const Label b1 = block_of(swapped, 1, spec.m);
    set_block(swapped, 0, spec.m, b1);
    set_block(swapped, 1, spec.m, b0);
    EXPECT_EQ(ranking.digit(g.labels()[u], 0), ranking.digit(swapped, 1));
    EXPECT_EQ(ranking.digit(g.labels()[u], 1), ranking.digit(swapped, 0));
  }
}

TEST(Ranking, WideNucleusUsesDotSeparators) {
  const SuperIPSpec spec = make_hsn(2, hypercube_nucleus(4));  // M = 16
  const SuperRanking ranking(spec);
  const std::string s = ranking.radix_string(spec.seed);
  EXPECT_NE(s.find('.'), std::string::npos);
}

TEST(Ranking, SymmetricSeedBijection) {
  // Section 3.5: the symmetric variant has A * M^l nodes; the rank maps
  // them bijectively onto [0, A * M^l).
  const SuperIPSpec sym = make_symmetric(make_hsn(2, hypercube_nucleus(2)));
  const IPGraph g = build_super_ip_graph(sym);
  const SuperRanking ranking(sym);
  EXPECT_TRUE(ranking.symmetric_seed());
  EXPECT_EQ(ranking.size(), symmetric_size(sym, ranking.nucleus_size()));
  ASSERT_EQ(ranking.size(), g.num_nodes());
  std::set<std::uint64_t> ranks;
  for (Node u = 0; u < g.num_nodes(); ++u) {
    const std::uint64_t r = ranking.rank(g.labels()[u]);
    EXPECT_LT(r, ranking.size());
    ranks.insert(r);
  }
  EXPECT_EQ(ranks.size(), g.num_nodes());
}

TEST(Ranking, UnrankInvertsRankOnEveryFamily) {
  const std::vector<SuperIPSpec> specs = {
      make_hcn(3),
      make_hsn(2, hypercube_nucleus(3)),
      make_ring_cn(3, star_nucleus(3)),
      make_symmetric(make_hcn(2)),
      make_symmetric(make_ring_cn(3, star_nucleus(3))),
  };
  for (const SuperIPSpec& spec : specs) {
    SCOPED_TRACE(spec.name);
    const SuperRanking ranking(spec);
    const IPGraph g = build_super_ip_graph(spec);
    ASSERT_EQ(ranking.size(), g.num_nodes());
    Label x;
    for (Node u = 0; u < g.num_nodes(); ++u) {
      const std::uint64_t r = ranking.rank(g.labels()[u]);
      ranking.unrank_into(r, x);
      ASSERT_EQ(x, g.labels()[u]);
      ASSERT_EQ(ranking.try_rank(x), r);
    }
  }
}

TEST(Ranking, TryRankRejectsNonNodes) {
  const SuperIPSpec spec = make_hcn(2);
  const SuperRanking ranking(spec);
  EXPECT_EQ(ranking.try_rank(Label{1, 2}), SuperRanking::kInvalidRank);
  Label bogus = spec.seed;
  bogus[0] = static_cast<std::uint8_t>(bogus[0] + 100);
  EXPECT_EQ(ranking.try_rank(bogus), SuperRanking::kInvalidRank);
}

TEST(Ranking, RejectsIrregularSeeds) {
  // Neither identical blocks nor make_symmetric's uniform shift.
  SuperIPSpec spec = make_hcn(2);
  spec.seed = {1, 2, 2, 1};
  EXPECT_THROW(SuperRanking{spec}, std::invalid_argument);
}

}  // namespace
}  // namespace ipg
