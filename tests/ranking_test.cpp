// Tests for radix-M node ranking (Fig. 1's node labels).
#include <gtest/gtest.h>

#include <set>

#include "ipg/families.hpp"
#include "ipg/ranking.hpp"
#include "ipg/symmetric.hpp"
#include "topo/hypercube.hpp"

namespace ipg {
namespace {

TEST(Ranking, BijectionOnHcn22) {
  // Fig. 1a ranks the 16 nodes of HSN(2, Q2) with 2-digit radix-4 labels.
  const SuperIPSpec spec = make_hcn(2);
  const IPGraph g = build_super_ip_graph(spec);
  const SuperRanking ranking(spec);
  EXPECT_EQ(ranking.nucleus_size(), 4u);
  std::set<std::uint64_t> ranks;
  for (Node u = 0; u < g.num_nodes(); ++u) {
    const std::uint64_t r = ranking.rank(g.labels[u]);
    EXPECT_LT(r, 16u);
    ranks.insert(r);
  }
  EXPECT_EQ(ranks.size(), 16u);
}

TEST(Ranking, SeedRanksToZero) {
  const SuperIPSpec spec = make_hsn(3, hypercube_nucleus(2));
  const SuperRanking ranking(spec);
  EXPECT_EQ(ranking.rank(spec.seed), 0u);
  EXPECT_EQ(ranking.radix_string(spec.seed), "000");
}

TEST(Ranking, DigitsIdentifyBlockContents) {
  const SuperIPSpec spec = make_hsn(2, hypercube_nucleus(2));
  const IPGraph g = build_super_ip_graph(spec);
  const SuperRanking ranking(spec);
  for (Node u = 0; u < g.num_nodes(); ++u) {
    // Swapping the two blocks swaps the two digits.
    Label swapped = g.labels[u];
    const Label b0 = block_of(swapped, 0, spec.m);
    const Label b1 = block_of(swapped, 1, spec.m);
    set_block(swapped, 0, spec.m, b1);
    set_block(swapped, 1, spec.m, b0);
    EXPECT_EQ(ranking.digit(g.labels[u], 0), ranking.digit(swapped, 1));
    EXPECT_EQ(ranking.digit(g.labels[u], 1), ranking.digit(swapped, 0));
  }
}

TEST(Ranking, WideNucleusUsesDotSeparators) {
  const SuperIPSpec spec = make_hsn(2, hypercube_nucleus(4));  // M = 16
  const SuperRanking ranking(spec);
  const std::string s = ranking.radix_string(spec.seed);
  EXPECT_NE(s.find('.'), std::string::npos);
}

TEST(Ranking, RejectsSymmetricSeeds) {
  const SuperIPSpec sym = make_symmetric(make_hsn(2, hypercube_nucleus(2)));
  EXPECT_THROW(SuperRanking{sym}, std::invalid_argument);
}

}  // namespace
}  // namespace ipg
