// Fault-injection tests: structural surgery plus the Menger-style
// survivability property — a k-connected network stays connected under any
// k-1 node failures, and the right k failures disconnect it.
#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/flow.hpp"
#include "graph/surgery.hpp"
#include "ipg/families.hpp"
#include "topo/hypercube.hpp"
#include "topo/misc.hpp"
#include "topo/star.hpp"
#include "util/prng.hpp"

namespace ipg {
namespace {

TEST(Surgery, RemoveNodesRelabelsConsistently) {
  const Graph g = topo::cycle(6);
  const std::vector<Node> failed{2};
  const FaultedGraph f = remove_nodes(g, failed);
  EXPECT_EQ(f.graph.num_nodes(), 5u);
  EXPECT_EQ(f.new_id[2], kUnreachable);
  // Survivors keep their adjacency: 1 and 3 lost their link through 2.
  const Node n1 = f.new_id[1], n3 = f.new_id[3];
  EXPECT_FALSE(f.graph.has_arc(n1, n3));
  EXPECT_TRUE(f.graph.has_arc(f.new_id[0], n1));
  for (Node u = 0; u < f.graph.num_nodes(); ++u) {
    EXPECT_EQ(f.new_id[f.original_id[u]], u);
  }
}

TEST(Surgery, RemoveLinksKeepsNodes) {
  const Graph g = topo::cycle(5);
  const std::vector<std::pair<Node, Node>> failed{{0, 1}};
  const Graph cut = remove_links(g, failed);
  EXPECT_EQ(cut.num_nodes(), 5u);
  EXPECT_FALSE(cut.has_arc(0, 1));
  EXPECT_FALSE(cut.has_arc(1, 0));
  EXPECT_TRUE(cut.has_arc(1, 2));
  EXPECT_TRUE(is_connected_from(cut));  // still a path
}

struct SurvivabilityCase {
  std::string name;
  Graph g;
};

class Survivability : public ::testing::TestWithParam<int> {};

TEST_P(Survivability, KappaMinusOneRandomFaultsNeverDisconnect) {
  // Networks under test and their known connectivity.
  std::vector<SurvivabilityCase> cases;
  cases.push_back({"Q4", topo::hypercube(4)});
  cases.push_back({"S4", topo::star_graph(4)});
  cases.push_back({"Petersen", topo::petersen()});
  {
    const IPGraph hcn = build_super_ip_graph(make_hcn(2));
    cases.push_back({"HCN(2,2)+links", add_hcn_diameter_links(hcn, 2)});
  }

  Xoshiro256 rng(1000u + static_cast<std::uint64_t>(GetParam()));
  for (const auto& c : cases) {
    const int kappa = vertex_connectivity(c.g);
    ASSERT_GE(kappa, 2) << c.name;
    // Draw kappa-1 distinct random failures.
    std::vector<Node> failed;
    while (static_cast<int>(failed.size()) < kappa - 1) {
      const Node f = static_cast<Node>(rng.below(c.g.num_nodes()));
      if (std::find(failed.begin(), failed.end(), f) == failed.end()) {
        failed.push_back(f);
      }
    }
    const FaultedGraph survivor = remove_nodes(c.g, failed);
    EXPECT_TRUE(is_strongly_connected(survivor.graph))
        << c.name << " with " << kappa - 1 << " faults";
  }
}

INSTANTIATE_TEST_SUITE_P(Trials, Survivability, ::testing::Range(0, 10));

TEST(Survivability, MinimumCutActuallyDisconnects) {
  // Removing all neighbors of a node isolates it: kappa faults suffice.
  const Graph g = topo::hypercube(3);
  const auto nb = g.neighbors(0);
  const std::vector<Node> cut(nb.begin(), nb.end());
  const FaultedGraph survivor = remove_nodes(g, cut);
  EXPECT_FALSE(is_strongly_connected(survivor.graph));
}

TEST(Survivability, RoutingDegradesGracefullyUnderLinkFaults) {
  // Any single link failure leaves a 2-connected network connected with
  // diameter growth bounded by rerouting around the failed link.
  const IPGraph g = build_super_ip_graph(make_hsn(2, hypercube_nucleus(2)));
  for (Node u = 0; u < g.num_nodes(); ++u) {
    for (const Node v : g.graph.neighbors(u)) {
      if (v < u) continue;
      const std::vector<std::pair<Node, Node>> failed{{u, v}};
      EXPECT_TRUE(is_strongly_connected(remove_links(g.graph, failed)));
    }
  }
}

}  // namespace
}  // namespace ipg
