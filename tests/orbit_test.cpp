// Orbit-quotient suite (ctest label `orbit`): the orbit-compressed exact
// analytics engine is differentially tested against the scalar brute-force
// oracle on every golden family variant and on random specs, at several
// thread and shard counts — the fold must be bit-identical, not just close.
// The partition and arc-preservation audits are additionally shown to trip
// on deliberately corrupted inputs, so the safety net itself is tested.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/exact.hpp"
#include "analysis/orbit.hpp"
#include "cluster/imetrics.hpp"
#include "graph/bfs.hpp"
#include "ipg/build.hpp"
#include "ipg/families.hpp"
#include "ipg/super.hpp"
#include "ipg/symmetric.hpp"
#include "net/topology.hpp"
#include "random_spec.hpp"
#include "util/narrow.hpp"
#include "util/prng.hpp"

namespace ipg {
namespace {

/// The 12 golden variants of tests/golden_diameters_test.cpp.
std::vector<SuperIPSpec> all_family_specs() {
  std::vector<SuperIPSpec> specs = {
      make_hcn(2),
      make_hsn(3, hypercube_nucleus(2)),
      make_ring_cn(3, star_nucleus(3)),
      make_complete_cn(3, hypercube_nucleus(2)),
      make_directed_cn(3, star_nucleus(3)),
      make_super_flip(3, hypercube_nucleus(2)),
  };
  const std::size_t plain_count = specs.size();
  for (std::size_t i = 0; i < plain_count; ++i) {
    specs.push_back(make_symmetric(specs[i]));
  }
  return specs;
}

void expect_summaries_identical(const DistanceSummary& want,
                                const DistanceSummary& got,
                                const std::string& tag) {
  EXPECT_EQ(want.diameter, got.diameter) << tag;
  EXPECT_EQ(want.strongly_connected, got.strongly_connected) << tag;
  EXPECT_EQ(want.histogram, got.histogram) << tag;
  // Bitwise: both sides divide the same integral total by the same count.
  EXPECT_EQ(want.average_distance, got.average_distance) << tag;
}

void expect_orbit_matches_oracle(const IPGraph& g, const OrbitQuotient& q,
                                 const std::string& name) {
  const DistanceSummary oracle = all_pairs_distance_summary_scalar(g.graph);
  for (const int threads : {1, 2, 8}) {
    for (const int shards : {1, 2}) {
      ExactOptions opts;
      opts.orbit = &q;
      opts.num_shards = shards;
      const ExactAnalysis got =
          exact_analysis(g.graph, ExecPolicy{threads}, opts);
      expect_summaries_identical(oracle, got.distances,
                                 name + " @" + std::to_string(threads) +
                                     "t/" + std::to_string(shards) + "s");
    }
  }
}

TEST(OrbitQuotientTest, GoldenVariantsBitIdenticalToScalarOracle) {
  for (const SuperIPSpec& spec : all_family_specs()) {
    SCOPED_TRACE(spec.name);
    const IPGraph g = build_super_ip_graph(spec);
    const OrbitQuotient q = compute_orbit_quotient(g, spec);
    EXPECT_TRUE(orbit_partition_consistent(q)) << spec.name;
    expect_orbit_matches_oracle(g, q, spec.name);
  }
}

TEST(OrbitQuotientTest, RandomSpecsBitIdenticalToScalarOracle) {
  Xoshiro256 rng(0x0913c0de);
  int tested = 0;
  while (tested < 6) {
    const SuperIPSpec spec = testing::random_super_ip_spec(rng);
    const IPGraph g = build_super_ip_graph(spec);
    if (g.num_nodes() > 4000) continue;  // keep the suite fast
    SCOPED_TRACE(spec.name);
    const OrbitQuotient q = compute_orbit_quotient(g, spec);
    EXPECT_TRUE(orbit_partition_consistent(q)) << spec.name;
    expect_orbit_matches_oracle(g, q, spec.name);
    ++tested;
  }
}

TEST(OrbitQuotientTest, SymmetricVariantsCollapseToOneOrbit) {
  for (const SuperIPSpec& spec : all_family_specs()) {
    if (spec.name.rfind("sym-", 0) != 0) continue;
    SCOPED_TRACE(spec.name);
    const IPGraph g = build_super_ip_graph(spec);
    const OrbitQuotient q = compute_orbit_quotient(g, spec);
    EXPECT_EQ(q.num_orbits(), 1u) << spec.name;
    EXPECT_EQ(q.representatives[0], 0u) << spec.name;
    EXPECT_EQ(q.multiplicity[0], g.num_nodes()) << spec.name;
  }
}

TEST(OrbitQuotientTest, PlainVariantsCompressByAtLeastNucleusSize) {
  for (const SuperIPSpec& spec : all_family_specs()) {
    if (spec.name.rfind("sym-", 0) == 0) continue;
    SCOPED_TRACE(spec.name);
    const IPGraph g = build_super_ip_graph(spec);
    const OrbitQuotient q = compute_orbit_quotient(g, spec);
    // The diagonal symbol relabelings form a free group of order
    // M = |nucleus|, so every orbit has at least M elements.
    const IPGraph nucleus = build_ip_graph(spec.nucleus_spec());
    const auto m_nodes = static_cast<std::uint64_t>(nucleus.num_nodes());
    EXPECT_GE(q.compression(), static_cast<double>(m_nodes)) << spec.name;
    for (const std::uint64_t mult : q.multiplicity) {
      EXPECT_EQ(mult % m_nodes, 0u) << spec.name;
    }
  }
}

TEST(OrbitQuotientTest, SingleOrbitFoldEqualsScalarOnCayleyVariants) {
  for (const SuperIPSpec& spec : all_family_specs()) {
    if (spec.name.rfind("sym-", 0) != 0) continue;
    SCOPED_TRACE(spec.name);
    const IPGraph g = build_super_ip_graph(spec);
    const DistanceSummary oracle = all_pairs_distance_summary_scalar(g.graph);
    const OrbitQuotient one = OrbitQuotient::single_orbit(g.num_nodes());
    for (const int shards : {1, 2}) {
      expect_summaries_identical(
          oracle,
          orbit_folded_distance_summary(g.graph, one, ExecPolicy{2}, shards),
          spec.name + " single-orbit/" + std::to_string(shards) + "s");
    }
  }
}

TEST(OrbitAuditTest, PartitionConsistencyHoldsForBuiltQuotients) {
  const SuperIPSpec spec = make_hsn(3, hypercube_nucleus(2));
  const IPGraph g = build_super_ip_graph(spec);
  const OrbitQuotient q = compute_orbit_quotient(g, spec);
  ASSERT_TRUE(orbit_partition_consistent(q));
  ASSERT_GE(q.num_orbits(), 2u);

  OrbitQuotient bad_mult = q;
  bad_mult.multiplicity[0] += 1;  // multiplicities no longer sum to N
  EXPECT_FALSE(orbit_partition_consistent(bad_mult));

  OrbitQuotient bad_reps = q;
  std::swap(bad_reps.representatives[0], bad_reps.representatives[1]);
  EXPECT_FALSE(orbit_partition_consistent(bad_reps));  // not ascending

  OrbitQuotient bad_assign = q;
  const std::size_t rep0 = as_size(bad_assign.representatives[0]);
  bad_assign.orbit_of[rep0] ^= 1u;  // representative leaves its own orbit
  EXPECT_FALSE(orbit_partition_consistent(bad_assign));

  OrbitQuotient bad_implied = q;
  bad_implied.orbit_of.clear();  // implied assignment needs exactly 1 orbit
  EXPECT_FALSE(orbit_partition_consistent(bad_implied));
}

TEST(OrbitAuditTest, ArcAuditRejectsUncertifiedIndexPermutation) {
  const SuperIPSpec spec = make_ring_cn(3, star_nucleus(3));
  const IPGraph g = build_super_ip_graph(spec);
  // Swapping position 0 (block 0) with position 3 (block 1) fixes the
  // plain seed but mixes blocks, so it is not an automorphism: the audit
  // must find a node whose neighborhood it fails to preserve.
  OrbitAutomorphism bad;
  bad.kind = OrbitAutomorphism::Kind::kIndexPermutation;
  bad.name = "bad:T(0,3)";
  bad.index_perm = Permutation::transposition(spec.label_length(), 0, 3);
  EXPECT_FALSE(automorphism_arc_preserving(g, bad, 32, 0x5eed));

  const net::ImplicitSuperIPTopology topo(spec);
  EXPECT_FALSE(automorphism_arc_preserving(topo, bad, 32, 0x5eed));

  // A genuine relabel generator from the built quotient passes the same
  // audit, so the rejection above is discriminating, not vacuous.
  const OrbitQuotient q = compute_orbit_quotient(g, spec);
  ASSERT_FALSE(q.generators.empty());
  EXPECT_TRUE(automorphism_arc_preserving(g, q.generators[0], 32, 0x5eed));
}

TEST(OrbitImplicitTest, ImplicitQuotientMatchesMaterializedShape) {
  for (const SuperIPSpec& spec : all_family_specs()) {
    SCOPED_TRACE(spec.name);
    const IPGraph g = build_super_ip_graph(spec);
    const OrbitQuotient mat = compute_orbit_quotient(g, spec);
    const net::ImplicitSuperIPTopology topo(spec);
    const OrbitQuotient imp = compute_orbit_quotient(topo);
    EXPECT_TRUE(orbit_partition_consistent(imp)) << spec.name;
    EXPECT_EQ(imp.num_nodes, mat.num_nodes) << spec.name;
    // Node ids differ (BFS order vs ranks), so compare partition shape:
    // the same certified group acts, so orbit-size multisets must agree.
    ASSERT_EQ(imp.num_orbits(), mat.num_orbits()) << spec.name;
    std::vector<std::uint64_t> a = mat.multiplicity;
    std::vector<std::uint64_t> b = imp.multiplicity;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << spec.name;
  }
}

TEST(OrbitImplicitTest, MapperCanonicalizesWithinImplicitOrbits) {
  for (const SuperIPSpec& spec :
       {make_hsn(3, hypercube_nucleus(2)),
        make_symmetric(make_hsn(3, hypercube_nucleus(2))),
        make_ring_cn(3, star_nucleus(3))}) {
    SCOPED_TRACE(spec.name);
    const net::ImplicitSuperIPTopology topo(spec);
    const OrbitQuotient q = compute_orbit_quotient(topo);
    const ImplicitOrbitMapper mapper(topo);
    EXPECT_TRUE(mapper.canonicalizes()) << spec.name;
    for (std::uint64_t r = 0; r < topo.num_nodes(); ++r) {
      const std::uint64_t c = mapper.canonical_rank(r);
      ASSERT_LT(c, topo.num_nodes()) << spec.name;
      // Idempotent, and never crosses a certified orbit boundary.
      EXPECT_EQ(mapper.canonical_rank(c), c) << spec.name << " r=" << r;
      if (!q.orbit_of.empty()) {
        EXPECT_EQ(q.orbit_of[as_size(c)], q.orbit_of[as_size(r)])
            << spec.name << " r=" << r;
      }
    }
  }
}

TEST(OrbitModuleTest, ModuleOrbitFoldMatchesPlainIMetrics) {
  for (const SuperIPSpec& spec :
       {make_hsn(3, hypercube_nucleus(2)),
        make_ring_cn(3, star_nucleus(3)),
        make_symmetric(make_complete_cn(3, hypercube_nucleus(2)))}) {
    SCOPED_TRACE(spec.name);
    const IPGraph g = build_super_ip_graph(spec);
    OrbitOptions opts;
    opts.module_preserving_only = true;
    const OrbitQuotient nodes = compute_orbit_quotient(g, spec, opts);
    const ModuleAssignment ma = nucleus_modules(g, spec.m);
    const OrbitQuotient mods =
        module_orbit_quotient(nodes, ma.module_of, ma.num_modules);
    EXPECT_TRUE(orbit_partition_consistent(mods)) << spec.name;
    Clustering c;
    c.module_of = ma.module_of;
    c.num_modules = ma.num_modules;
    for (const int threads : {1, 4}) {
      const IMetrics plain = i_metrics(g.graph, c, ExecPolicy{threads});
      const IMetrics folded = i_metrics(g.graph, c, mods, ExecPolicy{threads});
      const std::string tag = spec.name + " @" + std::to_string(threads) + "t";
      EXPECT_EQ(plain.i_degree, folded.i_degree) << tag;
      EXPECT_EQ(plain.i_diameter, folded.i_diameter) << tag;
      EXPECT_EQ(plain.avg_i_distance, folded.avg_i_distance) << tag;
    }
  }
}

TEST(OrbitExactOptionsTest, OptOutAndExplicitQuotientAgree) {
  const SuperIPSpec spec = make_hsn(3, hypercube_nucleus(2));
  const IPGraph g = build_super_ip_graph(spec);
  const OrbitQuotient q = compute_orbit_quotient(g, spec);
  ExactOptions brute;
  brute.use_orbit_quotient = false;
  brute.orbit = &q;  // must be ignored by the opt-out
  ExactOptions orbit;
  orbit.orbit = &q;
  expect_summaries_identical(
      exact_analysis(g.graph, ExecPolicy{2}, brute).distances,
      exact_analysis(g.graph, ExecPolicy{2}, orbit).distances, spec.name);
}

}  // namespace
}  // namespace ipg
