#include "shard/partition.hpp"

#include <algorithm>

#include "ipg/static_check.hpp"

namespace ipg::shard {

RankRangePartition::RankRangePartition(std::uint64_t num_ranks,
                                       int num_shards) {
  IPG_CONTRACT(num_shards >= 1);
  shards_ = num_shards;
  uniform_ = true;
  base_ = num_ranks / static_cast<std::uint64_t>(num_shards);
  extra_ = num_ranks % static_cast<std::uint64_t>(num_shards);
  bounds_.resize(static_cast<std::size_t>(num_shards) + 1);
  std::uint64_t cut = 0;
  for (int s = 0; s < num_shards; ++s) {
    bounds_[static_cast<std::size_t>(s)] = cut;
    cut += base_ + (static_cast<std::uint64_t>(s) < extra_ ? 1 : 0);
  }
  bounds_.back() = cut;
  IPG_CONTRACT(cut == num_ranks);
}

RankRangePartition RankRangePartition::from_boundaries(
    std::vector<std::uint64_t> boundaries) {
  IPG_CONTRACT(boundaries.size() >= 2);
  IPG_CONTRACT(boundaries.front() == 0);
  IPG_CONTRACT(std::is_sorted(boundaries.begin(), boundaries.end()));
  RankRangePartition part;
  part.shards_ = static_cast<int>(boundaries.size()) - 1;
  part.uniform_ = false;
  part.bounds_ = std::move(boundaries);
  return part;
}

int RankRangePartition::owner(std::uint64_t rank) const {
  IPG_CONTRACT(rank < num_ranks());
  if (uniform_) {
    // The first `extra_` shards hold base_ + 1 ranks each.
    const std::uint64_t wide = extra_ * (base_ + 1);
    if (rank < wide) return static_cast<int>(rank / (base_ + 1));
    return static_cast<int>(extra_ + (rank - wide) / base_);
  }
  // bounds_ is nondecreasing; the owner is the last cut <= rank whose slice
  // is non-empty, which upper_bound - 1 lands on directly.
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), rank);
  return static_cast<int>(it - bounds_.begin()) - 1;
}

}  // namespace ipg::shard
