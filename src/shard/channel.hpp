#pragma once
// The message seam between shards (docs/MODEL.md §12).
//
// Shard workers run bulk-synchronous supersteps: during a parallel phase
// shard `s` appends messages for shard `t` to its own outbox row
// (outboxes[s][t] — written by exactly one worker, so no locking), and at
// the barrier exchange() concatenates every column into the receiver's
// inbox *in sender-shard order*. That fixed concatenation order is the
// whole determinism argument for the seam: whatever the thread schedule
// did during the phase, shard t always drains s=0's bytes before s=1's.
//
// Transport is the backend seam. InProcessTransport is memcpy; an MPI
// backend is a drop-in — exchange() maps onto MPI_Alltoallv (per-rank
// send buffers in rank order is exactly alltoallv's layout), and nothing
// above the Transport interface would change. Payloads are raw bytes with
// memcpy-based typed framing (ByteWriter/ByteReader) so every message is
// trivially serializable over a wire by construction.
//
// Framing discipline: each message kind gets a named write_<kind> /
// read_<kind> function pair whose ByteWriter writes and ByteReader reads
// mirror each other field for field. The framing-symmetry rule in
// tools/ipg_lint.py pairs the functions by suffix and flags any skew
// (a field written but never read, or read out of order, silently
// corrupts every later field in the frame).
//
// ByteWriter/ByteReader hold no locks by design — the superstep writer
// discipline above (one worker per outbox row, exchange() at the barrier)
// is the whole synchronization story, checked by TSan rather than by the
// capability annotations in util/sync.hpp.

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace ipg::shard {

/// Backend seam: delivers outboxes[src][dst] into inboxes[dst],
/// concatenated in ascending src order, and leaves every outbox empty
/// (capacity retained). Implementations may move bytes in-process or ship
/// them across ranks; callers only rely on the concatenation order.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual void exchange(
      std::vector<std::vector<std::vector<std::uint8_t>>>& outboxes,
      std::vector<std::vector<std::uint8_t>>& inboxes) = 0;
};

/// Single-process transport: byte moves under the superstep barrier.
class InProcessTransport final : public Transport {
 public:
  void exchange(std::vector<std::vector<std::vector<std::uint8_t>>>& outboxes,
                std::vector<std::vector<std::uint8_t>>& inboxes) override;
};

/// Appends trivially-copyable values to a byte buffer (memcpy framing: no
/// aliasing UB, no padding surprises — each field crosses as bytes).
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& buf) : buf_(&buf) {}

  template <typename T>
  void write(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t at = buf_->size();
    buf_->resize(at + sizeof(T));
    std::memcpy(buf_->data() + at, &v, sizeof(T));
  }

  template <typename T>
  void write_span(std::span<const T> vs) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t at = buf_->size();
    buf_->resize(at + vs.size_bytes());
    if (!vs.empty()) std::memcpy(buf_->data() + at, vs.data(), vs.size_bytes());
  }

 private:
  std::vector<std::uint8_t>* buf_;
};

/// Sequential reader over a received byte span; the reverse of ByteWriter.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  bool empty() const noexcept { return at_ >= bytes_.size(); }
  std::size_t remaining() const noexcept { return bytes_.size() - at_; }

  template <typename T>
  T read() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    std::memcpy(&v, bytes_.data() + at_, sizeof(T));
    at_ += sizeof(T);
    return v;
  }

  template <typename T>
  void read_into(T* dst, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (count > 0) std::memcpy(dst, bytes_.data() + at_, count * sizeof(T));
    at_ += count * sizeof(T);
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t at_ = 0;
};

/// S x S mailbox grid over a Transport. Writer discipline: during a
/// parallel phase, only shard s touches outbox(s, *); exchange() runs at
/// the barrier (single caller); inbox(t) is read-only until the next
/// exchange overwrites it.
class ShardChannel {
 public:
  /// Owns an InProcessTransport unless `transport` injects another backend
  /// (non-owning in that case; must outlive the channel).
  explicit ShardChannel(int num_shards, Transport* transport = nullptr);

  int num_shards() const noexcept { return shards_; }

  std::vector<std::uint8_t>& outbox(int from, int to) {
    return outboxes_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
  }

  /// Barrier step: inboxes become the sender-ordered concatenation of this
  /// round's outboxes; outboxes come back empty with capacity retained.
  void exchange();

  std::span<const std::uint8_t> inbox(int shard) const {
    return inboxes_[static_cast<std::size_t>(shard)];
  }

  /// Total payload bytes moved across all exchange() calls (bench stat).
  std::uint64_t bytes_exchanged() const noexcept { return bytes_exchanged_; }

 private:
  int shards_ = 1;
  std::unique_ptr<Transport> owned_;
  Transport* transport_ = nullptr;
  std::vector<std::vector<std::vector<std::uint8_t>>> outboxes_;  // [src][dst]
  std::vector<std::vector<std::uint8_t>> inboxes_;                // [dst]
  std::uint64_t bytes_exchanged_ = 0;
};

}  // namespace ipg::shard
