#pragma once
// Sharded frontier-exchange BFS driver: the bit-parallel 64-source batched
// engine of graph/bfs_batch.hpp decomposed over a RankRangePartition.
//
// Per source batch, the level-synchronous loop becomes a sequence of
// bulk-synchronous supersteps. Each shard expands only the frontier words
// of its owned rank range; an arc whose target another shard owns becomes
// an Activation{target, lanes} message in that shard's outbox. At the
// barrier the channel exchanges boundary activations (sender order), each
// shard ORs its inbox into its local next-masks, and the per-shard
// new-lane popcounts merge in shard-index order.
//
// Determinism contract (tests/shard_engine_test.cpp): every accumulated
// quantity is integral and the per-level fold is a sum/max/or over
// per-shard aggregates merged in shard order, so the summary is
// bit-identical across any shard count and any thread count — and
// bit-identical to the unsharded engine, because the level sets of a BFS
// do not depend on how the expansion work was split (the sharded driver is
// top-down-only; direction choice never changes what a level computes,
// only how). shards == 1 delegates to the unsharded engine outright.
//
// Two adjacency backends share the driver core: the materialized CSR Graph
// and the implicit super-IP topology, the latter walking each shard's
// slice with ImplicitSuperIPTopology::rank_range so no worker ever unranks
// outside its range.

#include <span>

#include "graph/bfs.hpp"
#include "graph/bfs_batch.hpp"
#include "graph/graph.hpp"
#include "net/topology.hpp"
#include "shard/partition.hpp"
#include "util/thread_pool.hpp"

namespace ipg::shard {

/// Sharded distance summary over a materialized graph. Bit-identical to
/// batched_distance_summary(g, sources, exec) for every partition of
/// [0, g.num_nodes()) and every thread count.
DistanceSummary sharded_distance_summary(const Graph& g,
                                         std::span<const Node> sources,
                                         const RankRangePartition& part,
                                         const ExecPolicy& exec);

/// Sharded distance summary over an implicit super-IP topology (node ids
/// are Theorem 3.2 ranks). The partition must cover [0, num_nodes());
/// shard memory is 3 words per owned rank, so slices of 10^8-node
/// instances fit where the whole-space masks would not.
DistanceSummary sharded_distance_summary(
    const net::ImplicitSuperIPTopology& topo,
    std::span<const net::NodeId> sources, const RankRangePartition& part,
    const ExecPolicy& exec);

}  // namespace ipg::shard
