#pragma once
// Sharded fault-aware packet simulation: simulate_with_faults() decomposed
// over a RankRangePartition with a conservative (lookahead-window) parallel
// discrete-event scheme. Each shard owns the packets currently standing at
// its rank range — event calendar, link busy-until times, fault-state
// replica and BFS scratch are all shard-local — and a packet hopping into
// another shard's range migrates as a serialized message through the
// shard/channel.hpp seam, so the same engine maps onto MPI ranks
// unchanged.
//
// Round structure (bulk-synchronous):
//   1. Tmin = earliest pending event across shards; the round's window is
//      Tend = nextafter(fl(Tmin + Lmin), -inf) clamped up to Tmin, where
//      Lmin = SimNetwork::min_service_time() > 0.
//   2. Every shard processes its events with time <= Tend. Safe, because
//      a processed event only creates events at time fl(x) for a real
//      x >= Tmin + Lmin, and rounding is monotone, so every new time is
//      >= fl(Tmin + Lmin) = succ(Tend) > Tend — strictly after the window.
//      Within the window shards cannot interact: a link's id is keyed by
//      its source node, faults are a pure function of time (each replica
//      replays the same plan), and each packet has exactly one in-flight
//      event.
//   3. Boundary hops exchange; deliveries merge sorted by (time, packet),
//      which equals the sequential engine's pop order restricted to
//      deliveries — so even the floating-point latency accumulation order
//      is identical.
//
// Determinism contract (tests/shard_engine_test.cpp): the FaultSimResult —
// every counter and every LatencyStats sample — is bit-identical across
// shard counts and thread counts, and bit-identical to the sequential
// simulate_with_faults(); a one-shard partition delegates to it outright.

#include <span>

#include "shard/partition.hpp"
#include "sim/faults.hpp"
#include "util/thread_pool.hpp"

namespace ipg::shard {

/// Sharded counterpart of sim::simulate_with_faults. `part` must cover
/// [0, net.num_nodes()).
sim::FaultSimResult sharded_simulate_with_faults(
    const sim::SimNetwork& net, std::span<const sim::Packet> packets,
    const sim::FaultPlan& plan, const RankRangePartition& part,
    sim::MessageModel model = {}, sim::AdaptiveOptions opts = {},
    ExecPolicy exec = ExecPolicy::serial_policy());

}  // namespace ipg::shard
