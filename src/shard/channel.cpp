#include "shard/channel.hpp"

#include "ipg/static_check.hpp"
#include "util/narrow.hpp"

namespace ipg::shard {

void InProcessTransport::exchange(
    std::vector<std::vector<std::vector<std::uint8_t>>>& outboxes,
    std::vector<std::vector<std::uint8_t>>& inboxes) {
  const std::size_t shards = inboxes.size();
  for (std::size_t dst = 0; dst < shards; ++dst) {
    std::vector<std::uint8_t>& in = inboxes[dst];
    in.clear();
    std::size_t total = 0;
    for (std::size_t src = 0; src < shards; ++src) {
      total += outboxes[src][dst].size();
    }
    in.reserve(total);
    // Sender order IS the determinism contract; see the header.
    for (std::size_t src = 0; src < shards; ++src) {
      std::vector<std::uint8_t>& out = outboxes[src][dst];
      in.insert(in.end(), out.begin(), out.end());
      out.clear();  // keeps capacity for the next superstep
    }
  }
}

ShardChannel::ShardChannel(int num_shards, Transport* transport)
    : shards_(num_shards) {
  IPG_CONTRACT(num_shards >= 1);
  if (transport == nullptr) {
    owned_ = std::make_unique<InProcessTransport>();
    transport_ = owned_.get();
  } else {
    transport_ = transport;
  }
  outboxes_.resize(as_size(num_shards));
  for (auto& row : outboxes_) row.resize(as_size(num_shards));
  inboxes_.resize(as_size(num_shards));
}

void ShardChannel::exchange() {
  for (const auto& row : outboxes_) {
    for (const auto& box : row) bytes_exchanged_ += box.size();
  }
  transport_->exchange(outboxes_, inboxes_);
}

}  // namespace ipg::shard
