#include "shard/bfs_engine.hpp"

#include <algorithm>
#include <bit>

#include "ipg/static_check.hpp"
#include "shard/channel.hpp"
#include "shard/context.hpp"
#include "util/narrow.hpp"

namespace ipg::shard {

namespace {

/// One boundary message: OR `lanes` into the owner's next-mask of `node`.
/// OR is commutative, so only the per-shard drain order needs fixing (the
/// channel's sender-order concatenation does that and more).
struct Activation {
  std::uint64_t node = 0;
  std::uint64_t lanes = 0;
};
static_assert(sizeof(Activation) == 16);

/// Framing pair for Activation messages. Named write_*/read_* so the
/// framing-symmetry lint (tools/ipg_lint.py) checks the two sequences stay
/// field-for-field mirrors.
void write_activation(ByteWriter out, const Activation& a) { out.write(a); }

Activation read_activation(ByteReader& in) { return in.read<Activation>(); }

/// The shared superstep driver. `expand(ctx)` pushes ctx's frontier along
/// its out-arcs: locally-owned targets OR straight into ctx.next, foreign
/// targets become Activation messages (the backend-specific part).
template <typename SourceT, typename ExpandShard>
DistanceSummary drive(std::uint64_t n, std::span<const SourceT> sources,
                      const RankRangePartition& part, const ExecPolicy& exec,
                      const ExpandShard& expand) {
  IPG_CONTRACT(part.num_ranks() == n);
  const int num_shards = part.num_shards();
  std::vector<ShardContext> ctx(as_size(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    ctx[as_size(s)].assign_range(s, part.begin(s), part.end(s));
  }
  ShardChannel channel(num_shards);
  ThreadPool pool(exec.resolved_threads());
  DistanceAccumulator acc;

  const std::uint64_t num_batches =
      (sources.size() + kBfsBatchWidth - 1) / kBfsBatchWidth;
  for (std::uint64_t b = 0; b < num_batches; ++b) {
    const std::size_t batch_begin = b * kBfsBatchWidth;
    const std::uint32_t k = static_cast<std::uint32_t>(
        std::min<std::size_t>(kBfsBatchWidth, sources.size() - batch_begin));
    const std::uint64_t full = k == kBfsBatchWidth ? ~0ull : ((1ull << k) - 1);

    pool.parallel_for(as_size(num_shards), as_size(num_shards),
                      [&](int, std::uint64_t chunk, std::uint64_t,
                          std::uint64_t) { ctx[chunk].reset_batch(); });
    for (std::uint32_t i = 0; i < k; ++i) {
      const std::uint64_t src =
          static_cast<std::uint64_t>(sources[batch_begin + i]);
      ShardContext& c = ctx[as_size(part.owner(src))];
      c.front[static_cast<std::size_t>(src - c.first)] |= 1ull << i;
      c.visit[static_cast<std::size_t>(src - c.first)] |= 1ull << i;
    }
    // Level 0: every source sees itself at distance 0 (duplicates counted
    // per source, matching the unsharded engines).
    if (acc.histogram.empty()) acc.histogram.resize(1, 0);
    acc.histogram[0] += k;

    Dist level = 0;
    for (;;) {
      ++level;
      pool.parallel_for(
          as_size(num_shards), as_size(num_shards),
          [&](int, std::uint64_t chunk, std::uint64_t, std::uint64_t) {
            expand(ctx[chunk], channel);
          });
      channel.exchange();
      pool.parallel_for(
          as_size(num_shards), as_size(num_shards),
          [&](int, std::uint64_t chunk, std::uint64_t, std::uint64_t) {
            ShardContext& c = ctx[chunk];
            ByteReader in(channel.inbox(c.shard));
            while (!in.empty()) {
              const Activation a = read_activation(in);
              c.next[static_cast<std::size_t>(a.node - c.first)] |= a.lanes;
            }
            std::uint64_t new_count = 0;
            for (std::size_t i = 0; i < c.next.size(); ++i) {
              const std::uint64_t fresh = c.next[i] & ~c.visit[i];
              c.next[i] = 0;
              c.front[i] = fresh;
              if (fresh != 0) {
                c.visit[i] |= fresh;
                new_count +=
                    static_cast<std::uint64_t>(std::popcount(fresh));
              }
            }
            c.new_count = new_count;
          });
      std::uint64_t total_new = 0;
      for (int s = 0; s < num_shards; ++s) {  // shard order = merge order
        total_new += ctx[as_size(s)].new_count;
      }
      if (total_new == 0) break;
      if (level >= acc.histogram.size()) acc.histogram.resize(level + 1, 0);
      acc.histogram[level] += total_new;
      acc.total += static_cast<std::uint64_t>(level) * total_new;
      acc.diameter = std::max(acc.diameter, level);
    }

    pool.parallel_for(
        as_size(num_shards), as_size(num_shards),
        [&](int, std::uint64_t chunk, std::uint64_t, std::uint64_t) {
          ShardContext& c = ctx[chunk];
          for (const std::uint64_t word : c.visit) {
            if ((word & full) != full) {
              c.disconnected = true;
              break;
            }
          }
        });
    for (int s = 0; s < num_shards; ++s) {
      acc.disconnected = acc.disconnected || ctx[as_size(s)].disconnected;
    }
  }
  return finish_distance_summary(std::move(acc), sources.size(), n);
}

}  // namespace

DistanceSummary sharded_distance_summary(const Graph& g,
                                         std::span<const Node> sources,
                                         const RankRangePartition& part,
                                         const ExecPolicy& exec) {
  // shards == 1: today's (unsharded) engine IS the single-shard engine;
  // delegating keeps the oracle relationship definitional.
  if (part.num_shards() == 1) {
    return batched_distance_summary(g, sources, exec);
  }
  const auto expand = [&](ShardContext& c, ShardChannel& channel) {
    for (std::uint64_t u = c.first; u < c.last; ++u) {
      const std::uint64_t f = c.front[static_cast<std::size_t>(u - c.first)];
      if (f == 0) continue;
      for (const Node v : g.neighbors(static_cast<Node>(u))) {
        const int t = part.owner(v);
        if (t == c.shard) {
          c.next[static_cast<std::size_t>(v - c.first)] |= f;
        } else {
          write_activation(ByteWriter(channel.outbox(c.shard, t)),
                           Activation{v, f});
        }
      }
    }
  };
  return drive(g.num_nodes(), sources, part, exec, expand);
}

DistanceSummary sharded_distance_summary(
    const net::ImplicitSuperIPTopology& topo,
    std::span<const net::NodeId> sources, const RankRangePartition& part,
    const ExecPolicy& exec) {
  const auto expand = [&](ShardContext& c, ShardChannel& channel) {
    // rank_range keeps every unrank inside the owned slice and amortizes
    // the label scratch across it; non-frontier ranks cost one comparison.
    net::RankRangeCursor cursor = topo.rank_range(c.first, c.last);
    net::NodeId u = 0;
    while (cursor.next(u)) {
      const std::uint64_t f = c.front[static_cast<std::size_t>(u - c.first)];
      if (f == 0) continue;
      for (const net::TopoArc& a : cursor.arcs()) {
        const int t = part.owner(a.to);
        if (t == c.shard) {
          c.next[static_cast<std::size_t>(a.to - c.first)] |= f;
        } else {
          write_activation(ByteWriter(channel.outbox(c.shard, t)),
                           Activation{a.to, f});
        }
      }
    }
  };
  return drive(topo.num_nodes(), sources, part, exec, expand);
}

}  // namespace ipg::shard

namespace ipg {

DistanceSummary sharded_distance_summary(const Graph& g,
                                         std::span<const Node> sources,
                                         const shard::RankRangePartition& part,
                                         const ExecPolicy& exec) {
  return shard::sharded_distance_summary(g, sources, part, exec);
}

}  // namespace ipg
