#pragma once
// Rank-range sharding: the partition algebra under the sharded execution
// engine (docs/MODEL.md §12).
//
// The Theorem 3.2 ranking is a bijection [0, N) <-> nodes, so a partition
// of the rank interval into S contiguous slices is a partition of the node
// set — each shard owns exactly the state (BFS lane masks, distance
// accumulators, in-flight packets, link timings) of its slice, and
// ownership of any node is a pure O(1) / O(log S) function of its rank.
// Contiguity is what makes the implicit topologies shard-friendly: a shard
// enumerates its slice with ImplicitSuperIPTopology::rank_range and never
// unranks a label it does not own.
//
// Two constructions:
//   - RankRangePartition(n, s): near-equal split, sizes differ by at most
//     one (the first n % s shards get the extra rank); owner() is O(1).
//   - from_boundaries({b0..bS}): arbitrary contiguous cuts — the tests use
//     this to place boundaries *inside* super-symbol digit spans, proving
//     the engine does not depend on module-aligned cuts; owner() is a
//     binary search.
//
// The partition is pure data shared read-only by every shard worker; all
// determinism arguments reduce to "shard index order is merge order".

#include <cstdint>
#include <vector>

namespace ipg::shard {

class RankRangePartition {
 public:
  /// Near-equal contiguous split of [0, num_ranks) into num_shards slices.
  RankRangePartition(std::uint64_t num_ranks, int num_shards);

  /// Explicit cuts: `boundaries` = {b0 <= b1 <= ... <= bS} with b0 == 0;
  /// shard s owns [b_s, b_{s+1}). Empty slices are allowed.
  static RankRangePartition from_boundaries(
      std::vector<std::uint64_t> boundaries);

  int num_shards() const noexcept { return shards_; }
  std::uint64_t num_ranks() const noexcept { return bounds_.back(); }

  std::uint64_t begin(int s) const { return bounds_[static_cast<std::size_t>(s)]; }
  std::uint64_t end(int s) const { return bounds_[static_cast<std::size_t>(s) + 1]; }
  std::uint64_t size(int s) const { return end(s) - begin(s); }

  /// The shard owning `rank`. O(1) for the uniform construction, O(log S)
  /// for explicit boundaries.
  int owner(std::uint64_t rank) const;

 private:
  RankRangePartition() = default;

  int shards_ = 1;
  bool uniform_ = false;
  std::uint64_t base_ = 0;   ///< uniform: floor(num_ranks / shards)
  std::uint64_t extra_ = 0;  ///< uniform: num_ranks % shards (first shards get +1)
  std::vector<std::uint64_t> bounds_;  ///< S + 1 cuts, nondecreasing
};

}  // namespace ipg::shard
