#pragma once
// Per-shard execution state for the sharded BFS driver: each shard owns
// the visit/front/next lane-mask slices of its rank range (local index =
// rank - first) plus its per-level aggregates. The whole-space arrays of
// graph/bfs_batch.hpp split exactly along the partition cuts, so shard
// memory is (range size) x 3 words regardless of total instance size —
// the property that lets an MPI backend hold 10^8-node slices per rank.
//
// The fault engine's per-shard state (event calendar, fault replica, link
// timings, in-flight packets) lives inside shard/fault_engine.cpp — it is
// policy-shaped rather than range-shaped, so it does not share this
// struct.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/bfs_batch.hpp"

namespace ipg::shard {

struct ShardContext {
  int shard = 0;
  std::uint64_t first = 0;  ///< owned rank range [first, last)
  std::uint64_t last = 0;

  /// One lane-mask word per owned rank (kBfsBatchWidth sources per word).
  std::vector<std::uint64_t> visit, front, next;

  /// Per-level / per-batch aggregates, merged across shards in shard order.
  std::uint64_t new_count = 0;
  bool disconnected = false;

  void assign_range(int shard_index, std::uint64_t range_first,
                    std::uint64_t range_last) {
    shard = shard_index;
    first = range_first;
    last = range_last;
    const std::size_t n = static_cast<std::size_t>(last - first);
    visit.assign(n, 0);
    front.assign(n, 0);
    next.assign(n, 0);
  }

  /// Resets the masks for the next source batch (aggregates too).
  void reset_batch() {
    std::fill(visit.begin(), visit.end(), 0);
    std::fill(front.begin(), front.end(), 0);
    std::fill(next.begin(), next.end(), 0);
    new_count = 0;
    disconnected = false;
  }
};

}  // namespace ipg::shard
