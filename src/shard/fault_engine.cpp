#include "shard/fault_engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "ipg/static_check.hpp"
#include "shard/channel.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault_step.hpp"
#include "sim/link_state.hpp"
#include "util/narrow.hpp"

namespace ipg::shard {

namespace {

using sim::Event;
using sim::Packet;
using sim::detail::Flight;

/// One delivery, buffered per shard and merged across shards in
/// (time, packet) order — the sequential engine's pop order restricted to
/// deliveries — so LatencyStats sees its samples in the same order.
struct Delivery {
  double time = 0.0;
  std::uint32_t packet = 0;
  double latency = 0.0;
  int hops = 0;
  int off_hops = 0;
  std::uint32_t planned = 0;
};

/// All state one shard owns. The fault replica replays the *whole* plan —
/// faults are a pure function of time, so replicas agree without any
/// cross-shard traffic.
struct FaultShard {
  FaultShard(const sim::SimNetwork& net, const sim::FaultPlan& plan,
             bool label_routed)
      : faults(plan), link_free(net.policy(), net.num_links()) {
    if (label_routed) faulty_view.emplace(net.topology(), faults.faults());
  }

  sim::EventQueue queue;
  sim::FaultState faults;
  sim::detail::LinkState link_free;
  std::optional<net::FaultyTopology> faulty_view;
  sim::detail::FaultStepScratch scratch;

  // Per-run commutative counters, folded into the result in shard order.
  std::uint64_t dropped = 0;
  std::uint64_t detours = 0;
  std::uint64_t bfs_fallbacks = 0;

  std::vector<Delivery> deliveries;  // this round's, cleared after merge
};

/// Serializes a migrating packet's continuation: the arrival event plus
/// the full Flight. In-process the Flight lives in a shared vector and the
/// bytes round-trip to identical values; the point is that the message
/// carries *everything* the receiving shard needs, which is the MPI
/// drop-in requirement.
void write_migration(ByteWriter w, double arrive, std::uint32_t packet,
                     Node to, const Flight& f) {
  w.write(arrive);
  w.write(packet);
  w.write(to);
  w.write(f.hops);
  w.write(f.off_hops);
  w.write(f.planned);
  w.write(static_cast<std::uint64_t>(f.pos));
  w.write(f.detours);
  w.write(f.bfs_tries);
  w.write(static_cast<std::uint64_t>(f.gens.size()));
  w.write(static_cast<std::uint64_t>(f.path.size()));
  w.write_span(std::span<const int>(f.gens));
  w.write_span(std::span<const Node>(f.path));
}

/// Deserializes one migration; pushes the arrival into `sh.queue` and
/// restores the Flight. Safe to run per shard in parallel: each packet has
/// exactly one in-flight event, so no two shards restore the same slot.
void read_migration(ByteReader& r, FaultShard& sh,
                    std::vector<Flight>& flight) {
  const double arrive = r.read<double>();
  const auto packet = r.read<std::uint32_t>();
  const Node to = r.read<Node>();
  Flight& f = flight[packet];
  f.hops = r.read<int>();
  f.off_hops = r.read<int>();
  f.planned = r.read<std::uint32_t>();
  f.pos = static_cast<std::size_t>(r.read<std::uint64_t>());
  f.detours = r.read<int>();
  f.bfs_tries = r.read<int>();
  const auto gens_count = r.read<std::uint64_t>();
  const auto path_count = r.read<std::uint64_t>();
  f.gens.resize(static_cast<std::size_t>(gens_count));
  f.path.resize(static_cast<std::size_t>(path_count));
  r.read_into(f.gens.data(), f.gens.size());
  r.read_into(f.path.data(), f.path.size());
  sh.queue.push(Event{arrive, packet, to});
}

}  // namespace

sim::FaultSimResult sharded_simulate_with_faults(
    const sim::SimNetwork& net, std::span<const Packet> packets,
    const sim::FaultPlan& plan, const RankRangePartition& part,
    sim::MessageModel model, sim::AdaptiveOptions opts, ExecPolicy exec) {
  if (part.num_shards() == 1) {
    return sim::simulate_with_faults(net, packets, plan, model, opts);
  }
  assert(model.flits >= 1);
  IPG_CONTRACT(part.num_ranks() == net.num_nodes());
  for ([[maybe_unused]] const sim::FaultWindow& w : plan.windows()) {
    IPG_CONTRACT(w.fail_time <= w.repair_time);
  }
  const double lmin = net.min_service_time();
  IPG_CONTRACT(lmin > 0.0);

  sim::FaultSimResult result;
  result.injected = packets.size();

  const bool label_routed =
      net.policy() != sim::RoutingPolicy::kPrecomputedTable;
  const int num_shards = part.num_shards();

  std::vector<std::unique_ptr<FaultShard>> shards;
  shards.reserve(as_size(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shards.push_back(std::make_unique<FaultShard>(net, plan, label_routed));
  }

  std::vector<Flight> flight(packets.size());
  for (std::uint32_t i = 0; i < packets.size(); ++i) {
    shards[as_size(part.owner(packets[i].src))]->queue.push(
        Event{packets[i].inject_time, i, packets[i].src});
  }

  ShardChannel channel(num_shards);
  ThreadPool pool(exec.resolved_threads());
  std::vector<Delivery> round;

  for (;;) {
    // Window bound: the earliest pending event plus the minimum service
    // time, nudged down one ulp so every event *created* this round lands
    // strictly after the window (see the header's monotonicity argument).
    double tmin = std::numeric_limits<double>::infinity();
    for (int s = 0; s < num_shards; ++s) {
      const auto& q = shards[as_size(s)]->queue;
      if (!q.empty()) tmin = std::min(tmin, q.top().time);
    }
    if (tmin == std::numeric_limits<double>::infinity()) break;
    const double tend =
        std::max(tmin, std::nextafter(tmin + lmin,
                                      -std::numeric_limits<double>::infinity()));

    pool.parallel_for(
        as_size(num_shards), as_size(num_shards),
        [&](int, std::uint64_t chunk, std::uint64_t, std::uint64_t) {
          FaultShard& sh = *shards[chunk];
          const int self = static_cast<int>(chunk);
          while (!sh.queue.empty() && sh.queue.top().time <= tend) {
            const Event e = sh.queue.pop();
            sh.faults.advance_to(e.time);
            const Packet& p = packets[e.packet];
            Flight& f = flight[e.packet];
            const sim::detail::StepResult r = sim::detail::fault_step(
                net, opts, sh.faults.faults(),
                sh.faulty_view ? &*sh.faulty_view : nullptr, p, e, f,
                sh.scratch);
            switch (r.outcome) {
              case sim::detail::StepOutcome::kDropped:
                sh.dropped++;
                break;
              case sim::detail::StepOutcome::kDelivered:
                sh.deliveries.push_back(Delivery{e.time, e.packet,
                                                 e.time - p.inject_time,
                                                 f.hops, f.off_hops,
                                                 f.planned});
                break;
              case sim::detail::StepOutcome::kForwarded: {
                if (r.detoured) sh.detours++;
                if (r.bfs_rerouted) sh.bfs_fallbacks++;
                double& free_at = sh.link_free[r.hop.link];
                const double start = std::max(e.time, free_at);
                const double full =
                    start + r.hop.service_time * model.flits;
                free_at = full;  // the link carries every flit either way
                const bool header_only =
                    model.mode == sim::SwitchingMode::kCutThrough &&
                    r.hop.to != p.dst;
                const double arrive =
                    header_only ? start + r.hop.service_time : full;
                // The window-closure contract; can only fail when the
                // service time is below one ulp of the timestamps, which
                // no meaningful timing model reaches.
                IPG_CONTRACT(arrive > tend);
                f.hops++;
                if (r.hop.off_module) f.off_hops++;
                const int target = part.owner(r.hop.to);
                if (target == self) {
                  sh.queue.push(Event{arrive, e.packet, r.hop.to});
                } else {
                  write_migration(ByteWriter(channel.outbox(self, target)),
                                  arrive, e.packet, r.hop.to, f);
                }
                break;
              }
            }
          }
        });

    channel.exchange();
    pool.parallel_for(
        as_size(num_shards), as_size(num_shards),
        [&](int, std::uint64_t chunk, std::uint64_t, std::uint64_t) {
          FaultShard& sh = *shards[chunk];
          ByteReader in(channel.inbox(static_cast<int>(chunk)));
          while (!in.empty()) read_migration(in, sh, flight);
        });

    // Merge the round's deliveries in global (time, packet) order. Rounds
    // never split a timestamp (every event <= Tend was consumed and every
    // new event is > Tend), so round-major + per-round sort is the global
    // order.
    round.clear();
    for (int s = 0; s < num_shards; ++s) {
      auto& d = shards[as_size(s)]->deliveries;
      round.insert(round.end(), d.begin(), d.end());
      d.clear();
    }
    std::sort(round.begin(), round.end(),
              [](const Delivery& a, const Delivery& b) {
                return a.time != b.time ? a.time < b.time
                                        : a.packet < b.packet;
              });
    for (const Delivery& d : round) {
      result.latency.record(d.latency, d.hops, d.off_hops);
      result.delivered++;
      result.makespan = std::max(result.makespan, d.time);
      result.planned_hop_sum += d.planned;
      result.actual_hop_sum += static_cast<std::uint64_t>(d.hops);
    }
  }

  for (int s = 0; s < num_shards; ++s) {  // shard order = merge order
    const FaultShard& sh = *shards[as_size(s)];
    result.dropped += sh.dropped;
    result.detours += sh.detours;
    result.bfs_fallbacks += sh.bfs_fallbacks;
  }
  return result;
}

}  // namespace ipg::shard
