#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/link_state.hpp"

namespace ipg::sim {

using detail::LinkState;

SimResult simulate(const SimNetwork& net, std::span<const Packet> packets,
                   MessageModel model) {
  assert(model.flits >= 1);
  SimResult result;
  result.injected = packets.size();

  struct Flight {
    int hops = 0;
    int off_hops = 0;
  };
  std::vector<Flight> flight(packets.size());
  LinkState link_free(net.policy(), net.num_links());

  // Label routing is source routing: Theorem 4.1/4.3 routes depend on the
  // schedule phase, so the route is fixed at injection and followed hop by
  // hop (re-deriving it mid-flight would restart the schedule). Computed
  // lazily on the packet's first event; hops counts the steps taken.
  const bool label_routed = net.policy() != RoutingPolicy::kPrecomputedTable;
  std::vector<std::vector<int>> route;
  if (label_routed) route.resize(packets.size());

  EventQueue queue;
  for (std::uint32_t i = 0; i < packets.size(); ++i) {
    queue.push(Event{packets[i].inject_time, i, packets[i].src});
  }

  while (!queue.empty()) {
    const Event e = queue.pop();
    const Packet& p = packets[e.packet];
    if (e.node == p.dst) {
      result.latency.record(e.time - p.inject_time, flight[e.packet].hops,
                            flight[e.packet].off_hops);
      result.delivered++;
      result.makespan = std::max(result.makespan, e.time);
      if (label_routed) std::vector<int>().swap(route[e.packet]);
      continue;
    }
    SimNetwork::Hop h;
    if (label_routed) {
      auto& gens = route[e.packet];
      if (flight[e.packet].hops == 0) gens = net.route_gens(p.src, p.dst);
      h = net.hop_via(e.node, gens[static_cast<std::size_t>(flight[e.packet].hops)]);
    } else {
      h = net.hop(e.node, p.dst);
    }
    assert(h.to != kUnreachable && "simulate() requires a connected topology");
    double& free_at = link_free[h.link];
    const double start = std::max(e.time, free_at);
    const double full = start + h.service_time * model.flits;
    free_at = full;  // the link carries every flit either way
    // Store-and-forward waits for the whole message; cut-through forwards
    // the header after a single flit time. Delivery at the destination
    // always waits for the tail flit.
    const bool header_only =
        model.mode == SwitchingMode::kCutThrough && h.to != p.dst;
    const double arrive = header_only ? start + h.service_time : full;
    flight[e.packet].hops++;
    if (h.off_module) flight[e.packet].off_hops++;
    queue.push(Event{arrive, e.packet, h.to});
  }
  return result;
}

}  // namespace ipg::sim
