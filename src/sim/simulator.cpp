#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "sim/event_queue.hpp"

namespace ipg::sim {

SimResult simulate(const SimNetwork& net, std::span<const Packet> packets,
                   MessageModel model) {
  assert(model.flits >= 1);
  SimResult result;
  result.injected = packets.size();

  struct Flight {
    int hops = 0;
    int off_hops = 0;
  };
  std::vector<Flight> flight(packets.size());
  std::vector<double> link_free(net.graph().num_arcs(), 0.0);

  EventQueue queue;
  for (std::uint32_t i = 0; i < packets.size(); ++i) {
    queue.push(Event{packets[i].inject_time, i, packets[i].src});
  }

  while (!queue.empty()) {
    const Event e = queue.pop();
    const Packet& p = packets[e.packet];
    if (e.node == p.dst) {
      result.latency.record(e.time - p.inject_time, flight[e.packet].hops,
                            flight[e.packet].off_hops);
      result.delivered++;
      result.makespan = std::max(result.makespan, e.time);
      continue;
    }
    const Node next = net.next_hop(e.node, p.dst);
    assert(next != kUnreachable && "simulate() requires a connected topology");
    const std::uint64_t arc = net.arc_index(e.node, next);
    const double start = std::max(e.time, link_free[arc]);
    const double full = start + net.service_time(arc) * model.flits;
    link_free[arc] = full;  // the link carries every flit either way
    // Store-and-forward waits for the whole message; cut-through forwards
    // the header after a single flit time. Delivery at the destination
    // always waits for the tail flit.
    const bool header_only =
        model.mode == SwitchingMode::kCutThrough && next != p.dst;
    const double arrive = header_only ? start + net.service_time(arc) : full;
    flight[e.packet].hops++;
    if (net.crosses_modules(arc)) flight[e.packet].off_hops++;
    queue.push(Event{arrive, e.packet, next});
  }
  return result;
}

}  // namespace ipg::sim
