#include "sim/link_load.hpp"

#include <algorithm>
#include <stdexcept>

namespace ipg::sim {

LinkLoadStats all_pairs_link_loads(const SimNetwork& net) {
  if (net.policy() != RoutingPolicy::kPrecomputedTable) {
    throw std::invalid_argument(
        "all_pairs_link_loads: requires the precomputed-table policy (the "
        "all-pairs walk is O(N^2) and addresses dense arc indices)");
  }
  LinkLoadStats out;
  const Graph& g = net.graph();
  out.load.assign(g.num_arcs(), 0);

  for (Node dst = 0; dst < g.num_nodes(); ++dst) {
    for (Node src = 0; src < g.num_nodes(); ++src) {
      if (src == dst) continue;
      Node at = src;
      while (at != dst) {
        const Node next = net.next_hop(at, dst);
        const std::uint64_t arc = net.arc_index(at, next);
        out.load[arc]++;
        out.total_hops++;
        at = next;
      }
    }
  }

  std::uint64_t on_sum = 0, off_sum = 0, on_count = 0, off_count = 0;
  for (std::uint64_t arc = 0; arc < g.num_arcs(); ++arc) {
    if (net.crosses_modules(arc)) {
      out.max_off_module = std::max(out.max_off_module, out.load[arc]);
      off_sum += out.load[arc];
      ++off_count;
    } else {
      out.max_on_module = std::max(out.max_on_module, out.load[arc]);
      on_sum += out.load[arc];
      ++on_count;
    }
  }
  if (on_count > 0) {
    out.avg_on_module = static_cast<double>(on_sum) / static_cast<double>(on_count);
  }
  if (off_count > 0) {
    out.avg_off_module =
        static_cast<double>(off_sum) / static_cast<double>(off_count);
  }
  return out;
}

double saturation_injection_bound(const LinkLoadStats& loads, Node num_nodes,
                                  double bottleneck_service) {
  const std::uint32_t max_load = std::max(loads.max_on_module, loads.max_off_module);
  if (max_load == 0 || bottleneck_service <= 0.0) return 0.0;
  return (num_nodes - 1.0) /
         (static_cast<double>(max_load) * bottleneck_service);
}

}  // namespace ipg::sim
