#pragma once
// Store-and-forward packet simulator. Each link is a FIFO single-server
// queue; a packet traversing arc (u, v) waits for the link to free, holds
// it for the arc's service time, then arrives at v. This is the
// packet-switching model under which Section 5 relates light-load latency
// to DD-cost (uniform link speeds) and to II-cost (slow off-module links).

#include <span>

#include "sim/network.hpp"
#include "sim/stats.hpp"
#include "sim/traffic.hpp"

namespace ipg::sim {

/// Switching technique (Section 5 discusses both regimes).
enum class SwitchingMode {
  kStoreAndForward,  ///< a hop completes only after the whole message lands
  kCutThrough        ///< the header advances after one flit time; the link
                     ///< stays busy for the full message (ideal virtual
                     ///< cut-through: infinite buffers, no backpressure)
};

/// Message shape: `flits` flit times per link traversal.
struct MessageModel {
  int flits = 1;
  SwitchingMode mode = SwitchingMode::kStoreAndForward;
};

struct SimResult {
  LatencyStats latency;
  std::uint64_t delivered = 0;
  std::uint64_t injected = 0;
  double makespan = 0.0;  ///< time of the last delivery

  /// Delivered packets per unit time (a throughput estimate).
  double throughput() const {
    return makespan > 0.0 ? static_cast<double>(delivered) / makespan : 0.0;
  }
};

/// Runs the simulation to completion (every packet delivered; the event
/// set is finite so termination is guaranteed on connected topologies).
SimResult simulate(const SimNetwork& net, std::span<const Packet> packets,
                   MessageModel model = {});

}  // namespace ipg::sim
