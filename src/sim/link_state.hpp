#pragma once
// Internal: per-link busy-until times shared by simulate() and
// simulate_with_faults(). Dense vector for the precomputed-table policy
// (link ids are contiguous arc indices — same layout, and hence
// bit-identical results, as before the policy seam existed); hash map for
// label routing, whose link-id space is num_nodes * num_generators and
// only the links actually traversed matter.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/network.hpp"

namespace ipg::sim::detail {

class LinkState {
 public:
  LinkState(RoutingPolicy policy, std::uint64_t num_links) {
    if (policy == RoutingPolicy::kPrecomputedTable) {
      dense_.assign(num_links, 0.0);
    }
  }

  double& operator[](std::uint64_t link) {
    return dense_.empty() ? sparse_[link] : dense_[link];
  }

 private:
  std::vector<double> dense_;
  std::unordered_map<std::uint64_t, double> sparse_;
};

}  // namespace ipg::sim::detail
