#include "sim/traffic.hpp"
#include "util/narrow.hpp"

namespace ipg::sim {

std::vector<Packet> uniform_traffic(Node num_nodes, double packets_per_time,
                                    double horizon, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Packet> out;
  double t = 0.0;
  while (true) {
    t += rng.exponential(packets_per_time);
    if (t >= horizon) break;
    Packet p;
    p.inject_time = t;
    p.src = static_cast<Node>(rng.below(num_nodes));
    p.dst = static_cast<Node>(rng.below(num_nodes - 1));
    if (p.dst >= p.src) ++p.dst;  // uniform over dst != src
    out.push_back(p);
  }
  return out;
}

std::vector<Packet> burst_traffic(Node num_nodes, Node src, int count,
                                  std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Packet> out;
  out.reserve(as_size(count));
  for (int i = 0; i < count; ++i) {
    Packet p;
    p.src = src;
    p.dst = static_cast<Node>(rng.below(num_nodes - 1));
    if (p.dst >= p.src) ++p.dst;
    out.push_back(p);
  }
  return out;
}

std::vector<Packet> all_to_all_traffic(Node num_nodes) {
  std::vector<Packet> out;
  out.reserve(static_cast<std::size_t>(num_nodes) * (num_nodes - 1));
  for (Node s = 0; s < num_nodes; ++s) {
    for (Node d = 0; d < num_nodes; ++d) {
      if (s != d) out.push_back(Packet{s, d, 0.0});
    }
  }
  return out;
}

}  // namespace ipg::sim
