#pragma once
// One packet-event step of the fault-aware adaptive policy, factored out
// of simulate_with_faults() so the sequential driver (sim/faults.cpp) and
// the sharded conservative engine (shard/fault_engine.cpp) execute the
// *same* routing code per event — the bit-identity contract between them
// reduces to "same events in the same relative order", which the shard
// layer proves, not re-implements.
//
// The split: fault_step() owns the routing decision (injection-route
// derivation, planned-hop trimming, adaptive generator detours, the
// bounded-BFS fallback) and mutates only the packet's Flight and the
// caller's scratch. The caller owns everything timing- and aggregate-
// related: link FIFO occupancy, the arrival event, result counters,
// latency recording. That is exactly the state the sharded engine keeps
// per shard.

#include <cstdint>
#include <vector>

#include "net/faulty_topology.hpp"
#include "net/topology.hpp"
#include "sim/event_queue.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"
#include "sim/traffic.hpp"

namespace ipg::sim::detail {

/// In-flight per-packet routing state (one per injected packet, reused
/// across the packet's events).
struct Flight {
  int hops = 0;
  int off_hops = 0;
  std::uint32_t planned = 0;  ///< fault-free route length, set at injection
  std::vector<int> gens;      ///< label policy: current source route
  std::vector<Node> path;     ///< table policy: BFS detour path
  std::size_t pos = 0;        ///< next unconsumed entry of gens/path
  int detours = 0;
  int bfs_tries = 0;
};

enum class StepOutcome {
  kDropped,    ///< dead node, no live route, or reroute budget exhausted
  kDelivered,  ///< the event's node is the packet's destination
  kForwarded,  ///< one hop chosen; the caller schedules the arrival
};

struct StepResult {
  StepOutcome outcome = StepOutcome::kDropped;
  SimNetwork::Hop hop;        ///< valid iff kForwarded
  bool detoured = false;      ///< kForwarded: took a generator detour
  bool bfs_rerouted = false;  ///< kForwarded: took a bounded-BFS fallback
};

/// Reusable per-driver scratch (the label policy's BFS fallback path).
struct FaultStepScratch {
  std::vector<net::TopoArc> arc_path;
};

/// Executes the routing decision of packet `p`'s event `e` against the
/// fault set active at e.time. On kDropped/kDelivered the Flight's route
/// storage is released (hop counters stay readable for the caller's
/// accounting). `faulty_view` must be the fault-masked view of the
/// label-routed topology; it is unused (may be null) under the table
/// policy.
StepResult fault_step(const SimNetwork& net, const AdaptiveOptions& opts,
                      const net::FaultSet& fs,
                      const net::Topology* faulty_view, const Packet& p,
                      const Event& e, Flight& f, FaultStepScratch& scratch);

}  // namespace ipg::sim::detail
