#pragma once
// Simulation view of a network: per-arc service times (on-module links may
// be faster than off-module links, Section 5.4's regime) and precomputed
// shortest-path next-hop tables.

#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/clustering.hpp"
#include "graph/graph.hpp"

namespace ipg::sim {

/// Link timing model. With equal speeds, light-load latency tracks
/// DD-cost; with slow off-module links it tracks II-cost (Section 5).
struct LinkTiming {
  double on_module_time = 1.0;   ///< service time of an intra-module hop
  double off_module_time = 1.0;  ///< service time of an inter-module hop
};

class SimNetwork {
 public:
  /// Builds routing tables (one BFS per destination — O(N*E), intended for
  /// instances up to a few thousand nodes). Without a clustering, every
  /// arc uses on_module_time.
  SimNetwork(const Graph& g, LinkTiming timing,
             std::optional<Clustering> clustering = std::nullopt);

  Node num_nodes() const noexcept { return graph_->num_nodes(); }
  const Graph& graph() const noexcept { return *graph_; }

  /// Next hop on a shortest path from `u` toward `dst` (kUnreachable if
  /// disconnected). Shortest paths are min-hop; ties resolved toward the
  /// smallest-id neighbor, deterministically.
  Node next_hop(Node u, Node dst) const {
    return next_hop_[static_cast<std::size_t>(dst) * graph_->num_nodes() + u];
  }

  /// Index of arc u->v in the arc-parallel arrays.
  std::uint64_t arc_index(Node u, Node v) const;

  /// Service time of arc u->v under the timing model.
  double service_time(std::uint64_t arc) const { return service_[arc]; }

  /// True iff the given arc crosses modules.
  bool crosses_modules(std::uint64_t arc) const { return off_module_[arc]; }

 private:
  const Graph* graph_;
  std::vector<Node> next_hop_;        // [dst * N + u]
  std::vector<double> service_;       // per arc
  std::vector<std::uint8_t> off_module_;  // per arc
};

}  // namespace ipg::sim
