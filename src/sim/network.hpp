#pragma once
// Simulation view of a network: per-arc service times (on-module links may
// be faster than off-module links, Section 5.4's regime) and a routing
// policy answering "next hop toward dst" per simulated packet.
//
// Two policies:
//   - kPrecomputedTable: O(N^2) next-hop tables from one BFS per
//     destination — exact shortest-path routing for materialized graphs up
//     to a few thousand nodes.
//   - kLabelRoute: the paper's Theorem 4.1/4.3 label-sorting routes,
//     served by the shared batched query engine (route::QueryEngine) over
//     a net::ImplicitSuperIPTopology — O(nucleus) state, so the simulator
//     estimates latency on super-IP instances of 10^7+ nodes that are
//     never materialized.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/clustering.hpp"
#include "graph/graph.hpp"
#include "net/faulty_topology.hpp"
#include "net/topology.hpp"
#include "route/query_engine.hpp"

namespace ipg::sim {

/// Link timing model. With equal speeds, light-load latency tracks
/// DD-cost; with slow off-module links it tracks II-cost (Section 5).
struct LinkTiming {
  double on_module_time = 1.0;   ///< service time of an intra-module hop
  double off_module_time = 1.0;  ///< service time of an inter-module hop
};

/// How the network answers next-hop queries.
enum class RoutingPolicy {
  kPrecomputedTable,  ///< O(N^2) tables, exact shortest paths
  kLabelRoute,        ///< on-the-fly Theorem 4.1/4.3 label routing
  kDisjoint,          ///< IST k-disjoint multipath (label routes + failover)
};

class SimNetwork {
 public:
  /// Hard cap on the precomputed next-hop table (N^2 entries). Larger
  /// instances must use the label-routing constructor instead.
  static constexpr std::uint64_t kMaxNextHopEntries = 1ull << 26;

  /// Precomputed-table policy. Builds routing tables (one BFS per
  /// destination — O(N*E), intended for instances up to a few thousand
  /// nodes; throws std::length_error beyond kMaxNextHopEntries). Without a
  /// clustering, every arc uses on_module_time.
  SimNetwork(const Graph& g, LinkTiming timing,
             std::optional<Clustering> clustering = std::nullopt);

  /// Label-routing policy over an implicit super-IP topology (non-owning;
  /// `topo` must outlive the network). Hops follow the query engine's
  /// Theorem 4.1/4.3 routes —
  /// Theorem 4.1/4.3 length-optimal sorting routes, not BFS-shortest
  /// paths. An arc is off-module iff its generator is a super-generator,
  /// which matches cluster_by_nucleus on the materialized graph. Throws
  /// std::length_error if the instance exceeds the 32-bit packet id space.
  /// Pass kDisjoint to route packets over the IST k-disjoint path sets
  /// (route/disjoint.hpp) with length-order failover under faults;
  /// kPrecomputedTable is rejected here (std::invalid_argument) — tables
  /// come from the Graph constructor.
  SimNetwork(const net::ImplicitSuperIPTopology& topo, LinkTiming timing,
             RoutingPolicy policy = RoutingPolicy::kLabelRoute);

  RoutingPolicy policy() const noexcept { return policy_; }

  Node num_nodes() const noexcept {
    return policy_ == RoutingPolicy::kPrecomputedTable
               ? graph_->num_nodes()
               : static_cast<Node>(topo_->num_nodes());
  }

  /// The materialized graph (kPrecomputedTable policy only).
  const Graph& graph() const noexcept { return *graph_; }

  /// The implicit topology (kLabelRoute policy only).
  const net::ImplicitSuperIPTopology& topology() const noexcept {
    return *topo_;
  }

  /// One routing step: target node, FIFO link id, service time, module
  /// crossing. Link ids are dense arc indices under kPrecomputedTable and
  /// sparse (u * num_generators + generator) under kLabelRoute — see
  /// num_links().
  struct Hop {
    Node to = kUnreachable;
    std::uint64_t link = 0;
    double service_time = 0.0;
    bool off_module = false;
  };

  /// Next hop toward `dst` (kPrecomputedTable only; `u != dst` required).
  /// Table routes are memoryless — each node's shortest-path choice
  /// composes into a shortest path, so the simulator can re-query per hop.
  Hop hop(Node u, Node dst) const;

  /// Full Theorem 4.1/4.3 generator route src -> dst (kLabelRoute only).
  /// Label routes are source routes: the schedule phase is part of the
  /// route state, so re-deriving a fresh route at an intermediate node
  /// does NOT continue the original one (and need not make progress).
  /// Compute once at injection and follow it with hop_via().
  std::vector<int> route_gens(Node src, Node dst) const;

  /// The hop obtained by applying generator `gen` at node `u`
  /// (kLabelRoute only). `gen` must move `u`'s label, which every
  /// generator on a route_gens() route does.
  Hop hop_via(Node u, int gen) const;

  /// The hop along the explicit arc u -> v (kPrecomputedTable only; v must
  /// be one of u's out-neighbors). Lets the fault-aware simulator follow a
  /// detour path that the next-hop tables know nothing about.
  Hop hop_to(Node u, Node v) const;

  /// One step of the fault-aware adaptive policy (sim/faults.hpp).
  struct AdaptiveStep {
    Hop hop;
    bool detoured = false;
    /// kLabelRoute + detoured: the re-derived route hop.to -> dst that the
    /// packet must follow from the detour target onward.
    std::vector<int> fresh_gens;
  };

  /// Returns the planned next hop toward `dst` when it is alive in
  /// `faults` — gens[planned] of the packet's source route under
  /// kLabelRoute (`planned_gen`), the next-hop table under
  /// kPrecomputedTable (`planned_gen` ignored). When the planned hop is
  /// down, kLabelRoute detours: among u's live arcs it picks the one whose
  /// re-derived Theorem 4.1/4.3 route to `dst` is shortest (ties toward the
  /// smallest (target, tag) arc) and returns it with the fresh route.
  /// kPrecomputedTable has no label to re-route by, so a dead planned hop
  /// returns nullopt and the caller falls back to bounded BFS. nullopt also
  /// means every arc out of `u` is down.
  std::optional<AdaptiveStep> adaptive_step(Node u, Node dst, int planned_gen,
                                            const net::FaultSet& faults) const;

  /// Selected disjoint route under faults: the generator sequence of the
  /// first path (in length order) of the k-disjoint set src -> dst whose
  /// arcs are all alive, plus whether a non-primary path had to be taken
  /// (`switched`). found == false when every disjoint path is dead —
  /// possible only at >= kappa faults on the paper's families.
  struct DisjointSelection {
    std::vector<int> gens;
    bool found = false;
    bool switched = false;
  };

  /// kDisjoint only. Pure function of (topology, src, dst, faults):
  /// deterministic across calls and thread counts.
  DisjointSelection disjoint_route(Node src, Node dst,
                                   const net::FaultSet& faults) const;

  /// Size of the link-id space. Dense (== num_arcs) for tables; an upper
  /// bound (num_nodes * num_generators, sparsely used) for label routing —
  /// the simulator keeps per-link state in a hash map in that case.
  std::uint64_t num_links() const noexcept;

  /// Lower bound on every hop's service time — the conservative sharded
  /// fault engine's lookahead (events closer than this cannot spawn
  /// earlier work). Positive whenever the timing model is (LinkTiming's
  /// contract); zero or negative timings have no meaningful simulation.
  double min_service_time() const noexcept {
    return timing_.on_module_time < timing_.off_module_time
               ? timing_.on_module_time
               : timing_.off_module_time;
  }

  // --- kPrecomputedTable-only accessors (asserted; link_load and the
  // table-policy tests use these directly) ---

  /// Next hop on a shortest path from `u` toward `dst` (kUnreachable if
  /// disconnected). Shortest paths are min-hop; ties resolved toward the
  /// smallest-id neighbor, deterministically.
  Node next_hop(Node u, Node dst) const {
    return next_hop_[static_cast<std::size_t>(dst) * graph_->num_nodes() + u];
  }

  /// Index of arc u->v in the arc-parallel arrays.
  std::uint64_t arc_index(Node u, Node v) const;

  /// Service time of arc u->v under the timing model.
  double service_time(std::uint64_t arc) const { return service_[arc]; }

  /// True iff the given arc crosses modules.
  bool crosses_modules(std::uint64_t arc) const { return off_module_[arc]; }

 private:
  RoutingPolicy policy_ = RoutingPolicy::kPrecomputedTable;
  const Graph* graph_ = nullptr;
  const net::ImplicitSuperIPTopology* topo_ = nullptr;
  LinkTiming timing_{};
  /// kLabelRoute: all route queries go through the shared batched engine
  /// (route::QueryEngine), the same fast path the benches and the service
  /// loop use — per-packet routes benefit from its route cache.
  std::unique_ptr<route::QueryEngine> engine_;
  std::vector<Node> next_hop_;             // [dst * N + u]
  std::vector<double> service_;            // per arc
  std::vector<std::uint8_t> off_module_;   // per arc
};

}  // namespace ipg::sim
