#include "sim/faults.hpp"

#include <algorithm>
#include <cassert>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "ipg/static_check.hpp"
#include "sim/event_queue.hpp"
#include "sim/link_state.hpp"
#include "util/prng.hpp"

namespace ipg::sim {

// ---------------------------------------------------------------------------
// FaultPlan

void FaultPlan::fail_node(net::NodeId u, double at, double until) {
  assert(at < until && "fault window must have positive length");
  windows_.push_back({false, u, net::kInvalidNodeId, at, until});
}

void FaultPlan::fail_link(net::NodeId u, net::NodeId v, double at,
                          double until) {
  assert(at < until && "fault window must have positive length");
  windows_.push_back({true, u, v, at, until});
}

FaultPlan FaultPlan::random_node_faults(net::NodeId num_nodes, int count,
                                        std::uint64_t seed) {
  assert(count >= 0 && static_cast<net::NodeId>(count) <= num_nodes);
  FaultPlan plan;
  Xoshiro256 rng(seed);
  std::unordered_set<net::NodeId> chosen;
  while (chosen.size() < static_cast<std::size_t>(count)) {
    const net::NodeId u = rng.below(num_nodes);
    if (chosen.insert(u).second) plan.fail_node(u);
  }
  return plan;
}

FaultPlan FaultPlan::bernoulli_node_faults(net::NodeId num_nodes, double p,
                                           std::uint64_t seed) {
  FaultPlan plan;
  Xoshiro256 rng(seed);
  for (net::NodeId u = 0; u < num_nodes; ++u) {
    if (rng.uniform() < p) plan.fail_node(u);
  }
  return plan;
}

FaultPlan FaultPlan::random_link_faults(const net::Topology& topo, int count,
                                        std::uint64_t seed) {
  FaultPlan plan;
  Xoshiro256 rng(seed);
  std::set<std::pair<net::NodeId, net::NodeId>> seen;
  std::vector<net::TopoArc> arcs;
  // Rejection sampling over (node, arc) with a bounded attempt budget so
  // degenerate graphs (few links) cannot loop forever.
  for (std::uint64_t attempt = 0;
       attempt < std::uint64_t{64} * static_cast<std::uint64_t>(count) + 64 &&
       plan.size() < static_cast<std::size_t>(count);
       ++attempt) {
    const net::NodeId u = rng.below(topo.num_nodes());
    topo.neighbors(u, arcs);
    if (arcs.empty()) continue;
    const net::NodeId v = arcs[rng.below(arcs.size())].to;
    const net::NodeId lo = std::min(u, v), hi = std::max(u, v);
    if (seen.emplace(lo, hi).second) plan.fail_link(lo, hi);
  }
  return plan;
}

FaultPlan FaultPlan::random_transient_node_faults(net::NodeId num_nodes,
                                                  int count, double horizon,
                                                  double mean_downtime,
                                                  std::uint64_t seed) {
  assert(horizon > 0.0 && mean_downtime > 0.0);
  FaultPlan plan;
  Xoshiro256 rng(seed);
  for (int i = 0; i < count; ++i) {
    const net::NodeId u = rng.below(num_nodes);
    const double at = rng.uniform() * horizon;
    const double down = rng.exponential(1.0 / mean_downtime);
    plan.fail_node(u, at, at + down);
  }
  return plan;
}

net::FaultSet FaultPlan::snapshot(double time) const {
  net::FaultSet set;
  for (const FaultWindow& w : windows_) {
    if (w.fail_time <= time && time < w.repair_time) {
      w.link ? set.fail_link(w.a, w.b) : set.fail_node(w.a);
    }
  }
  return set;
}

// ---------------------------------------------------------------------------
// FaultState

FaultState::FaultState(const FaultPlan& plan) {
  edits_.reserve(2 * plan.windows().size());
  for (const FaultWindow& w : plan.windows()) {
    edits_.push_back({w.fail_time, true, w.link, w.a, w.b});
    if (w.repair_time != kNeverRepaired) {
      edits_.push_back({w.repair_time, false, w.link, w.a, w.b});
    }
  }
  std::sort(edits_.begin(), edits_.end(), [](const Edit& x, const Edit& y) {
    if (x.time != y.time) return x.time < y.time;
    if (x.a != y.a) return x.a < y.a;
    if (x.b != y.b) return x.b < y.b;
    if (x.link != y.link) return x.link < y.link;
    return x.fail < y.fail;
  });
}

void FaultState::advance_to(double time) {
  const bool applied = next_ < edits_.size() && edits_[next_].time <= time;
  while (next_ < edits_.size() && edits_[next_].time <= time) {
    const Edit& e = edits_[next_++];
    if (e.link) {
      e.fail ? set_.fail_link(e.a, e.b) : set_.repair_link(e.a, e.b);
    } else {
      e.fail ? set_.fail_node(e.a) : set_.repair_node(e.a);
    }
  }
  // Only audit when the set actually changed; advance_to runs before every
  // packet event, and the audit is linear in the number of live faults.
  if (applied) IPG_AUDIT(set_.consistent());
}

// ---------------------------------------------------------------------------
// Bounded BFS fallbacks

namespace {

/// Deterministic bounded BFS over an (already fault-masked) topology view;
/// fills `out` with the arc sequence src -> dst. False when dst is not
/// reached within `budget` discovered nodes. Hash-based visited set: the
/// implicit topologies this serves are too large for dense arrays.
bool bounded_bfs_arcs(const net::Topology& topo, net::NodeId src,
                      net::NodeId dst, std::uint64_t budget,
                      std::vector<net::TopoArc>& out) {
  out.clear();
  if (src == dst) return true;
  struct Parent {
    net::NodeId from;
    EdgeTag tag;
  };
  std::unordered_map<net::NodeId, Parent> parent;
  std::vector<net::NodeId> queue;
  parent.emplace(src, Parent{src, kNoTag});
  queue.push_back(src);
  std::vector<net::TopoArc> arcs;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const net::NodeId u = queue[head];
    topo.neighbors(u, arcs);  // sorted by (to, tag): deterministic order
    for (const net::TopoArc& a : arcs) {
      if (!parent.emplace(a.to, Parent{u, a.tag}).second) continue;
      if (a.to == dst) {
        for (net::NodeId cur = dst; cur != src;) {
          const Parent& p = parent.at(cur);
          out.push_back({cur, p.tag});
          cur = p.from;
        }
        std::reverse(out.begin(), out.end());
        return true;
      }
      if (parent.size() >= budget) return false;
      queue.push_back(a.to);
    }
  }
  return false;
}

/// Dense-array variant for the materialized table policy (instances are
/// capped at a few thousand nodes there); fills `out` with the node path
/// after src. Skips arcs that `faults` masks.
bool bounded_bfs_nodes(const Graph& g, const net::FaultSet& faults, Node src,
                       Node dst, std::uint64_t budget,
                       std::vector<Node>& out) {
  out.clear();
  if (src == dst) return true;
  if (!faults.node_up(src)) return false;
  std::vector<Node> parent(g.num_nodes(), kUnreachable);
  std::vector<Node> queue;
  parent[src] = src;
  queue.push_back(src);
  std::uint64_t discovered = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Node u = queue[head];
    for (const Node v : g.neighbors(u)) {  // sorted: deterministic
      if (parent[v] != kUnreachable) continue;
      if (!faults.node_up(v) || !faults.link_up(u, v)) continue;
      parent[v] = u;
      if (v == dst) {
        for (Node cur = dst; cur != src; cur = parent[cur]) out.push_back(cur);
        std::reverse(out.begin(), out.end());
        return true;
      }
      if (++discovered >= budget) return false;
      queue.push_back(v);
    }
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Fault-aware simulation

FaultSimResult simulate_with_faults(const SimNetwork& net,
                                    std::span<const Packet> packets,
                                    const FaultPlan& plan, MessageModel model,
                                    AdaptiveOptions opts) {
  assert(model.flits >= 1);
  for ([[maybe_unused]] const FaultWindow& w : plan.windows()) {
    IPG_CONTRACT(w.fail_time <= w.repair_time);
  }
  FaultSimResult result;
  result.injected = packets.size();

  const bool label_routed = net.policy() == RoutingPolicy::kLabelRoute;

  struct Flight {
    int hops = 0;
    int off_hops = 0;
    std::uint32_t planned = 0;  ///< fault-free route length, set at injection
    std::vector<int> gens;      ///< label policy: current source route
    std::vector<Node> path;     ///< table policy: BFS detour path
    std::size_t pos = 0;        ///< next unconsumed entry of gens/path
    int detours = 0;
    int bfs_tries = 0;
  };
  std::vector<Flight> flight(packets.size());
  detail::LinkState link_free(net.policy(), net.num_links());

  FaultState faults(plan);
  const net::FaultSet& fs = faults.faults();
  // Fault-masked adjacency view for the label policy's BFS fallback; reads
  // `fs` through a reference, so it always reflects the current instant.
  std::optional<net::FaultyTopology> faulty_view;
  if (label_routed) faulty_view.emplace(net.topology(), fs);

  EventQueue queue;
  for (std::uint32_t i = 0; i < packets.size(); ++i) {
    queue.push(Event{packets[i].inject_time, i, packets[i].src});
  }

  std::vector<net::TopoArc> arc_path;
  const auto drop = [&result](Flight& f) {
    result.dropped++;
    std::vector<int>().swap(f.gens);
    std::vector<Node>().swap(f.path);
  };

  while (!queue.empty()) {
    const Event e = queue.pop();
    faults.advance_to(e.time);
    const Packet& p = packets[e.packet];
    Flight& f = flight[e.packet];

    // A packet standing on (or arriving at) a dead node is lost.
    if (!fs.node_up(e.node)) {
      drop(f);
      continue;
    }
    if (e.node == p.dst) {
      result.latency.record(e.time - p.inject_time, f.hops, f.off_hops);
      result.delivered++;
      result.makespan = std::max(result.makespan, e.time);
      result.planned_hop_sum += f.planned;
      result.actual_hop_sum += static_cast<std::uint64_t>(f.hops);
      std::vector<int>().swap(f.gens);
      std::vector<Node>().swap(f.path);
      continue;
    }

    // Injection: derive the fault-free source route / planned hop count.
    if (f.hops == 0 && f.gens.empty() && f.path.empty() && f.pos == 0) {
      if (label_routed) {
        f.gens = net.route_gens(p.src, p.dst);
        // Delivery happens on first arrival at dst, so a sorting route
        // that passes through dst early effectively ends there; trim the
        // dead tail so `planned` is the walk the simulator actually takes.
        Node cur = p.src;
        for (std::size_t i = 0; i < f.gens.size(); ++i) {
          cur = net.hop_via(cur, f.gens[i]).to;
          if (cur == p.dst) {
            f.gens.resize(i + 1);
            break;
          }
        }
        f.planned = static_cast<std::uint32_t>(f.gens.size());
      } else {
        for (Node cur = p.src; cur != p.dst;) {
          const Node nh = net.next_hop(cur, p.dst);
          if (nh == kUnreachable) {
            f.planned = 0;
            break;
          }
          cur = nh;
          f.planned++;
        }
      }
    }

    SimNetwork::Hop h;
    bool have_hop = false;
    if (label_routed) {
      assert(f.pos < f.gens.size());
      auto step = net.adaptive_step(e.node, p.dst, f.gens[f.pos], fs);
      if (step && !step->detoured) {
        h = step->hop;
        f.pos++;
        have_hop = true;
      } else if (step && f.detours < opts.max_reroutes) {
        // Alternative-generator detour: take the live arc, follow the
        // route re-derived from its target.
        h = step->hop;
        f.gens = std::move(step->fresh_gens);
        f.pos = 0;
        f.detours++;
        result.detours++;
        have_hop = true;
      } else if (f.bfs_tries < opts.max_reroutes &&
                 bounded_bfs_arcs(*faulty_view, e.node, p.dst,
                                  opts.bfs_node_budget, arc_path)) {
        // Detour budget exhausted (or no live arc improves): route around
        // the faults explicitly. The arc tags are generator indices, so
        // the path slots straight into the source-route machinery.
        f.bfs_tries++;
        result.bfs_fallbacks++;
        f.gens.clear();
        for (const net::TopoArc& a : arc_path) f.gens.push_back(a.tag);
        h = net.hop_via(e.node, f.gens[0]);
        f.pos = 1;
        have_hop = true;
      } else {
        if (f.bfs_tries < opts.max_reroutes) f.bfs_tries++;
      }
    } else {
      const Node planned_v = f.pos < f.path.size()
                                 ? f.path[f.pos]
                                 : net.next_hop(e.node, p.dst);
      if (planned_v != kUnreachable && fs.arc_up(e.node, planned_v)) {
        h = net.hop_to(e.node, planned_v);
        if (f.pos < f.path.size()) f.pos++;
        have_hop = true;
      } else if (f.bfs_tries < opts.max_reroutes &&
                 bounded_bfs_nodes(net.graph(), fs, e.node, p.dst,
                                   opts.bfs_node_budget, f.path)) {
        // Tables are fault-oblivious; the detour is a shortest path over
        // the surviving subgraph, followed explicitly.
        f.bfs_tries++;
        result.bfs_fallbacks++;
        h = net.hop_to(e.node, f.path[0]);
        f.pos = 1;
        have_hop = true;
      } else {
        if (f.bfs_tries < opts.max_reroutes) f.bfs_tries++;
      }
    }
    if (!have_hop) {  // isolated, unreachable, or out of budget
      drop(f);
      continue;
    }

    double& free_at = link_free[h.link];
    const double start = std::max(e.time, free_at);
    const double full = start + h.service_time * model.flits;
    free_at = full;  // the link carries every flit either way
    const bool header_only =
        model.mode == SwitchingMode::kCutThrough && h.to != p.dst;
    const double arrive = header_only ? start + h.service_time : full;
    f.hops++;
    if (h.off_module) f.off_hops++;
    queue.push(Event{arrive, e.packet, h.to});
  }
  return result;
}

}  // namespace ipg::sim
