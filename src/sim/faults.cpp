#include "sim/faults.hpp"

#include <algorithm>
#include <cassert>
#include <optional>
#include <set>
#include <unordered_set>
#include <utility>
#include <vector>

#include "ipg/static_check.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault_step.hpp"
#include "sim/link_state.hpp"
#include "util/prng.hpp"

namespace ipg::sim {

// ---------------------------------------------------------------------------
// FaultPlan

void FaultPlan::fail_node(net::NodeId u, double at, double until) {
  assert(at < until && "fault window must have positive length");
  windows_.push_back({false, u, net::kInvalidNodeId, at, until});
}

void FaultPlan::fail_link(net::NodeId u, net::NodeId v, double at,
                          double until) {
  assert(at < until && "fault window must have positive length");
  windows_.push_back({true, u, v, at, until});
}

FaultPlan FaultPlan::random_node_faults(net::NodeId num_nodes, int count,
                                        std::uint64_t seed) {
  assert(count >= 0 && static_cast<net::NodeId>(count) <= num_nodes);
  FaultPlan plan;
  Xoshiro256 rng(seed);
  std::unordered_set<net::NodeId> chosen;
  while (chosen.size() < static_cast<std::size_t>(count)) {
    const net::NodeId u = rng.below(num_nodes);
    if (chosen.insert(u).second) plan.fail_node(u);
  }
  return plan;
}

FaultPlan FaultPlan::bernoulli_node_faults(net::NodeId num_nodes, double p,
                                           std::uint64_t seed) {
  FaultPlan plan;
  Xoshiro256 rng(seed);
  for (net::NodeId u = 0; u < num_nodes; ++u) {
    if (rng.uniform() < p) plan.fail_node(u);
  }
  return plan;
}

FaultPlan FaultPlan::random_link_faults(const net::Topology& topo, int count,
                                        std::uint64_t seed) {
  FaultPlan plan;
  Xoshiro256 rng(seed);
  std::set<std::pair<net::NodeId, net::NodeId>> seen;
  std::vector<net::TopoArc> arcs;
  // Rejection sampling over (node, arc) with a bounded attempt budget so
  // degenerate graphs (few links) cannot loop forever.
  for (std::uint64_t attempt = 0;
       attempt < std::uint64_t{64} * static_cast<std::uint64_t>(count) + 64 &&
       plan.size() < static_cast<std::size_t>(count);
       ++attempt) {
    const net::NodeId u = rng.below(topo.num_nodes());
    topo.neighbors(u, arcs);
    if (arcs.empty()) continue;
    const net::NodeId v = arcs[rng.below(arcs.size())].to;
    const net::NodeId lo = std::min(u, v), hi = std::max(u, v);
    if (seen.emplace(lo, hi).second) plan.fail_link(lo, hi);
  }
  return plan;
}

FaultPlan FaultPlan::random_transient_node_faults(net::NodeId num_nodes,
                                                  int count, double horizon,
                                                  double mean_downtime,
                                                  std::uint64_t seed) {
  assert(horizon > 0.0 && mean_downtime > 0.0);
  FaultPlan plan;
  Xoshiro256 rng(seed);
  for (int i = 0; i < count; ++i) {
    const net::NodeId u = rng.below(num_nodes);
    const double at = rng.uniform() * horizon;
    const double down = rng.exponential(1.0 / mean_downtime);
    plan.fail_node(u, at, at + down);
  }
  return plan;
}

net::FaultSet FaultPlan::snapshot(double time) const {
  net::FaultSet set;
  for (const FaultWindow& w : windows_) {
    if (w.fail_time <= time && time < w.repair_time) {
      w.link ? set.fail_link(w.a, w.b) : set.fail_node(w.a);
    }
  }
  return set;
}

// ---------------------------------------------------------------------------
// FaultState

FaultState::FaultState(const FaultPlan& plan) {
  edits_.reserve(2 * plan.windows().size());
  for (const FaultWindow& w : plan.windows()) {
    edits_.push_back({w.fail_time, true, w.link, w.a, w.b});
    if (w.repair_time != kNeverRepaired) {
      edits_.push_back({w.repair_time, false, w.link, w.a, w.b});
    }
  }
  std::sort(edits_.begin(), edits_.end(), [](const Edit& x, const Edit& y) {
    if (x.time != y.time) return x.time < y.time;
    if (x.a != y.a) return x.a < y.a;
    if (x.b != y.b) return x.b < y.b;
    if (x.link != y.link) return x.link < y.link;
    return x.fail < y.fail;
  });
}

void FaultState::advance_to(double time) {
  const bool applied = next_ < edits_.size() && edits_[next_].time <= time;
  while (next_ < edits_.size() && edits_[next_].time <= time) {
    const Edit& e = edits_[next_++];
    if (e.link) {
      e.fail ? set_.fail_link(e.a, e.b) : set_.repair_link(e.a, e.b);
    } else {
      e.fail ? set_.fail_node(e.a) : set_.repair_node(e.a);
    }
  }
  // Only audit when the set actually changed; advance_to runs before every
  // packet event, and the audit is linear in the number of live faults.
  if (applied) IPG_AUDIT(set_.consistent());
}

// ---------------------------------------------------------------------------
// Fault-aware simulation

FaultSimResult simulate_with_faults(const SimNetwork& net,
                                    std::span<const Packet> packets,
                                    const FaultPlan& plan, MessageModel model,
                                    AdaptiveOptions opts) {
  assert(model.flits >= 1);
  for ([[maybe_unused]] const FaultWindow& w : plan.windows()) {
    IPG_CONTRACT(w.fail_time <= w.repair_time);
  }
  FaultSimResult result;
  result.injected = packets.size();

  const bool label_routed = net.policy() != RoutingPolicy::kPrecomputedTable;

  std::vector<detail::Flight> flight(packets.size());
  detail::LinkState link_free(net.policy(), net.num_links());

  FaultState faults(plan);
  const net::FaultSet& fs = faults.faults();
  // Fault-masked adjacency view for the label policy's BFS fallback; reads
  // `fs` through a reference, so it always reflects the current instant.
  std::optional<net::FaultyTopology> faulty_view;
  if (label_routed) faulty_view.emplace(net.topology(), fs);

  EventQueue queue;
  for (std::uint32_t i = 0; i < packets.size(); ++i) {
    queue.push(Event{packets[i].inject_time, i, packets[i].src});
  }

  detail::FaultStepScratch scratch;
  while (!queue.empty()) {
    const Event e = queue.pop();
    faults.advance_to(e.time);
    const Packet& p = packets[e.packet];
    detail::Flight& f = flight[e.packet];

    const detail::StepResult r = detail::fault_step(
        net, opts, fs, faulty_view ? &*faulty_view : nullptr, p, e, f,
        scratch);
    switch (r.outcome) {
      case detail::StepOutcome::kDropped:
        result.dropped++;
        break;
      case detail::StepOutcome::kDelivered:
        result.latency.record(e.time - p.inject_time, f.hops, f.off_hops);
        result.delivered++;
        result.makespan = std::max(result.makespan, e.time);
        result.planned_hop_sum += f.planned;
        result.actual_hop_sum += static_cast<std::uint64_t>(f.hops);
        break;
      case detail::StepOutcome::kForwarded: {
        if (r.detoured) result.detours++;
        if (r.bfs_rerouted) result.bfs_fallbacks++;
        double& free_at = link_free[r.hop.link];
        const double start = std::max(e.time, free_at);
        const double full = start + r.hop.service_time * model.flits;
        free_at = full;  // the link carries every flit either way
        const bool header_only =
            model.mode == SwitchingMode::kCutThrough && r.hop.to != p.dst;
        const double arrive = header_only ? start + r.hop.service_time : full;
        f.hops++;
        if (r.hop.off_module) f.off_hops++;
        queue.push(Event{arrive, e.packet, r.hop.to});
        break;
      }
    }
  }
  return result;
}

}  // namespace ipg::sim
