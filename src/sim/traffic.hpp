#pragma once
// Synthetic workloads for the simulator. The paper's Section 5 arguments
// assume "a random routing problem with uniformly distributed sources and
// destinations"; UniformTraffic reproduces exactly that with Poisson
// arrivals.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/prng.hpp"

namespace ipg::sim {

struct Packet {
  Node src = 0;
  Node dst = 0;
  double inject_time = 0.0;
};

/// Uniform random pairs (dst != src), Poisson process with aggregate rate
/// `packets_per_time` over the horizon [0, horizon).
std::vector<Packet> uniform_traffic(Node num_nodes, double packets_per_time,
                                    double horizon, std::uint64_t seed);

/// A single-source burst: `count` packets from src to uniform destinations
/// at time 0 (used to stress one module's off-chip links).
std::vector<Packet> burst_traffic(Node num_nodes, Node src, int count,
                                  std::uint64_t seed);

/// All-to-all personalized exchange: one packet from every node to every
/// other node, all injected at time 0 — the total-exchange workload whose
/// makespan exposes the bandwidth bottleneck (Section 5.2: throughput is
/// inversely proportional to average I-distance when off-module links
/// saturate).
std::vector<Packet> all_to_all_traffic(Node num_nodes);

}  // namespace ipg::sim
