#pragma once
// Deterministic link-load profile: how many (src, dst) pairs of a uniform
// all-pairs workload traverse each arc under the simulator's shortest-path
// next-hop routing.
//
// Section 5.2 conditions its throughput claim on off-module links being
// "uniformly utilized"; this module measures that premise — and the
// saturation bottleneck — without running the event simulation.

#include <cstdint>
#include <vector>

#include "sim/network.hpp"

namespace ipg::sim {

struct LinkLoadStats {
  std::vector<std::uint32_t> load;  ///< per arc (CSR order), pair count
  std::uint32_t max_on_module = 0;
  std::uint32_t max_off_module = 0;
  double avg_on_module = 0.0;   ///< over on-module arcs
  double avg_off_module = 0.0;  ///< over off-module arcs
  std::uint64_t total_hops = 0; ///< = sum of pair distances

  /// Off-module utilization imbalance: max / avg (1.0 = perfectly uniform).
  double off_module_imbalance() const {
    return avg_off_module > 0.0 ? max_off_module / avg_off_module : 0.0;
  }
};

/// Walks the next-hop route of every ordered (src, dst) pair and counts
/// traversals per arc. O(N^2 * diameter); meant for the simulator-scale
/// instances (N up to a few thousand).
LinkLoadStats all_pairs_link_loads(const SimNetwork& net);

/// Saturation bound on the per-node injection rate under uniform traffic:
/// the busiest arc receives lambda * N * max_load / (N * (N-1)) packets
/// per unit time and serves one per `bottleneck_service`, so the network
/// is stable only below (N-1) / (max_load * bottleneck_service). This is
/// the quantitative form of Section 5.2's "maximum throughput ...
/// inversely proportional to average inter-cluster distance" (max_load
/// scales with total hop demand / link count).
double saturation_injection_bound(const LinkLoadStats& loads, Node num_nodes,
                                  double bottleneck_service);

}  // namespace ipg::sim
