#include "sim/fault_step.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <vector>

namespace ipg::sim::detail {

namespace {

/// Deterministic bounded BFS over an (already fault-masked) topology view;
/// fills `out` with the arc sequence src -> dst. False when dst is not
/// reached within `budget` discovered nodes. Hash-based visited set: the
/// implicit topologies this serves are too large for dense arrays.
bool bounded_bfs_arcs(const net::Topology& topo, net::NodeId src,
                      net::NodeId dst, std::uint64_t budget,
                      std::vector<net::TopoArc>& out) {
  out.clear();
  if (src == dst) return true;
  struct Parent {
    net::NodeId from;
    EdgeTag tag;
  };
  std::unordered_map<net::NodeId, Parent> parent;
  std::vector<net::NodeId> queue;
  parent.emplace(src, Parent{src, kNoTag});
  queue.push_back(src);
  std::vector<net::TopoArc> arcs;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const net::NodeId u = queue[head];
    topo.neighbors(u, arcs);  // sorted by (to, tag): deterministic order
    for (const net::TopoArc& a : arcs) {
      if (!parent.emplace(a.to, Parent{u, a.tag}).second) continue;
      if (a.to == dst) {
        for (net::NodeId cur = dst; cur != src;) {
          const Parent& p = parent.at(cur);
          out.push_back({cur, p.tag});
          cur = p.from;
        }
        std::reverse(out.begin(), out.end());
        return true;
      }
      if (parent.size() >= budget) return false;
      queue.push_back(a.to);
    }
  }
  return false;
}

/// Dense-array variant for the materialized table policy (instances are
/// capped at a few thousand nodes there); fills `out` with the node path
/// after src. Skips arcs that `faults` masks.
bool bounded_bfs_nodes(const Graph& g, const net::FaultSet& faults, Node src,
                       Node dst, std::uint64_t budget,
                       std::vector<Node>& out) {
  out.clear();
  if (src == dst) return true;
  if (!faults.node_up(src)) return false;
  std::vector<Node> parent(g.num_nodes(), kUnreachable);
  std::vector<Node> queue;
  parent[src] = src;
  queue.push_back(src);
  std::uint64_t discovered = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Node u = queue[head];
    for (const Node v : g.neighbors(u)) {  // sorted: deterministic
      if (parent[v] != kUnreachable) continue;
      if (!faults.node_up(v) || !faults.link_up(u, v)) continue;
      parent[v] = u;
      if (v == dst) {
        for (Node cur = dst; cur != src; cur = parent[cur]) out.push_back(cur);
        std::reverse(out.begin(), out.end());
        return true;
      }
      if (++discovered >= budget) return false;
      queue.push_back(v);
    }
  }
  return false;
}

/// Releases the Flight's route storage (capacity included — flights
/// outlive their packets for the duration of the run).
void release_routes(Flight& f) {
  std::vector<int>().swap(f.gens);
  std::vector<Node>().swap(f.path);
}

}  // namespace

StepResult fault_step(const SimNetwork& net, const AdaptiveOptions& opts,
                      const net::FaultSet& fs,
                      const net::Topology* faulty_view, const Packet& p,
                      const Event& e, Flight& f, FaultStepScratch& scratch) {
  const bool label_routed = net.policy() != RoutingPolicy::kPrecomputedTable;
  StepResult r;  // defaults to kDropped

  // A packet standing on (or arriving at) a dead node is lost.
  if (!fs.node_up(e.node)) {
    release_routes(f);
    return r;
  }
  if (e.node == p.dst) {
    release_routes(f);
    r.outcome = StepOutcome::kDelivered;
    return r;
  }

  // Injection: derive the fault-free source route / planned hop count.
  if (f.hops == 0 && f.gens.empty() && f.path.empty() && f.pos == 0) {
    if (label_routed) {
      f.gens = net.route_gens(p.src, p.dst);
      // Delivery happens on first arrival at dst, so a sorting route
      // that passes through dst early effectively ends there; trim the
      // dead tail so `planned` is the walk the simulator actually takes.
      Node cur = p.src;
      for (std::size_t i = 0; i < f.gens.size(); ++i) {
        cur = net.hop_via(cur, f.gens[i]).to;
        if (cur == p.dst) {
          f.gens.resize(i + 1);
          break;
        }
      }
      f.planned = static_cast<std::uint32_t>(f.gens.size());
    } else {
      for (Node cur = p.src; cur != p.dst;) {
        const Node nh = net.next_hop(cur, p.dst);
        if (nh == kUnreachable) {
          f.planned = 0;
          break;
        }
        cur = nh;
        f.planned++;
      }
    }
  }

  SimNetwork::Hop h;
  bool have_hop = false;
  if (label_routed) {
    assert(f.pos < f.gens.size());
    if (net.policy() == RoutingPolicy::kDisjoint) {
      const SimNetwork::Hop planned = net.hop_via(e.node, f.gens[f.pos]);
      if (fs.arc_up(e.node, planned.to)) {
        h = planned;
        f.pos++;
        have_hop = true;
      } else if (f.detours < opts.max_reroutes) {
        // Multipath failover: re-select among the k disjoint paths from
        // here. While faults stay below kappa, at least one of them is
        // fully alive (each faulty node kills at most one path), so the
        // selected route runs fault-free to dst and the BFS fallback
        // below never fires in that window.
        SimNetwork::DisjointSelection sel =
            net.disjoint_route(e.node, p.dst, fs);
        if (sel.found) {
          f.gens = std::move(sel.gens);
          h = net.hop_via(e.node, f.gens[0]);
          f.pos = 1;
          f.detours++;
          r.detoured = true;
          have_hop = true;
        }
      }
    } else {
      auto step = net.adaptive_step(e.node, p.dst, f.gens[f.pos], fs);
      if (step && !step->detoured) {
        h = step->hop;
        f.pos++;
        have_hop = true;
      } else if (step && f.detours < opts.max_reroutes) {
        // Alternative-generator detour: take the live arc, follow the
        // route re-derived from its target.
        h = step->hop;
        f.gens = std::move(step->fresh_gens);
        f.pos = 0;
        f.detours++;
        r.detoured = true;
        have_hop = true;
      }
    }
    if (!have_hop) {
      if (f.bfs_tries < opts.max_reroutes &&
          bounded_bfs_arcs(*faulty_view, e.node, p.dst, opts.bfs_node_budget,
                           scratch.arc_path)) {
        // Detour budget exhausted (or no live alternative): route around
        // the faults explicitly. The arc tags are generator indices, so
        // the path slots straight into the source-route machinery.
        f.bfs_tries++;
        r.bfs_rerouted = true;
        f.gens.clear();
        for (const net::TopoArc& a : scratch.arc_path) f.gens.push_back(a.tag);
        h = net.hop_via(e.node, f.gens[0]);
        f.pos = 1;
        have_hop = true;
      } else if (f.bfs_tries < opts.max_reroutes) {
        f.bfs_tries++;
      }
    }
  } else {
    const Node planned_v = f.pos < f.path.size()
                               ? f.path[f.pos]
                               : net.next_hop(e.node, p.dst);
    if (planned_v != kUnreachable && fs.arc_up(e.node, planned_v)) {
      h = net.hop_to(e.node, planned_v);
      if (f.pos < f.path.size()) f.pos++;
      have_hop = true;
    } else if (f.bfs_tries < opts.max_reroutes &&
               bounded_bfs_nodes(net.graph(), fs, e.node, p.dst,
                                 opts.bfs_node_budget, f.path)) {
      // Tables are fault-oblivious; the detour is a shortest path over
      // the surviving subgraph, followed explicitly.
      f.bfs_tries++;
      r.bfs_rerouted = true;
      h = net.hop_to(e.node, f.path[0]);
      f.pos = 1;
      have_hop = true;
    } else {
      if (f.bfs_tries < opts.max_reroutes) f.bfs_tries++;
    }
  }
  if (!have_hop) {  // isolated, unreachable, or out of budget
    release_routes(f);
    return r;
  }
  r.outcome = StepOutcome::kForwarded;
  r.hop = h;
  return r;
}

}  // namespace ipg::sim::detail
