#include "sim/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ipg::sim {

void LatencyStats::record(double latency, int hops, int off_module_hops) {
  samples_.push_back(latency);
  hop_sum_ += static_cast<std::uint64_t>(hops);
  off_hop_sum_ += static_cast<std::uint64_t>(off_module_hops);
}

double LatencyStats::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double LatencyStats::max() const {
  double m = 0.0;
  for (const double s : samples_) m = std::max(m, s);
  return m;
}

double LatencyStats::percentile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t idx = static_cast<std::size_t>(
      std::min<double>(std::floor(q * static_cast<double>(sorted.size())),
                       static_cast<double>(sorted.size() - 1)));
  return sorted[idx];
}

double LatencyStats::mean_hops() const {
  return samples_.empty() ? 0.0
                          : static_cast<double>(hop_sum_) /
                                static_cast<double>(samples_.size());
}

double LatencyStats::mean_off_module_hops() const {
  return samples_.empty() ? 0.0
                          : static_cast<double>(off_hop_sum_) /
                                static_cast<double>(samples_.size());
}

}  // namespace ipg::sim
