#pragma once
// Fault injection for the packet simulator.
//
// A FaultPlan is a deterministic, seed-driven schedule of node and link
// failures: permanent (fail at t, never repaired) or transient (a
// [fail_time, repair_time) window). FaultState replays the plan's timeline
// in simulated-time order, mutating one net::FaultSet in place; the
// fault-aware simulator advances it before each packet event, so fail and
// repair events interleave with the packet calendar deterministically.
//
// simulate_with_faults() is the adaptive counterpart of simulate(): when a
// packet's planned hop is down it detours via an alternative generator
// (vertex symmetry: every live neighbor admits a fresh Theorem 4.1/4.3
// route, so the detour picks the live neighbor whose re-derived route is
// shortest) and, when the per-packet detour budget runs out, falls back to
// a bounded BFS over the surviving subnetwork. With an EMPTY plan the
// result is bit-identical to simulate() under both routing policies
// (tested); with up to connectivity-1 node faults every surviving pair is
// still delivered (the fault property tests exercise exactly this).

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "net/faulty_topology.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace ipg::sim {

/// Repair time of a permanent fault.
inline constexpr double kNeverRepaired =
    std::numeric_limits<double>::infinity();

/// One failure window: the element is down for times in
/// [fail_time, repair_time).
struct FaultWindow {
  bool link = false;                   ///< false: node `a`; true: link (a, b)
  net::NodeId a = net::kInvalidNodeId;
  net::NodeId b = net::kInvalidNodeId;  ///< second link endpoint
  double fail_time = 0.0;
  double repair_time = kNeverRepaired;
};

/// Deterministic failure schedule. All randomized constructors expand an
/// explicit seed through util/prng, so a (plan parameters, seed) pair pins
/// the exact fault pattern on every platform.
class FaultPlan {
 public:
  void fail_node(net::NodeId u, double at = 0.0,
                 double until = kNeverRepaired);
  void fail_link(net::NodeId u, net::NodeId v, double at = 0.0,
                 double until = kNeverRepaired);

  /// `count` distinct nodes of [0, num_nodes), permanently down from t = 0.
  static FaultPlan random_node_faults(net::NodeId num_nodes, int count,
                                      std::uint64_t seed);

  /// Each node independently down with probability `p` from t = 0.
  static FaultPlan bernoulli_node_faults(net::NodeId num_nodes, double p,
                                         std::uint64_t seed);

  /// `count` distinct links of `topo` (sampled among actual arcs),
  /// permanently down from t = 0.
  static FaultPlan random_link_faults(const net::Topology& topo, int count,
                                      std::uint64_t seed);

  /// `count` transient node outages: fail times uniform in [0, horizon),
  /// downtimes exponential with the given mean. Nodes may repeat; the
  /// FaultSet counts overlapping windows.
  static FaultPlan random_transient_node_faults(net::NodeId num_nodes,
                                                int count, double horizon,
                                                double mean_downtime,
                                                std::uint64_t seed);

  bool empty() const noexcept { return windows_.empty(); }
  std::size_t size() const noexcept { return windows_.size(); }
  const std::vector<FaultWindow>& windows() const noexcept { return windows_; }

  /// The fault set active at `time` (a static snapshot; use FaultState to
  /// replay the whole timeline incrementally).
  net::FaultSet snapshot(double time) const;

 private:
  std::vector<FaultWindow> windows_;
};

/// Replays a FaultPlan in nondecreasing time order. advance_to(t) applies
/// every fail/repair edit with event time <= t; the exposed FaultSet then
/// matches plan.snapshot(t). Edits at equal times commute (the FaultSet
/// counts failures), so the replay is deterministic.
class FaultState {
 public:
  explicit FaultState(const FaultPlan& plan);

  void advance_to(double time);
  const net::FaultSet& faults() const noexcept { return set_; }

 private:
  struct Edit {
    double time = 0.0;
    bool fail = true;
    bool link = false;
    net::NodeId a = net::kInvalidNodeId;
    net::NodeId b = net::kInvalidNodeId;
  };
  std::vector<Edit> edits_;  // sorted by (time, a, b, link, fail)
  std::size_t next_ = 0;
  net::FaultSet set_;
};

/// Knobs of the adaptive policy.
struct AdaptiveOptions {
  /// Detours + BFS fallbacks allowed per packet before it is dropped.
  int max_reroutes = 8;
  /// Nodes the bounded BFS fallback may visit per attempt. Generous for
  /// enumerable instances; on implicit 10^7-node topologies it caps the
  /// fallback's memory and time, trading completeness for boundedness.
  std::uint64_t bfs_node_budget = 1ull << 22;
};

/// simulate_with_faults() outcome. Latency/hop statistics cover delivered
/// packets only; planned_hop_sum is the fault-free route length of those
/// same packets, so hop_inflation() isolates the detour overhead.
struct FaultSimResult {
  LatencyStats latency;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;       ///< no live route (or budget exhausted)
  std::uint64_t detours = 0;       ///< alternative-generator reroutes taken
  std::uint64_t bfs_fallbacks = 0; ///< bounded-BFS reroutes taken
  std::uint64_t planned_hop_sum = 0;  ///< fault-free hops, delivered packets
  std::uint64_t actual_hop_sum = 0;   ///< hops walked, delivered packets
  double makespan = 0.0;           ///< time of the last delivery

  double delivery_rate() const {
    return injected ? static_cast<double>(delivered) / static_cast<double>(injected)
                    : 1.0;
  }
  /// Mean hops walked / mean fault-free hops over delivered packets
  /// (1.0 when no packet was delivered or no hop was planned).
  double hop_inflation() const {
    return planned_hop_sum ? static_cast<double>(actual_hop_sum) /
                                 static_cast<double>(planned_hop_sum)
                           : 1.0;
  }
  double throughput() const {
    return makespan > 0.0 ? static_cast<double>(delivered) / makespan : 0.0;
  }
};

/// Fault-aware simulation: simulate()'s FIFO-link model plus the FaultPlan
/// timeline and the adaptive routing policy described above. Packets whose
/// current node is down when an event fires (including injection at a dead
/// source) are dropped; in-flight hops complete even if their target dies
/// mid-transit — the packet is then dropped on arrival.
FaultSimResult simulate_with_faults(const SimNetwork& net,
                                    std::span<const Packet> packets,
                                    const FaultPlan& plan,
                                    MessageModel model = {},
                                    AdaptiveOptions opts = {});

}  // namespace ipg::sim
