#include "sim/network.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

#include "graph/bfs.hpp"
#include "graph/builder.hpp"

namespace ipg::sim {

SimNetwork::SimNetwork(const Graph& g, LinkTiming timing,
                       std::optional<Clustering> clustering)
    : graph_(&g), timing_(timing) {
  const Node n = g.num_nodes();
  if (static_cast<std::uint64_t>(n) * n > kMaxNextHopEntries) {
    throw std::length_error(
        "SimNetwork: " + std::to_string(n) + " nodes need " +
        std::to_string(static_cast<std::uint64_t>(n) * n) +
        " next-hop entries, above the 2^26 precomputed-table cap; for "
        "super-IP instances, use the label-routing policy "
        "(SimNetwork(net::ImplicitSuperIPTopology&, timing)) which needs no "
        "tables");
  }

  // Arc attributes.
  service_.resize(g.num_arcs());
  off_module_.assign(g.num_arcs(), 0);
  std::uint64_t arc = 0;
  for (Node u = 0; u < n; ++u) {
    for (const Node v : g.neighbors(u)) {
      const bool off = clustering && clustering->module_of[u] != clustering->module_of[v];
      off_module_[arc] = off ? 1 : 0;
      service_[arc] = off ? timing.off_module_time : timing.on_module_time;
      ++arc;
    }
  }

  // Distances to each destination via BFS on the reverse graph, then greedy
  // next hops.
  GraphBuilder rb(n);
  rb.reserve(g.num_arcs());
  for (Node u = 0; u < n; ++u) {
    for (const Node v : g.neighbors(u)) rb.add_arc(v, u);
  }
  const Graph reverse = std::move(rb).build();

  next_hop_.assign(static_cast<std::size_t>(n) * n, kUnreachable);
  BfsScratch scratch(n);
  for (Node dst = 0; dst < n; ++dst) {
    const auto dist = scratch.run(reverse, dst);  // dist[u] = d(u -> dst) in g
    Node* row = next_hop_.data() + static_cast<std::size_t>(dst) * n;
    for (Node u = 0; u < n; ++u) {
      if (u == dst || dist[u] == kUnreachable) continue;
      for (const Node v : g.neighbors(u)) {
        if (dist[v] + 1 == dist[u]) {
          row[u] = v;
          break;  // neighbors are sorted: deterministic smallest-id tie-break
        }
      }
      assert(row[u] != kUnreachable);
    }
  }
}

SimNetwork::SimNetwork(const net::ImplicitSuperIPTopology& topo,
                       LinkTiming timing, RoutingPolicy policy)
    : policy_(policy), topo_(&topo), timing_(timing) {
  if (policy == RoutingPolicy::kPrecomputedTable) {
    throw std::invalid_argument(
        "SimNetwork: kPrecomputedTable requires the Graph constructor; "
        "implicit topologies route by label (kLabelRoute / kDisjoint)");
  }
  route::QueryEngineOptions opts;
  opts.enable_disjoint = policy == RoutingPolicy::kDisjoint;
  engine_ = std::make_unique<route::QueryEngine>(topo, opts);
  // Packets address nodes with 32-bit ids; the rank space must fit.
  if (topo.num_nodes() >= kUnreachable) {
    throw std::length_error(
        "SimNetwork: implicit topology exceeds the 32-bit simulator node id "
        "space (" +
        std::to_string(topo.num_nodes()) + " nodes)");
  }
}

SimNetwork::Hop SimNetwork::hop(Node u, Node dst) const {
  assert(u != dst);
  assert(policy_ == RoutingPolicy::kPrecomputedTable);
  Hop h;
  h.to = next_hop(u, dst);
  if (h.to == kUnreachable) return h;
  h.link = arc_index(u, h.to);
  h.service_time = service_[h.link];
  h.off_module = off_module_[h.link] != 0;
  return h;
}

std::vector<int> SimNetwork::route_gens(Node src, Node dst) const {
  assert(policy_ != RoutingPolicy::kPrecomputedTable);
  route::RouteAnswer a =
      engine_->answer({src, dst, route::QueryKind::kFullRoute,
                       policy_ == RoutingPolicy::kDisjoint
                           ? route::RoutePolicy::kDisjoint
                           : route::RoutePolicy::kEngine});
  assert(a.status == route::AnswerStatus::kOk);
  return std::move(a.gens);
}

SimNetwork::DisjointSelection SimNetwork::disjoint_route(
    Node src, Node dst, const net::FaultSet& faults) const {
  assert(policy_ == RoutingPolicy::kDisjoint);
  DisjointSelection sel;
  const route::DisjointRouteSet set = engine_->k_disjoint_routes(src, dst);
  for (std::size_t i = 0; i < set.paths.size(); ++i) {
    const route::DisjointPath& p = set.paths[i];
    bool alive = true;
    for (std::size_t h = 0; h + 1 < p.nodes.size() && alive; ++h) {
      alive = faults.arc_up(static_cast<Node>(p.nodes[h]),
                            static_cast<Node>(p.nodes[h + 1]));
    }
    if (!alive) continue;
    sel.gens = p.gens;
    sel.found = true;
    sel.switched = i > 0;
    break;
  }
  return sel;
}

SimNetwork::Hop SimNetwork::hop_via(Node u, int gen) const {
  assert(policy_ != RoutingPolicy::kPrecomputedTable);
  Hop h;
  h.to = static_cast<Node>(topo_->neighbor_via(u, gen));
  assert(h.to != u && "route generators always move the label");
  h.link = static_cast<std::uint64_t>(u) *
               static_cast<std::uint64_t>(topo_->num_generators()) +
           static_cast<std::uint64_t>(gen);
  h.off_module = topo_->gen_is_super(gen);
  h.service_time =
      h.off_module ? timing_.off_module_time : timing_.on_module_time;
  return h;
}

SimNetwork::Hop SimNetwork::hop_to(Node u, Node v) const {
  assert(policy_ == RoutingPolicy::kPrecomputedTable);
  Hop h;
  h.to = v;
  h.link = arc_index(u, v);
  h.service_time = service_[h.link];
  h.off_module = off_module_[h.link] != 0;
  return h;
}

std::optional<SimNetwork::AdaptiveStep> SimNetwork::adaptive_step(
    Node u, Node dst, int planned_gen, const net::FaultSet& faults) const {
  if (policy_ == RoutingPolicy::kPrecomputedTable) {
    const Node v = next_hop(u, dst);
    if (v == kUnreachable || !faults.arc_up(u, v)) return std::nullopt;
    return AdaptiveStep{hop_to(u, v), false, {}};
  }
  const Hop planned = hop_via(u, planned_gen);
  if (faults.arc_up(u, planned.to)) return AdaptiveStep{planned, false, {}};

  // Planned hop is down: detour via the live arc whose re-derived route to
  // dst is shortest. Vertex symmetry guarantees every live neighbor has a
  // route; the schedule restarts there, which only costs length, never
  // correctness.
  std::vector<net::TopoArc> arcs;
  topo_->neighbors(u, arcs);
  std::optional<AdaptiveStep> best;
  std::size_t best_len = 0;
  for (const net::TopoArc& a : arcs) {  // sorted by (to, tag): deterministic
    if (!faults.arc_up(u, a.to)) continue;
    route::RouteAnswer fresh = engine_->answer(
        {a.to, dst, route::QueryKind::kFullRoute});
    assert(fresh.status == route::AnswerStatus::kOk);
    const std::size_t len = fresh.gens.size();
    if (!best || len < best_len) {
      best = AdaptiveStep{hop_via(u, a.tag), true, std::move(fresh.gens)};
      best_len = len;
    }
  }
  return best;
}

std::uint64_t SimNetwork::num_links() const noexcept {
  if (policy_ == RoutingPolicy::kPrecomputedTable) return graph_->num_arcs();
  return topo_->num_nodes() *
         static_cast<std::uint64_t>(topo_->num_generators());
}

std::uint64_t SimNetwork::arc_index(Node u, Node v) const {
  const auto nb = graph_->neighbors(u);
  // Binary search over the sorted adjacency list.
  std::size_t lo = 0, hi = nb.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (nb[mid] < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  assert(lo < nb.size() && nb[lo] == v);
  return static_cast<std::uint64_t>(nb.data() + lo - graph_->neighbors(0).data());
}

}  // namespace ipg::sim
