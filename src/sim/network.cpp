#include "sim/network.hpp"

#include <cassert>
#include <stdexcept>

#include "graph/bfs.hpp"
#include "graph/builder.hpp"

namespace ipg::sim {

SimNetwork::SimNetwork(const Graph& g, LinkTiming timing,
                       std::optional<Clustering> clustering)
    : graph_(&g) {
  const Node n = g.num_nodes();
  if (static_cast<std::uint64_t>(n) * n > (1ull << 26)) {
    throw std::length_error("SimNetwork: next-hop table would exceed 2^26 entries");
  }

  // Arc attributes.
  service_.resize(g.num_arcs());
  off_module_.assign(g.num_arcs(), 0);
  std::uint64_t arc = 0;
  for (Node u = 0; u < n; ++u) {
    for (const Node v : g.neighbors(u)) {
      const bool off = clustering && clustering->module_of[u] != clustering->module_of[v];
      off_module_[arc] = off ? 1 : 0;
      service_[arc] = off ? timing.off_module_time : timing.on_module_time;
      ++arc;
    }
  }

  // Distances to each destination via BFS on the reverse graph, then greedy
  // next hops.
  GraphBuilder rb(n);
  rb.reserve(g.num_arcs());
  for (Node u = 0; u < n; ++u) {
    for (const Node v : g.neighbors(u)) rb.add_arc(v, u);
  }
  const Graph reverse = std::move(rb).build();

  next_hop_.assign(static_cast<std::size_t>(n) * n, kUnreachable);
  BfsScratch scratch(n);
  for (Node dst = 0; dst < n; ++dst) {
    const auto dist = scratch.run(reverse, dst);  // dist[u] = d(u -> dst) in g
    Node* row = next_hop_.data() + static_cast<std::size_t>(dst) * n;
    for (Node u = 0; u < n; ++u) {
      if (u == dst || dist[u] == kUnreachable) continue;
      for (const Node v : g.neighbors(u)) {
        if (dist[v] + 1 == dist[u]) {
          row[u] = v;
          break;  // neighbors are sorted: deterministic smallest-id tie-break
        }
      }
      assert(row[u] != kUnreachable);
    }
  }
}

std::uint64_t SimNetwork::arc_index(Node u, Node v) const {
  const auto nb = graph_->neighbors(u);
  // Binary search over the sorted adjacency list.
  std::size_t lo = 0, hi = nb.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (nb[mid] < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  assert(lo < nb.size() && nb[lo] == v);
  return static_cast<std::uint64_t>(nb.data() + lo - graph_->neighbors(0).data());
}

}  // namespace ipg::sim
