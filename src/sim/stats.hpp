#pragma once
// Accumulators for simulation results.

#include <cstdint>
#include <vector>

namespace ipg::sim {

/// Streaming summary of per-packet latencies (keeps raw samples so the
/// benches can report percentiles).
class LatencyStats {
 public:
  void record(double latency, int hops, int off_module_hops);

  std::uint64_t count() const noexcept { return samples_.size(); }
  double mean() const;
  double max() const;
  /// q in [0, 1], e.g. 0.99 (sorts a copy; call once per run).
  double percentile(double q) const;
  double mean_hops() const;
  double mean_off_module_hops() const;

 private:
  std::vector<double> samples_;
  std::uint64_t hop_sum_ = 0;
  std::uint64_t off_hop_sum_ = 0;
};

}  // namespace ipg::sim
