#pragma once
// Minimal discrete-event calendar: a binary min-heap of (time, packet,
// node) events with deterministic tie-breaking so simulations are exactly
// reproducible across runs.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ipg::sim {

struct Event {
  double time = 0.0;
  std::uint32_t packet = 0;
  Node node = 0;
};

class EventQueue {
 public:
  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  void push(Event e);

  /// Removes and returns the earliest event (ties broken by packet id).
  Event pop();

  /// The earliest event without removing it (queue must be non-empty).
  /// The conservative sharded engine peeks to size its lookahead window.
  const Event& top() const noexcept { return heap_.front(); }

 private:
  static bool later(const Event& a, const Event& b) noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.packet > b.packet;
  }
  std::vector<Event> heap_;
};

}  // namespace ipg::sim
