#include "sim/event_queue.hpp"

#include <cassert>

namespace ipg::sim {

void EventQueue::push(Event e) {
  heap_.push_back(e);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!later(heap_[parent], heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

Event EventQueue::pop() {
  assert(!heap_.empty());
  const Event top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  std::size_t i = 0;
  while (true) {
    const std::size_t left = 2 * i + 1;
    const std::size_t right = 2 * i + 2;
    std::size_t smallest = i;
    if (left < heap_.size() && later(heap_[smallest], heap_[left])) smallest = left;
    if (right < heap_.size() && later(heap_[smallest], heap_[right])) smallest = right;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
  return top;
}

}  // namespace ipg::sim
