#pragma once
// Cube-connected cycles (Preparata & Vuillemin): each hypercube node
// expands into an n-cycle; a fixed-degree-3 classic cited throughout the
// paper as a Cayley-graph example.

#include "graph/graph.hpp"

namespace ipg::topo {

/// CCC(n): n * 2^n nodes, node id = cube_address * n + cycle_position.
Graph cube_connected_cycles(int n);

}  // namespace ipg::topo
