#include "topo/hypercube.hpp"

#include <cassert>
#include <vector>

#include "graph/builder.hpp"

namespace ipg::topo {

Graph hypercube(int n) {
  assert(n >= 1 && n < 31);
  const Node size = Node{1} << n;
  GraphBuilder b(size);
  b.reserve(static_cast<std::uint64_t>(size) * static_cast<std::uint64_t>(n));
  for (Node u = 0; u < size; ++u) {
    for (int d = 0; d < n; ++d) b.add_arc(u, u ^ (Node{1} << d));
  }
  return std::move(b).build();
}

Graph folded_hypercube(int n) {
  assert(n >= 2 && n < 31);
  const Node size = Node{1} << n;
  const Node mask = size - 1;
  GraphBuilder b(size);
  b.reserve(static_cast<std::uint64_t>(size) * static_cast<std::uint64_t>(n + 1));
  for (Node u = 0; u < size; ++u) {
    for (int d = 0; d < n; ++d) b.add_arc(u, u ^ (Node{1} << d));
    b.add_arc(u, u ^ mask);
  }
  return std::move(b).build();
}

Graph generalized_hypercube(std::span<const int> radices) {
  std::uint64_t size = 1;
  for (const int r : radices) {
    assert(r >= 2);
    size *= static_cast<std::uint64_t>(r);
  }
  assert(size < (1ull << 31));
  GraphBuilder b(static_cast<Node>(size));
  std::vector<Node> digit(radices.size());
  for (Node u = 0; u < size; ++u) {
    // Decode mixed-radix digits, least significant = dimension 0.
    Node rem = u;
    Node stride = 1;
    for (std::size_t d = 0; d < radices.size(); ++d) {
      const Node radix = static_cast<Node>(radices[d]);
      digit[d] = rem % radix;
      rem /= radix;
      // Connect to every other value of this digit.
      for (int v = 0; v < radices[d]; ++v) {
        if (static_cast<Node>(v) == digit[d]) continue;
        const Node w = u + (static_cast<Node>(v) - digit[d]) * stride;
        b.add_arc(u, w);
      }
      stride *= static_cast<Node>(radices[d]);
    }
  }
  return std::move(b).build();
}

}  // namespace ipg::topo
