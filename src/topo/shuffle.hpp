#pragma once
// Shuffle-exchange network (Stone; Leighton): 2^n nodes, exchange flips the
// last address bit, shuffle rotates the address. One of the super-IP-
// expressible networks listed in Section 1.

#include "graph/graph.hpp"

namespace ipg::topo {

/// Undirected SE(n): u -- u^1 (exchange), u -- rotate_left(u) (shuffle).
Graph shuffle_exchange(int n);

}  // namespace ipg::topo
