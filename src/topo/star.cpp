#include "topo/star.hpp"

#include <cassert>
#include <utility>

#include "graph/builder.hpp"
#include "topo/perm_rank.hpp"
#include "util/narrow.hpp"

namespace ipg::topo {

Graph star_graph(int n) {
  assert(n >= 2 && n <= 10);
  const std::uint64_t size = kFactorials[n];
  GraphBuilder b(static_cast<Node>(size));
  b.reserve(size * static_cast<std::uint64_t>(n - 1));
  for (std::uint64_t u = 0; u < size; ++u) {
    auto p = perm_unrank(u, n);
    for (int i = 1; i < n; ++i) {
      std::swap(p[0], p[as_size(i)]);
      b.add_arc(static_cast<Node>(u), static_cast<Node>(perm_rank(p)));
      std::swap(p[0], p[as_size(i)]);
    }
  }
  return std::move(b).build();
}

}  // namespace ipg::topo
