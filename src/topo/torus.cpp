#include "topo/torus.hpp"

#include <cassert>
#include <cstdint>
#include <vector>

#include "graph/builder.hpp"

namespace ipg::topo {

Graph kary_ncube(int k, int n) {
  assert(k >= 2 && n >= 1);
  std::uint64_t size = 1;
  for (int d = 0; d < n; ++d) size *= static_cast<std::uint64_t>(k);
  assert(size < (1ull << 31));
  GraphBuilder b(static_cast<Node>(size));
  for (Node u = 0; u < size; ++u) {
    Node rem = u;
    Node stride = 1;
    for (int d = 0; d < n; ++d) {
      const Node K = static_cast<Node>(k);
      const Node digit = rem % K;
      rem /= K;
      const Node up = u - digit * stride + ((digit + 1) % K) * stride;
      const Node down = u - digit * stride + ((digit + K - 1) % K) * stride;
      b.add_arc(u, up);
      b.add_arc(u, down);  // builder merges the duplicate when k == 2
      stride *= static_cast<Node>(k);
    }
  }
  return std::move(b).build();
}

Graph torus2d(int rows, int cols) {
  assert(rows >= 2 && cols >= 2);
  const Node size = static_cast<Node>(rows) * static_cast<Node>(cols);
  GraphBuilder b(size);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const Node C = static_cast<Node>(cols);
      const Node u = static_cast<Node>(r) * C + static_cast<Node>(c);
      b.add_arc(u, static_cast<Node>(r) * C + static_cast<Node>((c + 1) % cols));
      b.add_arc(u,
                static_cast<Node>(r) * C + static_cast<Node>((c + cols - 1) % cols));
      b.add_arc(u, static_cast<Node>((r + 1) % rows) * C + static_cast<Node>(c));
      b.add_arc(u,
                static_cast<Node>((r + rows - 1) % rows) * C + static_cast<Node>(c));
    }
  }
  return std::move(b).build();
}

Graph mesh2d(int rows, int cols) {
  assert(rows >= 1 && cols >= 1);
  const Node size = static_cast<Node>(rows) * static_cast<Node>(cols);
  GraphBuilder b(size);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const Node u =
          static_cast<Node>(r) * static_cast<Node>(cols) + static_cast<Node>(c);
      if (c + 1 < cols) b.add_edge(u, u + 1);
      if (r + 1 < rows) b.add_edge(u, u + static_cast<Node>(cols));
    }
  }
  return std::move(b).build();
}

}  // namespace ipg::topo
