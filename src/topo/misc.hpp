#pragma once
// Small fixed topologies: Petersen graph (a nucleus choice in Fig. 2),
// complete graphs, cycles and paths.

#include "graph/graph.hpp"

namespace ipg::topo {

/// The Petersen graph: 10 nodes, 3-regular, diameter 2, girth 5 — the
/// densest possible (degree 3, diameter 2) Moore graph, used by the paper
/// as a nucleus ("P" in Fig. 2; see also cyclic Petersen networks [32]).
Graph petersen();

/// Complete graph K_n.
Graph complete(int n);

/// Cycle C_n.
Graph cycle(int n);

/// Path P_n.
Graph path(int n);

}  // namespace ipg::topo
