#include "topo/shuffle.hpp"

#include <cassert>

#include "graph/builder.hpp"

namespace ipg::topo {

Graph shuffle_exchange(int n) {
  assert(n >= 2 && n < 31);
  const Node size = Node{1} << n;
  const Node mask = size - 1;
  GraphBuilder b(size);
  b.reserve(static_cast<std::uint64_t>(size) * 4);
  for (Node u = 0; u < size; ++u) {
    b.add_edge(u, u ^ 1u);                                     // exchange
    b.add_edge(u, ((u << 1) | (u >> (n - 1))) & mask);         // shuffle
  }
  return std::move(b).build();
}

}  // namespace ipg::topo
