#pragma once
// Tori and meshes (k-ary n-cubes), the low-dimensional baselines of
// Section 5's comparisons.

#include <span>

#include "graph/graph.hpp"

namespace ipg::topo {

/// k-ary n-cube: n dimensions of size k with wraparound; k = 2 degenerates
/// to the hypercube (single link per dimension, not doubled).
Graph kary_ncube(int k, int n);

/// 2-D torus with the given side lengths.
Graph torus2d(int rows, int cols);

/// 2-D mesh (no wraparound).
Graph mesh2d(int rows, int cols);

}  // namespace ipg::topo
