#pragma once
// Explicit star graph S_n (Akers, Harel & Krishnamurthy): nodes are the n!
// permutations of n symbols; generator i swaps positions 1 and i. The
// paper's flagship Cayley-graph comparator.

#include "graph/graph.hpp"

namespace ipg::topo {

/// S_n with nodes identified by lexicographic permutation rank.
Graph star_graph(int n);

}  // namespace ipg::topo
