#include "topo/ccc.hpp"

#include <cassert>

#include "graph/builder.hpp"

namespace ipg::topo {

Graph cube_connected_cycles(int n) {
  assert(n >= 3 && n < 28);
  const Node cubes = Node{1} << n;
  const Node size = cubes * static_cast<Node>(n);
  GraphBuilder b(size);
  b.reserve(static_cast<std::uint64_t>(size) * 3);
  for (Node x = 0; x < cubes; ++x) {
    for (int p = 0; p < n; ++p) {
      const Node u = x * static_cast<Node>(n) + static_cast<Node>(p);
      b.add_arc(u, x * static_cast<Node>(n) + static_cast<Node>((p + 1) % n));
      b.add_arc(u, x * static_cast<Node>(n) + static_cast<Node>((p + n - 1) % n));
      b.add_arc(u, (x ^ (Node{1} << p)) * static_cast<Node>(n) + static_cast<Node>(p));
    }
  }
  return std::move(b).build();
}

}  // namespace ipg::topo
