#pragma once
// De Bruijn graphs — "one of the densest known graphs" (Section 2), where
// the paper demonstrates an IP representation with repeated symbols.

#include "graph/graph.hpp"

namespace ipg::topo {

/// Directed de Bruijn B(d, n): d^n nodes, arcs u -> (u*d + a) mod d^n.
Graph de_bruijn_directed(int d, int n);

/// Undirected version (arcs symmetrized, loops/parallels removed).
Graph de_bruijn_undirected(int d, int n);

}  // namespace ipg::topo
