#include "topo/misc.hpp"

#include <cassert>

#include "graph/builder.hpp"

namespace ipg::topo {

Graph petersen() {
  // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -- i+5.
  GraphBuilder b(10);
  for (Node i = 0; i < 5; ++i) {
    b.add_edge(i, (i + 1) % 5);            // outer cycle
    b.add_edge(5 + i, 5 + (i + 2) % 5);    // pentagram (step 2)
    b.add_edge(i, 5 + i);                  // spoke
  }
  return std::move(b).build();
}

Graph complete(int n) {
  assert(n >= 2);
  GraphBuilder b(static_cast<Node>(n));
  for (Node u = 0; u < static_cast<Node>(n); ++u) {
    for (Node v = u + 1; v < static_cast<Node>(n); ++v) b.add_edge(u, v);
  }
  return std::move(b).build();
}

Graph cycle(int n) {
  assert(n >= 3);
  GraphBuilder b(static_cast<Node>(n));
  for (Node u = 0; u < static_cast<Node>(n); ++u) {
    b.add_edge(u, (u + 1) % static_cast<Node>(n));
  }
  return std::move(b).build();
}

Graph path(int n) {
  assert(n >= 1);
  GraphBuilder b(static_cast<Node>(n));
  for (Node u = 0; u + 1 < static_cast<Node>(n); ++u) b.add_edge(u, u + 1);
  return std::move(b).build();
}

}  // namespace ipg::topo
