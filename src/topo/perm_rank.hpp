#pragma once
// Lehmer-code ranking of permutations, shared by the explicit star and
// pancake constructions (node id <-> permutation bijection).

#include <cstdint>
#include <vector>

#include "util/narrow.hpp"

namespace ipg::topo {

inline constexpr std::uint64_t kFactorials[13] = {
    1,    1,     2,      6,       24,       120,       720,
    5040, 40320, 362880, 3628800, 39916800, 479001600};

/// Rank of a permutation of 0..n-1 in lexicographic order.
inline std::uint64_t perm_rank(const std::vector<std::uint8_t>& p) {
  const int n = static_cast<int>(p.size());
  std::uint64_t r = 0;
  for (int i = 0; i < n; ++i) {
    std::uint64_t smaller = 0;
    for (int j = i + 1; j < n; ++j) {
      if (p[as_size(j)] < p[as_size(i)]) ++smaller;
    }
    r += smaller * kFactorials[n - 1 - i];
  }
  return r;
}

/// Inverse of perm_rank.
inline std::vector<std::uint8_t> perm_unrank(std::uint64_t r, int n) {
  std::vector<std::uint8_t> pool(as_size(n));
  for (int i = 0; i < n; ++i) pool[as_size(i)] = static_cast<std::uint8_t>(i);
  std::vector<std::uint8_t> out(as_size(n));
  for (int i = 0; i < n; ++i) {
    const std::uint64_t f = kFactorials[n - 1 - i];
    const std::uint64_t idx = r / f;
    r %= f;
    out[as_size(i)] = pool[idx];
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
  }
  return out;
}

}  // namespace ipg::topo
