#pragma once
// Explicit pancake graph: permutations connected by prefix reversals.
// Included both as a comparator and because the super-flip construction of
// Section 3.4 degenerates to the pancake graph for m = 1.

#include "graph/graph.hpp"

namespace ipg::topo {

/// Pancake graph on the n! permutations (prefix reversals of length 2..n).
Graph pancake_graph(int n);

}  // namespace ipg::topo
