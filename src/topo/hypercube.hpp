#pragma once
// Explicit (bit-coded) hypercube family constructors. These are the
// baseline networks of Figures 2-5 and double as ground truth for the
// IP-graph encodings in ipg/families.hpp.

#include <span>

#include "graph/graph.hpp"

namespace ipg::topo {

/// Binary n-cube Q_n: 2^n nodes, node u adjacent to u ^ (1 << d).
Graph hypercube(int n);

/// Folded hypercube FQ_n: Q_n plus the complement link u -- ~u.
Graph folded_hypercube(int n);

/// Generalized hypercube GH(radices) (Bhuyan & Agrawal): mixed-radix
/// coordinates, complete connections along each dimension.
Graph generalized_hypercube(std::span<const int> radices);

}  // namespace ipg::topo
