#include "topo/de_bruijn.hpp"

#include <cassert>
#include <cstdint>

#include "graph/builder.hpp"

namespace ipg::topo {

namespace {

std::uint64_t ipow(int d, int n) {
  std::uint64_t v = 1;
  for (int i = 0; i < n; ++i) v *= static_cast<std::uint64_t>(d);
  return v;
}

}  // namespace

Graph de_bruijn_directed(int d, int n) {
  assert(d >= 2 && n >= 1);
  const std::uint64_t size = ipow(d, n);
  assert(size < (1ull << 31));
  GraphBuilder b(static_cast<Node>(size));
  b.reserve(size * static_cast<std::uint64_t>(d));
  for (Node u = 0; u < size; ++u) {
    for (int a = 0; a < d; ++a) {
      b.add_arc(u, static_cast<Node>(
                       (static_cast<std::uint64_t>(u) * static_cast<std::uint64_t>(d) +
                        static_cast<std::uint64_t>(a)) %
                           size));
    }
  }
  return std::move(b).build();
}

Graph de_bruijn_undirected(int d, int n) {
  assert(d >= 2 && n >= 1);
  const std::uint64_t size = ipow(d, n);
  assert(size < (1ull << 31));
  GraphBuilder b(static_cast<Node>(size));
  b.reserve(size * static_cast<std::uint64_t>(d) * 2);
  for (Node u = 0; u < size; ++u) {
    for (int a = 0; a < d; ++a) {
      b.add_edge(u, static_cast<Node>(
                        (static_cast<std::uint64_t>(u) * static_cast<std::uint64_t>(d) +
                         static_cast<std::uint64_t>(a)) %
                            size));
    }
  }
  return std::move(b).build();
}

}  // namespace ipg::topo
