#include "topo/ip_forms.hpp"

#include <cassert>
#include "util/narrow.hpp"

namespace ipg::topo {

namespace {

Label pair_seed(int n) {
  // n pairs "1 2", i.e. all bits 0.
  Label seed;
  seed.reserve(2 * static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    seed.push_back(1);
    seed.push_back(2);
  }
  return seed;
}

}  // namespace

IPGraphSpec de_bruijn_ip_spec(int n) {
  assert(n >= 2);
  const int k = 2 * n;
  IPGraphSpec out;
  out.name = "DB(2," + std::to_string(n) + ")-IP";
  out.seed = pair_seed(n);
  const Permutation shift = Permutation::rotate_left(k, 2);
  out.generators.push_back(Generator{"L", shift, false});
  out.generators.push_back(Generator{
      "L'", shift.then(Permutation::transposition(k, k - 2, k - 1)), false});
  return out;
}

IPGraphSpec shuffle_exchange_ip_spec(int n) {
  assert(n >= 2);
  const int k = 2 * n;
  IPGraphSpec out;
  out.name = "SE(" + std::to_string(n) + ")-IP";
  out.seed = pair_seed(n);
  out.generators.push_back(Generator{"SH", Permutation::rotate_left(k, 2), false});
  out.generators.push_back(Generator{"USH", Permutation::rotate_right(k, 2), false});
  out.generators.push_back(
      Generator{"EX", Permutation::transposition(k, k - 2, k - 1), false});
  return out;
}

std::uint32_t decode_pair_bits(const Label& label, bool msb_first) {
  assert(label.size() % 2 == 0);
  const int n = static_cast<int>(label.size()) / 2;
  std::uint32_t v = 0;
  for (int i = 0; i < n; ++i) {
    const std::uint32_t bit = label[as_size(2 * i)] > label[as_size(2 * i + 1)] ? 1u : 0u;
    if (msb_first) {
      v = (v << 1) | bit;
    } else {
      v |= bit << i;
    }
  }
  return v;
}

}  // namespace ipg::topo
