#include "topo/pancake.hpp"

#include <algorithm>
#include <cassert>

#include "graph/builder.hpp"
#include "topo/perm_rank.hpp"

namespace ipg::topo {

Graph pancake_graph(int n) {
  assert(n >= 2 && n <= 10);
  const std::uint64_t size = kFactorials[n];
  GraphBuilder b(static_cast<Node>(size));
  b.reserve(size * static_cast<std::uint64_t>(n - 1));
  for (std::uint64_t u = 0; u < size; ++u) {
    const auto p = perm_unrank(u, n);
    for (int i = 2; i <= n; ++i) {
      auto q = p;
      std::reverse(q.begin(), q.begin() + i);
      b.add_arc(static_cast<Node>(u), static_cast<Node>(perm_rank(q)));
    }
  }
  return std::move(b).build();
}

}  // namespace ipg::topo
