#pragma once
// IP-graph representations of classical networks, exactly as Section 2
// presents them, plus decoders that map IP labels back to the networks'
// native addresses. The decoders are what make cross-validation *exact*:
// tests check that the arc set of the generated IP graph, decoded, equals
// the arc set of the explicit construction.

#include <cstdint>

#include "ipg/label.hpp"
#include "ipg/spec.hpp"

namespace ipg::topo {

/// Directed binary de Bruijn B(2, n) as an IP graph (Section 2): 2n-symbol
/// seed of n "12" pairs; generator L shifts the label left by one pair,
/// generator L' additionally swaps the incoming pair — together they shift
/// in bit b1 or its complement, i.e. both de Bruijn successors.
IPGraphSpec de_bruijn_ip_spec(int n);

/// Shuffle-exchange SE(n) as an IP graph: pair-encoded bits with shuffle
/// (rotate by one pair, both directions) and exchange (swap the last pair).
IPGraphSpec shuffle_exchange_ip_spec(int n);

/// Decodes a pair-encoded label into its bit value: bit i of the result is
/// 1 iff pair i (symbols 2i, 2i+1) is in descending order. Works for the
/// hypercube/folded-hypercube nuclei and the de Bruijn / shuffle-exchange
/// specs above. `msb_first` selects whether pair 0 is the most significant
/// bit (de Bruijn convention) or the least (hypercube convention).
std::uint32_t decode_pair_bits(const Label& label, bool msb_first);

}  // namespace ipg::topo
