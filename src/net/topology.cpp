#include "net/topology.hpp"

#include <algorithm>
#include <cassert>
#include "util/narrow.hpp"

namespace ipg::net {

void MaterializedTopology::neighbors(NodeId u, std::vector<TopoArc>& out) const {
  out.clear();
  const Node n = static_cast<Node>(u);
  const auto nb = g_->graph.neighbors(n);
  const auto tags = g_->graph.tags(n);
  out.reserve(nb.size());
  for (std::size_t i = 0; i < nb.size(); ++i) {
    out.push_back(TopoArc{nb[i], tags.empty() ? kNoTag : tags[i]});
  }
}

void MaterializedTopology::label_into(NodeId u, Label& out) const {
  g_->label_into(static_cast<Node>(u), out);
}

NodeId MaterializedTopology::node_of(const Label& x) const {
  const Node v = g_->node_of(x);
  return v == kInvalidIPNode ? kInvalidNodeId : v;
}

ImplicitSuperIPTopology::ImplicitSuperIPTopology(SuperIPSpec spec)
    : spec_(std::move(spec)),
      ip_spec_(spec_.to_ip_spec()),
      ranking_(spec_),
      nucleus_count_(static_cast<int>(spec_.nucleus_gens.size())) {}

void ImplicitSuperIPTopology::neighbors(NodeId u, std::vector<TopoArc>& out) const {
  Label x, y;
  neighbors_with_scratch(u, x, y, out);
}

void ImplicitSuperIPTopology::neighbors_with_scratch(
    NodeId u, Label& x, Label& y, std::vector<TopoArc>& out) const {
  out.clear();
  ranking_.unrank_into(u, x);
  for (int g = 0; g < num_generators(); ++g) {
    ip_spec_.generators[as_size(g)].perm.apply_into(x, y);
    if (y == x) continue;  // fixed label: self-loop, not an arc
    out.push_back(TopoArc{ranking_.rank(y), static_cast<EdgeTag>(g)});
  }
  // Match GraphBuilder::build: sort by (to, tag), merge parallel arcs
  // keeping the smallest tag (the first of each run after sorting).
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end(),
                        [](const TopoArc& a, const TopoArc& b) {
                          return a.to == b.to;
                        }),
            out.end());
}

bool RankRangeCursor::next(NodeId& u) {
  if (next_ >= last_) return false;
  cur_ = next_++;
  arcs_valid_ = false;
  u = cur_;
  return true;
}

const std::vector<TopoArc>& RankRangeCursor::arcs() {
  assert(cur_ != kInvalidNodeId && "arcs() before a successful next()");
  if (!arcs_valid_) {
    topo_->neighbors_with_scratch(cur_, x_, y_, arcs_);
    arcs_valid_ = true;
  }
  return arcs_;
}

void ImplicitSuperIPTopology::label_into(NodeId u, Label& out) const {
  ranking_.unrank_into(u, out);
}

NodeId ImplicitSuperIPTopology::node_of(const Label& x) const {
  const std::uint64_t r = ranking_.try_rank(x);
  return r == SuperRanking::kInvalidRank ? kInvalidNodeId : r;
}

NodeId ImplicitSuperIPTopology::neighbor_via(NodeId u, int gen) const {
  assert(gen >= 0 && gen < num_generators());
  Label x, y;
  ranking_.unrank_into(u, x);
  ip_spec_.generators[as_size(gen)].perm.apply_into(x, y);
  return ranking_.rank(y);
}

}  // namespace ipg::net
