#pragma once
// The topology abstraction: a uniform adjacency view over networks that
// may or may not exist in memory.
//
// Everything below the analysis/routing/simulation layers used to require
// a materialized CSR Graph, which caps experiments at enumeration scale
// (~2^24 nodes). But the IP-graph model is *generative*: a node is a
// label, an arc is a generator application, and for super-IP seeds
// Theorem 3.2 supplies a perfect node numbering (SuperRanking). This
// header splits the two concerns:
//
//   - MaterializedTopology wraps an explicitly built IPGraph (exact
//     analysis, small instances);
//   - ImplicitSuperIPTopology computes neighbors on the fly from a
//     SuperIPSpec — O(nucleus) memory for networks of 10^7+ nodes.
//
// Both present identical adjacency semantics (see Topology::neighbors),
// verified arc-for-arc by tests/net_topology_test.cpp, so consumers can
// switch representations without changing results.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "ipg/build.hpp"
#include "ipg/label.hpp"
#include "ipg/ranking.hpp"
#include "ipg/super.hpp"

namespace ipg::net {

/// Node identifier in a topology. 64 bits: implicit super-IP instances
/// outgrow the 32-bit ids of the materialized layer.
using NodeId = std::uint64_t;
inline constexpr NodeId kInvalidNodeId = ~0ull;

/// One out-arc: target node and the tag of the generator that produced it
/// (kNoTag for untagged materialized graphs).
struct TopoArc {
  NodeId to = kInvalidNodeId;
  EdgeTag tag = kNoTag;

  friend bool operator==(const TopoArc&, const TopoArc&) = default;
  friend bool operator<(const TopoArc& a, const TopoArc& b) {
    return a.to != b.to ? a.to < b.to : a.tag < b.tag;
  }
};

/// Uniform adjacency view. neighbors() must follow GraphBuilder::build's
/// conventions so both implementations agree arc-for-arc: out-arcs sorted
/// by (to, tag), self-loops dropped, parallel arcs merged keeping the
/// smallest tag.
class Topology {
 public:
  virtual ~Topology() = default;

  virtual NodeId num_nodes() const = 0;

  /// Out-arcs of `u`, written into `out` (cleared first; reuse the vector
  /// across calls to stay allocation-free after warmup).
  virtual void neighbors(NodeId u, std::vector<TopoArc>& out) const = 0;

  /// Label of node `u`, written into `out`.
  virtual void label_into(NodeId u, Label& out) const = 0;

  /// Node id of label `x`, or kInvalidNodeId when `x` is not a node.
  virtual NodeId node_of(const Label& x) const = 0;

  Label label_of(NodeId u) const {
    Label out;
    label_into(u, out);
    return out;
  }
};

/// Topology view of an explicitly built IP graph (non-owning; the IPGraph
/// must outlive the view). Node ids are the graph's BFS discovery ids.
class MaterializedTopology final : public Topology {
 public:
  explicit MaterializedTopology(const IPGraph& g) : g_(&g) {}

  NodeId num_nodes() const override { return g_->num_nodes(); }
  void neighbors(NodeId u, std::vector<TopoArc>& out) const override;
  void label_into(NodeId u, Label& out) const override;
  NodeId node_of(const Label& x) const override;

  const IPGraph& ip_graph() const noexcept { return *g_; }

 private:
  const IPGraph* g_;
};

class ImplicitSuperIPTopology;

/// Allocation-amortized neighbor iteration over a contiguous rank slice —
/// the shard workers' adjacency primitive (shard/bfs_engine): a worker
/// walks exactly its owned range [first, last) and never unranks a label
/// outside it. next() advances the position without doing any label work;
/// arcs() lazily unranks the current rank into cursor-owned Label scratch,
/// so skipping non-frontier ranks costs one comparison and a dense scan of
/// the slice does no per-node allocation (unlike Topology::neighbors,
/// which builds two Labels per call).
class RankRangeCursor {
 public:
  /// Advances to the next rank of the range; false when exhausted.
  bool next(NodeId& u);

  /// Out-arcs of the current rank, Topology::neighbors conventions
  /// (sorted by (to, tag), self-loops dropped, smallest tag kept). Valid
  /// until the next next() call.
  const std::vector<TopoArc>& arcs();

 private:
  friend class ImplicitSuperIPTopology;
  RankRangeCursor(const ImplicitSuperIPTopology& topo, NodeId first,
                  NodeId last)
      : topo_(&topo), next_(first), last_(last) {}

  const ImplicitSuperIPTopology* topo_;
  NodeId next_ = 0;
  NodeId last_ = 0;
  NodeId cur_ = kInvalidNodeId;
  bool arcs_valid_ = false;
  Label x_, y_;  // label scratch reused across the whole range
  std::vector<TopoArc> arcs_;
};

/// Never-materialized super-IP topology: nodes are SuperRanking ranks
/// (node 0 = rank 0, *not* BFS discovery order), arcs are generator
/// applications computed per call. Memory is O(nucleus + generators)
/// regardless of instance size, so a 10^7-node HSN costs kilobytes.
/// Requires a plain or symmetric super-IP seed (SuperRanking's domain);
/// other seeds throw std::invalid_argument from the constructor.
class ImplicitSuperIPTopology final : public Topology {
 public:
  explicit ImplicitSuperIPTopology(SuperIPSpec spec);

  NodeId num_nodes() const override { return ranking_.size(); }
  void neighbors(NodeId u, std::vector<TopoArc>& out) const override;
  void label_into(NodeId u, Label& out) const override;
  NodeId node_of(const Label& x) const override;

  const SuperIPSpec& spec() const noexcept { return spec_; }
  /// The lifted whole-label spec; arc tags index its generator list
  /// (nucleus generators first, then expanded super-generators — the same
  /// ordering as SuperIPSpec::to_ip_spec and route_super_ip).
  const IPGraphSpec& ip_spec() const noexcept { return ip_spec_; }
  const SuperRanking& ranking() const noexcept { return ranking_; }

  int num_generators() const noexcept {
    return static_cast<int>(ip_spec_.generators.size());
  }
  /// True when generator `g` (tag value) is an expanded super-generator —
  /// i.e. traversing it crosses nucleus modules (Section 5's II-cost hop).
  bool gen_is_super(int g) const noexcept { return g >= nucleus_count_; }
  int nucleus_generator_count() const noexcept { return nucleus_count_; }

  /// Target of applying generator `gen` at `u`; equals `u` when the
  /// generator fixes the label (such self-loops are not arcs).
  NodeId neighbor_via(NodeId u, int gen) const;

  /// Cursor over the rank slice [first, last) (see RankRangeCursor); the
  /// topology must outlive the cursor. Arc-identical to calling
  /// neighbors() on each rank of the range in order.
  RankRangeCursor rank_range(NodeId first, NodeId last) const {
    return RankRangeCursor(*this, first, last);
  }

 private:
  friend class RankRangeCursor;

  /// neighbors() with caller-owned Label scratch (the cursor's fast path).
  void neighbors_with_scratch(NodeId u, Label& x, Label& y,
                              std::vector<TopoArc>& out) const;

  SuperIPSpec spec_;
  IPGraphSpec ip_spec_;
  SuperRanking ranking_;
  int nucleus_count_ = 0;
};

}  // namespace ipg::net
