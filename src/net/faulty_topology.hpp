#pragma once
// Fault masking at the topology layer: a FaultSet names the nodes and
// links that are currently down, and FaultyTopology presents the surviving
// subnetwork through the ordinary Topology interface — so routing,
// analysis and simulation code that speaks Topology handles failures
// without knowing they exist.
//
// Node ids and labels are NOT remapped: a failed node keeps its id and its
// label<->id mapping (Theorem 3.2's numbering stays bijective); it merely
// loses all of its arcs and disappears from every neighbor list. This is
// what lets the simulator keep addressing packets while the network decays
// underneath them, and what the fault property tests pin down.
//
// FaultSet counts overlapping failures (two transient windows covering the
// same node must both end before it comes back), which is what
// sim::FaultState relies on when replaying a FaultPlan's timeline.

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/topology.hpp"

namespace ipg::net {

/// The set of nodes and links down at one instant. Link failures are
/// undirected — failing (u, v) removes both arcs of the channel, which for
/// genuinely directed networks removes whichever of the two arcs exist.
class FaultSet {
 public:
  void fail_node(NodeId u) { ++node_down_[u]; }
  void repair_node(NodeId u);
  void fail_link(NodeId u, NodeId v) { ++link_down_[link_key(u, v)]; }
  void repair_link(NodeId u, NodeId v);

  bool node_up(NodeId u) const { return !node_down_.contains(u); }
  /// Channel state only; does not look at the endpoints' node state.
  bool link_up(NodeId u, NodeId v) const {
    return !link_down_.contains(link_key(u, v));
  }
  /// True iff the arc u -> v is usable: both endpoints and the channel up.
  bool arc_up(NodeId u, NodeId v) const {
    return node_up(u) && node_up(v) && link_up(u, v);
  }

  std::size_t failed_node_count() const noexcept { return node_down_.size(); }
  std::size_t failed_link_count() const noexcept { return link_down_.size(); }
  bool empty() const noexcept {
    return node_down_.empty() && link_down_.empty();
  }

  /// The currently-failed nodes, sorted ascending (for reports and tests).
  std::vector<NodeId> failed_nodes() const;

  /// Structural audit: every recorded failure carries a positive count
  /// (keys must be erased the moment their count reaches zero — node_up()
  /// and link_up() test membership, not counts) and every link key is
  /// normalized endpoint-first. simulate_with_faults runs this under
  /// IPG_AUDIT while replaying a FaultPlan timeline.
  bool consistent() const;

 private:
  static std::pair<NodeId, NodeId> link_key(NodeId u, NodeId v) {
    return u <= v ? std::pair{u, v} : std::pair{v, u};
  }
  struct PairHash {
    std::size_t operator()(const std::pair<NodeId, NodeId>& p) const noexcept {
      std::uint64_t h = p.first * 0x9e3779b97f4a7c15ull;
      h ^= p.second + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h * 0xbf58476d1ce4e5b9ull);
    }
  };
  // Values are active-failure counts; a key is erased when its count hits 0.
  std::unordered_map<NodeId, int> node_down_;
  std::unordered_map<std::pair<NodeId, NodeId>, int, PairHash> link_down_;
};

/// Topology decorator masking the faults in a FaultSet (both referents are
/// non-owning and must outlive the view; the FaultSet may mutate between
/// calls — sim::FaultState advances it in place as simulated time passes).
class FaultyTopology final : public Topology {
 public:
  FaultyTopology(const Topology& base, const FaultSet& faults)
      : base_(&base), faults_(&faults) {}

  NodeId num_nodes() const override { return base_->num_nodes(); }

  /// Out-arcs surviving the fault set: empty when `u` itself is down,
  /// otherwise the base arcs minus those with a down target or channel.
  void neighbors(NodeId u, std::vector<TopoArc>& out) const override;

  // Labels and ids are untouched by faults (see the header comment).
  void label_into(NodeId u, Label& out) const override {
    base_->label_into(u, out);
  }
  NodeId node_of(const Label& x) const override { return base_->node_of(x); }

  bool node_up(NodeId u) const { return faults_->node_up(u); }

  const Topology& base() const noexcept { return *base_; }
  const FaultSet& faults() const noexcept { return *faults_; }

 private:
  const Topology* base_;
  const FaultSet* faults_;
};

}  // namespace ipg::net
