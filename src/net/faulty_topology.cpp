#include "net/faulty_topology.hpp"

#include <algorithm>
#include <cassert>

namespace ipg::net {

void FaultSet::repair_node(NodeId u) {
  const auto it = node_down_.find(u);
  assert(it != node_down_.end() && "repair_node without a matching failure");
  if (it == node_down_.end()) return;
  if (--it->second == 0) node_down_.erase(it);
}

void FaultSet::repair_link(NodeId u, NodeId v) {
  const auto it = link_down_.find(link_key(u, v));
  assert(it != link_down_.end() && "repair_link without a matching failure");
  if (it == link_down_.end()) return;
  if (--it->second == 0) link_down_.erase(it);
}

std::vector<NodeId> FaultSet::failed_nodes() const {
  std::vector<NodeId> out;
  out.reserve(node_down_.size());
  for (const auto& [u, count] : node_down_) out.push_back(u);
  std::sort(out.begin(), out.end());
  return out;
}

bool FaultSet::consistent() const {
  // Note: iteration order does not affect the result — this is a pure
  // all-of check over the maps. ipg-lint: allow(unordered-iteration)
  for (const auto& [u, count] : node_down_) {
    (void)u;
    if (count <= 0) return false;
  }
  // Same pure all-of check as above. ipg-lint: allow(unordered-iteration)
  for (const auto& [key, count] : link_down_) {
    if (count <= 0) return false;
    if (key.first > key.second) return false;
  }
  return true;
}

void FaultyTopology::neighbors(NodeId u, std::vector<TopoArc>& out) const {
  if (!faults_->node_up(u)) {
    out.clear();
    return;
  }
  base_->neighbors(u, out);
  if (faults_->empty()) return;
  std::erase_if(out, [&](const TopoArc& a) {
    return !faults_->node_up(a.to) || !faults_->link_up(u, a.to);
  });
}

}  // namespace ipg::net
