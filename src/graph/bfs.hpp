#pragma once
// Breadth-first search primitives: plain BFS, 0/1-weighted BFS (for
// inter-module distances), eccentricities and distance histograms.
//
// The all-pairs / multi-source summaries run on the bit-parallel batched
// engine (graph/bfs_batch.hpp): 64 sources share each graph pass, with a
// top-down/bottom-up hybrid per level. The scalar one-BFS-per-source
// engine survives as the `*_scalar` reference functions; both engines are
// bit-identical to each other at every thread count.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/thread_pool.hpp"

namespace ipg {

/// Distances from `src` to every node (kUnreachable where disconnected).
std::vector<Dist> bfs_distances(const Graph& g, Node src);

/// Reusable BFS workspace to avoid reallocating the distance/queue arrays
/// in all-pairs loops.
class BfsScratch {
 public:
  explicit BfsScratch(Node num_nodes);

  /// Runs BFS from `src`; the returned span is valid until the next run.
  std::span<const Dist> run(const Graph& g, Node src);

 private:
  std::vector<Dist> dist_;
  std::vector<Node> queue_;
};

/// 0/1 BFS where an arc (u, v) costs 0 if `module[u] == module[v]` and 1
/// otherwise: the distance is the minimum number of *off-module* hops from
/// `src` (the paper's I-distance, Section 5.2).
std::vector<Dist> bfs_distances_01(const Graph& g, Node src,
                                   std::span<const std::uint32_t> module_of);

/// Reusable 0/1-BFS workspace: the working deque is a power-of-two ring
/// buffer that persists across runs, so per-source sweeps (the I-metrics
/// loops) do no allocator work after warm-up — unlike the former
/// per-call std::deque, which allocated a block chain on every source.
class Bfs01Scratch {
 public:
  explicit Bfs01Scratch(Node num_nodes);

  /// Runs 0/1 BFS from `src`; the returned span is valid until the next
  /// run.
  std::span<const Dist> run(const Graph& g, Node src,
                            std::span<const std::uint32_t> module_of);

 private:
  void push_front(Node v);
  void push_back(Node v);
  Node pop_front();
  void grow();

  std::vector<Dist> dist_;
  std::vector<Node> ring_;  // capacity always a power of two
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

/// Summary of the distance distribution from one source.
struct SourceStats {
  Dist eccentricity = 0;            ///< max finite distance
  std::uint64_t reachable = 0;      ///< nodes with finite distance (incl. src)
  std::uint64_t distance_sum = 0;   ///< sum of finite distances
};

SourceStats source_stats(std::span<const Dist> dist);

/// Exact all-pairs distance summary.
struct DistanceSummary {
  Dist diameter = 0;
  double average_distance = 0.0;  ///< over ordered pairs of distinct nodes
  bool strongly_connected = true;
  std::vector<std::uint64_t> histogram;  ///< histogram[d] = #ordered pairs at distance d
};

/// Batched-engine all-pairs summary (serial over batches).
DistanceSummary all_pairs_distance_summary(const Graph& g);

/// Parallel all-pairs summary: 64-source batches are split into chunks,
/// each chunk accumulates a partial with a per-thread scratch, and
/// partials merge in chunk order. All accumulators are integral, so the
/// result is bit-identical to the serial path — and to the scalar
/// reference engine — at every thread count.
DistanceSummary all_pairs_distance_summary(const Graph& g,
                                           const ExecPolicy& exec);

/// Distance summary computed from the given sources only (exact for
/// vertex-transitive graphs with a single source; a cheap estimate
/// otherwise). `average_distance` averages over the supplied sources.
DistanceSummary multi_source_distance_summary(const Graph& g,
                                              std::span<const Node> sources);

/// Parallel variant; same determinism guarantee as the all-pairs overload.
DistanceSummary multi_source_distance_summary(const Graph& g,
                                              std::span<const Node> sources,
                                              const ExecPolicy& exec);

/// Scalar reference engine: one BFS per source, exactly the pre-batching
/// code path. Kept for differential tests and the apsp_scaling bench
/// baseline; results are bit-identical to the batched engine.
DistanceSummary all_pairs_distance_summary_scalar(
    const Graph& g, const ExecPolicy& exec = ExecPolicy::serial_policy());

DistanceSummary multi_source_distance_summary_scalar(
    const Graph& g, std::span<const Node> sources,
    const ExecPolicy& exec = ExecPolicy::serial_policy());

}  // namespace ipg
