#pragma once
// Exact graph isomorphism for small instances (backtracking over a
// refinement-ordered candidate list, VF2-style feasibility checks).
//
// Used to turn "same invariants" claims into proofs: e.g. that CCC(n) is
// literally the symmetric ring-CN(n, Q1) (tests/ip_equivalences_test.cpp).
// Intended for graphs up to a few hundred nodes; highly symmetric inputs
// stay fast because candidates are pruned by distance signatures.

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace ipg {

/// Finds an isomorphism g -> h (a node bijection preserving arcs exactly),
/// or nullopt. Both digraphs may be directed; arc sets must correspond 1:1.
std::optional<std::vector<Node>> find_isomorphism(const Graph& g, const Graph& h);

/// Convenience wrapper.
bool are_isomorphic(const Graph& g, const Graph& h);

}  // namespace ipg
