#pragma once
// Edge-list accumulator that finalizes into a CSR Graph.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ipg {

/// Collects arcs and produces an immutable Graph. Finalization sorts each
/// adjacency list, removes self-loops (unless kept) and merges parallel
/// arcs; a merged arc keeps the smallest tag. Self-loop and parallel-arc
/// removal matches the paper's convention: a generator that maps a label to
/// itself contributes no link, which is why node degree is only *bounded* by
/// the number of generators (Theorem 3.1).
class GraphBuilder {
 public:
  explicit GraphBuilder(Node num_nodes, bool tagged = false);

  Node num_nodes() const noexcept { return num_nodes_; }

  /// Adds the directed arc u -> v.
  void add_arc(Node u, Node v, EdgeTag tag = kNoTag);

  /// Adds both arcs of the undirected link {u, v}.
  void add_edge(Node u, Node v, EdgeTag tag = kNoTag);

  /// Reserves space for `arcs` arcs.
  void reserve(std::uint64_t arcs);

  /// Finalizes into a Graph; the builder is consumed.
  Graph build(bool keep_self_loops = false) &&;

 private:
  struct Arc {
    Node u, v;
    EdgeTag tag;
  };
  Node num_nodes_;
  bool tagged_;
  std::vector<Arc> arcs_;
};

}  // namespace ipg
