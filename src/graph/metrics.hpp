#pragma once
// Degree statistics and whole-graph topological metrics.

#include <cstdint>

#include "graph/graph.hpp"
#include "util/thread_pool.hpp"

namespace ipg {

/// Out-degree statistics. For symmetric digraphs (undirected networks)
/// out-degree equals node degree.
struct DegreeStats {
  Node min_degree = 0;
  Node max_degree = 0;
  double avg_degree = 0.0;
  bool regular = true;  ///< all nodes share the same out-degree
};

DegreeStats degree_stats(const Graph& g);

/// Topological profile used by the figure harnesses: exact degree,
/// diameter and average distance (all-pairs BFS).
struct TopologyProfile {
  std::uint64_t nodes = 0;
  std::uint64_t links = 0;  ///< undirected links for symmetric graphs, arcs otherwise
  Node degree = 0;          ///< max out-degree
  Dist diameter = 0;
  double average_distance = 0.0;
  bool connected = true;
  bool symmetric_digraph = true;
};

/// Computes the full profile. Cost: one BFS per node; intended for
/// instances small enough to enumerate (the analysis layer supplies closed
/// forms beyond that).
TopologyProfile profile(const Graph& g);

/// Parallel profile: the all-pairs sweep runs on `exec.resolved_threads()`
/// threads with deterministic chunk-order merging, so the result is
/// bit-identical to the serial overload at every thread count.
TopologyProfile profile(const Graph& g, const ExecPolicy& exec);

/// DD-cost: degree times diameter, the composite figure of merit of
/// Section 5.1 (after Bhuyan & Agrawal).
inline std::uint64_t dd_cost(const TopologyProfile& p) {
  return static_cast<std::uint64_t>(p.degree) * p.diameter;
}

}  // namespace ipg
