#include "graph/bfs_batch.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <memory>
#include "util/narrow.hpp"

namespace ipg {

namespace {

/// Direction heuristic (after Beamer's direction-optimizing BFS): pull
/// bottom-up once the frontier's out-arc mass exceeds this fraction of the
/// whole arc set — at that density a full in-neighbor scan with early exit
/// is cheaper than pushing every frontier arc. Stateless and computed from
/// deterministic per-level aggregates, so the level schedule (and hence
/// every memory access pattern) is identical at every thread count.
constexpr std::uint64_t kBottomUpDenominator = 14;

}  // namespace

void DistanceAccumulator::add(std::span<const Dist> dist) {
  for (const Dist d : dist) {
    if (d == kUnreachable) {
      disconnected = true;
      continue;
    }
    if (d >= histogram.size()) histogram.resize(d + 1, 0);
    histogram[d]++;
    diameter = std::max(diameter, d);
    total += d;
  }
}

void DistanceAccumulator::merge(const DistanceAccumulator& other) {
  diameter = std::max(diameter, other.diameter);
  total += other.total;
  disconnected = disconnected || other.disconnected;
  if (other.histogram.size() > histogram.size()) {
    histogram.resize(other.histogram.size(), 0);
  }
  for (std::size_t d = 0; d < other.histogram.size(); ++d) {
    histogram[d] += other.histogram[d];
  }
}

void DistanceAccumulator::merge_scaled(const DistanceAccumulator& other,
                                       std::uint64_t weight) {
  if (weight == 0) return;
  diameter = std::max(diameter, other.diameter);
  total += other.total * weight;
  disconnected = disconnected || other.disconnected;
  if (other.histogram.size() > histogram.size()) {
    histogram.resize(other.histogram.size(), 0);
  }
  for (std::size_t d = 0; d < other.histogram.size(); ++d) {
    histogram[d] += other.histogram[d] * weight;
  }
}

DistanceAccumulator accumulator_from_summary(const DistanceSummary& s) {
  DistanceAccumulator acc;
  acc.diameter = s.diameter;
  acc.disconnected = !s.strongly_connected;
  acc.histogram = s.histogram;
  for (std::size_t d = 0; d < acc.histogram.size(); ++d) {
    acc.total += static_cast<std::uint64_t>(d) * acc.histogram[d];
  }
  return acc;
}

DistanceSummary finish_distance_summary(DistanceAccumulator&& acc,
                                        std::uint64_t num_sources,
                                        std::uint64_t num_nodes) {
  DistanceSummary out;
  out.diameter = acc.diameter;
  out.strongly_connected = !acc.disconnected;
  out.histogram = std::move(acc.histogram);
  const std::uint64_t pairs =
      num_nodes == 0 ? 0 : num_sources * (num_nodes - 1);
  out.average_distance = pairs == 0 ? 0.0
                                    : static_cast<double>(acc.total) /
                                          static_cast<double>(pairs);
  return out;
}

BfsBatchScratch::BfsBatchScratch(Node num_nodes)
    : visit_(num_nodes, 0), front_(num_nodes, 0), next_(num_nodes, 0) {}

void BfsBatchScratch::run(const Graph& g, const TransposeCsr& transpose,
                          std::span<const Node> sources,
                          DistanceAccumulator& acc) {
  const Node n = g.num_nodes();
  assert(visit_.size() == n);
  assert(sources.size() <= kBfsBatchWidth);
  const std::uint32_t k = static_cast<std::uint32_t>(sources.size());
  if (k == 0 || n == 0) return;
  const std::uint64_t full =
      k == kBfsBatchWidth ? ~0ull : ((1ull << k) - 1);

  std::fill(visit_.begin(), visit_.end(), 0);
  std::fill(front_.begin(), front_.end(), 0);
  // next_ is an invariant zero between runs (the update pass below clears
  // every slot it reads).

  std::uint64_t frontier_arcs = 0;  // out-arc mass of the current frontier
  for (std::uint32_t i = 0; i < k; ++i) {
    const Node s = sources[i];
    if (front_[s] == 0) frontier_arcs += g.out_degree(s);
    front_[s] |= 1ull << i;
    visit_[s] |= 1ull << i;
  }

  // Level 0: every source sees itself at distance 0 (duplicates included,
  // matching the scalar engine which counts per source, not per node).
  if (acc.histogram.empty()) acc.histogram.resize(1, 0);
  acc.histogram[0] += k;

  const std::uint64_t m = g.num_arcs();
  Dist level = 0;
  for (;;) {
    ++level;
    const bool bottom_up =
        m > 0 && frontier_arcs > m / kBottomUpDenominator;
    if (bottom_up) {
      for (Node v = 0; v < n; ++v) {
        const std::uint64_t missing = full & ~visit_[v];
        if (missing == 0) continue;
        std::uint64_t pulled = 0;
        for (const Node u : transpose.in_neighbors(v)) {
          pulled |= front_[u];
          if ((pulled & missing) == missing) break;  // all lanes arrived
        }
        next_[v] = pulled;
      }
    } else {
      for (Node u = 0; u < n; ++u) {
        const std::uint64_t f = front_[u];
        if (f == 0) continue;
        for (const Node v : g.neighbors(u)) next_[v] |= f;
      }
    }

    // Update pass: commit newly reached lanes, rotate next -> front, and
    // gather the aggregates the heuristic and the accumulator need.
    std::uint64_t new_count = 0;
    frontier_arcs = 0;
    for (Node v = 0; v < n; ++v) {
      const std::uint64_t fresh = next_[v] & ~visit_[v];
      next_[v] = 0;
      front_[v] = fresh;
      if (fresh != 0) {
        visit_[v] |= fresh;
        new_count += static_cast<std::uint64_t>(std::popcount(fresh));
        frontier_arcs += g.out_degree(v);
      }
    }
    if (new_count == 0) break;
    if (level >= acc.histogram.size()) acc.histogram.resize(level + 1, 0);
    acc.histogram[level] += new_count;
    acc.total += static_cast<std::uint64_t>(level) * new_count;
    acc.diameter = std::max(acc.diameter, level);
  }

  for (Node v = 0; v < n; ++v) {
    if ((visit_[v] & full) != full) {
      acc.disconnected = true;
      break;
    }
  }
}

DistanceSummary batched_distance_summary(const Graph& g,
                                         std::span<const Node> sources,
                                         const ExecPolicy& exec) {
  const Node n = g.num_nodes();
  const std::uint64_t num_batches =
      (sources.size() + kBfsBatchWidth - 1) / kBfsBatchWidth;
  const auto batch_span = [&](std::uint64_t b) {
    const std::size_t begin = b * kBfsBatchWidth;
    return sources.subspan(begin,
                           std::min<std::size_t>(kBfsBatchWidth,
                                                 sources.size() - begin));
  };
  if (num_batches == 0) {
    return finish_distance_summary(DistanceAccumulator{}, 0, n);
  }
  // Built once here (and cached on the graph), so worker threads never
  // contend on the transpose lock.
  const TransposeCsr& transpose = g.transpose();

  const int threads = exec.resolved_threads();
  if (threads == 1 || num_batches == 1) {
    DistanceAccumulator acc;
    BfsBatchScratch scratch(n);
    for (std::uint64_t b = 0; b < num_batches; ++b) {
      scratch.run(g, transpose, batch_span(b), acc);
    }
    return finish_distance_summary(std::move(acc), sources.size(), n);
  }

  ThreadPool pool(threads);
  // A few chunks per thread so a straggling chunk cannot serialize the
  // sweep; batch -> chunk assignment depends only on the counts.
  const std::uint64_t num_chunks =
      std::min<std::uint64_t>(num_batches,
                              static_cast<std::uint64_t>(threads) * 4);
  std::vector<DistanceAccumulator> partials(num_chunks);
  std::vector<std::unique_ptr<BfsBatchScratch>> scratch(as_size(threads));
  pool.parallel_for(
      num_batches, num_chunks,
      [&](int worker, std::uint64_t chunk, std::uint64_t begin,
          std::uint64_t end) {
        if (!scratch[as_size(worker)]) {
          scratch[as_size(worker)] = std::make_unique<BfsBatchScratch>(n);
        }
        for (std::uint64_t b = begin; b < end; ++b) {
          scratch[as_size(worker)]->run(g, transpose, batch_span(b),
                                        partials[chunk]);
        }
      });
  DistanceAccumulator merged;
  for (const DistanceAccumulator& p : partials) merged.merge(p);
  return finish_distance_summary(std::move(merged), sources.size(), n);
}

}  // namespace ipg
