#pragma once
// Bit-parallel multi-source BFS: up to 64 sources traverse the graph in a
// single level-synchronous pass, one bit per source packed into a
// `uint64_t` per node. Each level runs either top-down (scan the frontier,
// push masks along out-arcs) or bottom-up (every incompletely-visited node
// pulls frontier masks from its in-neighbors via the cached transpose
// CSR), picked by a deterministic frontier-density heuristic. This is the
// engine under `all_pairs_distance_summary` / `multi_source_distance_summary`
// / `exact_analysis`; the scalar one-BFS-per-source path survives as the
// `*_scalar` reference functions in graph/bfs.hpp.
//
// Determinism: every accumulated quantity (histogram counts, distance sum,
// diameter, reachability) is integral, and the per-batch accumulation is a
// sum/max/or over per-level popcounts — commutative and exact — so the
// batched engine is bit-identical to the scalar engine, and chunk-order
// merging keeps it bit-identical at every thread count (the PR 1
// contract). The direction heuristic depends only on per-level aggregates
// of the batch itself, never on scheduling.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"
#include "util/thread_pool.hpp"

namespace ipg {

namespace shard {
class RankRangePartition;
}  // namespace shard

/// Sources per batch: one bit lane per source in a machine word.
inline constexpr std::uint32_t kBfsBatchWidth = 64;

/// Running totals of a distance-summary sweep. All fields are integral, so
/// partials accumulated per chunk and merged in chunk order reproduce the
/// serial accumulation bit for bit (shared by the scalar and batched
/// engines).
struct DistanceAccumulator {
  Dist diameter = 0;
  std::uint64_t total = 0;      ///< sum of finite distances over ordered pairs
  bool disconnected = false;
  std::vector<std::uint64_t> histogram;  ///< histogram[d] = #pairs at distance d

  /// Scalar accumulation of one source's distance array.
  void add(std::span<const Dist> dist);

  /// Folds `other` into this accumulator (call in chunk order).
  void merge(const DistanceAccumulator& other);

  /// Folds `other` scaled by an integer weight — the orbit-quotient fold:
  /// an orbit representative's counts stand for `weight` sources with
  /// identical distance distributions. Every scaled quantity stays
  /// integral, so a weighted fold of orbit representatives reproduces the
  /// brute-force accumulation bit for bit.
  void merge_scaled(const DistanceAccumulator& other, std::uint64_t weight);
};

/// Lossless inverse of finish_distance_summary (up to the source count,
/// which only enters the final division): reconstructs the integral
/// accumulator from a summary so sweep results can be re-merged — the
/// orbit fold uses this to reuse the batched/sharded drivers per
/// representative group.
DistanceAccumulator accumulator_from_summary(const DistanceSummary& s);

/// Final division step shared by both engines: `num_sources * (n - 1)`
/// ordered pairs, computed from the exact integral totals. `num_nodes` is
/// 64-bit so the sharded driver can pass implicit-topology rank counts.
DistanceSummary finish_distance_summary(DistanceAccumulator&& acc,
                                        std::uint64_t num_sources,
                                        std::uint64_t num_nodes);

/// Reusable workspace for batched runs: three `uint64_t` masks per node
/// (visited / current frontier / next frontier).
class BfsBatchScratch {
 public:
  explicit BfsBatchScratch(Node num_nodes);

  /// One bit-parallel BFS over `sources` (at most kBfsBatchWidth entries,
  /// duplicates allowed); accumulates the batch's distance counts into
  /// `acc`. `transpose` must be the transpose of `g` (see
  /// Graph::transpose()).
  void run(const Graph& g, const TransposeCsr& transpose,
           std::span<const Node> sources, DistanceAccumulator& acc);

  /// Scratch footprint in bytes (for the bench bytes/node counters).
  std::uint64_t memory_bytes() const noexcept {
    return (visit_.size() + front_.size() + next_.size()) *
           sizeof(std::uint64_t);
  }

 private:
  std::vector<std::uint64_t> visit_, front_, next_;
};

/// Distance summary over `sources` via the batched engine, threaded over
/// batches under `exec`; bit-identical to the scalar reference at every
/// thread count.
DistanceSummary batched_distance_summary(const Graph& g,
                                         std::span<const Node> sources,
                                         const ExecPolicy& exec);

/// The batched engine decomposed over a rank-range partition: shards expand
/// only their owned node ranges and exchange boundary activations through
/// the shard/channel.hpp seam between levels. Bit-identical to
/// batched_distance_summary for every partition and thread count; a
/// one-shard partition delegates to it outright. Defined in
/// shard/bfs_engine.cpp (the driver lives behind the seam, not here).
DistanceSummary sharded_distance_summary(const Graph& g,
                                         std::span<const Node> sources,
                                         const shard::RankRangePartition& part,
                                         const ExecPolicy& exec);

}  // namespace ipg
