#pragma once
// Connectivity queries for directed and undirected graphs.

#include "graph/graph.hpp"

namespace ipg {

/// True iff every node is reachable from node 0 following arcs forward.
/// For symmetric digraphs this is full connectivity.
bool is_connected_from(const Graph& g, Node root = 0);

/// True iff the digraph is strongly connected (reachability both ways from
/// node 0; sufficient because strong connectivity is equivalent to
/// "reachable from r" + "reaches r" for any r).
bool is_strongly_connected(const Graph& g);

}  // namespace ipg
