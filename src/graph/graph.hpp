#pragma once
// Compressed-sparse-row graph: the common substrate under every network
// family in the library.
//
// Graphs are stored as digraphs. Undirected networks are represented as
// symmetric digraphs (each undirected link appears as two arcs); whether a
// graph is symmetric is *checked* (see is_symmetric()), never assumed,
// because the IP-graph model also produces genuinely directed networks
// (directed cyclic-shift networks, directed de Bruijn graphs).
//
// Each arc may carry a 16-bit tag. IP-graph builders use the tag to record
// which generator produced the arc, which the routing and clustering layers
// rely on.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/sync.hpp"

namespace ipg {

/// Node identifier. 32 bits covers every instance this library enumerates
/// explicitly (the figure harnesses switch to closed forms well before 2^32).
using Node = std::uint32_t;

/// Arc tag (generator id for IP graphs). kNoTag for plain topologies.
using EdgeTag = std::uint16_t;
inline constexpr EdgeTag kNoTag = 0xffff;

/// Distance value returned by the BFS routines; kUnreachable marks
/// disconnected pairs.
using Dist = std::uint32_t;
inline constexpr Dist kUnreachable = 0xffffffffu;

class GraphBuilder;

/// Transpose adjacency in CSR form: in_neighbors(v) lists every u with an
/// arc u -> v, sorted ascending. For symmetric digraphs this equals the
/// forward adjacency; the batched BFS engine pulls through it in its
/// bottom-up levels on genuinely directed networks.
struct TransposeCsr {
  std::vector<std::uint64_t> offsets;  // size num_nodes()+1
  std::vector<Node> targets;

  std::span<const Node> in_neighbors(Node v) const noexcept {
    return {targets.data() + offsets[v], targets.data() + offsets[v + 1]};
  }

  Node in_degree(Node v) const noexcept {
    return static_cast<Node>(offsets[v + 1] - offsets[v]);
  }

  std::uint64_t memory_bytes() const noexcept {
    return offsets.size() * sizeof(std::uint64_t) +
           targets.size() * sizeof(Node);
  }
};

/// Immutable CSR digraph.
class Graph {
 public:
  Graph() = default;

  Node num_nodes() const noexcept { return static_cast<Node>(offsets_.size() - 1); }

  /// Number of arcs (directed edges). A symmetric digraph representing an
  /// undirected network has num_arcs() == 2 * (number of undirected links).
  std::uint64_t num_arcs() const noexcept { return targets_.size(); }

  /// Out-neighbors of `u`, sorted ascending.
  std::span<const Node> neighbors(Node u) const noexcept {
    return {targets_.data() + offsets_[u],
            targets_.data() + offsets_[u + 1]};
  }

  /// Arc tags parallel to neighbors(u). Empty span if the graph is untagged.
  std::span<const EdgeTag> tags(Node u) const noexcept {
    if (tags_.empty()) return {};
    return {tags_.data() + offsets_[u], tags_.data() + offsets_[u + 1]};
  }

  bool has_tags() const noexcept { return !tags_.empty(); }

  Node out_degree(Node u) const noexcept {
    return static_cast<Node>(offsets_[u + 1] - offsets_[u]);
  }

  /// True iff arc (u, v) exists (binary search over the sorted adjacency).
  bool has_arc(Node u, Node v) const noexcept;

  /// True iff for every arc (u, v) the reverse arc (v, u) exists, i.e. the
  /// digraph represents an undirected network.
  bool is_symmetric() const;

  /// Structural CSR audit: offsets start at 0, are monotone and end at the
  /// arc count; every adjacency list is strictly increasing (sorted, no
  /// parallel arcs) with in-range targets; tags are absent or parallel to
  /// the targets. The builders run this under IPG_AUDIT; tests may call it
  /// directly.
  bool validate_csr() const;

  /// Approximate heap footprint in bytes (used by perf benches).
  std::uint64_t memory_bytes() const noexcept;

  /// Transpose CSR (in-neighbor lists), built on first call and cached for
  /// the lifetime of the graph; thread-safe (any number of threads may
  /// race the first call — one builds, the rest block, all see the same
  /// cached CSR). The returned reference stays valid until the graph is
  /// destroyed or assigned over.
  const TransposeCsr& transpose() const IPG_EXCLUDES(transpose_cache_.mu);

 private:
  friend class GraphBuilder;

  /// Lazily built transpose. The cache is an identity-like member with one
  /// exception: a *moved* Graph carries its adjacency along, so the move
  /// ctor adopts the source's cache (and clears it — annotating the cache
  /// surfaced the latent bug where the moved-from source kept a transpose
  /// that no longer matched its emptied adjacency). Copies start cold: the
  /// copy is a distinct graph object and must own a distinct TransposeCsr
  /// (tests/bfs_batch_test.cpp pins `&copy.transpose() != &g.transpose()`),
  /// so the copy ctor reads no source state. Assignment clears the target's
  /// cache so it can never go stale against new adjacency. Every access to
  /// the guarded pointer goes through the owning object's mutex — annotated
  /// so the thread-safety analysis proves the discipline
  /// (tests/concurrency_stress_test.cpp hammers the same paths under TSan).
  struct TransposeCache {
    mutable Mutex mu;
    mutable std::shared_ptr<const TransposeCsr> csr IPG_GUARDED_BY(mu);

    TransposeCache() = default;
    TransposeCache(const TransposeCache&) noexcept {}
    TransposeCache(TransposeCache&& other) noexcept {
      // Adopt the built transpose (it still matches the adjacency that is
      // moving with us) and leave the source empty, never stale. The
      // target is under construction, so only the source needs its lock.
      LockGuard lock(other.mu);
      csr = std::move(other.csr);
    }
    TransposeCache& operator=(const TransposeCache&) {
      LockGuard lock(mu);
      csr.reset();
      return *this;
    }
    TransposeCache& operator=(TransposeCache&& other) {
      // Memberwise Graph move-assignment has already moved the adjacency
      // by the time this runs, so the source's cache (possibly empty) is
      // exactly the right value for the target — and the source must not
      // keep it. Distinct objects, so taking both locks cannot deadlock
      // with itself; concurrent cross-moves of the same pair would be a
      // data race on the Graphs regardless of lock order.
      if (this == &other) return *this;
      LockGuard source(other.mu);
      LockGuard target(mu);
      csr = std::move(other.csr);
      return *this;
    }
  };

  std::vector<std::uint64_t> offsets_{0};  // size num_nodes()+1
  std::vector<Node> targets_;
  std::vector<EdgeTag> tags_;  // empty, or parallel to targets_
  TransposeCache transpose_cache_;
};

}  // namespace ipg
