#include "graph/quotient.hpp"

#include <cassert>

#include "graph/builder.hpp"

namespace ipg {

Graph quotient_graph(const Graph& g, std::span<const std::uint32_t> color,
                     std::uint32_t num_colors) {
  assert(color.size() == g.num_nodes());
  GraphBuilder b(num_colors);
  for (Node u = 0; u < g.num_nodes(); ++u) {
    const std::uint32_t cu = color[u];
    assert(cu < num_colors);
    for (const Node v : g.neighbors(u)) {
      const std::uint32_t cv = color[v];
      if (cu != cv) b.add_arc(cu, cv);
    }
  }
  return std::move(b).build();
}

std::uint64_t count_cross_color_arcs(const Graph& g,
                                     std::span<const std::uint32_t> color) {
  assert(color.size() == g.num_nodes());
  std::uint64_t crossings = 0;
  for (Node u = 0; u < g.num_nodes(); ++u) {
    for (const Node v : g.neighbors(u)) {
      if (color[u] != color[v]) ++crossings;
    }
  }
  return crossings;
}

}  // namespace ipg
