#include "graph/bfs.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

#include "graph/bfs_batch.hpp"
#include "util/narrow.hpp"

namespace ipg {

std::vector<Dist> bfs_distances(const Graph& g, Node src) {
  BfsScratch scratch(g.num_nodes());
  const auto span = scratch.run(g, src);
  return {span.begin(), span.end()};
}

BfsScratch::BfsScratch(Node num_nodes) : dist_(num_nodes) {
  queue_.reserve(num_nodes);
}

std::span<const Dist> BfsScratch::run(const Graph& g, Node src) {
  assert(g.num_nodes() == dist_.size());
  std::fill(dist_.begin(), dist_.end(), kUnreachable);
  queue_.clear();
  dist_[src] = 0;
  queue_.push_back(src);
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const Node u = queue_[head];
    const Dist du = dist_[u];
    for (const Node v : g.neighbors(u)) {
      if (dist_[v] == kUnreachable) {
        dist_[v] = du + 1;
        queue_.push_back(v);
      }
    }
  }
  return dist_;
}

Bfs01Scratch::Bfs01Scratch(Node num_nodes) : dist_(num_nodes) {
  // A node re-enters the ring each time its distance improves, so the
  // steady-state occupancy can exceed num_nodes; start at the next power
  // of two and double on overflow (rare after warm-up).
  std::size_t cap = 64;
  while (cap < num_nodes + std::size_t{1}) cap *= 2;
  ring_.resize(cap);
}

void Bfs01Scratch::grow() {
  const std::size_t old_cap = ring_.size();
  std::vector<Node> bigger(old_cap * 2);
  for (std::size_t i = 0; i < count_; ++i) {
    bigger[i] = ring_[(head_ + i) & (old_cap - 1)];
  }
  ring_ = std::move(bigger);
  head_ = 0;
}

void Bfs01Scratch::push_front(Node v) {
  if (count_ == ring_.size()) grow();
  head_ = (head_ - 1) & (ring_.size() - 1);
  ring_[head_] = v;
  ++count_;
}

void Bfs01Scratch::push_back(Node v) {
  if (count_ == ring_.size()) grow();
  ring_[(head_ + count_) & (ring_.size() - 1)] = v;
  ++count_;
}

Node Bfs01Scratch::pop_front() {
  const Node v = ring_[head_];
  head_ = (head_ + 1) & (ring_.size() - 1);
  --count_;
  return v;
}

std::span<const Dist> Bfs01Scratch::run(
    const Graph& g, Node src, std::span<const std::uint32_t> module_of) {
  assert(g.num_nodes() == dist_.size());
  assert(module_of.size() == g.num_nodes());
  std::fill(dist_.begin(), dist_.end(), kUnreachable);
  head_ = 0;
  count_ = 0;
  dist_[src] = 0;
  push_back(src);
  while (count_ != 0) {
    const Node u = pop_front();
    const Dist du = dist_[u];
    for (const Node v : g.neighbors(u)) {
      const Dist w = module_of[u] == module_of[v] ? 0 : 1;
      if (du + w < dist_[v]) {
        dist_[v] = du + w;
        if (w == 0) {
          push_front(v);
        } else {
          push_back(v);
        }
      }
    }
  }
  return dist_;
}

std::vector<Dist> bfs_distances_01(const Graph& g, Node src,
                                   std::span<const std::uint32_t> module_of) {
  Bfs01Scratch scratch(g.num_nodes());
  const auto span = scratch.run(g, src, module_of);
  return {span.begin(), span.end()};
}

SourceStats source_stats(std::span<const Dist> dist) {
  SourceStats s;
  for (const Dist d : dist) {
    if (d == kUnreachable) continue;
    s.reachable++;
    s.distance_sum += d;
    s.eccentricity = std::max(s.eccentricity, d);
  }
  return s;
}

namespace {

DistanceSummary summarize_scalar(const Graph& g,
                                 std::span<const Node> sources) {
  DistanceAccumulator acc;
  BfsScratch scratch(g.num_nodes());
  for (const Node src : sources) acc.add(scratch.run(g, src));
  return finish_distance_summary(std::move(acc), sources.size(),
                                 g.num_nodes());
}

DistanceSummary summarize_scalar_parallel(const Graph& g,
                                          std::span<const Node> sources,
                                          int threads) {
  ThreadPool pool(threads);
  // A few chunks per thread so a slow chunk (e.g. the high-degree sources)
  // does not straggle the whole sweep.
  const std::uint64_t num_chunks =
      std::min<std::uint64_t>(sources.size(),
                              static_cast<std::uint64_t>(threads) * 4);
  std::vector<DistanceAccumulator> partials(num_chunks);
  std::vector<std::unique_ptr<BfsScratch>> scratch(as_size(threads));
  pool.parallel_for(
      sources.size(), num_chunks,
      [&](int worker, std::uint64_t chunk, std::uint64_t begin,
          std::uint64_t end) {
        if (!scratch[as_size(worker)]) {
          scratch[as_size(worker)] = std::make_unique<BfsScratch>(g.num_nodes());
        }
        DistanceAccumulator& p = partials[chunk];
        for (std::uint64_t i = begin; i < end; ++i) {
          p.add(scratch[as_size(worker)]->run(g, sources[i]));
        }
      });
  DistanceAccumulator merged;
  for (const DistanceAccumulator& p : partials) merged.merge(p);
  return finish_distance_summary(std::move(merged), sources.size(),
                                 g.num_nodes());
}

DistanceSummary summarize_scalar_policy(const Graph& g,
                                        std::span<const Node> sources,
                                        const ExecPolicy& exec) {
  const int threads = exec.resolved_threads();
  if (threads == 1) return summarize_scalar(g, sources);
  return summarize_scalar_parallel(g, sources, threads);
}

std::vector<Node> all_nodes(const Graph& g) {
  std::vector<Node> sources(g.num_nodes());
  for (Node u = 0; u < g.num_nodes(); ++u) sources[u] = u;
  return sources;
}

}  // namespace

DistanceSummary all_pairs_distance_summary(const Graph& g) {
  return batched_distance_summary(g, all_nodes(g),
                                  ExecPolicy::serial_policy());
}

DistanceSummary all_pairs_distance_summary(const Graph& g,
                                           const ExecPolicy& exec) {
  return batched_distance_summary(g, all_nodes(g), exec);
}

DistanceSummary multi_source_distance_summary(const Graph& g,
                                              std::span<const Node> sources) {
  return batched_distance_summary(g, sources, ExecPolicy::serial_policy());
}

DistanceSummary multi_source_distance_summary(const Graph& g,
                                              std::span<const Node> sources,
                                              const ExecPolicy& exec) {
  return batched_distance_summary(g, sources, exec);
}

DistanceSummary all_pairs_distance_summary_scalar(const Graph& g,
                                                  const ExecPolicy& exec) {
  return summarize_scalar_policy(g, all_nodes(g), exec);
}

DistanceSummary multi_source_distance_summary_scalar(
    const Graph& g, std::span<const Node> sources, const ExecPolicy& exec) {
  return summarize_scalar_policy(g, sources, exec);
}

}  // namespace ipg
