#include "graph/bfs.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

namespace ipg {

std::vector<Dist> bfs_distances(const Graph& g, Node src) {
  BfsScratch scratch(g.num_nodes());
  const auto span = scratch.run(g, src);
  return {span.begin(), span.end()};
}

BfsScratch::BfsScratch(Node num_nodes) : dist_(num_nodes) {
  queue_.reserve(num_nodes);
}

std::span<const Dist> BfsScratch::run(const Graph& g, Node src) {
  assert(g.num_nodes() == dist_.size());
  std::fill(dist_.begin(), dist_.end(), kUnreachable);
  queue_.clear();
  dist_[src] = 0;
  queue_.push_back(src);
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const Node u = queue_[head];
    const Dist du = dist_[u];
    for (const Node v : g.neighbors(u)) {
      if (dist_[v] == kUnreachable) {
        dist_[v] = du + 1;
        queue_.push_back(v);
      }
    }
  }
  return dist_;
}

std::vector<Dist> bfs_distances_01(const Graph& g, Node src,
                                   std::span<const std::uint32_t> module_of) {
  assert(module_of.size() == g.num_nodes());
  std::vector<Dist> dist(g.num_nodes(), kUnreachable);
  std::deque<Node> dq;
  dist[src] = 0;
  dq.push_back(src);
  while (!dq.empty()) {
    const Node u = dq.front();
    dq.pop_front();
    const Dist du = dist[u];
    for (const Node v : g.neighbors(u)) {
      const Dist w = module_of[u] == module_of[v] ? 0 : 1;
      if (du + w < dist[v]) {
        dist[v] = du + w;
        if (w == 0) {
          dq.push_front(v);
        } else {
          dq.push_back(v);
        }
      }
    }
  }
  return dist;
}

SourceStats source_stats(std::span<const Dist> dist) {
  SourceStats s;
  for (const Dist d : dist) {
    if (d == kUnreachable) continue;
    s.reachable++;
    s.distance_sum += d;
    s.eccentricity = std::max(s.eccentricity, d);
  }
  return s;
}

namespace {

DistanceSummary summarize(const Graph& g, std::span<const Node> sources) {
  DistanceSummary out;
  BfsScratch scratch(g.num_nodes());
  std::uint64_t total = 0;
  for (const Node src : sources) {
    const auto dist = scratch.run(g, src);
    for (const Dist d : dist) {
      if (d == kUnreachable) {
        out.strongly_connected = false;
        continue;
      }
      if (d >= out.histogram.size()) out.histogram.resize(d + 1, 0);
      out.histogram[d]++;
      out.diameter = std::max(out.diameter, d);
      total += d;
    }
  }
  const std::uint64_t pairs =
      static_cast<std::uint64_t>(sources.size()) * (g.num_nodes() - 1);
  out.average_distance = pairs == 0 ? 0.0
                                    : static_cast<double>(total) /
                                          static_cast<double>(pairs);
  return out;
}

}  // namespace

DistanceSummary all_pairs_distance_summary(const Graph& g) {
  std::vector<Node> sources(g.num_nodes());
  for (Node u = 0; u < g.num_nodes(); ++u) sources[u] = u;
  return summarize(g, sources);
}

DistanceSummary multi_source_distance_summary(const Graph& g,
                                              std::span<const Node> sources) {
  return summarize(g, sources);
}

}  // namespace ipg
