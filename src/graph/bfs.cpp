#include "graph/bfs.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <memory>

namespace ipg {

std::vector<Dist> bfs_distances(const Graph& g, Node src) {
  BfsScratch scratch(g.num_nodes());
  const auto span = scratch.run(g, src);
  return {span.begin(), span.end()};
}

BfsScratch::BfsScratch(Node num_nodes) : dist_(num_nodes) {
  queue_.reserve(num_nodes);
}

std::span<const Dist> BfsScratch::run(const Graph& g, Node src) {
  assert(g.num_nodes() == dist_.size());
  std::fill(dist_.begin(), dist_.end(), kUnreachable);
  queue_.clear();
  dist_[src] = 0;
  queue_.push_back(src);
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const Node u = queue_[head];
    const Dist du = dist_[u];
    for (const Node v : g.neighbors(u)) {
      if (dist_[v] == kUnreachable) {
        dist_[v] = du + 1;
        queue_.push_back(v);
      }
    }
  }
  return dist_;
}

std::vector<Dist> bfs_distances_01(const Graph& g, Node src,
                                   std::span<const std::uint32_t> module_of) {
  assert(module_of.size() == g.num_nodes());
  std::vector<Dist> dist(g.num_nodes(), kUnreachable);
  std::deque<Node> dq;
  dist[src] = 0;
  dq.push_back(src);
  while (!dq.empty()) {
    const Node u = dq.front();
    dq.pop_front();
    const Dist du = dist[u];
    for (const Node v : g.neighbors(u)) {
      const Dist w = module_of[u] == module_of[v] ? 0 : 1;
      if (du + w < dist[v]) {
        dist[v] = du + w;
        if (w == 0) {
          dq.push_front(v);
        } else {
          dq.push_back(v);
        }
      }
    }
  }
  return dist;
}

SourceStats source_stats(std::span<const Dist> dist) {
  SourceStats s;
  for (const Dist d : dist) {
    if (d == kUnreachable) continue;
    s.reachable++;
    s.distance_sum += d;
    s.eccentricity = std::max(s.eccentricity, d);
  }
  return s;
}

namespace {

/// Per-chunk partial of a distance summary. Every field is integral, so
/// merging partials in chunk order reproduces the serial accumulation
/// bit for bit.
struct SummaryPartial {
  Dist diameter = 0;
  std::uint64_t total = 0;
  bool disconnected = false;
  std::vector<std::uint64_t> histogram;
};

void accumulate_source(const std::span<const Dist> dist, SummaryPartial& p) {
  for (const Dist d : dist) {
    if (d == kUnreachable) {
      p.disconnected = true;
      continue;
    }
    if (d >= p.histogram.size()) p.histogram.resize(d + 1, 0);
    p.histogram[d]++;
    p.diameter = std::max(p.diameter, d);
    p.total += d;
  }
}

DistanceSummary finish_summary(SummaryPartial&& p, std::uint64_t num_sources,
                               Node num_nodes) {
  DistanceSummary out;
  out.diameter = p.diameter;
  out.strongly_connected = !p.disconnected;
  out.histogram = std::move(p.histogram);
  const std::uint64_t pairs =
      num_nodes == 0 ? 0 : num_sources * (num_nodes - 1);
  out.average_distance = pairs == 0 ? 0.0
                                    : static_cast<double>(p.total) /
                                          static_cast<double>(pairs);
  return out;
}

DistanceSummary summarize(const Graph& g, std::span<const Node> sources) {
  SummaryPartial p;
  BfsScratch scratch(g.num_nodes());
  for (const Node src : sources) accumulate_source(scratch.run(g, src), p);
  return finish_summary(std::move(p), sources.size(), g.num_nodes());
}

DistanceSummary summarize_parallel(const Graph& g,
                                   std::span<const Node> sources,
                                   int threads) {
  ThreadPool pool(threads);
  // A few chunks per thread so a slow chunk (e.g. the high-degree sources)
  // does not straggle the whole sweep.
  const std::uint64_t num_chunks =
      std::min<std::uint64_t>(sources.size(),
                              static_cast<std::uint64_t>(threads) * 4);
  std::vector<SummaryPartial> partials(num_chunks);
  std::vector<std::unique_ptr<BfsScratch>> scratch(threads);
  pool.parallel_for(
      sources.size(), num_chunks,
      [&](int worker, std::uint64_t chunk, std::uint64_t begin,
          std::uint64_t end) {
        if (!scratch[worker]) {
          scratch[worker] = std::make_unique<BfsScratch>(g.num_nodes());
        }
        SummaryPartial& p = partials[chunk];
        for (std::uint64_t i = begin; i < end; ++i) {
          accumulate_source(scratch[worker]->run(g, sources[i]), p);
        }
      });
  SummaryPartial merged;
  for (SummaryPartial& p : partials) {
    merged.diameter = std::max(merged.diameter, p.diameter);
    merged.total += p.total;
    merged.disconnected = merged.disconnected || p.disconnected;
    if (p.histogram.size() > merged.histogram.size()) {
      merged.histogram.resize(p.histogram.size(), 0);
    }
    for (std::size_t d = 0; d < p.histogram.size(); ++d) {
      merged.histogram[d] += p.histogram[d];
    }
  }
  return finish_summary(std::move(merged), sources.size(), g.num_nodes());
}

DistanceSummary summarize_policy(const Graph& g, std::span<const Node> sources,
                                 const ExecPolicy& exec) {
  const int threads = exec.resolved_threads();
  if (threads == 1) return summarize(g, sources);
  return summarize_parallel(g, sources, threads);
}

std::vector<Node> all_nodes(const Graph& g) {
  std::vector<Node> sources(g.num_nodes());
  for (Node u = 0; u < g.num_nodes(); ++u) sources[u] = u;
  return sources;
}

}  // namespace

DistanceSummary all_pairs_distance_summary(const Graph& g) {
  return summarize(g, all_nodes(g));
}

DistanceSummary all_pairs_distance_summary(const Graph& g,
                                           const ExecPolicy& exec) {
  return summarize_policy(g, all_nodes(g), exec);
}

DistanceSummary multi_source_distance_summary(const Graph& g,
                                              std::span<const Node> sources) {
  return summarize(g, sources);
}

DistanceSummary multi_source_distance_summary(const Graph& g,
                                              std::span<const Node> sources,
                                              const ExecPolicy& exec) {
  return summarize_policy(g, sources, exec);
}

}  // namespace ipg
