#include "graph/symmetry.hpp"

#include <vector>

#include "graph/bfs.hpp"
#include "graph/metrics.hpp"

namespace ipg {

bool is_regular(const Graph& g) { return degree_stats(g).regular; }

namespace {

std::vector<std::uint64_t> histogram_from(const Graph& g, BfsScratch& scratch,
                                          Node src) {
  const auto dist = scratch.run(g, src);
  std::vector<std::uint64_t> h;
  std::uint64_t unreachable = 0;
  for (const Dist d : dist) {
    if (d == kUnreachable) {
      ++unreachable;
      continue;
    }
    if (d >= h.size()) h.resize(d + 1, 0);
    h[d]++;
  }
  if (unreachable != 0) {
    // Distinguish sources by how much of the graph they miss.
    h.push_back(kUnreachable);
    h.push_back(unreachable);
  }
  return h;
}

}  // namespace

bool distance_profiles_identical(const Graph& g, std::span<const Node> sources) {
  if (sources.empty()) return true;
  BfsScratch scratch(g.num_nodes());
  const auto reference = histogram_from(g, scratch, sources.front());
  for (std::size_t i = 1; i < sources.size(); ++i) {
    if (histogram_from(g, scratch, sources[i]) != reference) return false;
  }
  return true;
}

bool looks_vertex_transitive(const Graph& g) {
  if (!is_regular(g)) return false;
  std::vector<Node> all(g.num_nodes());
  for (Node u = 0; u < g.num_nodes(); ++u) all[u] = u;
  return distance_profiles_identical(g, all);
}

}  // namespace ipg
