#include "graph/connectivity.hpp"

#include <vector>

#include "graph/bfs.hpp"
#include "graph/builder.hpp"

namespace ipg {

bool is_connected_from(const Graph& g, Node root) {
  if (g.num_nodes() == 0) return true;
  const auto dist = bfs_distances(g, root);
  for (const Dist d : dist) {
    if (d == kUnreachable) return false;
  }
  return true;
}

namespace {

Graph reverse_graph(const Graph& g) {
  GraphBuilder b(g.num_nodes());
  b.reserve(g.num_arcs());
  for (Node u = 0; u < g.num_nodes(); ++u) {
    for (const Node v : g.neighbors(u)) b.add_arc(v, u);
  }
  return std::move(b).build();
}

}  // namespace

bool is_strongly_connected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  if (!is_connected_from(g, 0)) return false;
  return is_connected_from(reverse_graph(g), 0);
}

}  // namespace ipg
