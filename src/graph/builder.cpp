#include "graph/builder.hpp"

#include <algorithm>
#include <cassert>

#include "ipg/static_check.hpp"

namespace ipg {

GraphBuilder::GraphBuilder(Node num_nodes, bool tagged)
    : num_nodes_(num_nodes), tagged_(tagged) {}

void GraphBuilder::add_arc(Node u, Node v, EdgeTag tag) {
  assert(u < num_nodes_ && v < num_nodes_);
  arcs_.push_back(Arc{u, v, tag});
}

void GraphBuilder::add_edge(Node u, Node v, EdgeTag tag) {
  add_arc(u, v, tag);
  add_arc(v, u, tag);
}

void GraphBuilder::reserve(std::uint64_t arcs) { arcs_.reserve(arcs); }

Graph GraphBuilder::build(bool keep_self_loops) && {
  std::sort(arcs_.begin(), arcs_.end(), [](const Arc& a, const Arc& b) {
    if (a.u != b.u) return a.u < b.u;
    if (a.v != b.v) return a.v < b.v;
    return a.tag < b.tag;
  });

  Graph g;
  g.offsets_.assign(num_nodes_ + 1, 0);
  g.targets_.reserve(arcs_.size());
  if (tagged_) g.tags_.reserve(arcs_.size());

  const Arc* prev = nullptr;
  for (const Arc& a : arcs_) {
    if (!keep_self_loops && a.u == a.v) continue;
    if (prev != nullptr && prev->u == a.u && prev->v == a.v) continue;  // parallel arc
    g.targets_.push_back(a.v);
    if (tagged_) g.tags_.push_back(a.tag);
    g.offsets_[a.u + 1]++;
    prev = &a;
  }
  for (Node u = 0; u < num_nodes_; ++u) g.offsets_[u + 1] += g.offsets_[u];
  IPG_AUDIT(g.validate_csr());
  return g;
}

}  // namespace ipg
