#include "graph/metrics.hpp"

#include <algorithm>

#include "graph/bfs.hpp"

namespace ipg {

DegreeStats degree_stats(const Graph& g) {
  DegreeStats s;
  const Node n = g.num_nodes();
  if (n == 0) return s;
  s.min_degree = g.out_degree(0);
  s.max_degree = g.out_degree(0);
  std::uint64_t total = 0;
  for (Node u = 0; u < n; ++u) {
    const Node d = g.out_degree(u);
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
    total += d;
  }
  s.avg_degree = static_cast<double>(total) / static_cast<double>(n);
  s.regular = s.min_degree == s.max_degree;
  return s;
}

TopologyProfile profile(const Graph& g) {
  return profile(g, ExecPolicy::serial_policy());
}

TopologyProfile profile(const Graph& g, const ExecPolicy& exec) {
  TopologyProfile p;
  p.nodes = g.num_nodes();
  p.symmetric_digraph = g.is_symmetric();
  p.links = p.symmetric_digraph ? g.num_arcs() / 2 : g.num_arcs();
  p.degree = degree_stats(g).max_degree;
  const DistanceSummary d = all_pairs_distance_summary(g, exec);
  p.diameter = d.diameter;
  p.average_distance = d.average_distance;
  p.connected = d.strongly_connected;
  return p;
}

}  // namespace ipg
