#pragma once
// Fault injection: derive a network with failed nodes or links removed.
// Used by the fault-tolerance tests and benches to check that k-connected
// networks (graph/flow.hpp) really survive k-1 arbitrary node failures.

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace ipg {

/// The surviving subgraph after deleting `failed` nodes, plus the mapping
/// from surviving new ids back to the original ids.
struct FaultedGraph {
  Graph graph;
  std::vector<Node> original_id;  ///< new id -> old id
  std::vector<Node> new_id;       ///< old id -> new id (kUnreachable if failed)
};

/// Removes the given nodes (duplicates allowed) and every incident arc.
FaultedGraph remove_nodes(const Graph& g, std::span<const Node> failed);

/// Removes the given undirected links (both arc directions).
Graph remove_links(const Graph& g,
                   std::span<const std::pair<Node, Node>> failed);

}  // namespace ipg
