#pragma once
// Vertex-symmetry checks.
//
// Symmetric super-IP graphs are Cayley graphs and therefore
// vertex-symmetric (Section 3.5); plain super-IP graphs generally are not.
// Full automorphism search is overkill here, so the library checks the
// standard necessary condition: every node sees the same distance
// distribution. For the small, highly structured instances in the tests
// this invariant separates the symmetric variants from the plain ones.

#include <span>

#include "graph/graph.hpp"

namespace ipg {

/// True iff every node has the same out-degree.
bool is_regular(const Graph& g);

/// True iff the per-source distance histograms of all `sources` are
/// identical (a necessary condition for vertex-transitivity; use all nodes
/// for the exact check on small graphs).
bool distance_profiles_identical(const Graph& g, std::span<const Node> sources);

/// Exact necessary-condition check over all nodes.
bool looks_vertex_transitive(const Graph& g);

}  // namespace ipg
