#include "graph/surgery.hpp"

#include <algorithm>

#include "graph/builder.hpp"

namespace ipg {

FaultedGraph remove_nodes(const Graph& g, std::span<const Node> failed) {
  FaultedGraph out;
  std::vector<bool> dead(g.num_nodes(), false);
  for (const Node f : failed) dead[f] = true;

  out.new_id.assign(g.num_nodes(), kUnreachable);
  for (Node u = 0; u < g.num_nodes(); ++u) {
    if (dead[u]) continue;
    out.new_id[u] = static_cast<Node>(out.original_id.size());
    out.original_id.push_back(u);
  }

  GraphBuilder b(static_cast<Node>(out.original_id.size()));
  for (Node u = 0; u < g.num_nodes(); ++u) {
    if (dead[u]) continue;
    for (const Node v : g.neighbors(u)) {
      if (!dead[v]) b.add_arc(out.new_id[u], out.new_id[v]);
    }
  }
  out.graph = std::move(b).build();
  return out;
}

Graph remove_links(const Graph& g,
                   std::span<const std::pair<Node, Node>> failed) {
  const auto is_failed = [&](Node u, Node v) {
    return std::any_of(failed.begin(), failed.end(), [&](const auto& link) {
      return (link.first == u && link.second == v) ||
             (link.first == v && link.second == u);
    });
  };
  GraphBuilder b(g.num_nodes());
  for (Node u = 0; u < g.num_nodes(); ++u) {
    for (const Node v : g.neighbors(u)) {
      if (!is_failed(u, v)) b.add_arc(u, v);
    }
  }
  return std::move(b).build();
}

}  // namespace ipg
