#pragma once
// Graph contraction by node coloring.
//
// Used in two places that the paper calls out:
//   * the *module graph* (one node per packaging module) that makes exact
//     I-diameter / average I-distance computations cheap (Section 5.2);
//   * *quotient variants* of super-IP graphs such as QCN(l; Q7/Q3), formed
//     by merging each 3-cube of the nucleus into a single node (Fig. 3).

#include <cstdint>
#include <span>

#include "graph/graph.hpp"

namespace ipg {

/// Contracts `g` by `color`: the result has `num_colors` nodes and an arc
/// c1 -> c2 whenever some arc of `g` joins differently-colored nodes with
/// those colors. Parallel arcs are merged; self-loops are dropped.
/// `color[u]` must be < `num_colors` for every node.
Graph quotient_graph(const Graph& g, std::span<const std::uint32_t> color,
                     std::uint32_t num_colors);

/// Number of arcs of `g` that cross between colors (counts each direction).
std::uint64_t count_cross_color_arcs(const Graph& g,
                                     std::span<const std::uint32_t> color);

}  // namespace ipg
