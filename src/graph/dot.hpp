#pragma once
// Graphviz DOT export — for eyeballing the small structures the paper
// draws (Fig. 1) and for downstream tooling.

#include <functional>
#include <iosfwd>
#include <string>

#include "cluster/clustering.hpp"
#include "graph/graph.hpp"

namespace ipg {

struct DotOptions {
  /// Node label text; defaults to the node id.
  std::function<std::string(Node)> label;
  /// Optional module assignment: members of a module are grouped into a
  /// graphviz cluster subgraph.
  const Clustering* modules = nullptr;
  std::string graph_name = "ipg";
};

/// Writes `g` in DOT format. Symmetric digraphs are written as undirected
/// graphs (each link once); asymmetric ones as digraphs.
void write_dot(std::ostream& os, const Graph& g, const DotOptions& options = {});

}  // namespace ipg
