#include "graph/isomorphism.hpp"

#include <algorithm>
#include <map>

#include "graph/bfs.hpp"

namespace ipg {

namespace {

/// Per-node invariant: (out-degree, in-degree, distance histogram).
using Signature = std::vector<std::uint32_t>;

std::vector<Signature> signatures(const Graph& g) {
  // In-degrees.
  std::vector<std::uint32_t> in_degree(g.num_nodes(), 0);
  for (Node u = 0; u < g.num_nodes(); ++u) {
    for (const Node v : g.neighbors(u)) in_degree[v]++;
  }
  std::vector<Signature> out(g.num_nodes());
  BfsScratch scratch(g.num_nodes());
  for (Node u = 0; u < g.num_nodes(); ++u) {
    Signature s{g.out_degree(u), in_degree[u]};
    for (const Dist d : scratch.run(g, u)) {
      if (d == kUnreachable) continue;
      if (d + 2 >= s.size()) s.resize(d + 3, 0);
      s[d + 2]++;
    }
    out[u] = std::move(s);
  }
  return out;
}

struct Matcher {
  const Graph& g;
  const Graph& h;
  std::vector<std::vector<Node>> candidates;  // per g-node, same-signature h-nodes
  std::vector<Node> order;                    // g-nodes, BFS-ish order
  std::vector<Node> mapping;                  // g-node -> h-node or kUnreachable
  std::vector<bool> used;                     // h-node already an image

  bool consistent(Node u, Node v) const {
    // All previously mapped nodes must agree on arcs with (u, v), both
    // directions.
    for (const Node w : order) {
      const Node img = mapping[w];
      if (img == kUnreachable) break;  // order prefix is the mapped set
      if (g.has_arc(u, w) != h.has_arc(v, img)) return false;
      if (g.has_arc(w, u) != h.has_arc(img, v)) return false;
    }
    return true;
  }

  bool extend(std::size_t index) {
    if (index == order.size()) return true;
    const Node u = order[index];
    for (const Node v : candidates[u]) {
      if (used[v]) continue;
      if (!consistent(u, v)) continue;
      mapping[u] = v;
      used[v] = true;
      if (extend(index + 1)) return true;
      mapping[u] = kUnreachable;
      used[v] = false;
    }
    return false;
  }
};

}  // namespace

std::optional<std::vector<Node>> find_isomorphism(const Graph& g, const Graph& h) {
  if (g.num_nodes() != h.num_nodes() || g.num_arcs() != h.num_arcs()) {
    return std::nullopt;
  }
  if (g.num_nodes() == 0) return std::vector<Node>{};

  const auto sig_g = signatures(g);
  const auto sig_h = signatures(h);

  // Group h-nodes by signature; reject if the multisets differ.
  std::map<Signature, std::vector<Node>> by_sig;
  for (Node v = 0; v < h.num_nodes(); ++v) by_sig[sig_h[v]].push_back(v);
  {
    std::map<Signature, std::size_t> counts;
    for (Node u = 0; u < g.num_nodes(); ++u) counts[sig_g[u]]++;
    for (const auto& [sig, nodes] : by_sig) {
      const auto it = counts.find(sig);
      if (it == counts.end() || it->second != nodes.size()) return std::nullopt;
    }
  }

  Matcher m{g, h, {}, {}, {}, {}};
  m.candidates.resize(g.num_nodes());
  for (Node u = 0; u < g.num_nodes(); ++u) {
    const auto it = by_sig.find(sig_g[u]);
    if (it == by_sig.end()) return std::nullopt;
    m.candidates[u] = it->second;
  }

  // Order: start from a rarest-signature node, grow along arcs (ignoring
  // direction) so each new node is constrained by mapped neighbors.
  Node start = 0;
  for (Node u = 1; u < g.num_nodes(); ++u) {
    if (m.candidates[u].size() < m.candidates[start].size()) start = u;
  }
  std::vector<bool> queued(g.num_nodes(), false);
  m.order.push_back(start);
  queued[start] = true;
  for (std::size_t head = 0; head < m.order.size(); ++head) {
    for (const Node v : g.neighbors(m.order[head])) {
      if (!queued[v]) {
        queued[v] = true;
        m.order.push_back(v);
      }
    }
  }
  // Append any nodes unreachable along out-arcs (directed or disconnected
  // inputs).
  for (Node u = 0; u < g.num_nodes(); ++u) {
    if (!queued[u]) m.order.push_back(u);
  }

  m.mapping.assign(g.num_nodes(), kUnreachable);
  m.used.assign(h.num_nodes(), false);
  if (!m.extend(0)) return std::nullopt;
  return m.mapping;
}

bool are_isomorphic(const Graph& g, const Graph& h) {
  return find_isomorphism(g, h).has_value();
}

}  // namespace ipg
