#include "graph/graph.hpp"

#include <algorithm>

#include "ipg/static_check.hpp"

namespace ipg {

#ifdef IPG_CONTRACTS_ACTIVE
namespace {

// Transpose-cache coherence audit: the freshly built transpose must list
// exactly the reversed arcs, with every in-neighbor list sorted the way
// the forward adjacency is.
bool transpose_coherent(const Graph& g, const TransposeCsr& t) {
  const Node n = g.num_nodes();
  if (t.offsets.size() != static_cast<std::size_t>(n) + 1) return false;
  if (t.offsets.front() != 0 || t.offsets.back() != g.num_arcs()) return false;
  if (t.targets.size() != g.num_arcs()) return false;
  for (Node v = 0; v < n; ++v) {
    const auto in = t.in_neighbors(v);
    if (!std::is_sorted(in.begin(), in.end())) return false;
  }
  for (Node u = 0; u < n; ++u) {
    for (const Node v : g.neighbors(u)) {
      const auto in = t.in_neighbors(v);
      if (!std::binary_search(in.begin(), in.end(), u)) return false;
    }
  }
  return true;
}

}  // namespace
#endif  // IPG_CONTRACTS_ACTIVE

bool Graph::has_arc(Node u, Node v) const noexcept {
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

bool Graph::is_symmetric() const {
  const Node n = num_nodes();
  for (Node u = 0; u < n; ++u) {
    for (const Node v : neighbors(u)) {
      if (!has_arc(v, u)) return false;
    }
  }
  return true;
}

bool Graph::validate_csr() const {
  if (offsets_.empty() || offsets_.front() != 0) return false;
  if (offsets_.back() != targets_.size()) return false;
  if (!std::is_sorted(offsets_.begin(), offsets_.end())) return false;
  if (!tags_.empty() && tags_.size() != targets_.size()) return false;
  const Node n = num_nodes();
  for (Node u = 0; u < n; ++u) {
    const auto nb = neighbors(u);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      if (nb[i] >= n) return false;
      if (i > 0 && nb[i - 1] >= nb[i]) return false;
    }
  }
  return true;
}

std::uint64_t Graph::memory_bytes() const noexcept {
  return offsets_.size() * sizeof(std::uint64_t) +
         targets_.size() * sizeof(Node) + tags_.size() * sizeof(EdgeTag);
}

const TransposeCsr& Graph::transpose() const {
  LockGuard lock(transpose_cache_.mu);
  if (!transpose_cache_.csr) {
    const Node n = num_nodes();
    auto t = std::make_shared<TransposeCsr>();
    t->offsets.assign(n + 1, 0);
    for (const Node v : targets_) t->offsets[v + 1]++;
    for (Node v = 0; v < n; ++v) t->offsets[v + 1] += t->offsets[v];
    t->targets.resize(targets_.size());
    std::vector<std::uint64_t> cursor(t->offsets.begin(),
                                      t->offsets.end() - 1);
    // Scanning sources in ascending order leaves every in-neighbor list
    // sorted, matching the forward adjacency convention.
    for (Node u = 0; u < n; ++u) {
      for (const Node v : neighbors(u)) t->targets[cursor[v]++] = u;
    }
    IPG_AUDIT(transpose_coherent(*this, *t));
    transpose_cache_.csr = std::move(t);
  }
  return *transpose_cache_.csr;
}

}  // namespace ipg
