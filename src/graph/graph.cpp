#include "graph/graph.hpp"

#include <algorithm>

namespace ipg {

bool Graph::has_arc(Node u, Node v) const noexcept {
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

bool Graph::is_symmetric() const {
  const Node n = num_nodes();
  for (Node u = 0; u < n; ++u) {
    for (const Node v : neighbors(u)) {
      if (!has_arc(v, u)) return false;
    }
  }
  return true;
}

std::uint64_t Graph::memory_bytes() const noexcept {
  return offsets_.size() * sizeof(std::uint64_t) +
         targets_.size() * sizeof(Node) + tags_.size() * sizeof(EdgeTag);
}

const TransposeCsr& Graph::transpose() const {
  std::lock_guard<std::mutex> lock(transpose_cache_.mu);
  if (!transpose_cache_.csr) {
    const Node n = num_nodes();
    auto t = std::make_shared<TransposeCsr>();
    t->offsets.assign(n + 1, 0);
    for (const Node v : targets_) t->offsets[v + 1]++;
    for (Node v = 0; v < n; ++v) t->offsets[v + 1] += t->offsets[v];
    t->targets.resize(targets_.size());
    std::vector<std::uint64_t> cursor(t->offsets.begin(),
                                      t->offsets.end() - 1);
    // Scanning sources in ascending order leaves every in-neighbor list
    // sorted, matching the forward adjacency convention.
    for (Node u = 0; u < n; ++u) {
      for (const Node v : neighbors(u)) t->targets[cursor[v]++] = u;
    }
    transpose_cache_.csr = std::move(t);
  }
  return *transpose_cache_.csr;
}

}  // namespace ipg
