#include "graph/graph.hpp"

#include <algorithm>

namespace ipg {

bool Graph::has_arc(Node u, Node v) const noexcept {
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

bool Graph::is_symmetric() const {
  const Node n = num_nodes();
  for (Node u = 0; u < n; ++u) {
    for (const Node v : neighbors(u)) {
      if (!has_arc(v, u)) return false;
    }
  }
  return true;
}

std::uint64_t Graph::memory_bytes() const noexcept {
  return offsets_.size() * sizeof(std::uint64_t) +
         targets_.size() * sizeof(Node) + tags_.size() * sizeof(EdgeTag);
}

}  // namespace ipg
