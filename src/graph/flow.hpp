#pragma once
// Vertex-disjoint paths and vertex connectivity via unit-capacity maximum
// flow (node splitting + BFS augmentation).
//
// The paper's introduction credits star graphs and their relatives with
// strong "fault tolerance properties"; connectivity is the standard
// measure (a k-connected network survives any k-1 node failures). These
// routines are exact and intended for the instance sizes the tests and
// benches enumerate.

#include "graph/graph.hpp"

namespace ipg {

/// Maximum number of internally vertex-disjoint s -> t paths (Menger).
/// s and t must differ; adjacent pairs are fine (the direct edge counts).
int max_vertex_disjoint_paths(const Graph& g, Node s, Node t);

/// Vertex connectivity of an undirected (symmetric) graph: the minimum
/// number of node deletions that disconnect it (n-1 for complete graphs).
/// Uses the classical scheme: fix v, take the minimum of kappa(v, u) over
/// non-neighbors u and kappa(x, y) over non-adjacent pairs of neighbors
/// of v.
int vertex_connectivity(const Graph& g);

}  // namespace ipg
