#include "graph/dot.hpp"

#include <ostream>
#include <vector>

namespace ipg {

void write_dot(std::ostream& os, const Graph& g, const DotOptions& options) {
  const bool undirected = g.is_symmetric();
  os << (undirected ? "graph " : "digraph ") << options.graph_name << " {\n";

  auto label_of = [&](Node u) {
    return options.label ? options.label(u) : std::to_string(u);
  };

  if (options.modules != nullptr && options.modules->valid(g.num_nodes())) {
    std::vector<std::vector<Node>> members(options.modules->num_modules);
    for (Node u = 0; u < g.num_nodes(); ++u) {
      members[options.modules->module_of[u]].push_back(u);
    }
    for (std::uint32_t m = 0; m < options.modules->num_modules; ++m) {
      os << "  subgraph cluster_" << m << " {\n    label=\"module " << m
         << "\";\n";
      for (const Node u : members[m]) {
        os << "    n" << u << " [label=\"" << label_of(u) << "\"];\n";
      }
      os << "  }\n";
    }
  } else {
    for (Node u = 0; u < g.num_nodes(); ++u) {
      os << "  n" << u << " [label=\"" << label_of(u) << "\"];\n";
    }
  }

  const char* edge_op = undirected ? " -- " : " -> ";
  for (Node u = 0; u < g.num_nodes(); ++u) {
    for (const Node v : g.neighbors(u)) {
      if (undirected && v < u) continue;  // each link once
      os << "  n" << u << edge_op << 'n' << v << ";\n";
    }
  }
  os << "}\n";
}

}  // namespace ipg
