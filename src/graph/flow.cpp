#include "graph/flow.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

#include "util/narrow.hpp"

namespace ipg {

namespace {

/// Residual flow network with unit/infinite capacities.
class FlowNet {
 public:
  explicit FlowNet(int nodes) : head_(as_size(nodes), -1) {}

  void add_edge(int u, int v, int cap) {
    edges_.push_back({v, head_[as_size(u)], cap});
    head_[as_size(u)] = static_cast<int>(edges_.size()) - 1;
    edges_.push_back({u, head_[as_size(v)], 0});
    head_[as_size(v)] = static_cast<int>(edges_.size()) - 1;
  }

  /// Edmonds-Karp; capacities here are tiny (max flow <= max degree).
  int max_flow(int s, int t) {
    int flow = 0;
    std::vector<int> parent_edge(head_.size());
    while (true) {
      std::fill(parent_edge.begin(), parent_edge.end(), -1);
      std::vector<int> queue{s};
      parent_edge[as_size(s)] = -2;
      for (std::size_t qi = 0; qi < queue.size() && parent_edge[as_size(t)] == -1;
           ++qi) {
        const int u = queue[qi];
        for (int e = head_[as_size(u)]; e != -1; e = edges_[as_size(e)].next) {
          const int v = edges_[as_size(e)].to;
          if (edges_[as_size(e)].cap > 0 && parent_edge[as_size(v)] == -1) {
            parent_edge[as_size(v)] = e;
            queue.push_back(v);
          }
        }
      }
      if (parent_edge[as_size(t)] == -1) return flow;
      // Unit capacities along split nodes: each augmentation adds 1.
      for (int v = t; v != s;) {
        const int e = parent_edge[as_size(v)];
        edges_[as_size(e)].cap -= 1;
        edges_[as_size(e ^ 1)].cap += 1;
        v = edges_[as_size(e ^ 1)].to;
      }
      ++flow;
    }
  }

 private:
  struct Edge {
    int to;
    int next;
    int cap;
  };
  std::vector<int> head_;
  std::vector<Edge> edges_;
};

constexpr int kInf = std::numeric_limits<int>::max() / 4;

}  // namespace

int max_vertex_disjoint_paths(const Graph& g, Node s, Node t) {
  assert(s != t && s < g.num_nodes() && t < g.num_nodes());
  // Split every node x into x_in = 2x and x_out = 2x+1; interior nodes get
  // a unit in->out edge, the terminals an uncapacitated one.
  FlowNet net(2 * static_cast<int>(g.num_nodes()));
  for (Node x = 0; x < g.num_nodes(); ++x) {
    const int cap = (x == s || x == t) ? kInf : 1;
    net.add_edge(2 * static_cast<int>(x), 2 * static_cast<int>(x) + 1, cap);
  }
  for (Node u = 0; u < g.num_nodes(); ++u) {
    for (const Node v : g.neighbors(u)) {
      net.add_edge(2 * static_cast<int>(u) + 1, 2 * static_cast<int>(v), 1);
    }
  }
  return net.max_flow(2 * static_cast<int>(s) + 1, 2 * static_cast<int>(t));
}

int vertex_connectivity(const Graph& g) {
  const Node n = g.num_nodes();
  if (n <= 1) return 0;

  // Complete graph: no non-adjacent pair exists; connectivity is n-1.
  // (More generally the loop below only probes non-adjacent pairs.)
  Node v = 0;  // a minimum-degree vertex makes the witness set smallest
  for (Node x = 1; x < n; ++x) {
    if (g.out_degree(x) < g.out_degree(v)) v = x;
  }

  // Some minimum cut avoids at least one vertex of {v} union N(v)
  // (a cut containing all of them would exceed deg(v) >= kappa), so
  // probing flows from each such witness to all its non-neighbors is
  // exact.
  std::vector<Node> witnesses{v};
  for (const Node w : g.neighbors(v)) witnesses.push_back(w);

  int best = static_cast<int>(n) - 1;
  for (const Node w : witnesses) {
    for (Node u = 0; u < n; ++u) {
      if (u == w || g.has_arc(w, u)) continue;
      best = std::min(best, max_vertex_disjoint_paths(g, w, u));
      if (best == 0) return 0;
    }
  }
  return best;
}

}  // namespace ipg
