#pragma once
// Small, fast, reproducible pseudo-random number generation.
//
// All stochastic components of the library (traffic generators, sampled
// metrics, property tests) take an explicit seed so every experiment is
// exactly reproducible; none of them touch global random state.

#include <cstdint>

namespace ipg {

/// SplitMix64: used to expand a user seed into generator state.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256**: the library-wide PRNG. Satisfies the
/// UniformRandomBitGenerator concept so it composes with <random>.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` via SplitMix64.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept;

  /// Uniform integer in [0, bound) without modulo bias (Lemire reduction).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Exponentially distributed value with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace ipg
