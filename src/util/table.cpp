#include "util/table.hpp"

#include <cassert>
#include <cstdio>
#include <ostream>

namespace ipg {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }
std::string Table::num(std::uint64_t v) { return std::to_string(v); }

std::string Table::fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        for (std::size_t pad = row[c].size(); pad < width[c] + 2; ++pad) os << ' ';
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  for (std::size_t i = 0; i + 2 < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

}  // namespace ipg
