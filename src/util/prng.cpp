#include "util/prng.hpp"

#include <cmath>

namespace ipg {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Lemire's multiply-then-reject reduction.
  while (true) {
    const std::uint64_t x = (*this)();
    const unsigned __int128 m =
        static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(bound);
    const std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low >= bound || low >= (-bound) % bound) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

double Xoshiro256::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256::exponential(double rate) noexcept {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

}  // namespace ipg
