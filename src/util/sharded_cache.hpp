#pragma once
// Bounded, sharded, instrumented result cache — the caching substrate of
// the routing serving tier (route::QueryEngine's route cache and
// SuperIPRouter's schedule cache both instantiate it).
//
// Design constraints, in order:
//   1. Hard memory bound: entries never exceed capacity(), whatever the
//      query stream does — an adversarial all-distinct-keys stream churns
//      the FIFO (or bounces off admission) but cannot grow the cache.
//   2. Determinism under any thread interleaving: get_or_compute holds the
//      owning shard's lock across lookup + compute + insert, so for every
//      key the *first* access is a miss and — as long as no eviction
//      removes the key in between — every later access is a hit,
//      regardless of which thread got there first. With an eviction-free
//      working set the final hit/miss/admission counters are therefore a
//      pure function of the query multiset, not of scheduling; the route
//      cache concurrency tests pin exactly this.
//   3. Values are copied out under the lock, never referenced: eviction by
//      another thread can't invalidate what a caller is holding.
//
// Admission control (optional): a key is only *stored* on its second
// distinct miss. A per-shard doorkeeper — a fixed-size fingerprint table,
// bounded memory, deterministic in operation order — remembers recent
// first touches. This is what keeps a scan of never-repeated keys from
// evicting the hot working set (the classic admission argument; compare
// the unbounded SuperIPRouter schedule map this layer replaced).
//
// Eviction is per-shard FIFO: deterministic in operation order and free of
// per-hit bookkeeping (an LRU would dirty a list node on the hot hit
// path). Shard count is a power of two; keys map to shards by hash.

#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ipg {

/// Aggregated cache counters (sums over shards). `lookups == hits +
/// misses` always; `admitted + rejected == misses` when admission is on.
struct ShardedCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t admitted = 0;  ///< misses whose value was stored
  std::uint64_t rejected = 0;  ///< misses rejected by the doorkeeper
  std::uint64_t entries = 0;   ///< currently resident values

  std::uint64_t lookups() const noexcept { return hits + misses; }
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedCache {
 public:
  struct Options {
    /// Total entry bound across shards; 0 disables storage entirely
    /// (every lookup computes, counters still tick).
    std::uint64_t capacity = 1u << 16;
    /// Power of two. More shards = less lock contention; counters and
    /// entry bounds are aggregated over all of them.
    int shards = 64;
    /// Store a value only on its second distinct miss (see header).
    bool admission = true;
  };

  explicit ShardedCache(Options opts) : opts_(opts) {
    if (opts_.shards < 1) opts_.shards = 1;
    while (opts_.shards & (opts_.shards - 1)) ++opts_.shards;  // next pow2
    per_shard_cap_ = opts_.capacity / static_cast<std::uint64_t>(opts_.shards);
    if (opts_.capacity > 0 && per_shard_cap_ == 0) per_shard_cap_ = 1;
    shards_ = std::vector<Shard>(static_cast<std::size_t>(opts_.shards));
    if (opts_.admission && per_shard_cap_ > 0) {
      // Doorkeeper sized at 2x the shard's entry bound: enough slots that
      // a hot working set's fingerprints survive a concurrent cold scan.
      std::size_t slots = 16;
      while (slots < 2 * per_shard_cap_) slots <<= 1;
      for (Shard& s : shards_) s.doorkeeper.assign(slots, 0);
    }
  }

  ShardedCache(const ShardedCache&) = delete;
  ShardedCache& operator=(const ShardedCache&) = delete;

  /// Entry bound actually enforced (capacity rounded to the sharding).
  std::uint64_t capacity() const noexcept {
    return per_shard_cap_ * static_cast<std::uint64_t>(opts_.shards);
  }

  /// Looks `key` up; on a miss runs `compute(out)` to produce the value.
  /// Either way `out` holds the result on return. Atomic per shard: the
  /// shard lock is held across lookup + compute + insert, so concurrent
  /// callers of the same key never compute it twice (the second blocks,
  /// then hits). Returns true on a hit.
  template <typename Compute>
  bool get_or_compute(const Key& key, const Compute& compute, Value& out) {
    const std::uint64_t h = Hash{}(key);
    Shard& s = shards_[h & (static_cast<std::uint64_t>(opts_.shards) - 1)];
    std::lock_guard<std::mutex> lock(s.mu);
    if (per_shard_cap_ > 0) {
      const auto it = s.map.find(key);
      if (it != s.map.end()) {
        ++s.hits;
        out = it->second;
        return true;
      }
    }
    ++s.misses;
    compute(out);
    if (per_shard_cap_ == 0) return false;
    if (opts_.admission && !doorkeeper_passes(s, h)) {
      ++s.rejected;
      return false;
    }
    ++s.admitted;
    if (s.fifo.size() >= per_shard_cap_) {
      s.map.erase(s.fifo.front());
      s.fifo.pop_front();
      ++s.evictions;
    }
    s.fifo.push_back(key);
    s.map.emplace(key, out);
    return false;
  }

  ShardedCacheStats stats() const {
    ShardedCacheStats total;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      total.hits += s.hits;
      total.misses += s.misses;
      total.evictions += s.evictions;
      total.admitted += s.admitted;
      total.rejected += s.rejected;
      total.entries += s.map.size();
    }
    return total;
  }

  /// Drops every entry and doorkeeper fingerprint; counters are kept.
  void clear() {
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      s.map.clear();
      s.fifo.clear();
      for (std::uint64_t& f : s.doorkeeper) f = 0;
    }
  }

  /// Approximate heap bound implied by the configuration: resident
  /// entries + FIFO keys + doorkeeper slots. What the bounded-memory
  /// regression test asserts stays flat under adversarial streams.
  std::uint64_t memory_bound_bytes() const noexcept {
    const std::uint64_t per_entry = sizeof(Key) + sizeof(Value) +
                                    sizeof(void*) * 4;  // map node overhead
    std::uint64_t door = 0;
    for (const Shard& s : shards_) {
      door += s.doorkeeper.size() * sizeof(std::uint64_t);
    }
    return capacity() * (per_entry + sizeof(Key)) + door;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Value, Hash> map;  // never iterated: lookups only
    std::deque<Key> fifo;                      // insertion order, for eviction
    std::vector<std::uint64_t> doorkeeper;     // fingerprint slots (0 = empty)
    std::uint64_t hits = 0, misses = 0, evictions = 0;
    std::uint64_t admitted = 0, rejected = 0;
  };

  /// True when the fingerprint was already present (second distinct
  /// touch). Records it otherwise. Collisions can only *over*-admit,
  /// never lose a legitimate second touch of a still-resident fingerprint.
  static bool doorkeeper_passes(Shard& s, std::uint64_t h) {
    if (s.doorkeeper.empty()) return true;
    // Second hash round so shard-selection bits don't alias slot bits.
    std::uint64_t f = h * 0x9e3779b97f4a7c15ull;
    f ^= f >> 29;
    if (f == 0) f = 1;  // 0 marks an empty slot
    const std::size_t slot = f & (s.doorkeeper.size() - 1);
    if (s.doorkeeper[slot] == f) return true;
    s.doorkeeper[slot] = f;
    return false;
  }

  Options opts_;
  std::uint64_t per_shard_cap_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace ipg
