#pragma once
// Bounded, sharded, instrumented result cache — the caching substrate of
// the routing serving tier (route::QueryEngine's route cache and
// SuperIPRouter's schedule cache both instantiate it).
//
// Design constraints, in order:
//   1. Hard memory bound: entries never exceed capacity(), whatever the
//      query stream does — an adversarial all-distinct-keys stream churns
//      the FIFO (or bounces off admission) but cannot grow the cache.
//   2. Determinism under any thread interleaving: get_or_compute holds the
//      owning shard's lock across lookup + compute + insert, so for every
//      key the *first* access is a miss and — as long as no eviction
//      removes the key in between — every later access is a hit,
//      regardless of which thread got there first. With an eviction-free
//      working set the final hit/miss/admission counters are therefore a
//      pure function of the query multiset, not of scheduling; the route
//      cache concurrency tests pin exactly this.
//   3. Values are copied out under the lock, never referenced: eviction by
//      another thread can't invalidate what a caller is holding.
//
// Admission control (optional): TinyLFU. Each shard keeps a count-min
// sketch of 4 rows of 4-bit counters (16 per word, saturating at 15,
// periodically halved so the frequency estimate tracks the recent stream).
// A missing key is stored only when its estimated frequency clears the
// bar: at least a second distinct touch while the shard has room, and
// strictly more popular than the FIFO's next eviction victim once it is
// full. That second rule is what a doorkeeper bit cannot express — a key
// seen twice in a cold scan no longer displaces a resident key seen fifty
// times. Saturating increments commute (a counter's value depends only on
// how many touches it absorbed, never their order), so the sketch is as
// interleaving-independent as the counters it feeds.
//
// Eviction is per-shard FIFO: deterministic in operation order and free of
// per-hit bookkeeping (an LRU would dirty a list node on the hot hit
// path). Shard count is a power of two; keys map to shards by hash.

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/sync.hpp"

namespace ipg {

/// Aggregated cache counters (sums over shards). `lookups == hits +
/// misses` always; `admitted + rejected == misses` when admission is on.
struct ShardedCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t admitted = 0;  ///< misses whose value was stored
  std::uint64_t rejected = 0;  ///< misses rejected by the TinyLFU filter
  std::uint64_t entries = 0;   ///< currently resident values

  std::uint64_t lookups() const noexcept { return hits + misses; }
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedCache {
 public:
  struct Options {
    /// Total entry bound across shards; 0 disables storage entirely
    /// (every lookup computes, counters still tick).
    std::uint64_t capacity = 1u << 16;
    /// Power of two. More shards = less lock contention; counters and
    /// entry bounds are aggregated over all of them.
    int shards = 64;
    /// TinyLFU admission: store a value only when its sketch frequency
    /// clears the bar (see header).
    bool admission = true;
  };

  explicit ShardedCache(Options opts) : opts_(opts) {
    if (opts_.shards < 1) opts_.shards = 1;
    while (opts_.shards & (opts_.shards - 1)) ++opts_.shards;  // next pow2
    per_shard_cap_ = opts_.capacity / static_cast<std::uint64_t>(opts_.shards);
    if (opts_.capacity > 0 && per_shard_cap_ == 0) per_shard_cap_ = 1;
    shards_ = std::vector<Shard>(static_cast<std::size_t>(opts_.shards));
    if (opts_.admission && per_shard_cap_ > 0) {
      // Sketch rows sized at 2x the shard's entry bound: enough counters
      // that a hot working set's frequencies survive a concurrent cold
      // scan without drowning in collisions.
      std::size_t slots = 16;
      while (slots < 2 * per_shard_cap_) slots <<= 1;
      sketch_slots_ = slots;
      // Halve counters every ~10 cache-fulls of misses so the estimate
      // tracks recent popularity instead of all history.
      sample_period_ = per_shard_cap_ * 10 < 32 ? 32 : per_shard_cap_ * 10;
      for (Shard& s : shards_) {
        // No sharing yet (the cache is still being constructed), but the
        // sketch is a guarded member: take the lock so the thread-safety
        // analysis sees a uniform discipline.
        LockGuard lock(s.mu);
        s.sketch.assign(kSketchRows * (slots / kCountersPerWord), 0);
      }
    }
  }

  ShardedCache(const ShardedCache&) = delete;
  ShardedCache& operator=(const ShardedCache&) = delete;

  /// Entry bound actually enforced (capacity rounded to the sharding).
  std::uint64_t capacity() const noexcept {
    return per_shard_cap_ * static_cast<std::uint64_t>(opts_.shards);
  }

  /// Looks `key` up; on a miss runs `compute(out)` to produce the value.
  /// Either way `out` holds the result on return. Atomic per shard: the
  /// shard lock is held across lookup + compute + insert, so concurrent
  /// callers of the same key never compute it twice (the second blocks,
  /// then hits). Returns true on a hit.
  template <typename Compute>
  bool get_or_compute(const Key& key, const Compute& compute, Value& out) {
    const std::uint64_t h = Hash{}(key);
    Shard& s = shards_[h & (static_cast<std::uint64_t>(opts_.shards) - 1)];
    LockGuard lock(s.mu);
    if (per_shard_cap_ > 0) {
      const auto it = s.map.find(key);
      if (it != s.map.end()) {
        ++s.hits;
        out = it->second;
        return true;
      }
    }
    ++s.misses;
    compute(out);
    if (per_shard_cap_ == 0) return false;
    if (opts_.admission) {
      const std::uint32_t freq = sketch_touch(s, h);
      const bool admit =
          s.fifo.size() < per_shard_cap_
              ? freq >= 2  // room to spare: second distinct touch suffices
              : freq > sketch_estimate(s, Hash{}(s.fifo.front()));
      if (!admit) {
        ++s.rejected;
        return false;
      }
    }
    ++s.admitted;
    if (s.fifo.size() >= per_shard_cap_) {
      s.map.erase(s.fifo.front());
      s.fifo.pop_front();
      ++s.evictions;
    }
    s.fifo.push_back(key);
    s.map.emplace(key, out);
    return false;
  }

  ShardedCacheStats stats() const {
    ShardedCacheStats total;
    for (const Shard& s : shards_) {
      LockGuard lock(s.mu);
      total.hits += s.hits;
      total.misses += s.misses;
      total.evictions += s.evictions;
      total.admitted += s.admitted;
      total.rejected += s.rejected;
      total.entries += s.map.size();
    }
    return total;
  }

  /// Drops every entry and sketch counter; counters are kept.
  void clear() {
    for (Shard& s : shards_) {
      LockGuard lock(s.mu);
      s.map.clear();
      s.fifo.clear();
      for (std::uint64_t& w : s.sketch) w = 0;
      s.sketch_ops = 0;
    }
  }

  /// Approximate heap bound implied by the configuration: resident
  /// entries + FIFO keys + sketch words. What the bounded-memory
  /// regression test asserts stays flat under adversarial streams.
  std::uint64_t memory_bound_bytes() const {
    const std::uint64_t per_entry = sizeof(Key) + sizeof(Value) +
                                    sizeof(void*) * 4;  // map node overhead
    std::uint64_t sketch = 0;
    for (const Shard& s : shards_) {
      LockGuard lock(s.mu);
      sketch += s.sketch.size() * sizeof(std::uint64_t);
    }
    return capacity() * (per_entry + sizeof(Key)) + sketch;
  }

 private:
  static constexpr std::size_t kSketchRows = 4;
  static constexpr std::size_t kCountersPerWord = 16;  // 4-bit counters
  static constexpr std::uint32_t kCounterMax = 15;

  struct Shard {
    mutable Mutex mu;
    // Never iterated: lookups only.
    std::unordered_map<Key, Value, Hash> map IPG_GUARDED_BY(mu);
    // Insertion order, for eviction.
    std::deque<Key> fifo IPG_GUARDED_BY(mu);
    // kSketchRows x slots 4-bit counters.
    std::vector<std::uint64_t> sketch IPG_GUARDED_BY(mu);
    std::uint64_t sketch_ops IPG_GUARDED_BY(mu) = 0;  // misses since halving
    std::uint64_t hits IPG_GUARDED_BY(mu) = 0;
    std::uint64_t misses IPG_GUARDED_BY(mu) = 0;
    std::uint64_t evictions IPG_GUARDED_BY(mu) = 0;
    std::uint64_t admitted IPG_GUARDED_BY(mu) = 0;
    std::uint64_t rejected IPG_GUARDED_BY(mu) = 0;
  };

  /// Second hash round so shard-selection bits don't alias sketch bits;
  /// returns the double-hashing pair the rows stride by.
  static std::pair<std::uint64_t, std::uint64_t> sketch_hashes(
      std::uint64_t h) {
    std::uint64_t a = h * 0x9e3779b97f4a7c15ull;
    a ^= a >> 29;
    std::uint64_t b = a * 0xbf58476d1ce4e5b9ull;
    b ^= b >> 31;
    return {a, b | 1};  // odd stride: hits every slot of a pow2 row
  }

  std::uint32_t sketch_read(const Shard& s, std::size_t row,
                            std::size_t slot) const IPG_REQUIRES(s.mu) {
    const std::size_t word =
        row * (sketch_slots_ / kCountersPerWord) + slot / kCountersPerWord;
    const std::size_t shift = 4 * (slot % kCountersPerWord);
    return static_cast<std::uint32_t>((s.sketch[word] >> shift) & 0xF);
  }

  void sketch_bump(Shard& s, std::size_t row, std::size_t slot) const
      IPG_REQUIRES(s.mu) {
    const std::size_t word =
        row * (sketch_slots_ / kCountersPerWord) + slot / kCountersPerWord;
    const std::size_t shift = 4 * (slot % kCountersPerWord);
    const std::uint64_t cur = (s.sketch[word] >> shift) & 0xF;
    if (cur < kCounterMax) {
      s.sketch[word] += std::uint64_t{1} << shift;
    }
  }

  /// Count-min estimate of `h`'s frequency (no mutation).
  std::uint32_t sketch_estimate(const Shard& s, std::uint64_t h) const
      IPG_REQUIRES(s.mu) {
    const auto [a, b] = sketch_hashes(h);
    std::uint32_t est = kCounterMax;
    for (std::size_t row = 0; row < kSketchRows; ++row) {
      const std::size_t slot = (a + row * b) & (sketch_slots_ - 1);
      const std::uint32_t c = sketch_read(s, row, slot);
      if (c < est) est = c;
    }
    return est;
  }

  /// Records one touch of `h` (saturating per row) and returns the
  /// post-touch estimate. Every sample_period_ touches all counters halve,
  /// so the estimate tracks the recent stream — the TinyLFU aging rule.
  std::uint32_t sketch_touch(Shard& s, std::uint64_t h) const
      IPG_REQUIRES(s.mu) {
    const auto [a, b] = sketch_hashes(h);
    std::uint32_t est = kCounterMax;
    for (std::size_t row = 0; row < kSketchRows; ++row) {
      const std::size_t slot = (a + row * b) & (sketch_slots_ - 1);
      sketch_bump(s, row, slot);
      const std::uint32_t c = sketch_read(s, row, slot);
      if (c < est) est = c;
    }
    if (++s.sketch_ops >= sample_period_) {
      s.sketch_ops = 0;
      for (std::uint64_t& w : s.sketch) {
        w = (w >> 1) & 0x7777777777777777ull;
      }
    }
    return est;
  }

  Options opts_;
  std::uint64_t per_shard_cap_ = 0;
  std::size_t sketch_slots_ = 0;
  std::uint64_t sample_period_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace ipg
