#pragma once
// Plain-text table printing shared by the bench harnesses so every
// reproduced figure/table is emitted in one consistent format.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ipg {

/// Accumulates rows of string cells and prints them as an aligned
/// fixed-width table with a header rule. Intentionally minimal: the bench
/// binaries are the paper's tables, and their output doubles as the
/// machine-readable record in EXPERIMENTS.md.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; it must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience cell formatters.
  static std::string num(std::int64_t v);
  static std::string num(std::uint64_t v);
  static std::string fixed(double v, int digits = 2);

  /// Renders the table (header, rule, rows) to `os`.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ipg
