#pragma once
// Fixed-size thread pool and deterministic parallel-for / parallel-reduce,
// the execution substrate of the exact-analysis engine. Design goals, in
// order: (1) results bit-identical to the serial code path at any thread
// count, (2) zero threading machinery when one thread is requested (the
// caller runs the legacy serial loop itself), (3) no allocation on the
// dispatch hot path beyond the per-chunk partials the caller asks for.
//
// Determinism is achieved structurally: work is split into chunks by
// *index*, each chunk accumulates into its own partial, and partials are
// merged in chunk order after the barrier. Thread scheduling decides only
// *when* a chunk runs, never what it computes or the merge order.

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.hpp"

namespace ipg {

/// Thread-count policy plumbed through the analysis layer.
///
/// `num_threads == 0` means "auto": the IPG_THREADS environment variable
/// if set to a positive integer, otherwise std::thread::hardware_concurrency().
/// A resolved count of 1 selects the exact legacy serial code path in every
/// routine that accepts a policy (no pool, no partials, no merge).
struct ExecPolicy {
  int num_threads = 0;

  /// The effective thread count, always >= 1.
  int resolved_threads() const;

  bool serial() const { return resolved_threads() == 1; }

  static ExecPolicy serial_policy() { return ExecPolicy{1}; }
};

/// Fixed-size pool of `threads - 1` workers; the calling thread is the
/// remaining worker, so `ThreadPool(1)` spawns nothing and parallel_for
/// degenerates to a plain loop on the caller.
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const noexcept { return threads_; }

  /// Runs `body(worker, chunk, begin, end)` for every chunk of [0, n)
  /// split into `num_chunks` near-equal contiguous ranges; blocks until all
  /// chunks finish. `worker` is a stable id in [0, num_threads()) usable to
  /// index per-thread scratch. Chunks are claimed dynamically (an atomic
  /// counter), so the chunk -> worker mapping is nondeterministic — callers
  /// must keep per-chunk state per *chunk*, not per worker, whenever merge
  /// order matters. The first exception thrown by any chunk is rethrown on
  /// the calling thread after the barrier.
  void parallel_for(
      std::uint64_t n, std::uint64_t num_chunks,
      const std::function<void(int worker, std::uint64_t chunk,
                               std::uint64_t begin, std::uint64_t end)>& body)
      IPG_EXCLUDES(mu_);

 private:
  void worker_loop(int worker) IPG_EXCLUDES(mu_);
  void run_chunks(int worker) IPG_EXCLUDES(mu_);

  struct Job {
    std::uint64_t n = 0;
    std::uint64_t num_chunks = 0;
    const std::function<void(int, std::uint64_t, std::uint64_t,
                             std::uint64_t)>* body = nullptr;
    std::atomic<std::uint64_t> next_chunk{0};
  };

  int threads_;
  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar work_cv_;   // workers wait for a job / shutdown
  CondVar done_cv_;   // caller waits for workers to retire
  // Deliberately NOT guarded by mu_: the job slot is protected by the
  // generation protocol, not the lock — fields are installed under mu_,
  // then stay frozen until every participating worker has retired (the
  // active_workers_ barrier), so run_chunks reads them lock-free. The
  // thread-safety analysis cannot express that protocol; TSan checks it.
  Job job_;
  std::uint64_t generation_ IPG_GUARDED_BY(mu_) = 0;  // bumped per parallel_for
  int active_workers_ IPG_GUARDED_BY(mu_) = 0;   // workers inside run_chunks
  bool job_open_ IPG_GUARDED_BY(mu_) = false;    // late wakers skip done jobs
  bool shutdown_ IPG_GUARDED_BY(mu_) = false;
  std::exception_ptr first_error_ IPG_GUARDED_BY(mu_);
};

/// Deterministic chunked reduction: splits [0, n) into `num_chunks`
/// contiguous chunks, runs `work(worker, partial, begin, end)` on a
/// default-constructed Partial per chunk, then folds the chunk partials
/// into `init` *in chunk order* with `merge(init, partial)`. With
/// associative merges over exact values this is bit-identical to the
/// serial left-to-right loop at every thread count.
template <typename Partial, typename Work, typename Merge>
Partial parallel_reduce(ThreadPool& pool, std::uint64_t n,
                        std::uint64_t num_chunks, Partial init,
                        const Work& work, const Merge& merge) {
  if (num_chunks == 0 || n == 0) return init;
  std::vector<Partial> partials(num_chunks);
  pool.parallel_for(n, num_chunks,
                    [&](int worker, std::uint64_t chunk, std::uint64_t begin,
                        std::uint64_t end) {
                      work(worker, partials[chunk], begin, end);
                    });
  for (Partial& p : partials) merge(init, p);
  return init;
}

}  // namespace ipg
