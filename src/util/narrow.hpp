#pragma once
// Checked narrowing helpers backing the -Wconversion/-Wsign-conversion
// warning wall. The public API of the library speaks `int` (labels are
// short, counts fit easily), while containers index with std::size_t;
// these helpers make every signed<->unsigned crossing explicit and, in
// Debug builds, assert that the value survives the trip.

#include <cassert>
#include <concepts>
#include <cstddef>
#include <limits>

namespace ipg {

/// Documented-lossy cast (gsl::narrow_cast flavor): states that the
/// truncation is intentional at the call site.
template <class To, class From>
  requires std::integral<To> && std::integral<From>
constexpr To narrow_cast(From v) noexcept {
  return static_cast<To>(v);
}

/// Container-index cast: the value is a non-negative count or index.
constexpr std::size_t as_size(std::integral auto v) noexcept {
  if constexpr (std::signed_integral<decltype(v)>) {
    assert(v >= 0 && "as_size: negative index/count");
  }
  return static_cast<std::size_t>(v);
}

/// Inverse trip: a size known to fit the `int`-speaking API surface.
constexpr int as_int(std::integral auto v) noexcept {
  if constexpr (std::unsigned_integral<decltype(v)>) {
    assert(v <= static_cast<decltype(v)>(std::numeric_limits<int>::max()) &&
           "as_int: value exceeds int range");
  } else {
    assert(v >= std::numeric_limits<int>::min() &&
           v <= std::numeric_limits<int>::max() && "as_int: out of int range");
  }
  return static_cast<int>(v);
}

}  // namespace ipg
