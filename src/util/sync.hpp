#pragma once
// The concurrency capability layer: every mutex, condition variable and
// lock in the tree goes through these wrappers so Clang's thread-safety
// analysis (-Wthread-safety) can prove lock discipline at compile time —
// the static counterpart of the TSan CI lane. docs/MODEL.md §15 describes
// the conventions; tools/ipg_lint.py's `naked-sync` rule enforces that no
// std::mutex / std::condition_variable / std:: lock RAII type is used
// outside this header, and `manual-lock` that .lock()/.unlock() never
// appear outside the RAII wrappers below.
//
// Annotation conventions:
//   * every member written under a lock is declared `IPG_GUARDED_BY(mu_)`;
//   * helpers that assume the lock is already held are `IPG_REQUIRES(mu)`;
//   * public entry points that take the lock themselves may advertise
//     `IPG_EXCLUDES(mu_)` so re-entry deadlocks are compile errors;
//   * state protected by a protocol other than a mutex (e.g. the
//     ThreadPool job slot, stable per generation) stays *unannotated* with
//     a comment naming the protocol — never annotate what the analysis
//     cannot check.
//
// CondVar deliberately has no predicate-taking wait: the analysis checks
// lambda bodies as separate functions with no capabilities held, so a
// `wait(lock, [&]{ return guarded_; })` call would warn on every guarded
// read inside the predicate. Write the loop out instead —
// `while (!cond) cv.wait(lock);` — which the analysis follows exactly.
//
// Off Clang the attribute macros expand to nothing, so GCC builds (and
// cppcheck, clang-format, coverage) see plain std synchronization.

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define IPG_TSA(x) __attribute__((x))
#endif
#endif
#ifndef IPG_TSA
#define IPG_TSA(x)
#endif

#define IPG_CAPABILITY(x) IPG_TSA(capability(x))
#define IPG_SCOPED_CAPABILITY IPG_TSA(scoped_lockable)
#define IPG_GUARDED_BY(x) IPG_TSA(guarded_by(x))
#define IPG_PT_GUARDED_BY(x) IPG_TSA(pt_guarded_by(x))
#define IPG_ACQUIRED_BEFORE(...) IPG_TSA(acquired_before(__VA_ARGS__))
#define IPG_ACQUIRED_AFTER(...) IPG_TSA(acquired_after(__VA_ARGS__))
#define IPG_REQUIRES(...) IPG_TSA(requires_capability(__VA_ARGS__))
#define IPG_ACQUIRE(...) IPG_TSA(acquire_capability(__VA_ARGS__))
#define IPG_RELEASE(...) IPG_TSA(release_capability(__VA_ARGS__))
#define IPG_TRY_ACQUIRE(...) IPG_TSA(try_acquire_capability(__VA_ARGS__))
#define IPG_EXCLUDES(...) IPG_TSA(locks_excluded(__VA_ARGS__))
#define IPG_RETURN_CAPABILITY(x) IPG_TSA(lock_returned(x))
#define IPG_NO_THREAD_SAFETY_ANALYSIS IPG_TSA(no_thread_safety_analysis)

namespace ipg {

class CondVar;
class UniqueLock;

/// std::mutex with the `capability` attribute, so members can be declared
/// IPG_GUARDED_BY it and lock-holding methods IPG_REQUIRES it.
class IPG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() IPG_ACQUIRE() { mu_.lock(); }
  void unlock() IPG_RELEASE() { mu_.unlock(); }
  bool try_lock() IPG_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class UniqueLock;
  std::mutex mu_;
};

/// std::lock_guard over an ipg::Mutex: acquires for exactly one scope.
class IPG_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) IPG_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() IPG_RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock over an ipg::Mutex: the lock handle CondVar::wait
/// releases and reacquires. Relockable — lock()/unlock() move the scoped
/// capability in and out of the held state, and the analysis tracks it.
class IPG_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) IPG_ACQUIRE(mu) : inner_(mu.mu_) {}
  ~UniqueLock() IPG_RELEASE() {}

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() IPG_ACQUIRE() { inner_.lock(); }
  void unlock() IPG_RELEASE() { inner_.unlock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> inner_;
};

/// std::condition_variable paired with UniqueLock. wait() returns with the
/// lock reacquired, so from the analysis's point of view the capability is
/// held continuously across the call — which is exactly the caller-visible
/// contract.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`, blocks, reacquires before returning.
  /// Spurious wakeups happen: always call inside a `while (!cond)` loop
  /// (see the header comment for why there is no predicate overload).
  void wait(UniqueLock& lock) { cv_.wait(lock.inner_); }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ipg
