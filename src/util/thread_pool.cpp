#include "util/thread_pool.hpp"

#include <cstdlib>
#include "util/narrow.hpp"

namespace ipg {

namespace {

int auto_threads() {
  if (const char* env = std::getenv("IPG_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024) {
      return static_cast<int>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// The chunk-claim counter is a pure work-distribution ticket: each chunk
// id is handed out exactly once by the RMW's atomicity alone, and the
// done_cv_ barrier in parallel_for sequences every chunk's writes before
// the caller resumes — no inter-thread ordering rides on the counter.
// ipg-lint: allow(relaxed-order)
constexpr std::memory_order kTicketOrder = std::memory_order_relaxed;

}  // namespace

int ExecPolicy::resolved_threads() const {
  if (num_threads >= 1) return num_threads;
  return auto_threads();
}

ThreadPool::ThreadPool(int threads) : threads_(threads < 1 ? 1 : threads) {
  workers_.reserve(as_size(threads_ - 1));
  for (int w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    LockGuard lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_chunks(int worker) {
  // Job fields are stable for the whole generation: the caller only
  // installs a new job after every participating worker has left this
  // function (the active_workers_ barrier in parallel_for).
  const std::uint64_t n = job_.n;
  const std::uint64_t num_chunks = job_.num_chunks;
  const auto* body = job_.body;
  // Near-equal contiguous split: the first `n % num_chunks` chunks get one
  // extra element. Chunk boundaries depend only on (n, num_chunks), never
  // on scheduling.
  const std::uint64_t base = n / num_chunks;
  const std::uint64_t extra = n % num_chunks;
  std::exception_ptr error;
  for (;;) {
    const std::uint64_t c = job_.next_chunk.fetch_add(1, kTicketOrder);
    if (c >= num_chunks) break;
    const std::uint64_t begin = c * base + (c < extra ? c : extra);
    const std::uint64_t end = begin + base + (c < extra ? 1 : 0);
    if (!error) {
      try {
        (*body)(worker, c, begin, end);
      } catch (...) {
        error = std::current_exception();
      }
    }
  }
  if (error) {
    LockGuard lock(mu_);
    if (!first_error_) first_error_ = error;
  }
}

void ThreadPool::worker_loop(int worker) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      UniqueLock lock(mu_);
      while (!shutdown_ && generation_ == seen_generation) {
        work_cv_.wait(lock);
      }
      if (shutdown_) return;
      seen_generation = generation_;
      // A job can complete (all chunks claimed and finished by the other
      // participants) before this worker ever wakes; the caller then closes
      // it. Joining a closed job would race with the next install, so late
      // wakers go back to sleep.
      if (!job_open_) continue;
      ++active_workers_;
    }
    run_chunks(worker);
    {
      LockGuard lock(mu_);
      --active_workers_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(
    std::uint64_t n, std::uint64_t num_chunks,
    const std::function<void(int, std::uint64_t, std::uint64_t,
                             std::uint64_t)>& body) {
  if (n == 0 || num_chunks == 0) return;
  if (num_chunks > n) num_chunks = n;
  if (threads_ == 1) {
    // Serial degenerate case: same chunk boundaries, no synchronization.
    const std::uint64_t base = n / num_chunks;
    const std::uint64_t extra = n % num_chunks;
    for (std::uint64_t c = 0; c < num_chunks; ++c) {
      const std::uint64_t begin = c * base + (c < extra ? c : extra);
      body(0, c, begin, begin + base + (c < extra ? 1 : 0));
    }
    return;
  }
  {
    LockGuard lock(mu_);
    job_.n = n;
    job_.num_chunks = num_chunks;
    job_.body = &body;
    // The reset is published by the mu_ release below; workers read the
    // counter only after acquiring mu_ in worker_loop.
    job_.next_chunk.store(0, kTicketOrder);
    first_error_ = nullptr;
    job_open_ = true;
    ++generation_;
  }
  work_cv_.notify_all();
  run_chunks(/*worker=*/0);  // the caller is worker 0
  std::exception_ptr error;
  {
    // Wait until every woken worker has left run_chunks: afterwards all
    // chunk bodies have completed (happens-before via mu_) and the job slot
    // is free for the next call.
    UniqueLock lock(mu_);
    while (active_workers_ != 0) done_cv_.wait(lock);
    job_open_ = false;  // closed under the same lock hold as the last check
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace ipg
