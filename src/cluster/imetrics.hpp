#pragma once
// The paper's packaging figures of merit (Sections 5.2-5.4):
//   I-degree       max over modules of average per-node off-module links;
//   I-diameter     max number of off-module hops between any node pair;
//   avg I-distance expected off-module hops for uniform random pairs;
//   ID-cost        I-degree * diameter;
//   II-cost        I-degree * I-diameter.
//
// I-distances are computed exactly on the contracted module graph: inside
// a module every hop is free, so the minimum number of off-module hops
// between u and v equals the module-graph distance between their modules
// (valid whenever modules are internally connected, which the tests check
// via modules_internally_connected()).

#include <cstdint>
#include <span>

#include "cluster/clustering.hpp"
#include "graph/graph.hpp"
#include "util/thread_pool.hpp"

namespace ipg {

struct OrbitQuotient;  // analysis/orbit.hpp

/// Maximum over modules of (off-module arc endpoints in the module) /
/// (module size). For symmetric digraphs this counts each undirected
/// off-module link once per endpoint, i.e. per-node off-module links.
double i_degree(const Graph& g, const Clustering& c);

/// The contracted module graph (same as quotient_graph by module id).
Graph module_graph(const Graph& g, const Clustering& c);

struct IDistanceStats {
  Dist i_diameter = 0;
  double avg_i_distance = 0.0;  ///< over ordered pairs of distinct nodes
  bool connected = true;
};

/// Exact I-distance statistics from all-pairs BFS on `mod_graph`, weighted
/// by module sizes (within-module pairs contribute distance 0).
IDistanceStats i_distance_stats(const Graph& mod_graph,
                                std::span<const std::uint32_t> module_sizes);

/// Parallel variant: source modules are swept in chunks with per-thread
/// BFS scratch and the long-double partial sums merged in chunk order.
/// All summands are integer-valued, so results are bit-identical to the
/// serial path at every thread count.
IDistanceStats i_distance_stats(const Graph& mod_graph,
                                std::span<const std::uint32_t> module_sizes,
                                const ExecPolicy& exec);

/// Orbit-compressed variant: sweeps only the representative module of
/// each orbit of `module_orbits` (see module_orbit_quotient), folding each
/// representative's partials with the orbit's module count — orbit-mate
/// modules are automorphism images of each other, so they contribute
/// identical weighted distance profiles. All folded summands stay
/// integer-valued, so the result is bit-identical to the full sweep at
/// every thread count. `module_orbits` must partition exactly the module
/// id space of `mod_graph`, built from a module-preserving node quotient.
IDistanceStats i_distance_stats(const Graph& mod_graph,
                                std::span<const std::uint32_t> module_sizes,
                                const OrbitQuotient& module_orbits,
                                const ExecPolicy& exec);

/// Same, but sampling `samples` source modules (for module graphs too big
/// for all-pairs). avg is unbiased over the sampled sources; i_diameter is
/// the max sampled eccentricity (a lower bound that is tight for the
/// near-symmetric module graphs in this library).
IDistanceStats i_distance_stats_sampled(const Graph& mod_graph,
                                        std::span<const std::uint32_t> module_sizes,
                                        int samples, std::uint64_t seed);

/// Convenience: full I-metrics of an explicit network + clustering.
struct IMetrics {
  double i_degree = 0.0;
  Dist i_diameter = 0;
  double avg_i_distance = 0.0;
};

IMetrics i_metrics(const Graph& g, const Clustering& c);

/// Parallel variant: the module-graph all-pairs sweep (the cost that
/// dominates on large instances) honors `exec`; results are bit-identical
/// to the serial overload.
IMetrics i_metrics(const Graph& g, const Clustering& c,
                   const ExecPolicy& exec);

/// Orbit-compressed variant: the module-graph sweep runs from orbit
/// representative modules only (see the i_distance_stats overload above).
IMetrics i_metrics(const Graph& g, const Clustering& c,
                   const OrbitQuotient& module_orbits,
                   const ExecPolicy& exec);

}  // namespace ipg
