#pragma once
// The module assignments the paper uses for each comparator network
// (Section 5.3): whole nuclei for super-IP graphs, sub-cubes for
// hypercubes, sub-stars for star graphs, most-significant-digit blocks for
// de Bruijn graphs, rectangular tiles for 2-D tori, cycles for CCC.

#include <cstdint>

#include "cluster/clustering.hpp"
#include "ipg/build.hpp"
#include "ipg/families.hpp"

namespace ipg {

/// One nucleus per module for an explicit super-IP graph (two nodes share
/// a module iff their labels agree outside the leftmost m symbols).
Clustering cluster_by_nucleus(const IPGraph& g, int m);

/// One nucleus per module for a tuple-space super network.
Clustering cluster_tuple(const TupleNetwork& net);

/// Hypercube Q_n partitioned into 2^(n - module_bits) sub-cubes of
/// 2^module_bits nodes (low address bits vary inside a module).
Clustering cluster_hypercube(int n, int module_bits);

/// Star graph S_n partitioned into sub-stars: nodes sharing the symbols at
/// positions substar..n-1 share a module (modules are substar!-node
/// sub-star graphs). `n` must match the explicit star_graph(n) id scheme.
Clustering cluster_star(int n, int substar);

/// De Bruijn B(d, n) partitioned by the most significant n - low_digits
/// digits (modules of d^low_digits nodes).
Clustering cluster_de_bruijn(int d, int n, int low_digits);

/// 2-D torus partitioned into tile_r x tile_c rectangular tiles
/// (rows % tile_r == 0, cols % tile_c == 0).
Clustering cluster_torus2d(int rows, int cols, int tile_r, int tile_c);

/// CCC(n) with one n-node cycle per module.
Clustering cluster_ccc(int n);

/// Module graph of HSN(2, Q_n) (= HCN(n,n) without diameter links) when
/// each nucleus is *subdivided* into 2^module_bits-node sub-cubes to meet a
/// module-size budget (the Fig. 3 regime where the nucleus outgrows a
/// module). Built directly on (v1 >> module_bits, v2) pairs, so it scales
/// to nuclei far beyond explicit enumeration.
Graph hcn_subcube_module_graph(int n, int module_bits);

/// Module graph of a super network with nucleus size M and the given block
/// super-generators, under one-nucleus-per-module packaging: nodes are the
/// suffix tuples (v2..vl); an arc per super-generator image with the
/// leading coordinate ranging freely over the module. Exact and far
/// cheaper than contracting the full network.
Graph super_module_graph(Node nucleus_size, int l,
                         std::span<const Generator> super_gens);

/// Module graph of the star graph S_n under sub-star packaging: modules
/// are the arrangements of the fixed suffix (positions substar..n-1);
/// generator (1, i) with i > substar replaces suffix position i by any of
/// the substar symbols currently inside the module. Built directly on
/// suffix arrangements, so exact star I-metrics scale to n ~ 10 where the
/// full graph has n! nodes.
Graph star_module_graph(int n, int substar);

}  // namespace ipg
