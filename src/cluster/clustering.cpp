#include "cluster/clustering.hpp"

#include <algorithm>
#include <cassert>

namespace ipg {

std::vector<std::uint32_t> Clustering::module_sizes() const {
  std::vector<std::uint32_t> sizes(num_modules, 0);
  for (const std::uint32_t m : module_of) sizes[m]++;
  return sizes;
}

std::uint32_t Clustering::max_module_size() const {
  const auto sizes = module_sizes();
  return sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
}

bool Clustering::valid(Node num_nodes) const {
  if (module_of.size() != num_nodes) return false;
  for (const std::uint32_t m : module_of) {
    if (m >= num_modules) return false;
  }
  return true;
}

bool modules_internally_connected(const Graph& g, const Clustering& c) {
  assert(c.valid(g.num_nodes()));
  // Union-find over same-module arcs; then each module must collapse to a
  // single component.
  std::vector<Node> parent(g.num_nodes());
  for (Node u = 0; u < g.num_nodes(); ++u) parent[u] = u;
  const auto find = [&](Node x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (Node u = 0; u < g.num_nodes(); ++u) {
    for (const Node v : g.neighbors(u)) {
      if (c.module_of[u] == c.module_of[v]) parent[find(u)] = find(v);
    }
  }
  std::vector<Node> root(c.num_modules, kUnreachable);
  for (Node u = 0; u < g.num_nodes(); ++u) {
    const Node r = find(u);
    Node& expected = root[c.module_of[u]];
    if (expected == kUnreachable) {
      expected = r;
    } else if (expected != r) {
      return false;
    }
  }
  return true;
}

}  // namespace ipg
