#include "cluster/imetrics.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/quotient.hpp"
#include "util/prng.hpp"

namespace ipg {

double i_degree(const Graph& g, const Clustering& c) {
  assert(c.valid(g.num_nodes()));
  std::vector<std::uint64_t> off_links(c.num_modules, 0);
  for (Node u = 0; u < g.num_nodes(); ++u) {
    for (const Node v : g.neighbors(u)) {
      if (c.module_of[u] != c.module_of[v]) off_links[c.module_of[u]]++;
    }
  }
  const auto sizes = c.module_sizes();
  double worst = 0.0;
  for (std::uint32_t m = 0; m < c.num_modules; ++m) {
    if (sizes[m] == 0) continue;
    worst = std::max(worst, static_cast<double>(off_links[m]) /
                                static_cast<double>(sizes[m]));
  }
  return worst;
}

Graph module_graph(const Graph& g, const Clustering& c) {
  return quotient_graph(g, c.module_of, c.num_modules);
}

namespace {

IDistanceStats stats_from_sources(const Graph& mod_graph,
                                  std::span<const std::uint32_t> module_sizes,
                                  std::span<const Node> sources) {
  assert(module_sizes.size() == mod_graph.num_nodes());
  IDistanceStats out;
  BfsScratch scratch(mod_graph.num_nodes());
  long double weighted_sum = 0.0L;
  long double weighted_pairs = 0.0L;
  std::uint64_t total_nodes = 0;
  for (const std::uint32_t s : module_sizes) total_nodes += s;

  for (const Node src : sources) {
    const auto dist = scratch.run(mod_graph, src);
    const long double src_size = module_sizes[src];
    for (Node m = 0; m < mod_graph.num_nodes(); ++m) {
      if (dist[m] == kUnreachable) {
        out.connected = false;
        continue;
      }
      out.i_diameter = std::max(out.i_diameter, dist[m]);
      weighted_sum += src_size * static_cast<long double>(module_sizes[m]) *
                      static_cast<long double>(dist[m]);
    }
    // Ordered pairs with a distinct partner, src module as source.
    weighted_pairs += src_size * static_cast<long double>(total_nodes - 1);
  }
  out.avg_i_distance =
      weighted_pairs == 0.0L
          ? 0.0
          : static_cast<double>(weighted_sum / weighted_pairs);
  return out;
}

}  // namespace

IDistanceStats i_distance_stats(const Graph& mod_graph,
                                std::span<const std::uint32_t> module_sizes) {
  std::vector<Node> all(mod_graph.num_nodes());
  for (Node m = 0; m < mod_graph.num_nodes(); ++m) all[m] = m;
  return stats_from_sources(mod_graph, module_sizes, all);
}

IDistanceStats i_distance_stats_sampled(const Graph& mod_graph,
                                        std::span<const std::uint32_t> module_sizes,
                                        int samples, std::uint64_t seed) {
  if (static_cast<std::uint64_t>(samples) >= mod_graph.num_nodes()) {
    return i_distance_stats(mod_graph, module_sizes);
  }
  Xoshiro256 rng(seed);
  std::vector<Node> sources(samples);
  for (Node& s : sources) {
    s = static_cast<Node>(rng.below(mod_graph.num_nodes()));
  }
  return stats_from_sources(mod_graph, module_sizes, sources);
}

IMetrics i_metrics(const Graph& g, const Clustering& c) {
  IMetrics out;
  out.i_degree = i_degree(g, c);
  const Graph mg = module_graph(g, c);
  const auto sizes = c.module_sizes();
  const IDistanceStats s = i_distance_stats(mg, sizes);
  out.i_diameter = s.i_diameter;
  out.avg_i_distance = s.avg_i_distance;
  return out;
}

}  // namespace ipg
