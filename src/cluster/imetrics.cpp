#include "cluster/imetrics.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <vector>

#include "analysis/orbit.hpp"
#include "graph/bfs.hpp"
#include "graph/quotient.hpp"
#include "ipg/static_check.hpp"
#include "util/prng.hpp"
#include "util/narrow.hpp"

namespace ipg {

double i_degree(const Graph& g, const Clustering& c) {
  assert(c.valid(g.num_nodes()));
  std::vector<std::uint64_t> off_links(c.num_modules, 0);
  for (Node u = 0; u < g.num_nodes(); ++u) {
    for (const Node v : g.neighbors(u)) {
      if (c.module_of[u] != c.module_of[v]) off_links[c.module_of[u]]++;
    }
  }
  const auto sizes = c.module_sizes();
  double worst = 0.0;
  for (std::uint32_t m = 0; m < c.num_modules; ++m) {
    if (sizes[m] == 0) continue;
    worst = std::max(worst, static_cast<double>(off_links[m]) /
                                static_cast<double>(sizes[m]));
  }
  return worst;
}

Graph module_graph(const Graph& g, const Clustering& c) {
  return quotient_graph(g, c.module_of, c.num_modules);
}

namespace {

/// Per-chunk partial of the weighted I-distance sweep. The long-double
/// sums only ever hold integer-valued terms (module sizes times integer
/// distances), which an 80/64-bit mantissa represents exactly at this
/// library's scales — so chunk-order merging is bit-identical to the
/// serial left-to-right accumulation.
struct IDistancePartial {
  Dist i_diameter = 0;
  bool disconnected = false;
  long double weighted_sum = 0.0L;
  long double weighted_pairs = 0.0L;
};

void accumulate_idistance_source(const Graph& mod_graph,
                                 std::span<const std::uint32_t> module_sizes,
                                 std::uint64_t total_nodes, BfsScratch& scratch,
                                 Node src, IDistancePartial& p,
                                 std::uint64_t weight = 1) {
  const auto dist = scratch.run(mod_graph, src);
  // Orbit fold: a representative stands for `weight` source modules with
  // identical size and distance profile, and both sums are linear in
  // src_size — so scaling it keeps every summand integer-valued (exact in
  // a long double) and reproduces the brute sweep bit for bit.
  const long double src_size =
      static_cast<long double>(weight) *
      static_cast<long double>(module_sizes[src]);
  for (Node m = 0; m < mod_graph.num_nodes(); ++m) {
    if (dist[m] == kUnreachable) {
      p.disconnected = true;
      continue;
    }
    p.i_diameter = std::max(p.i_diameter, dist[m]);
    p.weighted_sum += src_size * static_cast<long double>(module_sizes[m]) *
                      static_cast<long double>(dist[m]);
  }
  // Ordered pairs with a distinct partner, src module as source.
  p.weighted_pairs += src_size * static_cast<long double>(total_nodes - 1);
}

IDistanceStats finish_idistance(const IDistancePartial& p) {
  IDistanceStats out;
  out.i_diameter = p.i_diameter;
  out.connected = !p.disconnected;
  out.avg_i_distance =
      p.weighted_pairs == 0.0L
          ? 0.0
          : static_cast<double>(p.weighted_sum / p.weighted_pairs);
  return out;
}

IDistanceStats stats_from_sources(const Graph& mod_graph,
                                  std::span<const std::uint32_t> module_sizes,
                                  std::span<const Node> sources,
                                  const ExecPolicy& exec = ExecPolicy::serial_policy(),
                                  std::span<const std::uint64_t> weights = {}) {
  assert(module_sizes.size() == mod_graph.num_nodes());
  assert(weights.empty() || weights.size() == sources.size());
  std::uint64_t total_nodes = 0;
  for (const std::uint32_t s : module_sizes) total_nodes += s;
  const auto weight_of = [&weights](std::uint64_t i) {
    return weights.empty() ? std::uint64_t{1} : weights[as_size(i)];
  };

  const int threads = exec.resolved_threads();
  if (threads == 1) {
    IDistancePartial p;
    BfsScratch scratch(mod_graph.num_nodes());
    for (std::uint64_t i = 0; i < sources.size(); ++i) {
      accumulate_idistance_source(mod_graph, module_sizes, total_nodes,
                                  scratch, sources[as_size(i)], p,
                                  weight_of(i));
    }
    return finish_idistance(p);
  }

  ThreadPool pool(threads);
  const std::uint64_t num_chunks =
      std::min<std::uint64_t>(sources.size(),
                              static_cast<std::uint64_t>(threads) * 4);
  std::vector<IDistancePartial> partials(num_chunks);
  std::vector<std::unique_ptr<BfsScratch>> scratch(as_size(threads));
  pool.parallel_for(
      sources.size(), num_chunks,
      [&](int worker, std::uint64_t chunk, std::uint64_t begin,
          std::uint64_t end) {
        if (!scratch[as_size(worker)]) {
          scratch[as_size(worker)] =
              std::make_unique<BfsScratch>(mod_graph.num_nodes());
        }
        for (std::uint64_t i = begin; i < end; ++i) {
          accumulate_idistance_source(mod_graph, module_sizes, total_nodes,
                                      *scratch[as_size(worker)],
                                      sources[as_size(i)], partials[chunk],
                                      weight_of(i));
        }
      });
  IDistancePartial merged;
  for (const IDistancePartial& p : partials) {
    merged.i_diameter = std::max(merged.i_diameter, p.i_diameter);
    merged.disconnected = merged.disconnected || p.disconnected;
    merged.weighted_sum += p.weighted_sum;
    merged.weighted_pairs += p.weighted_pairs;
  }
  return finish_idistance(merged);
}

}  // namespace

IDistanceStats i_distance_stats(const Graph& mod_graph,
                                std::span<const std::uint32_t> module_sizes) {
  return i_distance_stats(mod_graph, module_sizes, ExecPolicy::serial_policy());
}

IDistanceStats i_distance_stats(const Graph& mod_graph,
                                std::span<const std::uint32_t> module_sizes,
                                const ExecPolicy& exec) {
  std::vector<Node> all(mod_graph.num_nodes());
  for (Node m = 0; m < mod_graph.num_nodes(); ++m) all[m] = m;
  return stats_from_sources(mod_graph, module_sizes, all, exec);
}

IDistanceStats i_distance_stats(const Graph& mod_graph,
                                std::span<const std::uint32_t> module_sizes,
                                const OrbitQuotient& module_orbits,
                                const ExecPolicy& exec) {
  IPG_CONTRACT(module_orbits.num_nodes == mod_graph.num_nodes());
  std::vector<Node> sources(module_orbits.representatives.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    sources[i] = narrow_cast<Node>(module_orbits.representatives[i]);
#ifdef IPG_CONTRACTS_ACTIVE
    // The fold assumes orbit-mate modules have the representative's size
    // (automorphisms map modules onto modules bijectively); check it for
    // the whole orbit so a mismatched clustering fails loudly.
    for (Node mod = 0; mod < mod_graph.num_nodes(); ++mod) {
      if (module_orbits.orbit_of.empty() ||
          module_orbits.orbit_of[mod] == i) {
        IPG_CONTRACT(module_sizes[mod] == module_sizes[sources[i]]);
      }
    }
#endif
  }
  return stats_from_sources(mod_graph, module_sizes, sources, exec,
                            module_orbits.multiplicity);
}

IDistanceStats i_distance_stats_sampled(const Graph& mod_graph,
                                        std::span<const std::uint32_t> module_sizes,
                                        int samples, std::uint64_t seed) {
  if (static_cast<std::uint64_t>(samples) >= mod_graph.num_nodes()) {
    return i_distance_stats(mod_graph, module_sizes);
  }
  Xoshiro256 rng(seed);
  std::vector<Node> sources(as_size(samples));
  for (Node& s : sources) {
    s = static_cast<Node>(rng.below(mod_graph.num_nodes()));
  }
  return stats_from_sources(mod_graph, module_sizes, sources);
}

IMetrics i_metrics(const Graph& g, const Clustering& c) {
  return i_metrics(g, c, ExecPolicy::serial_policy());
}

IMetrics i_metrics(const Graph& g, const Clustering& c,
                   const ExecPolicy& exec) {
  IMetrics out;
  out.i_degree = i_degree(g, c);
  const Graph mg = module_graph(g, c);
  const auto sizes = c.module_sizes();
  const IDistanceStats s = i_distance_stats(mg, sizes, exec);
  out.i_diameter = s.i_diameter;
  out.avg_i_distance = s.avg_i_distance;
  return out;
}

IMetrics i_metrics(const Graph& g, const Clustering& c,
                   const OrbitQuotient& module_orbits,
                   const ExecPolicy& exec) {
  IMetrics out;
  out.i_degree = i_degree(g, c);
  const Graph mg = module_graph(g, c);
  const auto sizes = c.module_sizes();
  const IDistanceStats s = i_distance_stats(mg, sizes, module_orbits, exec);
  out.i_diameter = s.i_diameter;
  out.avg_i_distance = s.avg_i_distance;
  return out;
}

}  // namespace ipg
