#pragma once
// Node -> module assignments ("clusters" in the paper's Section 5): the
// packaging view where several network nodes share a chip/board and
// off-module links are the scarce resource.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ipg {

/// A partition of the nodes into modules.
struct Clustering {
  std::vector<std::uint32_t> module_of;  ///< per node, in [0, num_modules)
  std::uint32_t num_modules = 0;

  std::vector<std::uint32_t> module_sizes() const;
  std::uint32_t max_module_size() const;
  bool valid(Node num_nodes) const;
};

/// True iff every module induces a connected subgraph of `g` — the
/// precondition for computing I-distances on the contracted module graph.
bool modules_internally_connected(const Graph& g, const Clustering& c);

}  // namespace ipg
