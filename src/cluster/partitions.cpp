#include "cluster/partitions.hpp"

#include <cassert>
#include <functional>
#include <unordered_map>
#include <vector>

#include "graph/builder.hpp"
#include "ipg/super.hpp"
#include "topo/perm_rank.hpp"
#include "util/narrow.hpp"

namespace ipg {

Clustering cluster_by_nucleus(const IPGraph& g, int m) {
  const ModuleAssignment a = nucleus_modules(g, m);
  return Clustering{a.module_of, a.num_modules};
}

Clustering cluster_tuple(const TupleNetwork& net) {
  Clustering c;
  c.num_modules = net.num_modules();
  c.module_of.resize(net.graph.num_nodes());
  // module_of(id) = suffix = id % M^(l-1) with the big-endian encoding.
  const Node suffix_space = static_cast<Node>(c.num_modules);
  for (Node u = 0; u < net.graph.num_nodes(); ++u) {
    c.module_of[u] = u % suffix_space;
  }
  return c;
}

Clustering cluster_hypercube(int n, int module_bits) {
  assert(module_bits >= 0 && module_bits <= n);
  Clustering c;
  const Node size = Node{1} << n;
  c.num_modules = Node{1} << (n - module_bits);
  c.module_of.resize(size);
  for (Node u = 0; u < size; ++u) c.module_of[u] = u >> module_bits;
  return c;
}

Clustering cluster_star(int n, int substar) {
  assert(substar >= 1 && substar <= n);
  using topo::kFactorials;
  using topo::perm_unrank;
  Clustering c;
  const std::uint64_t size = kFactorials[n];
  c.module_of.resize(size);
  std::unordered_map<std::uint64_t, std::uint32_t> suffix_ids;
  for (std::uint64_t u = 0; u < size; ++u) {
    const auto p = perm_unrank(u, n);
    // Pack the fixed suffix p[substar..n) into a key.
    std::uint64_t key = 0;
    for (int i = substar; i < n; ++i) {
      key = key * static_cast<std::uint64_t>(n) + p[as_size(i)];
    }
    const auto [it, inserted] = suffix_ids.try_emplace(key, c.num_modules);
    if (inserted) ++c.num_modules;
    c.module_of[u] = it->second;
  }
  return c;
}

Clustering cluster_de_bruijn(int d, int n, int low_digits) {
  assert(low_digits >= 0 && low_digits <= n);
  std::uint64_t size = 1, module_size = 1;
  for (int i = 0; i < n; ++i) size *= static_cast<std::uint64_t>(d);
  for (int i = 0; i < low_digits; ++i) module_size *= static_cast<std::uint64_t>(d);
  Clustering c;
  c.num_modules = static_cast<std::uint32_t>(size / module_size);
  c.module_of.resize(size);
  for (std::uint64_t u = 0; u < size; ++u) {
    c.module_of[u] = static_cast<std::uint32_t>(u / module_size);
  }
  return c;
}

Clustering cluster_torus2d(int rows, int cols, int tile_r, int tile_c) {
  assert(rows % tile_r == 0 && cols % tile_c == 0);
  Clustering c;
  const int tiles_per_row = cols / tile_c;
  c.num_modules = static_cast<std::uint32_t>((rows / tile_r) * tiles_per_row);
  c.module_of.resize(as_size(rows) * as_size(cols));
  for (int r = 0; r < rows; ++r) {
    for (int col = 0; col < cols; ++col) {
      c.module_of[as_size(r) * as_size(cols) + as_size(col)] =
          static_cast<std::uint32_t>((r / tile_r) * tiles_per_row + col / tile_c);
    }
  }
  return c;
}

Clustering cluster_ccc(int n) {
  Clustering c;
  const Node cubes = Node{1} << n;
  c.num_modules = cubes;
  c.module_of.resize(static_cast<std::size_t>(cubes) * as_size(n));
  for (Node x = 0; x < cubes; ++x) {
    for (int p = 0; p < n; ++p) {
      c.module_of[x * as_size(n) + as_size(p)] = x;
    }
  }
  return c;
}

Graph hcn_subcube_module_graph(int n, int module_bits) {
  assert(module_bits >= 0 && module_bits <= n);
  const int high = n - module_bits;
  const Node highs = Node{1} << high;
  const Node cubes = Node{1} << n;
  const std::uint64_t size = static_cast<std::uint64_t>(highs) * cubes;
  assert(size < (1ull << 31));
  // Module id = a * 2^n + b with a = v1 >> module_bits, b = v2.
  GraphBuilder b(static_cast<Node>(size));
  for (Node a = 0; a < highs; ++a) {
    for (Node v2 = 0; v2 < cubes; ++v2) {
      const Node u = a * cubes + v2;
      // Nucleus (cube) links on the high bits of v1 leave the module.
      for (int d = 0; d < high; ++d) {
        b.add_arc(u, (a ^ (Node{1} << d)) * cubes + v2);
      }
      // Swap links (v1, v2) -> (v2, v1): v1's low bits range over the
      // module, so the target module is (v2 >> module_bits, v1) for every
      // v1 whose high bits equal a.
      const Node target_a = v2 >> module_bits;
      for (Node low = 0; low < (Node{1} << module_bits); ++low) {
        const Node v1 = (a << module_bits) | low;
        b.add_arc(u, target_a * cubes + v1);
      }
    }
  }
  return std::move(b).build();
}

Graph star_module_graph(int n, int substar) {
  assert(n >= 2 && n <= 12 && substar >= 1 && substar < n);
  const int suffix_len = n - substar;

  // Enumerate all injective suffix sequences; pack each into a key.
  const auto pack = [&](const std::vector<std::uint8_t>& suffix) {
    std::uint64_t key = 0;
    for (const std::uint8_t s : suffix) key = key * 16 + s;
    return key;
  };
  std::unordered_map<std::uint64_t, Node> ids;
  std::vector<std::vector<std::uint8_t>> suffixes;
  std::vector<std::uint8_t> current;
  std::vector<bool> used(as_size(n), false);
  const std::function<void()> enumerate = [&] {
    if (static_cast<int>(current.size()) == suffix_len) {
      ids.emplace(pack(current), static_cast<Node>(suffixes.size()));
      suffixes.push_back(current);
      return;
    }
    for (int sym = 0; sym < n; ++sym) {
      if (used[as_size(sym)]) continue;
      used[as_size(sym)] = true;
      current.push_back(static_cast<std::uint8_t>(sym));
      enumerate();
      current.pop_back();
      used[as_size(sym)] = false;
    }
  };
  enumerate();

  GraphBuilder b(static_cast<Node>(suffixes.size()));
  for (Node m = 0; m < suffixes.size(); ++m) {
    const auto& suffix = suffixes[m];
    // Free symbols = those inside the module.
    std::vector<bool> in_suffix(as_size(n), false);
    for (const auto s : suffix) in_suffix[s] = true;
    for (int j = 0; j < suffix_len; ++j) {
      for (int f = 0; f < n; ++f) {
        if (in_suffix[as_size(f)]) continue;
        // Generator (1, substar + j + 1): the node holding f at the front
        // swaps it into suffix position j; f joins the suffix, suffix[j]
        // becomes free.
        auto neighbor = suffix;
        neighbor[as_size(j)] = static_cast<std::uint8_t>(f);
        b.add_arc(m, ids.at(pack(neighbor)));
      }
    }
  }
  return std::move(b).build();
}

Graph super_module_graph(Node nucleus_size, int l,
                         std::span<const Generator> super_gens) {
  assert(l >= 2);
  std::uint64_t modules = 1;
  for (int i = 1; i < l; ++i) modules *= nucleus_size;
  assert(modules < (1ull << 31));

  GraphBuilder b(static_cast<Node>(modules));
  std::vector<Node> v(as_size(l)), w(as_size(l));
  for (Node suffix = 0; suffix < modules; ++suffix) {
    // Decode the suffix into v[1..l-1] (big-endian).
    Node rem = suffix;
    for (int i = l - 1; i >= 1; --i) {
      v[as_size(i)] = rem % nucleus_size;
      rem /= nucleus_size;
    }
    for (const Generator& g : super_gens) {
      for (Node v1 = 0; v1 < nucleus_size; ++v1) {
        v[0] = v1;
        for (int p = 0; p < l; ++p) w[as_size(p)] = v[g.perm[p]];
        Node target = 0;
        for (int i = 1; i < l; ++i) target = target * nucleus_size + w[as_size(i)];
        if (target != suffix) b.add_arc(suffix, target);
      }
    }
  }
  return std::move(b).build();
}

}  // namespace ipg
