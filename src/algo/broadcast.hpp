#pragma once
// Broadcast algorithms with packaging-aware accounting.
//
// The paper's performance story (Section 1, Section 5) is that on super-IP
// graphs "the required data movements ... are largely confined within
// basic modules". This module makes that executable: a flat BFS-tree
// broadcast as the baseline, and a module-staged broadcast that floods
// each module internally and crosses modules only along a module-graph
// spanning tree — cutting off-module transmissions from O(N) to
// (#modules - 1).

#include <cstdint>

#include "cluster/clustering.hpp"
#include "graph/graph.hpp"

namespace ipg::algo {

struct BroadcastResult {
  int rounds = 0;                          ///< parallel communication rounds
  std::uint64_t messages = 0;              ///< total point-to-point sends
  std::uint64_t off_module_messages = 0;   ///< sends crossing modules
  bool covered = false;                    ///< every node received the message
};

/// Baseline: broadcast along the BFS tree of `g` rooted at `root`; every
/// tree edge carries one message, rounds = eccentricity of the root.
/// Off-module messages are counted against `modules` when provided.
BroadcastResult flat_broadcast(const Graph& g, Node root,
                               const Clustering* modules = nullptr);

/// Module-staged broadcast: the message floods the root's module (BFS
/// inside the module), then crosses one gateway link into each child
/// module of the module-graph BFS tree, recursively. Exactly
/// num_modules - 1 off-module messages; requires internally connected
/// modules (Clustering validity is asserted).
BroadcastResult staged_broadcast(const Graph& g, const Clustering& modules,
                                 Node root);

/// Module-staged reduction (semigroup combine toward `root`): runs the
/// staged broadcast tree in reverse, so on symmetric digraphs (asserted)
/// the message/round accounting is identical to staged_broadcast.
BroadcastResult staged_reduce(const Graph& g, const Clustering& modules,
                              Node root);

}  // namespace ipg::algo
