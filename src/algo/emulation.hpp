#pragma once
// Hypercube emulation on hierarchical swap networks.
//
// Section 1: "suitably constructed super-IP graphs can emulate a
// corresponding higher-degree network, such as a hypercube, with
// asymptotically optimal slowdown". This module measures that claim for
// HSN(l, Q_n): a hypercube algorithm proceeds in dimension rounds, where
// every node exchanges with its dimension-j neighbor; under the natural
// bit-block embedding each round becomes a fixed set of host paths. The
// emulation cost per round is (max path length) x (max link congestion):
// both stay O(1), so a Q_{l*n} algorithm of R rounds runs in O(R) time.

#include <cstdint>
#include <vector>

#include "ipg/build.hpp"

namespace ipg::algo {

/// Cost of emulating one hypercube dimension round on the host.
struct DimensionCost {
  int dimension = 0;       ///< guest dimension
  Dist dilation = 0;       ///< longest host path realizing one exchange
  std::uint32_t congestion = 0;  ///< max host arcs shared across the round
};

struct EmulationStats {
  std::vector<DimensionCost> per_dimension;
  Dist max_dilation = 0;
  std::uint32_t max_congestion = 0;

  /// Slowdown bound for any normal (dimension-round) hypercube algorithm:
  /// each guest round costs at most dilation * congestion host rounds.
  std::uint32_t slowdown_bound() const {
    return static_cast<std::uint32_t>(max_dilation) * max_congestion;
  }
};

/// Measures per-dimension dilation and congestion of emulating Q_{l*n}
/// dimension exchanges on `hsn = build_super_ip_graph(make_hsn(l,
/// hypercube_nucleus(n)))` under the natural bit-block embedding
/// (hsn_hypercube_embedding). Exchange paths are shortest host paths
/// (BFS); congestion counts directed arc usages per dimension round.
EmulationStats emulate_hypercube_rounds(const IPGraph& hsn, int l, int n);

}  // namespace ipg::algo
