#include "algo/emulation.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "graph/bfs.hpp"
#include "route/embedding.hpp"

namespace ipg::algo {

namespace {

/// Shortest host path from s to t as a node sequence (BFS parents).
std::vector<Node> shortest_path(const Graph& g, Node s, Node t) {
  std::vector<Node> parent(g.num_nodes(), kInvalidIPNode);
  std::vector<Node> queue{s};
  parent[s] = s;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Node u = queue[head];
    if (u == t) break;
    for (const Node v : g.neighbors(u)) {
      if (parent[v] == kInvalidIPNode) {
        parent[v] = u;
        queue.push_back(v);
      }
    }
  }
  assert(parent[t] != kInvalidIPNode);
  std::vector<Node> path{t};
  while (path.back() != s) path.push_back(parent[path.back()]);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

EmulationStats emulate_hypercube_rounds(const IPGraph& hsn, int l, int n) {
  const std::vector<Node> phi = hsn_hypercube_embedding(hsn, l, n);
  const std::uint64_t guests = phi.size();
  const int dims = l * n;

  EmulationStats out;
  std::unordered_map<std::uint64_t, std::uint32_t> arc_use;
  for (int j = 0; j < dims; ++j) {
    DimensionCost cost;
    cost.dimension = j;
    arc_use.clear();
    for (std::uint64_t g = 0; g < guests; ++g) {
      const std::uint64_t partner = g ^ (std::uint64_t{1} << j);
      if (partner < g) continue;  // one path per unordered exchange pair
      const auto path = shortest_path(hsn.graph, phi[g], phi[partner]);
      cost.dilation = std::max(cost.dilation,
                               static_cast<Dist>(path.size() - 1));
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        // The exchange is bidirectional: both arc directions carry a flit.
        arc_use[(static_cast<std::uint64_t>(path[i]) << 32) | path[i + 1]]++;
        arc_use[(static_cast<std::uint64_t>(path[i + 1]) << 32) | path[i]]++;
      }
    }
    // Max-reduction over all counters; visit order cannot change the
    // result. ipg-lint: allow(unordered-iteration)
    for (const auto& [arc, uses] : arc_use) {
      cost.congestion = std::max(cost.congestion, uses);
    }
    out.per_dimension.push_back(cost);
    out.max_dilation = std::max(out.max_dilation, cost.dilation);
    out.max_congestion = std::max(out.max_congestion, cost.congestion);
  }
  return out;
}

}  // namespace ipg::algo
