#include "algo/broadcast.hpp"

#include <cassert>
#include <vector>

#include "graph/bfs.hpp"

namespace ipg::algo {

BroadcastResult flat_broadcast(const Graph& g, Node root,
                               const Clustering* modules) {
  BroadcastResult out;
  const auto dist = bfs_distances(g, root);
  // The BFS tree: each reached node other than the root receives exactly
  // one message, from some predecessor at distance - 1.
  std::uint64_t reached = 0;
  for (Node v = 0; v < g.num_nodes(); ++v) {
    if (dist[v] == kUnreachable) continue;
    ++reached;
    out.rounds = std::max(out.rounds, static_cast<int>(dist[v]));
  }
  out.messages = reached - 1;
  out.covered = reached == g.num_nodes();
  if (modules != nullptr) {
    assert(modules->valid(g.num_nodes()));
    // Count tree edges crossing modules. For symmetric graphs (all our
    // broadcast subjects) v's parent is its smallest-id neighbor at
    // distance - 1, mirroring the deterministic BFS-tree broadcast.
    for (Node v = 0; v < g.num_nodes(); ++v) {
      if (v == root || dist[v] == kUnreachable) continue;
      for (const Node u : g.neighbors(v)) {
        if (dist[u] + 1 == dist[v]) {
          if (modules->module_of[u] != modules->module_of[v]) {
            ++out.off_module_messages;
          }
          break;
        }
      }
    }
  }
  return out;
}

BroadcastResult staged_broadcast(const Graph& g, const Clustering& modules,
                                 Node root) {
  assert(modules.valid(g.num_nodes()));
  BroadcastResult out;

  // Intra-module BFS from `seed`, returning nodes reached and eccentricity
  // within the module.
  std::vector<Dist> dist(g.num_nodes(), kUnreachable);
  std::vector<Node> queue;
  const auto flood_module = [&](Node seed, std::uint64_t* reached, int* ecc) {
    queue.clear();
    queue.push_back(seed);
    dist[seed] = 0;
    *reached = 1;
    *ecc = 0;
    const std::uint32_t m = modules.module_of[seed];
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Node u = queue[head];
      for (const Node v : g.neighbors(u)) {
        if (modules.module_of[v] != m || dist[v] != kUnreachable) continue;
        dist[v] = dist[u] + 1;
        *ecc = std::max(*ecc, static_cast<int>(dist[v]));
        ++*reached;
        queue.push_back(v);
      }
    }
  };

  // BFS over the module tree, seeding each child module through the first
  // gateway link discovered from a flooded parent module.
  struct Stage {
    Node seed;
    int seed_time;
  };
  std::vector<std::int32_t> module_state(modules.num_modules, -1);  // -1: unseen
  std::vector<Stage> order;
  order.push_back(Stage{root, 0});
  module_state[modules.module_of[root]] = 0;
  std::uint64_t total_reached = 0;

  for (std::size_t i = 0; i < order.size(); ++i) {
    const Stage stage = order[i];
    std::uint64_t reached = 0;
    int ecc = 0;
    flood_module(stage.seed, &reached, &ecc);
    total_reached += reached;
    out.messages += reached - 1;
    const int done = stage.seed_time + ecc;
    out.rounds = std::max(out.rounds, done);
    // Gateways out of this module (members are exactly the flooded nodes —
    // walk them via the dist array within this flood's queue snapshot).
    for (const Node u : queue) {
      for (const Node v : g.neighbors(u)) {
        const std::uint32_t mv = modules.module_of[v];
        if (module_state[mv] >= 0) continue;
        module_state[mv] = done + 1;
        order.push_back(Stage{v, done + 1});
        out.messages += 1;
        out.off_module_messages += 1;
        out.rounds = std::max(out.rounds, done + 1);
      }
    }
  }
  out.covered = total_reached == g.num_nodes();
  return out;
}

BroadcastResult staged_reduce(const Graph& g, const Clustering& modules,
                              Node root) {
  // Every tree edge of the staged broadcast carries exactly one combined
  // partial value in the opposite direction, level by level, so the
  // counts coincide on symmetric digraphs.
  assert(g.is_symmetric());
  return staged_broadcast(g, modules, root);
}

}  // namespace ipg::algo
