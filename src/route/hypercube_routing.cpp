#include "route/hypercube_routing.hpp"

#include <bit>
#include <cassert>

namespace ipg {

std::vector<Node> route_hypercube(int n, Node src, Node dst) {
  assert(n >= 1 && n < 31);
  assert(src < (Node{1} << n) && dst < (Node{1} << n));
  std::vector<Node> path{src};
  Node current = src;
  for (int d = 0; d < n; ++d) {
    const Node bit = Node{1} << d;
    if ((current ^ dst) & bit) {
      current ^= bit;
      path.push_back(current);
    }
  }
  return path;
}

int hypercube_distance(Node a, Node b) { return std::popcount(a ^ b); }

}  // namespace ipg
