#pragma once
// Dimension-ordered (e-cube) routing on the bit-coded hypercube: the
// baseline router used by the simulator and the comparison benches.

#include <vector>

#include "graph/graph.hpp"

namespace ipg {

/// Node sequence from src to dst in Q_n, correcting differing bits from
/// the lowest dimension up. Length = Hamming distance + 1, shortest path.
std::vector<Node> route_hypercube(int n, Node src, Node dst);

/// Hamming distance (the exact hypercube distance).
int hypercube_distance(Node a, Node b);

}  // namespace ipg
