#include "route/disjoint.hpp"

#include <algorithm>
#include <cstddef>

#include "ipg/static_check.hpp"

namespace ipg::route {

namespace {

/// Unit-capacity node-split flow network over a TopoSnapshot: v_in = 2v,
/// v_out = 2v + 1, interior node edges of capacity 1, source = 2s + 1,
/// sink = 2t. Arcs into s and out of t are omitted — no simple s -> t path
/// uses them, and dropping them keeps the decomposition below cycle-free
/// at the terminals (every saturated arc out of s_out starts exactly one
/// path).
struct SplitFlow {
  struct FEdge {
    std::uint32_t to = 0;
    std::int8_t cap = 0;
    std::int32_t tag = -1;  ///< generator tag for original arcs, -1 else
  };

  std::vector<FEdge> edges;          // twin pairs: edge e ^ 1 is the reverse
  std::vector<std::uint32_t> head;   // CSR offsets over split nodes
  std::vector<std::uint32_t> order;  // edge indices, insertion order per node
  std::uint32_t source = 0;
  std::uint32_t sink = 0;

  SplitFlow(const TopoSnapshot& snap, net::NodeId s, net::NodeId t) {
    const auto n = static_cast<std::uint32_t>(snap.n);
    source = 2 * static_cast<std::uint32_t>(s) + 1;
    sink = 2 * static_cast<std::uint32_t>(t);

    const auto add = [&](std::uint32_t from, std::uint32_t to, std::int32_t tag,
                         std::vector<std::uint32_t>& deg) {
      deg[from]++;
      deg[to]++;
      edges.push_back({to, 1, tag});
      edges.push_back({from, 0, -1});
    };

    std::vector<std::uint32_t> deg(2 * static_cast<std::size_t>(n), 0);
    edges.reserve(2 * (static_cast<std::size_t>(n) + snap.num_arcs()));
    for (std::uint32_t v = 0; v < n; ++v) {
      if (v == s || v == t) continue;
      add(2 * v, 2 * v + 1, -1, deg);
    }
    for (std::uint32_t u = 0; u < n; ++u) {
      std::uint32_t prev = ~0u;
      for (std::uint64_t e = snap.off[u]; e < snap.off[u + 1]; ++e) {
        const auto v = static_cast<std::uint32_t>(snap.to[e]);
        // Arcs are (to, tag)-sorted: skipping repeats of `v` drops parallel
        // arcs, which would otherwise let the direct s -> t arc carry more
        // than one unit and overshoot the vertex-disjoint count.
        if (v == s || u == t || v == prev) continue;
        prev = v;
        add(2 * u + 1, 2 * v, static_cast<std::int32_t>(snap.tag[e]), deg);
      }
    }

    head.assign(2 * static_cast<std::size_t>(n) + 1, 0);
    for (std::size_t v = 0; v < deg.size(); ++v) head[v + 1] = head[v] + deg[v];
    order.resize(edges.size());
    // Fill adjacency in edge-insertion order: iterate twin pairs and place
    // each direction under its source split node.
    std::vector<std::uint32_t> cursor(head.begin(), head.end() - 1);
    for (std::uint32_t e = 0; e < edges.size(); e += 2) {
      const std::uint32_t from = edges[e + 1].to;  // twin points back
      order[cursor[from]++] = e;
      order[cursor[edges[e].to]++] = e + 1;
    }
  }

  /// BFS augmentation (Edmonds–Karp, unit steps) up to `cap_limit` units
  /// (0 = unbounded). Deterministic: adjacency is scanned in insertion
  /// order, which follows the snapshot's sorted arcs.
  int max_flow(int cap_limit) {
    int value = 0;
    std::vector<std::int64_t> pre(head.size() - 1);
    std::vector<std::uint32_t> queue;
    while (cap_limit == 0 || value < cap_limit) {
      std::fill(pre.begin(), pre.end(), -1);
      pre[source] = -2;
      queue.clear();
      queue.push_back(source);
      bool found = false;
      for (std::size_t h = 0; h < queue.size() && !found; ++h) {
        const std::uint32_t u = queue[h];
        for (std::uint32_t i = head[u]; i < head[u + 1]; ++i) {
          const std::uint32_t e = order[i];
          const std::uint32_t v = edges[e].to;
          if (edges[e].cap <= 0 || pre[v] != -1) continue;
          pre[v] = e;
          if (v == sink) {
            found = true;
            break;
          }
          queue.push_back(v);
        }
      }
      if (!found) break;
      for (std::uint32_t u = sink; u != source;) {
        const auto e = static_cast<std::uint32_t>(pre[u]);
        edges[e].cap--;
        edges[e ^ 1].cap++;
        u = edges[e ^ 1].to;
      }
      value++;
    }
    return value;
  }

  /// Decomposes the current flow into `value` internally disjoint paths.
  /// Walks consume saturation (cap is restored on use); unit node caps
  /// make the continuation at every interior vertex unique, and flow
  /// cycles (if the augmentation left any) share no vertex with the
  /// walks, so they are never entered.
  void decompose(net::NodeId s, net::NodeId t,
                 std::vector<DisjointPath>& out) {
    for (std::uint32_t i = head[source]; i < head[source + 1]; ++i) {
      const std::uint32_t e0 = order[i];
      if ((e0 & 1) != 0 || edges[e0].cap != 0) continue;  // not carrying flow
      DisjointPath p;
      p.nodes.push_back(s);
      edges[e0].cap = 1;
      p.gens.push_back(edges[e0].tag);
      std::uint32_t cur_in = edges[e0].to;
      for (;;) {
        const net::NodeId v = cur_in >> 1;
        p.nodes.push_back(v);
        if (v == t) break;
        const std::uint32_t vout = cur_in + 1;
        [[maybe_unused]] bool advanced = false;
        for (std::uint32_t j = head[vout]; j < head[vout + 1]; ++j) {
          const std::uint32_t e = order[j];
          if ((e & 1) != 0 || edges[e].cap != 0) continue;
          edges[e].cap = 1;
          p.gens.push_back(edges[e].tag);
          cur_in = edges[e].to;
          advanced = true;
          break;
        }
        IPG_CONTRACT(advanced && "flow conservation broken");
      }
      out.push_back(std::move(p));
    }
  }
};

/// Greedy internal-disjointness filter: accepts a candidate iff none of
/// its interior nodes was used by an accepted path and (for interior-free
/// direct arcs) the arc was not already taken. Marks what it accepts.
class DisjointFilter {
 public:
  explicit DisjointFilter(net::NodeId n)
      : used_(static_cast<std::size_t>(n), 0) {}

  bool accept(const DisjointPath& p) {
    if (p.nodes.size() == 2) {
      if (direct_used_) return false;
      direct_used_ = true;
      return true;
    }
    for (std::size_t i = 1; i + 1 < p.nodes.size(); ++i) {
      if (used_[static_cast<std::size_t>(p.nodes[i])] != 0) return false;
    }
    for (std::size_t i = 1; i + 1 < p.nodes.size(); ++i) {
      used_[static_cast<std::size_t>(p.nodes[i])] = 1;
    }
    return true;
  }

 private:
  std::vector<std::uint8_t> used_;
  bool direct_used_ = false;
};

void sort_by_length(std::vector<DisjointPath>& paths) {
  std::stable_sort(paths.begin(), paths.end(),
                   [](const DisjointPath& a, const DisjointPath& b) {
                     return a.gens.size() < b.gens.size();
                   });
}

}  // namespace

KDisjointRouter::KDisjointRouter(const net::Topology& topo,
                                 KDisjointOptions opts)
    : topo_(&topo), opts_(opts) {
  snap_ = TopoSnapshot::capture(topo, opts.max_snapshot_nodes,
                                opts.max_snapshot_arcs);
}

KDisjointRouter::KDisjointRouter(const net::ImplicitSuperIPTopology& topo,
                                 KDisjointOptions opts)
    : topo_(&topo), opts_(opts) {
  const std::uint64_t arc_bound =
      topo.num_nodes() * static_cast<std::uint64_t>(topo.num_generators());
  if (topo.num_nodes() <= opts.max_snapshot_nodes &&
      arc_bound <= opts.max_snapshot_arcs) {
    snap_ = TopoSnapshot::capture(topo, opts.max_snapshot_nodes,
                                  opts.max_snapshot_arcs);
  } else {
    structural_ = std::make_unique<StructuralPathSystem>(topo);
  }
  if (!snap_ && !structural_) {
    structural_ = std::make_unique<StructuralPathSystem>(topo);
  }
}

ISTForest KDisjointRouter::forest(net::NodeId root, int num_trees) const {
  IPG_CONTRACT(snap_.has_value());
  return build_ist_forest(*snap_, root, num_trees);
}

DisjointRouteSet KDisjointRouter::routes(net::NodeId src, net::NodeId dst,
                                         int k) const {
  IPG_CONTRACT(k >= 0);
  DisjointRouteSet out;
  const net::NodeId n = topo_->num_nodes();
  if (src >= n || dst >= n || src == dst) return out;
  return snap_ ? routes_snapshot(src, dst, k) : routes_structural(src, dst, k);
}

DisjointRouteSet KDisjointRouter::routes_snapshot(net::NodeId src,
                                                  net::NodeId dst,
                                                  int k) const {
  DisjointRouteSet out;
  out.certified = true;

  SplitFlow flow(*snap_, src, dst);
  const int value = flow.max_flow(k);
  if (value == 0) return out;

  // Preferred realization: one path per IST tree rooted at dst — all of
  // optimal length dist(src, dst) — kept when the greedy filter shows the
  // rotation already made them pairwise internally disjoint.
  const ISTForest forest = build_ist_forest(*snap_, dst, value);
  DisjointFilter filter(snap_->n);
  std::vector<DisjointPath> tree_paths;
  for (int t = 0; t < value; ++t) {
    DisjointPath p;
    p.nodes.push_back(src);
    for (const net::TopoArc& a : forest.path_to_root(t, src)) {
      p.nodes.push_back(a.to);
      p.gens.push_back(static_cast<int>(a.tag));
    }
    if (filter.accept(p)) tree_paths.push_back(std::move(p));
  }
  if (static_cast<int>(tree_paths.size()) == value) {
    out.paths = std::move(tree_paths);
    out.from_trees = true;
    return out;  // all tree paths share one length: already sorted
  }

  // The rotation fell short of the Menger maximum here: return the flow's
  // own decomposition, which always realizes `value` disjoint paths.
  flow.decompose(src, dst, out.paths);
  IPG_CONTRACT(static_cast<int>(out.paths.size()) == value);
  sort_by_length(out.paths);
  return out;
}

DisjointRouteSet KDisjointRouter::routes_structural(net::NodeId src,
                                                    net::NodeId dst,
                                                    int k) const {
  DisjointRouteSet out;
  out.from_trees = true;

  // Candidates: the plain schedule route first, then one branch per
  // generator; stable length sort keeps that preference among ties, so
  // paths[0] is the shortest candidate (the plain route when tied).
  std::vector<DisjointPath> candidates;
  DisjointPath walk;
  for (int t = -1; t < structural_->num_trees(); ++t) {
    if (!structural_->path_to_root(t, src, dst, walk.nodes, walk.gens)) {
      continue;
    }
    candidates.push_back(walk);
  }
  sort_by_length(candidates);

  DisjointFilter filter(topo_->num_nodes());
  for (DisjointPath& p : candidates) {
    if (k > 0 && static_cast<int>(out.paths.size()) == k) break;
    if (filter.accept(p)) out.paths.push_back(std::move(p));
  }
  return out;
}

}  // namespace ipg::route
