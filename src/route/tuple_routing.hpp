#pragma once
// Theorem 4.1 routing in tuple space: the same schedule-then-sort
// algorithm as route_super_ip, but over an explicit nucleus graph instead
// of an IP nucleus spec — so it covers super networks whose nucleus has no
// convenient IP representation (e.g. ring-CN(l, Petersen)).

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "ipg/families.hpp"

namespace ipg {

/// One hop of a tuple-space route.
struct TupleHop {
  bool is_super = false;  ///< super-generator move vs nucleus move
  int generator = 0;      ///< index into super_gens, or unused for nucleus
  Node node = 0;          ///< tuple id after the hop
};

/// Routes src -> dst (tuple ids of `net`) with the Theorem 4.1 algorithm:
/// sort the leading coordinate along shortest nucleus paths whenever a
/// coordinate first reaches the front of the visit-all schedule. The
/// returned hop sequence is a valid walk in net.graph of length at most
/// l * D_G + t.
std::vector<TupleHop> route_tuple_network(const TupleNetwork& net,
                                          const Graph& nucleus,
                                          std::span<const Generator> super_gens,
                                          Node src, Node dst);

}  // namespace ipg
