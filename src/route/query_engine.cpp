#include "route/query_engine.hpp"

#include <algorithm>
#include <cassert>

#include "ipg/static_check.hpp"
#include "util/narrow.hpp"

namespace ipg::route {

QueryEngine::QueryEngine(const net::Topology& topo, QueryEngineOptions opts)
    : topo_(&topo),
      opts_(opts),
      cache_({.capacity = opts.cache_capacity,
              .shards = opts.cache_shards,
              .admission = opts.cache_admission}) {
  if (opts_.enable_disjoint) {
    disjoint_ = std::make_unique<KDisjointRouter>(topo);
  }
}

QueryEngine::QueryEngine(const net::ImplicitSuperIPTopology& topo,
                         QueryEngineOptions opts)
    : topo_(&topo),
      implicit_(&topo),
      opts_(opts),
      router_(std::make_unique<SuperIPRouter>(topo.spec(),
                                              opts.schedule_cache_capacity)),
      cache_({.capacity = opts.cache_capacity,
              .shards = opts.cache_shards,
              .admission = opts.cache_admission}) {
  if (opts_.use_packed_kernels) {
    packed_ = PackedSuperCodec(topo.spec(), topo.ranking());
  }
  if (packed_.valid()) {
    // Compile every lifted generator (ip_spec ordering: nucleus first,
    // then expanded super) so next-hop application and the schedule walk
    // run entirely on packed words.
    const auto& gens = topo.ip_spec().generators;
    packed_gens_.reserve(gens.size());
    for (const Generator& g : gens) {
      packed_gens_.emplace_back(packed_.codec(), g.perm);
    }
    // d[i]: destination position of block i under the plain schedule
    // (mirrors SuperIPRouter::route's plain branch exactly).
    const Schedule& sched = router_->plain_schedule();
    plain_dest_.assign(as_size(topo.spec().l), -1);
    for (int q = 0; q < topo.spec().l; ++q) {
      plain_dest_[sched.final_arrangement[as_size(q)]] = q;
    }
  }
  if (opts_.enable_disjoint) {
    disjoint_ = std::make_unique<KDisjointRouter>(topo);
  }
}

void QueryEngine::route_bfs(net::NodeId src, net::NodeId dst, CachedRoute& out,
                            Scratch& s) const {
  out.status = AnswerStatus::kUnreachable;
  out.next_hop = net::kInvalidNodeId;
  out.gens.clear();

  s.parent.clear();
  s.frontier.clear();
  s.frontier.push_back(src);
  s.parent.emplace(src, std::pair<net::NodeId, int>{src, -1});
  bool found = false;
  while (!found && !s.frontier.empty()) {
    s.next_frontier.clear();
    for (const net::NodeId u : s.frontier) {
      topo_->neighbors(u, s.arcs);  // sorted by (to, tag): deterministic
      for (const net::TopoArc& a : s.arcs) {
        if (!s.parent.try_emplace(a.to, std::pair<net::NodeId, int>{u, a.tag})
                 .second) {
          continue;
        }
        if (a.to == dst) {
          found = true;
          break;
        }
        s.next_frontier.push_back(a.to);
      }
      if (found) break;
    }
    s.frontier.swap(s.next_frontier);
  }
  if (!found) return;

  // Walk parents dst -> src; the node whose parent is src is the next hop.
  net::NodeId cur = dst;
  while (cur != src) {
    const auto& [p, tag] = s.parent.at(cur);
    out.gens.push_back(tag);
    if (p == src) out.next_hop = cur;
    cur = p;
  }
  std::reverse(out.gens.begin(), out.gens.end());
  out.status = AnswerStatus::kOk;
}

void QueryEngine::route_scalar_label(net::NodeId src, net::NodeId dst,
                                     CachedRoute& out, Scratch& s) const {
  implicit_->label_into(src, s.a);
  implicit_->label_into(dst, s.b);
  out.gens = router_->route(s.a, s.b).gens;
  out.status = AnswerStatus::kOk;
  out.next_hop = out.gens.empty()
                     ? net::kInvalidNodeId
                     : implicit_->neighbor_via(src, out.gens.front());
}

void QueryEngine::route_packed(net::NodeId src, net::NodeId dst,
                               CachedRoute& out, Scratch& s) const {
  const PackedLabel sp = packed_.unrank(src);
  const PackedLabel dp = packed_.unrank(dst);
  out.gens.clear();
  out.status = AnswerStatus::kOk;
  out.next_hop = net::kInvalidNodeId;

  const int l = implicit_->spec().l;
  const int nc = implicit_->nucleus_generator_count();
  const int bb = packed_.block_bits();
  const IPGraph& nucleus = router_->nucleus();

  s.dst_blocks.resize(as_size(l));
  for (int i = 0; i < l; ++i) {
    s.dst_blocks[as_size(i)] = packed_.block_node(dp, i);
    assert(s.dst_blocks[as_size(i)] != kInvalidIPNode);
  }

  // Emits the first-gen-table walk sorting x's front block to nucleus
  // node `target`, then deposits the target content — gen-for-gen what
  // SuperIPRouter::sort_front_block does on byte vectors.
  const auto sort_front = [&](PackedLabel& x, Node target) {
    Node u = packed_.block_node(x, 0);
    assert(u != kInvalidIPNode);
    const std::span<const std::uint16_t> row = router_->first_gen_row(target);
    while (u != target) {
      const std::uint16_t g = row[u];
      assert(g != SuperIPRouter::kNoFirstGen);
      out.gens.push_back(g);
      u = nucleus.apply_generator(u, g);
    }
    deposit_bits(x, 0, bb, packed_.node_block(target));
  };

  PackedLabel current = sp;
  s.arr.resize(as_size(l));
  for (int i = 0; i < l; ++i) s.arr[as_size(i)] = static_cast<std::uint8_t>(i);
  s.visited.assign(as_size(l), 0);

  s.visited[0] = 1;
  sort_front(current, s.dst_blocks[as_size(plain_dest_[0])]);

  s.next_arr.resize(as_size(l));
  for (const int g : router_->plain_schedule().gens) {
    const PackedLabel next = packed_gens_[as_size(nc + g)].apply(current);
    if (!(next == current)) {
      out.gens.push_back(nc + g);
      current = next;
    }
    const Permutation& beta = implicit_->spec().super_gens[as_size(g)].perm;
    for (int p = 0; p < l; ++p) s.next_arr[as_size(p)] = s.arr[beta[p]];
    s.arr.swap(s.next_arr);
    const int front_block = s.arr[0];
    if (!s.visited[as_size(front_block)]) {
      s.visited[as_size(front_block)] = 1;
      sort_front(current, s.dst_blocks[as_size(plain_dest_[as_size(front_block)])]);
    }
  }
  assert(current == dp && "packed route must land on the destination");

  if (!out.gens.empty()) {
    out.next_hop = packed_.rank(packed_gens_[as_size(out.gens.front())].apply(sp));
  }
}

void QueryEngine::compute_route(net::NodeId src, net::NodeId dst,
                                CachedRoute& out, Scratch& s,
                                bool allow_packed) const {
  if (implicit_ != nullptr) {
    if (allow_packed && packed_.valid()) {
      route_packed(src, dst, out, s);
    } else {
      route_scalar_label(src, dst, out, s);
    }
  } else {
    route_bfs(src, dst, out, s);
  }
}

void QueryEngine::answer_one(const RouteQuery& q, RouteAnswer& out, Scratch& s,
                             bool use_cache, bool allow_packed) const {
  out.gens.clear();
  out.first_gen = -1;
  out.next_hop = net::kInvalidNodeId;
  const net::NodeId n = topo_->num_nodes();
  if (q.src >= n || q.dst >= n) {
    out.status = AnswerStatus::kInvalid;
    out.distance = -1;
    return;
  }
  if (q.src == q.dst) {
    out.status = AnswerStatus::kOk;
    out.distance = 0;
    return;
  }

  if (q.policy == RoutePolicy::kDisjoint) {
    // Bypasses the route cache (it is keyed by (src, dst) only) and the
    // backends: the answer is the shortest path of the disjoint set.
    if (disjoint_ == nullptr) {
      out.status = AnswerStatus::kInvalid;
      out.distance = -1;
      return;
    }
    const DisjointRouteSet set = disjoint_->routes(q.src, q.dst, /*k=*/1);
    if (set.paths.empty()) {
      out.status = AnswerStatus::kUnreachable;
      out.distance = -1;
      return;
    }
    const DisjointPath& p = set.paths.front();
    out.status = AnswerStatus::kOk;
    out.distance = static_cast<std::int32_t>(p.gens.size());
    out.first_gen = p.gens.empty() ? -1 : p.gens.front();
    if (q.kind != QueryKind::kDistance) out.next_hop = p.nodes[1];
    if (q.kind == QueryKind::kFullRoute) out.gens = p.gens;
    return;
  }

  if (use_cache && cache_.capacity() > 0) {
    cache_.get_or_compute(
        PairKey{q.src, q.dst},
        [&](CachedRoute& v) { compute_route(q.src, q.dst, v, s, allow_packed); },
        s.route);
  } else {
    compute_route(q.src, q.dst, s.route, s, allow_packed);
  }

  out.status = s.route.status;
  if (out.status != AnswerStatus::kOk) {
    out.distance = -1;
    return;
  }
  out.distance = static_cast<std::int32_t>(s.route.gens.size());
  out.first_gen = s.route.gens.empty() ? -1 : s.route.gens.front();
  if (q.kind != QueryKind::kDistance) out.next_hop = s.route.next_hop;
  if (q.kind == QueryKind::kFullRoute) out.gens = s.route.gens;
}

void QueryEngine::answer_batch(std::span<const RouteQuery> queries,
                               std::span<RouteAnswer> answers) const {
  assert(queries.size() == answers.size());
  Scratch s;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    answer_one(queries[i], answers[i], s, /*use_cache=*/true,
               opts_.use_packed_kernels);
  }
}

void QueryEngine::answer_batch(std::span<const RouteQuery> queries,
                               std::span<RouteAnswer> answers,
                               ThreadPool& pool) const {
  assert(queries.size() == answers.size());
  if (pool.num_threads() <= 1 || queries.size() < 2) {
    answer_batch(queries, answers);
    return;
  }
  // Each answer is a pure function of its query: chunking only spreads
  // independent work, so any thread count produces identical answers.
  std::vector<Scratch> scratch(as_size(pool.num_threads()));
  const std::uint64_t chunks =
      std::min<std::uint64_t>(queries.size(),
                              static_cast<std::uint64_t>(pool.num_threads()) * 4);
  pool.parallel_for(queries.size(), chunks,
                    [&](int worker, std::uint64_t /*chunk*/, std::uint64_t begin,
                        std::uint64_t end) {
                      Scratch& s = scratch[as_size(worker)];
                      for (std::uint64_t i = begin; i < end; ++i) {
                        answer_one(queries[i], answers[i], s,
                                   /*use_cache=*/true, opts_.use_packed_kernels);
                      }
                    });
}

void QueryEngine::answer_batch(std::span<const RouteQuery> queries,
                               std::span<RouteAnswer> answers,
                               const ExecPolicy& policy) const {
  if (policy.serial()) {
    answer_batch(queries, answers);
    return;
  }
  ThreadPool pool(policy.resolved_threads());
  answer_batch(queries, answers, pool);
}

void QueryEngine::answer_batch_scalar(std::span<const RouteQuery> queries,
                                      std::span<RouteAnswer> answers) const {
  assert(queries.size() == answers.size());
  Scratch s;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    answer_one(queries[i], answers[i], s, /*use_cache=*/false,
               /*allow_packed=*/false);
  }
}

RouteAnswer QueryEngine::answer(const RouteQuery& q) const {
  RouteAnswer out;
  Scratch s;
  answer_one(q, out, s, /*use_cache=*/true, opts_.use_packed_kernels);
  return out;
}

DisjointRouteSet QueryEngine::k_disjoint_routes(net::NodeId src,
                                                net::NodeId dst, int k) const {
  IPG_CONTRACT(disjoint_ != nullptr &&
               "construct with QueryEngineOptions::enable_disjoint");
  return disjoint_->routes(src, dst, k);
}

}  // namespace ipg::route
