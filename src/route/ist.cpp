#include "route/ist.hpp"

#include <stdexcept>
#include <string>
#include <unordered_map>

#include "ipg/static_check.hpp"

namespace ipg::route {

TopoSnapshot TopoSnapshot::capture(const net::Topology& topo,
                                   net::NodeId max_nodes,
                                   std::uint64_t max_arcs) {
  TopoSnapshot s;
  s.n = topo.num_nodes();
  if (s.n > max_nodes) {
    throw std::length_error("TopoSnapshot: " + std::to_string(s.n) +
                            " nodes exceed the snapshot cap of " +
                            std::to_string(max_nodes));
  }
  s.off.assign(static_cast<std::size_t>(s.n) + 1, 0);
  std::vector<net::TopoArc> arcs;
  for (net::NodeId u = 0; u < s.n; ++u) {
    topo.neighbors(u, arcs);  // sorted by (to, tag): deterministic image
    if (s.to.size() + arcs.size() > max_arcs) {
      throw std::length_error("TopoSnapshot: arc count exceeds the cap of " +
                              std::to_string(max_arcs));
    }
    for (const net::TopoArc& a : arcs) {
      s.to.push_back(a.to);
      s.tag.push_back(a.tag);
    }
    s.off[static_cast<std::size_t>(u) + 1] = s.to.size();
  }

  // Reverse CSR: indegree count, prefix sum, then a stable fill — scanning
  // sources in ascending order keeps every reverse list sorted.
  s.roff.assign(static_cast<std::size_t>(s.n) + 1, 0);
  for (const net::NodeId v : s.to) s.roff[static_cast<std::size_t>(v) + 1]++;
  for (std::size_t i = 1; i <= s.n; ++i) s.roff[i] += s.roff[i - 1];
  s.rfrom.resize(s.to.size());
  std::vector<std::uint64_t> cursor(s.roff.begin(), s.roff.end() - 1);
  for (net::NodeId u = 0; u < s.n; ++u) {
    for (std::uint64_t e = s.off[static_cast<std::size_t>(u)];
         e < s.off[static_cast<std::size_t>(u) + 1]; ++e) {
      s.rfrom[cursor[static_cast<std::size_t>(s.to[e])]++] = u;
    }
  }
  return s;
}

bool ISTForest::spans(int t) const {
  const auto& parent = parent_[static_cast<std::size_t>(t)];
  for (net::NodeId v = 0; v < n_; ++v) {
    net::NodeId cur = v;
    net::NodeId steps = 0;
    while (cur != root_) {
      const net::TopoArc p = parent[static_cast<std::size_t>(cur)];
      if (p.to == net::kInvalidNodeId || ++steps > n_) return false;
      cur = p.to;
    }
  }
  return true;
}

std::vector<net::TopoArc> ISTForest::path_to_root(int t, net::NodeId v) const {
  std::vector<net::TopoArc> out;
  const auto& parent = parent_[static_cast<std::size_t>(t)];
  for (net::NodeId cur = v; cur != root_;) {
    const net::TopoArc p = parent[static_cast<std::size_t>(cur)];
    IPG_CONTRACT(p.to != net::kInvalidNodeId);
    out.push_back(p);
    cur = p.to;  // dist strictly decreases: terminates in dist(v) steps
  }
  return out;
}

ISTForest build_ist_forest(const TopoSnapshot& snap, net::NodeId root,
                           int num_trees) {
  IPG_CONTRACT(root < snap.n);
  IPG_CONTRACT(num_trees >= 1);
  ISTForest f;
  f.root_ = root;
  f.n_ = snap.n;

  // BFS over reverse arcs: dist_[v] = forward-hop distance v -> root.
  f.dist_.assign(static_cast<std::size_t>(snap.n),
                 ISTForest::kUnreachableDist);
  std::vector<net::NodeId> queue;
  queue.reserve(static_cast<std::size_t>(snap.n));
  f.dist_[static_cast<std::size_t>(root)] = 0;
  queue.push_back(root);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const net::NodeId v = queue[head];
    const std::uint32_t dv = f.dist_[static_cast<std::size_t>(v)];
    for (std::uint64_t e = snap.roff[static_cast<std::size_t>(v)];
         e < snap.roff[static_cast<std::size_t>(v) + 1]; ++e) {
      const net::NodeId u = snap.rfrom[e];
      if (f.dist_[static_cast<std::size_t>(u)] != ISTForest::kUnreachableDist) {
        continue;
      }
      f.dist_[static_cast<std::size_t>(u)] = dv + 1;
      queue.push_back(u);
    }
  }

  // Tree t's parent of v: the (t mod c_v)-th of v's distance-descending
  // out-arcs (c_v >= 1 for every root-reaching vertex). The arcs inherit
  // the snapshot's (to, tag) order, so the rotation is deterministic.
  f.parent_.assign(static_cast<std::size_t>(num_trees),
                   std::vector<net::TopoArc>(static_cast<std::size_t>(snap.n)));
  std::vector<net::TopoArc> down;
  for (net::NodeId v = 0; v < snap.n; ++v) {
    const std::uint32_t dv = f.dist_[static_cast<std::size_t>(v)];
    if (v == root || dv == ISTForest::kUnreachableDist) continue;
    down.clear();
    for (std::uint64_t e = snap.off[static_cast<std::size_t>(v)];
         e < snap.off[static_cast<std::size_t>(v) + 1]; ++e) {
      const net::NodeId w = snap.to[e];
      if (f.dist_[static_cast<std::size_t>(w)] + 1 == dv) {
        down.push_back({w, snap.tag[e]});
      }
    }
    IPG_CONTRACT(!down.empty());
    for (int t = 0; t < num_trees; ++t) {
      f.parent_[static_cast<std::size_t>(t)][static_cast<std::size_t>(v)] =
          down[static_cast<std::size_t>(t) % down.size()];
    }
  }
  return f;
}

ISTForest build_ist_forest(const net::Topology& topo, net::NodeId root,
                           int num_trees) {
  const TopoSnapshot snap = TopoSnapshot::capture(
      topo, net::NodeId{1} << 18, std::uint64_t{1} << 23);
  return build_ist_forest(snap, root, num_trees);
}

StructuralPathSystem::StructuralPathSystem(
    const net::ImplicitSuperIPTopology& topo)
    : topo_(&topo), router_(std::make_unique<SuperIPRouter>(topo.spec())) {}

bool StructuralPathSystem::path_to_root(int t, net::NodeId v, net::NodeId root,
                                        std::vector<net::NodeId>& nodes,
                                        std::vector<int>& gens) const {
  nodes.clear();
  gens.clear();
  nodes.push_back(v);
  if (v == root) return true;

  net::NodeId cur = v;
  if (t >= 0) {
    const net::NodeId w = topo_->neighbor_via(v, t);
    if (w == v) return false;  // generator fixes the label: no branch here
    gens.push_back(t);
    nodes.push_back(w);
    cur = w;
  }
  if (cur != root) {
    Label a, b;
    topo_->label_into(cur, a);
    topo_->label_into(root, b);
    for (const int g : router_->route(a, b).gens) {
      cur = topo_->neighbor_via(cur, g);
      gens.push_back(g);
      nodes.push_back(cur);
    }
  }

  // Truncate at the first visit to the root (a sorting route may pass
  // through it early), then erase loops: the branch hop can revisit nodes
  // the restarted schedule walks again.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] == root) {
      nodes.resize(i + 1);
      gens.resize(i);
      break;
    }
  }
  std::unordered_map<net::NodeId, std::size_t> first;  // node -> kept index
  std::vector<net::NodeId> kept_nodes;
  std::vector<int> kept_gens;
  kept_nodes.push_back(nodes[0]);
  first.emplace(nodes[0], 0);
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    const auto it = first.find(nodes[i]);
    if (it != first.end()) {
      while (kept_nodes.size() > it->second + 1) {
        first.erase(kept_nodes.back());
        kept_nodes.pop_back();
        kept_gens.pop_back();
      }
    } else {
      kept_gens.push_back(gens[i - 1]);
      kept_nodes.push_back(nodes[i]);
      first.emplace(nodes[i], kept_nodes.size() - 1);
    }
  }
  nodes.swap(kept_nodes);
  gens.swap(kept_gens);
  IPG_CONTRACT(nodes.back() == root);
  return true;
}

}  // namespace ipg::route
