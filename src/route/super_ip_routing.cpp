#include "route/super_ip_routing.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ipg {

namespace {

Label sorted_copy(Label x) {
  std::sort(x.begin(), x.end());
  return x;
}

/// Appends a nucleus-generator route sorting the front block of `current`
/// to `target_content`, applying it to `current` as it goes.
void sort_front_block(const SuperIPSpec& spec, const IPGraphSpec& nucleus_proto,
                      Label& current, const Label& target_content,
                      std::vector<int>& out_gens) {
  const Label front = block_of(current, 0, spec.m);
  if (front == target_content) return;
  IPGraphSpec nucleus = nucleus_proto;
  nucleus.seed = front;
  // Each BFS step changes the block content, hence the full label: every
  // emitted step is a genuine edge of the lifted graph.
  const GenPath inner = bfs_route(nucleus, front, target_content);
  out_gens.insert(out_gens.end(), inner.gens.begin(), inner.gens.end());
  set_block(current, 0, spec.m, target_content);
}

}  // namespace

GenPath route_super_ip(const SuperIPSpec& spec, const Label& src, const Label& dst) {
  if (static_cast<int>(src.size()) != spec.label_length() ||
      static_cast<int>(dst.size()) != spec.label_length()) {
    throw std::invalid_argument("route_super_ip: label length mismatch");
  }
  GenPath out;
  if (src == dst) return out;

  const int l = spec.l;
  const int m = spec.m;
  const int nucleus_count = static_cast<int>(spec.nucleus_gens.size());

  // Decide plain vs symmetric mode from the block multisets of src.
  std::vector<Label> src_multisets(l), dst_multisets(l);
  for (int i = 0; i < l; ++i) {
    src_multisets[i] = sorted_copy(block_of(src, i, m));
    dst_multisets[i] = sorted_copy(block_of(dst, i, m));
  }
  const bool plain = std::all_of(src_multisets.begin(), src_multisets.end(),
                                 [&](const Label& s) { return s == src_multisets[0]; });

  // d[i] = destination position of the block at src position i.
  std::vector<int> d(l, -1);
  std::optional<Schedule> schedule;
  if (plain) {
    schedule = min_visit_all_schedule(spec);
    if (!schedule) throw std::invalid_argument("super-generators cannot visit all blocks");
    for (int q = 0; q < l; ++q) d[schedule->final_arrangement[q]] = q;
  } else {
    // Symmetric mode: match disjoint block symbol sets.
    Arrangement target(l, 0);
    std::vector<bool> used(l, false);
    for (int i = 0; i < l; ++i) {
      int match = -1;
      for (int q = 0; q < l; ++q) {
        if (!used[q] && dst_multisets[q] == src_multisets[i]) {
          match = q;
          break;
        }
      }
      if (match < 0) {
        throw std::invalid_argument("route_super_ip: dst blocks do not match src");
      }
      used[match] = true;
      d[i] = match;
      target[match] = static_cast<std::uint8_t>(i);
    }
    schedule = schedule_to_arrangement(spec, target);
    if (!schedule) {
      throw std::invalid_argument("route_super_ip: required arrangement unreachable");
    }
  }

  const IPGraphSpec nucleus_proto = spec.nucleus_spec();
  Label current = src;
  Arrangement arr(l);
  for (int i = 0; i < l; ++i) arr[i] = static_cast<std::uint8_t>(i);
  std::vector<bool> visited(l, false);

  // Block 0 starts at the front: sort it to its destination content.
  visited[0] = true;
  sort_front_block(spec, nucleus_proto, current, block_of(dst, d[0], m), out.gens);

  Arrangement next_arr(l);
  Label next_label;
  for (const int g : schedule->gens) {
    const Permutation& beta = spec.super_gens[g].perm;
    const Permutation lifted = beta.expand_blocks(m);
    lifted.apply_into(current, next_label);
    if (next_label != current) {
      out.gens.push_back(nucleus_count + g);  // super gens follow nucleus gens
      current.swap(next_label);
    }
    for (int p = 0; p < l; ++p) next_arr[p] = arr[beta[p]];
    arr.swap(next_arr);
    const int front_block = arr[0];
    if (!visited[front_block]) {
      visited[front_block] = true;
      sort_front_block(spec, nucleus_proto, current, block_of(dst, d[front_block], m),
                       out.gens);
    }
  }

  if (current != dst) {
    throw std::invalid_argument("route_super_ip: destination is not a node of " +
                                spec.name);
  }
  return out;
}

int route_length_bound(const SuperIPSpec& spec, int nucleus_diameter,
                       bool symmetric_seed) {
  const int t = symmetric_seed ? compute_t_symmetric(spec) : compute_t(spec);
  if (t < 0) return -1;
  return spec.l * nucleus_diameter + t;
}

}  // namespace ipg
