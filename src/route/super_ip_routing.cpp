#include "route/super_ip_routing.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "graph/bfs.hpp"
#include "graph/builder.hpp"
#include "util/narrow.hpp"

namespace ipg {

namespace {

Label sorted_copy(Label x) {
  std::sort(x.begin(), x.end());
  return x;
}

/// Appends a nucleus-generator route sorting the front block of `current`
/// to `target_content`, applying it to `current` as it goes.
void sort_front_block(const SuperIPSpec& spec, const IPGraphSpec& nucleus_proto,
                      Label& current, const Label& target_content,
                      std::vector<int>& out_gens) {
  const Label front = block_of(current, 0, spec.m);
  if (front == target_content) return;
  IPGraphSpec nucleus = nucleus_proto;
  nucleus.seed = front;
  // Each BFS step changes the block content, hence the full label: every
  // emitted step is a genuine edge of the lifted graph.
  const GenPath inner = bfs_route(nucleus, front, target_content);
  out_gens.insert(out_gens.end(), inner.gens.begin(), inner.gens.end());
  set_block(current, 0, spec.m, target_content);
}

}  // namespace

GenPath route_super_ip(const SuperIPSpec& spec, const Label& src, const Label& dst) {
  if (static_cast<int>(src.size()) != spec.label_length() ||
      static_cast<int>(dst.size()) != spec.label_length()) {
    throw std::invalid_argument("route_super_ip: label length mismatch");
  }
  GenPath out;
  if (src == dst) return out;

  const int l = spec.l;
  const int m = spec.m;
  const int nucleus_count = static_cast<int>(spec.nucleus_gens.size());

  // Decide plain vs symmetric mode from the block multisets of src.
  std::vector<Label> src_multisets(as_size(l)), dst_multisets(as_size(l));
  for (int i = 0; i < l; ++i) {
    src_multisets[as_size(i)] = sorted_copy(block_of(src, i, m));
    dst_multisets[as_size(i)] = sorted_copy(block_of(dst, i, m));
  }
  const bool plain = std::all_of(src_multisets.begin(), src_multisets.end(),
                                 [&](const Label& s) { return s == src_multisets[0]; });

  // d[i] = destination position of the block at src position i.
  std::vector<int> d(as_size(l), -1);
  std::optional<Schedule> schedule;
  if (plain) {
    schedule = min_visit_all_schedule(spec);
    if (!schedule) throw std::invalid_argument("super-generators cannot visit all blocks");
    for (int q = 0; q < l; ++q) d[schedule->final_arrangement[as_size(q)]] = q;
  } else {
    // Symmetric mode: match disjoint block symbol sets.
    Arrangement target(as_size(l), 0);
    std::vector<bool> used(as_size(l), false);
    for (int i = 0; i < l; ++i) {
      int match = -1;
      for (int q = 0; q < l; ++q) {
        if (!used[as_size(q)] && dst_multisets[as_size(q)] == src_multisets[as_size(i)]) {
          match = q;
          break;
        }
      }
      if (match < 0) {
        throw std::invalid_argument("route_super_ip: dst blocks do not match src");
      }
      used[as_size(match)] = true;
      d[as_size(i)] = match;
      target[as_size(match)] = static_cast<std::uint8_t>(i);
    }
    schedule = schedule_to_arrangement(spec, target);
    if (!schedule) {
      throw std::invalid_argument("route_super_ip: required arrangement unreachable");
    }
  }

  const IPGraphSpec nucleus_proto = spec.nucleus_spec();
  Label current = src;
  Arrangement arr(as_size(l));
  for (int i = 0; i < l; ++i) arr[as_size(i)] = static_cast<std::uint8_t>(i);
  std::vector<bool> visited(as_size(l), false);

  // Block 0 starts at the front: sort it to its destination content.
  visited[0] = true;
  sort_front_block(spec, nucleus_proto, current, block_of(dst, d[0], m), out.gens);

  Arrangement next_arr(as_size(l));
  Label next_label;
  for (const int g : schedule->gens) {
    const Permutation& beta = spec.super_gens[as_size(g)].perm;
    const Permutation lifted = beta.expand_blocks(m);
    lifted.apply_into(current, next_label);
    if (next_label != current) {
      out.gens.push_back(nucleus_count + g);  // super gens follow nucleus gens
      current.swap(next_label);
    }
    for (int p = 0; p < l; ++p) next_arr[as_size(p)] = arr[beta[p]];
    arr.swap(next_arr);
    const int front_block = arr[0];
    if (!visited[as_size(front_block)]) {
      visited[as_size(front_block)] = true;
      sort_front_block(spec, nucleus_proto, current, block_of(dst, d[as_size(front_block)], m),
                       out.gens);
    }
  }

  if (current != dst) {
    throw std::invalid_argument("route_super_ip: destination is not a node of " +
                                spec.name);
  }
  return out;
}

int route_length_bound(const SuperIPSpec& spec, int nucleus_diameter,
                       bool symmetric_seed) {
  const int t = symmetric_seed ? compute_t_symmetric(spec) : compute_t(spec);
  if (t < 0) return -1;
  return spec.l * nucleus_diameter + t;
}

SuperIPRouter::SuperIPRouter(SuperIPSpec spec,
                             std::uint64_t schedule_cache_capacity)
    : spec_(std::move(spec)),
      nucleus_count_(static_cast<int>(spec_.nucleus_gens.size())),
      nucleus_(build_ip_graph(spec_.nucleus_spec())),
      sym_schedules_(
          {.capacity = schedule_cache_capacity, .shards = 8, .admission = false}) {
  const Label base = spec_.seed_block(0);
  base_lo_ = *std::min_element(base.begin(), base.end());
  for (int i = 1; i < spec_.l && plain_; ++i) {
    if (spec_.seed_block(i) != base) plain_ = false;
  }

  lifted_super_.reserve(spec_.super_gens.size());
  for (const Generator& g : spec_.super_gens) {
    lifted_super_.push_back(g.perm.expand_blocks(spec_.m));
  }

  std::optional<Schedule> s = min_visit_all_schedule(spec_);
  if (!s) {
    throw std::invalid_argument(
        "SuperIPRouter: super-generators cannot visit all blocks: " +
        spec_.name);
  }
  plain_schedule_ = std::move(*s);

  // First-generator table: one reverse-graph BFS per nucleus node gives
  // distances-to-dst; the first (smallest-target) distance-decreasing arc's
  // tag is the step to take. O(M^2) space, O(M * E) time — the nucleus is
  // the *small* factor of a super-IP graph, that is the whole point.
  const Node M = nucleus_.num_nodes();
  const Graph& ng = nucleus_.graph;
  GraphBuilder rb(M);
  rb.reserve(ng.num_arcs());
  for (Node u = 0; u < M; ++u) {
    for (const Node v : ng.neighbors(u)) rb.add_arc(v, u);
  }
  const Graph reverse = std::move(rb).build();
  first_gen_table_.assign(static_cast<std::size_t>(M) * M, kNoFirstGen);
  BfsScratch scratch(M);
  for (Node dst = 0; dst < M; ++dst) {
    const auto dist = scratch.run(reverse, dst);  // dist[u] = d(u -> dst)
    std::uint16_t* row = first_gen_table_.data() + static_cast<std::size_t>(dst) * M;
    for (Node u = 0; u < M; ++u) {
      if (u == dst || dist[u] == kUnreachable) continue;
      const auto nb = ng.neighbors(u);
      const auto tags = ng.tags(u);
      for (std::size_t i = 0; i < nb.size(); ++i) {
        if (dist[nb[i]] + 1 == dist[u]) {
          row[u] = tags[i];
          break;
        }
      }
      assert(row[u] != kNoFirstGen);
    }
  }
}

Node SuperIPRouter::nucleus_node(const Label& block) const {
  if (plain_) return nucleus_.node_of(block);
  // Symmetric seed: shift the content back into the base block's symbol
  // range before the lookup (block b holds base symbols + b*m).
  if (block[0] < base_lo_) return kInvalidIPNode;
  const int owner = (block[0] - base_lo_) / spec_.m;
  if (owner >= spec_.l) return kInvalidIPNode;
  const int shift = owner * spec_.m;
  Label shifted = block;
  for (std::uint8_t& s : shifted) {
    if (s < shift + base_lo_) return kInvalidIPNode;
    s = static_cast<std::uint8_t>(s - shift);
  }
  return nucleus_.node_of(shifted);
}

void SuperIPRouter::sort_front_block(Label& current, const Label& target_content,
                                     std::vector<int>& out_gens) const {
  const int m = spec_.m;
  if (std::equal(current.begin(), current.begin() + m, target_content.begin())) {
    return;
  }
  const Label front = block_of(current, 0, m);
  const Node src = nucleus_node(front);
  const Node dst = nucleus_node(target_content);
  if (src == kInvalidIPNode || dst == kInvalidIPNode) {
    throw std::invalid_argument(
        "SuperIPRouter: block content outside the nucleus orbit");
  }
  const Node M = nucleus_.num_nodes();
  Node cur = src;
  while (cur != dst) {
    const std::uint16_t g =
        first_gen_table_[static_cast<std::size_t>(dst) * M + cur];
    if (g == kNoFirstGen) {
      throw std::invalid_argument(
          "SuperIPRouter: target content unreachable within the nucleus");
    }
    out_gens.push_back(g);
    cur = nucleus_.apply_generator(cur, g);
  }
  set_block(current, 0, m, target_content);
}

GenPath SuperIPRouter::route(const Label& src, const Label& dst) const {
  const int l = spec_.l;
  const int m = spec_.m;
  if (static_cast<int>(src.size()) != spec_.label_length() ||
      static_cast<int>(dst.size()) != spec_.label_length()) {
    throw std::invalid_argument("SuperIPRouter: label length mismatch");
  }
  GenPath out;
  if (src == dst) return out;

  std::vector<int> d(as_size(l), -1);
  Schedule sym_schedule;  // copy held outside the cache lock (evictable)
  const Schedule* schedule = nullptr;
  if (plain_) {
    schedule = &plain_schedule_;
    for (int q = 0; q < l; ++q) d[plain_schedule_.final_arrangement[as_size(q)]] = q;
  } else {
    // Symmetric mode: match the disjoint block symbol sets of src to dst
    // to find the forced destination position of every block, then fetch
    // (or lazily build) the schedule realizing that arrangement.
    std::vector<Label> src_multisets(as_size(l)), dst_multisets(as_size(l));
    for (int i = 0; i < l; ++i) {
      src_multisets[as_size(i)] = sorted_copy(block_of(src, i, m));
      dst_multisets[as_size(i)] = sorted_copy(block_of(dst, i, m));
    }
    Arrangement target(as_size(l), 0);
    std::vector<bool> used(as_size(l), false);
    for (int i = 0; i < l; ++i) {
      int match = -1;
      for (int q = 0; q < l; ++q) {
        if (!used[as_size(q)] && dst_multisets[as_size(q)] == src_multisets[as_size(i)]) {
          match = q;
          break;
        }
      }
      if (match < 0) {
        throw std::invalid_argument("SuperIPRouter: dst blocks do not match src");
      }
      used[as_size(match)] = true;
      d[as_size(i)] = match;
      target[as_size(match)] = static_cast<std::uint8_t>(i);
    }
    sym_schedules_.get_or_compute(
        target,
        [&](Schedule& value) {
          std::optional<Schedule> s = schedule_to_arrangement(spec_, target);
          if (!s) {
            throw std::invalid_argument(
                "SuperIPRouter: required arrangement unreachable");
          }
          value = std::move(*s);
        },
        sym_schedule);
    schedule = &sym_schedule;
  }

  Label current = src;
  Arrangement arr(as_size(l));
  for (int i = 0; i < l; ++i) arr[as_size(i)] = static_cast<std::uint8_t>(i);
  std::vector<bool> visited(as_size(l), false);

  visited[0] = true;
  sort_front_block(current, block_of(dst, d[0], m), out.gens);

  Arrangement next_arr(as_size(l));
  Label next_label;
  for (const int g : schedule->gens) {
    lifted_super_[as_size(g)].apply_into(current, next_label);
    if (next_label != current) {
      out.gens.push_back(nucleus_count_ + g);
      current.swap(next_label);
    }
    const Permutation& beta = spec_.super_gens[as_size(g)].perm;
    for (int p = 0; p < l; ++p) next_arr[as_size(p)] = arr[beta[p]];
    arr.swap(next_arr);
    const int front_block = arr[0];
    if (!visited[as_size(front_block)]) {
      visited[as_size(front_block)] = true;
      sort_front_block(current, block_of(dst, d[as_size(front_block)], m), out.gens);
    }
  }

  if (current != dst) {
    throw std::invalid_argument("SuperIPRouter: destination is not a node of " +
                                spec_.name);
  }
  return out;
}

int SuperIPRouter::first_gen(const Label& src, const Label& dst) const {
  const GenPath path = route(src, dst);
  return path.gens.empty() ? -1 : path.gens.front();
}

}  // namespace ipg
