#include "route/star_routing.hpp"

#include <cassert>
#include <stdexcept>
#include <vector>
#include "util/narrow.hpp"

namespace ipg {

namespace {

/// pos_perm[p] = destination position of the symbol currently at position
/// p. Routing src -> dst is sorting pos_perm to the identity with moves
/// "swap position 0 with position i".
std::vector<int> to_position_perm(const Label& src, const Label& dst) {
  if (src.size() != dst.size()) {
    throw std::invalid_argument("route_star: label length mismatch");
  }
  std::vector<int> pos_of_symbol(256, -1);
  for (std::size_t p = 0; p < dst.size(); ++p) {
    if (pos_of_symbol[dst[p]] != -1) {
      throw std::invalid_argument("route_star: repeated symbols in dst");
    }
    pos_of_symbol[dst[p]] = static_cast<int>(p);
  }
  std::vector<int> perm(src.size());
  for (std::size_t p = 0; p < src.size(); ++p) {
    const int target = pos_of_symbol[src[p]];
    if (target < 0) {
      throw std::invalid_argument("route_star: src symbol missing from dst");
    }
    perm[p] = target;
  }
  return perm;
}

}  // namespace

GenPath route_star(const Label& src, const Label& dst) {
  std::vector<int> perm = to_position_perm(src, dst);
  const int n = static_cast<int>(perm.size());
  GenPath out;
  // Classic greedy: if the front symbol is not home, send it home; if it is
  // home but the permutation is unsorted, pull in any misplaced symbol.
  int scan = 1;  // positions below `scan` other than 0 are known sorted
  while (true) {
    if (perm[0] != 0) {
      const int target = perm[0];
      std::swap(perm[0], perm[as_size(target)]);
      out.gens.push_back(target - 1);  // generator (1, target+1)
      continue;
    }
    while (scan < n && perm[as_size(scan)] == scan) ++scan;
    if (scan == n) break;
    std::swap(perm[0], perm[as_size(scan)]);
    out.gens.push_back(scan - 1);
  }
  return out;
}

int star_distance(const Label& src, const Label& dst) {
  const std::vector<int> perm = to_position_perm(src, dst);
  const int n = static_cast<int>(perm.size());
  std::vector<bool> seen(as_size(n), false);
  int moves = 0;
  for (int start = 0; start < n; ++start) {
    if (seen[as_size(start)] || perm[as_size(start)] == start) continue;
    int len = 0;
    bool contains_front = false;
    int p = start;
    while (!seen[as_size(p)]) {
      seen[as_size(p)] = true;
      if (p == 0) contains_front = true;
      p = perm[as_size(p)];
      ++len;
    }
    moves += contains_front ? len - 1 : len + 1;
  }
  return moves;
}

}  // namespace ipg
