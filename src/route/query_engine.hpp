#pragma once
// The batched routing query engine — the system's serving tier. One object
// answers distance / next-hop / full-route queries in batches against any
// net::Topology, materialized or implicit:
//
//   - label backend (ImplicitSuperIPTopology): Theorem 4.1/4.3 label
//     routing via SuperIPRouter. For plain packable seeds the whole
//     query — rank -> packed label (Theorem 3.2, PackedSuperCodec), the
//     schedule walk, nucleus sorting, next-hop application — runs in the
//     packed domain with zero heap traffic per query; the scalar router is
//     kept as the differential oracle (answer_batch_scalar) and as the
//     fallback for symmetric or unpackable seeds.
//   - BFS backend (any other Topology, faulty ones included): per-query
//     BFS over the adjacency view, early exit at the destination.
//     Deterministic because neighbors() is sorted by (to, tag).
//
// Answers are a pure function of (topology, query): queries in a batch
// share no state except the route cache, and a cache hit returns a value
// byte-identical to recomputation (routing is deterministic), so
// answer_batch is bit-identical at every thread count — the differential
// tests run the same batch at 1/2/8 threads and compare.
//
// The route cache (util/sharded_cache.hpp) memoizes full routes keyed by
// (src, dst): bounded, sharded, instrumented, admission-controlled. All
// three query kinds are derived views of the cached route, so one entry
// serves them all. The cache assumes the topology is immutable; for a
// FaultyTopology whose FaultSet mutates between calls, construct with
// cache_capacity = 0 (stale routes are never served because nothing is
// stored).

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ipg/packed_batch.hpp"
#include "ipg/packed_label.hpp"
#include "net/topology.hpp"
#include "route/disjoint.hpp"
#include "route/super_ip_routing.hpp"
#include "util/sharded_cache.hpp"
#include "util/thread_pool.hpp"

namespace ipg::route {

/// What the caller wants to know about the (src, dst) pair.
enum class QueryKind : std::uint8_t {
  kDistance,  ///< hop count of the engine's route
  kNextHop,   ///< first node on the route
  kFullRoute  ///< the whole generator/tag sequence
};

/// Which route the engine answers with.
enum class RoutePolicy : std::uint8_t {
  kEngine,   ///< the backend's single route (label schedule or BFS)
  kDisjoint  ///< shortest path of the k-disjoint set (IST multipath layer)
};

struct RouteQuery {
  net::NodeId src = net::kInvalidNodeId;
  net::NodeId dst = net::kInvalidNodeId;
  QueryKind kind = QueryKind::kFullRoute;
  RoutePolicy policy = RoutePolicy::kEngine;
};

enum class AnswerStatus : std::uint8_t {
  kOk,
  kUnreachable,  ///< no route in the (possibly faulty) topology
  kInvalid       ///< src or dst is not a node id
};

/// The answer to one query. `distance` counts the hops of the route the
/// engine produces: BFS-shortest under the BFS backend, the Theorem
/// 4.1/4.3 sorting-route length under the label backend (identical to
/// route_super_ip — that equality is what the differential tests pin).
struct RouteAnswer {
  AnswerStatus status = AnswerStatus::kInvalid;
  std::int32_t distance = -1;
  int first_gen = -1;  ///< first route step's generator/arc tag (-1: none)
  net::NodeId next_hop = net::kInvalidNodeId;  ///< kNextHop / kFullRoute
  std::vector<int> gens;                       ///< kFullRoute only

  friend bool operator==(const RouteAnswer&, const RouteAnswer&) = default;
};

struct QueryEngineOptions {
  /// Route-cache entry bound; 0 disables caching (required when the
  /// topology can mutate underneath the engine, e.g. live FaultSets).
  std::uint64_t cache_capacity = 1u << 16;
  int cache_shards = 64;
  bool cache_admission = true;
  /// Label backend: use the packed-domain kernel when the seed packs
  /// (plain seed, label <= 128 bits). Off = always scalar SuperIPRouter.
  bool use_packed_kernels = true;
  /// Bound on the symmetric-seed schedule cache of the owned router.
  std::uint64_t schedule_cache_capacity =
      SuperIPRouter::kDefaultScheduleCacheCapacity;
  /// Build the KDisjointRouter so RoutePolicy::kDisjoint queries and
  /// k_disjoint_routes() work. Off by default: the snapshot costs memory
  /// proportional to the topology.
  bool enable_disjoint = false;
};

class QueryEngine {
 public:
  /// BFS backend over any adjacency view (materialized, faulty, ...).
  explicit QueryEngine(const net::Topology& topo, QueryEngineOptions opts = {});

  /// Label backend: Theorem 4.1/4.3 routing, packed fast path when the
  /// seed allows. Non-owning; `topo` must outlive the engine.
  explicit QueryEngine(const net::ImplicitSuperIPTopology& topo,
                       QueryEngineOptions opts = {});

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  const net::Topology& topology() const noexcept { return *topo_; }
  bool label_backend() const noexcept { return implicit_ != nullptr; }
  /// True when the packed-domain kernel serves this instance's queries.
  bool packed_kernel_active() const noexcept { return packed_.valid(); }

  /// The owned Theorem 4.1/4.3 router (label backend only).
  const SuperIPRouter& router() const noexcept { return *router_; }

  /// Answers queries[i] into answers[i] (spans must be equal length).
  /// Serial; allocation-free per query after warmup on the packed path.
  void answer_batch(std::span<const RouteQuery> queries,
                    std::span<RouteAnswer> answers) const;

  /// Parallel over the batch: queries are chunked across the pool, each
  /// worker using its own scratch. Answers are bit-identical to the
  /// serial overload at any thread count (see header).
  void answer_batch(std::span<const RouteQuery> queries,
                    std::span<RouteAnswer> answers, ThreadPool& pool) const;

  /// Convenience: resolves the policy (serial when it says 1 thread).
  void answer_batch(std::span<const RouteQuery> queries,
                    std::span<RouteAnswer> answers,
                    const ExecPolicy& policy) const;

  /// The differential oracle and bench baseline: per-query scalar path —
  /// no route cache, no packed kernels, byte-vector labels throughout.
  /// Must agree bit-for-bit with answer_batch on every query.
  void answer_batch_scalar(std::span<const RouteQuery> queries,
                           std::span<RouteAnswer> answers) const;

  RouteAnswer answer(const RouteQuery& q) const;

  /// The full pairwise internally node-disjoint path set (requires
  /// opts.enable_disjoint). k == 0 asks for the maximum set.
  DisjointRouteSet k_disjoint_routes(net::NodeId src, net::NodeId dst,
                                     int k = 0) const;

  /// Non-null iff constructed with opts.enable_disjoint.
  const KDisjointRouter* disjoint_router() const noexcept {
    return disjoint_.get();
  }

  ShardedCacheStats cache_stats() const { return cache_.stats(); }
  std::uint64_t cache_capacity() const noexcept { return cache_.capacity(); }

 private:
  /// One cached route; all three query kinds derive from it.
  struct CachedRoute {
    AnswerStatus status = AnswerStatus::kUnreachable;
    net::NodeId next_hop = net::kInvalidNodeId;
    std::vector<int> gens;
  };

  struct Scratch {
    Label a, b;  // label scratch (scalar paths)
    std::vector<net::TopoArc> arcs;
    CachedRoute route;  // per-query result, reused for its gens capacity
    // BFS backend state, reused across queries:
    std::vector<net::NodeId> frontier, next_frontier;
    std::unordered_map<net::NodeId, std::pair<net::NodeId, int>> parent;
    // Packed label-backend state:
    std::vector<std::uint8_t> arr, next_arr;
    std::vector<std::uint8_t> visited;
    std::vector<Node> dst_blocks;  // nucleus node of each dst block
  };

  struct PairKey {
    net::NodeId src = 0, dst = 0;
    friend bool operator==(const PairKey&, const PairKey&) = default;
  };
  struct PairKeyHash {
    std::size_t operator()(const PairKey& k) const noexcept {
      std::uint64_t h = k.src + 0x9e3779b97f4a7c15ull * (k.dst + 1);
      h ^= h >> 30;
      h *= 0xbf58476d1ce4e5b9ull;
      h ^= h >> 27;
      return static_cast<std::size_t>(h);
    }
  };
  void answer_one(const RouteQuery& q, RouteAnswer& out, Scratch& s,
                  bool use_cache, bool allow_packed) const;
  void compute_route(net::NodeId src, net::NodeId dst, CachedRoute& out,
                     Scratch& s, bool allow_packed) const;
  /// Packed-domain Theorem 4.1 route; fills out.gens/next_hop/status.
  void route_packed(net::NodeId src, net::NodeId dst, CachedRoute& out,
                    Scratch& s) const;
  /// Scalar label route via the owned SuperIPRouter.
  void route_scalar_label(net::NodeId src, net::NodeId dst, CachedRoute& out,
                          Scratch& s) const;
  /// BFS over the adjacency view, early exit at dst.
  void route_bfs(net::NodeId src, net::NodeId dst, CachedRoute& out,
                 Scratch& s) const;

  const net::Topology* topo_ = nullptr;
  const net::ImplicitSuperIPTopology* implicit_ = nullptr;  // label backend
  QueryEngineOptions opts_;
  std::unique_ptr<SuperIPRouter> router_;  // label backend
  PackedSuperCodec packed_;                // valid => packed kernel active
  std::vector<PackedPerm> packed_gens_;    // ip_spec generator perms, packed
  std::vector<int> plain_dest_;            // d[i]: dst position of block i
  std::unique_ptr<KDisjointRouter> disjoint_;  // opts.enable_disjoint only
  mutable ShardedCache<PairKey, CachedRoute, PairKeyHash> cache_;
};

}  // namespace ipg::route
