#pragma once
// Graph embeddings: evaluate the dilation/expansion of a guest-to-host node
// map, plus the natural embedding of the hypercube Q_{l*n} into HSN(l, Q_n)
// whose dilation-3 property the paper cites (Sections 1 and 3.2, after
// [26, 33]).

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "ipg/build.hpp"

namespace ipg {

struct EmbeddingStats {
  Dist dilation = 0;          ///< max host distance over guest edges
  double avg_dilation = 0.0;  ///< mean host distance over guest edges
  double expansion = 0.0;     ///< host nodes / guest nodes
  bool injective = true;
};

/// Evaluates `phi` (guest node -> host node) by measuring host distances
/// across every guest edge (one host BFS per guest node with edges).
EmbeddingStats evaluate_embedding(const Graph& guest, const Graph& host,
                                  std::span<const Node> phi);

/// The natural bit-block embedding of Q_{l*n} into HSN(l, Q_n) built by
/// `hsn = build_super_ip_graph(make_hsn(l, hypercube_nucleus(n)))`:
/// hypercube address bits [i*n, (i+1)*n) select the orientation of the n
/// pairs of super-symbol i. Guest dimension-j links inside block 0 map to
/// single HSN links; links in block i > 0 dilate to swap-flip-swap paths
/// of length <= 3.
std::vector<Node> hsn_hypercube_embedding(const IPGraph& hsn, int l, int n);

}  // namespace ipg
