#include "route/path.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>

namespace ipg {

Label apply_path(const IPGraphSpec& spec, Label start, std::span<const int> gens) {
  Label scratch;
  for (const int g : gens) {
    assert(g >= 0 && g < static_cast<int>(spec.generators.size()));
    spec.generators[g].perm.apply_into(start, scratch);
    start.swap(scratch);
  }
  return start;
}

bool verify_path(const IPGraphSpec& spec, const Label& src, const Label& dst,
                 std::span<const int> gens) {
  Label current = src;
  Label next;
  for (const int g : gens) {
    if (g < 0 || g >= static_cast<int>(spec.generators.size())) return false;
    spec.generators[g].perm.apply_into(current, next);
    if (next == current) return false;  // a fixed label is not an edge
    current.swap(next);
  }
  return current == dst;
}

GenPath bfs_route(const IPGraphSpec& spec, const Label& src, const Label& dst) {
  if (src == dst) return {};
  std::unordered_map<Label, std::pair<Label, int>, LabelHash> parent;
  std::vector<Label> queue{src};
  parent.emplace(src, std::make_pair(Label{}, -1));
  Label next;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Label current = queue[head];  // copy: queue may reallocate
    for (int g = 0; g < static_cast<int>(spec.generators.size()); ++g) {
      spec.generators[g].perm.apply_into(current, next);
      if (next == current) continue;
      if (parent.emplace(next, std::make_pair(current, g)).second) {
        if (next == dst) {
          GenPath out;
          Label walk = dst;
          while (walk != src) {
            const auto& [prev, gen] = parent.at(walk);
            out.gens.push_back(gen);
            walk = prev;
          }
          std::reverse(out.gens.begin(), out.gens.end());
          return out;
        }
        queue.push_back(next);
      }
    }
  }
  throw std::invalid_argument("bfs_route: destination not reachable");
}

}  // namespace ipg
