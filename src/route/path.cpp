#include "route/path.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "ipg/packed_label.hpp"
#include "util/narrow.hpp"

namespace ipg {

Label apply_path(const IPGraphSpec& spec, Label start, std::span<const int> gens) {
  Label scratch;
  for (const int g : gens) {
    assert(g >= 0 && g < static_cast<int>(spec.generators.size()));
    spec.generators[as_size(g)].perm.apply_into(start, scratch);
    start.swap(scratch);
  }
  return start;
}

bool verify_path(const IPGraphSpec& spec, const Label& src, const Label& dst,
                 std::span<const int> gens) {
  Label current = src;
  Label next;
  for (const int g : gens) {
    if (g < 0 || g >= static_cast<int>(spec.generators.size())) return false;
    spec.generators[as_size(g)].perm.apply_into(current, next);
    if (next == current) return false;  // a fixed label is not an edge
    current.swap(next);
  }
  return current == dst;
}

namespace {

[[noreturn]] void throw_unreachable() {
  throw std::invalid_argument("bfs_route: destination not reachable");
}

/// BFS over packed labels: same search order as the fallback below (labels
/// expand in discovery order, generators in index order), so both paths
/// return the same route. No per-label heap blocks.
GenPath bfs_route_packed(const IPGraphSpec& spec, const LabelCodec& codec,
                         const PackedLabel& src, const PackedLabel& dst) {
  std::vector<PackedPerm> gens;
  gens.reserve(spec.generators.size());
  for (const Generator& g : spec.generators) gens.emplace_back(codec, g.perm);

  struct Entry {
    PackedLabel x;
    std::uint32_t parent;
    std::int32_t gen;
  };
  std::vector<Entry> order{{src, 0, -1}};
  PackedLabelMap seen;
  seen.try_emplace(src, 0);
  for (std::size_t head = 0; head < order.size(); ++head) {
    const PackedLabel current = order[head].x;  // copy: order may reallocate
    for (int g = 0; g < static_cast<int>(gens.size()); ++g) {
      const PackedLabel next = gens[as_size(g)].apply(current);
      if (next == current) continue;
      if (!seen.try_emplace(next, order.size()).second) continue;
      order.push_back(Entry{next, static_cast<std::uint32_t>(head), g});
      if (next == dst) {
        GenPath out;
        for (std::size_t i = order.size() - 1; i != 0; i = order[i].parent) {
          out.gens.push_back(order[i].gen);
        }
        std::reverse(out.gens.begin(), out.gens.end());
        return out;
      }
    }
  }
  throw_unreachable();
}

}  // namespace

GenPath bfs_route(const IPGraphSpec& spec, const Label& src, const Label& dst) {
  if (src == dst) return {};
  const LabelCodec codec = LabelCodec::for_label(src);
  if (codec.valid()) {
    PackedLabel pdst;
    // A destination that does not even pack under the source's codec has a
    // different shape, hence cannot lie in the source's orbit.
    if (!codec.try_pack(dst, pdst)) throw_unreachable();
    return bfs_route_packed(spec, codec, codec.pack(src), pdst);
  }
  std::unordered_map<Label, std::pair<Label, int>, LabelHash> parent;
  std::vector<Label> queue{src};
  parent.emplace(src, std::make_pair(Label{}, -1));
  Label next;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Label current = queue[head];  // copy: queue may reallocate
    for (int g = 0; g < static_cast<int>(spec.generators.size()); ++g) {
      spec.generators[as_size(g)].perm.apply_into(current, next);
      if (next == current) continue;
      if (parent.emplace(next, std::make_pair(current, g)).second) {
        if (next == dst) {
          GenPath out;
          Label walk = dst;
          while (walk != src) {
            const auto& [prev, gen] = parent.at(walk);
            out.gens.push_back(gen);
            walk = prev;
          }
          std::reverse(out.gens.begin(), out.gens.end());
          return out;
        }
        queue.push_back(next);
      }
    }
  }
  throw_unreachable();
}

}  // namespace ipg
