#include "route/tuple_routing.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "graph/bfs.hpp"
#include "ipg/schedule.hpp"
#include "util/narrow.hpp"

namespace ipg {

namespace {

/// Shortest nucleus path from s to t (node sequence, s first).
std::vector<Node> nucleus_path(const Graph& nucleus, Node s, Node t) {
  if (s == t) return {s};
  std::vector<Node> parent(nucleus.num_nodes(), kUnreachable);
  std::vector<Node> queue{s};
  parent[s] = s;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    for (const Node v : nucleus.neighbors(queue[head])) {
      if (parent[v] == kUnreachable) {
        parent[v] = queue[head];
        if (v == t) {
          std::vector<Node> path{t};
          while (path.back() != s) path.push_back(parent[path.back()]);
          std::reverse(path.begin(), path.end());
          return path;
        }
        queue.push_back(v);
      }
    }
  }
  throw std::invalid_argument("tuple routing: nucleus target unreachable");
}

}  // namespace

std::vector<TupleHop> route_tuple_network(const TupleNetwork& net,
                                          const Graph& nucleus,
                                          std::span<const Generator> super_gens,
                                          Node src, Node dst) {
  std::vector<TupleHop> out;
  if (src == dst) return out;

  // The schedule machinery only needs l and the super-generator set.
  SuperIPSpec sched_spec;
  sched_spec.l = net.l;
  sched_spec.super_gens.assign(super_gens.begin(), super_gens.end());
  const auto schedule = min_visit_all_schedule(sched_spec);
  if (!schedule) {
    throw std::invalid_argument("tuple routing: blocks cannot reach the front");
  }
  std::vector<int> d(as_size(net.l));
  for (int q = 0; q < net.l; ++q) d[schedule->final_arrangement[as_size(q)]] = q;

  std::vector<Node> current = net.decode(src);
  const std::vector<Node> target = net.decode(dst);

  const auto sort_front = [&](int original_block) {
    const auto path =
        nucleus_path(nucleus, current[0], target[as_size(d[as_size(original_block)])]);
    for (std::size_t i = 1; i < path.size(); ++i) {
      current[0] = path[i];
      out.push_back(TupleHop{false, 0, net.encode(current)});
    }
  };

  Arrangement arr(as_size(net.l));
  for (int i = 0; i < net.l; ++i) arr[as_size(i)] = static_cast<std::uint8_t>(i);
  std::vector<bool> visited(as_size(net.l), false);
  visited[0] = true;
  sort_front(0);

  std::vector<Node> moved(as_size(net.l));
  Arrangement next_arr(as_size(net.l));
  for (const int g : schedule->gens) {
    const Permutation& beta = super_gens[as_size(g)].perm;
    for (int p = 0; p < net.l; ++p) moved[as_size(p)] = current[beta[p]];
    if (moved != current) {
      current = moved;
      out.push_back(TupleHop{true, g, net.encode(current)});
    } else {
      current = moved;
    }
    for (int p = 0; p < net.l; ++p) next_arr[as_size(p)] = arr[beta[p]];
    arr = next_arr;
    const int front = arr[0];
    if (!visited[as_size(front)]) {
      visited[as_size(front)] = true;
      sort_front(front);
    }
  }

  if (net.encode(current) != dst) {
    throw std::invalid_argument("tuple routing: destination mismatch");
  }
  return out;
}

}  // namespace ipg
