#pragma once
// Generator paths: routes through IP graphs expressed as sequences of
// generator indices, plus validity checking. Keeping routes at the label
// level means routing never needs the explicit graph, so routers scale to
// instances far beyond enumeration.

#include <span>
#include <vector>

#include "ipg/label.hpp"
#include "ipg/spec.hpp"

namespace ipg {

/// A route: generator indices (into an IPGraphSpec's generator list)
/// applied left to right.
struct GenPath {
  std::vector<int> gens;

  int length() const noexcept { return static_cast<int>(gens.size()); }
};

/// Applies the path to `start` and returns the endpoint label.
Label apply_path(const IPGraphSpec& spec, Label start, std::span<const int> gens);

/// True iff every step is a real move (no generator fixes the current
/// label — a fixed label would be a non-edge) and the path ends at `dst`.
bool verify_path(const IPGraphSpec& spec, const Label& src, const Label& dst,
                 std::span<const int> gens);

/// Shortest generator path between two labels, found by BFS over the label
/// space (exponential in general — intended for tests and small nuclei).
GenPath bfs_route(const IPGraphSpec& spec, const Label& src, const Label& dst);

}  // namespace ipg
