#pragma once
// The paper's routing algorithm for (symmetric) super-IP graphs
// (Theorem 4.1 / 4.3): fix a super-generator schedule that brings every
// super-symbol to the leftmost position at least once; whenever a
// super-symbol arrives at the front for the first time, sort it (with
// nucleus generators) to the content the destination holds at that
// super-symbol's *final* position under the schedule.
//
// The route length is at most l * D_G + t (resp. t_S), which Theorems
// 4.1/4.3 show is exactly the diameter. Routing operates purely on labels:
// it never materializes the network, so it works at any scale.

#include <cstdint>
#include <span>
#include <vector>

#include "ipg/build.hpp"
#include "ipg/schedule.hpp"
#include "ipg/super.hpp"
#include "route/path.hpp"
#include "util/sharded_cache.hpp"

namespace ipg {

/// Routes `src` -> `dst` in the super-IP graph described by `spec`.
/// Returned generator indices refer to spec.to_ip_spec()'s ordering
/// (nucleus generators first, then super-generators). Handles both plain
/// seeds (identical blocks, Theorem 4.1) and symmetric seeds (distinct
/// block symbol sets, Theorem 4.3). Throws std::invalid_argument if `dst`
/// is not a node of the graph (block contents outside the nucleus orbits).
GenPath route_super_ip(const SuperIPSpec& spec, const Label& src, const Label& dst);

/// Upper bound on route length guaranteed by Theorem 4.1/4.3:
/// l * D_G + t (plain) or l * D_G + t_S (symmetric). `nucleus_diameter`
/// is D_G.
int route_length_bound(const SuperIPSpec& spec, int nucleus_diameter,
                       bool symmetric_seed);

/// Reusable router for one super-IP spec: everything route_super_ip
/// recomputes per call — the super-generator schedule, the lifted block
/// permutations, and shortest nucleus sorting routes — is built once at
/// construction (the nucleus routes as a first-generator table from one
/// BFS per nucleus node), so route() performs no search at all. This is
/// what lets sim::SimNetwork's label-routing policy derive a source route
/// per simulated packet on instances that are never materialized.
///
/// Routes have exactly the same lengths as route_super_ip's (both compose
/// shortest nucleus sorts with a minimum schedule) and use the same
/// generator numbering (spec.to_ip_spec(): nucleus generators first).
class SuperIPRouter {
 public:
  /// Sentinel in first_gen_row(): unreachable, or u == dst.
  static constexpr std::uint16_t kNoFirstGen = 0xffff;

  /// Bound on the symmetric-seed schedule cache (schedules per router).
  /// The reachable-arrangement space is at most l!, but symmetric routing
  /// must stay memory-bounded even for specs whose arrangement group is
  /// large — an adversarial all-distinct-arrangements query stream churns
  /// the FIFO instead of growing the map (see util/sharded_cache.hpp).
  static constexpr std::uint64_t kDefaultScheduleCacheCapacity = 1024;

  /// Throws std::invalid_argument if the spec's super-generators cannot
  /// bring every block to the front (not a super-IP graph, Section 3.1).
  explicit SuperIPRouter(
      SuperIPSpec spec,
      std::uint64_t schedule_cache_capacity = kDefaultScheduleCacheCapacity);

  const SuperIPSpec& spec() const noexcept { return spec_; }
  bool plain_seed() const noexcept { return plain_; }
  const IPGraph& nucleus() const noexcept { return nucleus_; }

  /// Routes src -> dst; same contract as route_super_ip. Thread-safe: the
  /// symmetric-seed schedule cache is bounded and sharded-locked, every
  /// other table is immutable after construction.
  GenPath route(const Label& src, const Label& dst) const;

  /// First generator on route(src, dst), or -1 when src == dst. Note:
  /// chaining first_gen() hop by hop does NOT follow route()'s path —
  /// the schedule phase is route state, and a fresh route from an
  /// intermediate label restarts it. Follow route().gens instead.
  int first_gen(const Label& src, const Label& dst) const;

  // --- read-only internals shared with route::QueryEngine's packed
  // fast-path kernel, which must reproduce route() bit-for-bit ---

  /// The minimum visit-all schedule used for every plain-seed route.
  const Schedule& plain_schedule() const noexcept { return plain_schedule_; }

  /// Row of the nucleus first-generator table for destination `dst`:
  /// row[u] = smallest-target first arc tag on a shortest nucleus path
  /// u -> dst (kNoFirstGen when unreachable or u == dst).
  std::span<const std::uint16_t> first_gen_row(Node dst) const noexcept {
    const Node M = nucleus_.num_nodes();
    return {first_gen_table_.data() + static_cast<std::size_t>(dst) * M, M};
  }

  /// Nucleus node holding `block`'s content (symmetric seeds shift the
  /// content back into the base symbol range first); kInvalidIPNode when
  /// the content is outside the nucleus orbit.
  Node nucleus_node(const Label& block) const;

  /// Counters of the bounded symmetric-schedule cache (all zero for plain
  /// seeds, which never touch it).
  ShardedCacheStats schedule_cache_stats() const {
    return sym_schedules_.stats();
  }

  /// Hard bound implied by the cache configuration; memory regression
  /// tests assert the cache never outgrows it.
  std::uint64_t schedule_cache_capacity() const noexcept {
    return sym_schedules_.capacity();
  }

 private:
  /// Emits the shortest nucleus route sorting `current`'s front block to
  /// `target_content`, updating `current`; pure table walk.
  void sort_front_block(Label& current, const Label& target_content,
                        std::vector<int>& out_gens) const;

  SuperIPSpec spec_;
  bool plain_ = true;
  int base_lo_ = 0;       ///< smallest seed symbol (owner-block decoding)
  int nucleus_count_ = 0;
  IPGraph nucleus_;
  std::vector<Permutation> lifted_super_;  ///< super gens over l*m positions
  /// first_gen_table_[dst * M + u]: smallest-target first arc tag on a
  /// shortest nucleus path u -> dst (0xffff = unreachable/u == dst).
  std::vector<std::uint16_t> first_gen_table_;
  Schedule plain_schedule_;  ///< min visit-all schedule (plain seeds)
  /// Bounded symmetric-seed schedule cache, keyed by destination
  /// arrangement (Arrangement and Label share the byte-vector layout, so
  /// the packed-label hash applies). Admission is off: one miss per
  /// distinct arrangement, then hits — deterministic counters.
  mutable ShardedCache<Arrangement, Schedule, LabelHash> sym_schedules_;
};

}  // namespace ipg
