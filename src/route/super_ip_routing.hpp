#pragma once
// The paper's routing algorithm for (symmetric) super-IP graphs
// (Theorem 4.1 / 4.3): fix a super-generator schedule that brings every
// super-symbol to the leftmost position at least once; whenever a
// super-symbol arrives at the front for the first time, sort it (with
// nucleus generators) to the content the destination holds at that
// super-symbol's *final* position under the schedule.
//
// The route length is at most l * D_G + t (resp. t_S), which Theorems
// 4.1/4.3 show is exactly the diameter. Routing operates purely on labels:
// it never materializes the network, so it works at any scale.

#include <span>

#include "ipg/schedule.hpp"
#include "ipg/super.hpp"
#include "route/path.hpp"

namespace ipg {

/// Routes `src` -> `dst` in the super-IP graph described by `spec`.
/// Returned generator indices refer to spec.to_ip_spec()'s ordering
/// (nucleus generators first, then super-generators). Handles both plain
/// seeds (identical blocks, Theorem 4.1) and symmetric seeds (distinct
/// block symbol sets, Theorem 4.3). Throws std::invalid_argument if `dst`
/// is not a node of the graph (block contents outside the nucleus orbits).
GenPath route_super_ip(const SuperIPSpec& spec, const Label& src, const Label& dst);

/// Upper bound on route length guaranteed by Theorem 4.1/4.3:
/// l * D_G + t (plain) or l * D_G + t_S (symmetric). `nucleus_diameter`
/// is D_G.
int route_length_bound(const SuperIPSpec& spec, int nucleus_diameter,
                       bool symmetric_seed);

}  // namespace ipg
