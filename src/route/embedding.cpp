#include "route/embedding.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "graph/bfs.hpp"
#include "util/narrow.hpp"

namespace ipg {

EmbeddingStats evaluate_embedding(const Graph& guest, const Graph& host,
                                  std::span<const Node> phi) {
  assert(phi.size() == guest.num_nodes());
  EmbeddingStats out;
  out.expansion = guest.num_nodes() == 0
                      ? 0.0
                      : static_cast<double>(host.num_nodes()) /
                            static_cast<double>(guest.num_nodes());
  std::unordered_set<Node> images(phi.begin(), phi.end());
  out.injective = images.size() == phi.size();

  BfsScratch scratch(host.num_nodes());
  std::uint64_t edge_count = 0;
  std::uint64_t dist_sum = 0;
  for (Node u = 0; u < guest.num_nodes(); ++u) {
    if (guest.neighbors(u).empty()) continue;
    const auto dist = scratch.run(host, phi[u]);
    for (const Node v : guest.neighbors(u)) {
      const Dist d = dist[phi[v]];
      assert(d != kUnreachable);
      out.dilation = std::max(out.dilation, d);
      dist_sum += d;
      ++edge_count;
    }
  }
  out.avg_dilation = edge_count == 0 ? 0.0
                                     : static_cast<double>(dist_sum) /
                                           static_cast<double>(edge_count);
  return out;
}

std::vector<Node> hsn_hypercube_embedding(const IPGraph& hsn, int l, int n) {
  const int m = 2 * n;
  assert(hsn.spec.label_length() == l * m);
  const std::uint64_t guests = std::uint64_t{1} << (l * n);
  assert(guests == hsn.num_nodes());

  std::vector<Node> phi(guests);
  Label label(as_size(l) * as_size(m));
  for (std::uint64_t g = 0; g < guests; ++g) {
    for (int block = 0; block < l; ++block) {
      for (int j = 0; j < n; ++j) {
        const bool bit = (g >> (block * n + j)) & 1u;
        // Pair j of the nucleus holds symbols {2j+1, 2j+2}; descending
        // order encodes a 1 (matching topo::decode_pair_bits).
        const std::uint8_t a = static_cast<std::uint8_t>(2 * j + 1);
        const std::uint8_t b = static_cast<std::uint8_t>(2 * j + 2);
        label[as_size(block * m + 2 * j)] = bit ? b : a;
        label[as_size(block * m + 2 * j + 1)] = bit ? a : b;
      }
    }
    const Node host = hsn.node_of(label);
    assert(host != kInvalidIPNode);
    phi[g] = host;
  }
  return phi;
}

}  // namespace ipg
