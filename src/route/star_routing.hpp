#pragma once
// Optimal routing on the star graph (Akers, Harel & Krishnamurthy): the
// classic cycle-structure sort the paper recalls at the start of Section 4
// ("routing ... can be viewed as sorting the symbols in the label").

#include "ipg/label.hpp"
#include "route/path.hpp"

namespace ipg {

/// Routes between two permutation labels of a star graph S_n whose
/// generators are (1, i), i = 2..n (generator index i-2 in star_nucleus).
/// The route is distance-optimal: length c + r where r is the number of
/// out-of-place symbols and c the number of nontrivial cycles not
/// containing position 1 of dst^-1 . src.
GenPath route_star(const Label& src, const Label& dst);

/// Exact star-graph distance via the cycle-structure formula (no search).
int star_distance(const Label& src, const Label& dst);

}  // namespace ipg
