#pragma once
// k-disjoint-path routing: Menger-certified sets of pairwise internally
// node-disjoint routes over super-IP topologies.
//
// The paper's families are maximally fault tolerant (connectivity kappa
// equals the degree for the symmetric variants), so any kappa - 1 node
// failures leave every surviving pair connected — and a set of kappa
// internally disjoint paths turns that existence theorem into a routing
// strategy: at most one path dies per faulty node, so trying the paths in
// length order always finds a live one while faults stay below kappa.
//
// Two modes behind one API:
//   - snapshot mode (instances within KDisjointOptions' caps): a per-query
//     unit-capacity node-split max flow over a captured CSR image yields
//     the exact Menger maximum pi(src, dst); candidates from the rotated
//     shortest-path IST forest (route/ist.hpp) rooted at dst are preferred
//     when they already realize that maximum (every tree path has optimal
//     length), otherwise the flow decomposition itself is returned. Either
//     way the cardinality is flow-certified.
//   - structural mode (implicit topologies beyond the caps): candidates
//     come from the lazily evaluated StructuralPathSystem (generator-g
//     branch + Theorem 4.1/4.3 schedule), greedily filtered to a pairwise
//     internally-disjoint subset. No oracle runs at that scale, so the set
//     is best-effort (certified = false) but still disjoint by
//     construction of the filter.
//
// Queries are pure functions of (topology, src, dst, k) with per-call
// scratch only, so concurrent calls from the engine's worker threads are
// safe and bit-identical.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/topology.hpp"
#include "route/ist.hpp"

namespace ipg::route {

/// One simple src -> dst path: the node sequence (endpoints included) and
/// the parallel generator/arc-tag sequence (gens.size() == nodes.size()-1).
struct DisjointPath {
  std::vector<net::NodeId> nodes;
  std::vector<int> gens;

  int length() const noexcept { return static_cast<int>(gens.size()); }
};

/// routes() result: pairwise internally node-disjoint paths in
/// nondecreasing length order (paths[0] is the set's shortest route).
struct DisjointRouteSet {
  std::vector<DisjointPath> paths;
  /// True when the cardinality is flow-certified: |paths| equals the
  /// Menger maximum pi(src, dst) — or the requested k when that is
  /// smaller. Snapshot mode always certifies; structural mode cannot run
  /// the oracle.
  bool certified = false;
  /// True when every path came from the IST construction (all of optimal
  /// length in snapshot mode); false when the flow decomposition had to
  /// replace them.
  bool from_trees = false;
};

struct KDisjointOptions {
  /// Snapshot caps. Instances beyond either bound use the structural path
  /// system (implicit topologies) or make the generic constructor throw
  /// std::length_error.
  net::NodeId max_snapshot_nodes = net::NodeId{1} << 18;
  std::uint64_t max_snapshot_arcs = std::uint64_t{1} << 23;
};

class KDisjointRouter {
 public:
  /// Snapshot mode over any adjacency view; throws std::length_error when
  /// the instance exceeds the caps. Non-owning; `topo` must outlive the
  /// router. The snapshot is taken here, so a FaultyTopology view is
  /// frozen at construction time — route around live faults at the
  /// selection layer (sim::SimNetwork), not here.
  explicit KDisjointRouter(const net::Topology& topo,
                           KDisjointOptions opts = {});

  /// Implicit super-IP overload: snapshot mode within the caps, structural
  /// mode beyond them (never throws for size).
  explicit KDisjointRouter(const net::ImplicitSuperIPTopology& topo,
                           KDisjointOptions opts = {});

  KDisjointRouter(const KDisjointRouter&) = delete;
  KDisjointRouter& operator=(const KDisjointRouter&) = delete;

  bool snapshot_mode() const noexcept { return snap_.has_value(); }
  const TopoSnapshot* snapshot() const noexcept {
    return snap_ ? &*snap_ : nullptr;
  }

  /// Pairwise internally node-disjoint src -> dst paths; k == 0 asks for
  /// the maximum set, k > 0 caps the cardinality at k. Empty (and
  /// certified in snapshot mode) when dst is unreachable; empty and
  /// uncertified when src == dst or an id is out of range.
  DisjointRouteSet routes(net::NodeId src, net::NodeId dst, int k = 0) const;

  /// The rotated shortest-path IST forest rooted at `root` (snapshot mode
  /// only) — exposed for the oracle tests and broadcast experiments.
  ISTForest forest(net::NodeId root, int num_trees) const;

 private:
  DisjointRouteSet routes_snapshot(net::NodeId src, net::NodeId dst,
                                   int k) const;
  DisjointRouteSet routes_structural(net::NodeId src, net::NodeId dst,
                                     int k) const;

  const net::Topology* topo_;
  KDisjointOptions opts_;
  std::optional<TopoSnapshot> snap_;
  std::unique_ptr<StructuralPathSystem> structural_;
};

}  // namespace ipg::route
