#pragma once
// Independent spanning trees for super-IP topologies — the construction
// layer under route/disjoint.hpp's k-disjoint-path router.
//
// Snapshot side (TopoSnapshot + ISTForest): capture a bounded CSR image of
// any net::Topology, BFS the reverse arcs from a root, and give every
// vertex one parent per tree among its distance-descending out-arcs,
// rotating the choice by tree index. This is the rightmost-correct-symbol
// idiom of the permutation-graph IST literature generalized to arbitrary
// generator sets: tree t "corrects a different symbol" — takes a different
// shortest-path arc — wherever the vertex has a choice. Every tree is a
// shortest-path in-tree, so each one spans and its root paths have optimal
// length; trees differ wherever the topology offers alternatives, and the
// router above certifies pairwise disjointness against a max-flow oracle
// (constructing provably independent trees for arbitrary k-connected
// graphs is open beyond k = 4, so the oracle — not the rotation — carries
// the guarantee).
//
// Structural side (StructuralPathSystem): for implicit instances too large
// to snapshot, tree t's path v -> root is the loop-erased walk "generator
// t first, then the Theorem 4.1/4.3 schedule route from the branch
// target" — O(nucleus) memory, no materialization: the first hop picks the
// branch and the schedule sorts the rest, lifting the nucleus-level rule
// through the hierarchy exactly as the paper's routing does.

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "net/topology.hpp"
#include "route/super_ip_routing.hpp"

namespace ipg::route {

/// Bounded CSR image (forward + reverse arcs) of a Topology — the
/// substrate of ISTForest and of KDisjointRouter's flow oracle. capture()
/// throws std::length_error when the instance exceeds either cap.
struct TopoSnapshot {
  net::NodeId n = 0;
  std::vector<std::uint64_t> off;   ///< forward CSR offsets, size n + 1
  std::vector<net::NodeId> to;      ///< arc targets, (to, tag)-sorted per node
  std::vector<EdgeTag> tag;         ///< arc tags, parallel to `to`
  std::vector<std::uint64_t> roff;  ///< reverse CSR offsets, size n + 1
  std::vector<net::NodeId> rfrom;   ///< arc sources, sorted per node

  std::uint64_t num_arcs() const noexcept { return to.size(); }

  static TopoSnapshot capture(const net::Topology& topo, net::NodeId max_nodes,
                              std::uint64_t max_arcs);
};

class ISTForest;
ISTForest build_ist_forest(const TopoSnapshot& snap, net::NodeId root,
                           int num_trees);

/// `num_trees` rotated shortest-path in-trees rooted at one vertex: every
/// tree-t path v -> root follows forward arcs and has exactly
/// dist_to_root(v) hops, so on a (strongly) connected topology every tree
/// spans. Rooting at the *destination* makes the per-tree src -> dst paths
/// of the disjoint router follow arc directions on digraphs too.
class ISTForest {
 public:
  static constexpr std::uint32_t kUnreachableDist = ~0u;

  net::NodeId root() const noexcept { return root_; }
  net::NodeId num_nodes() const noexcept { return n_; }
  int num_trees() const noexcept { return static_cast<int>(parent_.size()); }

  /// Hop count of every tree's path v -> root (all trees are shortest-path
  /// trees); kUnreachableDist when v cannot reach the root.
  std::uint32_t dist_to_root(net::NodeId v) const {
    return dist_[static_cast<std::size_t>(v)];
  }

  /// Parent arc of v in tree `t` (the arc v -> parent). The root — and any
  /// vertex that cannot reach it — has parent {kInvalidNodeId, kNoTag}.
  net::TopoArc parent(int t, net::NodeId v) const {
    return parent_[static_cast<std::size_t>(t)][static_cast<std::size_t>(v)];
  }

  /// True iff every vertex reaches the root through tree `t`'s parent
  /// chain (verified by walking the chains, not assumed).
  bool spans(int t) const;

  /// The tree-t path v -> root as arcs; empty when v is the root. Length
  /// equals dist_to_root(v).
  std::vector<net::TopoArc> path_to_root(int t, net::NodeId v) const;

 private:
  friend ISTForest build_ist_forest(const TopoSnapshot& snap, net::NodeId root,
                                    int num_trees);

  net::NodeId root_ = net::kInvalidNodeId;
  net::NodeId n_ = 0;
  std::vector<std::uint32_t> dist_;                // [vertex]
  std::vector<std::vector<net::TopoArc>> parent_;  // [tree][vertex]
};

/// Convenience overload: snapshot then build (throws std::length_error
/// past the caps — intended for enumerable instances).
ISTForest build_ist_forest(const net::Topology& topo, net::NodeId root,
                           int num_trees);

/// Lazy tree-path evaluation on implicit super-IP topologies beyond
/// snapshot scale: no per-vertex state is ever stored, so instances of
/// 10^7+ nodes cost O(nucleus) memory. Candidate paths from distinct first
/// generators start over distinct arcs; the disjoint router filters them
/// to a pairwise internally-disjoint subset at query time.
class StructuralPathSystem {
 public:
  explicit StructuralPathSystem(const net::ImplicitSuperIPTopology& topo);

  /// One candidate tree per generator of the lifted spec.
  int num_trees() const noexcept { return topo_->num_generators(); }

  /// The tree-`t` walk v -> root: generator `t` first (t == -1 skips the
  /// branch hop — the plain Theorem 4.1/4.3 route), then the schedule
  /// route from the branch target, truncated at the first visit to `root`
  /// and loop-erased. Fills `nodes` (v .. root inclusive) and the parallel
  /// generator sequence `gens`; returns false (outputs cleared) when
  /// generator `t` fixes v's label, i.e. tree t has no branch at v.
  bool path_to_root(int t, net::NodeId v, net::NodeId root,
                    std::vector<net::NodeId>& nodes,
                    std::vector<int>& gens) const;

 private:
  const net::ImplicitSuperIPTopology* topo_;
  std::unique_ptr<SuperIPRouter> router_;
};

}  // namespace ipg::route
