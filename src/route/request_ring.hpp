#pragma once
// Bounded multi-producer/multi-consumer request ring — the intake queue of
// the routing service loop (route::RouteService). Producers block when the
// ring is full (backpressure, not unbounded queueing), consumers block when
// it is empty, and close() drains: producers fail fast, consumers keep
// popping until the ring is empty and only then see "closed".
//
// An ipg::Mutex + two ipg::CondVars over a fixed circular buffer. The lock
// is held only to move one element, and the routing engine's unit of work
// is a whole *batch* of queries, so the ring is never the bottleneck — the
// simplicity buys straightforward blocking semantics (no lost wakeups, no
// ABA) that are now checked twice: TSan at runtime and Clang's
// thread-safety analysis at compile time (every mutable member is
// IPG_GUARDED_BY the ring mutex).

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/sync.hpp"

namespace ipg::route {

/// Occupancy counters of a RequestRing, snapshotted under the ring lock —
/// the observability the QPS bench uses to tell "workers starved" from
/// "ring saturated" (depth pinned at capacity + growing enqueue_waits).
struct RingStats {
  std::uint64_t pushes = 0;            ///< successful push()/try_push() calls
  std::uint64_t pops = 0;              ///< successful pop() calls
  std::uint64_t enqueue_waits = 0;     ///< push() calls that blocked on full
  std::uint64_t try_push_failures = 0; ///< try_push() rejections (full/closed)
  std::size_t max_depth = 0;           ///< high-water occupancy
  std::size_t depth = 0;               ///< occupancy at snapshot time
};

template <typename T>
class RequestRing {
 public:
  explicit RequestRing(std::size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity), buf_(capacity_) {}

  RequestRing(const RequestRing&) = delete;
  RequestRing& operator=(const RequestRing&) = delete;

  std::size_t capacity() const noexcept { return capacity_; }

  /// Blocks while full. Returns false (dropping `v`) when the ring has
  /// been closed.
  bool push(T v) IPG_EXCLUDES(mu_) {
    {
      UniqueLock lock(mu_);
      if (!closed_ && size_ >= capacity_) {
        ++enqueue_waits_;
        while (!closed_ && size_ >= capacity_) not_full_.wait(lock);
      }
      if (closed_) return false;
      buf_[(head_ + size_) % capacity_] = std::move(v);
      ++size_;
      ++pushes_;
      if (size_ > max_depth_) max_depth_ = size_;
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: false when full or closed.
  bool try_push(T v) IPG_EXCLUDES(mu_) {
    {
      LockGuard lock(mu_);
      if (closed_ || size_ >= capacity_) {
        ++try_push_failures_;
        return false;
      }
      buf_[(head_ + size_) % capacity_] = std::move(v);
      ++size_;
      ++pushes_;
      if (size_ > max_depth_) max_depth_ = size_;
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns false only once the ring is closed AND
  /// drained — elements pushed before close() are always delivered.
  bool pop(T& out) IPG_EXCLUDES(mu_) {
    {
      UniqueLock lock(mu_);
      while (!closed_ && size_ == 0) not_empty_.wait(lock);
      if (size_ == 0) return false;  // closed and drained
      out = std::move(buf_[head_]);
      head_ = (head_ + 1) % capacity_;
      --size_;
      ++pops_;
    }
    not_full_.notify_one();
    return true;
  }

  /// Wakes every waiter; subsequent pushes fail, pops drain then fail.
  void close() IPG_EXCLUDES(mu_) {
    {
      LockGuard lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const IPG_EXCLUDES(mu_) {
    LockGuard lock(mu_);
    return closed_;
  }

  std::size_t size() const IPG_EXCLUDES(mu_) {
    LockGuard lock(mu_);
    return size_;
  }

  /// Consistent snapshot of the occupancy counters.
  RingStats stats() const IPG_EXCLUDES(mu_) {
    LockGuard lock(mu_);
    RingStats s;
    s.pushes = pushes_;
    s.pops = pops_;
    s.enqueue_waits = enqueue_waits_;
    s.try_push_failures = try_push_failures_;
    s.max_depth = max_depth_;
    s.depth = size_;
    return s;
  }

 private:
  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  const std::size_t capacity_;  ///< fixed at construction; lock-free reads OK
  std::vector<T> buf_ IPG_GUARDED_BY(mu_);  ///< never resized; slots guarded
  std::size_t head_ IPG_GUARDED_BY(mu_) = 0;  ///< index of the oldest element
  std::size_t size_ IPG_GUARDED_BY(mu_) = 0;
  bool closed_ IPG_GUARDED_BY(mu_) = false;
  std::uint64_t pushes_ IPG_GUARDED_BY(mu_) = 0;
  std::uint64_t pops_ IPG_GUARDED_BY(mu_) = 0;
  std::uint64_t enqueue_waits_ IPG_GUARDED_BY(mu_) = 0;
  std::uint64_t try_push_failures_ IPG_GUARDED_BY(mu_) = 0;
  std::size_t max_depth_ IPG_GUARDED_BY(mu_) = 0;
};

}  // namespace ipg::route
