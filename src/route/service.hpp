#pragma once
// Routing-as-a-service loop: producers submit whole batches of queries
// through the bounded multi-producer RequestRing and get a future for the
// answers; a fixed set of worker threads drains the ring, answering each
// batch with QueryEngine::answer_batch. Parallelism is *pipeline*-shaped —
// one worker owns one batch end to end (per-worker scratch, no cross-batch
// coordination), so W workers overlap W batches, and answers stay
// bit-identical to a serial engine call because each batch is answered by
// the same single-threaded fast path.
//
// The ring bounds in-flight work: when every worker is busy and the ring
// is full, submit() blocks (backpressure) instead of queueing unboundedly.
// bench/route_qps.cpp drives this loop for its p50/p99 latency rows.
//
// The service itself holds no locks: all shared mutable state lives inside
// the RequestRing, whose members are IPG_GUARDED_BY its capability-annotated
// mutex (util/sync.hpp), so Clang's -Wthread-safety proves the discipline at
// compile time. Worker threads are joined in shutdown() — never detached
// (the detached-thread lint forbids it tree-wide).

#include <cstddef>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "route/query_engine.hpp"
#include "route/request_ring.hpp"
#include "util/narrow.hpp"

namespace ipg::route {

class RouteService {
 public:
  struct Options {
    int workers = 1;               ///< service threads draining the ring
    std::size_t ring_capacity = 64;  ///< max batches in flight
  };

  /// Non-owning: `engine` must outlive the service.
  explicit RouteService(const QueryEngine& engine, Options opts)
      : engine_(&engine), ring_(opts.ring_capacity) {
    const int workers = opts.workers < 1 ? 1 : opts.workers;
    threads_.reserve(as_size(workers));
    for (int w = 0; w < workers; ++w) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  RouteService(const RouteService&) = delete;
  RouteService& operator=(const RouteService&) = delete;

  ~RouteService() { shutdown(); }

  /// Enqueues one batch; the future resolves when a worker has answered
  /// it. Blocks while the ring is full. After shutdown() the future holds
  /// a broken_promise error.
  std::future<std::vector<RouteAnswer>> submit(std::vector<RouteQuery> queries) {
    Request req;
    req.queries = std::move(queries);
    std::future<std::vector<RouteAnswer>> fut = req.promise.get_future();
    ring_.push(std::move(req));  // a dropped (closed-ring) push breaks the promise
    return fut;
  }

  /// The intake ring's occupancy counters (see route::RingStats) — depth
  /// pinned at capacity plus growing enqueue_waits means the ring, not the
  /// workers, is the bottleneck.
  RingStats ring_stats() const { return ring_.stats(); }

  /// Closes the ring and joins the workers; pending batches are drained
  /// first (pop() keeps delivering until empty).
  void shutdown() {
    ring_.close();
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

 private:
  struct Request {
    std::vector<RouteQuery> queries;
    std::promise<std::vector<RouteAnswer>> promise;
  };

  void worker_loop() {
    Request req;
    while (ring_.pop(req)) {
      try {
        std::vector<RouteAnswer> answers(req.queries.size());
        engine_->answer_batch(req.queries, answers);
        req.promise.set_value(std::move(answers));
      } catch (...) {
        req.promise.set_exception(std::current_exception());
      }
    }
  }

  const QueryEngine* engine_;
  RequestRing<Request> ring_;
  std::vector<std::thread> threads_;
};

}  // namespace ipg::route
