#include "analysis/avg_distance.hpp"

#include <cassert>
#include <cmath>

#include "topo/perm_rank.hpp"

namespace ipg {

namespace {

/// Rescales an expectation over independent uniform pairs (which include
/// u == v at distance 0) to the average over ordered distinct pairs.
double exclude_self(double expectation, double nodes) {
  return expectation * nodes / (nodes - 1.0);
}

/// Sum of distances from one node around a k-cycle.
double cycle_distance_sum(int k) {
  return k % 2 == 0 ? k * k / 4.0 : (k * k - 1) / 4.0;
}

}  // namespace

double hypercube_avg_distance(int n) {
  return exclude_self(n / 2.0, std::pow(2.0, n));
}

double cycle_avg_distance(int k) {
  assert(k >= 3);
  return cycle_distance_sum(k) / (k - 1.0);
}

double kary_ncube_avg_distance(int k, int n) {
  assert(k >= 2 && n >= 1);
  const double per_coord = cycle_distance_sum(k) / k;
  return exclude_self(n * per_coord, std::pow(k, n));
}

double torus2d_avg_distance(int rows, int cols) {
  const double expectation =
      cycle_distance_sum(rows) / rows + cycle_distance_sum(cols) / cols;
  return exclude_self(expectation, static_cast<double>(rows) * cols);
}

double hamming_avg_distance(int d, int q) {
  assert(d >= 1 && q >= 2);
  return exclude_self(d * (1.0 - 1.0 / q), std::pow(q, d));
}

double complete_avg_distance([[maybe_unused]] int r) {
  assert(r >= 2);
  return 1.0;
}

double star_avg_distance(int n) {
  assert(n >= 2 && n <= 12);
  // d(pi) = (#moved points) + (#nontrivial cycles) - 2*[position 1 moved]
  // (the cycle-structure distance); take expectations over uniform pi:
  // E[moved] = n - 1, E[nontrivial cycles] = H_n - 1,
  // P(position 1 moved) = 1 - 1/n.
  double harmonic = 0.0;
  for (int i = 1; i <= n; ++i) harmonic += 1.0 / i;
  const double expectation = n - 4.0 + harmonic + 2.0 / n;
  return exclude_self(expectation,
                      static_cast<double>(topo::kFactorials[n]));
}

}  // namespace ipg
