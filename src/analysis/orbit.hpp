#pragma once
// Orbit-compressed exact analytics: the automorphism-orbit partition of a
// super-IP vertex set, and the weighted sweep that makes symmetry the
// optimizer (ROADMAP "Orbit-compressed analytics").
//
// Two kinds of label-level symmetry are certified cheaply, without ever
// touching the full automorphism group:
//
//  * Symbol relabelings phi(x)[i] = pi(x[i]). A symbol permutation acts
//    position-wise, so it commutes with every index-permutation generator
//    (phi(x . g) = phi(x) . g with the *same* generator); phi is therefore
//    an automorphism iff phi(seed) is a node. For plain seeds (l identical
//    blocks with nucleus seed c) the diagonal relabelings c -> d, d a
//    nucleus node, form a free group of order M = |nucleus| whose orbits
//    have the canonical form "block 0 = c"; for symmetric seeds (distinct
//    symbols, Section 3.5) the relabelings seed -> neighbor generate the
//    left-multiplication group of the Cayley graph, which is transitive —
//    PR 4's vertex-transitive fast path drops out as the 1-orbit case.
//
//  * Index permutations phi(x) = x . sigma, certified by checking that
//    conjugation sigma^-1 g sigma maps the generator set into itself (the
//    normalizer condition; static_check.hpp proves it constexpr for the
//    paper's super-generator shapes) and that seed . sigma is a node.
//    Candidates: expanded block permutations and diagonal nucleus
//    permutations (the same nucleus generator applied in every block).
//
// Every certified generator is additionally audited for arc preservation
// on a sampled arc set under IPG_CONTRACT, and the finished partition is
// audited for consistency (disjoint orbits, multiplicities summing to N).
//
// The quotient feeds orbit_folded_distance_summary: the 64-lane batched
// BFS runs only from orbit representatives and each representative's
// DistanceAccumulator is folded with its orbit multiplicity. All folded
// quantities are integral, so the result is bit-identical to the
// brute-force all-pairs sweep at every thread and shard count.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/bfs.hpp"
#include "ipg/build.hpp"
#include "ipg/permutation.hpp"
#include "ipg/super.hpp"
#include "net/topology.hpp"
#include "util/thread_pool.hpp"

namespace ipg {

/// One certified automorphism generator, in applicable form (used by the
/// orbit builder, the arc-preservation audit and the tests).
struct OrbitAutomorphism {
  enum class Kind : std::uint8_t {
    kSymbolRelabel,    ///< phi(x)[i] = symbol_map[x[i]]
    kIndexPermutation  ///< phi(x)[i] = x[index_perm[i]]
  };

  Kind kind = Kind::kSymbolRelabel;
  std::string name;                     ///< diagnostic tag, e.g. "relabel:T(1,2)"
  std::vector<std::uint8_t> symbol_map; ///< 256-entry table (kSymbolRelabel)
  Permutation index_perm;               ///< label-length permutation (kIndexPermutation)

  /// Applies the automorphism to a label (out is resized as needed).
  void apply_into(const Label& x, Label& out) const;
};

/// The orbit partition of a vertex set under the certified automorphism
/// subgroup. Node ids are graph node ids (BFS discovery order) for the
/// materialized builder and SuperRanking ranks for the implicit one.
struct OrbitQuotient {
  std::uint64_t num_nodes = 0;

  /// Minimum node id of each orbit, strictly ascending.
  std::vector<std::uint64_t> representatives;

  /// Orbit sizes, parallel to `representatives`; sums to num_nodes.
  std::vector<std::uint64_t> multiplicity;

  /// Orbit index of every node. May be empty only for the 1-orbit
  /// quotient (single_orbit), where it is implied.
  std::vector<std::uint32_t> orbit_of;

  /// The certified automorphism generators the partition was built from
  /// (empty for single_orbit: the symmetry is caller-asserted there).
  std::vector<OrbitAutomorphism> generators;

  std::uint64_t num_orbits() const noexcept { return representatives.size(); }

  /// N / #orbits — the source-sweep compression factor.
  double compression() const noexcept;

  /// The caller-asserted vertex-transitive quotient: one orbit, node 0 as
  /// representative (exactly PR 4's fast path, now a trivial instance).
  static OrbitQuotient single_orbit(std::uint64_t n);
};

/// Knobs for the orbit builders.
struct OrbitOptions {
  /// Restrict index-permutation candidates to permutations fixing the
  /// block-0 position set, so every certified automorphism maps nucleus
  /// modules onto nucleus modules. Required when the quotient will be
  /// projected with module_orbit_quotient (symbol relabelings preserve
  /// modules unconditionally; block permutations that move block 0 do not).
  bool module_preserving_only = false;

  /// Arc samples per certified generator for the IPG_CONTRACT audit.
  int audit_samples = 32;
};

/// Orbit partition of a materialized super-IP graph. `spec` must be the
/// spec `g` was built from (seed node 0). Degrades gracefully: candidates
/// that fail certification are dropped, so the worst case is the discrete
/// partition (one orbit per node), never a wrong one.
OrbitQuotient compute_orbit_quotient(const IPGraph& g, const SuperIPSpec& spec,
                                     const OrbitOptions& opts = {});

/// Orbit partition of an implicit topology: the orbit of a rank is found
/// by unrank -> permute -> rank, so no CSR is ever materialized (memory is
/// O(N) for the partition arrays plus O(nucleus) for the mapper).
OrbitQuotient compute_orbit_quotient(const net::ImplicitSuperIPTopology& topo,
                                     const OrbitOptions& opts = {});

/// Streaming form of the implicit quotient's symbol-relabel layer: maps a
/// rank to the canonical (anchor) rank of its relabel orbit in O(l*m) per
/// query with O(nucleus) state — the scales-past-materialization hook.
/// When no relabel family certifies, canonical_rank is the identity.
class ImplicitOrbitMapper {
 public:
  explicit ImplicitOrbitMapper(const net::ImplicitSuperIPTopology& topo);

  /// True when a full relabel family certified and mapping is non-trivial.
  bool canonicalizes() const noexcept { return canonicalizes_; }

  std::uint64_t canonical_rank(std::uint64_t r) const;

 private:
  const net::ImplicitSuperIPTopology* topo_;
  bool canonicalizes_ = false;
  bool symmetric_ = false;
  int m_ = 0;
  Label anchor_;  ///< nucleus seed (plain) / full seed (symmetric)
};

/// Projects a node quotient onto nucleus modules: two modules are in the
/// same orbit iff they contain nodes of the same node orbit (certified
/// automorphisms map modules onto modules, which is why the node quotient
/// must have been built with OrbitOptions::module_preserving_only).
/// Representatives/orbit_of are module ids, multiplicity counts modules.
OrbitQuotient module_orbit_quotient(const OrbitQuotient& node_orbits,
                                    std::span<const std::uint32_t> module_of,
                                    std::uint32_t num_modules);

/// Structural audit: representatives ascending and in range, multiplicity
/// parallel and summing to num_nodes, orbit_of consistent with both (or
/// empty with exactly one orbit). Pure check — callers wrap in IPG_AUDIT.
bool orbit_partition_consistent(const OrbitQuotient& q);

/// Arc-preservation audit on `samples` seeded-random nodes: phi maps each
/// sampled node to a node and its out-neighbor set onto the image's
/// out-neighbor set. False for any non-automorphism with high probability.
bool automorphism_arc_preserving(const IPGraph& g, const OrbitAutomorphism& a,
                                 int samples, std::uint64_t seed);
bool automorphism_arc_preserving(const net::ImplicitSuperIPTopology& topo,
                                 const OrbitAutomorphism& a, int samples,
                                 std::uint64_t seed);

/// All-pairs distance summary via the orbit fold: batched (or scalar, for
/// tiny representative groups; or sharded, for num_shards > 1) sweeps from
/// representatives only, each accumulator folded with its multiplicity.
/// Bit-identical to the brute-force sweep at every thread/shard count.
DistanceSummary orbit_folded_distance_summary(const Graph& g,
                                              const OrbitQuotient& q,
                                              const ExecPolicy& exec,
                                              int num_shards = 1);

}  // namespace ipg
