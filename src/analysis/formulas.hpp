#pragma once
// Closed-form topological parameters for every family in the comparison
// figures. Each formula is validated against BFS measurements on all
// enumerable instances (tests/analysis_test.cpp); the figure harnesses then
// use them to extend curves to paper-scale sizes.

#include <cstdint>
#include <span>
#include <string>

namespace ipg {

/// Closed-form N / degree / diameter of a network instance.
struct TopoNums {
  std::string name;
  std::uint64_t nodes = 0;
  std::uint32_t degree = 0;
  std::uint32_t diameter = 0;
};

TopoNums hypercube_nums(int n);
TopoNums folded_hypercube_nums(int n);
/// Star graph: diameter floor(3(n-1)/2) (Akers-Krishnamurthy).
TopoNums star_nums(int n);
/// k-ary n-cube: degree 2n (k > 2), diameter n*floor(k/2).
TopoNums kary_ncube_nums(int k, int n);
TopoNums torus2d_nums(int rows, int cols);
/// CCC(n): degree 3, diameter 2n + floor(n/2) - 2 for n >= 4 (6 for n = 3).
TopoNums ccc_nums(int n);
/// Undirected binary de Bruijn: degree 4, diameter n.
TopoNums de_bruijn_nums(int n);
TopoNums petersen_nums();
TopoNums complete_nums(int r);
TopoNums generalized_hypercube_nums(std::span<const int> radices);

/// Super-IP family parameters from Theorems 3.1/3.2/4.1 and Corollary 4.2:
/// N = M^l, degree = nucleus degree + #super-generators,
/// diameter = l * D_G + (l - 1), I-degree <= #super-generators,
/// I-diameter = l - 1 (one nucleus per module).
struct SuperNums {
  std::string name;
  std::uint64_t nodes = 0;
  std::uint32_t degree = 0;
  std::uint32_t diameter = 0;
  std::uint32_t i_degree = 0;   ///< worst-case off-module links per node
  std::uint32_t i_diameter = 0;
};

SuperNums hsn_nums(int l, const TopoNums& nucleus);
SuperNums ring_cn_nums(int l, const TopoNums& nucleus);
SuperNums complete_cn_nums(int l, const TopoNums& nucleus);
SuperNums super_flip_nums(int l, const TopoNums& nucleus);

}  // namespace ipg
