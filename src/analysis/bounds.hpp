#pragma once
// Universal degree/diameter lower bounds (Moore bounds) and the optimality
// factor of Theorem 4.4: a network's diameter divided by the smallest
// diameter any graph of its size and degree could possibly have.

#include <cstdint>

namespace ipg {

/// Smallest D such that a degree-d graph of diameter D can reach `nodes`
/// nodes: 1 + d + d(d-1) + ... + d(d-1)^(D-1) >= nodes (d >= 3);
/// ceil((nodes-1)/2) for d = 2.
std::uint32_t moore_diameter_lower_bound(std::uint64_t nodes, std::uint32_t degree);

/// diameter / moore_diameter_lower_bound — Theorem 4.4 predicts this tends
/// to 1 + o(1) for suitably built super-IP graphs.
double diameter_optimality_factor(std::uint64_t nodes, std::uint32_t degree,
                                  std::uint32_t diameter);

}  // namespace ipg
