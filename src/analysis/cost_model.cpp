#include "analysis/cost_model.hpp"

namespace ipg {

CostPoint cost_point(const TopoNums& t, double i_degree, std::uint32_t i_diameter) {
  CostPoint p;
  p.family = t.name;
  p.nodes = t.nodes;
  p.degree = t.degree;
  p.diameter = t.diameter;
  p.i_degree = i_degree;
  p.i_diameter = i_diameter;
  return p;
}

CostPoint cost_point(const SuperNums& s) {
  CostPoint p;
  p.family = s.name;
  p.nodes = s.nodes;
  p.degree = s.degree;
  p.diameter = s.diameter;
  p.i_degree = s.i_degree;
  p.i_diameter = s.i_diameter;
  return p;
}

std::vector<CostPoint> sweep_hypercube(int n_min, int n_max, int module_bits) {
  std::vector<CostPoint> out;
  for (int n = n_min; n <= n_max; ++n) {
    const int off = n > module_bits ? n - module_bits : 0;
    out.push_back(
        cost_point(hypercube_nums(n), static_cast<std::uint32_t>(off),
                   static_cast<std::uint32_t>(off)));
  }
  return out;
}

std::vector<CostPoint> sweep_star(int n_min, int n_max, int substar) {
  std::vector<CostPoint> out;
  for (int n = n_min; n <= n_max; ++n) {
    const int off = n > substar ? n - substar : 0;
    out.push_back(cost_point(star_nums(n), off, 0));
  }
  return out;
}

std::vector<CostPoint> sweep_torus2d(const std::vector<int>& sides, int tile_r,
                                     int tile_c) {
  std::vector<CostPoint> out;
  for (const int s : sides) {
    // Off-module links per tile: one per boundary node per crossing side.
    const double i_degree =
        2.0 * (tile_r + tile_c) / (static_cast<double>(tile_r) * tile_c);
    const std::uint32_t i_diameter =
        static_cast<std::uint32_t>((s / tile_r) / 2 + (s / tile_c) / 2);
    out.push_back(cost_point(torus2d_nums(s, s), i_degree, i_diameter));
  }
  return out;
}

std::vector<CostPoint> sweep_ccc(int n_min, int n_max) {
  std::vector<CostPoint> out;
  for (int n = n_min; n <= n_max; ++n) {
    // One cycle per module: the cube link of every node leaves the module.
    out.push_back(cost_point(ccc_nums(n), 1.0, static_cast<std::uint32_t>(n)));
  }
  return out;
}

std::vector<CostPoint> sweep_de_bruijn(int n_min, int n_max, int low_digits) {
  std::vector<CostPoint> out;
  for (int n = n_min; n <= n_max; ++n) {
    // MSB-block modules: effectively all 4 links leave the module
    // (Section 5.3); I-diameter ~ shifts needed to clear the module bits.
    out.push_back(cost_point(de_bruijn_nums(n), 4.0,
                             static_cast<std::uint32_t>(n - low_digits)));
  }
  return out;
}

namespace {

template <typename F>
std::vector<CostPoint> sweep_super(int l_min, int l_max, const TopoNums& nucleus,
                                   F&& nums) {
  std::vector<CostPoint> out;
  for (int l = l_min; l <= l_max; ++l) out.push_back(cost_point(nums(l, nucleus)));
  return out;
}

}  // namespace

std::vector<CostPoint> sweep_hsn(int l_min, int l_max, const TopoNums& nucleus) {
  return sweep_super(l_min, l_max, nucleus, hsn_nums);
}

std::vector<CostPoint> sweep_ring_cn(int l_min, int l_max, const TopoNums& nucleus) {
  return sweep_super(l_min, l_max, nucleus, ring_cn_nums);
}

std::vector<CostPoint> sweep_complete_cn(int l_min, int l_max,
                                         const TopoNums& nucleus) {
  return sweep_super(l_min, l_max, nucleus, complete_cn_nums);
}

std::vector<CostPoint> sweep_super_flip(int l_min, int l_max,
                                        const TopoNums& nucleus) {
  return sweep_super(l_min, l_max, nucleus, super_flip_nums);
}

}  // namespace ipg
