#include "analysis/bounds.hpp"

#include <cassert>

namespace ipg {

std::uint32_t moore_diameter_lower_bound(std::uint64_t nodes, std::uint32_t degree) {
  assert(degree >= 1);
  if (nodes <= 1) return 0;
  if (degree == 1) return 1;
  if (degree == 2) return static_cast<std::uint32_t>((nodes - 1 + 1) / 2);
  // Accumulate the Moore ball 1 + d + d(d-1) + ... until it covers `nodes`.
  // Use floating point guarded accumulation to avoid overflow at large N.
  long double ball = 1.0L;
  long double shell = degree;
  std::uint32_t d = 0;
  while (ball < static_cast<long double>(nodes)) {
    ball += shell;
    shell *= (degree - 1);
    ++d;
    if (d > 200) break;  // unreachable for sane inputs
  }
  return d;
}

double diameter_optimality_factor(std::uint64_t nodes, std::uint32_t degree,
                                  std::uint32_t diameter) {
  const std::uint32_t lb = moore_diameter_lower_bound(nodes, degree);
  return lb == 0 ? 1.0 : static_cast<double>(diameter) / static_cast<double>(lb);
}

}  // namespace ipg
