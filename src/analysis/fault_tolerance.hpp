#pragma once
// Empirical vs theoretical fault tolerance. Cayley-graph regularity is the
// paper's fault-tolerance argument: a k-connected network survives any
// k - 1 node failures (Menger), and for the families here the exact
// vertex connectivity (graph/flow) typically meets the min-degree upper
// bound. This module measures the other side: how many RANDOM failures a
// given instance actually absorbs before some trial disconnects the
// survivors, so tests and benches can pin "measured threshold >= kappa"
// against the theory.

#include <cstdint>
#include <span>

#include "graph/graph.hpp"

namespace ipg {

/// True iff the nodes outside `failed` are still mutually connected —
/// strongly, so the check is also meaningful for directed families.
/// Vacuously true when fewer than two nodes survive.
bool survivors_connected(const Graph& g, std::span<const Node> failed);

/// Outcome of the random-fault disconnection experiment.
struct FaultToleranceReport {
  std::uint32_t min_degree = 0;  ///< upper bound on vertex connectivity
  int connectivity = 0;          ///< exact kappa (max-flow; Menger)
  int max_faults_tested = 0;
  int trials_per_level = 0;
  /// Smallest fault count at which some random trial disconnected the
  /// survivors; 0 when no tested level ever disconnected. Always > kappa-1
  /// when nonzero: below connectivity, disconnection is impossible.
  int measured_disconnect_threshold = 0;
};

/// For k = 1..max_faults, draws `trials_per_level` seeded random k-subsets
/// of nodes, fails them, and tests the survivors' connectivity; stops at
/// the first disconnecting level. Requires a symmetric (undirected) graph
/// for the kappa computation; intended for enumerable instances.
FaultToleranceReport fault_tolerance_report(const Graph& g, int max_faults,
                                            int trials_per_level,
                                            std::uint64_t seed);

}  // namespace ipg
