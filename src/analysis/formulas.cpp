#include "analysis/formulas.hpp"

#include <cassert>

#include "topo/perm_rank.hpp"

namespace ipg {

namespace {

std::uint64_t ipow(std::uint64_t base, int exp) {
  std::uint64_t v = 1;
  for (int i = 0; i < exp; ++i) v *= base;
  return v;
}

}  // namespace

TopoNums hypercube_nums(int n) {
  return {"Q" + std::to_string(n), std::uint64_t{1} << n,
          static_cast<std::uint32_t>(n), static_cast<std::uint32_t>(n)};
}

TopoNums folded_hypercube_nums(int n) {
  return {"FQ" + std::to_string(n), std::uint64_t{1} << n,
          static_cast<std::uint32_t>(n + 1),
          static_cast<std::uint32_t>((n + 1) / 2)};
}

TopoNums star_nums(int n) {
  return {"S" + std::to_string(n), topo::kFactorials[n],
          static_cast<std::uint32_t>(n - 1),
          static_cast<std::uint32_t>(3 * (n - 1) / 2)};
}

TopoNums kary_ncube_nums(int k, int n) {
  assert(k >= 2);
  const std::uint32_t degree =
      k == 2 ? static_cast<std::uint32_t>(n) : static_cast<std::uint32_t>(2 * n);
  return {std::to_string(k) + "-ary " + std::to_string(n) + "-cube",
          ipow(static_cast<std::uint64_t>(k), n), degree,
          static_cast<std::uint32_t>(n * (k / 2))};
}

TopoNums torus2d_nums(int rows, int cols) {
  return {"torus " + std::to_string(rows) + "x" + std::to_string(cols),
          static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols), 4,
          static_cast<std::uint32_t>(rows / 2 + cols / 2)};
}

TopoNums ccc_nums(int n) {
  assert(n >= 3);
  const std::uint32_t diameter =
      n == 3 ? 6 : static_cast<std::uint32_t>(2 * n + n / 2 - 2);
  return {"CCC(" + std::to_string(n) + ")",
          static_cast<std::uint64_t>(n) << n, 3, diameter};
}

TopoNums de_bruijn_nums(int n) {
  return {"DB(2," + std::to_string(n) + ")", std::uint64_t{1} << n, 4,
          static_cast<std::uint32_t>(n)};
}

TopoNums petersen_nums() { return {"P", 10, 3, 2}; }

TopoNums complete_nums(int r) {
  return {"K" + std::to_string(r), static_cast<std::uint64_t>(r),
          static_cast<std::uint32_t>(r - 1), 1};
}

TopoNums generalized_hypercube_nums(std::span<const int> radices) {
  TopoNums out;
  out.name = "GH(";
  out.nodes = 1;
  for (std::size_t d = 0; d < radices.size(); ++d) {
    out.name += (d ? "," : "") + std::to_string(radices[d]);
    out.nodes *= static_cast<std::uint64_t>(radices[d]);
    out.degree += static_cast<std::uint32_t>(radices[d] - 1);
  }
  out.name += ")";
  out.diameter = static_cast<std::uint32_t>(radices.size());
  return out;
}

namespace {

SuperNums super_nums(const std::string& name, int l, const TopoNums& nucleus,
                     std::uint32_t num_super_gens, std::uint32_t i_degree) {
  SuperNums out;
  out.name = name + "(" + std::to_string(l) + "," + nucleus.name + ")";
  out.nodes = ipow(nucleus.nodes, l);
  out.degree = nucleus.degree + num_super_gens;
  out.diameter = static_cast<std::uint32_t>(l) * nucleus.diameter +
                 static_cast<std::uint32_t>(l - 1);
  out.i_degree = i_degree;
  out.i_diameter = static_cast<std::uint32_t>(l - 1);
  return out;
}

}  // namespace

SuperNums hsn_nums(int l, const TopoNums& nucleus) {
  return super_nums("HSN", l, nucleus, static_cast<std::uint32_t>(l - 1),
                    static_cast<std::uint32_t>(l - 1));
}

SuperNums ring_cn_nums(int l, const TopoNums& nucleus) {
  const std::uint32_t gens = l == 2 ? 1 : 2;
  return super_nums("ring-CN", l, nucleus, gens, gens);
}

SuperNums complete_cn_nums(int l, const TopoNums& nucleus) {
  return super_nums("complete-CN", l, nucleus,
                    static_cast<std::uint32_t>(l - 1),
                    static_cast<std::uint32_t>(l - 1));
}

SuperNums super_flip_nums(int l, const TopoNums& nucleus) {
  return super_nums("SFN", l, nucleus, static_cast<std::uint32_t>(l - 1),
                    static_cast<std::uint32_t>(l - 1));
}

}  // namespace ipg
