#include "analysis/exact.hpp"

#include <cassert>
#include <numeric>
#include <vector>

#include "graph/bfs_batch.hpp"
#include "shard/partition.hpp"

namespace ipg {

namespace {

/// Single-source summary of node 0, routed through the rank-range shard
/// seam when the options ask for it (one-shard stays on today's path).
DistanceSummary one_source_summary(const Graph& g, const ExactOptions& opts,
                                   const ExecPolicy& exec) {
  const Node source0 = 0;
  const std::span<const Node> src(&source0, 1);
  if (opts.num_shards > 1) {
    return sharded_distance_summary(
        g, src, shard::RankRangePartition(g.num_nodes(), opts.num_shards),
        exec);
  }
  return multi_source_distance_summary(g, src, exec);
}

/// Full all-pairs summary, likewise routed through the shard seam.
DistanceSummary full_sweep_summary(const Graph& g, const ExactOptions& opts,
                                   const ExecPolicy& exec) {
  if (opts.num_shards > 1) {
    std::vector<Node> sources(g.num_nodes());
    std::iota(sources.begin(), sources.end(), Node{0});
    return sharded_distance_summary(
        g, sources, shard::RankRangePartition(g.num_nodes(), opts.num_shards),
        exec);
  }
  return all_pairs_distance_summary(g, exec);
}

/// Derives the all-pairs summary of a vertex-transitive graph from the
/// distance distribution of node 0: histogram and distance sum scale by N,
/// so the resulting integral totals — and hence the final division — are
/// bit-identical to the full sweep.
DistanceSummary vertex_transitive_summary(DistanceSummary one, Node n) {
  DistanceSummary out;
  out.diameter = one.diameter;
  // Reachable-from-one-source + transitivity implies reachable from every
  // source, so single-source connectivity is whole-graph strong
  // connectivity.
  out.strongly_connected = one.strongly_connected;
  out.histogram.resize(one.histogram.size());
  std::uint64_t total = 0;
  for (std::size_t d = 0; d < one.histogram.size(); ++d) {
    out.histogram[d] = one.histogram[d] * n;
    total += static_cast<std::uint64_t>(d) * out.histogram[d];
  }
  const std::uint64_t pairs =
      n == 0 ? 0 : static_cast<std::uint64_t>(n) * (n - 1);
  out.average_distance = pairs == 0 ? 0.0
                                    : static_cast<double>(total) /
                                          static_cast<double>(pairs);
  return out;
}

#ifndef NDEBUG
bool summaries_identical(const DistanceSummary& a, const DistanceSummary& b) {
  return a.diameter == b.diameter &&
         a.strongly_connected == b.strongly_connected &&
         a.histogram == b.histogram &&
         a.average_distance == b.average_distance;
}
#endif

}  // namespace

ExactAnalysis exact_analysis(const Graph& g, const ExecPolicy& exec,
                             const ExactOptions& opts) {
  ExactAnalysis out;
  const bool fast_path = opts.assume_vertex_transitive &&
                         opts.use_symmetry_fast_path && g.num_nodes() > 0;
  if (fast_path) {
    out.distances =
        vertex_transitive_summary(one_source_summary(g, opts, exec),
                                  g.num_nodes());
    // Differential guard: in Debug builds the asserted symmetry is checked
    // against the full sweep, so a wrong assumption fails loudly instead
    // of skewing figures.
    assert(summaries_identical(out.distances,
                               all_pairs_distance_summary(g, exec)) &&
           "vertex-transitive fast path diverged: the graph is not "
           "vertex-transitive");
  } else {
    out.distances = full_sweep_summary(g, opts, exec);
  }
  out.profile.nodes = g.num_nodes();
  out.profile.symmetric_digraph = g.is_symmetric();
  out.profile.links =
      out.profile.symmetric_digraph ? g.num_arcs() / 2 : g.num_arcs();
  out.profile.degree = degree_stats(g).max_degree;
  out.profile.diameter = out.distances.diameter;
  out.profile.average_distance = out.distances.average_distance;
  out.profile.connected = out.distances.strongly_connected;
  return out;
}

}  // namespace ipg
