#include "analysis/exact.hpp"

namespace ipg {

ExactAnalysis exact_analysis(const Graph& g, const ExecPolicy& exec) {
  ExactAnalysis out;
  out.distances = all_pairs_distance_summary(g, exec);
  out.profile.nodes = g.num_nodes();
  out.profile.symmetric_digraph = g.is_symmetric();
  out.profile.links =
      out.profile.symmetric_digraph ? g.num_arcs() / 2 : g.num_arcs();
  out.profile.degree = degree_stats(g).max_degree;
  out.profile.diameter = out.distances.diameter;
  out.profile.average_distance = out.distances.average_distance;
  out.profile.connected = out.distances.strongly_connected;
  return out;
}

}  // namespace ipg
