#include "analysis/exact.hpp"

#include <cassert>
#include <numeric>
#include <vector>

#include "analysis/orbit.hpp"
#include "graph/bfs_batch.hpp"
#include "shard/partition.hpp"

namespace ipg {

namespace {

/// Full all-pairs summary, routed through the rank-range shard seam when
/// the options ask for it (one-shard stays on today's path). This is the
/// brute-force differential oracle the orbit fold is tested against.
DistanceSummary full_sweep_summary(const Graph& g, const ExactOptions& opts,
                                   const ExecPolicy& exec) {
  if (opts.num_shards > 1) {
    std::vector<Node> sources(g.num_nodes());
    std::iota(sources.begin(), sources.end(), Node{0});
    return sharded_distance_summary(
        g, sources, shard::RankRangePartition(g.num_nodes(), opts.num_shards),
        exec);
  }
  return all_pairs_distance_summary(g, exec);
}

#ifndef NDEBUG
bool summaries_identical(const DistanceSummary& a, const DistanceSummary& b) {
  return a.diameter == b.diameter &&
         a.strongly_connected == b.strongly_connected &&
         a.histogram == b.histogram &&
         a.average_distance == b.average_distance;
}
#endif

}  // namespace

ExactAnalysis exact_analysis(const Graph& g, const ExecPolicy& exec,
                             const ExactOptions& opts) {
  ExactAnalysis out;
  // The orbit fold is the one compressed path: an explicit quotient wins,
  // the caller-asserted vertex-transitive case is the 1-orbit quotient,
  // and use_orbit_quotient = false forces the brute-force oracle.
  const OrbitQuotient* quotient = nullptr;
  OrbitQuotient transitive;
  if (opts.use_orbit_quotient) {
    if (opts.orbit != nullptr) {
      quotient = opts.orbit;
    } else if (opts.assume_vertex_transitive && g.num_nodes() > 0) {
      transitive = OrbitQuotient::single_orbit(g.num_nodes());
      quotient = &transitive;
    }
  }
  if (quotient != nullptr) {
    out.distances =
        orbit_folded_distance_summary(g, *quotient, exec, opts.num_shards);
    // Differential guard: in Debug builds the quotient (or the asserted
    // symmetry) is checked against the full sweep, so a wrong partition
    // fails loudly instead of skewing figures.
    assert(summaries_identical(out.distances,
                               all_pairs_distance_summary(g, exec)) &&
           "orbit fold diverged: the quotient does not describe a genuine "
           "automorphism orbit partition of this graph");
  } else {
    out.distances = full_sweep_summary(g, opts, exec);
  }
  out.profile.nodes = g.num_nodes();
  out.profile.symmetric_digraph = g.is_symmetric();
  out.profile.links =
      out.profile.symmetric_digraph ? g.num_arcs() / 2 : g.num_arcs();
  out.profile.degree = degree_stats(g).max_degree;
  out.profile.diameter = out.distances.diameter;
  out.profile.average_distance = out.distances.average_distance;
  out.profile.connected = out.distances.strongly_connected;
  return out;
}

}  // namespace ipg
