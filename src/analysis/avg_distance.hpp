#pragma once
// Closed-form average distances (over ordered pairs of distinct nodes) for
// the families where an exact expression exists. Section 5.1 treats
// average distance on par with diameter ("crucial for network performance
// under heavy load; maximum throughput is inversely proportional"), so the
// cost benches can report it exactly at paper-scale sizes. Each formula is
// validated against all-pairs BFS in tests/analysis_test.cpp.

#include <cstdint>

namespace ipg {

/// Q_n: E[Hamming] = n/2 over independent pairs, rescaled to exclude u==v.
double hypercube_avg_distance(int n);

/// Cycle C_k: k^2/4 / (k-1) for even k, (k^2-1)/4 / (k-1) for odd k.
double cycle_avg_distance(int k);

/// k-ary n-cube: n independent cycle coordinates, rescaled.
double kary_ncube_avg_distance(int k, int n);

/// 2-D torus rows x cols.
double torus2d_avg_distance(int rows, int cols);

/// Hamming graph H(d, q) (e.g. super-IP module graphs, generalized
/// hypercubes with equal radices): d*(1 - 1/q), rescaled.
double hamming_avg_distance(int d, int q);

/// Complete graph K_r.
double complete_avg_distance(int r);

/// Star graph S_n (Akers-Krishnamurthy): exact expectation
/// n - 4 + H_n + 2/n over uniform random permutations, where H_n is the
/// n-th harmonic number; rescaled to exclude the identity pair.
double star_avg_distance(int n);

}  // namespace ipg
