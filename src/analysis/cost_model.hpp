#pragma once
// Composite figures of merit (Section 5) and the series catalogs that the
// figure benches print: for each family, a sweep of (size, degree,
// diameter, I-degree, I-diameter) points with DD / ID / II costs.

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/formulas.hpp"

namespace ipg {

/// One point of a comparison series.
struct CostPoint {
  std::string family;
  std::uint64_t nodes = 0;
  double degree = 0.0;
  std::uint32_t diameter = 0;
  double i_degree = 0.0;
  std::uint32_t i_diameter = 0;

  double log2_nodes() const { return std::log2(static_cast<double>(nodes)); }
  double dd_cost() const { return degree * diameter; }
  double id_cost() const { return i_degree * diameter; }
  double ii_cost() const { return i_degree * static_cast<double>(i_diameter); }
};

CostPoint cost_point(const TopoNums& t, double i_degree, std::uint32_t i_diameter);
CostPoint cost_point(const SuperNums& s);

/// Sweeps used by the figure harnesses; every returned point uses the
/// validated closed forms of formulas.hpp. Hypercube/star/de Bruijn/torus
/// take the module budget implied by the figure (I-metrics depend on it).

/// Q_n for n in [n_min, n_max], modules of 2^module_bits nodes:
/// I-degree = n - module_bits, I-diameter = n - module_bits.
std::vector<CostPoint> sweep_hypercube(int n_min, int n_max, int module_bits);

/// S_n for n in [n_min, n_max], sub-star modules of `substar`! nodes:
/// I-degree = n - substar, I-diameter measured (star I-distance has no
/// simple closed form) — figure code supplies it; this sweep sets
/// I-diameter = 0 as a placeholder for DD-only figures.
std::vector<CostPoint> sweep_star(int n_min, int n_max, int substar);

/// Square 2-D tori of side `sides[i]`, tile_r x tile_c modules.
std::vector<CostPoint> sweep_torus2d(const std::vector<int>& sides, int tile_r,
                                     int tile_c);

std::vector<CostPoint> sweep_ccc(int n_min, int n_max);
std::vector<CostPoint> sweep_de_bruijn(int n_min, int n_max, int low_digits);

/// Super-IP sweeps over l in [l_min, l_max] for a fixed nucleus.
std::vector<CostPoint> sweep_hsn(int l_min, int l_max, const TopoNums& nucleus);
std::vector<CostPoint> sweep_ring_cn(int l_min, int l_max, const TopoNums& nucleus);
std::vector<CostPoint> sweep_complete_cn(int l_min, int l_max, const TopoNums& nucleus);
std::vector<CostPoint> sweep_super_flip(int l_min, int l_max, const TopoNums& nucleus);

}  // namespace ipg
