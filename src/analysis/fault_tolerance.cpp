#include "analysis/fault_tolerance.hpp"

#include <cassert>
#include <vector>

#include "graph/builder.hpp"
#include "graph/flow.hpp"
#include "graph/metrics.hpp"
#include "util/prng.hpp"

namespace ipg {

namespace {

/// Forward reachability from `root` restricted to up nodes; returns the
/// number of up nodes reached.
Node count_reached(const Graph& g, const std::vector<std::uint8_t>& down,
                   Node root) {
  std::vector<std::uint8_t> seen(g.num_nodes(), 0);
  std::vector<Node> queue{root};
  seen[root] = 1;
  Node reached = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    for (const Node v : g.neighbors(queue[head])) {
      if (seen[v] || down[v]) continue;
      seen[v] = 1;
      ++reached;
      queue.push_back(v);
    }
  }
  return reached;
}

}  // namespace

bool survivors_connected(const Graph& g, std::span<const Node> failed) {
  std::vector<std::uint8_t> down(g.num_nodes(), 0);
  for (const Node u : failed) down[u] = 1;
  Node up_count = 0;
  Node root = kUnreachable;
  for (Node u = 0; u < g.num_nodes(); ++u) {
    if (down[u]) continue;
    ++up_count;
    if (root == kUnreachable) root = u;
  }
  if (up_count <= 1) return true;
  if (count_reached(g, down, root) != up_count) return false;
  if (g.is_symmetric()) return true;  // one direction suffices
  // Directed: also require every survivor to reach `root` (reverse BFS).
  GraphBuilder rb(g.num_nodes());
  rb.reserve(g.num_arcs());
  for (Node u = 0; u < g.num_nodes(); ++u) {
    for (const Node v : g.neighbors(u)) rb.add_arc(v, u);
  }
  const Graph reverse = std::move(rb).build();
  return count_reached(reverse, down, root) == up_count;
}

FaultToleranceReport fault_tolerance_report(const Graph& g, int max_faults,
                                            int trials_per_level,
                                            std::uint64_t seed) {
  assert(max_faults >= 0 &&
         static_cast<Node>(max_faults) < g.num_nodes());
  FaultToleranceReport report;
  report.min_degree = degree_stats(g).min_degree;
  report.connectivity = vertex_connectivity(g);
  report.max_faults_tested = max_faults;
  report.trials_per_level = trials_per_level;

  Xoshiro256 rng(seed);
  std::vector<Node> failed;
  std::vector<std::uint8_t> chosen(g.num_nodes(), 0);
  for (int k = 1; k <= max_faults; ++k) {
    for (int trial = 0; trial < trials_per_level; ++trial) {
      failed.clear();
      while (failed.size() < static_cast<std::size_t>(k)) {
        const Node u = static_cast<Node>(rng.below(g.num_nodes()));
        if (chosen[u]) continue;
        chosen[u] = 1;
        failed.push_back(u);
      }
      const bool ok = survivors_connected(g, failed);
      for (const Node u : failed) chosen[u] = 0;
      if (!ok) {
        report.measured_disconnect_threshold = k;
        return report;
      }
    }
  }
  return report;
}

}  // namespace ipg
