#pragma once
// Exact whole-graph analysis: the paper's headline numbers (degree,
// diameter, average distance, DD-cost, distance histogram, connectivity)
// from one all-pairs sweep of the batched BFS engine. profile() +
// all_pairs_distance_summary() each run their own sweep; this entry point
// shares a single pass — threaded under the given ExecPolicy — and is what
// the figure harnesses and scaling studies should call when they need more
// than one headline number from the same instance.

#include "graph/bfs.hpp"
#include "graph/metrics.hpp"
#include "util/thread_pool.hpp"

namespace ipg {

struct OrbitQuotient;  // analysis/orbit.hpp

struct ExactAnalysis {
  TopologyProfile profile;     ///< degree/diameter/average-distance view
  DistanceSummary distances;   ///< full histogram + connectivity
};

/// Tuning knobs for exact_analysis.
struct ExactOptions {
  /// Caller-asserted vertex-transitivity. Symmetric super-IP families are
  /// Cayley graphs (Section 3.5; `is_cayley(spec)` checks the seed), so
  /// every node sees the same distance distribution and the all-pairs
  /// summary is one source's histogram scaled by N. Internally this is
  /// the 1-orbit OrbitQuotient (OrbitQuotient::single_orbit) — exactly
  /// the extreme case of the orbit fold. Asserting it on a non-transitive
  /// graph yields wrong numbers; Debug builds cross-check against the
  /// full sweep.
  bool assume_vertex_transitive = false;

  /// Opt-out: force the brute-force all-pairs sweep even when a quotient
  /// (or vertex-transitivity) is supplied. The brute path is the
  /// differential oracle the orbit engine is tested against.
  bool use_orbit_quotient = true;

  /// Orbit partition to fold over (see compute_orbit_quotient): the sweep
  /// runs from orbit representatives only, each folded with its orbit
  /// multiplicity — bit-identical to the brute sweep, O(#orbits) sources
  /// instead of O(N). Must describe exactly this graph's node set; not
  /// owned. nullptr means no quotient (assume_vertex_transitive may still
  /// engage the 1-orbit case).
  const OrbitQuotient* orbit = nullptr;

  /// Rank-range shards the sweep executes over (the shard/ seam). 1 (the
  /// default) runs today's unsharded engine unchanged; > 1 partitions
  /// [0, N) into contiguous slices and routes the sweep through
  /// sharded_distance_summary. Bit-identical either way (the shard
  /// determinism contract), so figures never depend on the decomposition.
  int num_shards = 1;
};

/// One all-pairs sweep under `exec`; both views are filled from the same
/// summary, so they are mutually consistent and bit-identical to the
/// serial single-purpose routines at every thread count. With an orbit
/// quotient engaged the summary is folded from orbit representatives,
/// bit-identical to the full sweep whenever the quotient is sound.
ExactAnalysis exact_analysis(const Graph& g,
                             const ExecPolicy& exec = ExecPolicy::serial_policy(),
                             const ExactOptions& opts = {});

}  // namespace ipg
