#pragma once
// Exact whole-graph analysis: the paper's headline numbers (degree,
// diameter, average distance, DD-cost, distance histogram, connectivity)
// from one all-pairs BFS sweep. profile() + all_pairs_distance_summary()
// each run their own sweep; this entry point shares a single pass —
// threaded under the given ExecPolicy — and is what the figure harnesses
// and scaling studies should call when they need more than one headline
// number from the same instance.

#include "graph/bfs.hpp"
#include "graph/metrics.hpp"
#include "util/thread_pool.hpp"

namespace ipg {

struct ExactAnalysis {
  TopologyProfile profile;     ///< degree/diameter/average-distance view
  DistanceSummary distances;   ///< full histogram + connectivity
};

/// One all-pairs sweep under `exec`; both views are filled from the same
/// summary, so they are mutually consistent and bit-identical to the
/// serial single-purpose routines at every thread count.
ExactAnalysis exact_analysis(const Graph& g,
                             const ExecPolicy& exec = ExecPolicy::serial_policy());

}  // namespace ipg
